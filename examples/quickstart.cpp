// Quickstart: parse an extended conjunctive query, build a database,
// count answers exactly and approximately, and draw samples.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "counting/sampler.h"
#include "query/parser.h"
#include "relational/database_io.h"

using namespace cqcount;

int main() {
  // The paper's running example (equation (1)): people with at least two
  // distinct friends. 'x' is the output variable; 'y' and 'z' are
  // existentially quantified; 'y != z' is a disequality, so this is a DCQ.
  auto query = ParseQuery("ans(x) :- F(x, y), F(x, z), y != z.");
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s   (||phi|| = %llu, kind = DCQ)\n",
              query->ToString().c_str(),
              static_cast<unsigned long long>(query->PhiSize()));

  // A small friendship database in the text format.
  auto db = ParseDatabase(R"(
universe 6
relation F 2
0 1
1 0
1 2
2 1
1 3
3 1
4 5
5 4
end
)");
  if (!db.ok()) {
    std::fprintf(stderr, "database error: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  // Exact count (exponential in the query, fine here).
  const uint64_t exact = ExactCountAnswersBruteForce(*query, *db);
  std::printf("exact |Ans|           = %llu\n",
              static_cast<unsigned long long>(exact));

  // Theorem 5 FPTRAS: (epsilon, delta)-approximation.
  ApproxOptions opts;
  opts.epsilon = 0.1;
  opts.delta = 0.05;
  opts.seed = 2024;
  auto approx = ApproxCountAnswers(*query, *db, opts);
  if (!approx.ok()) {
    std::fprintf(stderr, "fptras error: %s\n",
                 approx.status().ToString().c_str());
    return 1;
  }
  std::printf("FPTRAS estimate       = %.2f%s\n", approx->estimate,
              approx->exact ? " (resolved exactly)" : "");
  std::printf("decomposition width   = %.0f, hom queries = %llu\n",
              approx->width,
              static_cast<unsigned long long>(approx->hom_queries));

  // Section 6: approximately uniform answer samples.
  SamplerOptions sopts;
  sopts.approx = opts;
  auto sampler = AnswerSampler::Create(*query, *db, sopts);
  if (sampler.ok()) {
    auto samples = (*sampler)->Sample(5);
    if (samples.ok()) {
      std::printf("5 sampled answers     =");
      for (const Tuple& t : *samples) std::printf(" %u", t[0]);
      std::printf("\n");
    }
  }
  return 0;
}
