// cqcount command-line interface.
//
// Usage:
//   cli count    <query> <database-file> [epsilon] [delta] [--json]
//                [--trace FILE] [--metrics]
//   cli exact    <query> <database-file>
//   cli explain  <query> <database-file> [--json]
//   cli batch    <query-file> <database-file> [--threads N] [--epsilon E]
//                [--delta D] [--trace FILE] [--metrics]
//                (positional [threads] [epsilon] [delta] also accepted)
//   cli stats    <query> <database-file> [epsilon] [delta]
//   cli fpras    <query> <database-file> [epsilon]
//   cli sample   <query> <database-file> [count]
//   cli classify <query>
//   cli pack     <database-file> <segment-file>
//
// <query> is a Datalog-style string such as
//   'ans(x) :- F(x, y), F(x, z), y != z.'
// <query-file> holds one query per line ('#' starts a comment line).
//
// <database-file> may be either the text format (database_io.h) or a
// packed columnar segment produced by `cli pack` (segment.h); the loader
// sniffs the magic bytes. Segments memory-map in O(1) regardless of row
// count, so packing pays off for databases reused across many runs.
//
// count/exact/explain/batch run through the CountingEngine: queries are
// rewritten (atom dedup, nullary guards), split into Gaifman components,
// planned per the paper's Figure 1 with per-component plans cached by
// canonical shape, and batches execute concurrently with deterministic
// per-item seeds. `explain` prints the per-component breakdown.
//
// Telemetry: --trace FILE writes a Chrome trace_event JSON of the run
// (chrome://tracing / Perfetto); --metrics dumps the process metric
// registry to stderr after the command; `stats` runs one count and dumps
// the registry JSON to stdout; `count --json` prints the result with its
// per-component provenance and QueryProfile as one JSON object;
// `explain --json` prints the planning provenance (per-component plans,
// budget split, observed shape history) without executing.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "automata/fpras.h"
#include "counting/sampler.h"
#include "decomposition/width_measures.h"
#include "engine/engine.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "relational/database_io.h"
#include "relational/segment.h"

using namespace cqcount;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cli count    <query> <db-file> [epsilon] [delta] "
      "[--intra-threads N] [--timeout-ms N] [--max-oracle-calls N] "
      "[--adaptive] [--json] [--trace FILE] [--metrics]\n"
      "                                                     engine count "
      "(auto strategy; on timeout, an\n"
      "                                                     anytime partial "
      "estimate with hard bounds;\n"
      "                                                     --adaptive arms "
      "the accuracy scheduler:\n"
      "                                                     cost-weighted "
      "budget split + CLT early stop)\n"
      "  cli exact    <query> <db-file>                     engine exact "
      "count\n"
      "  cli explain  <query> <db-file> [--json]            plan + Figure 1 "
      "verdict,\n"
      "                                                     per-component "
      "breakdown\n"
      "  cli batch    <query-file> <db-file> [--threads N] [--epsilon E] "
      "[--delta D] [--intra-threads N] [--adaptive] [--trace FILE] "
      "[--metrics]\n"
      "                                                     concurrent "
      "batch counts\n"
      "                                                     (positional "
      "[threads] [epsilon] [delta] also accepted)\n"
      "  cli stats    <query> <db-file> [epsilon] [delta]   run one count, "
      "dump metric registry JSON\n"
      "  cli fpras    <query> <db-file> [epsilon]           FPRAS "
      "(Thm 16, pure CQ)\n"
      "  cli sample   <query> <db-file> [count]             answer "
      "samples\n"
      "  cli classify <query>                               Figure 1 "
      "verdict (no db)\n"
      "  cli pack     <db-file> <segment-file>              pack a text "
      "database into a\n"
      "                                                     mmap-able "
      "columnar segment\n"
      "                                                     (all db-taking "
      "commands accept\n"
      "                                                     either format)\n");
  return 2;
}

StatusOr<std::vector<std::string>> ReadQueryFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open query file: " + path);
  std::vector<std::string> queries;
  std::string line;
  while (std::getline(in, line)) {
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    queries.push_back(line);
  }
  return queries;
}

CountingEngine MakeEngine(double epsilon, double delta,
                          int intra_threads = -1, bool adaptive = false) {
  EngineOptions opts;
  if (epsilon > 0) opts.epsilon = epsilon;
  if (delta > 0) opts.delta = delta;
  // -1 keeps the engine default (automatic: pool-sized lanes for wide
  // queries, inline for cheap/exact components).
  if (intra_threads >= 0) opts.intra_query_threads = intra_threads;
  opts.adaptive = adaptive;
  return CountingEngine(opts);
}

// Writes the buffered spans as Chrome trace_event JSON (chrome://tracing,
// Perfetto). Returns false (with a message) when the file can't be opened.
bool WriteTraceFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "trace error: cannot open %s\n", path.c_str());
    return false;
  }
  obs::TraceSink::Global().WriteChromeTrace(out);
  std::fprintf(stderr, "# trace: %zu events -> %s\n",
               obs::TraceSink::Global().event_count(), path.c_str());
  return true;
}

void DumpMetrics() {
  std::fputs(obs::MetricRegistry::Global().ToJson().c_str(), stderr);
  std::fputc('\n', stderr);
}

const char* KindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kCq:
      return "CQ";
    case QueryKind::kDcq:
      return "DCQ";
    default:
      return "ECQ";
  }
}

// The `count --json` document: the result with its per-component
// provenance and QueryProfile as ONE object (machine-readable mode;
// scripts/check_estimates.py validates this schema).
std::string CountResultJson(const EngineResult& r) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("estimate").Double(r.estimate);
  json.Key("exact").Bool(r.exact);
  json.Key("converged").Bool(r.converged);
  json.Key("partial").Bool(r.partial);
  json.Key("lower_bound").Double(r.lower_bound);
  json.Key("upper_bound").Double(r.upper_bound);
  json.Key("partial_reason").String(r.partial_reason);
  json.Key("adaptive").Bool(r.adaptive);
  json.Key("strategy").String(StrategyName(r.strategy));
  json.Key("kind").String(KindName(r.kind));
  json.Key("width").Double(r.width);
  json.Key("verdict").String(r.verdict);
  json.Key("shape_key").String(r.shape_key);
  json.Key("oracle_calls").Uint(r.oracle_calls);
  json.Key("plan_cache_hit").Bool(r.plan_cache_hit);
  json.Key("num_components").Int(r.num_components);
  json.Key("guards_evaluated").Int(r.guards_evaluated);
  json.Key("plan_ms").Double(r.plan_millis);
  json.Key("exec_ms").Double(r.exec_millis);
  json.Key("components").BeginArray();
  for (const ComponentResult& c : r.components) {
    json.BeginObject();
    json.Key("estimate").Double(c.estimate);
    json.Key("exact").Bool(c.exact);
    json.Key("converged").Bool(c.converged);
    json.Key("partial").Bool(c.partial);
    json.Key("lower_bound").Double(c.lower_bound);
    json.Key("upper_bound").Double(c.upper_bound);
    json.Key("stop_reason").String(StopReasonName(c.stop_reason));
    json.Key("rounds_executed").Int(c.rounds_executed);
    json.Key("completed_runs").Int(c.completed_runs);
    json.Key("total_runs").Int(c.total_runs);
    json.Key("executed").Bool(c.executed);
    json.Key("strategy").String(StrategyName(c.strategy));
    json.Key("verdict").String(c.verdict);
    json.Key("shape_key").String(c.shape_key);
    json.Key("width").Double(c.width);
    json.Key("num_vars").Int(c.num_vars);
    json.Key("num_free").Int(c.num_free);
    json.Key("existential").Bool(c.existential);
    json.Key("plan_cache_hit").Bool(c.plan_cache_hit);
    json.Key("oracle_calls").Uint(c.oracle_calls);
    json.Key("estimator_calls").Uint(c.estimator_calls);
    json.Key("cost_source").String(c.cost_source);
    json.Key("predicted_ms").Double(c.predicted_millis);
    json.Key("predicted_oracle_calls").Double(c.predicted_oracle_calls);
    json.Key("dp_prepared_decides").Uint(c.dp_prepared_decides);
    json.Key("dp_prepared_path").Bool(c.dp_prepared_path);
    json.Key("colouring_trials_per_call").Uint(c.colouring_trials_per_call);
    json.Key("epsilon").Double(c.epsilon);
    json.Key("delta").Double(c.delta);
    json.Key("exec_ms").Double(c.exec_millis);
    json.Key("lanes").Int(c.parallel.lanes);
    json.EndObject();
  }
  json.EndArray();
  json.Key("profile").RawValue(r.profile.ToJson());
  json.EndObject();
  return json.Take();
}

// The `explain --json` document: planning provenance without execution —
// per-component plans, budget split, and the cache's observed shape
// history when warm.
std::string ExplanationJson(const Explanation& e) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("strategy").String(StrategyName(e.plan.strategy));
  json.Key("verdict").String(e.plan.classification.verdict);
  json.Key("shape_key").String(e.plan.shape_key);
  json.Key("cost_estimate").Double(e.plan.cost_estimate);
  json.Key("plan_cache_hit").Bool(e.plan_cache_hit);
  json.Key("plan_ms").Double(e.plan_millis);
  json.Key("pass_stats");
  json.BeginObject();
  json.Key("atoms_deduped").Int(e.pass_stats.atoms_deduped);
  json.Key("guards_extracted").Int(e.pass_stats.guards_extracted);
  json.Key("variables_pruned").Int(e.pass_stats.variables_pruned);
  json.EndObject();
  json.Key("guards").BeginArray();
  for (const NullaryGuard& guard : e.guards) {
    json.BeginObject();
    json.Key("relation").String(guard.relation);
    json.Key("negated").Bool(guard.negated);
    json.EndObject();
  }
  json.EndArray();
  json.Key("components").BeginArray();
  for (const ComponentExplanation& c : e.components) {
    json.BeginObject();
    json.Key("strategy").String(StrategyName(c.plan.strategy));
    json.Key("verdict").String(c.plan.classification.verdict);
    json.Key("shape_key").String(c.plan.shape_key);
    json.Key("cost_estimate").Double(c.plan.cost_estimate);
    json.Key("plan_cache_hit").Bool(c.plan_cache_hit);
    json.Key("existential").Bool(c.existential);
    json.Key("variables").BeginArray();
    for (const std::string& v : c.variables) json.String(v);
    json.EndArray();
    json.Key("epsilon").Double(c.epsilon);
    json.Key("delta").Double(c.delta);
    json.Key("planned_lanes").Int(c.planned_lanes);
    json.Key("cost_source").String(c.cost_source);
    json.Key("predicted_ms").Double(c.predicted_millis);
    json.Key("predicted_oracle_calls").Double(c.predicted_oracle_calls);
    json.Key("observed");
    if (c.observed.has_value()) {
      json.RawValue(c.observed->ToJson());
    } else {
      json.Null();
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.Take();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  if (command == "classify") {
    auto query = ParseQuery(argv[2]);
    if (!query.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    Hypergraph h = query->BuildHypergraph();
    FWidthResult tw =
        ComputeDecomposition(h, WidthObjective::kTreewidth, 16);
    FWidthResult fhw = ComputeDecomposition(
        h, WidthObjective::kFractionalHypertreewidth, 13);
    const char* kind = query->Kind() == QueryKind::kCq    ? "CQ"
                       : query->Kind() == QueryKind::kDcq ? "DCQ"
                                                          : "ECQ";
    std::printf("kind=%s arity=%d tw<=%.0f fhw<=%.2f ||phi||=%llu\n", kind,
                h.Arity(), tw.width, fhw.width,
                static_cast<unsigned long long>(query->PhiSize()));
    if (tw.width <= 4) {
      std::printf("Theorem 5 FPTRAS applies%s\n",
                  query->Kind() == QueryKind::kCq
                      ? "; Theorem 16 FPRAS applies"
                      : "; no FPRAS unless NP=RP (Obs 10)");
    } else if (fhw.width <= 4 && query->Kind() != QueryKind::kEcq) {
      std::printf("Theorem 13 FPTRAS applies (unbounded-arity regime)\n");
    } else {
      std::printf("widths look unbounded: Observations 9/15 wall\n");
    }
    return 0;
  }

  if (argc < 4) return Usage();
  const std::string db_path = argv[3];

  if (command == "pack") {
    // argv[2] is the input database (text or already-packed), argv[3]
    // the output segment path.
    auto db = LoadDatabaseAuto(argv[2]);
    if (!db.ok()) {
      std::fprintf(stderr, "database error: %s\n",
                   db.status().ToString().c_str());
      return 1;
    }
    db->Canonicalize();
    Status written = WriteSegmentDatabase(*db, db_path);
    if (!written.ok()) {
      std::fprintf(stderr, "pack error: %s\n", written.ToString().c_str());
      return 1;
    }
    size_t rows = 0;
    const std::vector<std::string> names = db->RelationNames();
    for (const std::string& name : names) rows += db->relation(name).size();
    std::fprintf(stderr, "# packed %zu relations (%zu rows) -> %s\n",
                 names.size(), rows, db_path.c_str());
    return 0;
  }

  if (command == "count" || command == "exact" || command == "explain" ||
      command == "stats") {
    // count supports [epsilon] [delta] positionals plus --intra-threads
    // and the telemetry flags; stats takes [epsilon] [delta].
    double epsilon = 0.0;
    double delta = 0.0;
    int intra_threads = -1;
    unsigned long long timeout_ms = 0;
    unsigned long long max_oracle_calls = 0;
    bool adaptive = false;
    bool as_json = false;
    bool dump_metrics = false;
    std::string trace_path;
    if (command == "count" || command == "stats" || command == "explain") {
      int positional = 0;
      for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--intra-threads") {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for --intra-threads\n");
            return 2;
          }
          intra_threads = std::atoi(argv[++i]);
        } else if (arg == "--timeout-ms") {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for --timeout-ms\n");
            return 2;
          }
          timeout_ms = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--max-oracle-calls") {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for --max-oracle-calls\n");
            return 2;
          }
          max_oracle_calls = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--trace") {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for --trace\n");
            return 2;
          }
          trace_path = argv[++i];
        } else if (arg == "--adaptive") {
          adaptive = true;
        } else if (arg == "--json") {
          as_json = true;
        } else if (arg == "--metrics") {
          dump_metrics = true;
        } else if (positional == 0) {
          epsilon = std::atof(arg.c_str());
          ++positional;
        } else if (positional == 1) {
          delta = std::atof(arg.c_str());
          ++positional;
        } else {
          std::fprintf(stderr, "too many count arguments: %s\n", arg.c_str());
          return Usage();
        }
      }
    }
    if (!trace_path.empty()) obs::TraceSink::Global().Enable();
    CountingEngine engine =
        MakeEngine(epsilon, delta, intra_threads, adaptive);
    Status registered = engine.RegisterDatabaseFile("db", db_path);
    if (!registered.ok()) {
      std::fprintf(stderr, "database error: %s\n",
                   registered.ToString().c_str());
      return 1;
    }
    if (command == "explain") {
      auto explanation = engine.Explain(argv[2], "db");
      if (!explanation.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     explanation.status().ToString().c_str());
        return 1;
      }
      if (as_json) {
        std::printf("%s\n", ExplanationJson(*explanation).c_str());
      } else {
        std::fputs(explanation->text.c_str(), stdout);
      }
      return 0;
    }
    CountRequest count_request;
    count_request.query = argv[2];
    count_request.database = "db";
    count_request.force_exact = command == "exact";
    count_request.time_budget_ms = timeout_ms;
    count_request.max_oracle_calls = max_oracle_calls;
    auto result = engine.Count(count_request);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (command == "stats") {
      // One count (estimate to stderr as provenance), registry to stdout.
      std::fprintf(stderr, "# %.2f%s strategy=%s oracle_calls=%llu\n",
                   result->estimate, result->exact ? " (exact)" : "",
                   StrategyName(result->strategy),
                   static_cast<unsigned long long>(result->oracle_calls));
      std::printf("%s\n", obs::MetricRegistry::Global().ToJson().c_str());
      if (!trace_path.empty()) {
        obs::TraceSink::Global().Disable();
        if (!WriteTraceFile(trace_path)) return 1;
      }
      return 0;
    }
    if (!trace_path.empty()) {
      obs::TraceSink::Global().Disable();
      if (!WriteTraceFile(trace_path)) return 1;
    }
    if (as_json) {
      std::printf("%s\n", CountResultJson(*result).c_str());
      if (dump_metrics) DumpMetrics();
      return 0;
    }
    std::printf("%.2f%s%s\n", result->estimate,
                result->exact ? " (exact)" : "",
                result->partial ? " (partial)" : "");
    if (result->partial) {
      std::printf("# partial: reason=%s bounds=[%.2f, %.2f]\n",
                  result->partial_reason.c_str(), result->lower_bound,
                  result->upper_bound);
    }
    unsigned long long dp_decides = 0;
    bool dp_prepared = true;
    for (const ComponentResult& comp : result->components) {
      dp_decides += comp.dp_prepared_decides;
      dp_prepared = dp_prepared && comp.dp_prepared_path;
    }
    std::printf(
        "# strategy=%s width=%.2f components=%d oracle_calls=%llu "
        "dp_prepared_decides=%llu%s plan=%s plan_ms=%.2f exec_ms=%.2f\n",
        StrategyName(result->strategy), result->width,
        result->num_components,
        static_cast<unsigned long long>(result->oracle_calls), dp_decides,
        dp_prepared ? "" : " dp=monolithic-fallback",
        result->plan_cache_hit ? "cached" : "built", result->plan_millis,
        result->exec_millis);
    std::printf(
        "# parallel: lanes=%d tasks=%llu worker_tasks=%llu\n",
        result->parallel.lanes,
        static_cast<unsigned long long>(result->parallel.tasks),
        static_cast<unsigned long long>(result->parallel.worker_tasks));
    if (result->adaptive) {
      for (size_t c = 0; c < result->components.size(); ++c) {
        const ComponentResult& comp = result->components[c];
        if (!comp.executed) continue;
        std::printf(
            "#   adaptive %zu: stop=%s runs=%d/%d rounds=%d cost=%s "
            "predicted_calls=%.0f observed_calls=%llu\n",
            c, StopReasonName(comp.stop_reason), comp.completed_runs,
            comp.total_runs, comp.rounds_executed, comp.cost_source.c_str(),
            comp.predicted_oracle_calls,
            static_cast<unsigned long long>(comp.estimator_calls));
      }
    }
    if (result->num_components > 1) {
      for (size_t c = 0; c < result->components.size(); ++c) {
        const ComponentResult& comp = result->components[c];
        if (!comp.executed) {
          // A false nullary guard zeroes the product before execution.
          std::printf("#   component %zu: skipped (false guard) strategy=%s "
                      "plan=%s\n",
                      c, StrategyName(comp.strategy),
                      comp.plan_cache_hit ? "cached" : "built");
          continue;
        }
        std::printf(
            "#   component %zu: factor=%.2f strategy=%s%s epsilon=%.3g "
            "plan=%s\n",
            c, comp.estimate, StrategyName(comp.strategy),
            comp.existential ? " (existential)" : "", comp.epsilon,
            comp.plan_cache_hit ? "cached" : "built");
      }
    }
    if (dump_metrics) DumpMetrics();
    return 0;
  }

  if (command == "batch") {
    // --threads/--epsilon/--delta overrides; bare positionals (threads,
    // epsilon, delta in that order) are kept for compatibility.
    int threads = 0;
    double epsilon = 0.0;
    double delta = 0.0;
    int intra_threads = -1;
    bool adaptive = false;
    bool dump_metrics = false;
    std::string trace_path;
    int positional = 0;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      auto flag_value = [&](const char* name) -> const char* {
        if (arg != name) return nullptr;
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", name);
          std::exit(2);
        }
        return argv[++i];
      };
      if (const char* v = flag_value("--threads")) {
        threads = std::atoi(v);
      } else if (const char* v = flag_value("--epsilon")) {
        epsilon = std::atof(v);
      } else if (const char* v = flag_value("--delta")) {
        delta = std::atof(v);
      } else if (const char* v = flag_value("--intra-threads")) {
        intra_threads = std::atoi(v);
      } else if (const char* v = flag_value("--trace")) {
        trace_path = v;
      } else if (arg == "--adaptive") {
        adaptive = true;
      } else if (arg == "--metrics") {
        dump_metrics = true;
      } else if (arg.rfind("--", 0) == 0) {
        // Only "--" prefixes are flags: "-1" stays a valid positional
        // (threads <= 0 selects the engine's default pool).
        std::fprintf(stderr, "unknown batch flag: %s\n", arg.c_str());
        return Usage();
      } else {
        switch (positional++) {
          case 0: threads = std::atoi(arg.c_str()); break;
          case 1: epsilon = std::atof(arg.c_str()); break;
          case 2: delta = std::atof(arg.c_str()); break;
          default:
            std::fprintf(stderr, "too many batch arguments: %s\n",
                         arg.c_str());
            return Usage();
        }
      }
    }
    auto queries = ReadQueryFile(argv[2]);
    if (!queries.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   queries.status().ToString().c_str());
      return 1;
    }
    if (!trace_path.empty()) obs::TraceSink::Global().Enable();
    CountingEngine engine =
        MakeEngine(epsilon, delta, intra_threads, adaptive);
    Status registered = engine.RegisterDatabaseFile("db", db_path);
    if (!registered.ok()) {
      std::fprintf(stderr, "database error: %s\n",
                   registered.ToString().c_str());
      return 1;
    }
    std::vector<CountRequest> requests;
    for (const std::string& q : *queries) {
      CountRequest request;
      request.query = q;
      request.database = "db";
      requests.push_back(request);
    }
    auto results = engine.CountBatch(requests, threads);
    int failures = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        ++failures;
        std::printf("[%zu] error: %s\n", i,
                    results[i].status().ToString().c_str());
        continue;
      }
      const EngineResult& r = *results[i];
      std::printf("[%zu] %.2f%s  strategy=%s components=%d plan=%s\n", i,
                  r.estimate, r.exact ? " (exact)" : "",
                  StrategyName(r.strategy), r.num_components,
                  r.plan_cache_hit ? "cached" : "built");
    }
    PlanCacheStats stats = engine.CacheStats();
    std::printf(
        "# %zu queries, %d failed | plan cache: %llu hits, %llu misses, "
        "%llu evictions\n",
        results.size(), failures, static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.evictions));
    if (!trace_path.empty()) {
      obs::TraceSink::Global().Disable();
      if (!WriteTraceFile(trace_path)) return 1;
    }
    if (dump_metrics) DumpMetrics();
    return failures == 0 ? 0 : 1;
  }

  // The remaining commands drive pipeline pieces directly.
  auto query = ParseQuery(argv[2]);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  auto db = LoadDatabaseAuto(db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "database error: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  if (command == "fpras") {
    FprasOptions opts;
    opts.acjr.epsilon = argc > 4 ? std::atof(argv[4]) : 0.15;
    auto result = FprasCountCq(*query, *db, opts);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%.2f (fhw %.2f)\n", result->estimate, result->fhw);
    return 0;
  }
  if (command == "sample") {
    const int count = argc > 4 ? std::atoi(argv[4]) : 5;
    SamplerOptions opts;
    auto sampler = AnswerSampler::Create(*query, *db, opts);
    if (!sampler.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   sampler.status().ToString().c_str());
      return 1;
    }
    auto samples = (*sampler)->Sample(count);
    if (!samples.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   samples.status().ToString().c_str());
      return 1;
    }
    for (const Tuple& t : *samples) {
      for (size_t i = 0; i < t.size(); ++i) {
        std::printf(i + 1 == t.size() ? "%u\n" : "%u ", t[i]);
      }
    }
    return 0;
  }
  return Usage();
}
