// cqcount command-line interface.
//
// Usage:
//   cli count    <query> <database-file> [epsilon] [delta]
//   cli exact    <query> <database-file>
//   cli explain  <query> <database-file>
//   cli batch    <query-file> <database-file> [--threads N] [--epsilon E]
//                [--delta D]   (positional [threads] [epsilon] [delta]
//                also accepted)
//   cli fpras    <query> <database-file> [epsilon]
//   cli sample   <query> <database-file> [count]
//   cli classify <query>
//
// <query> is a Datalog-style string such as
//   'ans(x) :- F(x, y), F(x, z), y != z.'
// <query-file> holds one query per line ('#' starts a comment line).
//
// count/exact/explain/batch run through the CountingEngine: queries are
// rewritten (atom dedup, nullary guards), split into Gaifman components,
// planned per the paper's Figure 1 with per-component plans cached by
// canonical shape, and batches execute concurrently with deterministic
// per-item seeds. `explain` prints the per-component breakdown.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "automata/fpras.h"
#include "counting/sampler.h"
#include "decomposition/width_measures.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "relational/database_io.h"

using namespace cqcount;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cli count    <query> <db-file> [epsilon] [delta] "
      "[--intra-threads N]\n"
      "                                                     engine count "
      "(auto strategy)\n"
      "  cli exact    <query> <db-file>                     engine exact "
      "count\n"
      "  cli explain  <query> <db-file>                     plan + Figure 1 "
      "verdict,\n"
      "                                                     per-component "
      "breakdown\n"
      "  cli batch    <query-file> <db-file> [--threads N] [--epsilon E] "
      "[--delta D] [--intra-threads N]\n"
      "                                                     concurrent "
      "batch counts\n"
      "                                                     (positional "
      "[threads] [epsilon] [delta] also accepted)\n"
      "  cli fpras    <query> <db-file> [epsilon]           FPRAS "
      "(Thm 16, pure CQ)\n"
      "  cli sample   <query> <db-file> [count]             answer "
      "samples\n"
      "  cli classify <query>                               Figure 1 "
      "verdict (no db)\n");
  return 2;
}

StatusOr<std::vector<std::string>> ReadQueryFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open query file: " + path);
  std::vector<std::string> queries;
  std::string line;
  while (std::getline(in, line)) {
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    queries.push_back(line);
  }
  return queries;
}

CountingEngine MakeEngine(double epsilon, double delta,
                          int intra_threads = -1) {
  EngineOptions opts;
  if (epsilon > 0) opts.epsilon = epsilon;
  if (delta > 0) opts.delta = delta;
  // -1 keeps the engine default (automatic: pool-sized lanes for wide
  // queries, inline for cheap/exact components).
  if (intra_threads >= 0) opts.intra_query_threads = intra_threads;
  return CountingEngine(opts);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  if (command == "classify") {
    auto query = ParseQuery(argv[2]);
    if (!query.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    Hypergraph h = query->BuildHypergraph();
    FWidthResult tw =
        ComputeDecomposition(h, WidthObjective::kTreewidth, 16);
    FWidthResult fhw = ComputeDecomposition(
        h, WidthObjective::kFractionalHypertreewidth, 13);
    const char* kind = query->Kind() == QueryKind::kCq    ? "CQ"
                       : query->Kind() == QueryKind::kDcq ? "DCQ"
                                                          : "ECQ";
    std::printf("kind=%s arity=%d tw<=%.0f fhw<=%.2f ||phi||=%llu\n", kind,
                h.Arity(), tw.width, fhw.width,
                static_cast<unsigned long long>(query->PhiSize()));
    if (tw.width <= 4) {
      std::printf("Theorem 5 FPTRAS applies%s\n",
                  query->Kind() == QueryKind::kCq
                      ? "; Theorem 16 FPRAS applies"
                      : "; no FPRAS unless NP=RP (Obs 10)");
    } else if (fhw.width <= 4 && query->Kind() != QueryKind::kEcq) {
      std::printf("Theorem 13 FPTRAS applies (unbounded-arity regime)\n");
    } else {
      std::printf("widths look unbounded: Observations 9/15 wall\n");
    }
    return 0;
  }

  if (argc < 4) return Usage();
  const std::string db_path = argv[3];

  if (command == "count" || command == "exact" || command == "explain") {
    // count supports [epsilon] [delta] positionals plus --intra-threads.
    double epsilon = 0.0;
    double delta = 0.0;
    int intra_threads = -1;
    if (command == "count") {
      int positional = 0;
      for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--intra-threads") {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for --intra-threads\n");
            return 2;
          }
          intra_threads = std::atoi(argv[++i]);
        } else if (positional == 0) {
          epsilon = std::atof(arg.c_str());
          ++positional;
        } else if (positional == 1) {
          delta = std::atof(arg.c_str());
          ++positional;
        } else {
          std::fprintf(stderr, "too many count arguments: %s\n", arg.c_str());
          return Usage();
        }
      }
    }
    CountingEngine engine = MakeEngine(epsilon, delta, intra_threads);
    Status registered = engine.RegisterDatabaseFile("db", db_path);
    if (!registered.ok()) {
      std::fprintf(stderr, "database error: %s\n",
                   registered.ToString().c_str());
      return 1;
    }
    if (command == "explain") {
      auto explanation = engine.Explain(argv[2], "db");
      if (!explanation.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     explanation.status().ToString().c_str());
        return 1;
      }
      std::fputs(explanation->text.c_str(), stdout);
      return 0;
    }
    auto result = command == "exact" ? engine.CountExact(argv[2], "db")
                                     : engine.Count(argv[2], "db");
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%.2f%s\n", result->estimate, result->exact ? " (exact)" : "");
    unsigned long long dp_decides = 0;
    bool dp_prepared = true;
    for (const ComponentResult& comp : result->components) {
      dp_decides += comp.dp_prepared_decides;
      dp_prepared = dp_prepared && comp.dp_prepared_path;
    }
    std::printf(
        "# strategy=%s width=%.2f components=%d oracle_calls=%llu "
        "dp_prepared_decides=%llu%s plan=%s plan_ms=%.2f exec_ms=%.2f\n",
        StrategyName(result->strategy), result->width,
        result->num_components,
        static_cast<unsigned long long>(result->oracle_calls), dp_decides,
        dp_prepared ? "" : " dp=monolithic-fallback",
        result->plan_cache_hit ? "cached" : "built", result->plan_millis,
        result->exec_millis);
    std::printf(
        "# parallel: lanes=%d tasks=%llu worker_tasks=%llu\n",
        result->parallel.lanes,
        static_cast<unsigned long long>(result->parallel.tasks),
        static_cast<unsigned long long>(result->parallel.worker_tasks));
    if (result->num_components > 1) {
      for (size_t c = 0; c < result->components.size(); ++c) {
        const ComponentResult& comp = result->components[c];
        if (!comp.executed) {
          // A false nullary guard zeroes the product before execution.
          std::printf("#   component %zu: skipped (false guard) strategy=%s "
                      "plan=%s\n",
                      c, StrategyName(comp.strategy),
                      comp.plan_cache_hit ? "cached" : "built");
          continue;
        }
        std::printf(
            "#   component %zu: factor=%.2f strategy=%s%s epsilon=%.3g "
            "plan=%s\n",
            c, comp.estimate, StrategyName(comp.strategy),
            comp.existential ? " (existential)" : "", comp.epsilon,
            comp.plan_cache_hit ? "cached" : "built");
      }
    }
    return 0;
  }

  if (command == "batch") {
    // --threads/--epsilon/--delta overrides; bare positionals (threads,
    // epsilon, delta in that order) are kept for compatibility.
    int threads = 0;
    double epsilon = 0.0;
    double delta = 0.0;
    int intra_threads = -1;
    int positional = 0;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      auto flag_value = [&](const char* name) -> const char* {
        if (arg != name) return nullptr;
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", name);
          std::exit(2);
        }
        return argv[++i];
      };
      if (const char* v = flag_value("--threads")) {
        threads = std::atoi(v);
      } else if (const char* v = flag_value("--epsilon")) {
        epsilon = std::atof(v);
      } else if (const char* v = flag_value("--delta")) {
        delta = std::atof(v);
      } else if (const char* v = flag_value("--intra-threads")) {
        intra_threads = std::atoi(v);
      } else if (arg.rfind("--", 0) == 0) {
        // Only "--" prefixes are flags: "-1" stays a valid positional
        // (threads <= 0 selects the engine's default pool).
        std::fprintf(stderr, "unknown batch flag: %s\n", arg.c_str());
        return Usage();
      } else {
        switch (positional++) {
          case 0: threads = std::atoi(arg.c_str()); break;
          case 1: epsilon = std::atof(arg.c_str()); break;
          case 2: delta = std::atof(arg.c_str()); break;
          default:
            std::fprintf(stderr, "too many batch arguments: %s\n",
                         arg.c_str());
            return Usage();
        }
      }
    }
    auto queries = ReadQueryFile(argv[2]);
    if (!queries.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   queries.status().ToString().c_str());
      return 1;
    }
    CountingEngine engine = MakeEngine(epsilon, delta, intra_threads);
    Status registered = engine.RegisterDatabaseFile("db", db_path);
    if (!registered.ok()) {
      std::fprintf(stderr, "database error: %s\n",
                   registered.ToString().c_str());
      return 1;
    }
    std::vector<CountRequest> requests;
    for (const std::string& q : *queries) {
      CountRequest request;
      request.query = q;
      request.database = "db";
      requests.push_back(request);
    }
    auto results = engine.CountBatch(requests, threads);
    int failures = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        ++failures;
        std::printf("[%zu] error: %s\n", i,
                    results[i].status().ToString().c_str());
        continue;
      }
      const EngineResult& r = *results[i];
      std::printf("[%zu] %.2f%s  strategy=%s components=%d plan=%s\n", i,
                  r.estimate, r.exact ? " (exact)" : "",
                  StrategyName(r.strategy), r.num_components,
                  r.plan_cache_hit ? "cached" : "built");
    }
    PlanCacheStats stats = engine.CacheStats();
    std::printf(
        "# %zu queries, %d failed | plan cache: %llu hits, %llu misses, "
        "%llu evictions\n",
        results.size(), failures, static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.evictions));
    return failures == 0 ? 0 : 1;
  }

  // The remaining commands drive pipeline pieces directly.
  auto query = ParseQuery(argv[2]);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  auto db = ReadDatabaseFile(db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "database error: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  if (command == "fpras") {
    FprasOptions opts;
    opts.acjr.epsilon = argc > 4 ? std::atof(argv[4]) : 0.15;
    auto result = FprasCountCq(*query, *db, opts);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%.2f (fhw %.2f)\n", result->estimate, result->fhw);
    return 0;
  }
  if (command == "sample") {
    const int count = argc > 4 ? std::atoi(argv[4]) : 5;
    SamplerOptions opts;
    auto sampler = AnswerSampler::Create(*query, *db, opts);
    if (!sampler.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   sampler.status().ToString().c_str());
      return 1;
    }
    auto samples = (*sampler)->Sample(count);
    if (!samples.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   samples.status().ToString().c_str());
      return 1;
    }
    for (const Tuple& t : *samples) {
      for (size_t i = 0; i < t.size(); ++i) {
        std::printf(i + 1 == t.size() ? "%u\n" : "%u ", t[i]);
      }
    }
    return 0;
  }
  return Usage();
}
