// cqcount command-line interface.
//
// Usage:
//   cli count    <query> <database-file> [epsilon] [delta]
//   cli exact    <query> <database-file>
//   cli fpras    <query> <database-file> [epsilon]
//   cli sample   <query> <database-file> [count]
//   cli classify <query>
//
// <query> is a Datalog-style string such as
//   'ans(x) :- F(x, y), F(x, z), y != z.'
#include <cstdio>
#include <cstdlib>
#include <string>

#include "automata/fpras.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "counting/sampler.h"
#include "decomposition/width_measures.h"
#include "query/parser.h"
#include "relational/database_io.h"

using namespace cqcount;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cli count    <query> <db-file> [epsilon] [delta]   FPTRAS "
      "(Thm 5/13)\n"
      "  cli exact    <query> <db-file>                     brute force\n"
      "  cli fpras    <query> <db-file> [epsilon]           FPRAS "
      "(Thm 16, pure CQ)\n"
      "  cli sample   <query> <db-file> [count]             answer "
      "samples\n"
      "  cli classify <query>                               Figure 1 "
      "verdict\n");
  return 2;
}

StatusOr<Query> LoadQuery(const char* text) { return ParseQuery(text); }

StatusOr<Database> LoadDb(const char* path) {
  return ReadDatabaseFile(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  auto query = LoadQuery(argv[2]);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  if (command == "classify") {
    Hypergraph h = query->BuildHypergraph();
    FWidthResult tw =
        ComputeDecomposition(h, WidthObjective::kTreewidth, 16);
    FWidthResult fhw = ComputeDecomposition(
        h, WidthObjective::kFractionalHypertreewidth, 13);
    const char* kind = query->Kind() == QueryKind::kCq    ? "CQ"
                       : query->Kind() == QueryKind::kDcq ? "DCQ"
                                                          : "ECQ";
    std::printf("kind=%s arity=%d tw<=%.0f fhw<=%.2f ||phi||=%llu\n", kind,
                h.Arity(), tw.width, fhw.width,
                static_cast<unsigned long long>(query->PhiSize()));
    if (tw.width <= 4) {
      std::printf("Theorem 5 FPTRAS applies%s\n",
                  query->Kind() == QueryKind::kCq
                      ? "; Theorem 16 FPRAS applies"
                      : "; no FPRAS unless NP=RP (Obs 10)");
    } else if (fhw.width <= 4 && query->Kind() != QueryKind::kEcq) {
      std::printf("Theorem 13 FPTRAS applies (unbounded-arity regime)\n");
    } else {
      std::printf("widths look unbounded: Observations 9/15 wall\n");
    }
    return 0;
  }

  if (argc < 4) return Usage();
  auto db = LoadDb(argv[3]);
  if (!db.ok()) {
    std::fprintf(stderr, "database error: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  if (command == "exact") {
    const uint64_t count = ExactCountAnswersBruteForce(*query, *db);
    std::printf("%llu\n", static_cast<unsigned long long>(count));
    return 0;
  }
  if (command == "count") {
    ApproxOptions opts;
    opts.epsilon = argc > 4 ? std::atof(argv[4]) : 0.1;
    opts.delta = argc > 5 ? std::atof(argv[5]) : 0.1;
    auto result = ApproxCountAnswers(*query, *db, opts);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%.2f%s\n", result->estimate,
                result->exact ? " (exact)" : "");
    return 0;
  }
  if (command == "fpras") {
    FprasOptions opts;
    opts.acjr.epsilon = argc > 4 ? std::atof(argv[4]) : 0.15;
    auto result = FprasCountCq(*query, *db, opts);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%.2f (fhw %.2f)\n", result->estimate, result->fhw);
    return 0;
  }
  if (command == "sample") {
    const int count = argc > 4 ? std::atoi(argv[4]) : 5;
    SamplerOptions opts;
    auto sampler = AnswerSampler::Create(*query, *db, opts);
    if (!sampler.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   sampler.status().ToString().c_str());
      return 1;
    }
    auto samples = (*sampler)->Sample(count);
    if (!samples.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   samples.status().ToString().c_str());
      return 1;
    }
    for (const Tuple& t : *samples) {
      for (size_t i = 0; i < t.size(); ++i) {
        std::printf(i + 1 == t.size() ? "%u\n" : "%u ", t[i]);
      }
    }
    return 0;
  }
  return Usage();
}
