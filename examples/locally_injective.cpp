// Corollary 6 in action: counting locally injective homomorphisms.
//
// Locally injective homomorphisms model interference-free frequency
// assignments: mapping a pattern network G into a host G' such that
// no two neighbours of any pattern node collide. The paper encodes
// these as answers of a DCQ whose hypergraph ignores the disequalities,
// so bounded-treewidth patterns stay tractable (Corollary 6).
#include <cstdio>

#include "app/graph_gen.h"
#include "app/lihom.h"

using namespace cqcount;

static void Report(const char* name, const SimpleGraph& pattern,
                   const SimpleGraph& host) {
  auto query = lihom::BuildLihomQuery(pattern);
  if (!query.ok()) {
    std::fprintf(stderr, "%s: %s\n", name,
                 query.status().ToString().c_str());
    return;
  }
  ApproxOptions opts;
  opts.epsilon = 0.15;
  opts.delta = 0.15;
  opts.seed = 99;
  auto approx = lihom::ApproxCountLocallyInjectiveHoms(pattern, host, opts);
  auto exact = lihom::ExactCountLocallyInjectiveHoms(pattern, host);
  std::printf("%-28s |V(G)|=%d |cn(G)|=%zu", name, pattern.num_vertices,
              lihom::CommonNeighbourPairs(pattern).size());
  if (approx.ok()) std::printf("  estimate=%.1f", approx->estimate);
  if (exact.ok()) {
    std::printf("  exact=%llu", static_cast<unsigned long long>(*exact));
  }
  std::printf("\n");
}

int main() {
  std::printf("locally injective homomorphism counting (Corollary 6)\n\n");
  Rng rng(5);
  SimpleGraph host = ErdosRenyi(12, 0.4, rng);
  std::printf("host: Erdos-Renyi, %d vertices, %d edges\n\n",
              host.num_vertices, host.num_edges());

  Report("path P3", PathGraph(3), host);
  Report("path P4", PathGraph(4), host);
  Report("star S3 (claw)", StarGraph(3), host);
  Report("binary tree (7 nodes)", BinaryTreeGraph(7), host);
  Report("triangle C3", CycleGraph(3), host);

  std::printf(
      "\nAll patterns have treewidth 1-2, so Theorem 5 applies even\n"
      "though the disequality count |cn(G)| grows: the disequalities\n"
      "do not enter the query hypergraph (Definition 3).\n");
  return 0;
}
