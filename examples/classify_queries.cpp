// The Figure 1 navigator: classify a query against the paper's
// tractability landscape.
//
// Usage:
//   ./classify_queries                      # classify built-in examples
//   ./classify_queries 'ans(x) :- R(x, y).' # classify your own query
#include <cstdio>
#include <string>
#include <vector>

#include "decomposition/width_measures.h"
#include "query/parser.h"

using namespace cqcount;

static void Classify(const std::string& text) {
  auto query = ParseQuery(text);
  if (!query.ok()) {
    std::printf("%s\n  parse error: %s\n\n", text.c_str(),
                query.status().ToString().c_str());
    return;
  }
  Hypergraph h = query->BuildHypergraph();
  const int arity = h.Arity();
  auto tw = ExactTreewidth(h, 16);
  auto fhw = ExactFhw(h, 13);
  auto aw_ub = AdaptiveWidthUpperBound(h, 13);
  const char* kind = query->Kind() == QueryKind::kCq    ? "CQ"
                     : query->Kind() == QueryKind::kDcq ? "DCQ"
                                                        : "ECQ";
  std::printf("%s\n  kind=%s  arity=%d", text.c_str(), kind, arity);
  if (tw.ok()) std::printf("  tw=%.0f", tw->width);
  if (fhw.ok()) std::printf("  fhw=%.2f", fhw->width);
  if (aw_ub.ok()) std::printf("  aw<=%.2f", *aw_ub);
  std::printf("\n  => ");

  const double tw_v = tw.ok() ? tw->width : 1e9;
  const double fhw_v = fhw.ok() ? fhw->width : 1e9;
  if (tw_v <= 4 && arity <= 3) {
    std::printf("Theorem 5: FPTRAS (bounded treewidth & arity).");
    if (query->Kind() == QueryKind::kCq) {
      std::printf(" Theorem 16: FPRAS (pure CQ).");
    } else {
      std::printf(" No FPRAS unless NP = RP (Observation 10).");
    }
  } else if (fhw_v <= 4 && query->Kind() != QueryKind::kEcq) {
    if (query->Kind() == QueryKind::kCq) {
      std::printf("Theorem 16: FPRAS (bounded fhw CQ).");
    } else {
      std::printf("Theorem 13: FPTRAS (bounded adaptive width DCQ).");
    }
  } else {
    std::printf(
        "width looks unbounded in this family: Observations 9/15 rule "
        "out an FPTRAS under rETH.");
  }
  std::printf("\n\n");
}

int main(int argc, char** argv) {
  std::printf("cqcount query classifier (Figure 1 of the paper)\n\n");
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) Classify(argv[i]);
    return 0;
  }
  const std::vector<std::string> examples = {
      "ans(x) :- F(x, y), F(x, z), y != z.",
      "ans(x, z) :- E(x, y), E(y, z).",
      "ans(a, b, c) :- R(a, b), S(b, c), T(a, c).",
      "ans(x) :- Adult(x), F(x, y), F(x, z), !F(y, z), y != z.",
      "ans(a, b, c, d) :- E(a, b), E(b, c), E(c, d), a != b, a != c, "
      "a != d, b != c, b != d, c != d.",
      "ans(a, e) :- R(a, b, c, d), S(b, c, d, e).",
  };
  for (const std::string& text : examples) Classify(text);
  return 0;
}
