// Social-network analytics with extended conjunctive queries.
//
// Generates a synthetic friendship network and answers a small workload
// of CQ / DCQ / ECQ analytics with the approximation schemes, comparing
// against exact counts where feasible.
#include <cstdio>
#include <string>
#include <vector>

#include "app/workload.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "query/parser.h"

using namespace cqcount;

int main() {
  Rng rng(7);
  const uint32_t people = 120;
  Database db = SocialNetworkDb(people, 6.0, 0.4, rng);
  std::printf("social network: %u people, %llu friendship facts, "
              "%zu adults\n\n",
              people,
              static_cast<unsigned long long>(db.relation("F").size()),
              db.relation("Adult").size());

  struct Workload {
    const char* description;
    const char* text;
  };
  const std::vector<Workload> workload = {
      {"popular: people with >= 2 distinct friends (DCQ)",
       "ans(x) :- F(x, y), F(x, z), y != z."},
      {"wedges: friend-pairs at distance two (CQ)",
       "ans(x, z) :- F(x, y), F(y, z)."},
      {"open triangles: adults whose two friends are strangers (ECQ)",
       "ans(x) :- Adult(x), F(x, y), F(x, z), !F(y, z), y != z."},
      {"matchmaking: adult pairs with a common friend, not yet friends "
       "(ECQ)",
       "ans(x, y) :- Adult(x), Adult(y), F(x, z), F(y, z), !F(x, y), "
       "x != y."},
  };

  for (const Workload& item : workload) {
    auto query = ParseQuery(item.text);
    if (!query.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   query.status().ToString().c_str());
      continue;
    }
    ApproxOptions opts;
    opts.epsilon = 0.15;
    opts.delta = 0.1;
    opts.seed = 1234;
    auto approx = ApproxCountAnswers(*query, db, opts);
    std::printf("%s\n  %s\n", item.description, item.text);
    if (!approx.ok()) {
      std::printf("  error: %s\n\n", approx.status().ToString().c_str());
      continue;
    }
    const uint64_t exact = ExactCountAnswersBruteForce(*query, db);
    std::printf("  estimate = %.1f   exact = %llu   width = %.0f   "
                "hom queries = %llu\n\n",
                approx->estimate, static_cast<unsigned long long>(exact),
                approx->width,
                static_cast<unsigned long long>(approx->hom_queries));
  }
  return 0;
}
