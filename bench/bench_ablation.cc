// EXP-ABL: ablations of the design choices DESIGN.md calls out.
//
//  (a) DLM estimator: stratified box splitting vs sample-doubling only
//      (same oracle, same epsilon target) — splits should reach the
//      target with far fewer oracle calls.
//  (b) Decomposition objective for the Hom oracle: treewidth-optimal vs
//      fhw-optimal bags on a wide-atom DCQ — the fhw objective keeps bag
//      relations polynomial (Lemma 48's point).
//  (c) Exact-enumeration budget: 0 (estimate everything) vs default —
//      the fast path is what makes small answer sets exact and cheap.
#include "app/graph_gen.h"
#include "bench_util.h"
#include "counting/dlm_counter.h"
#include "counting/fptras.h"
#include "counting/partite_hypergraph.h"
#include "query/parser.h"
#include "util/timer.h"

namespace cqcount {

int Run() {
  bench::Header("EXP-ABL", "ablations: estimator and oracle design choices");

  // (a) stratified splitting.
  {
    auto q = ParseQuery("ans(x, y) :- E(x, y).");
    Rng rng(42);
    const uint32_t n = bench::Sized(96u, 32u);
    Database db = GraphToDatabase(ErdosRenyi(n, 0.15, rng));
    BruteForceEdgeFreeOracle truth(*q, db);
    const double exact = static_cast<double>(truth.answers().size());
    bench::Row("(a) DLM stratified splits vs sampling only (exact=%d)",
               static_cast<int>(exact));
    bench::Row("%-18s %12s %10s %14s %10s", "variant", "estimate",
               "rel.err", "oracle calls", "converged");
    for (bool splits : {true, false}) {
      BruteForceEdgeFreeOracle oracle(*q, db);
      DlmOptions opts;
      opts.epsilon = 0.08;
      opts.delta = 0.2;
      opts.exact_enumeration_budget = 16;  // Force the estimation path.
      opts.max_frontier = 32;  // Few, deep boxes: variance reduction counts.
      opts.enable_stratified_splits = splits;
      opts.seed = 7;
      auto result = DlmCountEdges({n, n}, oracle, opts);
      if (!result.ok()) continue;
      bench::Row("%-18s %12.1f %10.4f %14llu %10s",
                 splits ? "with splits" : "samples only", result->estimate,
                 bench::RelativeError(result->estimate, exact),
                 static_cast<unsigned long long>(result->oracle_calls),
                 result->converged ? "yes" : "no");
    }
  }

  // (b) decomposition objective.
  {
    auto q = ParseQuery(
        "ans(a, e) :- R(a, b, c, d), S(b, c, d, e), a != e.");
    Database final_db(12);
    Status s = final_db.DeclareRelation("R", 4);
    (void)s;
    s = final_db.DeclareRelation("S", 4);
    Rng tuple_rng(17);
    for (int i = 0; i < bench::Sized(250, 60); ++i) {
      Tuple t(4);
      for (int j = 0; j < 4; ++j) {
        t[j] = static_cast<Value>(tuple_rng.UniformInt(12));
      }
      (void)final_db.AddFact("R", t);
      for (int j = 0; j < 4; ++j) {
        t[j] = static_cast<Value>(tuple_rng.UniformInt(12));
      }
      (void)final_db.AddFact("S", std::move(t));
    }
    final_db.Canonicalize();
    bench::Row("\n(b) Hom-oracle decomposition objective (wide-atom DCQ)");
    bench::Row("%-22s %10s %12s %12s", "objective", "width", "estimate",
               "ms");
    for (auto objective : {WidthObjective::kTreewidth,
                           WidthObjective::kFractionalHypertreewidth}) {
      ApproxOptions opts;
      opts.epsilon = 0.2;
      opts.delta = 0.25;
      opts.seed = 19;
      opts.objective = objective;
      opts.exact_decomposition_limit = 10;
      opts.per_call_failure_override = 0.02;
      WallTimer timer;
      auto result = ApproxCountAnswers(*q, final_db, opts);
      const double ms = timer.Millis();
      bench::Row("%-22s %10.2f %12.1f %12.2f",
                 objective == WidthObjective::kTreewidth
                     ? "treewidth"
                     : "fractional htw",
                 result.ok() ? result->width : -1.0,
                 result.ok() ? result->estimate : -1.0, ms);
    }
  }

  // (c) exact-enumeration budget.
  {
    auto q = ParseQuery("ans(x, y) :- E(x, y).");
    Database db = GraphToDatabase(CycleGraph(16));
    bench::Row("\n(c) exact-enumeration fast path (answer set = 32)");
    bench::Row("%-18s %12s %14s %8s", "budget", "estimate",
               "oracle calls", "exact");
    for (uint64_t budget : {0ull, 1024ull}) {
      BruteForceEdgeFreeOracle oracle(*q, db);
      DlmOptions opts;
      opts.exact_enumeration_budget = budget;
      opts.epsilon = 0.15;
      opts.delta = 0.25;
      opts.seed = 23;
      auto result = DlmCountEdges({16, 16}, oracle, opts);
      if (!result.ok()) continue;
      bench::Row("%-18llu %12.1f %14llu %8s",
                 static_cast<unsigned long long>(budget), result->estimate,
                 static_cast<unsigned long long>(result->oracle_calls),
                 result->exact ? "yes" : "no");
    }
  }
  bench::Row("%s",
             "\nshape: both estimator variants meet the epsilon target (splits "
             "help most when variance concentrates in few boxes); "
             "fhw-guided bags keep wide-atom oracles polynomial; the "
             "enumeration fast path makes small counts exact.");
  return 0;
}

}  // namespace cqcount

int main() { return cqcount::Run(); }
