// EXP-T13: Theorem 13 — FPTRAS for #DCQ with bounded adaptive width,
// unbounded arity.
//
// Workload: hyperpath DCQs R(a_1..a_k), S(a_k, b_2..b_k) with a
// disequality, for arity k in {2,4,6,8}. Every member has fhw <= 2 and
// aw <= 2 even though the arity (and hence treewidth: the atoms are
// cliques in the primal graph) grows. The fhw-guided oracle keeps the
// runtime polynomial in ||D|| at every arity.
#include "app/workload.h"
#include "bench_util.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "decomposition/width_measures.h"
#include "query/query.h"
#include "util/timer.h"

namespace cqcount {
namespace {

Query HyperPath(int arity) {
  Query q;
  std::vector<int> first;
  for (int i = 0; i < arity; ++i) {
    first.push_back(q.AddVariable("a" + std::to_string(i)));
  }
  std::vector<int> second = {first.back()};
  for (int i = 1; i < arity; ++i) {
    second.push_back(q.AddVariable("b" + std::to_string(i)));
  }
  q.SetNumFree(2);  // a0 and a1 free.
  q.AddAtom({"R", first, false});
  q.AddAtom({"S", second, false});
  q.AddDisequality(0, 1);
  return q;
}

Database MakeDb(const Query& q, uint32_t n, uint64_t tuples, uint64_t seed) {
  Rng rng(seed);
  Database db(n);
  for (const Atom& atom : q.atoms()) {
    AddRandomTuples(&db, atom.relation, static_cast<int>(atom.vars.size()),
                    tuples, rng);
  }
  return db;
}

}  // namespace

int Run() {
  bench::Header("EXP-T13",
                "Theorem 13: unbounded arity, bounded adaptive width");
  bench::Row("(a) widths grow apart: tw ~ arity, fhw/aw stay <= 2");
  bench::Row("%8s %6s %8s %8s", "arity", "tw", "fhw", "aw_ub");
  for (int arity : bench::Sweep<int>({2, 4, 6}, 2)) {
    Query q = HyperPath(arity);
    Hypergraph h = q.BuildHypergraph();
    auto tw = ExactTreewidth(h, 14);
    auto fhw = ExactFhw(h, 12);
    auto aw = AdaptiveWidthUpperBound(h, 12);
    bench::Row("%8d %6.0f %8.2f %8.2f", arity, tw.ok() ? tw->width : -1,
               fhw.ok() ? fhw->width : -1, aw.ok() ? *aw : -1);
  }

  bench::Row("\n(b) accuracy vs brute force (small, arity sweep)");
  bench::Row("%8s %12s %12s %10s", "arity", "exact", "estimate", "rel.err");
  for (int arity : bench::Sweep<int>({2, 4, 6, 8}, 2)) {
    Query q = HyperPath(arity);
    Database db = MakeDb(q, 5, 40, arity);
    const double exact =
        static_cast<double>(ExactCountAnswersBruteForce(q, db));
    ApproxOptions opts;
    opts.epsilon = 0.15;
    opts.delta = 0.2;
    opts.seed = 21;
    opts.objective = WidthObjective::kFractionalHypertreewidth;
    opts.exact_decomposition_limit = 12;
    opts.per_call_failure_override = 0.02;
    auto approx = ApproxCountAnswers(q, db, opts);
    if (!approx.ok()) {
      bench::Row("%8d error: %s", arity,
                 approx.status().ToString().c_str());
      continue;
    }
    bench::Row("%8d %12.0f %12.1f %10.4f", arity, exact, approx->estimate,
               bench::RelativeError(approx->estimate, exact));
  }

  bench::Row("\n(c) poly scaling in ||D|| at arity 6 (eps=0.35)");
  bench::Row("%8s %10s %12s %12s", "N", "tuples", "estimate", "ms");
  Query q6 = HyperPath(6);
  for (uint32_t n : bench::Sweep<uint32_t>({16u, 32u, 48u})) {
    Database db = MakeDb(q6, n, 10 * n, 900 + n);
    ApproxOptions opts;
    opts.epsilon = 0.35;
    opts.delta = 0.3;
    opts.seed = 23;
    opts.objective = WidthObjective::kFractionalHypertreewidth;
    opts.exact_decomposition_limit = 12;
    opts.per_call_failure_override = 0.02;
    opts.dlm.max_frontier = 1024;
    opts.dlm.initial_samples_per_box = 2;
    opts.dlm.max_refinement_rounds = 8;
    WallTimer timer;
    auto approx = ApproxCountAnswers(q6, db, opts);
    const double ms = timer.Millis();
    bench::Row("%8u %10u %12.1f %12.2f", n, 10 * n,
               approx.ok() ? approx->estimate : -1.0, ms);
  }
  bench::Row("%s",
             "\npaper shape: treewidth grows linearly with the arity yet "
             "the FPTRAS stays feasible -- the adaptive/fractional width "
             "is the right parameter in the unbounded-arity regime.");
  return 0;
}

}  // namespace cqcount

int main() { return cqcount::Run(); }
