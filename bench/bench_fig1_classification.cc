// EXP-F1: regenerates Figure 1 (the tractability classification matrix).
//
// For a corpus of query families we measure the width parameters
// (treewidth, hypertreewidth bound, fractional hypertreewidth, adaptive
// width bounds) of H(phi) and print the verdict per the paper's
// classification:
//   bounded arity:   FPTRAS for ECQ iff tw bounded (Thm 5 / Obs 9);
//                    no FPRAS once disequalities appear (Obs 10).
//   unbounded arity: FPTRAS for DCQ iff aw bounded (Thm 13 / Obs 15);
//                    FPRAS for CQ if fhw bounded (Thm 16).
#include <string>
#include <vector>

#include "app/graph_gen.h"
#include "app/lihom.h"
#include "bench_util.h"
#include "decomposition/width_measures.h"
#include "query/parser.h"
#include "query/query.h"

namespace cqcount {
namespace {

struct Entry {
  std::string name;
  Query query;
};

Query MustParse(const std::string& text) {
  auto q = ParseQuery(text);
  if (!q.ok()) {
    std::fprintf(stderr, "parse error: %s\n", q.status().ToString().c_str());
    std::abort();
  }
  return *q;
}

Query HamiltonQuery(int n) {
  Query q;
  for (int i = 0; i < n; ++i) q.AddVariable("x" + std::to_string(i));
  q.SetNumFree(n);
  for (int i = 0; i + 1 < n; ++i) q.AddAtom({"E", {i, i + 1}, false});
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) q.AddDisequality(i, j);
  }
  return q;
}

Query GridCq(int k) {
  // One binary atom per grid edge; all variables existential except one.
  SimpleGraph grid = GridGraph(k, k);
  Query q;
  for (int v = 0; v < grid.num_vertices; ++v) {
    q.AddVariable("g" + std::to_string(v));
  }
  q.SetNumFree(1);
  for (const auto& [u, v] : grid.edges) q.AddAtom({"E", {u, v}, false});
  return q;
}

Query WideAcyclic(int arity) {
  // Two overlapping wide atoms: hyperpath of arity `arity`, fhw = aw <= 2.
  Query q;
  std::vector<int> first;
  std::vector<int> second;
  for (int i = 0; i < arity; ++i) {
    first.push_back(q.AddVariable("a" + std::to_string(i)));
  }
  second.push_back(first.back());
  for (int i = 1; i < arity; ++i) {
    second.push_back(q.AddVariable("b" + std::to_string(i)));
  }
  q.SetNumFree(2);
  q.AddAtom({"R", first, false});
  q.AddAtom({"S", second, false});
  q.AddDisequality(0, 1);
  return q;
}

const char* KindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kCq:
      return "CQ";
    case QueryKind::kDcq:
      return "DCQ";
    case QueryKind::kEcq:
      return "ECQ";
  }
  return "?";
}

// The Figure 1 verdict for a measured query.
std::string Verdict(const Query& q, double tw, double fhw, double aw_ub) {
  const bool bounded_arity_small = q.BuildHypergraph().Arity() <= 3;
  const bool has_diseq = !q.disequalities().empty();
  std::string v;
  if (tw <= 3) {
    v = "FPTRAS (Thm 5)";
    if (!has_diseq && q.Kind() == QueryKind::kCq) {
      v += " + FPRAS (Thm 16)";
    } else {
      v += "; no FPRAS (Obs 10)";
    }
    return v;
  }
  if (!bounded_arity_small && aw_ub <= 3 && q.Kind() != QueryKind::kEcq) {
    v = "FPTRAS (Thm 13)";
    if (q.Kind() == QueryKind::kCq && fhw <= 3) v += " + FPRAS (Thm 16)";
    return v;
  }
  return "no FPTRAS for unbounded width (Obs 9/15, rETH)";
}

}  // namespace

int main() {
  bench::Header("EXP-F1",
                "Figure 1: width measures and tractability verdicts");
  std::vector<Entry> corpus;
  corpus.push_back({"friends (eq. 1)",
                    MustParse("ans(x) :- F(x, y), F(x, z), y != z.")});
  corpus.push_back({"2-path CQ",
                    MustParse("ans(x, z) :- E(x, y), E(y, z).")});
  corpus.push_back(
      {"AGM triangle CQ",
       MustParse("ans(a, b, c) :- R(a, b), S(b, c), T(a, c).")});
  corpus.push_back(
      {"non-friend ECQ",
       MustParse("ans(x) :- F(x, y), F(x, z), !F(y, z), y != z.")});
  corpus.push_back({"hamilton-5 DCQ (Obs 10)", HamiltonQuery(5)});
  corpus.push_back({"hamilton-7 DCQ (Obs 10)", HamiltonQuery(7)});
  {
    auto lihom = lihom::BuildLihomQuery(BinaryTreeGraph(7));
    corpus.push_back({"LIHom binary-tree-7 (Cor 6)", *lihom});
  }
  corpus.push_back({"grid 3x3 CQ (Obs 9 family)", GridCq(3)});
  corpus.push_back({"wide hyperpath arity 6 DCQ (Thm 13)", WideAcyclic(6)});
  corpus.push_back({"wide hyperpath arity 9 DCQ (Thm 13)", WideAcyclic(9)});

  bench::Row("%-36s %-4s %5s %5s %6s %7s %7s  %s", "query family", "kind",
             "arity", "tw", "fhw", "aw_lb", "aw_ub", "verdict");
  for (const Entry& entry : corpus) {
    const Query& q = entry.query;
    Hypergraph h = q.BuildHypergraph();
    const int arity = h.Arity();
    // Exact search when small; heuristic (min-fill) upper bounds above.
    FWidthResult tw_bound =
        ComputeDecomposition(h, WidthObjective::kTreewidth, 16);
    FWidthResult fhw_bound =
        ComputeDecomposition(h, WidthObjective::kFractionalHypertreewidth,
                             13);
    auto aw_lb = AdaptiveWidthLowerBound(h, 13);
    const double tw_v = tw_bound.width;
    const double fhw_v = fhw_bound.width;
    const double aw_ub_v = fhw_v;  // aw <= fhw always.
    bench::Row("%-36s %-4s %5d %5.0f %6.2f %7.2f %7.2f  %s",
               entry.name.c_str(), KindName(q.Kind()), arity, tw_v, fhw_v,
               aw_lb.ok() ? *aw_lb : -1.0, aw_ub_v,
               Verdict(q, tw_v, fhw_v, aw_ub_v).c_str());
  }
  bench::Row("%s", "");
  bench::Row("%s",
             "paper shape: bounded tw => FPTRAS for all ECQs; disequalities "
             "forbid an FPRAS even at tw 1;");
  bench::Row("%s",
             "unbounded arity: bounded aw => FPTRAS for DCQs; bounded fhw "
             "=> FPRAS for pure CQs.");
  return 0;
}

}  // namespace cqcount

int main() { return cqcount::main(); }
