// EXP-T5: Theorem 5 — FPTRAS for #ECQ with bounded treewidth and arity.
//
// Workload: the "non-friend witnesses" ECQ (positive atoms + negation +
// disequality, tw(H(phi)) = 1..2) over Erdos-Renyi social networks.
// Series reported:
//   (a) accuracy vs epsilon at fixed N (measured relative error, always
//       within the target at the configured delta);
//   (b) runtime and oracle statistics vs ||D|| (poly growth; the
//       brute-force baseline blows up in the query size instead).
#include <string>

#include "app/workload.h"
#include "bench_util.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "util/timer.h"

namespace cqcount {
namespace {

Query TheQuery() {
  auto q = ParseQuery(
      "ans(x) :- F(x, y), F(x, z), !F(y, z), y != z.");
  return *q;
}

}  // namespace

int Run() {
  Query q = TheQuery();
  bench::Header("EXP-T5", "Theorem 5 FPTRAS for a treewidth-1 ECQ");
  bench::Row("query: %s", q.ToString().c_str());

  // (a) accuracy vs epsilon at N = 60.
  {
    Rng rng(101);
    const uint32_t n = bench::Sized(60u, 24u);
    Database db = SocialNetworkDb(n, 5.0, 0.5, rng);
    const double exact =
        static_cast<double>(ExactCountAnswersBruteForce(q, db));
    bench::Row("\n(a) accuracy vs epsilon (N=%u, exact=%d)", n,
               static_cast<int>(exact));
    bench::Row("%8s %12s %10s %12s %12s", "epsilon", "estimate", "rel.err",
               "EdgeFree", "HomQueries");
    for (double epsilon : bench::Sweep<double>({0.3, 0.2, 0.1, 0.05}, 2)) {
      ApproxOptions opts;
      opts.epsilon = epsilon;
      opts.delta = 0.1;
      opts.seed = 42;
      // Force the estimation path so the epsilon dependence is visible
      // (with the default budget this instance is resolved exactly).
      opts.dlm.exact_enumeration_budget = 8;
      opts.dlm.max_frontier = 32;
      auto result = ApproxCountAnswers(q, db, opts);
      if (!result.ok()) {
        bench::Row("error: %s", result.status().ToString().c_str());
        continue;
      }
      bench::Row("%8.2f %12.1f %10.4f %12llu %12llu", epsilon,
                 result->estimate,
                 bench::RelativeError(result->estimate, exact),
                 static_cast<unsigned long long>(result->edgefree_calls),
                 static_cast<unsigned long long>(result->hom_queries));
    }
  }

  // (b) scaling in ||D||, routed through the CountingEngine: the first
  // call per database plans (and caches) the decomposition, the repeat
  // call shows the warm plan-cache path.
  bench::Row("\n(b) engine runtime vs database size (epsilon=0.2, delta=0.2)");
  bench::Row("%8s %10s %12s %10s %10s %12s %12s", "N", "||D||", "estimate",
             "cold_ms", "warm_ms", "brute_ms", "rel.err");
  EngineOptions engine_opts;
  engine_opts.epsilon = 0.2;
  engine_opts.delta = 0.2;
  // Force the FPTRAS path even on small instances so the scaling series
  // measures the Theorem 5 pipeline, not the exact fallback.
  engine_opts.plan.exact_cost_limit = 0.0;
  CountingEngine engine(engine_opts);
  for (uint32_t n : bench::Sweep<uint32_t>({50u, 100u, 200u, 400u, 800u}, 2)) {
    Rng rng(500 + n);
    Database db = SocialNetworkDb(n, 5.0, 0.5, rng);
    const std::string db_name = "social-" + std::to_string(n);
    Status registered = engine.RegisterDatabase(db_name, db);
    if (!registered.ok()) {
      bench::Row("error: %s", registered.ToString().c_str());
      continue;
    }
    CountRequest request;
    request.query = q.ToString();
    request.database = db_name;
    request.seed = 4242;
    WallTimer timer;
    auto result = engine.Count(request);
    const double cold_ms = timer.Millis();
    if (!result.ok()) {
      bench::Row("error: %s", result.status().ToString().c_str());
      continue;
    }
    timer.Reset();
    auto warm = engine.Count(request);
    const double warm_ms = timer.Millis();
    if (!warm.ok() || !warm->plan_cache_hit ||
        warm->estimate != result->estimate) {
      bench::Row("error: warm path diverged from cold path");
      continue;
    }
    double brute_ms = -1.0;
    double exact = -1.0;
    if (n <= 200) {
      timer.Reset();
      exact = static_cast<double>(ExactCountAnswersBruteForce(q, db));
      brute_ms = timer.Millis();
    }
    bench::Row("%8u %10llu %12.1f %10.2f %10.2f %12.2f %12.4f", n,
               static_cast<unsigned long long>(db.Size()),
               result->estimate, cold_ms, warm_ms, brute_ms,
               exact >= 0 ? bench::RelativeError(result->estimate, exact)
                          : -1.0);
  }
  bench::Row("%s",
             "\npaper shape: time f(||phi||) * poly(||D||, 1/eps); the "
             "estimate tracks the exact count within epsilon.");
  return 0;
}

}  // namespace cqcount

int main() { return cqcount::Run(); }
