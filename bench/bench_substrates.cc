// EXP-SUB: google-benchmark micro-benchmarks for the substrates: generic
// join, decomposition search, fractional cover LPs, the colour-coding
// oracle, the DLM estimator loop, and the engine layer (shape
// canonicalisation, plan-cache hit path, cold vs. warm Count).
#include <benchmark/benchmark.h>

#include "app/graph_gen.h"
#include "app/workload.h"
#include "counting/colour_coding.h"
#include "counting/dlm_counter.h"
#include "decomposition/exact_treewidth.h"
#include "decomposition/nice_decomposition.h"
#include "decomposition/width_measures.h"
#include "engine/engine.h"
#include "engine/plan.h"
#include "engine/plan_cache.h"
#include "hom/bag_solutions.h"
#include "hom/hom_oracle.h"
#include "query/parser.h"

namespace cqcount {
namespace {

void BM_RelationCanonicalize(benchmark::State& state) {
  Rng rng(21);
  const size_t rows = static_cast<size_t>(state.range(0));
  std::vector<Value> staged;
  staged.reserve(rows * 2);
  for (size_t i = 0; i < rows * 2; ++i) {
    staged.push_back(static_cast<Value>(rng.UniformInt(1024)));
  }
  for (auto _ : state) {
    Relation r(2, staged);  // Copies, canonicalises (sort + dedup).
    benchmark::DoNotOptimize(r.size());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_RelationCanonicalize)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_RelationNarrowRange(benchmark::State& state) {
  Rng rng(23);
  const size_t rows = static_cast<size_t>(state.range(0));
  Relation r(2);
  for (size_t i = 0; i < rows; ++i) {
    Value* dst = r.AppendRow();
    dst[0] = static_cast<Value>(rng.UniformInt(1024));
    dst[1] = static_cast<Value>(rng.UniformInt(1024));
  }
  r.Canonicalize();
  Value probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.NarrowRange(0, r.size(), 0, probe));
    probe = (probe + 41) & 1023;
  }
}
BENCHMARK(BM_RelationNarrowRange)->Arg(1 << 10)->Arg(1 << 17);

void BM_GenericJoinTriangle(benchmark::State& state) {
  auto q = ParseQuery("ans(a, b, c) :- R(a, b), S(b, c), T(a, c).");
  Rng rng(1);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Database db = RandomDatabase(
      n, {{"R", 2, 4 * n}, {"S", 2, 4 * n}, {"T", 2, 4 * n}}, rng);
  for (auto _ : state) {
    Relation out = ComputeBagSolutions(*q, db, {0, 1, 2}, nullptr);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * 12 * n);
}
BENCHMARK(BM_GenericJoinTriangle)->Arg(64)->Arg(256)->Arg(1024);

void BM_ExactTreewidthGrid(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Hypergraph h = GraphToHypergraph(GridGraph(k, k));
  for (auto _ : state) {
    auto result = ExactTreewidth(h, 16);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ExactTreewidthGrid)->Arg(2)->Arg(3);

void BM_FractionalCoverClique(benchmark::State& state) {
  Hypergraph h = GraphToHypergraph(CliqueGraph(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FractionalCoverNumber(h));
  }
}
BENCHMARK(BM_FractionalCoverClique)->Arg(4)->Arg(8)->Arg(12);

void BM_NiceDecompositionConversion(benchmark::State& state) {
  Rng rng(3);
  SimpleGraph g = ErdosRenyi(static_cast<int>(state.range(0)), 0.2, rng);
  Hypergraph h = GraphToHypergraph(g);
  FWidthResult width = ComputeDecomposition(h, WidthObjective::kTreewidth, 0);
  for (auto _ : state) {
    auto nice =
        NiceTreeDecomposition::FromTreeDecomposition(h, width.decomposition);
    benchmark::DoNotOptimize(nice.num_nodes());
  }
}
BENCHMARK(BM_NiceDecompositionConversion)->Arg(16)->Arg(32);

void BM_HomOracleDecide(benchmark::State& state) {
  auto q = ParseQuery("ans(x) :- F(x, y), F(x, z), y != z.");
  Rng rng(5);
  Database db =
      SocialNetworkDb(static_cast<uint32_t>(state.range(0)), 5.0, 0.5, rng);
  Hypergraph h = q->BuildHypergraph();
  FWidthResult width = ComputeDecomposition(h, WidthObjective::kTreewidth);
  DecompositionHomOracle oracle(*q, db, width.decomposition);
  VarDomains domains;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Decide(domains));
  }
}
BENCHMARK(BM_HomOracleDecide)->Arg(100)->Arg(400);

void BM_EdgeFreeOracleCall(benchmark::State& state) {
  auto q = ParseQuery("ans(x) :- F(x, y), F(x, z), y != z.");
  Rng rng(7);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Database db = SocialNetworkDb(n, 5.0, 0.5, rng);
  Hypergraph h = q->BuildHypergraph();
  FWidthResult width = ComputeDecomposition(h, WidthObjective::kTreewidth);
  DecompositionHomOracle hom(*q, db, width.decomposition);
  ColourCodingOptions cc;
  cc.per_call_failure = 1e-3;
  ColourCodingEdgeFreeOracle oracle(*q, &hom, n, cc);
  PartiteSubset parts;
  parts.parts = {Bitset(n, true)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.IsEdgeFree(parts));
  }
}
BENCHMARK(BM_EdgeFreeOracleCall)->Arg(100)->Arg(400);

void BM_DlmEndToEnd(benchmark::State& state) {
  auto q = ParseQuery("ans(x, y) :- E(x, y).");
  Rng rng(9);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Database db = GraphToDatabase(ErdosRenyi(n, 8.0 / n, rng));
  for (auto _ : state) {
    BruteForceEdgeFreeOracle oracle(*q, db);
    DlmOptions opts;
    opts.exact_enumeration_budget = 16;
    opts.epsilon = 0.25;
    opts.delta = 0.25;
    auto result = DlmCountEdges({n, n}, oracle, opts);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_DlmEndToEnd)->Arg(64)->Arg(256);

void BM_CanonicalQueryShape(benchmark::State& state) {
  auto q = ParseQuery(
      "ans(x, y) :- R(x, z), S(z, y), !T(x, y), F(y, w), x != y, z != w.");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CanonicalQueryShape(*q).key);
  }
}
BENCHMARK(BM_CanonicalQueryShape);

void BM_PlanCacheHit(benchmark::State& state) {
  PlanCache cache(64, 8);
  auto plan = std::make_shared<QueryPlan>();
  plan->shape_key = "k";
  cache.Insert("k", plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup("k"));
  }
}
BENCHMARK(BM_PlanCacheHit);

void BM_EngineCountColdPlan(benchmark::State& state) {
  CountingEngine engine;
  Rng rng(11);
  engine.RegisterDatabase(
      "g", SocialNetworkDb(static_cast<uint32_t>(state.range(0)), 5.0, 0.5,
                           rng));
  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  for (auto _ : state) {
    engine.InvalidatePlans();  // Every iteration replans from scratch.
    auto result = engine.Count(query, "g");
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_EngineCountColdPlan)->Arg(100)->Arg(400);

void BM_EngineCountWarmPlan(benchmark::State& state) {
  CountingEngine engine;
  Rng rng(13);
  engine.RegisterDatabase(
      "g", SocialNetworkDb(static_cast<uint32_t>(state.range(0)), 5.0, 0.5,
                           rng));
  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  benchmark::DoNotOptimize(engine.Count(query, "g").ok());  // Prime cache.
  for (auto _ : state) {
    auto result = engine.Count(query, "g");
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_EngineCountWarmPlan)->Arg(100)->Arg(400);

}  // namespace
}  // namespace cqcount

BENCHMARK_MAIN();
