// EXP-EXT: Section 6 extensions — approximate uniform sampling and
// counting unions of queries.
//
//  (a) sampler uniformity: chi-squared statistic of sampled answer
//      frequencies against the uniform distribution over Ans(phi, D);
//  (b) Karp-Luby union counting vs the exact union.
#include <map>

#include "app/graph_gen.h"
#include "bench_util.h"
#include "counting/partite_hypergraph.h"
#include "counting/sampler.h"
#include "counting/union_count.h"
#include "query/parser.h"
#include "util/timer.h"

namespace cqcount {

int Run() {
  bench::Header("EXP-EXT", "Section 6: sampling and unions");

  // (a) Sampler uniformity.
  {
    auto q = ParseQuery("ans(x, y) :- E(x, y).");
    Database db = GraphToDatabase(CycleGraph(6));
    BruteForceEdgeFreeOracle truth(*q, db);
    const size_t support = truth.answers().size();
    SamplerOptions opts;
    opts.approx.seed = 99;
    auto sampler = AnswerSampler::Create(*q, db, opts);
    if (!sampler.ok()) return 1;
    const int draws = bench::Sized(600, 60);
    std::map<Tuple, int> counts;
    for (int i = 0; i < draws; ++i) {
      auto s = (*sampler)->SampleOne();
      if (s.ok()) counts[*s]++;
    }
    const double expected = static_cast<double>(draws) / support;
    double chi2 = 0.0;
    for (TupleView view : truth.answers()) {
      const Tuple answer = MaterializeTuple(view);
      const double observed = counts.count(answer) ? counts[answer] : 0.0;
      chi2 += (observed - expected) * (observed - expected) / expected;
    }
    bench::Row("(a) sampler uniformity over |Ans| = %zu (C6 edges)",
               support);
    bench::Row("    draws=%d  chi2=%.2f  (df=%zu, mean df expected ~%zu)",
               draws, chi2, support - 1, support - 1);
    bench::Row("    distinct answers hit: %zu / %zu", counts.size(),
               support);
  }

  // (b) Union counting.
  {
    auto q1 = ParseQuery("ans(x, y) :- E(x, y), x != y.");
    auto q2 = ParseQuery("ans(x, y) :- E(y, x), x != y.");
    auto q3 = ParseQuery("ans(x, y) :- E(x, z), E(z, y), x != y.");
    Database db = GraphToDatabase(PathGraph(6));
    std::vector<Query> queries = {*q1, *q2, *q3};
    const uint64_t exact = ExactCountUnionBruteForce(queries, db);
    UnionOptions opts;
    opts.approx.epsilon = 0.15;
    opts.approx.delta = 0.2;
    opts.approx.seed = 17;
    WallTimer timer;
    auto result = ApproxCountUnion(queries, db, opts);
    const double ms = timer.Millis();
    bench::Row("\n(b) Karp-Luby union of 3 DCQs on P6");
    if (result.ok()) {
      bench::Row("    exact=%llu estimate=%.1f rel.err=%.4f samples=%d "
                 "(%.1f ms)",
                 static_cast<unsigned long long>(exact), result->estimate,
                 bench::RelativeError(result->estimate,
                                      static_cast<double>(exact)),
                 result->samples, ms);
      bench::Row("    per-query counts: %.1f / %.1f / %.1f",
                 result->per_query[0], result->per_query[1],
                 result->per_query[2]);
    } else {
      bench::Row("    error: %s", result.status().ToString().c_str());
    }
  }
  bench::Row("%s",
             "\npaper shape: self-partitionability lifts the counters to "
             "approximate samplers (JVV) and to unions (Karp-Luby).");
  return 0;
}

}  // namespace cqcount

int main() { return cqcount::Run(); }
