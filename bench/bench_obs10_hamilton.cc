// EXP-O10: Observation 10 — no FPRAS for #DCQ even at treewidth 1.
//
// The Hamilton-path DCQ phi_n has H(phi_n) = a path (tw 1, arity 2), yet
// |Ans(phi_n, G)| = #Hamiltonian paths of G, which is NP-hard even to
// detect -- so no FPRAS can exist (unless NP = RP). The FPTRAS is still
// fine *as a parameterised algorithm*: its cost explodes in n = ||phi||
// (the 4^{|Delta|} colour-coding factor) but stays polynomial in ||D||.
#include "app/graph_gen.h"
#include "bench_util.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "query/query.h"
#include "util/timer.h"

namespace cqcount {
namespace {

Query HamiltonQuery(int n) {
  Query q;
  for (int i = 0; i < n; ++i) q.AddVariable("x" + std::to_string(i));
  q.SetNumFree(n);
  for (int i = 0; i + 1 < n; ++i) q.AddAtom({"E", {i, i + 1}, false});
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) q.AddDisequality(i, j);
  }
  return q;
}

}  // namespace

int Run() {
  bench::Header("EXP-O10", "Observation 10: Hamilton paths as a tw-1 DCQ");
  bench::Row(
      "(a) correctness: |Ans| = #Hamiltonian (ordered) paths, exact counts");
  bench::Row("%14s %8s %12s", "host", "n(phi)", "paths");
  bench::Row("%14s %8d %12llu", "K4", 4,
             static_cast<unsigned long long>(ExactCountAnswersBruteForce(
                 HamiltonQuery(4), GraphToDatabase(CliqueGraph(4)))));
  bench::Row("%14s %8d %12llu", "C5", 5,
             static_cast<unsigned long long>(ExactCountAnswersBruteForce(
                 HamiltonQuery(5), GraphToDatabase(CycleGraph(5)))));
  bench::Row("%14s %8d %12llu", "K5", 5,
             static_cast<unsigned long long>(ExactCountAnswersBruteForce(
                 HamiltonQuery(5), GraphToDatabase(CliqueGraph(5)))));

  bench::Row(
      "\n(b) the no-FPRAS wall: colour-coding trials explode in ||phi||");
  bench::Row("%8s %10s %16s %14s %12s", "n(phi)", "|Delta|",
             "trials/call", "estimate", "ms");
  for (int n : bench::Sweep<int>({3, 4})) {
    Query q = HamiltonQuery(n);
    Database db = GraphToDatabase(CliqueGraph(n + 1));
    ApproxOptions opts;
    opts.epsilon = 0.3;
    opts.delta = 0.3;
    opts.seed = 5;
    opts.per_call_failure_override = 0.05;
    WallTimer timer;
    auto approx = ApproxCountAnswers(q, db, opts);
    const double ms = timer.Millis();
    if (!approx.ok()) {
      bench::Row("%8d error: %s", n, approx.status().ToString().c_str());
      continue;
    }
    bench::Row("%8d %10zu %16llu %14.1f %12.2f", n, q.disequalities().size(),
               static_cast<unsigned long long>(
                   approx->colouring_trials_per_call),
               approx->estimate, ms);
  }

  bench::Row("\n(c) ...but polynomial in ||D|| for fixed phi (n = 3)");
  bench::Row("%10s %14s %12s", "host n", "estimate", "ms");
  Query q3 = HamiltonQuery(3);
  for (int host : bench::Sweep<int>({10, 20})) {
    Rng rng(host);
    Database db = GraphToDatabase(ErdosRenyi(host, 0.5, rng));
    ApproxOptions opts;
    opts.epsilon = 0.3;
    opts.delta = 0.3;
    opts.seed = 9;
    opts.per_call_failure_override = 0.02;
    opts.dlm.max_frontier = 1024;
    opts.dlm.initial_samples_per_box = 2;
    opts.dlm.max_refinement_rounds = 8;
    WallTimer timer;
    auto approx = ApproxCountAnswers(q3, db, opts);
    const double ms = timer.Millis();
    bench::Row("%10d %14.1f %12.2f", host,
               approx.ok() ? approx->estimate : -1.0, ms);
  }
  bench::Row("%s",
             "\npaper shape: H(phi) stays a path (tw 1) yet answers count "
             "Hamiltonian paths, so no FPRAS unless NP = RP; the FPTRAS "
             "pays exp(O(||phi||^2)) instead.");
  return 0;
}

}  // namespace cqcount

int main() { return cqcount::Run(); }
