// EXP-REL: microbenchmarks for the flat relation storage layer.
//
// Measures the four substrate operations every estimator leans on —
// build (stage + canonicalise), full scan, prefix-range descent, and
// projection — at arities 2..5, and compares three backends: the flat
// in-memory layout, the historical boxed representation
// (std::vector<Tuple>, one heap allocation per tuple) reimplemented here
// as the before/after baseline, and the mmap'd columnar segment
// (relational/segment.h; its build_ms is pack + O(1) open). Writes the
// measurements as JSON (default BENCH_relation.json, or argv[1]).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "relational/relation.h"
#include "relational/segment.h"
#include "relational/structure.h"
#include "util/random.h"
#include "util/timer.h"

namespace cqcount {
namespace {

// Smoke mode (CQCOUNT_BENCH_SMOKE, see bench_util.h) shrinks the workload
// so CI can exercise the bench end to end in well under a second.
const int kRows = bench::Sized(200000, 5000);
constexpr int kUniverse = 1000;
const int kScanRepeats = bench::Sized(20, 2);
const int kProbeRepeats = bench::Sized(400000, 10000);

// The pre-PR2 boxed storage, reduced to the operations measured here.
struct BoxedRelation {
  int arity = 0;
  std::vector<Tuple> tuples;

  void Canonicalize() {
    std::sort(tuples.begin(), tuples.end());
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  }
  std::pair<size_t, size_t> NarrowRange(size_t from, size_t to, size_t col,
                                        Value v) const {
    auto first = std::lower_bound(
        tuples.begin() + from, tuples.begin() + to, v,
        [col](const Tuple& t, Value value) { return t[col] < value; });
    auto last = std::upper_bound(
        first, tuples.begin() + to, v,
        [col](Value value, const Tuple& t) { return value < t[col]; });
    return {static_cast<size_t>(first - tuples.begin()),
            static_cast<size_t>(last - tuples.begin())};
  }
  BoxedRelation Project(const std::vector<int>& positions) const {
    BoxedRelation out;
    out.arity = static_cast<int>(positions.size());
    out.tuples.reserve(tuples.size());
    for (const Tuple& t : tuples) {
      Tuple p;
      p.reserve(positions.size());
      for (int pos : positions) p.push_back(t[pos]);
      out.tuples.push_back(std::move(p));
    }
    out.Canonicalize();
    return out;
  }
};

struct OpTimes {
  double build_ms = 0.0;
  double scan_ms = 0.0;
  double range_ms = 0.0;
  double project_ms = 0.0;
};

std::vector<Tuple> RandomRows(int arity, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  rows.reserve(kRows);
  for (int i = 0; i < kRows; ++i) {
    Tuple t(arity);
    for (int k = 0; k < arity; ++k) {
      t[k] = static_cast<Value>(rng.UniformInt(kUniverse));
    }
    rows.push_back(std::move(t));
  }
  return rows;
}

OpTimes MeasureFlat(const std::vector<Tuple>& rows, int arity,
                    uint64_t* sink) {
  OpTimes times;
  WallTimer timer;
  Relation rel(arity);
  for (const Tuple& t : rows) rel.Add(t);
  rel.Canonicalize();
  times.build_ms = timer.Millis();

  timer.Reset();
  uint64_t sum = 0;
  for (int repeat = 0; repeat < kScanRepeats; ++repeat) {
    for (TupleView t : rel) sum += t[0];
  }
  times.scan_ms = timer.Millis() / kScanRepeats;

  timer.Reset();
  Rng rng(4);
  size_t hits = 0;
  for (int probe = 0; probe < kProbeRepeats; ++probe) {
    const Value v = static_cast<Value>(rng.UniformInt(kUniverse));
    const auto [lo, hi] = rel.NarrowRange(0, rel.size(), 0, v);
    hits += hi - lo;
  }
  times.range_ms = timer.Millis();

  timer.Reset();
  std::vector<int> positions;
  for (int k = arity - 1; k >= 1; --k) positions.push_back(k);
  Relation projected = rel.Project(positions);
  times.project_ms = timer.Millis();

  *sink += sum + hits + projected.size();
  return times;
}

// The mmap'd segment backend: build_ms is pack-to-disk plus the O(1)
// open; the scan/range/project measurements then run over the mapped
// Relation through the exact same accessors as the flat backend.
OpTimes MeasureSegment(const std::vector<Tuple>& rows, int arity,
                       uint64_t* sink) {
  OpTimes times;
  Relation staged(arity);
  for (const Tuple& t : rows) staged.Add(t);
  staged.Canonicalize();
  Database db(kUniverse);
  (void)db.DeclareRelation("R", arity);
  (void)db.AdoptRelation("R", std::move(staged));

  const std::string path = "/tmp/cqcount_bench_relation.seg";
  WallTimer timer;
  if (!WriteSegmentDatabase(db, path).ok()) {
    std::fprintf(stderr, "segment pack failed\n");
    std::exit(1);
  }
  auto mapped = OpenSegmentDatabase(path);
  if (!mapped.ok()) {
    std::fprintf(stderr, "segment open failed: %s\n",
                 mapped.status().ToString().c_str());
    std::exit(1);
  }
  times.build_ms = timer.Millis();
  const Relation& rel = mapped->relation("R");

  timer.Reset();
  uint64_t sum = 0;
  for (int repeat = 0; repeat < kScanRepeats; ++repeat) {
    for (TupleView t : rel) sum += t[0];
  }
  times.scan_ms = timer.Millis() / kScanRepeats;

  timer.Reset();
  Rng rng(4);
  size_t hits = 0;
  for (int probe = 0; probe < kProbeRepeats; ++probe) {
    const Value v = static_cast<Value>(rng.UniformInt(kUniverse));
    const auto [lo, hi] = rel.NarrowRange(0, rel.size(), 0, v);
    hits += hi - lo;
  }
  times.range_ms = timer.Millis();

  timer.Reset();
  std::vector<int> positions;
  for (int k = arity - 1; k >= 1; --k) positions.push_back(k);
  Relation projected = rel.Project(positions);
  times.project_ms = timer.Millis();

  *sink += sum + hits + projected.size();
  std::remove(path.c_str());
  return times;
}

OpTimes MeasureBoxed(const std::vector<Tuple>& rows, int arity,
                     uint64_t* sink) {
  OpTimes times;
  WallTimer timer;
  BoxedRelation rel;
  rel.arity = arity;
  for (const Tuple& t : rows) rel.tuples.push_back(t);
  rel.Canonicalize();
  times.build_ms = timer.Millis();

  timer.Reset();
  uint64_t sum = 0;
  for (int repeat = 0; repeat < kScanRepeats; ++repeat) {
    for (const Tuple& t : rel.tuples) sum += t[0];
  }
  times.scan_ms = timer.Millis() / kScanRepeats;

  timer.Reset();
  Rng rng(4);
  size_t hits = 0;
  for (int probe = 0; probe < kProbeRepeats; ++probe) {
    const Value v = static_cast<Value>(rng.UniformInt(kUniverse));
    const auto [lo, hi] = rel.NarrowRange(0, rel.tuples.size(), 0, v);
    hits += hi - lo;
  }
  times.range_ms = timer.Millis();

  timer.Reset();
  std::vector<int> positions;
  for (int k = arity - 1; k >= 1; --k) positions.push_back(k);
  BoxedRelation projected = rel.Project(positions);
  times.project_ms = timer.Millis();

  *sink += sum + hits + projected.tuples.size();
  return times;
}

}  // namespace

int Run(const std::string& json_path) {
  bench::Header("EXP-REL",
                "relation storage: flat (arity-strided) vs boxed tuples");
  bench::Row("%d rows, universe %d; scan avg over %d passes", kRows,
             kUniverse, kScanRepeats);
  bench::Row("%6s %8s %12s %12s %12s %12s", "arity", "layout", "build_ms",
             "scan_ms", "range_ms", "project_ms");

  uint64_t sink = 0;
  struct Entry {
    int arity;
    OpTimes flat;
    OpTimes boxed;
    OpTimes segment;
  };
  std::vector<Entry> entries;
  for (int arity = 2; arity <= 5; ++arity) {
    const std::vector<Tuple> rows = RandomRows(arity, 1000 + arity);
    Entry e;
    e.arity = arity;
    e.flat = MeasureFlat(rows, arity, &sink);
    e.boxed = MeasureBoxed(rows, arity, &sink);
    e.segment = MeasureSegment(rows, arity, &sink);
    entries.push_back(e);
    bench::Row("%6d %8s %12.2f %12.2f %12.2f %12.2f", arity, "flat",
               e.flat.build_ms, e.flat.scan_ms, e.flat.range_ms,
               e.flat.project_ms);
    bench::Row("%6d %8s %12.2f %12.2f %12.2f %12.2f", arity, "boxed",
               e.boxed.build_ms, e.boxed.scan_ms, e.boxed.range_ms,
               e.boxed.project_ms);
    bench::Row("%6d %8s %12.2f %12.2f %12.2f %12.2f", arity, "segment",
               e.segment.build_ms, e.segment.scan_ms, e.segment.range_ms,
               e.segment.project_ms);
  }

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"relation_storage\",\n");
  std::fprintf(out, "  \"rows\": %d,\n", kRows);
  std::fprintf(out, "  \"universe\": %d,\n", kUniverse);
  std::fprintf(out, "  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(
        out,
        "    {\"arity\": %d, "
        "\"flat\": {\"build_ms\": %.2f, \"scan_ms\": %.2f, "
        "\"range_ms\": %.2f, \"project_ms\": %.2f}, "
        "\"boxed\": {\"build_ms\": %.2f, \"scan_ms\": %.2f, "
        "\"range_ms\": %.2f, \"project_ms\": %.2f}, "
        "\"segment\": {\"build_ms\": %.2f, \"scan_ms\": %.2f, "
        "\"range_ms\": %.2f, \"project_ms\": %.2f}}%s\n",
        e.arity, e.flat.build_ms, e.flat.scan_ms, e.flat.range_ms,
        e.flat.project_ms, e.boxed.build_ms, e.boxed.scan_ms,
        e.boxed.range_ms, e.boxed.project_ms, e.segment.build_ms,
        e.segment.scan_ms, e.segment.range_ms, e.segment.project_ms,
        i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"checksum\": %llu\n",
               static_cast<unsigned long long>(sink));
  std::fprintf(out, "}\n");
  std::fclose(out);
  bench::Row("wrote %s", json_path.c_str());
  return 0;
}

}  // namespace cqcount

int main(int argc, char** argv) {
  return cqcount::Run(argc > 1 ? argv[1] : "BENCH_relation.json");
}
