// EXP-ENG: engine-layer performance baseline.
//
// Measures what the CountingEngine adds on top of the raw pipeline:
//   (a) cold vs. warm-plan-cache latency per Count call (the warm path
//       skips decomposition search entirely);
//   (b) CountBatch throughput at 1/2/4/8 worker threads over a mixed
//       workload, with a determinism check (every thread count must
//       produce bitwise-identical estimates);
//   (d) Gaifman-component factoring: a disconnected query (two disjoint
//       triangles) against its connected control (one 6-cycle), factored
//       engine vs the monolithic-plan baseline
//       (compile.factor_components = false).
// Writes the measurements as JSON (default BENCH_engine.json, or argv[1])
// so future PRs have a perf trajectory to compare against.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "app/workload.h"
#include "bench_util.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "util/executor.h"
#include "util/timer.h"

namespace cqcount {
namespace {

std::vector<CountRequest> MixedWorkload(int copies) {
  // Mixed shapes; several entries are isomorphic renamings of each other
  // so the plan cache has real sharing to exploit.
  const std::vector<std::string> templates = {
      "ans(x) :- F(x, y), F(x, z), y != z.",
      "ans(a) :- F(a, b), F(a, c), b != c.",
      "ans(x, y) :- F(x, y), Adult(x).",
      "ans(p, q) :- F(p, q), Adult(p).",
      "ans(x) :- F(x, y), Adult(y), x != y.",
      "ans(x, y) :- F(x, y), !Adult(y).",
      "ans(x) :- F(x, y), F(y, z), x != z.",
      "ans(x) :- F(x, y).",
      // Disconnected shapes: exercised through the compile pipeline's
      // Gaifman factoring (two components each).
      "ans(x, y) :- F(x, a), F(y, b).",
      "ans(u) :- F(u, w), F(p, q), p != q.",
  };
  std::vector<CountRequest> requests;
  for (int c = 0; c < copies; ++c) {
    for (const std::string& t : templates) {
      CountRequest request;
      request.query = t;
      request.database = "g";
      requests.push_back(request);
    }
  }
  return requests;
}

struct BatchPoint {
  int threads = 0;
  double millis = 0.0;
  double queries_per_sec = 0.0;
  // Work accounting: oracle calls are part of the determinism contract
  // (must match across thread counts); dp_decides tracks how much of the
  // batch the exact DP layer absorbed.
  uint64_t oracle_calls = 0;
  uint64_t dp_decides = 0;
};

/// One engine configuration's measurements for one factoring query.
struct FactoringPoint {
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double estimate = 0.0;
  int components = 0;
  const char* strategy = "";
  uint64_t cold_cache_hits = 0;
  uint64_t cold_cache_misses = 0;
};

}  // namespace

int Run(const std::string& json_path) {
  bench::Header("EXP-ENG", "engine: plan-cache latency and batch throughput");

  const uint32_t universe = bench::Sized(400u, 80u);
  EngineOptions opts;
  opts.epsilon = 0.2;
  opts.delta = 0.2;
  CountingEngine engine(opts);
  {
    Rng rng(2024);
    Status s =
        engine.RegisterDatabase("g", SocialNetworkDb(universe, 5.0, 0.5, rng));
    if (!s.ok()) {
      std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // (a) cold vs warm per-call latency over the distinct shapes.
  const std::vector<CountRequest> shapes = MixedWorkload(1);
  double cold_plan_ms = 0.0, cold_total_ms = 0.0;
  double warm_plan_ms = 0.0, warm_total_ms = 0.0;
  int cold_hits = 0, warm_hits = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (const CountRequest& request : shapes) {
      WallTimer timer;
      auto result = engine.Count(request);
      const double total = timer.Millis();
      if (!result.ok()) {
        std::fprintf(stderr, "count: %s\n", result.status().ToString().c_str());
        return 1;
      }
      if (pass == 0) {
        cold_plan_ms += result->plan_millis;
        cold_total_ms += total;
        cold_hits += result->plan_cache_hit ? 1 : 0;
      } else {
        warm_plan_ms += result->plan_millis;
        warm_total_ms += total;
        warm_hits += result->plan_cache_hit ? 1 : 0;
      }
    }
  }
  const double n_shapes = static_cast<double>(shapes.size());
  bench::Row("\n(a) per-call latency over %d queries (avg ms)",
             static_cast<int>(shapes.size()));
  bench::Row("%8s %12s %12s %12s", "pass", "plan_ms", "call_ms", "cache_hits");
  bench::Row("%8s %12.3f %12.3f %12d", "cold", cold_plan_ms / n_shapes,
             cold_total_ms / n_shapes, cold_hits);
  bench::Row("%8s %12.3f %12.3f %12d", "warm", warm_plan_ms / n_shapes,
             warm_total_ms / n_shapes, warm_hits);

  // (b) batch throughput vs thread count; estimates must be identical.
  const std::vector<CountRequest> batch = MixedWorkload(bench::Sized(8, 2));
  std::vector<BatchPoint> points;
  std::vector<double> reference;
  bool deterministic = true;
  obs::Counter& dp_decides_metric = obs::MetricRegistry::Global().GetCounter(
      "dp.prepared_decides", "prepared-DP decide calls");
  bench::Row("\n(b) CountBatch over %d queries", static_cast<int>(batch.size()));
  bench::Row("%8s %12s %14s %14s %12s", "threads", "millis", "queries/s",
             "oracle_calls", "dp_decides");
  for (int threads : {1, 2, 4, 8}) {
    const uint64_t dp_before = dp_decides_metric.Value();
    WallTimer timer;
    auto results = engine.CountBatch(batch, threads);
    BatchPoint point;
    point.threads = threads;
    point.millis = timer.Millis();
    point.queries_per_sec = 1e3 * batch.size() / point.millis;
    point.dp_decides = dp_decides_metric.Value() - dp_before;
    std::vector<double> estimates;
    for (const auto& r : results) {
      estimates.push_back(r.ok() ? r->estimate : -1.0);
      if (r.ok()) point.oracle_calls += r->oracle_calls;
    }
    points.push_back(point);
    if (reference.empty()) {
      reference = estimates;
    } else if (estimates != reference) {
      deterministic = false;
    }
    bench::Row("%8d %12.2f %14.1f %14llu %12llu", threads, point.millis,
               point.queries_per_sec,
               static_cast<unsigned long long>(point.oracle_calls),
               static_cast<unsigned long long>(point.dp_decides));
  }
  bench::Row("determinism across thread counts: %s",
             deterministic ? "OK (bitwise identical)" : "VIOLATED");

  // (c) pool serialization probe. CPU-bound batch scaling is capped by
  // hardware_concurrency (1 on single-core runners), so this isolates the
  // executor itself: sleep-bound tasks scale with threads unless a shared
  // lock serialises dispatch/completion. The help-draining ParallelFor
  // has the CALLER claim tasks too, so an N-thread pool runs N+1 lanes:
  // expect 8 tasks at 1t in ~4 sleeps (2 lanes) and at 4t in ~2 sleeps
  // (5 lanes, ceil(8/5)).
  constexpr int kProbeTasks = 8;
  constexpr int kProbeSleepMs = 25;
  auto probe = [&](int threads) {
    Executor pool(threads);
    WallTimer timer;
    pool.ParallelFor(kProbeTasks, [&](size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kProbeSleepMs));
    });
    return timer.Millis();
  };
  const double probe_1t = probe(1);
  const double probe_4t = probe(4);
  const double pool_speedup = probe_1t / probe_4t;
  bench::Row("\n(c) executor probe: %d sleep(%dms) tasks, 1t=%.1fms "
             "4t=%.1fms speedup=%.2fx",
             kProbeTasks, kProbeSleepMs, probe_1t, probe_4t, pool_speedup);

  PlanCacheStats stats = engine.CacheStats();
  bench::Row("plan cache: %llu hits, %llu misses, %llu evictions",
             static_cast<unsigned long long>(stats.hits),
             static_cast<unsigned long long>(stats.misses),
             static_cast<unsigned long long>(stats.evictions));

  // (d) Gaifman-component factoring. The disjoint-triangles query has two
  // 3-variable components (each cheap enough for exact counting); the
  // 6-cycle control is connected, so both configurations plan it
  // identically. The monolithic baseline disables factoring and must plan
  // the disjoint query as one 6-variable shape (estimation territory).
  const uint32_t factoring_universe = bench::Sized(60u, 24u);
  const char* factoring_names[2] = {"disjoint-triangles", "six-cycle"};
  const std::string factoring_queries[2] = {
      "ans(a, d) :- F(a, b), F(b, c), F(c, a), F(d, e), F(e, f), F(f, d).",
      "ans(a, d) :- F(a, b), F(b, c), F(c, d), F(d, e), F(e, f), F(f, a).",
  };
  FactoringPoint factoring[2][2];  // [query][0 = factored, 1 = monolithic]
  {
    Database db;
    {
      Rng rng(77);
      db = SocialNetworkDb(factoring_universe, 6.0, 0.5, rng);
    }
    for (int config = 0; config < 2; ++config) {
      EngineOptions factoring_opts;
      factoring_opts.epsilon = 0.25;
      factoring_opts.delta = 0.2;
      factoring_opts.compile.factor_components = config == 0;
      CountingEngine factoring_engine(factoring_opts);
      Status s = factoring_engine.RegisterDatabase("g", db);
      if (!s.ok()) {
        std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
        return 1;
      }
      for (int qi = 0; qi < 2; ++qi) {
        FactoringPoint& point = factoring[qi][config];
        const PlanCacheStats before = factoring_engine.CacheStats();
        WallTimer timer;
        auto cold = factoring_engine.Count(factoring_queries[qi], "g");
        point.cold_ms = timer.Millis();
        if (!cold.ok()) {
          std::fprintf(stderr, "factoring count: %s\n",
                       cold.status().ToString().c_str());
          return 1;
        }
        const PlanCacheStats after = factoring_engine.CacheStats();
        point.cold_cache_hits = after.hits - before.hits;
        point.cold_cache_misses = after.misses - before.misses;
        // Warm time averaged over adaptive repeats: sub-millisecond
        // queries need several reps for a stable number, slow ones stop
        // after the first.
        int warm_reps = 0;
        double warm_total_ms = 0.0;
        while (warm_reps < 16 && (warm_reps == 0 || warm_total_ms < 400.0)) {
          timer.Reset();
          auto warm = factoring_engine.Count(factoring_queries[qi], "g");
          warm_total_ms += timer.Millis();
          ++warm_reps;
          if (!warm.ok() || warm->estimate != cold->estimate) {
            std::fprintf(stderr, "factoring warm path diverged\n");
            return 1;
          }
        }
        point.warm_ms = warm_total_ms / warm_reps;
        point.estimate = cold->estimate;
        point.components = cold->num_components;
        point.strategy = StrategyName(cold->strategy);
      }
    }
  }
  bench::Row("\n(d) component factoring (universe %u, warm = cached plans)",
             factoring_universe);
  bench::Row("%20s %12s %6s %10s %10s %12s %12s", "query", "config", "comps",
             "cold_ms", "warm_ms", "estimate", "cache h/m");
  for (int qi = 0; qi < 2; ++qi) {
    for (int config = 0; config < 2; ++config) {
      const FactoringPoint& point = factoring[qi][config];
      bench::Row("%20s %12s %6d %10.2f %10.2f %12.1f %7llu/%llu",
                 factoring_names[qi],
                 config == 0 ? "factored" : "monolithic", point.components,
                 point.cold_ms, point.warm_ms, point.estimate,
                 static_cast<unsigned long long>(point.cold_cache_hits),
                 static_cast<unsigned long long>(point.cold_cache_misses));
    }
  }
  const double factoring_speedup =
      factoring[0][0].warm_ms > 0.0
          ? factoring[0][1].warm_ms / factoring[0][0].warm_ms
          : 0.0;
  bench::Row("disjoint-triangles warm speedup (monolithic/factored): %.1fx",
             factoring_speedup);

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"engine_batch\",\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  if (std::thread::hardware_concurrency() <= 1) {
    std::fprintf(out,
                 "  \"scaling_note\": \"scaling unproven on this runner: "
                 "1 hardware thread — batch throughput vs thread count "
                 "measures overhead, not scaling\",\n");
  }
  std::fprintf(out, "  \"universe\": %u,\n", universe);
  std::fprintf(out, "  \"distinct_queries\": %d,\n",
               static_cast<int>(shapes.size()));
  std::fprintf(out, "  \"cold\": {\"plan_ms\": %.4f, \"call_ms\": %.4f},\n",
               cold_plan_ms / n_shapes, cold_total_ms / n_shapes);
  std::fprintf(out, "  \"warm\": {\"plan_ms\": %.4f, \"call_ms\": %.4f},\n",
               warm_plan_ms / n_shapes, warm_total_ms / n_shapes);
  std::fprintf(out, "  \"batch_queries\": %d,\n",
               static_cast<int>(batch.size()));
  std::fprintf(out, "  \"batch\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(out,
                 "    {\"threads\": %d, \"millis\": %.2f, "
                 "\"queries_per_sec\": %.1f, \"oracle_calls\": %llu, "
                 "\"dp_decides\": %llu}%s\n",
                 points[i].threads, points[i].millis,
                 points[i].queries_per_sec,
                 static_cast<unsigned long long>(points[i].oracle_calls),
                 static_cast<unsigned long long>(points[i].dp_decides),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"pool_probe\": {\"tasks\": %d, \"task_sleep_ms\": %d, "
               "\"millis_1t\": %.1f, \"millis_4t\": %.1f, "
               "\"speedup_4t\": %.2f},\n",
               kProbeTasks, kProbeSleepMs, probe_1t, probe_4t, pool_speedup);
  std::fprintf(out, "  \"deterministic\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(out, "  \"factoring\": {\n");
  std::fprintf(out, "    \"universe\": %u,\n", factoring_universe);
  std::fprintf(out, "    \"queries\": [\n");
  for (int qi = 0; qi < 2; ++qi) {
    std::fprintf(out, "      {\"query\": \"%s\",\n", factoring_names[qi]);
    for (int config = 0; config < 2; ++config) {
      const FactoringPoint& point = factoring[qi][config];
      std::fprintf(out,
                   "       \"%s\": {\"components\": %d, \"strategy\": "
                   "\"%s\", \"cold_ms\": %.2f, \"warm_ms\": %.2f, "
                   "\"estimate\": %.1f, \"cold_cache_hits\": %llu, "
                   "\"cold_cache_misses\": %llu}%s\n",
                   config == 0 ? "factored" : "monolithic", point.components,
                   point.strategy, point.cold_ms, point.warm_ms,
                   point.estimate,
                   static_cast<unsigned long long>(point.cold_cache_hits),
                   static_cast<unsigned long long>(point.cold_cache_misses),
                   config == 0 ? "," : "");
    }
    std::fprintf(out, "      }%s\n", qi == 0 ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out,
               "    \"disjoint_warm_speedup_monolithic_over_factored\": "
               "%.2f\n",
               factoring_speedup);
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"note\": \"CPU-bound batch scaling is capped by "
               "hardware_threads; pool_probe isolates executor dispatch "
               "(sleep-bound tasks) from that ceiling — the help-draining "
               "ParallelFor adds the caller as a lane, so N threads = N+1 "
               "lanes (1t: ceil(8/2)=4 sleeps, 4t: ceil(8/5)=2)\",\n");
  std::fprintf(out,
               "  \"plan_cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"evictions\": %llu}\n",
               static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.misses),
               static_cast<unsigned long long>(stats.evictions));
  std::fprintf(out, "}\n");
  std::fclose(out);
  bench::Row("wrote %s", json_path.c_str());
  return deterministic ? 0 : 1;
}

}  // namespace cqcount

int main(int argc, char** argv) {
  return cqcount::Run(argc > 1 ? argv[1] : "BENCH_engine.json");
}
