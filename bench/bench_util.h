// Shared table-printing helpers for the experiment harnesses.
//
// Each bench binary regenerates one artefact of the paper (EXPERIMENTS.md
// records paper-vs-measured). The binaries print self-contained tables so
// `for b in build/bench/*; do $b; done` reproduces the whole evaluation.
#ifndef CQCOUNT_BENCH_BENCH_UTIL_H_
#define CQCOUNT_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace cqcount {
namespace bench {

/// True when CQCOUNT_BENCH_SMOKE is set to a non-zero value. CI smoke-runs
/// every bench binary at tiny sizes so bench code cannot bit-rot between
/// perf PRs; numbers produced under smoke mode are NOT comparable
/// baselines and must never be checked in.
inline bool SmokeMode() {
  const char* env = std::getenv("CQCOUNT_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// `full` normally, `tiny` under SmokeMode().
template <typename T>
inline T Sized(T full, T tiny) {
  return SmokeMode() ? tiny : full;
}

/// A size sweep, truncated to its first `keep` entries under SmokeMode().
template <typename T>
inline std::vector<T> Sweep(std::vector<T> sizes, size_t keep = 1) {
  if (SmokeMode() && sizes.size() > keep) sizes.resize(keep);
  return sizes;
}

inline void Header(const std::string& id, const std::string& title) {
  std::printf("\n==========================================================\n");
  std::printf("%s  %s\n", id.c_str(), title.c_str());
  std::printf("==========================================================\n");
}

inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);
  va_end(args);
  std::printf("\n");
}

/// Relative error |estimate - exact| / exact (0 when both are zero).
inline double RelativeError(double estimate, double exact) {
  if (exact == 0.0) return estimate == 0.0 ? 0.0 : 1.0;
  return std::abs(estimate - exact) / exact;
}

}  // namespace bench
}  // namespace cqcount

#endif  // CQCOUNT_BENCH_BENCH_UTIL_H_
