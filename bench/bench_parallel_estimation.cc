// EXP-PAR: intra-query parallel estimation scaling.
//
// Measures what EngineOptions::intra_query_threads buys on a single
// Count call (the batch path already scales across queries):
//   (a) the warm six-cycle fptras-tw workload — the engine's heaviest
//       single-query DLM estimation — at 1/2/4 intra-query lanes;
//   (b) a mixed warm workload (every estimated shape of the engine
//       bench) at the same lane counts;
// with a determinism check: every lane count must produce bitwise
// identical estimates (the counter-derived seed tree makes lanes a pure
// scheduling knob).
//
// CPU-bound scaling is capped by the runner's hardware threads — the
// recorded hardware_threads field is the ceiling to read the speedups
// against, exactly as BENCH_relation.json documents for its scan rows.
// Writes BENCH_parallel.json (or argv[1]).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "app/workload.h"
#include "bench_util.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace cqcount {
namespace {

const char* kSixCycle =
    "ans(a, d) :- F(a, b), F(b, c), F(c, d), F(d, e), F(e, f), F(f, a).";

std::vector<std::string> MixedTemplates() {
  return {
      "ans(x) :- F(x, y), F(x, z), y != z.",
      "ans(x) :- F(x, y), Adult(y), x != y.",
      "ans(x) :- F(x, y), F(y, z), x != z.",
      "ans(x, y) :- F(x, y), !Adult(y).",
      "ans(u) :- F(u, w), F(p, q), p != q.",
  };
}

struct LanePoint {
  int intra = 0;
  double warm_ms = 0.0;
  double speedup = 1.0;
  double estimate = 0.0;
  int lanes = 1;
  uint64_t tasks = 0;
  uint64_t worker_tasks = 0;
  // Work accounting: oracle calls must be lane-count invariant (the
  // determinism contract extends beyond estimates); dp_decides shows how
  // much the exact DP layer handled per configuration.
  uint64_t oracle_calls = 0;
  uint64_t dp_decides = 0;
};

}  // namespace

int Run(const std::string& json_path) {
  bench::Header("EXP-PAR", "intra-query parallel estimation scaling");

  const uint32_t universe = bench::Sized(240u, 48u);
  const int warm_reps = bench::Sized(2, 1);
  const unsigned hardware = std::thread::hardware_concurrency();
  Database db;
  {
    Rng rng(2024);
    db = SocialNetworkDb(universe, 5.0, 0.5, rng);
  }

  obs::Counter& dp_decides_metric = obs::MetricRegistry::Global().GetCounter(
      "dp.prepared_decides", "prepared-DP decide calls");
  auto run_config = [&](const std::string& query, int intra,
                        LanePoint* point) -> bool {
    EngineOptions opts;
    opts.epsilon = 0.2;
    opts.delta = 0.2;
    opts.num_threads = 4;
    opts.intra_query_threads = intra;
    opts.intra_query_min_cost = 0.0;  // The knob under test, not the gate.
    CountingEngine engine(opts);
    Status s = engine.RegisterDatabase("g", db);
    if (!s.ok()) {
      std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
      return false;
    }
    auto cold = engine.Count(query, "g");  // Warm the plan cache.
    if (!cold.ok()) {
      std::fprintf(stderr, "count: %s\n", cold.status().ToString().c_str());
      return false;
    }
    double total_ms = 0.0;
    for (int rep = 0; rep < warm_reps; ++rep) {
      const uint64_t dp_before = dp_decides_metric.Value();
      WallTimer timer;
      auto warm = engine.Count(query, "g");
      total_ms += timer.Millis();
      if (!warm.ok()) {
        std::fprintf(stderr, "count: %s\n",
                     warm.status().ToString().c_str());
        return false;
      }
      point->estimate = warm->estimate;
      point->lanes = warm->parallel.lanes;
      point->tasks = warm->parallel.tasks;
      point->worker_tasks = warm->parallel.worker_tasks;
      point->oracle_calls = warm->oracle_calls;
      point->dp_decides = dp_decides_metric.Value() - dp_before;
    }
    point->intra = intra;
    point->warm_ms = total_ms / warm_reps;
    return true;
  };

  // (a) six-cycle fptras-tw.
  bench::Row("\n(a) warm six-cycle fptras-tw (universe %u)", universe);
  bench::Row("%6s %10s %9s %10s %8s %12s %14s %12s", "intra", "warm_ms",
             "speedup", "estimate", "lanes", "tasks", "oracle_calls",
             "dp_decides");
  std::vector<LanePoint> six_cycle;
  bool deterministic = true;
  for (int intra : {1, 2, 4}) {
    LanePoint point;
    if (!run_config(kSixCycle, intra, &point)) return 1;
    if (!six_cycle.empty()) {
      point.speedup = six_cycle.front().warm_ms / point.warm_ms;
      deterministic = deterministic &&
                      point.estimate == six_cycle.front().estimate &&
                      point.oracle_calls == six_cycle.front().oracle_calls;
    }
    bench::Row("%6d %10.2f %9.2f %10.1f %8d %12llu %14llu %12llu",
               point.intra, point.warm_ms, point.speedup, point.estimate,
               point.lanes, static_cast<unsigned long long>(point.tasks),
               static_cast<unsigned long long>(point.oracle_calls),
               static_cast<unsigned long long>(point.dp_decides));
    six_cycle.push_back(point);
  }

  // (b) mixed estimated workload: sum of warm per-call latencies.
  bench::Row("\n(b) mixed estimated workload (%zu shapes)",
             MixedTemplates().size());
  bench::Row("%6s %10s %9s", "intra", "warm_ms", "speedup");
  std::vector<LanePoint> mixed;
  for (int intra : {1, 2, 4}) {
    LanePoint total;
    total.intra = intra;
    double sum_estimate = 0.0;
    for (const std::string& query : MixedTemplates()) {
      LanePoint point;
      if (!run_config(query, intra, &point)) return 1;
      total.warm_ms += point.warm_ms;
      total.lanes = std::max(total.lanes, point.lanes);
      total.tasks += point.tasks;
      total.worker_tasks += point.worker_tasks;
      total.oracle_calls += point.oracle_calls;
      total.dp_decides += point.dp_decides;
      sum_estimate += point.estimate;
    }
    total.estimate = sum_estimate;
    if (!mixed.empty()) {
      total.speedup = mixed.front().warm_ms / total.warm_ms;
      deterministic = deterministic &&
                      total.estimate == mixed.front().estimate &&
                      total.oracle_calls == mixed.front().oracle_calls;
    }
    bench::Row("%6d %10.2f %9.2f", total.intra, total.warm_ms,
               total.speedup);
    mixed.push_back(total);
  }
  bench::Row("\ndeterministic across lane counts: %s",
             deterministic ? "yes" : "NO (BUG)");

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  auto write_points = [&](const char* name,
                          const std::vector<LanePoint>& points) {
    std::fprintf(out, "  \"%s\": [\n", name);
    for (size_t i = 0; i < points.size(); ++i) {
      const LanePoint& p = points[i];
      std::fprintf(out,
                   "    {\"intra\": %d, \"warm_ms\": %.2f, \"speedup\": "
                   "%.2f, \"estimate\": %.6f, \"lanes\": %d, \"tasks\": "
                   "%llu, \"worker_tasks\": %llu, \"oracle_calls\": %llu, "
                   "\"dp_decides\": %llu}%s\n",
                   p.intra, p.warm_ms, p.speedup, p.estimate, p.lanes,
                   static_cast<unsigned long long>(p.tasks),
                   static_cast<unsigned long long>(p.worker_tasks),
                   static_cast<unsigned long long>(p.oracle_calls),
                   static_cast<unsigned long long>(p.dp_decides),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
  };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"parallel_estimation\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n",
               bench::SmokeMode() ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hardware);
  if (hardware <= 1) {
    // A single-hardware-thread runner cannot demonstrate wall-clock
    // scaling at all; say so explicitly rather than letting ~1.0x
    // speedups read as a parallelism regression.
    std::fprintf(out,
                 "  \"scaling_note\": \"scaling unproven on this runner: "
                 "1 hardware thread — speedup columns measure overhead, "
                 "not scaling; lanes/tasks columns show the fan-out\",\n");
  }
  std::fprintf(out, "  \"universe\": %u,\n", universe);
  write_points("six_cycle_fptras_tw", six_cycle);
  write_points("mixed_workload", mixed);
  std::fprintf(out, "  \"deterministic\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(out,
               "  \"note\": \"speedup is warm_ms(intra=1)/warm_ms(intra=N); "
               "CPU-bound scaling is capped by hardware_threads (a "
               "1-hardware-thread runner cannot show wall-clock gains — "
               "read the lanes/tasks columns for the fan-out evidence, as "
               "BENCH_relation.json does for its scan rows); estimates are "
               "asserted bitwise identical across lane counts\"\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  bench::Row("wrote %s", json_path.c_str());
  return deterministic ? 0 : 1;
}

}  // namespace cqcount

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  return cqcount::Run(json_path);
}
