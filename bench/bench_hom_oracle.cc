// EXP-HOM: hom-oracle / prepared-DP microbenchmarks.
//
// Isolates the cost structure behind the colour-coding FPTRAS hot path
// (cost model: DLM oracle calls x colouring trials x per-trial DP):
//   (a) prepared (trial-reuse) vs monolithic DP decisions as a function
//       of trial count, for 0/1/2-disequality queries — the tentpole
//       prepare/evaluate split measured in isolation;
//   (b) ColourCodingEdgeFreeOracle::IsEdgeFree end-to-end per-call cost;
//   (c) BacktrackingHomOracle::Decide throughput (its BagJoiner is built
//       once at construction, not per call).
// Writes BENCH_fptras.json (argv[1] overrides). The `estimates` section
// runs at FIXED sizes in both full and smoke mode: CI asserts those
// estimates against the checked-in baseline (scripts/check_estimates.py),
// so perf PRs cannot silently change answers.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "app/workload.h"
#include "bench_util.h"
#include "counting/colour_coding.h"
#include "counting/fptras.h"
#include "decomposition/width_measures.h"
#include "hom/hom_oracle.h"
#include "query/parser.h"
#include "util/executor.h"
#include "util/random.h"
#include "util/timer.h"

namespace cqcount {
namespace {

// Keeps the optimiser from discarding a decision verdict.
volatile bool g_sink = false;
void benchmark_do_not_optimize(bool v) { g_sink = v; }

struct PreparedPoint {
  const char* name = "";
  int diseqs = 0;
  int trials = 0;
  double monolithic_ms = 0.0;
  double prepared_ms = 0.0;
  double speedup = 0.0;
};

struct EstimatePoint {
  const char* name = "";
  std::string query;
  uint32_t universe = 0;
  double estimate = 0.0;
  /// The same workload at 4 intra-query lanes (must equal `estimate`).
  double estimate_mt = 0.0;
  bool exact = false;
};

Query MustParse(const std::string& text) {
  auto q = ParseQuery(text);
  if (!q.ok()) {
    std::fprintf(stderr, "parse: %s\n", q.status().ToString().c_str());
    std::exit(1);
  }
  return *q;
}

std::vector<int> EndpointVars(const Query& q) {
  std::vector<int> vars;
  for (const Disequality& d : q.disequalities()) {
    vars.push_back(d.lhs);
    vars.push_back(d.rhs);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

// One simulated EdgeFree call: fixed random V_i base domains, `trials`
// colourings. Returns (monolithic_ms, prepared_ms) over `reps` calls.
PreparedPoint MeasurePrepared(const char* name, const std::string& text,
                              const Database& db, uint32_t universe,
                              int trials, int reps) {
  Query q = MustParse(text);
  Hypergraph h = q.BuildHypergraph();
  FWidthResult width = ComputeDecomposition(h, WidthObjective::kTreewidth);
  DecompositionSolver monolithic(q, db, width.decomposition);
  DecompositionSolver prepared_solver(q, db, width.decomposition);
  const std::vector<int> endpoints = EndpointVars(q);

  PreparedPoint point;
  point.name = name;
  point.diseqs = static_cast<int>(q.disequalities().size());
  point.trials = trials;

  // Identical base domains and colourings for both paths. The prepared
  // side pays its own one-time bag-join cache build: warm it outside the
  // timed region so the comparison is steady-state per-call cost (the
  // cache is per solver, amortised over the thousands of calls of one
  // DLM estimation in real use).
  {
    VarDomains warm_base;
    warm_base.allowed.resize(q.num_vars());
    PreparedDp warm = prepared_solver.Prepare(warm_base, endpoints);
    benchmark_do_not_optimize(warm.Decide({}));
  }
  auto run = [&](bool use_prepared) {
    Rng rng(0xBEEF);
    WallTimer timer;
    for (int rep = 0; rep < reps; ++rep) {
      VarDomains base;
      base.allowed.resize(q.num_vars());
      for (int i = 0; i < q.num_free(); ++i) {
        base.allowed[i] = rng.RandomMask(universe, 0.5);
      }
      std::vector<Bitset> masks(endpoints.size());
      if (use_prepared) {
        PreparedDp dp = prepared_solver.Prepare(base, endpoints);
        std::vector<DomainRestriction> extra;
        for (int trial = 0; trial < trials; ++trial) {
          extra.clear();
          for (size_t k = 0; k < endpoints.size(); ++k) {
            masks[k] = rng.RandomMask(universe, 0.5);
            extra.push_back({endpoints[k], &masks[k]});
          }
          benchmark_do_not_optimize(dp.Decide(extra));
        }
      } else {
        for (int trial = 0; trial < trials; ++trial) {
          VarDomains merged = base;
          for (size_t k = 0; k < endpoints.size(); ++k) {
            masks[k] = rng.RandomMask(universe, 0.5);
            Bitset& domain = merged.allowed[endpoints[k]];
            if (domain.empty()) {
              domain = masks[k];
            } else {
              domain.IntersectWith(masks[k]);
            }
          }
          benchmark_do_not_optimize(monolithic.Decide(&merged));
        }
      }
    }
    return timer.Millis();
  };

  point.monolithic_ms = run(false);
  point.prepared_ms = run(true);
  point.speedup =
      point.prepared_ms > 0.0 ? point.monolithic_ms / point.prepared_ms : 0.0;
  return point;
}

}  // namespace

int Run(const std::string& json_path) {
  bench::Header("EXP-HOM", "hom oracle: prepared vs monolithic DP");

  const uint32_t universe = bench::Sized(120u, 24u);
  const int reps = bench::Sized(20, 2);
  Database db;
  {
    Rng rng(42);
    db = SocialNetworkDb(universe, 6.0, 0.5, rng);
  }

  // (a) prepared-vs-monolithic sweep.
  const char* kNames[3] = {"six-cycle-0diseq", "star-1diseq", "star-2diseq"};
  const std::string kQueries[3] = {
      "ans(a, d) :- F(a, b), F(b, c), F(c, d), F(d, e), F(e, f), F(f, a).",
      "ans(x) :- F(x, y), F(x, z), y != z.",
      "ans(x) :- F(x, y), F(x, z), F(x, w), y != z, z != w.",
  };
  std::vector<PreparedPoint> points;
  bench::Row("\n(a) decision cost vs trial count (universe %u, %d reps)",
             universe, reps);
  bench::Row("%18s %7s %7s %14s %12s %9s", "query", "diseqs", "trials",
             "monolithic_ms", "prepared_ms", "speedup");
  for (int qi = 0; qi < 3; ++qi) {
    for (int trials : bench::Sweep(std::vector<int>{1, 8, 64}, 2)) {
      PreparedPoint point =
          MeasurePrepared(kNames[qi], kQueries[qi], db, universe, trials,
                          reps);
      bench::Row("%18s %7d %7d %14.2f %12.2f %8.1fx", point.name,
                 point.diseqs, point.trials, point.monolithic_ms,
                 point.prepared_ms, point.speedup);
      points.push_back(point);
    }
  }

  // (b) end-to-end EdgeFree call cost (the DLM estimator's unit of work).
  double edgefree_ms = 0.0;
  uint64_t edgefree_calls = 0;
  {
    Query q = MustParse(kQueries[1]);
    Hypergraph h = q.BuildHypergraph();
    FWidthResult width = ComputeDecomposition(h, WidthObjective::kTreewidth);
    DecompositionHomOracle hom(q, db, width.decomposition);
    ColourCodingOptions cc;
    cc.per_call_failure = 1e-3;
    ColourCodingEdgeFreeOracle oracle(q, &hom, universe, cc);
    Rng rng(7);
    const int calls = bench::Sized(200, 10);
    WallTimer timer;
    for (int i = 0; i < calls; ++i) {
      PartiteSubset parts;
      parts.parts = {rng.RandomMask(universe, 0.5)};
      benchmark_do_not_optimize(oracle.IsEdgeFree(parts));
    }
    edgefree_ms = timer.Millis() / calls;
    edgefree_calls = oracle.num_calls();
    bench::Row("\n(b) IsEdgeFree (1 diseq, %llu trials/call): %.3f ms/call",
               static_cast<unsigned long long>(oracle.trials_per_call()),
               edgefree_ms);
  }

  // (c) backtracking oracle throughput (joiner hoisted to construction).
  double backtracking_us = 0.0;
  {
    Query q = MustParse(kQueries[1]);
    BacktrackingHomOracle oracle(q, db);
    Rng rng(9);
    const int calls = bench::Sized(2000, 50);
    VarDomains domains;
    domains.allowed.resize(q.num_vars());
    WallTimer timer;
    for (int i = 0; i < calls; ++i) {
      domains.allowed[0] = rng.RandomMask(universe, 0.3);
      benchmark_do_not_optimize(oracle.Decide(domains));
    }
    backtracking_us = timer.Millis() * 1e3 / calls;
    bench::Row("(c) BacktrackingHomOracle::Decide: %.1f us/call",
               backtracking_us);
  }

  // (d) fixed-seed estimate baselines (FIXED sizes in every mode: these
  // values are asserted by CI against the checked-in JSON).
  const uint32_t kBaselineUniverse = 24;
  Database baseline_db;
  {
    Rng rng(7);
    baseline_db = SocialNetworkDb(kBaselineUniverse, 4.0, 0.5, rng);
  }
  const char* kEstimateNames[3] = {"star-diseq", "six-cycle", "path-diseq"};
  const std::string kEstimateQueries[3] = {
      "ans(x) :- F(x, y), F(x, z), y != z.",
      "ans(a, d) :- F(a, b), F(b, c), F(c, d), F(d, e), F(e, f), F(f, a).",
      "ans(x) :- F(x, y), F(y, z), x != z.",
  };
  std::vector<EstimatePoint> estimates;
  bench::Row("\n(d) fixed-seed estimate baselines (universe %u)",
             kBaselineUniverse);
  bench::Row("%12s %12s %12s %7s", "workload", "estimate", "estimate@4t",
             "exact");
  {
    // The multi-threaded column re-runs every workload with 4 intra-query
    // lanes on a real pool: check_estimates.py asserts it matches the
    // single-threaded baseline bit for bit (the determinism contract).
    Executor mt_pool(4);
    for (int i = 0; i < 3; ++i) {
      Query q = MustParse(kEstimateQueries[i]);
      ApproxOptions opts;
      opts.epsilon = 0.25;
      opts.delta = 0.2;
      opts.seed = 12345;
      opts.per_call_failure_override = 1e-3;
      auto result = ApproxCountAnswers(q, baseline_db, opts);
      ApproxOptions mt_opts = opts;
      mt_opts.pool = &mt_pool;
      mt_opts.intra_threads = 4;
      auto mt_result = ApproxCountAnswers(q, baseline_db, mt_opts);
      if (!result.ok() || !mt_result.ok()) {
        std::fprintf(stderr, "estimate: %s\n",
                     (result.ok() ? mt_result : result)
                         .status()
                         .ToString()
                         .c_str());
        return 1;
      }
      EstimatePoint point;
      point.name = kEstimateNames[i];
      point.query = kEstimateQueries[i];
      point.universe = kBaselineUniverse;
      point.estimate = result->estimate;
      point.estimate_mt = mt_result->estimate;
      point.exact = result->exact;
      estimates.push_back(point);
      bench::Row("%12s %12.1f %12.1f %7s", point.name, point.estimate,
                 point.estimate_mt, point.exact ? "yes" : "no");
    }
  }

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"hom_oracle\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n",
               bench::SmokeMode() ? "true" : "false");
  std::fprintf(out, "  \"universe\": %u,\n", universe);
  std::fprintf(out, "  \"prepared_vs_monolithic\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const PreparedPoint& p = points[i];
    std::fprintf(out,
                 "    {\"query\": \"%s\", \"diseqs\": %d, \"trials\": %d, "
                 "\"monolithic_ms\": %.2f, \"prepared_ms\": %.2f, "
                 "\"speedup\": %.2f}%s\n",
                 p.name, p.diseqs, p.trials, p.monolithic_ms, p.prepared_ms,
                 p.speedup, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"edgefree_ms_per_call\": %.3f,\n", edgefree_ms);
  std::fprintf(out, "  \"edgefree_calls\": %llu,\n",
               static_cast<unsigned long long>(edgefree_calls));
  std::fprintf(out, "  \"backtracking_us_per_call\": %.1f,\n",
               backtracking_us);
  std::fprintf(out, "  \"estimates\": [\n");
  for (size_t i = 0; i < estimates.size(); ++i) {
    const EstimatePoint& e = estimates[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"universe\": %u, \"seed\": 12345, "
                 "\"epsilon\": 0.25, \"delta\": 0.2, \"estimate\": %.6f, "
                 "\"estimate_mt\": %.6f, \"exact\": %s}%s\n",
                 e.name, e.universe, e.estimate, e.estimate_mt,
                 e.exact ? "true" : "false",
                 i + 1 < estimates.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"note\": \"estimates run at fixed sizes in every mode "
               "and are asserted by scripts/check_estimates.py; perf rows "
               "scale with CQCOUNT_BENCH_SMOKE\"\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  bench::Row("wrote %s", json_path.c_str());
  return 0;
}

}  // namespace cqcount

int main(int argc, char** argv) {
  return cqcount::Run(argc > 1 ? argv[1] : "BENCH_fptras.json");
}
