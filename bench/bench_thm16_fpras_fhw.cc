// EXP-T16: Theorem 16 — FPRAS for #CQ with bounded fractional
// hypertreewidth, strictly generalising ACJR's bounded-hw result.
//
// Workloads:
//  (a) the AGM triangle CQ (fhw = 1.5 < 2 = hw-style bound): accuracy of
//      the FPRAS against the extension-based exact counter;
//  (b) a 2-path CQ with an existential middle variable: runtime scaling
//      in ||D|| (fully polynomial -- no f(||phi||) blow-up);
//  (c) decomposition comparison: fhw objective vs treewidth objective
//      (the ACJR scope) on a wide-atom query where fhw is much smaller.
#include "app/graph_gen.h"
#include "app/workload.h"
#include "automata/fpras.h"
#include "bench_util.h"
#include "counting/exact_count.h"
#include "decomposition/width_measures.h"
#include "query/parser.h"
#include "util/timer.h"

namespace cqcount {

int Run() {
  bench::Header("EXP-T16", "Theorem 16: FPRAS for bounded-fhw CQs");

  // (a) AGM triangle.
  {
    auto q = ParseQuery("ans(a, b, c) :- R(a, b), S(b, c), T(a, c).");
    bench::Row("(a) triangle CQ, fhw = 1.5: accuracy vs exact");
    bench::Row("%8s %12s %12s %10s %8s", "N", "exact", "estimate",
               "rel.err", "fhw");
    for (uint32_t n : bench::Sweep<uint32_t>({10u, 20u, 40u})) {
      Rng rng(n);
      Database db = RandomDatabase(
          n, {{"R", 2, 3 * n}, {"S", 2, 3 * n}, {"T", 2, 3 * n}}, rng);
      auto exact = ExactCountAnswersExtension(*q, db);
      FprasOptions opts;
      opts.acjr.epsilon = 0.15;
      opts.acjr.seed = 3;
      auto fpras = FprasCountCq(*q, db, opts);
      if (!exact.ok() || !fpras.ok()) {
        bench::Row("%8u error", n);
        continue;
      }
      bench::Row("%8u %12llu %12.1f %10.4f %8.2f", n,
                 static_cast<unsigned long long>(*exact), fpras->estimate,
                 bench::RelativeError(fpras->estimate,
                                      static_cast<double>(*exact)),
                 fpras->fhw);
    }
  }

  // (b) runtime scaling with an existential variable.
  {
    auto q = ParseQuery("ans(x, z) :- E(x, y), E(y, z).");
    bench::Row("\n(b) 2-path CQ with existential middle: scaling in ||D||");
    bench::Row("%8s %12s %12s %14s", "N", "estimate", "ms",
               "membership DPs");
    for (uint32_t n : bench::Sweep<uint32_t>({25u, 50u, 100u, 200u}, 2)) {
      Rng rng(31 + n);
      Database db = GraphToDatabase(ErdosRenyi(n, 4.0 / n, rng));
      FprasOptions opts;
      opts.acjr.epsilon = 0.2;
      opts.acjr.seed = 5;
      WallTimer timer;
      auto fpras = FprasCountCq(*q, db, opts);
      const double ms = timer.Millis();
      bench::Row("%8u %12.1f %12.2f %14llu", n,
                 fpras.ok() ? fpras->estimate : -1.0, ms,
                 fpras.ok() ? static_cast<unsigned long long>(
                                  fpras->membership_tests)
                            : 0ull);
    }
  }

  // (c) fhw vs treewidth decomposition objective on a wide-atom query.
  {
    auto q = ParseQuery("ans(a, e) :- R(a, b, c, d), S(b, c, d, e).");
    Hypergraph h = q->BuildHypergraph();
    auto fhw = ExactFhw(h, 12);
    auto tw = ExactTreewidth(h, 12);
    bench::Row("\n(c) wide-atom CQ: tw = %.0f but fhw = %.2f",
               tw.ok() ? tw->width : -1.0, fhw.ok() ? fhw->width : -1.0);
    Rng rng(71);
    Database db =
        RandomDatabase(8, {{"R", 4, 120}, {"S", 4, 120}}, rng);
    auto exact = ExactCountAnswersExtension(*q, db);
    FprasOptions opts;
    opts.acjr.epsilon = 0.15;
    opts.acjr.seed = 7;
    auto fpras = FprasCountCq(*q, db, opts);
    if (exact.ok() && fpras.ok()) {
      bench::Row("exact=%llu estimate=%.1f rel.err=%.4f (fhw engine)",
                 static_cast<unsigned long long>(*exact), fpras->estimate,
                 bench::RelativeError(fpras->estimate,
                                      static_cast<double>(*exact)));
    }
  }
  bench::Row("%s",
             "\npaper shape: fully polynomial (no query-size blow-up) for "
             "pure CQs whenever fhw is bounded -- strictly beyond the "
             "hypertreewidth scope of Arenas et al.");
  return 0;
}

}  // namespace cqcount

int main() { return cqcount::Run(); }
