// EXP-C6: Corollary 6 — FPTRAS for counting locally injective
// homomorphisms from bounded-treewidth patterns.
//
// Patterns: P4 (path), the 7-vertex complete binary tree, and a 4-star --
// all treewidth 1, with disequality sets cn(G) of growing size. Hosts:
// Erdos-Renyi graphs. We report exact vs approximate counts (small hosts)
// and runtime growth in the host size (larger hosts).
#include "app/graph_gen.h"
#include "app/lihom.h"
#include "bench_util.h"
#include "util/timer.h"

namespace cqcount {

int Run() {
  bench::Header("EXP-C6", "Corollary 6: locally injective homomorphisms");

  struct Pattern {
    const char* name;
    SimpleGraph graph;
  };
  const Pattern patterns[] = {
      {"path P3", PathGraph(3)},
      {"path P4", PathGraph(4)},
      {"star S3 (claw)", StarGraph(3)},
  };

  bench::Row("\n(a) accuracy on small hosts (ER n=9, p=0.45)");
  bench::Row("%-18s %8s %6s %12s %12s %10s", "pattern", "|cn(G)|", "tw",
             "exact", "estimate", "rel.err");
  for (const Pattern& p : patterns) {
    Rng rng(7);
    SimpleGraph host = ErdosRenyi(9, 0.45, rng);
    auto exact = lihom::ExactCountLocallyInjectiveHoms(p.graph, host);
    ApproxOptions opts;
    opts.epsilon = 0.15;
    opts.delta = 0.2;
    opts.seed = 11;
    opts.per_call_failure_override = 1e-3;
    auto approx = lihom::ApproxCountLocallyInjectiveHoms(p.graph, host, opts);
    if (!exact.ok() || !approx.ok()) {
      bench::Row("%-18s error", p.name);
      continue;
    }
    bench::Row("%-18s %8zu %6.0f %12llu %12.1f %10.4f", p.name,
               lihom::CommonNeighbourPairs(p.graph).size(), approx->width,
               static_cast<unsigned long long>(*exact), approx->estimate,
               bench::RelativeError(approx->estimate,
                                    static_cast<double>(*exact)));
  }

  bench::Row("\n(b) FPTRAS runtime vs host size (pattern = P3)");
  bench::Row("%8s %12s %12s %14s", "host n", "estimate", "ms",
             "hom queries");
  for (int n : bench::Sweep<int>({25, 50})) {
    Rng rng(100 + n);
    SimpleGraph host = ErdosRenyi(n, 6.0 / n, rng);
    ApproxOptions opts;
    opts.epsilon = 0.25;
    opts.delta = 0.25;
    opts.seed = 13;
    opts.per_call_failure_override = 0.02;
    opts.dlm.max_frontier = 2048;
    opts.dlm.initial_samples_per_box = 2;
    opts.dlm.max_refinement_rounds = 8;
    WallTimer timer;
    auto approx =
        lihom::ApproxCountLocallyInjectiveHoms(PathGraph(3), host, opts);
    const double ms = timer.Millis();
    if (!approx.ok()) {
      bench::Row("%8d error: %s", n, approx.status().ToString().c_str());
      continue;
    }
    bench::Row("%8d %12.1f %12.2f %14llu", n, approx->estimate, ms,
               static_cast<unsigned long long>(approx->hom_queries));
  }
  bench::Row("%s",
             "\npaper shape: FPTRAS exists for every bounded-treewidth "
             "pattern class (Cor 6); cost grows with 4^{|cn(G)|}, the "
             "colour-coding factor, but polynomially in the host.");
  return 0;
}

}  // namespace cqcount

int main() { return cqcount::Run(); }
