// EXP-SCHED: adaptive accuracy scheduler A/B.
//
// Measures what EngineOptions::adaptive buys on warm repeated queries:
// the cost model predicts per-component work from ShapeProfile history,
// the budget splitter reallocates epsilon by marginal cost, and the CLT
// early-stop rule terminates the DLM run schedule once the confidence
// target is met. Each workload runs two arms on identical databases and
// seeds:
//   adaptive_off — the exact pre-scheduler behaviour (even eps split,
//                  full run schedule); this arm must stay bit-identical
//                  to the pre-scheduler engine forever, which is what the
//                  fixed-size `estimates` section pins in CI;
//   adaptive_on  — cost-model budgets + early stop, measured on the
//                  third call so two prior calls have warmed the shape
//                  profile past SchedulerOptions::min_profile_runs.
// The headline number is oracle_call_reduction = off/on; the six-cycle
// fptras-tw workload is expected to show >= 2x in full mode.
// Writes BENCH_scheduler.json (or argv[1]).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "app/workload.h"
#include "bench_util.h"
#include "engine/engine.h"
#include "util/estimate_outcome.h"
#include "util/timer.h"

namespace cqcount {
namespace {

struct Workload {
  const char* name;
  const char* query;
};

constexpr Workload kWorkloads[] = {
    {"six-cycle",
     "ans(a, d) :- F(a, b), F(b, c), F(c, d), F(d, e), F(e, f), F(f, a)."},
    {"path-diseq", "ans(x) :- F(x, y), F(y, z), x != z."},
};

constexpr uint64_t kEngineSeed = 20220808;
constexpr double kEpsilon = 0.2;
constexpr double kDelta = 0.2;

/// One arm's measured (third, profile-warm) call.
struct ArmPoint {
  double estimate = 0.0;
  uint64_t oracle_calls = 0;
  uint64_t estimator_calls = 0;
  double millis = 0.0;
  const char* stop_reason = "none";
  std::string cost_source;
  int completed_runs = 0;
  int total_runs = 0;
};

bool RunArm(const Database& db, const char* query, bool adaptive, int intra,
            ArmPoint* point) {
  EngineOptions opts;
  opts.epsilon = kEpsilon;
  opts.delta = kDelta;
  opts.seed = kEngineSeed;
  opts.num_threads = 4;
  opts.intra_query_threads = intra;
  opts.intra_query_min_cost = 0.0;
  opts.adaptive = adaptive;
  CountingEngine engine(opts);
  Status s = engine.RegisterDatabase("g", db);
  if (!s.ok()) {
    std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return false;
  }
  // Two warm-up calls: the first fills the plan cache, the second pushes
  // the shape profile past min_profile_runs so the measured call runs on
  // observed costs (cost_source = observed_profile) in the adaptive arm.
  for (int warm = 0; warm < 2; ++warm) {
    auto r = engine.Count(query, "g");
    if (!r.ok()) {
      std::fprintf(stderr, "warm count: %s\n", r.status().ToString().c_str());
      return false;
    }
  }
  WallTimer timer;
  auto result = engine.Count(query, "g");
  point->millis = timer.Millis();
  if (!result.ok()) {
    std::fprintf(stderr, "count: %s\n", result.status().ToString().c_str());
    return false;
  }
  point->estimate = result->estimate;
  point->oracle_calls = result->oracle_calls;
  for (const ComponentResult& c : result->components) {
    point->estimator_calls += c.estimator_calls;
    if (!c.executed) continue;
    // Report the run structure of the dominant estimated component (these
    // workloads are connected: exactly one).
    if (c.total_runs > 0) {
      point->stop_reason = StopReasonName(c.stop_reason);
      point->cost_source = c.cost_source;
      point->completed_runs = c.completed_runs;
      point->total_runs = c.total_runs;
    }
  }
  return true;
}

}  // namespace

int Run(const std::string& json_path) {
  bench::Header("EXP-SCHED", "adaptive scheduler: oracle work vs accuracy");
  const unsigned hardware = std::thread::hardware_concurrency();

  // The `estimates` section runs at FIXED size and seed in every mode
  // (including CQCOUNT_BENCH_SMOKE): the adaptive-off arm takes the exact
  // pre-scheduler code path, so baseline drift here means the scheduler
  // refactor changed answers, not just scheduling.
  const uint32_t pinned_universe = 48;
  Database pinned_db;
  {
    Rng rng(2024);
    pinned_db = SocialNetworkDb(pinned_universe, 5.0, 0.5, rng);
  }
  struct PinnedEstimate {
    const char* name;
    double estimate = 0.0;
    double estimate_mt = 0.0;
  };
  std::vector<PinnedEstimate> pinned;
  bench::Row("\n(a) pinned adaptive-off estimates (universe %u, seed %llu)",
             pinned_universe, static_cast<unsigned long long>(kEngineSeed));
  bench::Row("%12s %16s %16s", "workload", "estimate", "estimate_mt");
  for (const Workload& w : kWorkloads) {
    ArmPoint single, multi;
    if (!RunArm(pinned_db, w.query, /*adaptive=*/false, /*intra=*/1, &single))
      return 1;
    if (!RunArm(pinned_db, w.query, /*adaptive=*/false, /*intra=*/4, &multi))
      return 1;
    pinned.push_back({w.name, single.estimate, multi.estimate});
    bench::Row("%12s %16.4f %16.4f", w.name, single.estimate, multi.estimate);
    if (single.estimate != multi.estimate) {
      std::fprintf(stderr, "%s: adaptive-off estimate not lane-invariant\n",
                   w.name);
      return 1;
    }
  }

  // (b) the A/B itself, at bench-sized universes.
  const uint32_t universe = bench::Sized(240u, 48u);
  Database db;
  {
    Rng rng(2024);
    db = SocialNetworkDb(universe, 5.0, 0.5, rng);
  }
  struct WorkloadResult {
    const char* name;
    ArmPoint off, on;
    double reduction = 1.0;
    double rel_gap = 0.0;
  };
  std::vector<WorkloadResult> results;
  bench::Row("\n(b) warm third-call A/B (universe %u, eps %.2f, delta %.2f)",
             universe, kEpsilon, kDelta);
  bench::Row("%12s %9s %12s %12s %10s %8s %14s %10s", "workload", "arm",
             "oracle", "est_calls", "millis", "runs", "stop", "estimate");
  for (const Workload& w : kWorkloads) {
    WorkloadResult wr;
    wr.name = w.name;
    if (!RunArm(db, w.query, /*adaptive=*/false, /*intra=*/1, &wr.off))
      return 1;
    if (!RunArm(db, w.query, /*adaptive=*/true, /*intra=*/1, &wr.on)) return 1;
    wr.reduction = wr.on.oracle_calls > 0
                       ? static_cast<double>(wr.off.oracle_calls) /
                             static_cast<double>(wr.on.oracle_calls)
                       : 1.0;
    wr.rel_gap = bench::RelativeError(wr.on.estimate, wr.off.estimate);
    for (const ArmPoint* arm : {&wr.off, &wr.on}) {
      bench::Row("%12s %9s %12llu %12llu %10.2f %5d/%-2d %14s %10.1f",
                 w.name, arm == &wr.off ? "off" : "adaptive",
                 static_cast<unsigned long long>(arm->oracle_calls),
                 static_cast<unsigned long long>(arm->estimator_calls),
                 arm->millis, arm->completed_runs, arm->total_runs,
                 arm->stop_reason, arm->estimate);
    }
    bench::Row("%12s oracle-call reduction %.2fx, estimate gap %.1f%%",
               w.name, wr.reduction, 100.0 * wr.rel_gap);
    results.push_back(wr);
  }

  bool ok = true;
  for (const WorkloadResult& wr : results) {
    if (wr.reduction < 1.0) {
      std::fprintf(stderr, "%s: adaptive arm did MORE oracle work (%.2fx)\n",
                   wr.name, wr.reduction);
      ok = false;
    }
  }
  // The headline acceptance target (full mode only: smoke-sized instances
  // finish in the exact phase where there is nothing to save).
  if (!bench::SmokeMode() && results[0].reduction < 2.0) {
    std::fprintf(stderr,
                 "six-cycle oracle-call reduction %.2fx below the 2x target\n",
                 results[0].reduction);
    ok = false;
  }

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  auto write_arm = [&](const char* name, const ArmPoint& arm,
                       const char* trailer) {
    std::fprintf(out,
                 "     \"%s\": {\"estimate\": %.6f, \"oracle_calls\": %llu, "
                 "\"estimator_calls\": %llu, \"millis\": %.2f, "
                 "\"stop_reason\": \"%s\", \"cost_source\": \"%s\", "
                 "\"completed_runs\": %d, \"total_runs\": %d}%s\n",
                 name, arm.estimate,
                 static_cast<unsigned long long>(arm.oracle_calls),
                 static_cast<unsigned long long>(arm.estimator_calls),
                 arm.millis, arm.stop_reason, arm.cost_source.c_str(),
                 arm.completed_runs, arm.total_runs, trailer);
  };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"scheduler\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n",
               bench::SmokeMode() ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hardware);
  std::fprintf(out, "  \"estimates\": [\n");
  for (size_t i = 0; i < pinned.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"universe\": %u, \"seed\": %llu, "
                 "\"epsilon\": %.2f, \"delta\": %.2f, \"estimate\": %.6f, "
                 "\"estimate_mt\": %.6f, \"exact\": false}%s\n",
                 pinned[i].name, pinned_universe,
                 static_cast<unsigned long long>(kEngineSeed), kEpsilon,
                 kDelta, pinned[i].estimate, pinned[i].estimate_mt,
                 i + 1 < pinned.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& wr = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"universe\": %u, \"seed\": %llu, "
                 "\"epsilon\": %.2f, \"delta\": %.2f,\n",
                 wr.name, universe,
                 static_cast<unsigned long long>(kEngineSeed), kEpsilon,
                 kDelta);
    write_arm("adaptive_off", wr.off, ",");
    write_arm("adaptive_on", wr.on, ",");
    std::fprintf(out,
                 "     \"oracle_call_reduction\": %.4f, "
                 "\"estimate_rel_gap\": %.6f}%s\n",
                 wr.reduction, wr.rel_gap,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"note\": \"estimates section is adaptive-off at pinned "
               "size/seed in every mode (the pre-scheduler code path; CI "
               "pins it bitwise against the checked-in baseline); workloads "
               "measure the third profile-warm call so the adaptive arm "
               "runs on observed costs; smoke-sized workloads may finish "
               "in the exact phase, so the 2x six-cycle target is asserted "
               "in full mode only\"\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  bench::Row("wrote %s", json_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace cqcount

int main(int argc, char** argv) {
  return cqcount::Run(argc > 1 ? argv[1] : "BENCH_scheduler.json");
}
