// EXP-STORAGE: the out-of-core segment backend and SIMD kernels.
//
// Three sections, written to BENCH_storage.json (or argv[1]):
//
//   open_sweep  streams databases up to 10^8 tuples into segment files
//               via SegmentWriter (never materialised in memory), then
//               measures the mmap open cost (microseconds, O(1) in row
//               count) against the linear cost of registering the same
//               data in memory (stage + canonicalise + zone maps).
//   kernels     scalar-vs-SIMD bandwidth of the two scan kernels the
//               estimators lean on — the strided linear lower-bound
//               scan behind NarrowRange/GroupEnd and the word-parallel
//               semijoin existence probe — at 200k+ rows, where the
//               acceptance floor is a >= 2x SIMD speedup.
//   estimates   fixed-seed engine runs on the SAME database through the
//               in-memory backend, the mmap'd segment backend, and the
//               scalar kernel fallback; all three must agree bitwise
//               (scripts/check_estimates.py storage mode enforces it).
//
// Smoke mode (CQCOUNT_BENCH_SMOKE) shrinks sizes so CI exercises every
// code path in seconds; smoke numbers are flagged in the JSON and the
// perf assertions are skipped for them.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "relational/relation.h"
#include "relational/segment.h"
#include "relational/simd.h"
#include "relational/structure.h"
#include "util/random.h"
#include "util/timer.h"

namespace cqcount {
namespace {

const char* kSegPath = "/tmp/cqcount_bench_storage.seg";

// ---------------------------------------------------------------------------
// Section 1: O(1) segment open vs linear in-memory registration.
// ---------------------------------------------------------------------------

struct OpenEntry {
  uint64_t rows = 0;
  uint64_t file_bytes = 0;
  double pack_ms = 0.0;
  double open_us = 0.0;
  double inmemory_register_ms = 0.0;
};

// Rows (i / kSplit, i % kSplit) are strictly ascending, so both the
// streaming writer and the sorted-input Canonicalize fast path apply.
constexpr uint32_t kSplit = 10000;
constexpr uint32_t kSweepUniverse = 10000;

OpenEntry MeasureOpen(uint64_t rows) {
  OpenEntry entry;
  entry.rows = rows;

  WallTimer timer;
  {
    auto writer = SegmentWriter::Create(kSegPath, kSweepUniverse);
    if (!writer.ok()) {
      std::fprintf(stderr, "writer: %s\n",
                   writer.status().ToString().c_str());
      std::exit(1);
    }
    Status s = (*writer)->BeginRelation("E", 2);
    for (uint64_t i = 0; s.ok() && i < rows; ++i) {
      const Value row[2] = {static_cast<Value>(i / kSplit),
                            static_cast<Value>(i % kSplit)};
      s = (*writer)->AppendRow(row);
    }
    if (s.ok()) s = (*writer)->EndRelation();
    if (s.ok()) s = (*writer)->Finish();
    if (!s.ok()) {
      std::fprintf(stderr, "pack: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  entry.pack_ms = timer.Millis();

  timer.Reset();
  auto mapped = OpenSegmentDatabase(kSegPath);
  entry.open_us = timer.Millis() * 1000.0;
  if (!mapped.ok()) {
    std::fprintf(stderr, "open: %s\n", mapped.status().ToString().c_str());
    std::exit(1);
  }
  if (auto view = SegmentView::Open(kSegPath); view.ok()) {
    entry.file_bytes = (*view)->mapped_bytes();
  }

  // The in-memory cost of the same data: stage (rows arrive pre-sorted,
  // as a bulk loader would deliver them), canonicalise, build zone maps.
  timer.Reset();
  {
    Relation rel(2);
    for (uint64_t i = 0; i < rows; ++i) {
      Value* dst = rel.AppendRow();
      dst[0] = static_cast<Value>(i / kSplit);
      dst[1] = static_cast<Value>(i % kSplit);
    }
    rel.Canonicalize();
    rel.BuildZoneMaps();
    entry.inmemory_register_ms = timer.Millis();
  }
  std::remove(kSegPath);
  return entry;
}

// ---------------------------------------------------------------------------
// Section 2: scalar vs SIMD kernel bandwidth.
// ---------------------------------------------------------------------------

struct KernelEntry {
  std::string kernel;
  uint64_t rows = 0;
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  double speedup = 0.0;
};

KernelEntry MeasureLinearScan(uint64_t rows, size_t stride, int repeats) {
  KernelEntry entry;
  entry.kernel = "linear_lower_bound_stride" + std::to_string(stride);
  entry.rows = rows;
  Rng rng(42);
  std::vector<Value> keys(rows * stride);
  for (uint64_t i = 0; i < rows; ++i) {
    // Sorted keys, all < UINT32_MAX so a probe for UINT32_MAX scans the
    // full column (bandwidth, not early exit).
    keys[i * stride] = static_cast<Value>(i * 2);
    for (size_t k = 1; k < stride; ++k) {
      keys[i * stride + k] = static_cast<Value>(rng.UniformInt(1u << 30));
    }
  }
  uint64_t sink = 0;
  WallTimer timer;
  for (int r = 0; r < repeats; ++r) {
    sink += simd::LinearLowerBoundStridedAt(simd::Level::kScalar, keys.data(),
                                            stride, rows, UINT32_MAX);
  }
  entry.scalar_ms = timer.Millis();
  timer.Reset();
  for (int r = 0; r < repeats; ++r) {
    sink += simd::LinearLowerBoundStridedAt(simd::MaxSupportedLevel(),
                                            keys.data(), stride, rows,
                                            UINT32_MAX);
  }
  entry.simd_ms = timer.Millis();
  entry.speedup = entry.simd_ms > 0 ? entry.scalar_ms / entry.simd_ms : 1.0;
  if (sink == 0) std::fprintf(stderr, "impossible\n");
  return entry;
}

KernelEntry MeasureProbeBlocks(uint64_t rows, int repeats) {
  KernelEntry entry;
  entry.kernel = "probe_stamps_block";
  entry.rows = rows;
  Rng rng(43);
  constexpr size_t kWidth = 2;
  constexpr uint32_t kDomain = 1000;
  const int cols[2] = {0, 1};
  const uint32_t radix[2] = {1, kDomain};
  const uint32_t epoch = 7;
  std::vector<uint32_t> stamps(kDomain * kDomain);
  for (uint32_t& s : stamps) s = rng.Bernoulli(0.5) ? epoch : 0;
  std::vector<Value> tuples(rows * kWidth);
  for (Value& v : tuples) v = static_cast<Value>(rng.UniformInt(kDomain));

  uint64_t sink = 0;
  WallTimer timer;
  for (int r = 0; r < repeats; ++r) {
    for (uint64_t i = 0; i < rows; i += 64) {
      const size_t n = static_cast<size_t>(
          rows - i < 64 ? rows - i : uint64_t{64});
      sink += __builtin_popcountll(simd::ProbeStampsBlockAt(
          simd::Level::kScalar, stamps.data(), stamps.size(), epoch,
          tuples.data() + i * kWidth, kWidth, cols, radix, 2, n));
    }
  }
  entry.scalar_ms = timer.Millis();
  timer.Reset();
  for (int r = 0; r < repeats; ++r) {
    for (uint64_t i = 0; i < rows; i += 64) {
      const size_t n = static_cast<size_t>(
          rows - i < 64 ? rows - i : uint64_t{64});
      sink += __builtin_popcountll(simd::ProbeStampsBlockAt(
          simd::MaxSupportedLevel(), stamps.data(), stamps.size(), epoch,
          tuples.data() + i * kWidth, kWidth, cols, radix, 2, n));
    }
  }
  entry.simd_ms = timer.Millis();
  entry.speedup = entry.simd_ms > 0 ? entry.scalar_ms / entry.simd_ms : 1.0;
  if (sink == UINT64_MAX) std::fprintf(stderr, "impossible\n");
  return entry;
}

// ---------------------------------------------------------------------------
// Section 3: backend/kernels estimate parity (fixed seeds).
// ---------------------------------------------------------------------------

struct EstimateEntry {
  std::string name;
  std::string query;
  uint32_t universe = 0;
  uint64_t seed = 0;
  double epsilon = 0.0;
  double delta = 0.0;
  double estimate = 0.0;          // in-memory backend, active SIMD level
  double estimate_segment = 0.0;  // mmap'd segment backend
  double estimate_scalar = 0.0;   // in-memory backend, scalar kernels
  bool exact = false;
  unsigned long long oracle_calls = 0;
};

constexpr uint32_t kEstimateUniverse = 400;

Database EstimateDatabase() {
  Rng rng(777);
  Database db(kEstimateUniverse);
  (void)db.DeclareRelation("E", 2);
  (void)db.DeclareRelation("F", 2);
  (void)db.DeclareRelation("L", 1);
  for (int i = 0; i < 8000; ++i) {
    (void)db.AddFact("E",
                     {static_cast<Value>(rng.UniformInt(kEstimateUniverse)),
                      static_cast<Value>(rng.UniformInt(kEstimateUniverse))});
    (void)db.AddFact("F",
                     {static_cast<Value>(rng.UniformInt(kEstimateUniverse)),
                      static_cast<Value>(rng.UniformInt(kEstimateUniverse))});
  }
  for (Value v = 0; v < kEstimateUniverse; v += 2) {
    (void)db.AddFact("L", {v});
  }
  db.Canonicalize();
  return db;
}

double RunOne(const std::string& query, bool mapped,
              EstimateEntry* entry) {
  EngineOptions opts;
  CountingEngine engine(opts);
  Status registered =
      mapped ? engine.RegisterDatabaseFile("db", kSegPath)
             : engine.RegisterDatabase("db", EstimateDatabase());
  if (!registered.ok()) {
    std::fprintf(stderr, "register: %s\n", registered.ToString().c_str());
    std::exit(1);
  }
  CountRequest request;
  request.query = query;
  request.database = "db";
  auto result = engine.Count(request);
  if (!result.ok()) {
    std::fprintf(stderr, "count: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  if (entry != nullptr) {
    entry->universe = kEstimateUniverse;
    entry->seed = opts.seed;
    entry->epsilon = opts.epsilon;
    entry->delta = opts.delta;
    entry->exact = result->exact;
    entry->oracle_calls =
        static_cast<unsigned long long>(result->oracle_calls);
  }
  return result->estimate;
}

std::vector<EstimateEntry> MeasureEstimates() {
  const std::vector<std::pair<std::string, std::string>> workloads = {
      {"storage_path2", "ans(x) :- E(x, y), F(y, z), y != z."},
      {"storage_negation", "ans(x, y) :- E(x, y), L(x), !F(y, x)."},
      {"storage_boolean", "ans() :- E(x, y), F(y, z), x != z."},
      // Forces the sampling strategy (disequality star) so the parity
      // check also covers the FPTRAS oracle path, not just exact joins.
      {"storage_fptras", "ans(x) :- E(x, y), E(x, z), y != z."},
  };
  Status packed = WriteSegmentDatabase(EstimateDatabase(), kSegPath);
  if (!packed.ok()) {
    std::fprintf(stderr, "pack: %s\n", packed.ToString().c_str());
    std::exit(1);
  }
  std::vector<EstimateEntry> entries;
  for (const auto& [name, query] : workloads) {
    EstimateEntry e;
    e.name = name;
    e.query = query;
    simd::SetLevelForTesting(simd::MaxSupportedLevel());
    e.estimate = RunOne(query, /*mapped=*/false, &e);
    e.estimate_segment = RunOne(query, /*mapped=*/true, nullptr);
    simd::SetLevelForTesting(simd::Level::kScalar);
    e.estimate_scalar = RunOne(query, /*mapped=*/false, nullptr);
    simd::SetLevelForTesting(simd::MaxSupportedLevel());
    entries.push_back(e);
  }
  std::remove(kSegPath);
  return entries;
}

}  // namespace

int Run(const std::string& json_path) {
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  bench::Header("EXP-STORAGE",
                "out-of-core segments: O(1) open, SIMD kernels, parity");
  bench::Row("hardware_threads=%u simd=%s smoke=%d", hardware_threads,
             simd::LevelName(simd::MaxSupportedLevel()),
             bench::SmokeMode() ? 1 : 0);

  // Section 1. Non-smoke reaches 10^8 rows (an ~800 MB segment file).
  const std::vector<uint64_t> sizes =
      bench::SmokeMode()
          ? std::vector<uint64_t>{20000, 50000}
          : std::vector<uint64_t>{1000000, 10000000, 100000000};
  bench::Row("%12s %14s %12s %12s %20s", "rows", "file_bytes", "pack_ms",
             "open_us", "inmemory_register_ms");
  std::vector<OpenEntry> open_entries;
  for (uint64_t rows : sizes) {
    OpenEntry e = MeasureOpen(rows);
    open_entries.push_back(e);
    bench::Row("%12llu %14llu %12.1f %12.1f %20.1f",
               static_cast<unsigned long long>(e.rows),
               static_cast<unsigned long long>(e.file_bytes), e.pack_ms,
               e.open_us, e.inmemory_register_ms);
  }

  // Section 2. The acceptance floor is >= 2x at 200k+ rows (non-smoke).
  const std::vector<uint64_t> kernel_rows =
      bench::SmokeMode() ? std::vector<uint64_t>{20000}
                         : std::vector<uint64_t>{200000, 1000000, 4000000};
  const int scan_repeats = bench::Sized(400, 20);
  const int probe_repeats = bench::Sized(40, 4);
  bench::Row("%28s %10s %12s %12s %10s", "kernel", "rows", "scalar_ms",
             "simd_ms", "speedup");
  std::vector<KernelEntry> kernel_entries;
  for (uint64_t rows : kernel_rows) {
    for (KernelEntry e :
         {MeasureLinearScan(rows, 1, scan_repeats),
          MeasureLinearScan(rows, 2, scan_repeats),
          MeasureProbeBlocks(rows, probe_repeats)}) {
      kernel_entries.push_back(e);
      bench::Row("%28s %10llu %12.2f %12.2f %9.2fx", e.kernel.c_str(),
                 static_cast<unsigned long long>(e.rows), e.scalar_ms,
                 e.simd_ms, e.speedup);
    }
  }

  // Section 3.
  const std::vector<EstimateEntry> estimates = MeasureEstimates();
  bench::Row("%20s %14s %14s %14s %6s", "workload", "inmemory", "segment",
             "scalar", "equal");
  bool all_equal = true;
  for (const EstimateEntry& e : estimates) {
    const bool equal =
        e.estimate == e.estimate_segment && e.estimate == e.estimate_scalar;
    all_equal = all_equal && equal;
    bench::Row("%20s %14.4f %14.4f %14.4f %6s", e.name.c_str(), e.estimate,
               e.estimate_segment, e.estimate_scalar, equal ? "yes" : "NO");
  }
  if (!all_equal) {
    std::fprintf(stderr,
                 "FATAL: backends/kernels disagree on fixed-seed "
                 "estimates\n");
    return 1;
  }

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"segment_storage\",\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hardware_threads);
  std::fprintf(out, "  \"simd_max_level\": \"%s\",\n",
               simd::LevelName(simd::MaxSupportedLevel()));
  std::fprintf(out, "  \"smoke\": %s,\n",
               bench::SmokeMode() ? "true" : "false");
  std::fprintf(out, "  \"open_sweep\": [\n");
  for (size_t i = 0; i < open_entries.size(); ++i) {
    const OpenEntry& e = open_entries[i];
    std::fprintf(out,
                 "    {\"rows\": %llu, \"file_bytes\": %llu, "
                 "\"pack_ms\": %.2f, \"open_us\": %.1f, "
                 "\"inmemory_register_ms\": %.2f}%s\n",
                 static_cast<unsigned long long>(e.rows),
                 static_cast<unsigned long long>(e.file_bytes), e.pack_ms,
                 e.open_us, e.inmemory_register_ms,
                 i + 1 < open_entries.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"kernels\": [\n");
  for (size_t i = 0; i < kernel_entries.size(); ++i) {
    const KernelEntry& e = kernel_entries[i];
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"rows\": %llu, "
                 "\"scalar_ms\": %.3f, \"simd_ms\": %.3f, "
                 "\"speedup\": %.2f}%s\n",
                 e.kernel.c_str(),
                 static_cast<unsigned long long>(e.rows), e.scalar_ms,
                 e.simd_ms, e.speedup,
                 i + 1 < kernel_entries.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"estimates\": [\n");
  for (size_t i = 0; i < estimates.size(); ++i) {
    const EstimateEntry& e = estimates[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"universe\": %u, \"seed\": %llu, "
        "\"epsilon\": %g, \"delta\": %g, \"estimate\": %.17g, "
        "\"estimate_segment\": %.17g, \"estimate_scalar\": %.17g, "
        "\"exact\": %s, \"oracle_calls\": %llu}%s\n",
        e.name.c_str(), e.universe,
        static_cast<unsigned long long>(e.seed), e.epsilon, e.delta,
        e.estimate, e.estimate_segment, e.estimate_scalar,
        e.exact ? "true" : "false", e.oracle_calls,
        i + 1 < estimates.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  bench::Row("wrote %s", json_path.c_str());
  return 0;
}

}  // namespace cqcount

int main(int argc, char** argv) {
  return cqcount::Run(argc > 1 ? argv[1] : "BENCH_storage.json");
}
