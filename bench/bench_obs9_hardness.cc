// EXP-O9 / EXP-O15: the lower-bound side of the dichotomies.
//
// Observation 9 (and 15): once treewidth (adaptive width) is unbounded,
// no FPTRAS exists under rETH. We exhibit the wall empirically: for
// k x k grid queries (tw = k), the cost of the Hom oracle's bag joins --
// and of exact counting -- grows like ||D||^{Theta(tw)}, while for fixed
// k the FPTRAS scales polynomially in the database.
#include "app/graph_gen.h"
#include "bench_util.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "query/query.h"
#include "util/timer.h"

namespace cqcount {
namespace {

Query GridCq(int k) {
  SimpleGraph grid = GridGraph(k, k);
  Query q;
  for (int v = 0; v < grid.num_vertices; ++v) {
    q.AddVariable("g" + std::to_string(v));
  }
  q.SetNumFree(1);
  for (const auto& [u, v] : grid.edges) q.AddAtom({"E", {u, v}, false});
  return q;
}

}  // namespace

int Run() {
  bench::Header("EXP-O9",
                "Observations 9/15: the unbounded-width wall (grid CQs)");
  bench::Row("%6s %6s %8s %10s %14s %14s", "k", "tw", "host n",
             "estimate", "fptras_ms", "exact_ms");
  for (int k : bench::Sweep<int>({2, 3})) {
    Query q = GridCq(k);
    for (int n : bench::Sweep<int>({12, 24, 48})) {
      Rng rng(k * 1000 + n);
      Database db = GraphToDatabase(ErdosRenyi(n, 0.35, rng));
      ApproxOptions opts;
      opts.epsilon = 0.3;
      opts.delta = 0.3;
      opts.seed = 77;
      opts.exact_decomposition_limit = 10;
      WallTimer timer;
      auto approx = ApproxCountAnswers(q, db, opts);
      const double fptras_ms = timer.Millis();
      double exact_ms = -1.0;
      if (n <= 24) {
        timer.Reset();
        auto exact = ExactCountAnswersExtension(q, db);
        exact_ms = exact.ok() ? timer.Millis() : -1.0;
      }
      bench::Row("%6d %6d %8d %10.1f %14.2f %14.2f", k, k, n,
                 approx.ok() ? approx->estimate : -1.0, fptras_ms, exact_ms);
    }
  }
  bench::Row("%s",
             "\npaper shape: for fixed k both scale polynomially in n, but "
             "the exponent grows with tw = k -- with unbounded tw no fixed "
             "polynomial works (no FPTRAS under rETH).");
  return 0;
}

}  // namespace cqcount

int main() { return cqcount::Run(); }
