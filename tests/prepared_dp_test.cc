// Property tests for the prepare/evaluate DP split (the colour-coding
// trial-reuse hot path): prepared decisions must be indistinguishable
// from the monolithic DP, and the full estimator pipeline must produce
// bit-identical estimates under fixed seeds regardless of which oracle
// evaluation path serves the trials.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "counting/colour_coding.h"
#include "counting/dlm_counter.h"
#include "decomposition/elimination_order.h"
#include "engine/engine.h"
#include "hom/hom_oracle.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

constexpr uint32_t kUniverse = 5;

// A random query with exactly `num_diseq` disequalities over distinct
// variable pairs (when the variable count allows).
Query RandomQueryWithDisequalities(Rng& rng, int num_diseq) {
  RandomQueryOptions qopts;
  qopts.min_vars = 2;
  qopts.max_vars = 4;
  qopts.negated_probability = 0.2;
  qopts.disequality_probability = 0.0;
  Query q = RandomQuery(rng, qopts);
  int added = 0;
  for (int attempt = 0; attempt < 20 && added < num_diseq; ++attempt) {
    const int u = static_cast<int>(rng.UniformInt(q.num_vars()));
    const int w = static_cast<int>(rng.UniformInt(q.num_vars()));
    if (u == w) continue;
    q.AddDisequality(std::min(u, w), std::max(u, w));
    ++added;
  }
  return q;
}

VarDomains RandomBaseDomains(const Query& q, Rng& rng) {
  VarDomains base;
  base.allowed.resize(q.num_vars());
  for (int v = 0; v < q.num_vars(); ++v) {
    if (rng.Bernoulli(0.5)) {
      base.allowed[v] = rng.RandomMask(kUniverse, 0.7);
    }
  }
  return base;
}

// The monolithic reference: base with `extra` intersected in.
VarDomains MergeOverlay(const Query& q, const VarDomains& base,
                        const std::vector<DomainRestriction>& extra) {
  VarDomains merged = base;
  if (merged.allowed.empty()) merged.allowed.resize(q.num_vars());
  for (const DomainRestriction& r : extra) {
    Bitset& domain = merged.allowed[static_cast<size_t>(r.var)];
    if (domain.empty()) {
      domain = *r.mask;
    } else {
      domain.IntersectWith(*r.mask);
    }
  }
  return merged;
}

// Core property over ~100 random (query, database, base, trials)
// instances with 0-3 disequalities: PreparedDp::Decide(extra) ==
// monolithic Decide(base merged with extra), for both the cached-rows
// path and the cache-cap fallback.
class PreparedDpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PreparedDpPropertyTest, PreparedMatchesMonolithic) {
  const int seed = GetParam();
  Rng rng(seed * 617 + 29);
  const int num_diseq = seed % 4;  // 0..3 disequalities.
  Query q = RandomQueryWithDisequalities(rng, num_diseq);
  Database db = RandomDatabaseFor(q, kUniverse, 0.45, rng);
  Hypergraph h = q.BuildHypergraph();

  // Overlay vars = disequality endpoints, as in the colour-coding loop.
  std::vector<int> overlay_vars;
  for (const Disequality& d : q.disequalities()) {
    overlay_vars.push_back(d.lhs);
    overlay_vars.push_back(d.rhs);
  }
  std::sort(overlay_vars.begin(), overlay_vars.end());
  overlay_vars.erase(std::unique(overlay_vars.begin(), overlay_vars.end()),
                     overlay_vars.end());

  DecompositionSolver reference(q, db,
                                DecompositionFromOrder(h, MinFillOrder(h)));
  DecompositionSolver prepared_solver(
      q, db, DecompositionFromOrder(h, MinFillOrder(h)));
  DecompositionSolver::Options no_cache;
  no_cache.max_cached_bag_rows = 0;
  DecompositionSolver fallback_solver(
      q, db, DecompositionFromOrder(h, MinFillOrder(h)), no_cache);

  for (int call = 0; call < 3; ++call) {
    const VarDomains base = RandomBaseDomains(q, rng);
    PreparedDp prepared = prepared_solver.Prepare(base, overlay_vars);
    PreparedDp fallback = fallback_solver.Prepare(base, overlay_vars);

    for (int trial = 0; trial < 6; ++trial) {
      std::vector<Bitset> masks;
      masks.reserve(overlay_vars.size());
      for (size_t k = 0; k < overlay_vars.size(); ++k) {
        masks.push_back(rng.RandomMask(kUniverse, 0.5));
      }
      std::vector<DomainRestriction> extra;
      for (size_t k = 0; k < overlay_vars.size(); ++k) {
        extra.push_back({overlay_vars[k], &masks[k]});
      }
      const VarDomains merged = MergeOverlay(q, base, extra);
      const bool expected = reference.Decide(&merged);
      EXPECT_EQ(prepared.Decide(extra), expected)
          << q.ToString() << " call " << call << " trial " << trial;
      EXPECT_EQ(fallback.Decide(extra), expected)
          << q.ToString() << " (fallback) call " << call << " trial "
          << trial;
    }
  }
  EXPECT_TRUE(prepared_solver.dp_stats().prepared_path);
  // With a zero row cap the cache is disabled unless every bag join is
  // genuinely empty (then zero rows ARE the whole cache).
  if (prepared_solver.dp_stats().cached_bag_rows > 0) {
    EXPECT_FALSE(fallback_solver.dp_stats().prepared_path);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreparedDpPropertyTest,
                         ::testing::Range(0, 100));

// End-to-end: the same DLM estimation run, same seeds, once with the
// decomposition oracle (prepared trial-reuse DP) and once with the
// backtracking oracle (generic copy-restore overlay around a full
// Decide — the pre-refactor per-trial evaluation). Identical IsEdgeFree
// verdicts imply bit-identical estimates.
class EstimatePathEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatePathEquivalenceTest, EstimatesBitIdenticalAcrossOraclePaths) {
  const int seed = GetParam();
  Rng rng(seed * 131 + 7);
  const int num_diseq = seed % 3;
  RandomQueryOptions qopts;
  qopts.min_vars = 2;
  qopts.max_vars = 4;
  qopts.negated_probability = 0.15;
  qopts.forced_num_free = 2;
  Query q = RandomQuery(rng, qopts);
  for (int attempt = 0, added = 0; attempt < 20 && added < num_diseq;
       ++attempt) {
    const int u = static_cast<int>(rng.UniformInt(q.num_vars()));
    const int w = static_cast<int>(rng.UniformInt(q.num_vars()));
    if (u == w) continue;
    q.AddDisequality(std::min(u, w), std::max(u, w));
    ++added;
  }
  if (q.num_free() > q.num_vars()) return;
  Database db = RandomDatabaseFor(q, kUniverse, 0.5, rng);
  Hypergraph h = q.BuildHypergraph();

  DecompositionHomOracle dp_hom(q, db,
                                DecompositionFromOrder(h, MinFillOrder(h)));
  BacktrackingHomOracle bt_hom(q, db);

  ColourCodingOptions cc;
  cc.per_call_failure = 1e-4;
  cc.seed = static_cast<uint64_t>(seed) * 0x9E37u + 11u;
  ColourCodingEdgeFreeOracle dp_oracle(q, &dp_hom, kUniverse, cc);
  ColourCodingEdgeFreeOracle bt_oracle(q, &bt_hom, kUniverse, cc);

  DlmOptions dlm;
  dlm.epsilon = 0.3;
  dlm.delta = 0.3;
  dlm.exact_enumeration_budget = 64;
  dlm.seed = static_cast<uint64_t>(seed) + 1;
  std::vector<uint32_t> part_sizes(q.num_free(), kUniverse);
  auto dp_result = DlmCountEdges(part_sizes, dp_oracle, dlm);
  auto bt_result = DlmCountEdges(part_sizes, bt_oracle, dlm);
  ASSERT_TRUE(dp_result.ok());
  ASSERT_TRUE(bt_result.ok());
  EXPECT_EQ(dp_result->estimate, bt_result->estimate) << q.ToString();
  EXPECT_EQ(dp_result->exact, bt_result->exact);
  EXPECT_EQ(dp_oracle.num_calls(), bt_oracle.num_calls());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatePathEquivalenceTest,
                         ::testing::Range(0, 30));

// Seed determinism through the engine: the same fptras-heavy batch must
// produce bitwise-identical estimates at 1, 2 and 4 worker threads (the
// prepared-DP state is per-execution, never shared across workers).
TEST(PreparedDpDeterminismTest, BatchEstimatesPinnedAcrossThreadCounts) {
  EngineOptions opts;
  opts.epsilon = 0.3;
  opts.delta = 0.3;
  CountingEngine engine(opts);
  Database db(6);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  for (Value u = 0; u < 6; ++u) {
    for (Value v = 0; v < 6; ++v) {
      if ((u * 7 + v * 3) % 4 != 0) continue;
      ASSERT_TRUE(db.AddFact("E", {u, v}).ok());
    }
  }
  db.Canonicalize();
  ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());

  std::vector<CountRequest> batch;
  for (const char* text : {
           "ans(x) :- E(x, y), E(x, z), y != z.",
           "ans(x, y) :- E(x, y), x != y.",
           "ans(x) :- E(x, y), E(y, z), x != z.",
           "ans(x, y) :- E(x, y).",
       }) {
    CountRequest request;
    request.query = text;
    request.database = "g";
    batch.push_back(request);
  }

  std::vector<double> reference;
  for (int threads : {1, 2, 4}) {
    auto results = engine.CountBatch(batch, threads);
    ASSERT_EQ(results.size(), batch.size());
    std::vector<double> estimates;
    for (const auto& r : results) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      estimates.push_back(r->estimate);
    }
    if (reference.empty()) {
      reference = estimates;
    } else {
      EXPECT_EQ(estimates, reference) << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace cqcount
