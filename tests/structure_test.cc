#include "relational/structure.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(StructureTest, DeclareAndAdd) {
  Structure s(10);
  EXPECT_TRUE(s.DeclareRelation("R", 2).ok());
  EXPECT_TRUE(s.AddFact("R", {1, 2}).ok());
  s.Canonicalize();
  EXPECT_TRUE(s.HasRelation("R"));
  EXPECT_EQ(s.Arity("R"), 2);
  EXPECT_EQ(s.relation("R").size(), 1u);
}

TEST(StructureTest, RedeclareSameArityIsIdempotent) {
  Structure s(5);
  EXPECT_TRUE(s.DeclareRelation("R", 2).ok());
  EXPECT_TRUE(s.DeclareRelation("R", 2).ok());
  EXPECT_FALSE(s.DeclareRelation("R", 3).ok());
}

TEST(StructureTest, AllowsZeroArityRejectsNegative) {
  Structure s(5);
  // Arity 0 backs nullary guard atoms R(): the relation holds at most the
  // empty tuple.
  EXPECT_TRUE(s.DeclareRelation("R", 0).ok());
  EXPECT_TRUE(s.AddFact("R", {}).ok());
  s.Canonicalize();
  EXPECT_EQ(s.relation("R").size(), 1u);
  EXPECT_FALSE(s.DeclareRelation("S", -1).ok());
}

TEST(StructureTest, AddFactValidation) {
  Structure s(3);
  ASSERT_TRUE(s.DeclareRelation("R", 2).ok());
  EXPECT_FALSE(s.AddFact("S", {0, 1}).ok());       // Undeclared.
  EXPECT_FALSE(s.AddFact("R", {0}).ok());          // Wrong arity.
  EXPECT_FALSE(s.AddFact("R", {0, 3}).ok());       // Outside universe.
  EXPECT_TRUE(s.AddFact("R", {0, 2}).ok());
  s.Canonicalize();
}

TEST(StructureTest, SizeFormula) {
  // ||A|| = |sig| + |U| + sum |R| * ar(R)  (Section 2.2).
  Structure s(7);
  ASSERT_TRUE(s.DeclareRelation("R", 2).ok());
  ASSERT_TRUE(s.DeclareRelation("S", 3).ok());
  ASSERT_TRUE(s.AddFact("R", {0, 1}).ok());
  ASSERT_TRUE(s.AddFact("R", {1, 2}).ok());
  ASSERT_TRUE(s.AddFact("S", {0, 1, 2}).ok());
  s.Canonicalize();
  EXPECT_EQ(s.Size(), 2u + 7u + 2u * 2u + 1u * 3u);
  EXPECT_EQ(s.NumFacts(), 3u);
}

TEST(StructureTest, RelationNamesSorted) {
  Structure s(2);
  ASSERT_TRUE(s.DeclareRelation("Zeta", 1).ok());
  ASSERT_TRUE(s.DeclareRelation("Alpha", 1).ok());
  EXPECT_EQ(s.RelationNames(),
            (std::vector<std::string>{"Alpha", "Zeta"}));
}

}  // namespace
}  // namespace cqcount
