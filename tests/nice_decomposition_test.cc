#include "decomposition/nice_decomposition.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "decomposition/elimination_order.h"
#include "decomposition/width_measures.h"
#include "util/random.h"

namespace cqcount {
namespace {

NiceTreeDecomposition MakeNice(const Hypergraph& h) {
  TreeDecomposition td = DecompositionFromOrder(h, MinFillOrder(h));
  return NiceTreeDecomposition::FromTreeDecomposition(h, td);
}

TEST(NiceDecompositionTest, PathConversionValidates) {
  Hypergraph h = GraphToHypergraph(PathGraph(5));
  NiceTreeDecomposition nice = MakeNice(h);
  EXPECT_TRUE(nice.Validate(h).ok());
  EXPECT_TRUE(nice.node(nice.root()).bag.empty());
}

TEST(NiceDecompositionTest, SingleVertexGraph) {
  Hypergraph h(1);
  h.AddEdge({0});
  NiceTreeDecomposition nice = MakeNice(h);
  EXPECT_TRUE(nice.Validate(h).ok());
}

TEST(NiceDecompositionTest, JoinNodesHaveEqualChildBags) {
  Hypergraph h = GraphToHypergraph(StarGraph(5));
  NiceTreeDecomposition nice = MakeNice(h);
  ASSERT_TRUE(nice.Validate(h).ok());
  bool saw_join = false;
  for (const auto& node : nice.nodes()) {
    if (node.kind == NiceNodeKind::kJoin) {
      saw_join = true;
      EXPECT_EQ(nice.node(node.children[0]).bag, node.bag);
      EXPECT_EQ(nice.node(node.children[1]).bag, node.bag);
    }
  }
  // A star's decomposition has several bags sharing the centre, so the
  // conversion should introduce joins.
  EXPECT_TRUE(saw_join);
}

TEST(NiceDecompositionTest, BagsAreSubsetsOfOriginal) {
  // Lemma 43: every nice bag is a subset of some original bag, so all
  // monotone widths are preserved.
  Hypergraph h = GraphToHypergraph(GridGraph(2, 3));
  TreeDecomposition td = DecompositionFromOrder(h, MinFillOrder(h));
  NiceTreeDecomposition nice =
      NiceTreeDecomposition::FromTreeDecomposition(h, td);
  ASSERT_TRUE(nice.Validate(h).ok());
  for (const auto& node : nice.nodes()) {
    bool contained = false;
    for (const auto& bag : td.bags) {
      if (std::includes(bag.begin(), bag.end(), node.bag.begin(),
                        node.bag.end())) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained);
  }
  EXPECT_LE(FhwOfDecomposition(h, nice.ToTreeDecomposition()),
            FhwOfDecomposition(h, td) + 1e-9);
}

TEST(NiceDecompositionTest, HeightIsPositive) {
  Hypergraph h = GraphToHypergraph(CycleGraph(5));
  NiceTreeDecomposition nice = MakeNice(h);
  EXPECT_GT(nice.Height(), 0);
  EXPECT_GE(nice.num_nodes(), h.num_vertices());
}

// Property: conversion of random decompositions validates, and every
// unary step changes exactly one vertex (checked by Validate).
class RandomNiceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomNiceTest, ConversionValidates) {
  Rng rng(GetParam() * 13 + 1);
  SimpleGraph g = ErdosRenyi(9, 0.3, rng);
  for (int v = 1; v < g.num_vertices; ++v) {
    if (rng.Bernoulli(0.5)) g.AddEdge(v - 1, v);
  }
  Hypergraph h = GraphToHypergraph(g);
  if (h.num_edges() == 0) h.AddEdge({0, 1});
  NiceTreeDecomposition nice = MakeNice(h);
  EXPECT_TRUE(nice.Validate(h).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNiceTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace cqcount
