// Property tests for the DLM estimator's anytime partial answers: for a
// fixed seed, interrupting after k completed sampling runs must yield an
// interval that contains the uninterrupted same-seed estimate — for
// every k, across random query/database instances. Cut points are made
// exact with the "dlm.run_boundary" failpoint (cancellation lands at a
// deterministic run boundary), so this property is replayable, not
// timing-dependent.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "counting/dlm_counter.h"
#include "counting/partite_hypergraph.h"
#include "query/parser.h"
#include "test_util.h"
#include "util/cancel.h"
#include "util/failpoint.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

DlmOptions BaseOptions(uint64_t seed) {
  DlmOptions opts;
  opts.exact_enumeration_budget = 4;  // Force the sampling phase.
  opts.max_frontier = 32;
  opts.epsilon = 0.2;
  opts.delta = 0.05;  // Several outer-median runs: room for cut points.
  opts.seed = seed;
  return opts;
}

class AnytimePartialTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_P(AnytimePartialTest, PartialIntervalContainsFullEstimate) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 7);
  RandomQueryOptions qopts;
  qopts.min_vars = 2;
  qopts.max_vars = 4;
  qopts.forced_num_free = 2;
  Query q = RandomQuery(rng, qopts);
  Database db = RandomDatabaseFor(q, 8, 0.5, rng);
  BruteForceEdgeFreeOracle oracle(q, db);

  const DlmOptions base = BaseOptions(static_cast<uint64_t>(GetParam()));
  auto full = DlmCountEdges({8, 8}, oracle, base);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  // Instances the exact phase resolves have no run boundaries to cut at.
  if (full->exact) return;
  const int total_runs = full->total_runs;
  ASSERT_GT(total_runs, 1) << q.ToString();
  ASSERT_EQ(full->completed_runs, total_runs);

  // Cancellation before the first run boundary: nothing completed, so
  // there is no anytime answer — only the typed cause.
  {
    CancelToken token;
    token.Cancel();
    ResourceGovernor governor(token, 0);
    DlmOptions opts = base;
    opts.governor = &governor;
    BruteForceEdgeFreeOracle fresh(q, db);
    auto result = DlmCountEdges({8, 8}, fresh, opts);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }

  // Cut after runs 1, 2, the middle, the second-to-last, and past the
  // end (which must reproduce the full answer bit for bit).
  std::vector<int> cuts = {0, 1, (total_runs - 1) / 2, total_runs - 2,
                           total_runs};
  for (int cut : cuts) {
    if (cut < 0) continue;
    CancelToken token;
    ResourceGovernor governor(token, 0);
    DlmOptions opts = base;
    opts.governor = &governor;
    failpoint::Config config;
    config.skip = static_cast<uint64_t>(cut);
    config.max_fires = 1;
    config.on_fire = [token] { token.Cancel(); };
    failpoint::ScopedFailpoint fp("dlm.run_boundary", config);
    BruteForceEdgeFreeOracle fresh(q, db);
    auto result = DlmCountEdges({8, 8}, fresh, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << " cut=" << cut;
    if (cut >= total_runs - 1) {
      // Fired after the last run (or never): the full fixed-seed answer.
      EXPECT_FALSE(result->partial) << "cut=" << cut;
      EXPECT_DOUBLE_EQ(result->estimate, full->estimate) << "cut=" << cut;
      continue;
    }
    // Runs are counter-seeded, so the first cut+1 runs are exactly the
    // full execution's first cut+1 runs; everything after is discarded.
    EXPECT_TRUE(result->partial) << "cut=" << cut;
    EXPECT_FALSE(result->converged) << "cut=" << cut;
    EXPECT_EQ(result->completed_runs, cut + 1) << "cut=" << cut;
    EXPECT_EQ(result->total_runs, total_runs) << "cut=" << cut;
    // The anytime contract, twice over: the interval brackets its own
    // estimate AND the uninterrupted same-seed estimate.
    EXPECT_TRUE(std::isfinite(result->lower_bound)) << "cut=" << cut;
    EXPECT_TRUE(std::isfinite(result->upper_bound)) << "cut=" << cut;
    EXPECT_LE(result->lower_bound, result->estimate) << "cut=" << cut;
    EXPECT_GE(result->upper_bound, result->estimate) << "cut=" << cut;
    EXPECT_LE(result->lower_bound, full->estimate)
        << "cut=" << cut << " query=" << q.ToString();
    EXPECT_GE(result->upper_bound, full->estimate)
        << "cut=" << cut << " query=" << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnytimePartialTest, ::testing::Range(0, 50));

// The same property with the CLT early stop armed: cancellation landing
// BEFORE the stop rule fires must still produce the hard order-statistic
// interval, and that interval must contain the uninterrupted adaptive
// estimate. This is sound because MedianOrderBounds over k completed
// runs bounds the median of EVERY prefix extending them — the adaptive
// answer (a prefix median at the stop point) as much as the full
// schedule's median.
TEST_P(AnytimePartialTest, PartialIntervalContainsAdaptiveEstimate) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 7);
  RandomQueryOptions qopts;
  qopts.min_vars = 2;
  qopts.max_vars = 4;
  qopts.forced_num_free = 2;
  Query q = RandomQuery(rng, qopts);
  Database db = RandomDatabaseFor(q, 8, 0.5, rng);

  DlmOptions base = BaseOptions(static_cast<uint64_t>(GetParam()));
  base.early_stop = true;
  BruteForceEdgeFreeOracle oracle(q, db);
  auto adaptive = DlmCountEdges({8, 8}, oracle, base);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status().ToString();
  if (adaptive->exact) return;  // No run boundaries to cut at.
  const int stop_runs = adaptive->completed_runs;
  ASSERT_GE(stop_runs, 1);

  const std::vector<int> cuts = {0, 1, stop_runs - 2, stop_runs - 1,
                                 stop_runs};
  for (int cut : cuts) {
    if (cut < 0) continue;
    CancelToken token;
    ResourceGovernor governor(token, 0);
    DlmOptions opts = base;
    opts.governor = &governor;
    failpoint::Config config;
    config.skip = static_cast<uint64_t>(cut);
    config.max_fires = 1;
    config.on_fire = [token] { token.Cancel(); };
    failpoint::ScopedFailpoint fp("dlm.run_boundary", config);
    BruteForceEdgeFreeOracle fresh(q, db);
    auto result = DlmCountEdges({8, 8}, fresh, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << " cut=" << cut;
    if (cut >= stop_runs) {
      // The adaptive run stopped before the failpoint could fire: the
      // uninterrupted adaptive answer, bit for bit, stop reason intact.
      EXPECT_FALSE(result->partial) << "cut=" << cut;
      EXPECT_DOUBLE_EQ(result->estimate, adaptive->estimate)
          << "cut=" << cut;
      EXPECT_EQ(result->stop_reason, adaptive->stop_reason) << "cut=" << cut;
      continue;
    }
    // Cancellation at a run boundary the adaptive run actually reaches:
    // the governor check precedes the stop rule, so the typed first
    // cause is the cancellation even at the boundary where the stop
    // rule would have fired.
    EXPECT_TRUE(result->partial) << "cut=" << cut;
    EXPECT_EQ(result->stop_reason, StopReason::kCancelled)
        << "cut=" << cut << ": " << StopReasonName(result->stop_reason);
    EXPECT_EQ(result->completed_runs, cut + 1) << "cut=" << cut;
    EXPECT_TRUE(std::isfinite(result->lower_bound)) << "cut=" << cut;
    EXPECT_TRUE(std::isfinite(result->upper_bound)) << "cut=" << cut;
    EXPECT_LE(result->lower_bound, result->estimate) << "cut=" << cut;
    EXPECT_GE(result->upper_bound, result->estimate) << "cut=" << cut;
    EXPECT_LE(result->lower_bound, adaptive->estimate)
        << "cut=" << cut << " query=" << q.ToString();
    EXPECT_GE(result->upper_bound, adaptive->estimate)
        << "cut=" << cut << " query=" << q.ToString();
  }
}

}  // namespace
}  // namespace cqcount
