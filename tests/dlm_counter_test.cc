#include "counting/dlm_counter.h"

#include <gtest/gtest.h>

#include <cmath>

#include "app/graph_gen.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(DlmCounterTest, ZeroEdges) {
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db(4);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());  // Empty relation.
  BruteForceEdgeFreeOracle oracle(q, db);
  auto result = DlmCountEdges({4, 4}, oracle, {});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 0.0);
  EXPECT_TRUE(result->exact);
}

TEST(DlmCounterTest, ExactPhaseOnSmallAnswerSets) {
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db = GraphToDatabase(CycleGraph(5));
  BruteForceEdgeFreeOracle oracle(q, db);
  DlmOptions opts;
  auto result = DlmCountEdges({5, 5}, oracle, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
  EXPECT_DOUBLE_EQ(result->estimate, 10.0);  // 2 directions x 5 edges.
}

TEST(DlmCounterTest, SinglePartCounting) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(64);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  for (Value v = 0; v < 64; v += 2) ASSERT_TRUE(db.AddFact("R", {v}).ok());
  db.Canonicalize();
  BruteForceEdgeFreeOracle oracle(q, db);
  auto result = DlmCountEdges({64}, oracle, {});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 32.0);
}

TEST(DlmCounterTest, EstimationPhaseWithinEpsilon) {
  // Force the estimation path with a tiny exact budget; the estimate must
  // still land within epsilon (seeded determinism).
  Query q = Parse("ans(x, y) :- E(x, y).");
  Rng rng(42);
  SimpleGraph g = ErdosRenyi(40, 0.3, rng);
  Database db = GraphToDatabase(g);
  BruteForceEdgeFreeOracle truth(q, db);
  const double exact = static_cast<double>(truth.answers().size());
  ASSERT_GT(exact, 100.0);

  DlmOptions opts;
  opts.exact_enumeration_budget = 8;
  opts.max_frontier = 64;
  opts.epsilon = 0.1;
  opts.delta = 0.2;
  opts.seed = 7;
  BruteForceEdgeFreeOracle oracle(q, db);
  auto result = DlmCountEdges({40, 40}, oracle, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
  EXPECT_NEAR(result->estimate, exact, opts.epsilon * exact * 1.5);
  EXPECT_GT(result->oracle_calls, 0u);
}

TEST(DlmCounterTest, InvalidParametersRejected) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(2);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  BruteForceEdgeFreeOracle oracle(q, db);
  DlmOptions opts;
  opts.epsilon = 0.0;
  EXPECT_FALSE(DlmCountEdges({2}, oracle, opts).ok());
  opts.epsilon = 0.1;
  opts.delta = 1.5;
  EXPECT_FALSE(DlmCountEdges({2}, oracle, opts).ok());
  EXPECT_FALSE(DlmCountEdges({}, oracle, {}).ok());
}

TEST(DlmCounterTest, ZeroSizedPartMeansZeroEdges) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(2);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  ASSERT_TRUE(db.AddFact("R", {0}).ok());
  db.Canonicalize();
  BruteForceEdgeFreeOracle oracle(q, db);
  auto result = DlmCountEdges({0}, oracle, {});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 0.0);
}

// Property sweep: estimation stays within 2*epsilon of the truth across
// seeds and query shapes (using the brute-force oracle for ground truth).
class DlmAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(DlmAccuracyTest, EstimateWithinTolerance) {
  Rng rng(GetParam() * 53 + 29);
  RandomQueryOptions qopts;
  qopts.min_vars = 2;
  qopts.max_vars = 4;
  qopts.forced_num_free = 2;
  Query q = RandomQuery(rng, qopts);
  Database db = RandomDatabaseFor(q, 8, 0.5, rng);
  BruteForceEdgeFreeOracle truth(q, db);
  const double exact = static_cast<double>(truth.answers().size());

  DlmOptions opts;
  opts.exact_enumeration_budget = 4;  // Force estimation when nontrivial.
  opts.max_frontier = 32;
  opts.epsilon = 0.15;
  opts.delta = 0.2;
  opts.seed = GetParam();
  BruteForceEdgeFreeOracle oracle(q, db);
  auto result = DlmCountEdges({8, 8}, oracle, opts);
  ASSERT_TRUE(result.ok());
  if (exact == 0.0) {
    EXPECT_DOUBLE_EQ(result->estimate, 0.0);
  } else {
    EXPECT_NEAR(result->estimate, exact, 2.0 * opts.epsilon * exact + 1e-9)
        << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DlmAccuracyTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace cqcount
