#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"

namespace cqcount {
namespace obs {
namespace {

// The registry is process-global (construction is private), so every test
// uses Global() under a test-unique metric name and measures deltas
// rather than absolute values.

TEST(MetricsTest, CounterAccumulates) {
  Counter& c = MetricRegistry::Global().GetCounter("test.counter", "a counter");
  const uint64_t base = c.Value();
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), base + 42);
}

TEST(MetricsTest, HandlesAreStableAcrossLookups) {
  Counter& a = MetricRegistry::Global().GetCounter("test.same", "first");
  Counter& b = MetricRegistry::Global().GetCounter(
      "test.same", "second registration ignored");
  EXPECT_EQ(&a, &b);
  const uint64_t base = a.Value();
  a.Add(7);
  EXPECT_EQ(b.Value(), base + 7);
}

TEST(MetricsTest, GaugeGoesUpAndDown) {
  Gauge& g = MetricRegistry::Global().GetGauge("test.gauge", "a gauge");
  g.Set(0);
  g.Add(5);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 2);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -8);
}

TEST(MetricsTest, HistogramLog2Buckets) {
  Histogram& h = MetricRegistry::Global().GetHistogram("test.hist",
                                                       "a histogram");
  h.Reset();
  h.Observe(0);    // Bucket 0 (le 0).
  h.Observe(1);    // Bucket 1 (le 1).
  h.Observe(2);    // Bucket 2 (le 3).
  h.Observe(3);    // Bucket 2.
  h.Observe(100);  // Bucket 7 (le 127).
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 106u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[7], 1u);
  EXPECT_EQ(Histogram::BucketBound(0), 0u);
  EXPECT_EQ(Histogram::BucketBound(2), 3u);
  EXPECT_EQ(Histogram::BucketBound(7), 127u);
}

// TSan target: sharded counters hammered from many threads concurrently
// with snapshot reads; totals must not lose increments.
TEST(MetricsTest, ConcurrentAddsFromManyThreadsSumExactly) {
  Counter& c =
      MetricRegistry::Global().GetCounter("test.concurrent", "hammered");
  Histogram& h = MetricRegistry::Global().GetHistogram("test.concurrent_hist",
                                                       "hammered");
  c.Reset();
  h.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Observe(static_cast<uint64_t>(i));
      }
    });
  }
  go.store(true);
  // Concurrent snapshots while writers are live: must be data-race free
  // (values are a lower bound until writers join).
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
    (void)h.Snap();
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Snap().count, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, ConcurrentRegistrationIsSafe) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> handles(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&handles, t] {
      handles[t] = &MetricRegistry::Global().GetCounter(
          "test.raced", "raced registration");
      handles[t]->Increment();
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(handles[0]->Value(), static_cast<uint64_t>(kThreads));
}

TEST(MetricsTest, SnapshotAndJson) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("test_json.b_counter", "a test counter").Add(3);
  registry.GetGauge("test_json.a_gauge", "a test gauge").Set(-2);
  registry.GetHistogram("test_json.c_hist", "a test histogram").Observe(5);
  const std::string json = registry.ToJson();
  // Schema: {"metrics":[{name,kind,description,...}]}, sorted by name.
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  const size_t a = json.find("test_json.a_gauge");
  const size_t b = json.find("test_json.b_counter");
  const size_t c = json.find("test_json.c_hist");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":-2"), std::string::npos);
  // Histogram export: only non-empty buckets, with inclusive "le" bounds.
  EXPECT_NE(json.find("\"le\":7,\"count\":1"), std::string::npos);
}

TEST(MetricsTest, ResetZeroesValuesKeepsHandles) {
  Counter& c = MetricRegistry::Global().GetCounter("test.reset", "reset me");
  c.Add(9);
  EXPECT_GE(c.Value(), 9u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  EXPECT_EQ(c.Value(), 1u);
}

TEST(MetricsTest, GlobalRegistryCoversEverySubsystem) {
  // The eager per-TU initializers register every metric family at load in
  // any binary that links the pipeline — regardless of what it executed.
  // (The engine reference below is what links the pipeline here: without
  // it the static-library linker would drop the subsystem TUs, and their
  // initializers with them.)
  CountingEngine engine;
  (void)engine;
  const std::string json = MetricRegistry::Global().ToJson();
  for (const char* name :
       {"plan_cache.hits", "plan_cache.misses", "plan_cache.evictions",
        "engine.counts", "executor.tasks_submitted", "executor.queue_depth",
        "dlm.estimates", "dlm.oracle_calls", "dlm.abandoned_waves",
        "dp.prepared_decides", "cc.nondet.hom_queries",
        "acjr.membership_tests", "sampler.samples",
        "scheduler.budget_splits", "scheduler.early_stops",
        "dlm.early_stops"}) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << "missing metric " << name;
  }
  // hom_queries is explicitly documented as a nondeterministic work
  // counter in its metric description.
  EXPECT_NE(json.find("Nondeterministic work counter"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace cqcount
