#include "query/query.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

Query FriendsQuery() {
  // phi(x) = exists y, z : F(x,y) and F(x,z) and y != z   (intro, eq. (1)).
  Query q;
  q.AddVariable("x");
  q.AddVariable("y");
  q.AddVariable("z");
  q.SetNumFree(1);
  q.AddAtom({"F", {0, 1}, false});
  q.AddAtom({"F", {0, 2}, false});
  q.AddDisequality(1, 2);
  return q;
}

TEST(QueryTest, BasicAccessors) {
  Query q = FriendsQuery();
  EXPECT_EQ(q.num_vars(), 3);
  EXPECT_EQ(q.num_free(), 1);
  EXPECT_EQ(q.num_existential(), 2);
  EXPECT_EQ(q.atoms().size(), 2u);
  EXPECT_EQ(q.disequalities().size(), 1u);
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryTest, KindClassification) {
  Query q = FriendsQuery();
  EXPECT_EQ(q.Kind(), QueryKind::kDcq);

  Query cq;
  cq.AddVariable("x");
  cq.SetNumFree(1);
  cq.AddAtom({"R", {0}, false});
  EXPECT_EQ(cq.Kind(), QueryKind::kCq);

  Query ecq = FriendsQuery();
  ecq.AddAtom({"Blocked", {0, 1}, true});
  EXPECT_EQ(ecq.Kind(), QueryKind::kEcq);
  EXPECT_EQ(ecq.NumNegatedAtoms(), 1);
}

TEST(QueryTest, PhiSizeCountsVarsAndArities) {
  // ||phi|| = |vars| + sum of atom arities (disequalities count 2).
  Query q = FriendsQuery();
  EXPECT_EQ(q.PhiSize(), 3u + 2u + 2u + 2u);
}

TEST(QueryTest, HypergraphExcludesDisequalities) {
  // Definition 3: disequalities contribute no hyperedges.
  Query q = FriendsQuery();
  Hypergraph h = q.BuildHypergraph();
  EXPECT_EQ(h.num_vertices(), 3);
  EXPECT_EQ(h.num_edges(), 2);  // {x,y} and {x,z}; nothing for y != z.
  for (const auto& e : h.edges()) {
    EXPECT_NE(e, (std::vector<Vertex>{1, 2}));
  }
}

TEST(QueryTest, HypergraphIncludesNegatedAtoms) {
  Query q = FriendsQuery();
  q.AddAtom({"B", {1, 2}, true});
  Hypergraph h = q.BuildHypergraph();
  EXPECT_EQ(h.num_edges(), 3);
}

TEST(QueryTest, DisequalitiesNormalisedAndDeduplicated) {
  Query q;
  q.AddVariable("a");
  q.AddVariable("b");
  q.SetNumFree(2);
  q.AddAtom({"R", {0, 1}, false});
  q.AddDisequality(1, 0);
  q.AddDisequality(0, 1);
  q.AddDisequality(0, 0);  // Ignored.
  ASSERT_EQ(q.disequalities().size(), 1u);
  EXPECT_EQ(q.disequalities()[0].lhs, 0);
  EXPECT_EQ(q.disequalities()[0].rhs, 1);
}

TEST(QueryTest, ValidateRejectsUnusedVariable) {
  Query q;
  q.AddVariable("x");
  q.AddVariable("y");
  q.SetNumFree(2);
  q.AddAtom({"R", {0}, false});
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryTest, VariableOnlyInDisequalityIsAllowed) {
  // ECQs may constrain a variable only through a disequality.
  Query q;
  q.AddVariable("x");
  q.AddVariable("y");
  q.SetNumFree(2);
  q.AddAtom({"R", {0}, false});
  q.AddDisequality(0, 1);
  EXPECT_TRUE(q.Validate().ok());
}

TEST(QueryTest, ValidateRejectsInconsistentArity) {
  Query q;
  q.AddVariable("x");
  q.SetNumFree(1);
  q.AddAtom({"R", {0}, false});
  q.AddAtom({"R", {0, 0}, false});
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryTest, CheckAgainstDatabase) {
  Query q = FriendsQuery();
  Database db(4);
  ASSERT_TRUE(db.DeclareRelation("F", 2).ok());
  EXPECT_TRUE(q.CheckAgainstDatabase(db).ok());
  Database wrong(4);
  ASSERT_TRUE(wrong.DeclareRelation("F", 3).ok());
  EXPECT_FALSE(q.CheckAgainstDatabase(wrong).ok());
  Database missing(4);
  EXPECT_FALSE(q.CheckAgainstDatabase(missing).ok());
}

TEST(QueryTest, ToStringRendersParserSyntax) {
  Query q = FriendsQuery();
  EXPECT_EQ(q.ToString(), "ans(x) :- F(x, y), F(x, z), y != z.");
}

}  // namespace
}  // namespace cqcount
