// Property: telemetry is invisible to the counting math. A fixed-seed
// engine count returns bit-identical estimates and oracle-call tallies
// whether span tracing is off or on, at 1, 2 and 4 intra-query lanes.
//
// This is the contract stated in obs/trace.h: spans read clocks, metrics
// do bulk adds at deterministic boundaries, and neither ever touches RNG
// state or merge order. (cc.nondet.hom_queries is the one documented
// exception — a scheduling-dependent WORK counter, marked by its
// `.nondet.` name segment — and is deliberately absent here.)
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqcount {
namespace {

Database DenseDatabase() {
  Database db(8);
  EXPECT_TRUE(db.DeclareRelation("E", 2).ok());
  for (Value u = 0; u < 8; ++u) {
    for (Value v = 0; v < 8; ++v) {
      if ((u * 5 + v * 11 + 3) % 3 != 0) continue;
      EXPECT_TRUE(db.AddFact("E", {u, v}).ok());
    }
  }
  db.Canonicalize();
  return db;
}

struct Observed {
  double estimate = 0.0;
  bool exact = false;
  bool converged = false;
  uint64_t oracle_calls = 0;

  bool operator==(const Observed& o) const {
    // Bitwise estimate comparison (operator== on double is exactly that;
    // the suite never produces NaN estimates).
    return estimate == o.estimate && exact == o.exact &&
           converged == o.converged && oracle_calls == o.oracle_calls;
  }
};

TEST(TelemetryDeterminismTest, TracingNeverPerturbsEstimates) {
  const Database db = DenseDatabase();
  const std::vector<std::string> queries = {
      "ans(x, y) :- E(x, y), E(y, z), x != z.",
      "ans(x, y) :- E(x, y), E(x, z), y != z.",
      "ans(x, z) :- E(x, y), E(y, z).",
      "ans(x, y) :- E(x, y), !E(y, x).",
  };

  std::optional<std::vector<Observed>> reference;
  for (int lanes : {1, 2, 4}) {
    for (bool traced : {false, true}) {
      if (traced) {
        obs::TraceSink::Global().Enable();
      } else {
        obs::TraceSink::Global().Disable();
      }
      EngineOptions opts;
      opts.epsilon = 0.3;
      opts.delta = 0.3;
      opts.seed = 20220607;
      opts.num_threads = 4;
      opts.intra_query_threads = lanes;
      opts.intra_query_min_cost = 0.0;  // Grant lanes regardless of cost.
      CountingEngine engine(opts);
      ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());

      std::vector<Observed> observed;
      for (const std::string& text : queries) {
        auto result = engine.Count(text, "g");
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        observed.push_back({result->estimate, result->exact,
                            result->converged, result->oracle_calls});
      }
      if (traced) {
        // The run actually produced spans (the toggle was not a no-op).
        EXPECT_GT(obs::TraceSink::Global().event_count(), 0u);
        obs::TraceSink::Global().Disable();
        obs::TraceSink::Global().Clear();
      }

      if (!reference.has_value()) {
        reference = observed;
        continue;
      }
      for (size_t i = 0; i < queries.size(); ++i) {
        EXPECT_TRUE(observed[i] == (*reference)[i])
            << queries[i] << " lanes=" << lanes << " traced=" << traced
            << ": estimate " << observed[i].estimate << " vs "
            << (*reference)[i].estimate << ", oracle_calls "
            << observed[i].oracle_calls << " vs "
            << (*reference)[i].oracle_calls;
      }
    }
  }
}

// Metric snapshots taken mid-run must also be invisible: a second engine
// pass with a concurrent snapshot storm gives the same answers.
TEST(TelemetryDeterminismTest, MetricSnapshotsAreInvisible) {
  const Database db = DenseDatabase();
  const std::string query = "ans(x, y) :- E(x, y), E(y, z), x != z.";

  auto run = [&](bool storm) {
    EngineOptions opts;
    opts.epsilon = 0.3;
    opts.delta = 0.3;
    opts.seed = 777;
    opts.intra_query_threads = 2;
    opts.intra_query_min_cost = 0.0;
    CountingEngine engine(opts);
    EXPECT_TRUE(engine.RegisterDatabase("g", db).ok());
    if (storm) {
      for (int i = 0; i < 8; ++i) (void)obs::MetricRegistry::Global().ToJson();
    }
    auto result = engine.Count(query, "g");
    EXPECT_TRUE(result.ok());
    return result.ok() ? std::make_pair(result->estimate, result->oracle_calls)
                       : std::make_pair(-1.0, uint64_t{0});
  };

  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace cqcount
