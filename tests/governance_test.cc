// Engine-level resource-governance tests: request validation guard rails,
// deadline/cancellation anytime partials, typed governance statuses,
// batch cancellation granularity, and the governance-off determinism
// contract. Interruption points are made exact with the failpoint
// harness ("dlm.run_boundary", "engine.count") and ManualClock.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "app/graph_gen.h"
#include "app/workload.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "util/cancel.h"
#include "util/failpoint.h"

namespace cqcount {
namespace {

// Large enough that the planner rejects brute force. NOTE: the path
// query's answer set is sparse enough that the DLM frontier expansion
// resolves it into singletons (an exact resolution, zero sampling runs);
// good for validation / typed-status tests, NOT for run-boundary tests.
Database Social(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  return SocialNetworkDb(n, 5.0, 0.5, rng);
}

const char kApproxQuery[] = "ans(x, y) :- F(x, y), F(y, z), x != z.";

// The CI telemetry-smoke shape at test scale: a 4-cycle over a dense
// random graph. The 24^4 answer space cannot collapse into the DLM
// exact-enumeration or frontier phases, so the estimator always reaches
// its median-of-runs sampling loop and the "dlm.run_boundary" failpoint
// has boundaries to fire at.
Database CycleDb() {
  Rng rng(7);
  return GraphToDatabase(RandomGraphWithEdges(24, 100, rng), "F");
}

const char kSamplingQuery[] =
    "ans(a, b, c, d) :- F(a, b), F(b, c), F(c, d), F(d, a).";

// (epsilon, delta) used with kSamplingQuery: loose enough that a full
// fixed-seed count stays fast, tight enough for a many-run median.
CountRequest SamplingRequest() {
  CountRequest request;
  request.query = kSamplingQuery;
  request.database = "g";
  request.seed = 0xFEEDULL;
  request.epsilon = 0.45;
  request.delta = 0.1;
  return request;
}

class GovernanceTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(GovernanceTest, ValidationRejectsNonFiniteAccuracy) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(20, 1)).ok());
  CountRequest request;
  request.query = "ans(x) :- F(x, y).";
  request.database = "g";
  for (double bad : {std::nan(""), -0.1, 1.0, 1.5,
                     std::numeric_limits<double>::infinity()}) {
    request.epsilon = bad;
    request.delta = 0.0;
    auto by_epsilon = engine.Count(request);
    ASSERT_FALSE(by_epsilon.ok()) << "epsilon=" << bad;
    EXPECT_EQ(by_epsilon.status().code(), StatusCode::kInvalidArgument);
    request.epsilon = 0.0;
    request.delta = bad;
    auto by_delta = engine.Count(request);
    ASSERT_FALSE(by_delta.ok()) << "delta=" << bad;
    EXPECT_EQ(by_delta.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(GovernanceTest, ValidationRejectsEmptyDatabaseName) {
  CountingEngine engine;
  CountRequest request;
  request.query = "ans(x) :- F(x, y).";
  request.database = "";
  auto result = engine.Count(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GovernanceTest, ValidationRejectsOversizedQueryText) {
  EngineOptions opts;
  opts.max_query_bytes = 32;
  CountingEngine engine(opts);
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(20, 1)).ok());
  CountRequest request;
  request.query = "ans(x) :- F(x, y), F(x, z), F(x, w), F(x, u), y != z.";
  request.database = "g";
  auto result = engine.Count(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("max_query_bytes"),
            std::string::npos);
}

TEST_F(GovernanceTest, ValidationRejectsTooManyVariables) {
  EngineOptions opts;
  opts.max_query_vars = 2;
  CountingEngine engine(opts);
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(20, 1)).ok());
  auto result = engine.Count("ans(x) :- F(x, y), F(y, z).", "g");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("max_query_vars"),
            std::string::npos);
}

TEST_F(GovernanceTest, PreCancelledTokenReturnsTypedCancelled) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(50, 2)).ok());
  CountRequest request;
  request.query = kApproxQuery;
  request.database = "g";
  request.cancel_token.Cancel();
  auto result = engine.Count(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(GovernanceTest, OracleCallCapReturnsResourceExhausted) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(300, 4)).ok());
  CountRequest request;
  request.query = kApproxQuery;
  request.database = "g";
  request.seed = 0xFEEDULL;
  request.max_oracle_calls = 1;  // Consumed before any sampling run.
  auto result = engine.Count(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GovernanceTest, CancelAtRunBoundaryYieldsPartialWithBounds) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", CycleDb()).ok());
  CountRequest request = SamplingRequest();

  obs::Counter& partials = obs::MetricRegistry::Global().GetCounter(
      "engine.partial_results", "");
  obs::Counter& cancels =
      obs::MetricRegistry::Global().GetCounter("engine.cancelled", "");
  const uint64_t partials_before = partials.Value();
  const uint64_t cancels_before = cancels.Value();

  failpoint::Config config;
  config.skip = 1;  // Let one full sampling run complete first.
  config.max_fires = 1;
  config.on_fire = [token = request.cancel_token] { token.Cancel(); };
  failpoint::ScopedFailpoint fp("dlm.run_boundary", config);

  auto result = engine.Count(request);
  ASSERT_EQ(failpoint::FireCount("dlm.run_boundary"), 1u)
      << "query never reached the DLM sampling phase";
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  EXPECT_FALSE(result->exact);
  EXPECT_FALSE(result->converged);
  EXPECT_EQ(result->partial_reason, "cancelled");
  EXPECT_TRUE(std::isfinite(result->lower_bound));
  EXPECT_TRUE(std::isfinite(result->upper_bound));
  EXPECT_LE(result->lower_bound, result->estimate);
  EXPECT_GE(result->upper_bound, result->estimate);
  EXPECT_GT(result->estimate, 0.0);
  ASSERT_EQ(result->components.size(), 1u);
  EXPECT_TRUE(result->components[0].partial);
  EXPECT_GE(result->components[0].completed_runs, 1);
  EXPECT_LT(result->components[0].completed_runs,
            result->components[0].total_runs);
  EXPECT_EQ(partials.Value(), partials_before + 1);
  EXPECT_EQ(cancels.Value(), cancels_before + 1);
}

TEST_F(GovernanceTest, ManualClockDeadlineYieldsPartialWithBounds) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", CycleDb()).ok());
  ManualClock clock(0);
  CountRequest request = SamplingRequest();
  request.time_budget_ms = 1000;
  request.clock = &clock;

  // The budget "expires" the instant the first sampling run finishes:
  // checkpoints are deterministic, so the interruption point is exact.
  failpoint::Config config;
  config.skip = 0;
  config.max_fires = 1;
  config.on_fire = [&clock] { clock.Advance(10'000); };
  failpoint::ScopedFailpoint fp("dlm.run_boundary", config);

  auto result = engine.Count(request);
  ASSERT_EQ(failpoint::FireCount("dlm.run_boundary"), 1u);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->partial_reason, "deadline_exceeded");
  EXPECT_TRUE(std::isfinite(result->lower_bound));
  EXPECT_TRUE(std::isfinite(result->upper_bound));
  EXPECT_LE(result->lower_bound, result->estimate);
  EXPECT_GE(result->upper_bound, result->estimate);
  ASSERT_EQ(result->components.size(), 1u);
  EXPECT_GE(result->components[0].completed_runs, 1);
}

TEST_F(GovernanceTest, ExpiredDeadlineBeforeAnyWorkIsTyped) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(50, 2)).ok());
  // Auto-stepping clock: the governor's construction reads 0 (deadline =
  // 10) and every checkpoint read afterwards sees >= 1000 — the very
  // first checkpoint observes an expired budget, before any component ran.
  ManualClock clock(0, 1000);
  CountRequest request;
  request.query = kApproxQuery;
  request.database = "g";
  request.time_budget_ms = 10;
  request.clock = &clock;
  auto result = engine.Count(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(GovernanceTest, BatchCancellationDoesNotPoisonSiblings) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(50, 2)).ok());
  // All three items share one token; the failpoint cancels it as item 1
  // enters Count(). Sequential execution makes the hit index exact.
  CancelToken shared;
  std::vector<CountRequest> requests(3);
  for (CountRequest& request : requests) {
    request.query = "ans(x) :- F(x, y).";
    request.database = "g";
    request.cancel_token = shared;
  }
  failpoint::Config config;
  config.skip = 1;
  config.max_fires = 1;
  config.on_fire = [shared] { shared.Cancel(); };
  failpoint::ScopedFailpoint fp("engine.count", config);

  auto results = engine.CountBatch(requests, /*num_threads=*/1);
  ASSERT_EQ(results.size(), 3u);
  // Item 0 ran before the cancellation: a full, valid result.
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_FALSE(results[0]->partial);
  // Item 1 was cancelled mid-request: its own typed status.
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kCancelled);
  // Item 2 never started: skipped with a typed status, not poisoned by a
  // sibling's error and not silently dropped.
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status().code(), StatusCode::kCancelled);
  EXPECT_NE(results[2].status().message().find("skipped"), std::string::npos);
}

TEST_F(GovernanceTest, BatchItemsWithOwnTokensAreIndependent) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(50, 2)).ok());
  std::vector<CountRequest> requests(3);
  for (CountRequest& request : requests) {
    request.query = "ans(x) :- F(x, y).";
    request.database = "g";
  }
  requests[1].cancel_token.Cancel();
  auto results = engine.CountBatch(requests, /*num_threads=*/1);
  ASSERT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kCancelled);
  ASSERT_TRUE(results[2].ok());
  EXPECT_DOUBLE_EQ(results[0]->estimate, results[2]->estimate);
}

TEST_F(GovernanceTest, QuiescentGovernanceIsBitIdenticalAcrossLanes) {
  // The determinism contract: a governed-but-quiescent run (huge budget,
  // never-cancelled token) performs the same arithmetic as an ungoverned
  // one, at every lane count.
  Database db = Social(300, 4);
  double baseline = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    for (int lanes : {1, 2, 4}) {
      EngineOptions opts;
      opts.intra_query_threads = lanes;
      opts.intra_query_min_cost = 0.0;  // Fan out regardless of cost.
      CountingEngine engine(opts);
      ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());
      CountRequest request;
      request.query = kApproxQuery;
      request.database = "g";
      request.seed = 0xFEEDULL;
      if (pass == 1) request.time_budget_ms = 1ull << 40;
      auto result = engine.Count(request);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_FALSE(result->partial);
      if (baseline == 0.0) {
        baseline = result->estimate;
      } else {
        EXPECT_DOUBLE_EQ(result->estimate, baseline)
            << "lanes=" << lanes << " pass=" << pass;
      }
    }
  }
}

TEST_F(GovernanceTest, RandomCancelPointsKeepAnytimeInvariants) {
  // Property sweep: wherever cancellation lands (k completed runs for
  // cut points spread across the run schedule), the partial's interval
  // contains both its own estimate and the uninterrupted same-seed
  // answer. Cut points at or past the last run boundary reproduce the
  // full answer bit for bit.
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", CycleDb()).ok());

  auto full = engine.Count(SamplingRequest());
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_FALSE(full->partial);
  ASSERT_EQ(full->components.size(), 1u);
  const int total_runs = full->components[0].total_runs;
  ASSERT_GT(total_runs, 2) << "workload no longer reaches the sampling phase";
  const double full_estimate = full->estimate;

  const std::vector<int> cuts = {0, 1, 2, (total_runs - 1) / 2,
                                 total_runs - 2, total_runs};
  for (int cut : cuts) {
    CountRequest request = SamplingRequest();  // Fresh token per item.
    failpoint::Config config;
    config.skip = static_cast<uint64_t>(cut);
    config.max_fires = 1;
    config.on_fire = [token = request.cancel_token] { token.Cancel(); };
    failpoint::ScopedFailpoint fp("dlm.run_boundary", config);
    auto result = engine.Count(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << " cut=" << cut;
    if (cut >= total_runs - 1) {
      // Fired after the last run (or never): the full fixed-seed answer.
      EXPECT_FALSE(result->partial) << "cut=" << cut;
      EXPECT_DOUBLE_EQ(result->estimate, full_estimate) << "cut=" << cut;
      continue;
    }
    EXPECT_TRUE(result->partial) << "cut=" << cut;
    EXPECT_EQ(result->partial_reason, "cancelled") << "cut=" << cut;
    EXPECT_EQ(result->components[0].completed_runs, cut + 1) << "cut=" << cut;
    EXPECT_EQ(result->components[0].total_runs, total_runs) << "cut=" << cut;
    EXPECT_TRUE(std::isfinite(result->upper_bound)) << "cut=" << cut;
    EXPECT_LE(result->lower_bound, result->estimate) << "cut=" << cut;
    EXPECT_GE(result->upper_bound, result->estimate) << "cut=" << cut;
    // The anytime interval must contain the uninterrupted same-seed
    // answer (the whole point of the hard bounds).
    EXPECT_LE(result->lower_bound, full_estimate) << "cut=" << cut;
    EXPECT_GE(result->upper_bound, full_estimate) << "cut=" << cut;
  }
}

TEST_F(GovernanceTest, CancelWinsOverArmedEarlyStop) {
  // Adaptive scheduling arms the CLT early stop on the same run-boundary
  // loop the governor checkpoints. A cancellation landing at a boundary
  // BEFORE the stop rule can fire (min_early_stop_runs = 3, the failpoint
  // fires after run 1) must still produce the PR-style hard-bounded
  // partial with "cancelled" as the typed first cause — not an adaptive
  // stop reason, and not a lost interval.
  EngineOptions opts;
  opts.adaptive = true;
  CountingEngine engine(opts);
  ASSERT_TRUE(engine.RegisterDatabase("g", CycleDb()).ok());
  CountRequest request = SamplingRequest();

  failpoint::Config config;
  config.skip = 1;  // One completed run: below min_early_stop_runs.
  config.max_fires = 1;
  config.on_fire = [token = request.cancel_token] { token.Cancel(); };
  failpoint::ScopedFailpoint fp("dlm.run_boundary", config);

  auto result = engine.Count(request);
  ASSERT_EQ(failpoint::FireCount("dlm.run_boundary"), 1u)
      << "query never reached the DLM sampling phase";
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->adaptive);
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->partial_reason, "cancelled");
  EXPECT_TRUE(std::isfinite(result->lower_bound));
  EXPECT_TRUE(std::isfinite(result->upper_bound));
  EXPECT_LE(result->lower_bound, result->estimate);
  EXPECT_GE(result->upper_bound, result->estimate);
  ASSERT_EQ(result->components.size(), 1u);
  const ComponentResult& component = result->components[0];
  EXPECT_TRUE(component.partial);
  EXPECT_EQ(component.stop_reason, StopReason::kCancelled)
      << StopReasonName(component.stop_reason);
  EXPECT_GE(component.completed_runs, 1);
  EXPECT_LT(component.completed_runs, component.total_runs);
}

TEST_F(GovernanceTest, DeadlineWinsOverArmedEarlyStop) {
  EngineOptions opts;
  opts.adaptive = true;
  CountingEngine engine(opts);
  ASSERT_TRUE(engine.RegisterDatabase("g", CycleDb()).ok());
  ManualClock clock(0);
  CountRequest request = SamplingRequest();
  request.time_budget_ms = 1000;
  request.clock = &clock;

  failpoint::Config config;
  config.skip = 0;  // Expire right after the first run completes.
  config.max_fires = 1;
  config.on_fire = [&clock] { clock.Advance(10'000); };
  failpoint::ScopedFailpoint fp("dlm.run_boundary", config);

  auto result = engine.Count(request);
  ASSERT_EQ(failpoint::FireCount("dlm.run_boundary"), 1u);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->partial_reason, "deadline_exceeded");
  EXPECT_TRUE(std::isfinite(result->lower_bound));
  EXPECT_TRUE(std::isfinite(result->upper_bound));
  EXPECT_LE(result->lower_bound, result->estimate);
  EXPECT_GE(result->upper_bound, result->estimate);
  ASSERT_EQ(result->components.size(), 1u);
  EXPECT_EQ(result->components[0].stop_reason, StopReason::kDeadlineExpired)
      << StopReasonName(result->components[0].stop_reason);
  EXPECT_GE(result->components[0].completed_runs, 1);
}

TEST_F(GovernanceTest, RegisterDatabaseFailpointInjectsErrors) {
  failpoint::Config config;
  config.inject_error = true;
  config.error_code = StatusCode::kFailedPrecondition;
  config.error_message = "injected registration outage";
  failpoint::ScopedFailpoint fp("engine.register_database", config);
  CountingEngine engine;
  Status status = engine.RegisterDatabase("g", Social(20, 1));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cqcount
