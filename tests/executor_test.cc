#include "util/executor.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <set>
#include <thread>
#include <string>
#include <vector>

#include "app/workload.h"
#include "engine/engine.h"

namespace cqcount {
namespace {

TEST(ExecutorTest, DeriveSeedIsDeterministicAndIndexSensitive) {
  EXPECT_EQ(DeriveSeed(42, 7), DeriveSeed(42, 7));
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 100; ++i) seeds.insert(DeriveSeed(42, i));
  EXPECT_EQ(seeds.size(), 100u);
  EXPECT_NE(DeriveSeed(42, 0), DeriveSeed(43, 0));
}

TEST(ExecutorTest, ParallelForRunsEveryTaskOnce) {
  Executor executor(4);
  std::vector<std::atomic<int>> counts(500);
  executor.ParallelFor(counts.size(),
                       [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ExecutorTest, WaitBlocksUntilSubmittedWorkFinishes) {
  Executor executor(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    executor.Submit([&done] { done.fetch_add(1); });
  }
  executor.Wait();
  EXPECT_EQ(done.load(), 64);
}

TEST(ExecutorTest, ConcurrentParallelForCallsDoNotInterfere) {
  // Two threads drive independent ParallelFor calls through one pool;
  // each must see exactly its own tasks complete.
  Executor executor(4);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread ta([&] {
    executor.ParallelFor(200, [&](size_t) { a.fetch_add(1); });
    EXPECT_EQ(a.load(), 200);
  });
  std::thread tb([&] {
    executor.ParallelFor(300, [&](size_t) { b.fetch_add(1); });
    EXPECT_EQ(b.load(), 300);
  });
  ta.join();
  tb.join();
}

// Regression for the nested-submit deadlock: every worker of a saturated
// pool blocks inside a nested wait while the sub-tasks sit in the queue.
// Help-draining waits must complete this; the pre-fix executor hung here.
TEST(ExecutorTest, NestedParallelForFromSaturatedPoolDoesNotDeadlock) {
  Executor executor(2);
  std::atomic<int> inner{0};
  // More outer tasks than workers, each fanning out again on the pool.
  executor.ParallelFor(8, [&](size_t) {
    executor.ParallelFor(16, [&](size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 8 * 16);
}

TEST(ExecutorTest, SaturatedPoolWithScopedWaitsCompletes) {
  // The literal latent-deadlock scenario: every worker of the pool is
  // occupied by an outer task that spawns sub-tasks and blocks waiting
  // for exactly those, while the sub-tasks (and more outer tasks) sit in
  // the queue with no free worker. The scoped waits stay live because a
  // ParallelFor caller's own claim loop drives its whole index space
  // when no helper gets a worker.
  Executor executor(2);
  std::atomic<int> inner{0};
  for (int i = 0; i < 4; ++i) {
    executor.Submit([&] {
      executor.ParallelFor(8, [&](size_t) { inner.fetch_add(1); });
    });
  }
  executor.Wait();
  EXPECT_EQ(inner.load(), 4 * 8);
}

TEST(ExecutorTest, DeeplyNestedLanesTerminate) {
  Executor executor(2);
  std::atomic<int> leaves{0};
  executor.ParallelForLanes(4, 3, [&](int, size_t) {
    executor.ParallelForLanes(4, 3, [&](int, size_t) {
      executor.ParallelForLanes(4, 3,
                                [&](int, size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

TEST(ExecutorTest, ParallelForLanesCoversEveryIndexOnce) {
  Executor executor(4);
  std::vector<std::atomic<int>> counts(777);
  Executor::LaneStats stats = executor.ParallelForLanes(
      counts.size(), 3, [&](int lane, size_t i) {
        EXPECT_GE(lane, 0);
        EXPECT_LT(lane, 3);
        counts[i].fetch_add(1);
      });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  EXPECT_EQ(stats.caller_ran + stats.worker_ran, counts.size());
}

TEST(ExecutorTest, ParallelForLanesSerialisesEachLane) {
  // At most one task of a lane runs at any moment (per-lane scratch needs
  // no locking). Track per-lane reentrancy with an atomic flag per lane.
  Executor executor(4);
  constexpr int kLanes = 3;
  std::array<std::atomic<int>, kLanes> in_lane{};
  std::atomic<bool> overlap{false};
  executor.ParallelForLanes(200, kLanes, [&](int lane, size_t) {
    if (in_lane[lane].fetch_add(1) != 0) overlap.store(true);
    in_lane[lane].fetch_sub(1);
  });
  EXPECT_FALSE(overlap.load());
}

TEST(ExecutorTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    Executor executor(2);
    for (int i = 0; i < 32; ++i) {
      executor.Submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 32);
}

class BatchDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(123);
    Database db = SocialNetworkDb(250, 5.0, 0.5, rng);
    ASSERT_TRUE(engine_.RegisterDatabase("g", std::move(db)).ok());
    const std::vector<std::string> queries = {
        "ans(x) :- F(x, y), F(x, z), y != z.",
        "ans(x, y) :- F(x, y), Adult(x).",
        "ans(x) :- F(x, y), Adult(y), x != y.",
        "ans(x, y) :- F(x, y), !Adult(y).",
        "ans(x) :- F(x, y).",
        "ans(a) :- F(a, b), F(a, c), b != c.",
        // Atom-reordered isomorphs with *different* variable-index
        // structure: racing cold-cache plan builds must still be a pure
        // function of the shared canonical shape.
        "ans(x) :- F(y, x), F(x, z), y != z.",
        "ans(a) :- F(a, c), F(b, a), b != c.",
    };
    for (const auto& q : queries) {
      CountRequest request;
      request.query = q;
      request.database = "g";
      requests_.push_back(request);
    }
  }

  std::vector<double> Run(int num_threads) {
    auto results = engine_.CountBatch(requests_, num_threads);
    std::vector<double> estimates;
    for (const auto& r : results) {
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      estimates.push_back(r.ok() ? r->estimate : -1.0);
    }
    return estimates;
  }

  CountingEngine engine_;
  std::vector<CountRequest> requests_;
};

TEST_F(BatchDeterminismTest, ThreadCountDoesNotChangeEstimates) {
  const std::vector<double> single = Run(1);
  for (int threads : {2, 4, 8}) {
    const std::vector<double> multi = Run(threads);
    ASSERT_EQ(multi.size(), single.size());
    for (size_t i = 0; i < single.size(); ++i) {
      // Bitwise equality: per-item derived seeds make each estimate a pure
      // function of the request, independent of scheduling.
      EXPECT_EQ(multi[i], single[i]) << "item " << i << " with " << threads
                                     << " threads";
    }
  }
}

TEST_F(BatchDeterminismTest, RepeatedBatchesAreStable) {
  EXPECT_EQ(Run(4), Run(4));
}

TEST_F(BatchDeterminismTest, BatchItemsGetDistinctSeeds) {
  // Items 0 and 5 are isomorphic queries; item seeds differ by index, so
  // the *estimates* may differ even though the plans are shared. This
  // documents that seeds are per-item, not per-shape: both runs of the
  // batch must nevertheless agree with themselves.
  auto a = engine_.CountBatch(requests_, 2);
  auto b = engine_.CountBatch(requests_, 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok());
    ASSERT_TRUE(b[i].ok());
    EXPECT_EQ(a[i]->estimate, b[i]->estimate);
  }
}

TEST(CountBatchTest, ErrorsStayPositional) {
  CountingEngine engine;
  Rng rng(9);
  ASSERT_TRUE(
      engine.RegisterDatabase("g", SocialNetworkDb(30, 4.0, 0.5, rng)).ok());
  std::vector<CountRequest> requests(3);
  requests[0].query = "ans(x) :- F(x, y).";
  requests[0].database = "g";
  requests[1].query = "ans(x) :- F(x,";  // Parse error.
  requests[1].database = "g";
  requests[2].query = "ans(x) :- F(x, y).";
  requests[2].database = "missing";  // Unknown database.

  auto results = engine.CountBatch(requests, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cqcount
