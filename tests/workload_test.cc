#include "app/workload.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(WorkloadTest, AddRandomTuplesProducesDistinctTuples) {
  Database db(50);
  Rng rng(1);
  AddRandomTuples(&db, "R", 2, 100, rng);
  EXPECT_EQ(db.relation("R").size(), 100u);
  EXPECT_EQ(db.Arity("R"), 2);
}

TEST(WorkloadTest, RandomDatabaseDeclaresAllRelations) {
  Rng rng(2);
  Database db = RandomDatabase(20, {{"R", 2, 30}, {"S", 3, 10}, {"T", 1, 5}},
                               rng);
  EXPECT_EQ(db.relation("R").size(), 30u);
  EXPECT_EQ(db.relation("S").size(), 10u);
  EXPECT_EQ(db.relation("T").size(), 5u);
  EXPECT_EQ(db.universe_size(), 20u);
}

TEST(WorkloadTest, SocialNetworkShape) {
  Rng rng(3);
  Database db = SocialNetworkDb(40, 4.0, 0.5, rng);
  EXPECT_EQ(db.universe_size(), 40u);
  EXPECT_TRUE(db.HasRelation("F"));
  EXPECT_TRUE(db.HasRelation("Adult"));
  // Friendship is symmetric.
  for (TupleView t : db.relation("F")) {
    EXPECT_TRUE(db.relation("F").Contains({t[1], t[0]}));
  }
  // Expected degree ~4: |F| ~ 40 * 4 = 160 entries (two per edge).
  EXPECT_GT(db.relation("F").size(), 60u);
  EXPECT_LT(db.relation("F").size(), 320u);
}

TEST(WorkloadTest, DeterministicUnderSeed) {
  Rng rng1(7);
  Rng rng2(7);
  Database a = SocialNetworkDb(20, 3.0, 0.3, rng1);
  Database b = SocialNetworkDb(20, 3.0, 0.3, rng2);
  EXPECT_EQ(a.relation("F"), b.relation("F"));
  EXPECT_EQ(a.relation("Adult"), b.relation("Adult"));
}

}  // namespace
}  // namespace cqcount
