#include "hypergraph/hypergraph.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(HypergraphTest, BasicConstruction) {
  Hypergraph h(4);
  EXPECT_EQ(h.num_vertices(), 4);
  EXPECT_EQ(h.num_edges(), 0);
  EXPECT_EQ(h.Arity(), 0);
  h.AddEdge({0, 1, 2});
  h.AddEdge({2, 3});
  EXPECT_EQ(h.num_edges(), 2);
  EXPECT_EQ(h.Arity(), 3);
}

TEST(HypergraphTest, EdgesAreSortedAndDeduplicated) {
  Hypergraph h(3);
  const int e = h.AddEdge({2, 0, 2, 1});
  ASSERT_GE(e, 0);
  EXPECT_EQ(h.edge(e), (std::vector<Vertex>{0, 1, 2}));
  // Same vertex set again: ignored.
  EXPECT_EQ(h.AddEdge({1, 2, 0}), -1);
  EXPECT_EQ(h.num_edges(), 1);
}

TEST(HypergraphTest, EmptyEdgeIgnored) {
  Hypergraph h(2);
  EXPECT_EQ(h.AddEdge({}), -1);
  EXPECT_EQ(h.num_edges(), 0);
}

TEST(HypergraphTest, EnsureVertexGrows) {
  Hypergraph h;
  h.AddEdge({5});
  EXPECT_EQ(h.num_vertices(), 6);
}

TEST(HypergraphTest, IncidenceLists) {
  Hypergraph h(4);
  const int e0 = h.AddEdge({0, 1});
  const int e1 = h.AddEdge({1, 2, 3});
  EXPECT_EQ(h.incident_edges(1), (std::vector<int>{e0, e1}));
  EXPECT_EQ(h.incident_edges(0), (std::vector<int>{e0}));
  EXPECT_TRUE(h.HasNoIsolatedVertices());
  Hypergraph g(3);
  g.AddEdge({0, 1});
  EXPECT_FALSE(g.HasNoIsolatedVertices());
}

TEST(HypergraphTest, InducedSubhypergraph) {
  Hypergraph h(5);
  h.AddEdge({0, 1, 2});
  h.AddEdge({2, 3});
  h.AddEdge({3, 4});
  // Induce on {1, 2, 3}: per Definition 39 the edges are the non-empty
  // restrictions {1,2}, {2,3} and {3} (local ids {0,1}, {1,2}, {2}).
  Hypergraph induced = h.Induced({1, 2, 3});
  EXPECT_EQ(induced.num_vertices(), 3);
  EXPECT_EQ(induced.num_edges(), 3);
  EXPECT_EQ(induced.edge(0), (std::vector<Vertex>{0, 1}));
  EXPECT_EQ(induced.edge(1), (std::vector<Vertex>{1, 2}));
  EXPECT_EQ(induced.edge(2), (std::vector<Vertex>{2}));
}

TEST(HypergraphTest, InducedDeduplicatesRestrictions) {
  Hypergraph h(4);
  h.AddEdge({0, 1, 2});
  h.AddEdge({0, 1, 3});
  // Restricted to {0, 1} both edges collapse to the same restriction.
  Hypergraph induced = h.Induced({0, 1});
  EXPECT_EQ(induced.num_edges(), 1);
}

TEST(HypergraphTest, ConnectedComponents) {
  Hypergraph h(6);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({3, 4});
  auto components = h.ConnectedComponents();
  // {0,1,2}, {3,4}, {5} (isolated).
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<Vertex>{0, 1, 2}));
  EXPECT_EQ(components[1], (std::vector<Vertex>{3, 4}));
  EXPECT_EQ(components[2], (std::vector<Vertex>{5}));
  EXPECT_FALSE(h.IsConnected());
}

TEST(HypergraphTest, HyperedgeConnectsAllItsVertices) {
  Hypergraph h(4);
  h.AddEdge({0, 1, 2, 3});
  EXPECT_TRUE(h.IsConnected());
}

TEST(HypergraphTest, EqualityOperator) {
  Hypergraph a(2);
  a.AddEdge({0, 1});
  Hypergraph b(2);
  b.AddEdge({1, 0});
  EXPECT_EQ(a, b);
  Hypergraph c(2);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace cqcount
