#include "engine/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "app/graph_gen.h"
#include "engine/plan.h"
#include "query/parser.h"

namespace cqcount {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

std::shared_ptr<const QueryPlan> PlanWithKey(const std::string& key) {
  auto plan = std::make_shared<QueryPlan>();
  plan->shape_key = key;
  return plan;
}

TEST(PlanCacheTest, LookupMissThenHit) {
  PlanCache cache(8, 2);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", PlanWithKey("a"));
  auto hit = cache.Lookup("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->shape_key, "a");

  PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCacheTest, LruEvictionDropsOldest) {
  // Single shard so the LRU order is globally observable.
  PlanCache cache(2, 1);
  cache.Insert("a", PlanWithKey("a"));
  cache.Insert("b", PlanWithKey("b"));
  ASSERT_NE(cache.Lookup("a"), nullptr);  // "a" is now most recent.
  cache.Insert("c", PlanWithKey("c"));    // Evicts "b".

  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.Stats().entries, 2u);
}

TEST(PlanCacheTest, DistinctKeysInOneShardNeverCollide) {
  // With one shard every key shares the same bucket space; exact key
  // comparison must still keep the entries apart.
  PlanCache cache(64, 1);
  for (int i = 0; i < 32; ++i) {
    const std::string key = "shape-" + std::to_string(i);
    cache.Insert(key, PlanWithKey(key));
  }
  for (int i = 0; i < 32; ++i) {
    const std::string key = "shape-" + std::to_string(i);
    auto plan = cache.Lookup(key);
    ASSERT_NE(plan, nullptr) << key;
    EXPECT_EQ(plan->shape_key, key);
  }
}

TEST(PlanCacheTest, InsertReplacesExistingKey) {
  PlanCache cache(4, 1);
  cache.Insert("a", PlanWithKey("old"));
  cache.Insert("a", PlanWithKey("new"));
  auto plan = cache.Lookup("a");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->shape_key, "new");
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(PlanCacheTest, ClearDropsEntriesKeepsCounters) {
  PlanCache cache(8, 2);
  cache.Insert("a", PlanWithKey("a"));
  ASSERT_NE(cache.Lookup("a"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(PlanCacheTest, ConcurrentMixedUseIsSafe) {
  PlanCache cache(32, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 48);
        if (cache.Lookup(key) == nullptr) {
          cache.Insert(key, PlanWithKey(key));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  PlanCacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, cache.capacity());
  EXPECT_EQ(stats.hits + stats.misses, 1600u);
}

TEST(CanonicalShapeTest, RenamedVariablesShareKey) {
  Query a = Parse("ans(x) :- F(x, y), F(x, z), y != z.");
  Query b = Parse("ans(u) :- F(u, v), F(u, w), v != w.");
  EXPECT_EQ(CanonicalQueryShape(a).key, CanonicalQueryShape(b).key);
}

TEST(CanonicalShapeTest, ReorderedAtomsShareKey) {
  Query a = Parse("ans(x, y) :- R(x, z), S(z, y), !T(x, y), x != y.");
  Query b = Parse("ans(p, q) :- !T(p, q), S(r, q), R(p, r), p != q.");
  EXPECT_EQ(CanonicalQueryShape(a).key, CanonicalQueryShape(b).key);
}

TEST(CanonicalShapeTest, DifferentShapesDiffer) {
  Query a = Parse("ans(x) :- F(x, y), F(x, z), y != z.");
  Query b = Parse("ans(x) :- F(x, y), F(x, z).");
  Query c = Parse("ans(x) :- F(x, y), G(x, z), y != z.");
  Query d = Parse("ans(x, y) :- F(x, y), F(x, z), y != z.");
  EXPECT_NE(CanonicalQueryShape(a).key, CanonicalQueryShape(b).key);
  EXPECT_NE(CanonicalQueryShape(a).key, CanonicalQueryShape(c).key);
  EXPECT_NE(CanonicalQueryShape(a).key, CanonicalQueryShape(d).key);
}

TEST(CanonicalShapeTest, NegationDistinguishesShapes) {
  Query a = Parse("ans(x, y) :- R(x, y), T(x, y).");
  Query b = Parse("ans(x, y) :- R(x, y), !T(x, y).");
  EXPECT_NE(CanonicalQueryShape(a).key, CanonicalQueryShape(b).key);
}

TEST(CanonicalShapeTest, MappingPreservesFreeVariables) {
  Query q = Parse("ans(x, y) :- R(x, z), S(z, y), x != y.");
  CanonicalShape shape = CanonicalQueryShape(q);
  ASSERT_EQ(static_cast<int>(shape.to_canonical.size()), q.num_vars());
  for (int v = 0; v < q.num_vars(); ++v) {
    EXPECT_EQ(shape.to_canonical[v] < q.num_free(), v < q.num_free());
  }
}

TEST(CanonicalShapeTest, InstantiatedDecompositionIsValid) {
  // Plan in canonical space for one presentation, instantiate for an
  // isomorphic presentation with different variable names/order.
  Query a = Parse("ans(x) :- R(x, y), S(y, z), T(z, x).");
  Query b = Parse("ans(q) :- T(r, q), S(p, r), R(q, p).");
  CanonicalShape shape_a = CanonicalQueryShape(a);
  CanonicalShape shape_b = CanonicalQueryShape(b);
  ASSERT_EQ(shape_a.key, shape_b.key);

  Database db = GraphToDatabase(CycleGraph(5), "R");
  PlanOptions opts;
  QueryPlan plan = BuildQueryPlan(a, shape_a, db, opts);

  TreeDecomposition for_b = InstantiateDecomposition(
      plan.decomposition.decomposition, shape_b.to_canonical);
  EXPECT_TRUE(for_b.Validate(b.BuildHypergraph()).ok());
}

}  // namespace
}  // namespace cqcount
