#include "query/parser.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(ParserTest, ParsesFriendsQuery) {
  auto q = ParseQuery("ans(x) :- F(x, y), F(x, z), y != z.");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_free(), 1);
  EXPECT_EQ(q->num_vars(), 3);
  EXPECT_EQ(q->atoms().size(), 2u);
  EXPECT_EQ(q->disequalities().size(), 1u);
  EXPECT_EQ(q->Kind(), QueryKind::kDcq);
}

TEST(ParserTest, ParsesNegatedAtoms) {
  auto q = ParseQuery("ans(x, y) :- R(x, y), !S(y, x).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Kind(), QueryKind::kEcq);
  EXPECT_EQ(q->NumNegatedAtoms(), 1);
}

TEST(ParserTest, BooleanQueryHasNoFreeVariables) {
  auto q = ParseQuery("ans() :- R(x, y).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_free(), 0);
  EXPECT_EQ(q->num_vars(), 2);
}

TEST(ParserTest, TrailingPeriodOptional) {
  EXPECT_TRUE(ParseQuery("ans(x) :- R(x)").ok());
}

TEST(ParserTest, FreeVariablesComeFirst) {
  auto q = ParseQuery("ans(a, b) :- R(z, a), S(b, z).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->var_name(0), "a");
  EXPECT_EQ(q->var_name(1), "b");
  EXPECT_EQ(q->var_name(2), "z");
}

TEST(ParserTest, EqualityMergesVariables) {
  // x = z merges the two; the query becomes R(x, y), S(x).
  auto q = ParseQuery("ans(x) :- R(x, y), S(z), x = z.");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars(), 2);
  EXPECT_EQ(q->num_free(), 1);
  // Both atoms now reference variable 0.
  EXPECT_EQ(q->atoms()[1].vars[0], 0);
}

TEST(ParserTest, EqualityChainMerges) {
  auto q = ParseQuery("ans() :- R(a, b), a = b, b = c, R(b, c).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars(), 1);
}

TEST(ParserTest, MergedFreeVariableStaysFree) {
  auto q = ParseQuery("ans(x) :- R(y), x = y.");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_free(), 1);
  EXPECT_EQ(q->num_vars(), 1);
  EXPECT_EQ(q->var_name(0), "x");
}

TEST(ParserTest, ContradictionAfterMergeRejected) {
  auto q = ParseQuery("ans() :- R(x, y), x = y, x != y.");
  EXPECT_FALSE(q.ok());
}

TEST(ParserTest, RejectsDuplicateHeadVariable) {
  EXPECT_FALSE(ParseQuery("ans(x, x) :- R(x).").ok());
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseQuery("ans(x)").ok());
  EXPECT_FALSE(ParseQuery("ans(x) :- ").ok());
  EXPECT_FALSE(ParseQuery("ans(x) :- R(x), !y != z.").ok());
  EXPECT_FALSE(ParseQuery("ans(x) :- R(x,).").ok());
  EXPECT_FALSE(ParseQuery("ans(x) :- R(x)) .").ok());
  EXPECT_FALSE(ParseQuery("ans(x) : R(x).").ok());
}

TEST(ParserTest, RejectsHeadVariableMissingFromBody) {
  EXPECT_FALSE(ParseQuery("ans(w) :- R(x, y).").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const std::string text = "ans(x) :- F(x, y), F(x, z), !B(y, z), y != z.";
  auto q = ParseQuery(text);
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->ToString(), q->ToString());
  EXPECT_EQ(q2->num_vars(), q->num_vars());
  EXPECT_EQ(q2->PhiSize(), q->PhiSize());
}

TEST(ParserTest, RepeatedVariableInsideAtom) {
  auto q = ParseQuery("ans(x) :- E(x, x).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars(), 1);
  EXPECT_EQ(q->atoms()[0].vars, (std::vector<int>{0, 0}));
}

TEST(ParserTest, PrimedIdentifiersAllowed) {
  auto q = ParseQuery("ans(x') :- R(x', y_1).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->var_name(0), "x'");
}

}  // namespace
}  // namespace cqcount
