#include "query/parser.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(ParserTest, ParsesFriendsQuery) {
  auto q = ParseQuery("ans(x) :- F(x, y), F(x, z), y != z.");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_free(), 1);
  EXPECT_EQ(q->num_vars(), 3);
  EXPECT_EQ(q->atoms().size(), 2u);
  EXPECT_EQ(q->disequalities().size(), 1u);
  EXPECT_EQ(q->Kind(), QueryKind::kDcq);
}

TEST(ParserTest, ParsesNegatedAtoms) {
  auto q = ParseQuery("ans(x, y) :- R(x, y), !S(y, x).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Kind(), QueryKind::kEcq);
  EXPECT_EQ(q->NumNegatedAtoms(), 1);
}

TEST(ParserTest, BooleanQueryHasNoFreeVariables) {
  auto q = ParseQuery("ans() :- R(x, y).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_free(), 0);
  EXPECT_EQ(q->num_vars(), 2);
}

TEST(ParserTest, TrailingPeriodOptional) {
  EXPECT_TRUE(ParseQuery("ans(x) :- R(x)").ok());
}

TEST(ParserTest, FreeVariablesComeFirst) {
  auto q = ParseQuery("ans(a, b) :- R(z, a), S(b, z).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->var_name(0), "a");
  EXPECT_EQ(q->var_name(1), "b");
  EXPECT_EQ(q->var_name(2), "z");
}

TEST(ParserTest, EqualityMergesVariables) {
  // x = z merges the two; the query becomes R(x, y), S(x).
  auto q = ParseQuery("ans(x) :- R(x, y), S(z), x = z.");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars(), 2);
  EXPECT_EQ(q->num_free(), 1);
  // Both atoms now reference variable 0.
  EXPECT_EQ(q->atoms()[1].vars[0], 0);
}

TEST(ParserTest, EqualityChainMerges) {
  auto q = ParseQuery("ans() :- R(a, b), a = b, b = c, R(b, c).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars(), 1);
}

TEST(ParserTest, MergedFreeVariableStaysFree) {
  auto q = ParseQuery("ans(x) :- R(y), x = y.");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_free(), 1);
  EXPECT_EQ(q->num_vars(), 1);
  EXPECT_EQ(q->var_name(0), "x");
}

TEST(ParserTest, ContradictionAfterMergeRejected) {
  auto q = ParseQuery("ans() :- R(x, y), x = y, x != y.");
  EXPECT_FALSE(q.ok());
}

TEST(ParserTest, RejectsDuplicateHeadVariable) {
  EXPECT_FALSE(ParseQuery("ans(x, x) :- R(x).").ok());
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseQuery("ans(x)").ok());
  EXPECT_FALSE(ParseQuery("ans(x) :- ").ok());
  EXPECT_FALSE(ParseQuery("ans(x) :- R(x), !y != z.").ok());
  EXPECT_FALSE(ParseQuery("ans(x) :- R(x,).").ok());
  EXPECT_FALSE(ParseQuery("ans(x) :- R(x)) .").ok());
  EXPECT_FALSE(ParseQuery("ans(x) : R(x).").ok());
}

TEST(ParserTest, RejectsHeadVariableMissingFromBody) {
  EXPECT_FALSE(ParseQuery("ans(w) :- R(x, y).").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const std::string text = "ans(x) :- F(x, y), F(x, z), !B(y, z), y != z.";
  auto q = ParseQuery(text);
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->ToString(), q->ToString());
  EXPECT_EQ(q2->num_vars(), q->num_vars());
  EXPECT_EQ(q2->PhiSize(), q->PhiSize());
}

TEST(ParserTest, ErrorsCarryTokenAndPosition) {
  // Unexpected ')' after the malformed argument list: the message must
  // name the offending token and its byte offset.
  auto q = ParseQuery("ans(x) :- R(x,).");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("offset 14"), std::string::npos)
      << q.status().message();
  EXPECT_NE(q.status().message().find("')'"), std::string::npos)
      << q.status().message();

  // Truncated input: the error points at the end of the text.
  auto truncated = ParseQuery("ans(x) :- R(x,");
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find("offset 14"), std::string::npos)
      << truncated.status().message();
  EXPECT_NE(truncated.status().message().find("end of input"),
            std::string::npos)
      << truncated.status().message();

  // Lexer-level error: bad ':' reports its offset.
  auto colon = ParseQuery("ans(x) : R(x).");
  ASSERT_FALSE(colon.ok());
  EXPECT_NE(colon.status().message().find("offset 7"), std::string::npos)
      << colon.status().message();

  // Trailing garbage names the first unconsumed token.
  auto trailing = ParseQuery("ans(x) :- R(x) S(x)");
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.status().message().find("offset 15"), std::string::npos)
      << trailing.status().message();
  EXPECT_NE(trailing.status().message().find("'S'"), std::string::npos)
      << trailing.status().message();
}

TEST(ParserTest, RoundTripMixedNegationAndDisequality) {
  // The ISSUE's exemplar shape: a negated atom next to a disequality.
  const std::string text = "ans(x, y) :- R(x, y), !T(x, y), x != y.";
  auto q = ParseQuery(text);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->Kind(), QueryKind::kEcq);
  EXPECT_EQ(q->NumNegatedAtoms(), 1);
  ASSERT_EQ(q->disequalities().size(), 1u);

  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->ToString(), q->ToString());
  EXPECT_EQ(q2->Kind(), QueryKind::kEcq);
  EXPECT_EQ(q2->NumNegatedAtoms(), q->NumNegatedAtoms());
  EXPECT_EQ(q2->disequalities(), q->disequalities());
  EXPECT_EQ(q2->num_free(), q->num_free());
  EXPECT_EQ(q2->PhiSize(), q->PhiSize());
}

TEST(ParserTest, RepeatedVariableInsideAtom) {
  auto q = ParseQuery("ans(x) :- E(x, x).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars(), 1);
  EXPECT_EQ(q->atoms()[0].vars, (std::vector<int>{0, 0}));
}

TEST(ParserTest, PrimedIdentifiersAllowed) {
  auto q = ParseQuery("ans(x') :- R(x', y_1).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->var_name(0), "x'");
}

}  // namespace
}  // namespace cqcount
