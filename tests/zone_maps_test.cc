// Zone-map probe tests (relational/zone_maps.h): soundness of
// MaybeHasValueInRange against brute force over the actual rows (a
// `false` answer must PROVE absence), the column-0 binary search over
// canonically sorted block intervals, and the capped walk on unsorted
// columns of huge relations (giving up must return "maybe", never a
// false emptiness proof).
#include "relational/zone_maps.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace cqcount {
namespace {

using Value = ZoneMaps::Value;

// Random canonical (lexicographically sorted, duplicate-free) rows.
std::vector<Value> CanonicalRows(Rng& rng, size_t rows, int arity,
                                 uint32_t universe) {
  std::vector<std::vector<Value>> tuples(rows);
  for (auto& t : tuples) {
    t.resize(static_cast<size_t>(arity));
    for (Value& v : t) v = static_cast<Value>(rng.UniformInt(universe));
  }
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  std::vector<Value> flat;
  flat.reserve(tuples.size() * static_cast<size_t>(arity));
  for (const auto& t : tuples) flat.insert(flat.end(), t.begin(), t.end());
  return flat;
}

TEST(ZoneMapsTest, ProbeNeverProvesAbsenceOfAnExistingValue) {
  Rng rng(20260808);
  for (int trial = 0; trial < 30; ++trial) {
    const int arity = 1 + static_cast<int>(rng.UniformInt(3));
    // Several blocks' worth of rows so block boundaries are exercised.
    const size_t want_rows = 1 + rng.UniformInt(3 * ZoneMaps::kBlockRows);
    const uint32_t universe = 16 + static_cast<uint32_t>(rng.UniformInt(200));
    const std::vector<Value> flat =
        CanonicalRows(rng, want_rows, arity, universe);
    const size_t rows = flat.size() / static_cast<size_t>(arity);
    const ZoneMaps zones = ZoneMaps::Build(flat.data(), arity, rows);

    for (int probe = 0; probe < 60; ++probe) {
      const int col = static_cast<int>(rng.UniformInt(arity));
      Value lo = static_cast<Value>(rng.UniformInt(universe + 4));
      Value hi = static_cast<Value>(rng.UniformInt(universe + 4));
      if (lo > hi) std::swap(lo, hi);
      bool exists = false;
      for (size_t r = 0; r < rows && !exists; ++r) {
        const Value v = flat[r * static_cast<size_t>(arity) +
                             static_cast<size_t>(col)];
        exists = v >= lo && v < hi;
      }
      if (exists) {
        EXPECT_TRUE(zones.MaybeHasValueInRange(col, lo, hi))
            << "col=" << col << " [" << lo << "," << hi << ")";
      }
      if (!zones.MaybeHasValueInRange(col, lo, hi)) {
        EXPECT_FALSE(exists)
            << "col=" << col << " [" << lo << "," << hi << ")";
      }
    }
  }
}

TEST(ZoneMapsTest, SortedColumnZeroProvesInterBlockGapsExactly) {
  // Column 0 of a canonical relation is sorted, so per-block intervals
  // binary-search. Each block here densely covers [10000b, 10000b+1023],
  // leaving provably empty inter-block gaps (block granularity cannot
  // prove gaps WITHIN a block — those legitimately answer "maybe").
  constexpr size_t kBlocks = 4;
  const size_t rows = kBlocks * ZoneMaps::kBlockRows;
  std::vector<Value> flat(rows);
  for (size_t i = 0; i < rows; ++i) {
    flat[i] = static_cast<Value>((i / ZoneMaps::kBlockRows) * 10000 +
                                 (i % ZoneMaps::kBlockRows));
  }
  const ZoneMaps zones = ZoneMaps::Build(flat.data(), 1, rows);
  const Value span = static_cast<Value>(ZoneMaps::kBlockRows);
  for (size_t b = 0; b < kBlocks; ++b) {
    const Value base = static_cast<Value>(10000 * b);
    // First and last value of the block are found.
    EXPECT_TRUE(zones.MaybeHasValueInRange(0, base, base + 1)) << b;
    EXPECT_TRUE(zones.MaybeHasValueInRange(0, base + span - 1, base + span))
        << b;
    // The gap to the next block is provably empty.
    if (b + 1 < kBlocks) {
      EXPECT_FALSE(zones.MaybeHasValueInRange(
          0, base + span, static_cast<Value>(10000 * (b + 1))))
          << b;
    }
  }
  // Outside the whole span, and the empty range.
  const Value top = static_cast<Value>(10000 * (kBlocks - 1)) + span - 1;
  EXPECT_FALSE(zones.MaybeHasValueInRange(0, top + 1, top + 100));
  EXPECT_FALSE(zones.MaybeHasValueInRange(0, 5, 5));
}

TEST(ZoneMapsTest, UnsortedColumnWalkGivesUpSoundlyPastTheCap) {
  // Synthetic per-block entries via Borrow: arity 2, alternating
  // column-1 blocks [0,5] / [30,40], so the interior range [10,20) has
  // no witness but the whole-relation bounds cannot decide. Below the
  // cap the walk PROVES emptiness; past the cap it must give up with
  // "maybe" (true) rather than scan O(blocks) per probe.
  auto make_entries = [](size_t blocks) {
    std::vector<Value> e(blocks * 2 * 2);
    for (size_t b = 0; b < blocks; ++b) {
      // Column 0: sorted, one value per block (b).
      e[(b * 2 + 0) * 2] = static_cast<Value>(b);
      e[(b * 2 + 0) * 2 + 1] = static_cast<Value>(b);
      // Column 1: alternating low/high, never inside [10, 20).
      e[(b * 2 + 1) * 2] = b % 2 == 0 ? 0u : 30u;
      e[(b * 2 + 1) * 2 + 1] = b % 2 == 0 ? 5u : 40u;
    }
    return e;
  };

  const size_t small_blocks = 8;
  const std::vector<Value> small = make_entries(small_blocks);
  const ZoneMaps small_zones =
      ZoneMaps::Borrow(small.data(), 2, small_blocks * ZoneMaps::kBlockRows);
  EXPECT_FALSE(small_zones.MaybeHasValueInRange(1, 10, 20));
  EXPECT_TRUE(small_zones.MaybeHasValueInRange(1, 4, 12));

  const size_t big_blocks = ZoneMaps::kMaxProbeBlocks + 10;
  const std::vector<Value> big = make_entries(big_blocks);
  const ZoneMaps big_zones =
      ZoneMaps::Borrow(big.data(), 2, big_blocks * ZoneMaps::kBlockRows);
  // Gave up at the cap: "maybe" is the only sound answer.
  EXPECT_TRUE(big_zones.MaybeHasValueInRange(1, 10, 20));
  // Column 0 stays exact at any block count (binary search, no cap).
  EXPECT_TRUE(big_zones.MaybeHasValueInRange(
      0, static_cast<Value>(big_blocks / 2), static_cast<Value>(big_blocks)));
  EXPECT_FALSE(big_zones.MaybeHasValueInRange(
      0, static_cast<Value>(big_blocks), static_cast<Value>(2 * big_blocks)));
  // Whole-relation bounds still answer O(1) on either side.
  EXPECT_FALSE(big_zones.MaybeHasValueInRange(1, 41, 100));
}

}  // namespace
}  // namespace cqcount
