#include "compile/compiled_query.h"

#include <gtest/gtest.h>

#include <string>

#include "compile/gaifman.h"
#include "compile/passes.h"
#include "query/parser.h"

namespace cqcount {
namespace {

Query MustParse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(PassesTest, AlreadyNormalQueryRoundTripsIdentically) {
  Query q = MustParse("ans(x) :- F(x, y), F(x, z), y != z.");
  NormalizedQuery n = NormalizeQuery(q);
  EXPECT_FALSE(n.stats.Changed());
  EXPECT_TRUE(n.guards.empty());
  EXPECT_EQ(n.query.ToString(), q.ToString());
  EXPECT_EQ(n.var_map, (std::vector<int>{0, 1, 2}));
}

TEST(PassesTest, DuplicateAtomsAreDeduped) {
  Query q = MustParse("ans(x) :- F(x, y), F(x, y), F(y, x).");
  NormalizedQuery n = NormalizeQuery(q);
  EXPECT_EQ(n.stats.atoms_deduped, 1);
  EXPECT_EQ(n.query.atoms().size(), 2u);
  // Reversed argument order is a different constraint: kept.
  EXPECT_EQ(n.query.ToString(), "ans(x) :- F(x, y), F(y, x).");
}

TEST(PassesTest, NegationDistinguishesDuplicates) {
  Query q = MustParse("ans(x, y) :- F(x, y), !F(x, y).");
  NormalizedQuery n = NormalizeQuery(q);
  EXPECT_EQ(n.stats.atoms_deduped, 0);
  EXPECT_EQ(n.query.atoms().size(), 2u);
}

TEST(PassesTest, NullaryAtomsBecomeGuards) {
  Query q = MustParse("ans(x) :- F(x, y), Init(), !Down().");
  NormalizedQuery n = NormalizeQuery(q);
  EXPECT_EQ(n.stats.guards_extracted, 2);
  ASSERT_EQ(n.guards.size(), 2u);
  EXPECT_EQ(n.guards[0], (NullaryGuard{"Init", false}));
  EXPECT_EQ(n.guards[1], (NullaryGuard{"Down", true}));
  EXPECT_EQ(n.query.atoms().size(), 1u);
  EXPECT_EQ(n.query.num_vars(), 2);
}

TEST(PassesTest, GuardHoldsChecksEmptiness) {
  Database db(4);
  ASSERT_TRUE(db.DeclareRelation("P", 0).ok());
  ASSERT_TRUE(db.DeclareRelation("Q", 0).ok());
  ASSERT_TRUE(db.AddFact("P", {}).ok());
  db.Canonicalize();
  EXPECT_TRUE(GuardHolds({"P", false}, db));
  EXPECT_FALSE(GuardHolds({"P", true}, db));
  EXPECT_FALSE(GuardHolds({"Q", false}, db));
  EXPECT_TRUE(GuardHolds({"Q", true}, db));
}

TEST(PassesTest, UnusedExistentialVariablesArePruned) {
  // Built programmatically: the parser would reject an unused variable,
  // but the pass layer must normalize any Query it is handed.
  Query q;
  q.AddVariable("x");
  q.AddVariable("dead");
  q.AddVariable("y");
  q.SetNumFree(1);
  q.AddAtom({"F", {0, 2}, false});
  NormalizedQuery n = NormalizeQuery(q);
  EXPECT_EQ(n.stats.variables_pruned, 1);
  EXPECT_EQ(n.query.num_vars(), 2);
  EXPECT_EQ(n.query.num_free(), 1);
  EXPECT_EQ(n.var_map, (std::vector<int>{0, -1, 1}));
  EXPECT_EQ(n.query.ToString(), "ans(x) :- F(x, y).");
}

TEST(PassesTest, UnusedFreeVariablesAreKept) {
  Query q;
  q.AddVariable("x");
  q.AddVariable("free_but_unused");
  q.AddVariable("y");
  q.SetNumFree(2);
  q.AddAtom({"F", {0, 2}, false});
  NormalizedQuery n = NormalizeQuery(q);
  // An unconstrained free variable scales the count by |U(D)|; it must
  // survive as its own Gaifman component, never be silently dropped.
  EXPECT_EQ(n.stats.variables_pruned, 0);
  EXPECT_EQ(n.query.num_vars(), 3);
}

TEST(GaifmanTest, DisequalitiesAndNegationsAreEdges) {
  // x-y via positive atom, y-z via disequality, u-v via negated atom:
  // all one component despite H(phi) ignoring the disequality.
  Query q = MustParse("ans(x) :- F(x, y), y != z, !G(z, u), F(u, v).");
  GaifmanGraph g(q);
  EXPECT_EQ(g.num_vars(), 5);
  EXPECT_TRUE(g.Adjacent(1, 2));  // y != z
  EXPECT_TRUE(g.IsConnected());
  EXPECT_EQ(g.Components().size(), 1u);
}

TEST(GaifmanTest, AtomsAreCliques) {
  Query q = MustParse("ans(a, b, c) :- R(a, b, c).");
  GaifmanGraph g(q);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.Adjacent(0, 2));
}

TEST(GaifmanTest, DisjointTrianglesSplit) {
  Query q = MustParse(
      "ans(a, d) :- F(a, b), F(b, c), F(c, a), F(d, e), F(e, f), F(f, d).");
  GaifmanGraph g(q);
  EXPECT_FALSE(g.IsConnected());
  auto components = g.Components();
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], (std::vector<int>{0, 2, 3}));  // a, b, c
  EXPECT_EQ(components[1], (std::vector<int>{1, 4, 5}));  // d, e, f
}

TEST(CompiledQueryTest, ConnectedQueryIsOneIdentityComponent) {
  Query q = MustParse("ans(x) :- F(x, y), F(x, z), y != z.");
  CompiledQuery compiled = CompileQuery(q);
  ASSERT_EQ(compiled.num_components(), 1u);
  const QueryComponent& c = compiled.components[0];
  // Identity mapping and an identical sub-query: the factored engine path
  // stays bitwise-compatible with the monolithic one for connected input.
  EXPECT_EQ(c.vars, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(c.query.ToString(), q.ToString());
  EXPECT_FALSE(c.existential);
  EXPECT_EQ(c.shape.key, CanonicalQueryShape(q).key);
}

TEST(CompiledQueryTest, DisjointTrianglesCompileToTwoIsomorphicComponents) {
  Query q = MustParse(
      "ans(a, d) :- F(a, b), F(b, c), F(c, a), F(d, e), F(e, f), F(f, d).");
  CompiledQuery compiled = CompileQuery(q);
  ASSERT_EQ(compiled.num_components(), 2u);
  EXPECT_EQ(compiled.num_counting_components(), 2u);
  const QueryComponent& first = compiled.components[0];
  const QueryComponent& second = compiled.components[1];
  EXPECT_EQ(first.query.num_vars(), 3);
  EXPECT_EQ(first.query.num_free(), 1);
  EXPECT_EQ(second.query.num_free(), 1);
  // Isomorphic triangles share one canonical shape (and so one cached
  // sub-plan in the engine).
  EXPECT_EQ(first.shape.key, second.shape.key);
}

TEST(CompiledQueryTest, ExistentialComponentIsFlagged) {
  Query q = MustParse("ans(x) :- F(x, y), F(u, v), u != v.");
  CompiledQuery compiled = CompileQuery(q);
  ASSERT_EQ(compiled.num_components(), 2u);
  EXPECT_EQ(compiled.num_counting_components(), 1u);
  EXPECT_FALSE(compiled.components[0].existential);
  EXPECT_TRUE(compiled.components[1].existential);
  EXPECT_EQ(compiled.components[1].query.num_free(), 0);
  EXPECT_EQ(compiled.components[1].query.disequalities().size(), 1u);
}

TEST(CompiledQueryTest, FactoringCanBeDisabled) {
  Query q = MustParse("ans(x, y) :- F(x, a), F(y, b).");
  CompileOptions opts;
  opts.factor_components = false;
  CompiledQuery compiled = CompileQuery(q, opts);
  ASSERT_EQ(compiled.num_components(), 1u);
  EXPECT_EQ(compiled.components[0].query.num_vars(), 4);
}

TEST(CompiledQueryTest, PureGuardQueryHasNoComponents) {
  Query q = MustParse("ans() :- Init().");
  CompiledQuery compiled = CompileQuery(q);
  EXPECT_EQ(compiled.num_components(), 0u);
  ASSERT_EQ(compiled.guards.size(), 1u);
  EXPECT_EQ(compiled.guards[0].relation, "Init");
}

TEST(SplitBudgetTest, SingleFactorPassesThrough) {
  BudgetShare share = SplitBudget(0.25, 0.1, 1, 1, false);
  EXPECT_DOUBLE_EQ(share.epsilon, 0.25);
  EXPECT_DOUBLE_EQ(share.delta, 0.1);
}

TEST(SplitBudgetTest, ProductOfSharesMeetsRequestedTarget) {
  for (size_t k : {2u, 3u, 8u}) {
    for (double epsilon : {0.1, 0.5, 1.0}) {
      BudgetShare share = SplitBudget(epsilon, 0.2, k, k, false);
      // (1 + eps_i)^k <= 1 + eps and (1 - eps_i)^k >= 1 - eps: the
      // product of per-component (1 +- eps_i) estimates stays within the
      // requested relative error.
      double upper = 1.0, lower = 1.0;
      for (size_t i = 0; i < k; ++i) {
        upper *= 1.0 + share.epsilon;
        lower *= 1.0 - share.epsilon;
      }
      EXPECT_LE(upper, 1.0 + epsilon) << "k=" << k << " eps=" << epsilon;
      EXPECT_GE(lower, 1.0 - epsilon) << "k=" << k << " eps=" << epsilon;
      EXPECT_DOUBLE_EQ(share.delta, 0.2 / static_cast<double>(k));
    }
  }
}

TEST(SplitBudgetTest, ExistentialFactorsDontConsumeEpsilonBudget) {
  // 1 counting + 1 existential component: the counting factor keeps the
  // full epsilon; the boolean factor runs loose.
  BudgetShare counting = SplitBudget(0.1, 0.1, 1, 2, false);
  BudgetShare boolean = SplitBudget(0.1, 0.1, 1, 2, true);
  EXPECT_DOUBLE_EQ(counting.epsilon, 0.1);
  EXPECT_DOUBLE_EQ(boolean.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(counting.delta, 0.05);
  EXPECT_DOUBLE_EQ(boolean.delta, 0.05);
}

}  // namespace
}  // namespace cqcount
