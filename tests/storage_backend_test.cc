// Storage-backend determinism: the engine's estimates must be bitwise
// identical whether a database is registered in-memory or opened from a
// packed mmap'd segment, whichever SIMD level the kernels run at, and at
// every intra-query lane count. The segment preserves canonical order and
// zone maps exactly, the SIMD kernels are exact algorithms, and lane
// scheduling derives per-task seeds deterministically — so any drift here
// is a real bug, not noise.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "relational/segment.h"
#include "relational/simd.h"
#include "relational/structure.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace cqcount {
namespace {

Database BuildDatabase() {
  Rng rng(777);
  Database db(40);
  (void)db.DeclareRelation("E", 2);
  (void)db.DeclareRelation("F", 2);
  (void)db.DeclareRelation("L", 1);
  for (int i = 0; i < 300; ++i) {
    (void)db.AddFact("E", {static_cast<Value>(rng.UniformInt(40)),
                           static_cast<Value>(rng.UniformInt(40))});
    (void)db.AddFact("F", {static_cast<Value>(rng.UniformInt(40)),
                           static_cast<Value>(rng.UniformInt(40))});
  }
  for (Value v = 0; v < 40; v += 2) (void)db.AddFact("L", {v});
  db.Canonicalize();
  return db;
}

const std::vector<std::string>& Queries() {
  static const std::vector<std::string> kQueries = {
      "ans(x) :- E(x, y), F(y, z), y != z.",
      "ans(x, y) :- E(x, y), L(x), !F(y, x).",
      "ans() :- E(x, y), F(y, z), x != z.",
  };
  return kQueries;
}

struct RunOutput {
  std::vector<double> estimates;
  std::vector<unsigned long long> oracle_calls;
};

// One full fixed-seed run: a count per query plus a batch over all of
// them, at the given lane count, against the named registration.
RunOutput RunAll(CountingEngine& engine, int lanes) {
  RunOutput out;
  for (const std::string& q : Queries()) {
    CountRequest request;
    request.query = q;
    request.database = "db";
    auto result = engine.Count(request);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) continue;
    out.estimates.push_back(result->estimate);
    out.oracle_calls.push_back(result->oracle_calls);
  }
  std::vector<CountRequest> batch;
  for (const std::string& q : Queries()) {
    CountRequest request;
    request.query = q;
    request.database = "db";
    batch.push_back(request);
  }
  auto results = engine.CountBatch(batch, lanes);
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok());
    if (!r.ok()) continue;
    out.estimates.push_back(r->estimate);
    out.oracle_calls.push_back(r->oracle_calls);
  }
  return out;
}

CountingEngine MakeEngine(int lanes) {
  EngineOptions opts;
  opts.intra_query_threads = lanes;
  return CountingEngine(opts);
}

class StorageBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "cqseg_backend_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".seg";
    db_ = BuildDatabase();
    ASSERT_TRUE(WriteSegmentDatabase(db_, path_).ok());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    simd::SetLevelForTesting(simd::MaxSupportedLevel());
  }

  RunOutput RunInMemory(int lanes) {
    CountingEngine engine = MakeEngine(lanes);
    EXPECT_TRUE(engine.RegisterDatabase("db", BuildDatabase()).ok());
    return RunAll(engine, lanes);
  }
  RunOutput RunMapped(int lanes) {
    CountingEngine engine = MakeEngine(lanes);
    EXPECT_TRUE(engine.RegisterDatabaseFile("db", path_).ok());
    return RunAll(engine, lanes);
  }

  std::string path_;
  Database db_;
};

TEST_F(StorageBackendTest, MappedMatchesInMemoryBitwiseAtEveryLaneCount) {
  for (int lanes : {1, 2, 4}) {
    const RunOutput memory = RunInMemory(lanes);
    const RunOutput mapped = RunMapped(lanes);
    ASSERT_EQ(memory.estimates.size(), mapped.estimates.size());
    for (size_t i = 0; i < memory.estimates.size(); ++i) {
      // Bitwise: exact double equality, not approximate.
      EXPECT_EQ(memory.estimates[i], mapped.estimates[i])
          << "lanes=" << lanes << " run " << i;
      EXPECT_EQ(memory.oracle_calls[i], mapped.oracle_calls[i])
          << "lanes=" << lanes << " run " << i;
    }
  }
}

TEST_F(StorageBackendTest, SimdLevelsAgreeBitwiseOnBothBackends) {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::MaxSupportedLevel() >= simd::Level::kSse2) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::MaxSupportedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  simd::SetLevelForTesting(levels[0]);
  const RunOutput ref_memory = RunInMemory(2);
  const RunOutput ref_mapped = RunMapped(2);
  for (size_t li = 1; li < levels.size(); ++li) {
    simd::SetLevelForTesting(levels[li]);
    const RunOutput memory = RunInMemory(2);
    const RunOutput mapped = RunMapped(2);
    ASSERT_EQ(memory.estimates.size(), ref_memory.estimates.size());
    ASSERT_EQ(mapped.estimates.size(), ref_mapped.estimates.size());
    for (size_t i = 0; i < memory.estimates.size(); ++i) {
      EXPECT_EQ(memory.estimates[i], ref_memory.estimates[i])
          << "level=" << simd::LevelName(levels[li]) << " run " << i;
      EXPECT_EQ(memory.oracle_calls[i], ref_memory.oracle_calls[i])
          << "level=" << simd::LevelName(levels[li]) << " run " << i;
    }
    for (size_t i = 0; i < mapped.estimates.size(); ++i) {
      EXPECT_EQ(mapped.estimates[i], ref_mapped.estimates[i])
          << "level=" << simd::LevelName(levels[li]) << " run " << i;
      EXPECT_EQ(mapped.oracle_calls[i], ref_mapped.oracle_calls[i])
          << "level=" << simd::LevelName(levels[li]) << " run " << i;
    }
  }
}

TEST_F(StorageBackendTest, ZoneMapPruningDoesNotChangeEstimates) {
  // In-memory registration builds zone maps at RegisterDatabase; a raw
  // Database evaluated through the sampler path without registration has
  // none. Pruned and unpruned engines must agree bitwise because pruning
  // only short-circuits boxes whose sub-count is provably zero and seeds
  // are drawn before box evaluation.
  CountingEngine with_zones = MakeEngine(1);
  ASSERT_TRUE(with_zones.RegisterDatabase("db", BuildDatabase()).ok());
  CountingEngine mapped_engine = MakeEngine(1);
  ASSERT_TRUE(mapped_engine.RegisterDatabaseFile("db", path_).ok());

  for (const std::string& q : Queries()) {
    CountRequest request;
    request.query = q;
    request.database = "db";
    auto a = with_zones.Count(request);
    auto b = mapped_engine.Count(request);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->estimate, b->estimate) << q;
    EXPECT_EQ(a->oracle_calls, b->oracle_calls) << q;
  }
}

}  // namespace
}  // namespace cqcount
