#include "util/status.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad query");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad query");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad query");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

}  // namespace
}  // namespace cqcount
