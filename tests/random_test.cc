#include "util/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cqcount {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(19);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.5)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.02);
}

TEST(RngTest, RandomMaskDensity) {
  Rng rng(23);
  Bitset mask = rng.RandomMask(10000, 0.25);
  EXPECT_EQ(mask.size(), 10000u);
  EXPECT_NEAR(static_cast<double>(mask.Count()) / 10000.0, 0.25, 0.03);
}

TEST(RngTest, RandomMaskBitStreamMatchesPerBitDraws) {
  // The packed fair mask must consume the historical bit stream: bit i
  // equals bit i%64 of the (i/64)-th Next() draw — fixed-seed estimates
  // depend on it.
  Rng word_rng(99);
  Bitset mask = word_rng.RandomMask(130, 0.5);
  Rng bit_rng(99);
  uint64_t bits = 0;
  int available = 0;
  for (size_t i = 0; i < 130; ++i) {
    if (available == 0) {
      bits = bit_rng.Next();
      available = 64;
    }
    EXPECT_EQ(mask.Test(i), (bits & 1) != 0) << "bit " << i;
    bits >>= 1;
    --available;
  }
  // Both consumed ceil(130/64) = 3 draws: the next outputs agree.
  EXPECT_EQ(word_rng.Next(), bit_rng.Next());
}

TEST(RngTest, RandomMaskIntoReusesBuffer) {
  Rng rng(31);
  Bitset mask;
  rng.RandomMaskInto(mask, 100, 0.5);
  EXPECT_EQ(mask.size(), 100u);
  rng.RandomMaskInto(mask, 65, 1.0);
  EXPECT_EQ(mask.size(), 65u);
  EXPECT_EQ(mask.Count(), 65u);
  rng.RandomMaskInto(mask, 10, 0.0);
  EXPECT_TRUE(mask.None());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Split();
  // The child stream should not equal the parent's continuation.
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != child.Next()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

}  // namespace
}  // namespace cqcount
