#include "relational/database_io.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(DatabaseIoTest, ParseSimpleDatabase) {
  auto db = ParseDatabase(R"(
# A small database
universe 10
relation E 2
0 1
1 2
end
relation Name 1
3
end
)");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->universe_size(), 10u);
  EXPECT_EQ(db->relation("E").size(), 2u);
  EXPECT_TRUE(db->relation("E").Contains({0, 1}));
  EXPECT_EQ(db->relation("Name").size(), 1u);
}

TEST(DatabaseIoTest, RoundTrip) {
  Database db(5);
  ASSERT_TRUE(db.DeclareRelation("R", 2).ok());
  ASSERT_TRUE(db.AddFact("R", {4, 0}).ok());
  ASSERT_TRUE(db.AddFact("R", {1, 3}).ok());
  db.Canonicalize();
  auto parsed = ParseDatabase(FormatDatabase(db));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->universe_size(), 5u);
  EXPECT_EQ(parsed->relation("R"), db.relation("R"));
}

TEST(DatabaseIoTest, RejectsMissingUniverse) {
  auto db = ParseDatabase("relation R 1\n0\nend\n");
  EXPECT_FALSE(db.ok());
}

TEST(DatabaseIoTest, RejectsArityMismatch) {
  auto db = ParseDatabase("universe 4\nrelation R 2\n0 1 2\nend\n");
  EXPECT_FALSE(db.ok());
}

TEST(DatabaseIoTest, RejectsValueOutsideUniverse) {
  auto db = ParseDatabase("universe 2\nrelation R 1\n5\nend\n");
  EXPECT_FALSE(db.ok());
}

TEST(DatabaseIoTest, RejectsUnterminatedBlock) {
  auto db = ParseDatabase("universe 2\nrelation R 1\n0\n");
  EXPECT_FALSE(db.ok());
}

TEST(DatabaseIoTest, FileRoundTrip) {
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("T", 3).ok());
  ASSERT_TRUE(db.AddFact("T", {0, 1, 2}).ok());
  db.Canonicalize();
  const std::string path = ::testing::TempDir() + "/cqcount_io_test.db";
  ASSERT_TRUE(WriteDatabaseFile(db, path).ok());
  auto loaded = ReadDatabaseFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->relation("T").Contains({0, 1, 2}));
}

TEST(DatabaseIoTest, MissingFileReported) {
  auto db = ReadDatabaseFile("/nonexistent/path/to.db");
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cqcount
