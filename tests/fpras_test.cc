#include "automata/fpras.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "counting/exact_count.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(FprasTest, CountsTwoPathsInCycle) {
  // ans(x, z) over E(x,y), E(y,z) on C5 (symmetric): exact via extension.
  Query q = Parse("ans(x, z) :- E(x, y), E(y, z).");
  Database db = GraphToDatabase(CycleGraph(5));
  auto exact = ExactCountAnswersExtension(q, db);
  ASSERT_TRUE(exact.ok());
  FprasOptions opts;
  opts.acjr.epsilon = 0.12;
  opts.acjr.seed = 11;
  auto result = FprasCountCq(q, db, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, static_cast<double>(*exact),
              0.25 * static_cast<double>(*exact));
  EXPECT_GE(result->fhw, 1.0);
}

TEST(FprasTest, RejectsDcqAndEcq) {
  Database db = GraphToDatabase(PathGraph(3));
  FprasOptions opts;
  EXPECT_FALSE(FprasCountCq(Parse("ans(x) :- E(x, y), x != y."), db, opts)
                   .ok());
  Query ecq = Parse("ans(x) :- E(x, y), !E(y, y).");
  EXPECT_FALSE(FprasCountCq(ecq, db, opts).ok());
}

TEST(FprasTest, LargerDatabaseStaysAccurate) {
  // The FPRAS's reason to exist: N too big for brute force over
  // solutions but fine for the extension-based exact counter.
  Query q = Parse("ans(x) :- E(x, y), E(y, z).");
  Rng rng(31);
  SimpleGraph g = ErdosRenyi(60, 0.05, rng);
  Database db = GraphToDatabase(g);
  auto exact = ExactCountAnswersExtension(q, db);
  ASSERT_TRUE(exact.ok());
  FprasOptions opts;
  opts.acjr.epsilon = 0.15;
  opts.acjr.sketch_size = 96;
  opts.acjr.seed = 13;
  auto result = FprasCountCq(q, db, opts);
  ASSERT_TRUE(result.ok());
  if (*exact == 0) {
    EXPECT_DOUBLE_EQ(result->estimate, 0.0);
  } else {
    EXPECT_NEAR(result->estimate, static_cast<double>(*exact),
                0.3 * static_cast<double>(*exact));
  }
}

TEST(FprasTest, BoundedFhwLargeArityQuery) {
  // Unbounded-arity regime: one wide atom keeps fhw at 1.
  Query q = Parse("ans(a, e) :- R(a, b, c, d), S(d, e).");
  Rng rng(17);
  Database db = RandomDatabaseFor(q, 6, 0.15, rng);
  auto exact = ExactCountAnswersExtension(q, db);
  ASSERT_TRUE(exact.ok());
  FprasOptions opts;
  opts.acjr.seed = 19;
  auto result = FprasCountCq(q, db, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->fhw, 2.0 + 1e-9);
  if (*exact > 0) {
    EXPECT_NEAR(result->estimate, static_cast<double>(*exact),
                0.3 * static_cast<double>(*exact) + 1.0);
  }
}

}  // namespace
}  // namespace cqcount
