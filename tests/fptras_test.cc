#include "counting/fptras.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "counting/exact_count.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

ApproxOptions TestOptions(uint64_t seed, double epsilon = 0.1) {
  ApproxOptions opts;
  opts.epsilon = epsilon;
  opts.delta = 0.1;
  opts.seed = seed;
  return opts;
}

TEST(FptrasTest, FriendsQueryOnPath) {
  // The intro's query (1): vertices with two distinct neighbours.
  Query q = Parse("ans(x) :- F(x, y), F(x, z), y != z.");
  Database db = GraphToDatabase(PathGraph(5), "F");
  auto result = ApproxCountAnswers(q, db, TestOptions(1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Exact: the 3 interior vertices.
  EXPECT_NEAR(result->estimate, 3.0, 0.5);
}

TEST(FptrasTest, SmallAnswerSetsAreExact) {
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db = GraphToDatabase(CycleGraph(6));
  auto result = ApproxCountAnswers(q, db, TestOptions(2));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
  EXPECT_DOUBLE_EQ(result->estimate, 12.0);
}

TEST(FptrasTest, BooleanEcqDecision) {
  Query q = Parse("ans() :- E(x, y), E(y, z), x != z.");
  Database db = GraphToDatabase(PathGraph(3));
  auto result = ApproxCountAnswers(q, db, TestOptions(3));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 1.0);

  Database empty(3);
  ASSERT_TRUE(empty.DeclareRelation("E", 2).ok());
  auto zero = ApproxCountAnswers(q, empty, TestOptions(4));
  ASSERT_TRUE(zero.ok());
  EXPECT_DOUBLE_EQ(zero->estimate, 0.0);
}

TEST(FptrasTest, NegatedAtomsSupported) {
  // Distinct ordered non-adjacent pairs (ECQ with negation).
  Query q = Parse("ans(x, y) :- V(x), V(y), !E(x, y), x != y.");
  Database db = GraphToDatabase(PathGraph(4));
  ASSERT_TRUE(db.DeclareRelation("V", 1).ok());
  for (Value v = 0; v < 4; ++v) ASSERT_TRUE(db.AddFact("V", {v}).ok());
  db.Canonicalize();
  const double exact =
      static_cast<double>(ExactCountAnswersBruteForce(q, db));
  auto result = ApproxCountAnswers(q, db, TestOptions(5));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, exact, 0.2 * exact + 0.5);
}

TEST(FptrasTest, RejectsInvalidParameters) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(2);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  ApproxOptions opts = TestOptions(1);
  opts.epsilon = 2.0;
  EXPECT_FALSE(ApproxCountAnswers(q, db, opts).ok());
}

TEST(FptrasTest, RejectsSignatureMismatch) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(2);
  EXPECT_FALSE(ApproxCountAnswers(q, db, TestOptions(1)).ok());
}

TEST(FptrasTest, EmptyUniverse) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(0);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  auto result = ApproxCountAnswers(q, db, TestOptions(6));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 0.0);
}

TEST(FptrasTest, FhwObjectiveForUnboundedArity) {
  // Theorem 13 regime: a large-arity acyclic (hyperpath) DCQ.
  Query q = Parse(
      "ans(a, b) :- R(a, b, c, d), S(c, d, e, f), a != b, e != f.");
  Rng rng(9);
  Database db = RandomDatabaseFor(q, 5, 0.3, rng);
  ApproxOptions opts = TestOptions(7, 0.15);
  opts.objective = WidthObjective::kFractionalHypertreewidth;
  const double exact =
      static_cast<double>(ExactCountAnswersBruteForce(q, db));
  auto result = ApproxCountAnswers(q, db, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, exact, 0.3 * exact + 1.0);
}

// End-to-end property: the FPTRAS lands within tolerance of brute force
// across random ECQs (small instances; exact phase often kicks in, which
// is fine -- that's part of the contract).
class FptrasAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(FptrasAccuracyTest, EstimateWithinTolerance) {
  Rng rng(GetParam() * 101 + 43);
  RandomQueryOptions qopts;
  qopts.min_vars = 2;
  qopts.max_vars = 4;
  qopts.max_atoms = 3;
  qopts.disequality_probability = 0.25;
  qopts.negated_probability = 0.2;
  Query q = RandomQuery(rng, qopts);
  Database db = RandomDatabaseFor(q, 5, 0.5, rng);
  const double exact =
      static_cast<double>(ExactCountAnswersBruteForce(q, db));
  auto result = ApproxCountAnswers(q, db, TestOptions(GetParam(), 0.12));
  ASSERT_TRUE(result.ok()) << q.ToString();
  if (exact == 0.0) {
    EXPECT_DOUBLE_EQ(result->estimate, 0.0) << q.ToString();
  } else {
    EXPECT_NEAR(result->estimate, exact, 0.25 * exact + 1e-9)
        << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FptrasAccuracyTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace cqcount
