#include "hypergraph/primal_graph.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(PrimalGraphTest, HyperedgeBecomesClique) {
  Hypergraph h(4);
  h.AddEdge({0, 1, 2});
  PrimalGraph g(h);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(3), 0);
}

TEST(PrimalGraphTest, AddEdgeIgnoresLoopsAndDuplicates) {
  PrimalGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 1);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 1);
}

TEST(PrimalGraphTest, FillInCountsMissingPairs) {
  // Star centre 0 with 3 leaves: eliminating 0 creates 3 fill edges.
  PrimalGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.FillIn(0), 3);
  EXPECT_EQ(g.FillIn(1), 0);
}

TEST(PrimalGraphTest, EliminationConnectsNeighbours) {
  PrimalGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  std::vector<Vertex> bag = g.Eliminate(0);
  EXPECT_EQ(bag, (std::vector<Vertex>{0, 1, 2}));
  EXPECT_TRUE(g.HasEdge(1, 2));  // Fill edge.
  EXPECT_TRUE(g.IsEliminated(0));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.Degree(0), 0);
}

TEST(PrimalGraphTest, NeighboursSorted) {
  PrimalGraph g(5);
  g.AddEdge(3, 1);
  g.AddEdge(3, 4);
  g.AddEdge(3, 0);
  EXPECT_EQ(g.Neighbours(3), (std::vector<Vertex>{0, 1, 4}));
}

}  // namespace
}  // namespace cqcount
