// Regression test for the historical const-mutation data race: the boxed
// Relation sorted lazily behind const accessors (`mutable` members), so
// concurrent Contains()/PrefixRange() readers raced on the sort. The flat
// storage canonicalises eagerly; after Canonicalize() every accessor is
// genuinely read-only. This test hammers a shared relation from many
// threads — under TSan (or the Debug CI job's asserts) any reintroduced
// lazy mutation fails loudly; without TSan it still cross-checks every
// concurrent read against single-threaded ground truth.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "relational/relation.h"
#include "util/random.h"

namespace cqcount {
namespace {

Relation BuildRelation(int arity, int universe, int rows, uint64_t seed) {
  Rng rng(seed);
  Relation r(arity);
  for (int i = 0; i < rows; ++i) {
    Value* dst = r.AppendRow();
    for (int k = 0; k < arity; ++k) {
      dst[k] = static_cast<Value>(rng.UniformInt(universe));
    }
  }
  r.Canonicalize();
  return r;
}

TEST(RelationConcurrencyTest, ConcurrentContainsReaders) {
  const int kArity = 3;
  const int kUniverse = 32;
  const Relation shared = BuildRelation(kArity, kUniverse, 20000, 99);

  // Ground truth, computed single-threaded before the readers start.
  std::vector<Tuple> probes;
  std::vector<bool> expected;
  Rng rng(7);
  for (int i = 0; i < 512; ++i) {
    Tuple t(kArity);
    for (int k = 0; k < kArity; ++k) {
      t[k] = static_cast<Value>(rng.UniformInt(kUniverse + 2));
    }
    expected.push_back(shared.Contains(t));
    probes.push_back(std::move(t));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    readers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        // Offset per thread so threads touch different probes at once.
        for (size_t i = 0; i < probes.size(); ++i) {
          const size_t at = (i + w * 61) % probes.size();
          if (shared.Contains(probes[at]) != expected[at]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(shared.canonical());
}

TEST(RelationConcurrencyTest, ConcurrentMixedReadPaths) {
  const Relation shared = BuildRelation(2, 64, 50000, 1234);
  const size_t expected_size = shared.size();

  // One reference prefix scan, single-threaded.
  uint64_t expected_sum = 0;
  for (Value v = 0; v < 64; ++v) {
    const auto [lo, hi] = shared.NarrowRange(0, shared.size(), 0, v);
    for (size_t i = lo; i < hi; ++i) expected_sum += shared.At(i, 1);
  }

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int w = 0; w < kThreads; ++w) {
    readers.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        if (shared.size() != expected_size) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        uint64_t sum = 0;
        for (Value v = 0; v < 64; ++v) {
          const auto [lo, hi] = shared.NarrowRange(0, shared.size(), 0, v);
          for (size_t i = lo; i < hi; ++i) sum += shared.At(i, 1);
        }
        if (sum != expected_sum) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        // Full scans via views interleaved with the binary searches.
        size_t rows = 0;
        for (TupleView t : shared) {
          (void)t;
          ++rows;
        }
        if (rows != expected_size) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace cqcount
