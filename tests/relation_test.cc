#include "relational/relation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace cqcount {
namespace {

// ---------------------------------------------------------------------------
// Boxed reference model: the pre-flat-storage semantics (sorted,
// duplicate-free std::vector<Tuple>), used to cross-validate the flat
// implementation on randomized inputs.
// ---------------------------------------------------------------------------
struct BoxedRelation {
  int arity = 0;
  std::vector<Tuple> tuples;

  void Canonicalize() {
    std::sort(tuples.begin(), tuples.end());
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  }
  bool Contains(const Tuple& t) const {
    return std::binary_search(tuples.begin(), tuples.end(), t);
  }
  std::pair<size_t, size_t> PrefixRange(const Tuple& prefix, size_t from,
                                        size_t to) const {
    auto cmp_lo = [&](const Tuple& t, const Tuple& p) {
      return std::lexicographical_compare(
          t.begin(), t.begin() + std::min(t.size(), p.size()), p.begin(),
          p.end());
    };
    auto lo = std::lower_bound(tuples.begin() + from, tuples.begin() + to,
                               prefix, cmp_lo);
    auto cmp_hi = [&](const Tuple& p, const Tuple& t) {
      return std::lexicographical_compare(
          p.begin(), p.end(), t.begin(),
          t.begin() + std::min(t.size(), p.size()));
    };
    auto hi = std::upper_bound(lo, tuples.begin() + to, prefix, cmp_hi);
    return {static_cast<size_t>(lo - tuples.begin()),
            static_cast<size_t>(hi - tuples.begin())};
  }
  BoxedRelation Project(const std::vector<int>& positions) const {
    BoxedRelation out;
    out.arity = static_cast<int>(positions.size());
    for (const Tuple& t : tuples) {
      Tuple p;
      for (int pos : positions) p.push_back(t[pos]);
      out.tuples.push_back(std::move(p));
    }
    out.Canonicalize();
    return out;
  }
};

bool SameContents(const Relation& flat, const BoxedRelation& boxed) {
  if (flat.size() != boxed.tuples.size()) return false;
  for (size_t i = 0; i < flat.size(); ++i) {
    if (!(flat[i] == boxed.tuples[i])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Basic semantics.
// ---------------------------------------------------------------------------
TEST(RelationTest, AddAndContains) {
  Relation r(2);
  r.Add({1, 2});
  r.Add({0, 5});
  r.Canonicalize();
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_TRUE(r.Contains({0, 5}));
  EXPECT_FALSE(r.Contains({2, 1}));
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, DuplicatesRemoved) {
  Relation r(1);
  r.Add({3});
  r.Add({3});
  r.Add({1});
  r.Canonicalize();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (Tuple{1}));
  EXPECT_EQ(r[1], (Tuple{3}));
}

TEST(RelationTest, TuplesSortedLexicographically) {
  Relation r(2);
  r.Add({2, 0});
  r.Add({0, 9});
  r.Add({2, 1});
  r.Add({0, 1});
  r.Canonicalize();
  EXPECT_EQ(r[0], (Tuple{0, 1}));
  EXPECT_EQ(r[1], (Tuple{0, 9}));
  EXPECT_EQ(r[2], (Tuple{2, 0}));
  EXPECT_EQ(r[3], (Tuple{2, 1}));
}

TEST(RelationTest, CanonicalizeIsIdempotentAndTracked) {
  Relation r(1);
  EXPECT_TRUE(r.canonical());  // Empty relations are trivially canonical.
  r.Add({4});
  EXPECT_FALSE(r.canonical());
  r.Canonicalize();
  EXPECT_TRUE(r.canonical());
  r.Canonicalize();  // No-op.
  EXPECT_TRUE(r.canonical());
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, FlatBufferIsArityStrided) {
  Relation r(3);
  r.Add({5, 6, 7});
  r.Add({1, 2, 3});
  r.Canonicalize();
  const std::vector<Value> expected = {1, 2, 3, 5, 6, 7};
  EXPECT_EQ(r.flat(), expected);
  EXPECT_EQ(r.At(1, 2), 7u);
}

TEST(RelationTest, PrefixRange) {
  Relation r(2);
  for (Value a : {0u, 1u, 1u, 2u}) {
    static Value b = 0;
    r.Add({a, b++});
  }
  r.Add({1, 7});
  r.Canonicalize();
  auto [lo, hi] = r.PrefixRange({1}, 0, r.size());
  // Tuples with first component 1.
  for (size_t i = lo; i < hi; ++i) {
    EXPECT_EQ(r[i][0], 1u);
  }
  EXPECT_EQ(hi - lo, 3u);
  auto [lo2, hi2] = r.PrefixRange({9}, 0, r.size());
  EXPECT_EQ(lo2, hi2);
}

TEST(RelationTest, NarrowRangeDescendsTrieLevels) {
  Relation r(2);
  r.Add({1, 3});
  r.Add({1, 5});
  r.Add({1, 5});
  r.Add({2, 0});
  r.Canonicalize();
  // Level 0: rows with column 0 == 1.
  auto [lo, hi] = r.NarrowRange(0, r.size(), 0, 1);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 2u);
  // Level 1 within that range: rows with column 1 == 5.
  auto [lo2, hi2] = r.NarrowRange(lo, hi, 1, 5);
  EXPECT_EQ(hi2 - lo2, 1u);
  EXPECT_EQ(r[lo2], (Tuple{1, 5}));
}

TEST(RelationTest, IndexOfFindsCanonicalPosition) {
  Relation r(2);
  r.Add({3, 3});
  r.Add({0, 1});
  r.Canonicalize();
  EXPECT_EQ(r.IndexOf(AsView(Tuple{0, 1})), 0);
  EXPECT_EQ(r.IndexOf(AsView(Tuple{3, 3})), 1);
  EXPECT_EQ(r.IndexOf(AsView(Tuple{1, 1})), -1);
}

TEST(RelationTest, ProjectDeduplicates) {
  Relation r(2);
  r.Add({1, 5});
  r.Add({1, 6});
  r.Add({2, 5});
  r.Canonicalize();
  Relation p = r.Project({0});
  EXPECT_EQ(p.arity(), 1);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.Contains({1}));
  EXPECT_TRUE(p.Contains({2}));
}

TEST(RelationTest, ProjectReordersColumns) {
  Relation r(3);
  r.Add({1, 2, 3});
  r.Canonicalize();
  Relation p = r.Project({2, 0});
  EXPECT_TRUE(p.Contains({3, 1}));
}

TEST(RelationTest, ReorderIsFullPermutation) {
  Relation r(2);
  r.Add({1, 9});
  r.Canonicalize();
  Relation swapped = r.Reorder({1, 0});
  EXPECT_TRUE(swapped.Contains({9, 1}));
}

TEST(RelationTest, Equality) {
  Relation a(1);
  a.Add({1});
  a.Add({2});
  a.Canonicalize();
  Relation b(1);
  b.Add({2});
  b.Add({1});
  b.Add({1});
  b.Canonicalize();
  EXPECT_EQ(a, b);
}

TEST(RelationTest, AdoptFlatRowsConstructor) {
  Relation r(2, {4, 4, 0, 1, 4, 4});
  EXPECT_TRUE(r.canonical());
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (Tuple{0, 1}));
  EXPECT_EQ(r[1], (Tuple{4, 4}));
}

TEST(RelationTest, AppendRowWritesInPlace) {
  Relation r(2);
  Value* row = r.AppendRow();
  row[0] = 7;
  row[1] = 8;
  r.Canonicalize();
  EXPECT_TRUE(r.Contains({7, 8}));
}

// ---------------------------------------------------------------------------
// TupleView semantics.
// ---------------------------------------------------------------------------
TEST(TupleViewTest, ComparisonAndMaterialize) {
  const Tuple a = {1, 2, 3};
  const Tuple b = {1, 2, 4};
  EXPECT_TRUE(AsView(a) < AsView(b));
  EXPECT_FALSE(AsView(b) < AsView(a));
  EXPECT_TRUE(AsView(a) == a);
  EXPECT_TRUE(AsView(a) != AsView(b));
  EXPECT_EQ(MaterializeTuple(AsView(a)), a);
}

TEST(TupleViewTest, PrefixOrderingMatchesLexicographic) {
  const Tuple shorter = {1, 2};
  const Tuple longer = {1, 2, 0};
  EXPECT_TRUE(AsView(shorter) < AsView(longer));
  EXPECT_FALSE(AsView(longer) < AsView(shorter));
}

// ---------------------------------------------------------------------------
// Edge cases: empty relations, arity 1, arity 0.
// ---------------------------------------------------------------------------
TEST(RelationEdgeCaseTest, EmptyRelation) {
  Relation r(3);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.canonical());
  EXPECT_EQ(r.size(), 0u);
  r.Canonicalize();
  EXPECT_FALSE(r.Contains({0, 0, 0}));
  auto [lo, hi] = r.PrefixRange({1}, 0, r.size());
  EXPECT_EQ(lo, hi);
  EXPECT_TRUE(r.Project({0}).empty());
  int visited = 0;
  for (TupleView t : r) {
    (void)t;
    ++visited;
  }
  EXPECT_EQ(visited, 0);
}

TEST(RelationEdgeCaseTest, ArityOneBehavesLikeASet) {
  Relation r(1);
  for (Value v : {5u, 1u, 5u, 9u, 1u}) r.Add({v});
  r.Canonicalize();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], (Tuple{1}));
  EXPECT_EQ(r[2], (Tuple{9}));
  EXPECT_TRUE(r.Contains({5}));
  EXPECT_FALSE(r.Contains({2}));
  auto [lo, hi] = r.NarrowRange(0, r.size(), 0, 5);
  EXPECT_EQ(hi - lo, 1u);
}

TEST(RelationEdgeCaseTest, ArityZeroHoldsAtMostTheEmptyTuple) {
  // Bag solutions of an empty bag: either {()} or {}.
  Relation r(0);
  EXPECT_TRUE(r.empty());
  r.AppendRow();
  r.AppendRow();  // Duplicate empty tuple.
  r.Canonicalize();
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].size(), 0u);
  EXPECT_GE(r.IndexOf(r[0]), 0);
  int visited = 0;
  for (TupleView t : r) {
    EXPECT_TRUE(t.empty());
    ++visited;
  }
  EXPECT_EQ(visited, 1);
}

// ---------------------------------------------------------------------------
// FlatTuples (the unordered flat sibling used by DP tables and sketches).
// ---------------------------------------------------------------------------
TEST(FlatTuplesTest, PushAndView) {
  FlatTuples rows(2);
  rows.PushBack(AsView(Tuple{3, 4}));
  Value* raw = rows.AppendRow();
  raw[0] = 1;
  raw[1] = 2;
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Tuple{3, 4}));
  EXPECT_EQ(rows.back(), (Tuple{1, 2}));
}

TEST(FlatTuplesTest, WidthZeroCountsRows) {
  FlatTuples rows(0);
  rows.AppendRow();
  rows.AppendRow();
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[1].empty());
}

TEST(FlatTuplesTest, LowerBoundOnSortedRows) {
  FlatTuples rows(2);
  rows.PushBack(AsView(Tuple{0, 1}));
  rows.PushBack(AsView(Tuple{1, 0}));
  rows.PushBack(AsView(Tuple{1, 2}));
  const Tuple probe = {1, 0};
  EXPECT_EQ(rows.LowerBound(probe.data()), 1u);
  const Tuple missing = {1, 1};
  EXPECT_EQ(rows.LowerBound(missing.data()), 2u);
  const Tuple beyond = {9, 9};
  EXPECT_EQ(rows.LowerBound(beyond.data()), 3u);
}

// ---------------------------------------------------------------------------
// Property tests: flat storage matches the boxed reference semantics.
// ---------------------------------------------------------------------------
class RelationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RelationPropertyTest, MatchesBoxedSemantics) {
  Rng rng(GetParam() * 7919 + 4242);
  const int arity = 1 + static_cast<int>(rng.UniformInt(5));
  const int universe = 1 + static_cast<int>(rng.UniformInt(6));
  const int rows = static_cast<int>(rng.UniformInt(60));

  Relation flat(arity);
  BoxedRelation boxed;
  boxed.arity = arity;
  for (int i = 0; i < rows; ++i) {
    Tuple t(arity);
    for (int k = 0; k < arity; ++k) {
      t[k] = static_cast<Value>(rng.UniformInt(universe));
    }
    flat.Add(t);
    boxed.tuples.push_back(std::move(t));
  }
  flat.Canonicalize();
  boxed.Canonicalize();

  // Sortedness + dedup agree.
  ASSERT_TRUE(SameContents(flat, boxed));

  // Contains agrees on random probes.
  for (int probe = 0; probe < 40; ++probe) {
    Tuple t(arity);
    for (int k = 0; k < arity; ++k) {
      t[k] = static_cast<Value>(rng.UniformInt(universe + 1));
    }
    EXPECT_EQ(flat.Contains(t), boxed.Contains(t));
  }

  // PrefixRange agrees for every prefix length on random prefixes,
  // including degenerate prefixes longer than the arity.
  for (int len = 0; len <= arity + 2; ++len) {
    Tuple prefix(len);
    for (int k = 0; k < len; ++k) {
      prefix[k] = static_cast<Value>(rng.UniformInt(universe + 1));
    }
    EXPECT_EQ(flat.PrefixRange(prefix, 0, flat.size()),
              boxed.PrefixRange(prefix, 0, boxed.tuples.size()));
  }

  // Project/Reorder agree on a random position multiset.
  const int proj_width = 1 + static_cast<int>(rng.UniformInt(arity));
  std::vector<int> positions(proj_width);
  for (int k = 0; k < proj_width; ++k) {
    positions[k] = static_cast<int>(rng.UniformInt(arity));
  }
  EXPECT_TRUE(SameContents(flat.Project(positions), boxed.Project(positions)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationPropertyTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace cqcount
