#include "relational/relation.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(RelationTest, AddAndContains) {
  Relation r(2);
  r.Add({1, 2});
  r.Add({0, 5});
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_TRUE(r.Contains({0, 5}));
  EXPECT_FALSE(r.Contains({2, 1}));
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationTest, DuplicatesRemoved) {
  Relation r(1);
  r.Add({3});
  r.Add({3});
  r.Add({1});
  EXPECT_EQ(r.tuples().size(), 2u);
  EXPECT_EQ(r.tuples()[0], (Tuple{1}));
  EXPECT_EQ(r.tuples()[1], (Tuple{3}));
}

TEST(RelationTest, TuplesSortedLexicographically) {
  Relation r(2);
  r.Add({2, 0});
  r.Add({0, 9});
  r.Add({2, 1});
  r.Add({0, 1});
  const auto& t = r.tuples();
  EXPECT_EQ(t[0], (Tuple{0, 1}));
  EXPECT_EQ(t[1], (Tuple{0, 9}));
  EXPECT_EQ(t[2], (Tuple{2, 0}));
  EXPECT_EQ(t[3], (Tuple{2, 1}));
}

TEST(RelationTest, PrefixRange) {
  Relation r(2);
  for (Value a : {0u, 1u, 1u, 2u}) {
    static Value b = 0;
    r.Add({a, b++});
  }
  r.Add({1, 7});
  (void)r.tuples();
  auto [lo, hi] = r.PrefixRange({1}, 0, r.size());
  // Tuples with first component 1.
  for (size_t i = lo; i < hi; ++i) {
    EXPECT_EQ(r.tuples()[i][0], 1u);
  }
  EXPECT_EQ(hi - lo, 3u);
  auto [lo2, hi2] = r.PrefixRange({9}, 0, r.size());
  EXPECT_EQ(lo2, hi2);
}

TEST(RelationTest, ProjectDeduplicates) {
  Relation r(2);
  r.Add({1, 5});
  r.Add({1, 6});
  r.Add({2, 5});
  Relation p = r.Project({0});
  EXPECT_EQ(p.arity(), 1);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.Contains({1}));
  EXPECT_TRUE(p.Contains({2}));
}

TEST(RelationTest, ProjectReordersColumns) {
  Relation r(3);
  r.Add({1, 2, 3});
  Relation p = r.Project({2, 0});
  EXPECT_TRUE(p.Contains({3, 1}));
}

TEST(RelationTest, ReorderIsFullPermutation) {
  Relation r(2);
  r.Add({1, 9});
  Relation swapped = r.Reorder({1, 0});
  EXPECT_TRUE(swapped.Contains({9, 1}));
}

TEST(RelationTest, Equality) {
  Relation a(1);
  a.Add({1});
  a.Add({2});
  Relation b(1);
  b.Add({2});
  b.Add({1});
  b.Add({1});
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cqcount
