// Property tests for CanonicalQueryShape: the plan-cache key must be
// invariant under query isomorphism (variable renamings, atom and
// disequality reorderings) and must separate structurally distinct
// queries — including ones differing only in a disequality or a negation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engine/plan.h"
#include "query/parser.h"
#include "query/query.h"
#include "test_util.h"
#include "util/random.h"

namespace cqcount {
namespace {

using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

// Fisher-Yates over [0, n) with the repo's deterministic Rng.
std::vector<int> RandomPermutation(int n, Rng& rng) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[static_cast<int>(rng.UniformInt(i + 1))]);
  }
  return perm;
}

// An isomorphic presentation of `q`: variables renumbered by a random
// free-prefix-preserving permutation (free variables must stay free), and
// atoms appended in a random order. `perm[v]` is the new index of old
// variable v.
Query RandomIsomorphicPresentation(const Query& q, Rng& rng) {
  const int n = q.num_vars();
  const int f = q.num_free();
  std::vector<int> free_perm = RandomPermutation(f, rng);
  std::vector<int> bound_perm = RandomPermutation(n - f, rng);
  std::vector<int> perm(n);
  for (int v = 0; v < f; ++v) perm[v] = free_perm[v];
  for (int v = f; v < n; ++v) perm[v] = f + bound_perm[v - f];

  std::vector<int> inverse(n);
  for (int v = 0; v < n; ++v) inverse[perm[v]] = v;

  Query out;
  for (int i = 0; i < n; ++i) {
    out.AddVariable("w" + std::to_string(inverse[i]));
  }
  out.SetNumFree(f);

  std::vector<size_t> atom_order(q.atoms().size());
  for (size_t a = 0; a < atom_order.size(); ++a) atom_order[a] = a;
  for (size_t a = atom_order.size(); a > 1; --a) {
    std::swap(atom_order[a - 1], atom_order[rng.UniformInt(a)]);
  }
  for (size_t a : atom_order) {
    const Atom& atom = q.atoms()[a];
    Atom mapped;
    mapped.relation = atom.relation;
    mapped.negated = atom.negated;
    for (int v : atom.vars) mapped.vars.push_back(perm[v]);
    out.AddAtom(std::move(mapped));
  }

  std::vector<size_t> diseq_order(q.disequalities().size());
  for (size_t d = 0; d < diseq_order.size(); ++d) diseq_order[d] = d;
  for (size_t d = diseq_order.size(); d > 1; --d) {
    std::swap(diseq_order[d - 1], diseq_order[rng.UniformInt(d)]);
  }
  for (size_t d : diseq_order) {
    const Disequality& diseq = q.disequalities()[d];
    out.AddDisequality(perm[diseq.lhs], perm[diseq.rhs]);
  }
  return out;
}

TEST(CanonicalShapePropertyTest, IsomorphicPresentationsShareOneKey) {
  Rng rng(0xA11CE);
  RandomQueryOptions opts;
  opts.max_vars = 6;
  opts.max_atoms = 5;
  opts.negated_probability = 0.2;
  opts.disequality_probability = 0.2;
  for (int trial = 0; trial < 200; ++trial) {
    const Query q = RandomQuery(rng, opts);
    const CanonicalShape original = CanonicalQueryShape(q);
    for (int presentation = 0; presentation < 4; ++presentation) {
      const Query renamed = RandomIsomorphicPresentation(q, rng);
      const CanonicalShape shape = CanonicalQueryShape(renamed);
      ASSERT_EQ(shape.key, original.key)
          << "trial " << trial << "\n  q: " << q.ToString()
          << "\n  renamed: " << renamed.ToString();
    }
  }
}

TEST(CanonicalShapePropertyTest, CanonicalMappingSendsFreeToFree) {
  Rng rng(0xB0B);
  for (int trial = 0; trial < 100; ++trial) {
    const Query q = RandomQuery(rng);
    const CanonicalShape shape = CanonicalQueryShape(q);
    ASSERT_EQ(static_cast<int>(shape.to_canonical.size()), q.num_vars());
    std::set<int> images;
    for (int v = 0; v < q.num_vars(); ++v) {
      images.insert(shape.to_canonical[v]);
      if (v < q.num_free()) {
        EXPECT_LT(shape.to_canonical[v], q.num_free()) << q.ToString();
      }
    }
    // A permutation: all images distinct and in range.
    EXPECT_EQ(static_cast<int>(images.size()), q.num_vars());
  }
}

TEST(CanonicalShapePropertyTest, AddedDisequalityChangesTheKey) {
  Rng rng(0xD15EA5E);
  int checked = 0;
  for (int trial = 0; trial < 100; ++trial) {
    Query q = RandomQuery(rng);
    if (q.num_vars() < 2) continue;
    const std::string before = CanonicalQueryShape(q).key;
    // Add a disequality not already present.
    bool added = false;
    for (int u = 0; u < q.num_vars() && !added; ++u) {
      for (int w = u + 1; w < q.num_vars() && !added; ++w) {
        const size_t count_before = q.disequalities().size();
        q.AddDisequality(u, w);
        added = q.disequalities().size() > count_before;
      }
    }
    if (!added) continue;
    ++checked;
    EXPECT_NE(CanonicalQueryShape(q).key, before) << q.ToString();
  }
  EXPECT_GT(checked, 50);
}

TEST(CanonicalShapePropertyTest, FlippedNegationChangesTheKey) {
  Rng rng(0xF11B);
  for (int trial = 0; trial < 100; ++trial) {
    Query q = RandomQuery(rng);
    const std::string before = CanonicalQueryShape(q).key;
    // Rebuild with the first atom's polarity flipped.
    Query flipped;
    for (int v = 0; v < q.num_vars(); ++v) flipped.AddVariable(q.var_name(v));
    flipped.SetNumFree(q.num_free());
    for (size_t a = 0; a < q.atoms().size(); ++a) {
      Atom atom = q.atoms()[a];
      if (a == 0) atom.negated = !atom.negated;
      flipped.AddAtom(std::move(atom));
    }
    for (const Disequality& d : q.disequalities()) {
      flipped.AddDisequality(d.lhs, d.rhs);
    }
    EXPECT_NE(CanonicalQueryShape(flipped).key, before) << q.ToString();
  }
}

TEST(CanonicalShapePropertyTest, StructurallyDistinctHandPicks) {
  // Pairwise-distinct shapes, several differing only in one disequality
  // or one negation.
  const char* queries[] = {
      "ans(x) :- F(x, y), F(x, z).",
      "ans(x) :- F(x, y), F(x, z), y != z.",
      "ans(x) :- F(x, y), F(x, z), x != y.",
      "ans(x) :- F(x, y), !F(x, z).",
      "ans(x, y) :- F(x, y).",
      "ans(x, y) :- !F(x, y).",
      "ans(x, y) :- F(x, y), x != y.",
      "ans(x) :- F(x, x).",
      "ans() :- F(x, y).",
  };
  std::set<std::string> keys;
  for (const char* text : queries) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    const auto [it, inserted] = keys.insert(CanonicalQueryShape(*q).key);
    EXPECT_TRUE(inserted) << "key collision at: " << text;
  }
}

}  // namespace
}  // namespace cqcount
