#include "engine/strategy_executor.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "app/graph_gen.h"
#include "app/workload.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "query/parser.h"

namespace cqcount {
namespace {

struct Fixture {
  Query query;
  Database db;
  CanonicalShape shape;
  QueryPlan plan;

  Fixture(const std::string& text, Database database)
      : db(std::move(database)) {
    auto parsed = ParseQuery(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    query = *parsed;
    shape = CanonicalQueryShape(query);
    plan = BuildQueryPlan(query, shape, db, PlanOptions{});
  }

  ExecContext Context(double epsilon = 0.2, double delta = 0.2,
                      uint64_t seed = 0xFEEDULL) const {
    ExecContext ctx;
    ctx.query = &query;
    ctx.db = &db;
    ctx.plan = &plan;
    ctx.shape = &shape;
    ctx.budget = {epsilon, delta, seed};
    return ctx;
  }
};

Database Social(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  return SocialNetworkDb(n, 5.0, 0.5, rng);
}

TEST(ExecutorRegistryTest, DefaultRegistersAllFiveStrategies) {
  const ExecutorRegistry& registry = ExecutorRegistry::Default();
  const Strategy all[] = {Strategy::kExact, Strategy::kFptrasTreewidth,
                          Strategy::kFptrasFhw, Strategy::kAutomataFpras,
                          Strategy::kSampler};
  for (Strategy strategy : all) {
    const StrategyExecutor* executor = registry.Find(strategy);
    ASSERT_NE(executor, nullptr) << StrategyName(strategy);
    EXPECT_EQ(executor->strategy(), strategy);
  }
  EXPECT_EQ(registry.RegisteredStrategies().size(), 5u);
}

TEST(ExecutorRegistryTest, RegisterReplacesByStrategy) {
  class StubExecutor : public StrategyExecutor {
   public:
    Strategy strategy() const override { return Strategy::kExact; }
    StatusOr<ExecOutcome> Execute(const ExecContext&) const override {
      ExecOutcome outcome;
      outcome.estimate = 42.0;
      return outcome;
    }
  };
  ExecutorRegistry registry;
  registry.Register(std::make_unique<StubExecutor>());
  registry.Register(std::make_unique<StubExecutor>());
  EXPECT_EQ(registry.RegisteredStrategies().size(), 1u);
  auto outcome = registry.Find(Strategy::kExact)->Execute(ExecContext{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->estimate, 42.0);
}

TEST(StrategyExecutorTest, ExactMatchesBruteForce) {
  Fixture f("ans(x) :- F(x, y), F(x, z), y != z.", Social(30, 1));
  auto outcome =
      ExecutorRegistry::Default().Find(Strategy::kExact)->Execute(f.Context());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->exact);
  EXPECT_DOUBLE_EQ(outcome->estimate,
                   static_cast<double>(ExactCountAnswersBruteForce(f.query, f.db)));
}

TEST(StrategyExecutorTest, FptrasMatchesDirectPipelineBitwise) {
  Fixture f("ans(x) :- F(x, y), F(x, z), y != z.", Social(120, 2));
  auto outcome = ExecutorRegistry::Default()
                     .Find(Strategy::kFptrasTreewidth)
                     ->Execute(f.Context());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  ApproxOptions direct;
  direct.epsilon = 0.2;
  direct.delta = 0.2;
  direct.seed = 0xFEEDULL;
  direct.objective = f.plan.objective;
  FWidthResult instantiated = f.plan.decomposition;
  instantiated.decomposition = InstantiateDecomposition(
      f.plan.decomposition.decomposition, f.shape.to_canonical);
  instantiated.order.clear();
  direct.precomputed_decomposition = &instantiated;
  auto via_pipeline = ApproxCountAnswers(f.query, f.db, direct);
  ASSERT_TRUE(via_pipeline.ok());
  // Same budget, same seed, same decomposition: the executor is a pure
  // adapter, so the estimate is bitwise identical.
  EXPECT_EQ(outcome->estimate, via_pipeline->estimate);
  EXPECT_EQ(outcome->exact, via_pipeline->exact);
}

TEST(StrategyExecutorTest, AutomataFprasRunsOnPureCq) {
  Fixture f("ans(x, y) :- F(x, y).", Social(40, 3));
  auto outcome = ExecutorRegistry::Default()
                     .Find(Strategy::kAutomataFpras)
                     ->Execute(f.Context(0.15, 0.2));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const double exact =
      static_cast<double>(ExactCountAnswersBruteForce(f.query, f.db));
  EXPECT_GT(outcome->estimate, 0.0);
  // Loose sanity bound: the FPRAS ran with epsilon 0.15; allow slack for
  // the delta failure mass instead of asserting the exact interval.
  EXPECT_NEAR(outcome->estimate, exact, 0.5 * exact + 1.0);
}

TEST(StrategyExecutorTest, SamplerEstimatesThroughJvvMachinery) {
  Fixture f("ans(x) :- F(x, y).", Social(25, 4));
  auto outcome = ExecutorRegistry::Default()
                     .Find(Strategy::kSampler)
                     ->Execute(f.Context(0.3, 0.3));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const double exact =
      static_cast<double>(ExactCountAnswersBruteForce(f.query, f.db));
  EXPECT_NEAR(outcome->estimate, exact, 0.5 * exact + 1.0);
}

TEST(StrategyExecutorTest, SamplerRejectsQueriesWithoutFreeVariables) {
  Fixture f("ans() :- F(x, y).", Social(25, 5));
  auto outcome = ExecutorRegistry::Default()
                     .Find(Strategy::kSampler)
                     ->Execute(f.Context());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cqcount
