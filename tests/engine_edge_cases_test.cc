// Engine edge-case regressions through the full Count path: arity-0
// atoms, empty databases, free-variable-less heads, and dedup-degenerate
// queries. Each case exercises parse -> compile (passes + Gaifman split)
// -> plan -> execute end to end.
#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"

namespace cqcount {
namespace {

// Universe 10; F = {(0,1), (1,2), (2,0)}; Adult = {0}; P() holds, Q()
// does not.
Database SmallDb() {
  Database db(10);
  EXPECT_TRUE(db.DeclareRelation("F", 2).ok());
  EXPECT_TRUE(db.DeclareRelation("Adult", 1).ok());
  EXPECT_TRUE(db.DeclareRelation("P", 0).ok());
  EXPECT_TRUE(db.DeclareRelation("Q", 0).ok());
  EXPECT_TRUE(db.AddFact("F", {0, 1}).ok());
  EXPECT_TRUE(db.AddFact("F", {1, 2}).ok());
  EXPECT_TRUE(db.AddFact("F", {2, 0}).ok());
  EXPECT_TRUE(db.AddFact("Adult", {0}).ok());
  EXPECT_TRUE(db.AddFact("P", {}).ok());
  db.Canonicalize();
  return db;
}

class EngineEdgeCasesTest : public ::testing::Test {
 protected:
  EngineEdgeCasesTest() {
    EXPECT_TRUE(engine_.RegisterDatabase("db", SmallDb()).ok());
  }
  CountingEngine engine_;
};

TEST_F(EngineEdgeCasesTest, TrueNullaryGuardIsTransparent) {
  auto with_guard = engine_.Count("ans(x) :- F(x, y), P().", "db");
  ASSERT_TRUE(with_guard.ok()) << with_guard.status().ToString();
  auto without = engine_.Count("ans(x) :- F(x, y).", "db");
  ASSERT_TRUE(without.ok());
  EXPECT_DOUBLE_EQ(with_guard->estimate, without->estimate);
  EXPECT_DOUBLE_EQ(with_guard->estimate, 3.0);
  EXPECT_EQ(with_guard->guards_evaluated, 1);
  ASSERT_EQ(with_guard->components.size(), 1u);
  EXPECT_TRUE(with_guard->components[0].executed);
  // The guard is lifted before planning: both queries share one shape,
  // one cached plan.
  EXPECT_EQ(with_guard->shape_key, without->shape_key);
}

TEST_F(EngineEdgeCasesTest, FalseNullaryGuardZeroesTheCount) {
  auto result = engine_.Count("ans(x) :- F(x, y), Q().", "db");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->estimate, 0.0);
  EXPECT_TRUE(result->exact);
  // The component is still planned (provenance) even though the false
  // guard short-circuits execution — and is flagged as not executed.
  ASSERT_EQ(result->num_components, 1);
  EXPECT_FALSE(result->components[0].executed);
}

TEST_F(EngineEdgeCasesTest, NegatedNullaryGuard) {
  auto holds = engine_.Count("ans(x) :- F(x, y), !Q().", "db");
  ASSERT_TRUE(holds.ok());
  EXPECT_DOUBLE_EQ(holds->estimate, 3.0);
  auto fails = engine_.Count("ans(x) :- F(x, y), !P().", "db");
  ASSERT_TRUE(fails.ok());
  EXPECT_DOUBLE_EQ(fails->estimate, 0.0);
  EXPECT_TRUE(fails->exact);
}

TEST_F(EngineEdgeCasesTest, PureGuardQueryCountsTheEmptyTuple) {
  // No variables at all: |Ans| is 1 (the empty assignment) iff every
  // guard holds.
  auto yes = engine_.Count("ans() :- P().", "db");
  ASSERT_TRUE(yes.ok()) << yes.status().ToString();
  EXPECT_DOUBLE_EQ(yes->estimate, 1.0);
  EXPECT_TRUE(yes->exact);
  EXPECT_EQ(yes->num_components, 0);

  auto no = engine_.Count("ans() :- Q().", "db");
  ASSERT_TRUE(no.ok());
  EXPECT_DOUBLE_EQ(no->estimate, 0.0);
  EXPECT_TRUE(no->exact);
}

TEST_F(EngineEdgeCasesTest, HeadWithoutFreeVariablesIsBoolean) {
  auto satisfiable = engine_.Count("ans() :- F(x, y).", "db");
  ASSERT_TRUE(satisfiable.ok()) << satisfiable.status().ToString();
  EXPECT_DOUBLE_EQ(satisfiable->estimate, 1.0);
  ASSERT_EQ(satisfiable->num_components, 1);
  EXPECT_TRUE(satisfiable->components[0].existential);

  // No tuple satisfies F(x, x) in the 3-cycle.
  auto unsatisfiable = engine_.Count("ans() :- F(x, x).", "db");
  ASSERT_TRUE(unsatisfiable.ok());
  EXPECT_DOUBLE_EQ(unsatisfiable->estimate, 0.0);
}

TEST_F(EngineEdgeCasesTest, WhollyDuplicatedAtomCollapses) {
  auto dup = engine_.Count("ans(x) :- F(x, y), F(x, y).", "db");
  ASSERT_TRUE(dup.ok()) << dup.status().ToString();
  EXPECT_DOUBLE_EQ(dup->estimate, 3.0);
  EXPECT_EQ(dup->atoms_deduped, 1);

  // Dedup-reducible queries share the reduced shape's cached plan.
  auto simple = engine_.Count("ans(x) :- F(x, y).", "db");
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(simple->shape_key, dup->shape_key);
  EXPECT_TRUE(simple->plan_cache_hit);
  EXPECT_EQ(engine_.CacheStats().insertions, 1u);
}

TEST_F(EngineEdgeCasesTest, EmptyUniverseDatabase) {
  Database empty(0);
  ASSERT_TRUE(empty.DeclareRelation("F", 2).ok());
  empty.Canonicalize();
  ASSERT_TRUE(engine_.RegisterDatabase("void", std::move(empty)).ok());
  auto result = engine_.Count("ans(x) :- F(x, y).", "void");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->estimate, 0.0);
}

TEST_F(EngineEdgeCasesTest, EmptyRelationGivesZero) {
  Database db(10);
  ASSERT_TRUE(db.DeclareRelation("F", 2).ok());
  db.Canonicalize();
  ASSERT_TRUE(engine_.RegisterDatabase("norows", std::move(db)).ok());
  auto result = engine_.Count("ans(x) :- F(x, y).", "norows");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 0.0);
  auto boolean = engine_.Count("ans() :- F(x, y).", "norows");
  ASSERT_TRUE(boolean.ok());
  EXPECT_DOUBLE_EQ(boolean->estimate, 0.0);
}

TEST_F(EngineEdgeCasesTest, ExplainHandlesGuardsAndExistentials) {
  auto explanation =
      engine_.Explain("ans(x) :- F(x, y), F(u, v), u != v, P().", "db");
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  EXPECT_EQ(explanation->components.size(), 2u);
  EXPECT_EQ(explanation->guards.size(), 1u);
  EXPECT_FALSE(explanation->components[0].existential);
  EXPECT_TRUE(explanation->components[1].existential);
  EXPECT_NE(explanation->text.find("guard: P()"), std::string::npos);
  EXPECT_NE(explanation->text.find("components: 2"), std::string::npos);
  EXPECT_NE(explanation->text.find("existential"), std::string::npos);
}

TEST_F(EngineEdgeCasesTest, ForceExactCoversEveryEdgeCase) {
  for (const char* text :
       {"ans(x) :- F(x, y), P().", "ans() :- F(x, y).",
        "ans(x) :- F(x, y), F(x, y).", "ans(x) :- F(x, y), F(u, v), u != v."}) {
    auto result = engine_.CountExact(text, "db");
    ASSERT_TRUE(result.ok()) << text << ": " << result.status().ToString();
    EXPECT_TRUE(result->exact) << text;
    EXPECT_EQ(result->strategy, Strategy::kExact) << text;
  }
}

}  // namespace
}  // namespace cqcount
