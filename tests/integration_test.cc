// Cross-module integration tests tying the paper's storyline together:
// the FPTRAS (Theorem 5), the FPRAS (Theorem 16), the Hamilton-path
// encoding (Observation 10) and the intro's running example all agree
// with ground truth and with each other.
#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "app/workload.h"
#include "automata/fpras.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "counting/sampler.h"
#include "query/parser.h"

namespace cqcount {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(IntegrationTest, FptrasAndFprasAgreeOnPureCq) {
  Query q = Parse("ans(x, z) :- E(x, y), E(y, z).");
  Rng rng(3);
  Database db = GraphToDatabase(ErdosRenyi(12, 0.3, rng));
  const double exact =
      static_cast<double>(ExactCountAnswersBruteForce(q, db));

  ApproxOptions fptras_opts;
  fptras_opts.epsilon = 0.15;
  fptras_opts.seed = 5;
  auto fptras = ApproxCountAnswers(q, db, fptras_opts);
  ASSERT_TRUE(fptras.ok());

  FprasOptions fpras_opts;
  fpras_opts.acjr.epsilon = 0.15;
  fpras_opts.acjr.seed = 5;
  auto fpras = FprasCountCq(q, db, fpras_opts);
  ASSERT_TRUE(fpras.ok());

  if (exact > 0) {
    EXPECT_NEAR(fptras->estimate, exact, 0.3 * exact);
    EXPECT_NEAR(fpras->estimate, exact, 0.3 * exact);
  } else {
    EXPECT_DOUBLE_EQ(fptras->estimate, 0.0);
    EXPECT_DOUBLE_EQ(fpras->estimate, 0.0);
  }
}

TEST(IntegrationTest, Observation10HamiltonPaths) {
  // The DCQ whose answers are Hamiltonian paths (treewidth 1, arity 2!).
  // K4 has 4!/... : each Hamiltonian path counted once per direction and
  // labelling: K4 has 24 ordered Hamiltonian vertex sequences.
  Query q = Parse(
      "ans(a, b, c, d) :- E(a, b), E(b, c), E(c, d), "
      "a != b, a != c, a != d, b != c, b != d, c != d.");
  // H(phi) is the path a-b-c-d: treewidth 1.
  EXPECT_EQ(q.BuildHypergraph().num_edges(), 3);
  Database k4 = GraphToDatabase(CliqueGraph(4));
  EXPECT_EQ(ExactCountAnswersBruteForce(q, k4), 24u);

  // C4 has 8 (4 starting points x 2 directions... minus chords): the
  // 4-cycle has exactly 8 Hamiltonian paths as ordered sequences.
  Database c4 = GraphToDatabase(CycleGraph(4));
  EXPECT_EQ(ExactCountAnswersBruteForce(q, c4), 8u);

  // And the FPTRAS reproduces the count (small => exact phase).
  ApproxOptions opts;
  opts.seed = 17;
  auto approx = ApproxCountAnswers(q, k4, opts);
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->estimate, 24.0, 3.0);
}

TEST(IntegrationTest, IntroFriendsExampleOnSocialNetwork) {
  // "People with at least two friends" (equation (1)).
  Query q = Parse("ans(x) :- F(x, y), F(x, z), y != z.");
  Rng rng(11);
  Database db = SocialNetworkDb(30, 3.0, 0.5, rng);
  const double exact =
      static_cast<double>(ExactCountAnswersBruteForce(q, db));
  ApproxOptions opts;
  opts.epsilon = 0.15;
  opts.seed = 19;
  auto approx = ApproxCountAnswers(q, db, opts);
  ASSERT_TRUE(approx.ok());
  if (exact > 0) {
    EXPECT_NEAR(approx->estimate, exact, 0.3 * exact);
  } else {
    EXPECT_DOUBLE_EQ(approx->estimate, 0.0);
  }
}

TEST(IntegrationTest, SamplerFrequenciesTrackCounts) {
  Query q = Parse("ans(x) :- F(x, y), F(x, z), y != z.");
  Rng rng(13);
  Database db = SocialNetworkDb(15, 3.0, 0.5, rng);
  const uint64_t exact = ExactCountAnswersBruteForce(q, db);
  if (exact == 0) GTEST_SKIP() << "degenerate network";
  SamplerOptions sopts;
  sopts.approx.seed = 23;
  auto sampler = AnswerSampler::Create(q, db, sopts);
  ASSERT_TRUE(sampler.ok());
  auto samples = (*sampler)->Sample(30);
  ASSERT_TRUE(samples.ok());
  for (const Tuple& t : *samples) {
    EXPECT_TRUE((*sampler)->Member(t, 1e-6));
  }
}

TEST(IntegrationTest, EcqPipelineEndToEnd) {
  // An ECQ with all three features: positive atoms, a negated atom and a
  // disequality, over the social network: adults with two distinct
  // friends who are NOT friends with each other.
  Query q = Parse(
      "ans(x) :- Adult(x), F(x, y), F(x, z), !F(y, z), y != z.");
  Rng rng(29);
  Database db = SocialNetworkDb(14, 3.0, 0.6, rng);
  const double exact =
      static_cast<double>(ExactCountAnswersBruteForce(q, db));
  ApproxOptions opts;
  opts.epsilon = 0.15;
  opts.seed = 31;
  auto approx = ApproxCountAnswers(q, db, opts);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  if (exact > 0) {
    EXPECT_NEAR(approx->estimate, exact, 0.3 * exact + 0.5);
  } else {
    EXPECT_DOUBLE_EQ(approx->estimate, 0.0);
  }
}

}  // namespace
}  // namespace cqcount
