#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace cqcount {
namespace obs {
namespace {

// The sink is process-global; Enable() starts a fresh session (clears all
// buffers), so each test begins with Enable() and ends with Disable().

TEST(TraceTest, DisabledSpansRecordNothing) {
  TraceSink& sink = TraceSink::Global();
  sink.Disable();
  sink.Clear();
  {
    Span span("trace_test.disabled");
    EXPECT_EQ(span.ref().id, 0u);
  }
  EXPECT_EQ(sink.event_count(), 0u);
}

TEST(TraceTest, EnableRecordsCompleteEvents) {
  TraceSink& sink = TraceSink::Global();
  sink.Enable();
  {
    Span span("trace_test.outer");
    EXPECT_NE(span.ref().id, 0u);
  }
  sink.Disable();
  EXPECT_EQ(sink.event_count(), 1u);
}

TEST(TraceTest, ImplicitNestingParentsInnerUnderOuter) {
  TraceSink& sink = TraceSink::Global();
  sink.Enable();
  uint64_t outer_id = 0;
  {
    Span outer("trace_test.outer");
    outer_id = outer.ref().id;
    Span inner("trace_test.inner");
    EXPECT_NE(inner.ref().id, outer_id);
  }
  sink.Disable();
  const std::string json = sink.ExportChromeTraceJson();
  // The inner event carries the outer's id as its parent ("parent" is the
  // last key of "args", so the closing brace anchors the number).
  EXPECT_NE(json.find("\"parent\":" + std::to_string(outer_id) + "}"),
            std::string::npos);
}

TEST(TraceTest, ExplicitSpanRefParentsAcrossThreads) {
  TraceSink& sink = TraceSink::Global();
  sink.Enable();
  uint64_t parent_id = 0;
  {
    Span parent("trace_test.fanout");
    parent_id = parent.ref().id;
    const SpanRef ref = parent.ref();
    std::thread worker([ref] { Span child("trace_test.lane", ref); });
    worker.join();
  }
  sink.Disable();
  ASSERT_EQ(sink.event_count(), 2u);
  const std::string json = sink.ExportChromeTraceJson();
  EXPECT_NE(json.find("\"parent\":" + std::to_string(parent_id) + "}"),
            std::string::npos);
  EXPECT_NE(json.find("trace_test.lane"), std::string::npos);
}

TEST(TraceTest, ChromeTraceJsonShape) {
  TraceSink& sink = TraceSink::Global();
  sink.Enable();
  { Span span("trace_test.shape"); }
  sink.Disable();
  const std::string json = sink.ExportChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"trace_test.shape\""), std::string::npos);
  // Complete events: phase "X" with microsecond timestamp and duration.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

TEST(TraceTest, BoundedBufferDropsAndCounts) {
  TraceSink& sink = TraceSink::Global();
  sink.set_thread_capacity(8);
  sink.Enable();
  // New capacity applies to buffers created after the call; record from a
  // fresh thread so its buffer is born with the small capacity.
  std::thread worker([] {
    for (int i = 0; i < 100; ++i) {
      Span span("trace_test.flood");
    }
  });
  worker.join();
  sink.Disable();
  EXPECT_EQ(sink.event_count(), 8u);
  EXPECT_EQ(sink.dropped(), 92u);
  sink.set_thread_capacity(1 << 16);
  // A fresh session resets the drop counter.
  sink.Enable();
  sink.Disable();
  EXPECT_EQ(sink.dropped(), 0u);
}

// TSan target: many threads record spans while another thread repeatedly
// snapshots and exports; no data races, no lost/torn events.
TEST(TraceTest, ConcurrentRecordingIsSafe) {
  TraceSink& sink = TraceSink::Global();
  sink.Enable();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      (void)sink.event_count();
      (void)sink.ExportChromeTraceJson();
    }
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        Span outer("trace_test.mt_outer");
        Span inner("trace_test.mt_inner", outer.ref());
      }
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();
  done.store(true);
  reader.join();
  sink.Disable();
  EXPECT_EQ(sink.event_count() + sink.dropped(),
            static_cast<uint64_t>(kThreads) * kPerThread * 2);
  sink.Clear();
}

}  // namespace
}  // namespace obs
}  // namespace cqcount
