#include "query/query_structures.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(StructureATest, UniverseIsVariables) {
  Query q = Parse("ans(x) :- R(x, y), !S(y).");
  Structure a = BuildStructureA(q);
  EXPECT_EQ(a.universe_size(), 2u);
  EXPECT_TRUE(a.HasRelation("R"));
  EXPECT_TRUE(a.HasRelation(NegatedRelationName("S")));
  EXPECT_TRUE(a.relation("R").Contains({0, 1}));
  EXPECT_TRUE(a.relation("~S").Contains({1}));
}

TEST(StructureATest, Observation19SizeBound) {
  // ||A(phi)|| <= 3 ||phi||.
  Query q = Parse("ans(x, y) :- R(x, z), S(z, y), !T(x, y), x != y.");
  Structure a = BuildStructureA(q);
  EXPECT_LE(a.Size(), 3 * q.PhiSize());
}

TEST(StructureBTest, PositiveRelationsCopied) {
  Query q = Parse("ans(x) :- R(x, y).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("R", 2).ok());
  ASSERT_TRUE(db.AddFact("R", {0, 1}).ok());
  db.Canonicalize();
  auto b = BuildStructureB(q, db);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->relation("R").size(), 1u);
}

TEST(StructureBTest, NegatedRelationIsComplement) {
  Query q = Parse("ans(x) :- R(x), !S(x, y).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  ASSERT_TRUE(db.DeclareRelation("S", 2).ok());
  ASSERT_TRUE(db.AddFact("R", {0}).ok());
  ASSERT_TRUE(db.AddFact("S", {1, 2}).ok());
  db.Canonicalize();
  auto b = BuildStructureB(q, db);
  ASSERT_TRUE(b.ok());
  // |~S| = 3^2 - 1.
  EXPECT_EQ(b->relation("~S").size(), 8u);
  EXPECT_FALSE(b->relation("~S").Contains({1, 2}));
  EXPECT_TRUE(b->relation("~S").Contains({2, 1}));
}

TEST(StructureBTest, RefusesHugeComplements) {
  Query q = Parse("ans(x) :- !R(x, y, z).");
  Database db(1000);
  ASSERT_TRUE(db.DeclareRelation("R", 3).ok());
  auto b = BuildStructureB(q, db, /*max_complement_tuples=*/1000);
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
}

TEST(StructureAHatTest, AddsUnaryRelations) {
  // Observation 27: A-hat adds |vars| + 2|Delta| unary singleton
  // relations and stays within 5 ||phi||^2.
  Query q = Parse("ans(x) :- F(x, y), F(x, z), y != z.");
  Structure a_hat = BuildStructureAHat(q);
  EXPECT_TRUE(a_hat.HasRelation("P_0"));
  EXPECT_TRUE(a_hat.HasRelation("P_2"));
  EXPECT_TRUE(a_hat.HasRelation("Rneq_0"));
  EXPECT_TRUE(a_hat.HasRelation("Bneq_0"));
  EXPECT_EQ(a_hat.relation("P_1").size(), 1u);
  EXPECT_LE(a_hat.Size(), 5 * q.PhiSize() * q.PhiSize());
}

TEST(StructureBHatTest, RespectsPartsAndColouring) {
  Query q = Parse("ans(x) :- F(x, y), x != y.");
  Database db(2);
  ASSERT_TRUE(db.DeclareRelation("F", 2).ok());
  ASSERT_TRUE(db.AddFact("F", {0, 1}).ok());
  db.Canonicalize();
  PartiteParts parts = {testing_util::MaskOf({true, false})};  // V_0 = {0}.
  ColouringFamily colouring = {
      testing_util::MaskOf({true, false})};  // f: 0 -> r, 1 -> b.
  auto b_hat = BuildStructureBHat(q, db, parts, colouring);
  ASSERT_TRUE(b_hat.ok());
  // P_0 = V_0 x {0} = {(0,0)} encoded as 0*2+0; P_1 = U x {1}.
  EXPECT_EQ(b_hat->relation("P_0").size(), 1u);
  EXPECT_TRUE(b_hat->relation("P_0").Contains({0}));
  EXPECT_EQ(b_hat->relation("P_1").size(), 2u);
  // Colours: red elements are those with value 0.
  EXPECT_TRUE(b_hat->relation("Rneq_0").Contains({0}));      // (0, pos 0)
  EXPECT_TRUE(b_hat->relation("Bneq_0").Contains({2 + 1}));  // (1, pos 1)
}

TEST(CanonicalQueryTest, FactsBecomeAtoms) {
  Structure a(3);
  ASSERT_TRUE(a.DeclareRelation("E", 2).ok());
  ASSERT_TRUE(a.AddFact("E", {0, 1}).ok());
  ASSERT_TRUE(a.AddFact("E", {1, 2}).ok());
  a.Canonicalize();
  Query q = CanonicalQuery(a);
  EXPECT_EQ(q.num_vars(), 3);
  EXPECT_EQ(q.num_free(), 3);
  EXPECT_EQ(q.atoms().size(), 2u);
  EXPECT_EQ(q.Kind(), QueryKind::kCq);
}

}  // namespace
}  // namespace cqcount
