#include "app/lihom.h"

#include <gtest/gtest.h>

#include <functional>

#include "decomposition/exact_treewidth.h"

namespace cqcount {
namespace {

// Independent reference implementation: enumerate all maps V(G) -> V(G'),
// check edge preservation and local injectivity directly.
uint64_t ReferenceCount(const SimpleGraph& pattern, const SimpleGraph& host) {
  const auto pattern_adj = pattern.AdjacencyLists();
  const auto host_adj = host.AdjacencyLists();
  auto host_has_edge = [&](int u, int v) {
    return std::find(host_adj[u].begin(), host_adj[u].end(), v) !=
           host_adj[u].end();
  };
  uint64_t count = 0;
  std::vector<int> image(pattern.num_vertices, 0);
  std::function<void(int)> rec = [&](int v) {
    if (v == pattern.num_vertices) {
      // Homomorphism?
      for (const auto& [a, b] : pattern.edges) {
        if (!host_has_edge(image[a], image[b])) return;
      }
      // Locally injective?
      for (int centre = 0; centre < pattern.num_vertices; ++centre) {
        const auto& nbrs = pattern_adj[centre];
        for (size_t i = 0; i < nbrs.size(); ++i) {
          for (size_t j = i + 1; j < nbrs.size(); ++j) {
            if (image[nbrs[i]] == image[nbrs[j]]) return;
          }
        }
      }
      ++count;
      return;
    }
    for (int w = 0; w < host.num_vertices; ++w) {
      image[v] = w;
      rec(v + 1);
    }
  };
  rec(0);
  return count;
}

TEST(LihomTest, CommonNeighbourPairs) {
  // In a path 0-1-2, vertices 0 and 2 share neighbour 1.
  auto pairs = lihom::CommonNeighbourPairs(PathGraph(3));
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<int, int>{0, 2}));
  // In a star all leaves pairwise share the centre.
  EXPECT_EQ(lihom::CommonNeighbourPairs(StarGraph(4)).size(), 6u);
}

TEST(LihomTest, QueryConstructionMatchesPaper) {
  SimpleGraph pattern = PathGraph(3);
  auto q = lihom::BuildLihomQuery(pattern);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_free(), 3);          // No existential variables.
  EXPECT_EQ(q->atoms().size(), 2u);     // One atom per edge.
  EXPECT_EQ(q->disequalities().size(), 1u);  // cn(G) pairs.
  // H(phi) = the pattern (disequalities excluded): treewidth 1.
  auto tw = ExactTreewidth(q->BuildHypergraph());
  ASSERT_TRUE(tw.ok());
  EXPECT_DOUBLE_EQ(tw->width, 1.0);
}

TEST(LihomTest, RejectsEdgelessPattern) {
  SimpleGraph isolated;
  isolated.num_vertices = 2;
  EXPECT_FALSE(lihom::BuildLihomQuery(isolated).ok());
}

TEST(LihomTest, ExactMatchesReference) {
  const SimpleGraph patterns[] = {PathGraph(2), PathGraph(3), StarGraph(3),
                                  CycleGraph(3)};
  const SimpleGraph hosts[] = {CliqueGraph(3), CliqueGraph(4), CycleGraph(5),
                               StarGraph(4)};
  for (const auto& pattern : patterns) {
    for (const auto& host : hosts) {
      auto exact = lihom::ExactCountLocallyInjectiveHoms(pattern, host);
      ASSERT_TRUE(exact.ok());
      EXPECT_EQ(*exact, ReferenceCount(pattern, host));
    }
  }
}

TEST(LihomTest, ApproxMatchesExact) {
  SimpleGraph pattern = PathGraph(3);
  Rng rng(23);
  SimpleGraph host = ErdosRenyi(8, 0.5, rng);
  auto exact = lihom::ExactCountLocallyInjectiveHoms(pattern, host);
  ASSERT_TRUE(exact.ok());
  ApproxOptions opts;
  opts.epsilon = 0.15;
  opts.delta = 0.15;
  opts.seed = 71;
  auto approx = lihom::ApproxCountLocallyInjectiveHoms(pattern, host, opts);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  if (*exact == 0) {
    EXPECT_DOUBLE_EQ(approx->estimate, 0.0);
  } else {
    EXPECT_NEAR(approx->estimate, static_cast<double>(*exact),
                0.3 * static_cast<double>(*exact) + 0.5);
  }
}

TEST(LihomTest, InjectiveOnStarNeighbourhoods) {
  // Locally injective maps of a 3-star into K4 must send the three
  // leaves to distinct vertices: 4 choices of centre image x 3! leaf
  // arrangements = 24.
  auto exact = lihom::ExactCountLocallyInjectiveHoms(StarGraph(3),
                                                     CliqueGraph(4));
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 24u);
}

}  // namespace
}  // namespace cqcount
