// The adaptive accuracy scheduler: cost model, marginal-cost budget
// splitting, lane gating and the engine-level determinism contract.
//
// The load-bearing properties:
//   - adaptive OFF is byte-for-byte the pre-scheduler engine: estimates
//     AND oracle-call tallies are invariant to every SchedulerOptions
//     knob and to the lane count;
//   - adaptive ON is reproducible: a fixed seed and request sequence
//     gives bit-identical estimates and oracle calls at 1, 2 and 4
//     lanes (early-stop decisions are made from merged deterministic
//     state at run boundaries only);
//   - the split preserves the product guarantee: counting shares sum to
//     eps/2, every share keeps its floor, expensive components get
//     looser targets;
//   - on warm profiles the scheduler does strictly less oracle work.
#include "engine/scheduler.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/profile.h"

namespace cqcount {
namespace {

QueryPlan EstimatedPlan(double cost) {
  QueryPlan plan;
  plan.strategy = Strategy::kFptrasTreewidth;
  plan.cost_estimate = cost;
  return plan;
}

obs::ShapeProfile WarmProfile(int runs, double millis, uint64_t estimator_calls,
                              uint64_t oracle_calls = 0) {
  obs::ShapeProfile profile;
  for (int i = 0; i < runs; ++i) {
    profile.Observe(millis, oracle_calls ? oracle_calls : estimator_calls,
                    estimator_calls, 42.0, true);
  }
  return profile;
}

TEST(CostModelTest, ColdShapeUsesPlanEstimate) {
  AdaptiveScheduler scheduler;
  CostPrediction cold = scheduler.Predict(EstimatedPlan(5000.0), std::nullopt);
  EXPECT_EQ(cold.source, CostSource::kPlanEstimate);
  EXPECT_DOUBLE_EQ(cold.cost_units, 5000.0);
  EXPECT_EQ(cold.oracle_calls, 0.0);  // Unknown until observed.

  // One observation is below min_profile_runs (2): still cold.
  CostPrediction one_run =
      scheduler.Predict(EstimatedPlan(5000.0), WarmProfile(1, 3.0, 900));
  EXPECT_EQ(one_run.source, CostSource::kPlanEstimate);
}

TEST(CostModelTest, WarmShapeUsesObservedHistory) {
  AdaptiveScheduler scheduler;
  CostPrediction warm =
      scheduler.Predict(EstimatedPlan(5000.0), WarmProfile(3, 7.0, 900, 1200));
  EXPECT_EQ(warm.source, CostSource::kObservedProfile);
  EXPECT_DOUBLE_EQ(warm.cost_units, 900.0);   // Mean estimator calls.
  EXPECT_DOUBLE_EQ(warm.oracle_calls, 1200.0);
  EXPECT_DOUBLE_EQ(warm.millis, 7.0);
}

TEST(BudgetSplitTest, CountingSharesSumToHalfEpsilonWithFloors) {
  AdaptiveScheduler scheduler;
  std::vector<SchedulerComponent> components(3);
  for (auto& c : components) c.estimated = true;
  components[0].cost.cost_units = 1.0;      // Cheap: tight target.
  components[1].cost.cost_units = 1000.0;
  components[2].cost.cost_units = 1e6;      // Expensive: loose target.

  const double epsilon = 0.3;
  const double delta = 0.06;
  std::vector<BudgetShare> shares =
      scheduler.SplitBudgets(epsilon, delta, components);
  ASSERT_EQ(shares.size(), components.size());

  double sum = 0.0;
  const double floor = scheduler.options().eps_floor_fraction *
                       (epsilon / 2.0) / components.size();
  for (const BudgetShare& share : shares) {
    sum += share.epsilon;
    EXPECT_GE(share.epsilon, floor - 1e-12);
    // Union bound over components is untouched by the reweighting.
    EXPECT_DOUBLE_EQ(share.delta, delta / components.size());
  }
  // prod(1 +- eps_i) stays within (1 +- eps) exactly because the shares
  // sum to eps/2 (see scheduler.h); the allocation must not leak budget.
  EXPECT_NEAR(sum, epsilon / 2.0, 1e-12);
  // Marginal-cost ordering: eps_i grows with cbrt(cost).
  EXPECT_LT(shares[0].epsilon, shares[1].epsilon);
  EXPECT_LT(shares[1].epsilon, shares[2].epsilon);
}

TEST(BudgetSplitTest, SingleCountingComponentKeepsFullEpsilon) {
  AdaptiveScheduler scheduler;
  std::vector<SchedulerComponent> components(2);
  components[0].estimated = true;
  components[0].cost.cost_units = 100.0;
  components[1].estimated = false;  // Exact factor: no budget share.
  std::vector<BudgetShare> shares =
      scheduler.SplitBudgets(0.25, 0.1, components);
  // Matches SplitBudget's single-component pass-through: halving would
  // double the sampling work for nothing.
  EXPECT_DOUBLE_EQ(shares[0].epsilon, 0.25);
  EXPECT_DOUBLE_EQ(shares[1].epsilon, 0.0);
  EXPECT_DOUBLE_EQ(shares[1].delta, 0.0);
}

TEST(BudgetSplitTest, EvenCostsReduceToEvenSplit) {
  AdaptiveScheduler scheduler;
  std::vector<SchedulerComponent> components(4);
  for (auto& c : components) {
    c.estimated = true;
    c.cost.cost_units = 777.0;
  }
  std::vector<BudgetShare> shares = scheduler.SplitBudgets(0.4, 0.2, components);
  for (const BudgetShare& share : shares) {
    EXPECT_NEAR(share.epsilon, 0.4 / (2.0 * 4.0), 1e-12);
  }
}

TEST(LaneGateTest, ObservedWallTimeReplacesStaticCostGate) {
  AdaptiveScheduler scheduler;
  CostPrediction fast_warm;
  fast_warm.source = CostSource::kObservedProfile;
  fast_warm.millis = 0.5;  // Below min_fanout_millis: fan-out won't pay.
  CostPrediction slow_warm = fast_warm;
  slow_warm.millis = 50.0;
  CostPrediction cheap_cold;  // Plan-estimate fallback: static gate.
  cheap_cold.cost_units = 10.0;
  CostPrediction costly_cold;
  costly_cold.cost_units = 1e12;

  const double static_gate = 1e8;
  EXPECT_EQ(scheduler.PlanLanes(Strategy::kExact, slow_warm, 4, 4, static_gate),
            1);
  EXPECT_EQ(scheduler.PlanLanes(Strategy::kFptrasTreewidth, fast_warm, 4, 4,
                                static_gate),
            1);
  EXPECT_EQ(scheduler.PlanLanes(Strategy::kFptrasTreewidth, slow_warm, 4, 4,
                                static_gate),
            4);
  EXPECT_EQ(scheduler.PlanLanes(Strategy::kFptrasTreewidth, cheap_cold, 4, 4,
                                static_gate),
            1);
  EXPECT_EQ(scheduler.PlanLanes(Strategy::kFptrasTreewidth, costly_cold, 4, 4,
                                static_gate),
            4);
}

TEST(TrialBudgetTest, PerCallFailureScalesWithPredictedCalls) {
  AdaptiveScheduler scheduler;
  CostPrediction cold;  // No observed call count: keep the module default.
  EXPECT_EQ(scheduler.PerCallFailure(0.1, cold), 0.0);

  CostPrediction warm;
  warm.source = CostSource::kObservedProfile;
  warm.oracle_calls = 1e4;
  const double failure = scheduler.PerCallFailure(0.1, warm);
  // delta / (2 * safety * calls), far below the 1e-3 cap here.
  EXPECT_DOUBLE_EQ(
      failure, 0.1 / (2.0 * scheduler.options().trials_safety_factor * 1e4));

  warm.oracle_calls = 1.0;  // Tiny prediction: the cap keeps >= ~7 trials.
  EXPECT_DOUBLE_EQ(scheduler.PerCallFailure(0.9, warm),
                   scheduler.options().max_per_call_failure);
}

// ---------------------------------------------------------------------------
// Engine-level properties.

Database DenseDatabase() {
  Database db(8);
  EXPECT_TRUE(db.DeclareRelation("E", 2).ok());
  for (Value u = 0; u < 8; ++u) {
    for (Value v = 0; v < 8; ++v) {
      if ((u * 5 + v * 11 + 3) % 3 != 0) continue;
      EXPECT_TRUE(db.AddFact("E", {u, v}).ok());
    }
  }
  db.Canonicalize();
  return db;
}

const std::vector<std::string>& Queries() {
  static const std::vector<std::string> queries = {
      "ans(x, y) :- E(x, y), E(y, z), x != z.",
      "ans(x, y) :- E(x, y), E(x, z), y != z.",
      "ans(x, z) :- E(x, y), E(y, z).",
      "ans(x, y) :- E(x, y), !E(y, x).",
  };
  return queries;
}

struct Observed {
  double estimate = 0.0;
  uint64_t oracle_calls = 0;

  bool operator==(const Observed& o) const {
    return estimate == o.estimate && oracle_calls == o.oracle_calls;
  }
};

// Runs every query `reps` times (so adaptive engines cross the
// min_profile_runs threshold mid-sequence) and returns all observations.
std::vector<Observed> RunSequence(const EngineOptions& opts,
                                  const Database& db, int reps) {
  CountingEngine engine(opts);
  EXPECT_TRUE(engine.RegisterDatabase("g", db).ok());
  std::vector<Observed> observed;
  for (int rep = 0; rep < reps; ++rep) {
    for (const std::string& text : Queries()) {
      auto result = engine.Count(text, "g");
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (!result.ok()) continue;
      EXPECT_EQ(result->adaptive, opts.adaptive);
      observed.push_back({result->estimate, result->oracle_calls});
    }
  }
  return observed;
}

EngineOptions BaseOptions(int lanes) {
  EngineOptions opts;
  opts.epsilon = 0.3;
  opts.delta = 0.3;
  opts.seed = 20220607;
  opts.num_threads = 4;
  opts.intra_query_threads = lanes;
  opts.intra_query_min_cost = 0.0;
  // The 8-node database is below the planner's brute-force threshold;
  // force the estimated strategies so these properties exercise the run
  // schedule (oracle calls, stop reasons) rather than exact enumeration.
  opts.plan.exact_cost_limit = 0.0;
  return opts;
}

// Adaptive OFF must be the pre-scheduler engine exactly: results do not
// move when scheduler knobs change, and stay lane-invariant (estimates
// and the deterministic oracle-call accounting both).
TEST(AdaptiveEngineTest, AdaptiveOffIsUnchangedBySchedulerKnobs) {
  const Database db = DenseDatabase();
  std::optional<std::vector<Observed>> reference;
  for (int lanes : {1, 2, 4}) {
    for (int variant = 0; variant < 2; ++variant) {
      EngineOptions opts = BaseOptions(lanes);
      if (variant == 1) {
        // Aggressive knobs; with adaptive=false none may matter.
        opts.scheduler.min_profile_runs = 1;
        opts.scheduler.trials_safety_factor = 1.0;
        opts.scheduler.eps_floor_fraction = 0.9;
        opts.scheduler.min_early_stop_runs = 2;
      }
      std::vector<Observed> observed = RunSequence(opts, db, 2);
      if (!reference.has_value()) {
        reference = observed;
        continue;
      }
      ASSERT_EQ(observed.size(), reference->size());
      for (size_t i = 0; i < observed.size(); ++i) {
        EXPECT_TRUE(observed[i] == (*reference)[i])
            << "lanes=" << lanes << " variant=" << variant << " call=" << i
            << ": estimate " << observed[i].estimate << " vs "
            << (*reference)[i].estimate << ", oracle_calls "
            << observed[i].oracle_calls << " vs "
            << (*reference)[i].oracle_calls;
      }
    }
  }
}

// Adaptive ON: a fixed seed and request sequence is reproducible at any
// lane count — the early-stop rule reads merged run estimates at run
// boundaries, never partial lane state.
TEST(AdaptiveEngineTest, AdaptiveOnReproducibleAcrossLaneCounts) {
  const Database db = DenseDatabase();
  std::optional<std::vector<Observed>> reference;
  for (int lanes : {1, 2, 4}) {
    EngineOptions opts = BaseOptions(lanes);
    opts.adaptive = true;
    std::vector<Observed> observed = RunSequence(opts, db, 3);
    if (!reference.has_value()) {
      reference = observed;
      continue;
    }
    ASSERT_EQ(observed.size(), reference->size());
    for (size_t i = 0; i < observed.size(); ++i) {
      EXPECT_TRUE(observed[i] == (*reference)[i])
          << "lanes=" << lanes << " call=" << i << ": estimate "
          << observed[i].estimate << " vs " << (*reference)[i].estimate
          << ", oracle_calls " << observed[i].oracle_calls << " vs "
          << (*reference)[i].oracle_calls;
    }
  }
}

// On a warm profile the adaptive engine must do no more oracle work than
// the fixed schedule, and strictly less on a multi-run workload (delta
// 0.1 schedules 13 median runs; the CLT stop typically needs 3).
TEST(AdaptiveEngineTest, WarmAdaptiveCallsDoLessOracleWork) {
  const Database db = DenseDatabase();
  const std::string query = "ans(x, y) :- E(x, y), E(y, z), x != z.";

  auto third_call = [&](bool adaptive) {
    EngineOptions opts = BaseOptions(1);
    opts.epsilon = 0.25;
    opts.delta = 0.1;
    opts.adaptive = adaptive;
    CountingEngine engine(opts);
    EXPECT_TRUE(engine.RegisterDatabase("g", db).ok());
    for (int warm = 0; warm < 2; ++warm) {
      EXPECT_TRUE(engine.Count(query, "g").ok());
    }
    auto result = engine.Count(query, "g");
    EXPECT_TRUE(result.ok());
    return *result;
  };

  const EngineResult fixed = third_call(false);
  const EngineResult adaptive = third_call(true);
  EXPECT_LE(adaptive.oracle_calls, fixed.oracle_calls);
  ASSERT_EQ(adaptive.components.size(), 1u);
  ASSERT_EQ(fixed.components.size(), 1u);
  const ComponentResult& ac = adaptive.components[0];
  const ComponentResult& fc = fixed.components[0];
  EXPECT_EQ(ac.cost_source, CostSourceName(CostSource::kObservedProfile));
  EXPECT_GT(ac.predicted_oracle_calls, 0.0);
  if (!fc.exact && fc.total_runs > 1) {
    EXPECT_LT(adaptive.oracle_calls, fixed.oracle_calls)
        << "warm adaptive run saved nothing on a " << fc.total_runs
        << "-run schedule";
    EXPECT_TRUE(ac.stop_reason == StopReason::kConfidence ||
                ac.stop_reason == StopReason::kHardBounds ||
                ac.stop_reason == StopReason::kFullSchedule)
        << StopReasonName(ac.stop_reason);
  }
  // The fixed schedule reports its own typed reason when a run schedule
  // actually executed (exact-phase resolutions have no run structure,
  // even when a disequality keeps the `exact` flag off).
  if (fc.total_runs > 0) {
    EXPECT_TRUE(fc.stop_reason == StopReason::kFullSchedule ||
                fc.stop_reason == StopReason::kBudgetExhausted)
        << StopReasonName(fc.stop_reason);
  }
}

}  // namespace
}  // namespace cqcount
