#include "counting/colour_coding.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "decomposition/elimination_order.h"
#include "decomposition/width_measures.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

std::unique_ptr<DecompositionHomOracle> MakeHom(const Query& q,
                                                const Database& db) {
  Hypergraph h = q.BuildHypergraph();
  FWidthResult w = ComputeDecomposition(h, WidthObjective::kTreewidth);
  return std::make_unique<DecompositionHomOracle>(q, db, w.decomposition);
}

// Lemma 30 / Lemma 22 validation: the colour-coding oracle must agree
// with ground truth. "Edge present" answers are always sound; "edge free"
// answers fail with probability <= per_call_failure, so with a tight
// failure budget the agreement should be total on these small instances.
class ColourCodingAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(ColourCodingAgreementTest, MatchesBruteForceOracle) {
  Rng rng(GetParam() * 271 + 17);
  RandomQueryOptions qopts;
  qopts.min_vars = 2;
  qopts.max_vars = 4;
  qopts.disequality_probability = 0.35;
  qopts.negated_probability = 0.2;
  qopts.forced_num_free = 2;
  Query q = RandomQuery(rng, qopts);
  if (q.num_free() > q.num_vars()) return;
  Database db = RandomDatabaseFor(q, 4, 0.5, rng);

  auto hom = MakeHom(q, db);
  ColourCodingOptions opts;
  opts.per_call_failure = 1e-6;
  opts.seed = GetParam();
  ColourCodingEdgeFreeOracle simulated(q, hom.get(), 4, opts);
  BruteForceEdgeFreeOracle truth(q, db);

  for (int trial = 0; trial < 10; ++trial) {
    PartiteSubset parts;
    parts.parts = {rng.RandomMask(4, 0.6), rng.RandomMask(4, 0.6)};
    const bool expected = truth.IsEdgeFree(parts);
    const bool actual = simulated.IsEdgeFree(parts);
    if (expected) {
      // One-sided: "edge free" must never be contradicted spuriously --
      // a found homomorphism is a real witness.
      EXPECT_TRUE(actual) << q.ToString();
    } else {
      // Miss probability is ~1e-6 per call; treat a miss as failure.
      EXPECT_FALSE(actual) << q.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColourCodingAgreementTest,
                         ::testing::Range(0, 25));

TEST(ColourCodingTest, NoDisequalitiesMeansSingleHomQuery) {
  Query q = Parse("ans(x) :- E(x, y).");
  Database db = GraphToDatabase(PathGraph(4));
  auto hom = MakeHom(q, db);
  ColourCodingOptions opts;
  ColourCodingEdgeFreeOracle oracle(q, hom.get(), 4, opts);
  PartiteSubset parts;
  parts.parts = {Bitset(4, true)};
  EXPECT_FALSE(oracle.IsEdgeFree(parts));
  EXPECT_EQ(hom->num_calls(), 1u);
}

TEST(ColourCodingTest, TrialsScaleWithDisequalities) {
  Query q1 = Parse("ans(x) :- E(x, y), E(x, z), y != z.");
  Query q2 = Parse(
      "ans(x) :- E(x, y), E(x, z), E(x, w), y != z, y != w, z != w.");
  Database db = GraphToDatabase(StarGraph(4));
  auto hom1 = MakeHom(q1, db);
  auto hom2 = MakeHom(q2, db);
  ColourCodingOptions opts;
  ColourCodingEdgeFreeOracle o1(q1, hom1.get(), 5, opts);
  ColourCodingEdgeFreeOracle o2(q2, hom2.get(), 5, opts);
  // Q = ceil(ln(1/delta')) * 4^{|Delta|}.
  EXPECT_EQ(o2.trials_per_call(), o1.trials_per_call() * 16);
}

TEST(ColourCodingTest, EmptyPartShortCircuits) {
  Query q = Parse("ans(x) :- E(x, y), x != y.");
  Database db = GraphToDatabase(PathGraph(3));
  auto hom = MakeHom(q, db);
  ColourCodingOptions opts;
  ColourCodingEdgeFreeOracle oracle(q, hom.get(), 3, opts);
  PartiteSubset parts;
  parts.parts = {Bitset(3, false)};
  EXPECT_TRUE(oracle.IsEdgeFree(parts));
  EXPECT_EQ(hom->num_calls(), 0u);
}

TEST(DecideAnySolutionTest, BooleanQueries) {
  Query yes = Parse("ans() :- E(x, y), E(y, z), x != z.");
  Query no = Parse("ans() :- E(x, y), E(y, x), x != y.");
  Database db = GraphToDatabase(PathGraph(3));
  // A path 0-1-2 viewed as symmetric edges: E(x,y),E(y,z),x!=z is
  // satisfied by 0-1-2. E(x,y),E(y,x),x!=y is satisfied too (symmetric
  // storage!), so use a directed database for the negative case.
  {
    auto hom = MakeHom(yes, db);
    Rng rng(5);
    EXPECT_TRUE(
        DecideAnySolution(yes, hom.get(), 3, VarDomains{}, 1e-6, rng));
  }
  Database directed(3);
  ASSERT_TRUE(directed.DeclareRelation("E", 2).ok());
  ASSERT_TRUE(directed.AddFact("E", {0, 1}).ok());
  directed.Canonicalize();
  {
    auto hom = MakeHom(no, directed);
    Rng rng(6);
    EXPECT_FALSE(
        DecideAnySolution(no, hom.get(), 3, VarDomains{}, 1e-6, rng));
  }
}

}  // namespace
}  // namespace cqcount
