#include "hom/backtracking.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "query/parser.h"

namespace cqcount {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(BacktrackingTest, CountsEdgeSolutions) {
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db = GraphToDatabase(PathGraph(3));  // Edges {0,1},{1,2} both ways.
  EXPECT_EQ(CountSolutionsBrute(q, db), 4u);
  EXPECT_EQ(CountAnswersBrute(q, db), 4u);
  EXPECT_TRUE(DecideSolutionBrute(q, db));
}

TEST(BacktrackingTest, ProjectionDeduplicates) {
  // ans(x) over E(x,y) on the path: 3 distinct x values.
  Query q = Parse("ans(x) :- E(x, y).");
  Database db = GraphToDatabase(PathGraph(3));
  EXPECT_EQ(CountSolutionsBrute(q, db), 4u);
  EXPECT_EQ(CountAnswersBrute(q, db), 3u);
}

TEST(BacktrackingTest, DisequalityFiltersSolutions) {
  // Friends query: people with two distinct neighbours on a path of 3:
  // only the middle vertex.
  Query q = Parse("ans(x) :- E(x, y), E(x, z), y != z.");
  Database db = GraphToDatabase(PathGraph(3));
  EXPECT_EQ(CountAnswersBrute(q, db), 1u);
}

TEST(BacktrackingTest, HamiltonPathCount) {
  // Observation 10 encoding: Hamiltonian paths of K3 = 3! = 6 directed
  // labellings; on the 3-path graph there are exactly 2.
  Query q = Parse(
      "ans(a, b, c) :- E(a, b), E(b, c), a != b, a != c, b != c.");
  EXPECT_EQ(CountAnswersBrute(q, GraphToDatabase(CliqueGraph(3))), 6u);
  EXPECT_EQ(CountAnswersBrute(q, GraphToDatabase(PathGraph(3))), 2u);
}

TEST(BacktrackingTest, NegatedAtomCountsNonEdges) {
  // Ordered non-adjacent distinct pairs in P3: pairs (0,2),(2,0) plus
  // loops excluded via disequality.
  Query q = Parse("ans(x, y) :- V(x), V(y), !E(x, y), x != y.");
  Database db = GraphToDatabase(PathGraph(3));
  ASSERT_TRUE(db.DeclareRelation("V", 1).ok());
  for (Value v = 0; v < 3; ++v) ASSERT_TRUE(db.AddFact("V", {v}).ok());
  db.Canonicalize();
  EXPECT_EQ(CountAnswersBrute(q, db), 2u);
}

TEST(BacktrackingTest, EarlyStopOnDecision) {
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db = GraphToDatabase(CliqueGraph(6));
  EXPECT_TRUE(DecideSolutionBrute(q, db));
}

TEST(BacktrackingTest, ExistentialWitnessRequired) {
  Query q = Parse("ans(x) :- E(x, y), F(y).");
  Database db = GraphToDatabase(PathGraph(3));
  ASSERT_TRUE(db.DeclareRelation("F", 1).ok());
  ASSERT_TRUE(db.AddFact("F", {2}).ok());
  db.Canonicalize();
  // x must have a neighbour in F = {2}: only x = 1.
  EXPECT_EQ(CountAnswersBrute(q, db), 1u);
}

}  // namespace
}  // namespace cqcount
