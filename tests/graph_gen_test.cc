#include "app/graph_gen.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(GraphGenTest, CanonicalGraphSizes) {
  EXPECT_EQ(PathGraph(5).num_edges(), 4);
  EXPECT_EQ(CycleGraph(5).num_edges(), 5);
  EXPECT_EQ(CliqueGraph(5).num_edges(), 10);
  EXPECT_EQ(StarGraph(6).num_edges(), 6);
  EXPECT_EQ(GridGraph(3, 4).num_edges(), 3 * 3 + 2 * 4);
  EXPECT_EQ(BinaryTreeGraph(7).num_edges(), 6);
}

TEST(GraphGenTest, AddEdgeNormalises) {
  SimpleGraph g;
  g.num_vertices = 3;
  g.AddEdge(2, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 1);
  ASSERT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edges[0], (std::pair<int, int>{1, 2}));
}

TEST(GraphGenTest, AdjacencyListsAreSymmetric) {
  SimpleGraph g = CycleGraph(4);
  auto adj = g.AdjacencyLists();
  for (int u = 0; u < 4; ++u) {
    EXPECT_EQ(adj[u].size(), 2u);
    for (int v : adj[u]) {
      EXPECT_TRUE(std::find(adj[v].begin(), adj[v].end(), u) !=
                  adj[v].end());
    }
  }
}

TEST(GraphGenTest, ErdosRenyiDensity) {
  Rng rng(3);
  SimpleGraph g = ErdosRenyi(60, 0.2, rng);
  const double expected = 0.2 * 60 * 59 / 2;
  EXPECT_NEAR(g.num_edges(), expected, expected * 0.35);
}

TEST(GraphGenTest, RandomGraphWithEdgesExactCount) {
  Rng rng(5);
  SimpleGraph g = RandomGraphWithEdges(10, 17, rng);
  EXPECT_EQ(g.num_edges(), 17);
}

TEST(GraphGenTest, GraphToDatabaseIsSymmetric) {
  SimpleGraph g = PathGraph(3);
  Database db = GraphToDatabase(g);
  EXPECT_EQ(db.universe_size(), 3u);
  EXPECT_EQ(db.relation("E").size(), 4u);  // 2 edges x 2 directions.
  EXPECT_TRUE(db.relation("E").Contains({0, 1}));
  EXPECT_TRUE(db.relation("E").Contains({1, 0}));
}

TEST(GraphGenTest, GraphToHypergraph) {
  Hypergraph h = GraphToHypergraph(CycleGraph(4));
  EXPECT_EQ(h.num_vertices(), 4);
  EXPECT_EQ(h.num_edges(), 4);
  EXPECT_EQ(h.Arity(), 2);
}

}  // namespace
}  // namespace cqcount
