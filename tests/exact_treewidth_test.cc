#include "decomposition/exact_treewidth.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "decomposition/elimination_order.h"
#include "util/random.h"

namespace cqcount {
namespace {

int Exact(const Hypergraph& h) {
  auto result = ExactTreewidth(h);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result->decomposition.Validate(h).ok());
  EXPECT_EQ(result->decomposition.Width(),
            static_cast<int>(result->width));
  return static_cast<int>(result->width);
}

TEST(ExactTreewidthTest, KnownGraphs) {
  EXPECT_EQ(Exact(GraphToHypergraph(PathGraph(6))), 1);
  EXPECT_EQ(Exact(GraphToHypergraph(StarGraph(5))), 1);
  EXPECT_EQ(Exact(GraphToHypergraph(BinaryTreeGraph(7))), 1);
  EXPECT_EQ(Exact(GraphToHypergraph(CycleGraph(5))), 2);
  EXPECT_EQ(Exact(GraphToHypergraph(CliqueGraph(4))), 3);
  EXPECT_EQ(Exact(GraphToHypergraph(CliqueGraph(6))), 5);
  EXPECT_EQ(Exact(GraphToHypergraph(GridGraph(2, 4))), 2);
  EXPECT_EQ(Exact(GraphToHypergraph(GridGraph(3, 3))), 3);
}

TEST(ExactTreewidthTest, SingleVertexAndEdgeless) {
  Hypergraph one(1);
  EXPECT_EQ(Exact(one), 0);  // Lone bag {v}: width 0.
  Hypergraph h;
  auto result = ExactTreewidth(h);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->decomposition.num_nodes(), 1);
}

TEST(ExactTreewidthTest, HyperedgeForcesArityMinusOne) {
  Hypergraph h(5);
  h.AddEdge({0, 1, 2, 3});
  h.AddEdge({3, 4});
  EXPECT_EQ(Exact(h), 3);
}

TEST(ExactTreewidthTest, RefusesLargeInputs) {
  Hypergraph h = GraphToHypergraph(CliqueGraph(30));
  auto result = ExactTreewidth(h, /*max_vertices=*/10);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// Property: exact treewidth is never above the min-fill heuristic width
// and never below the degeneracy lower bound.
class TreewidthBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(TreewidthBoundsTest, SandwichedByBounds) {
  Rng rng(GetParam() * 77 + 5);
  SimpleGraph g = ErdosRenyi(9, 0.35, rng);
  Hypergraph h = GraphToHypergraph(g);
  const int exact = Exact(h);
  TreeDecomposition heuristic = DecompositionFromOrder(h, MinFillOrder(h));
  EXPECT_LE(exact, heuristic.Width());
  EXPECT_GE(exact, Degeneracy(h));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreewidthBoundsTest, ::testing::Range(0, 20));

TEST(ExactFWidthTest, CustomCostFunction) {
  // Cost = |bag| (not |bag|-1): path should give 2.
  Hypergraph h = GraphToHypergraph(PathGraph(5));
  auto result = ExactFWidth(h, [](const std::vector<Vertex>& bag) {
    return static_cast<double>(bag.size());
  });
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->width, 2.0);
}

}  // namespace
}  // namespace cqcount
