// Shared helpers for the cqcount test suite: deterministic random query
// and database generators used by the property-based cross-validation
// tests.
#ifndef CQCOUNT_TESTS_TEST_UTIL_H_
#define CQCOUNT_TESTS_TEST_UTIL_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "query/query.h"
#include "relational/structure.h"
#include "util/bitset.h"
#include "util/random.h"

namespace cqcount {
namespace testing_util {

/// Literal-friendly Bitset builder: MaskOf({true, false, true}).
inline Bitset MaskOf(std::initializer_list<bool> bits) {
  Bitset mask(bits.size(), false);
  size_t i = 0;
  for (bool b : bits) {
    if (b) mask.Set(i);
    ++i;
  }
  return mask;
}

/// Knobs for RandomQuery.
struct RandomQueryOptions {
  int min_vars = 2;
  int max_vars = 5;
  int min_atoms = 1;
  int max_atoms = 4;
  int max_arity = 3;
  double negated_probability = 0.0;
  double disequality_probability = 0.0;
  /// If >= 0, force this free count; otherwise uniform in [0, vars].
  int forced_num_free = -1;
};

/// Generates a valid random ECQ: every variable appears in at least one
/// predicate; relation names are R0, R1, ...; arities are consistent.
inline Query RandomQuery(Rng& rng, const RandomQueryOptions& opts = {}) {
  const int num_vars =
      opts.min_vars +
      static_cast<int>(rng.UniformInt(opts.max_vars - opts.min_vars + 1));
  Query q;
  for (int v = 0; v < num_vars; ++v) {
    q.AddVariable("v" + std::to_string(v));
  }
  const int num_free =
      opts.forced_num_free >= 0
          ? opts.forced_num_free
          : static_cast<int>(rng.UniformInt(num_vars + 1));
  q.SetNumFree(num_free);

  const int num_atoms =
      opts.min_atoms +
      static_cast<int>(rng.UniformInt(opts.max_atoms - opts.min_atoms + 1));
  std::vector<bool> covered(num_vars, false);
  int next_relation = 0;
  for (int a = 0; a < num_atoms; ++a) {
    Atom atom;
    atom.relation = "R" + std::to_string(next_relation++);
    const int arity = 1 + static_cast<int>(rng.UniformInt(opts.max_arity));
    for (int i = 0; i < arity; ++i) {
      const int v = static_cast<int>(rng.UniformInt(num_vars));
      atom.vars.push_back(v);
      covered[v] = true;
    }
    atom.negated = rng.Bernoulli(opts.negated_probability);
    q.AddAtom(std::move(atom));
  }
  // Cover any unused variables with unary atoms.
  for (int v = 0; v < num_vars; ++v) {
    if (!covered[v]) {
      Atom atom;
      atom.relation = "R" + std::to_string(next_relation++);
      atom.vars = {v};
      q.AddAtom(std::move(atom));
    }
  }
  // Random disequalities.
  for (int u = 0; u < num_vars; ++u) {
    for (int w = u + 1; w < num_vars; ++w) {
      if (rng.Bernoulli(opts.disequality_probability)) {
        q.AddDisequality(u, w);
      }
    }
  }
  return q;
}

/// A database covering sig(q) with random tuples; `density` is the
/// fraction of all possible tuples present per relation.
inline Database RandomDatabaseFor(const Query& q, uint32_t universe,
                                  double density, Rng& rng) {
  Database db(universe);
  for (const Atom& atom : q.atoms()) {
    const int arity = static_cast<int>(atom.vars.size());
    (void)db.DeclareRelation(atom.relation, arity);
    // Enumerate the full space when small; sample otherwise.
    uint64_t space = 1;
    for (int i = 0; i < arity; ++i) space *= universe;
    if (space <= 4096) {
      for (uint64_t code = 0; code < space; ++code) {
        if (!rng.Bernoulli(density)) continue;
        Tuple t(arity);
        uint64_t rest = code;
        for (int i = 0; i < arity; ++i) {
          t[i] = static_cast<Value>(rest % universe);
          rest /= universe;
        }
        (void)db.AddFact(atom.relation, std::move(t));
      }
    } else {
      const uint64_t wanted = static_cast<uint64_t>(density * double(space));
      for (uint64_t k = 0; k < wanted; ++k) {
        Tuple t(arity);
        for (int i = 0; i < arity; ++i) {
          t[i] = static_cast<Value>(rng.UniformInt(universe));
        }
        (void)db.AddFact(atom.relation, std::move(t));
      }
    }
  }
  db.Canonicalize();
  return db;
}

}  // namespace testing_util
}  // namespace cqcount

#endif  // CQCOUNT_TESTS_TEST_UTIL_H_
