#include "counting/union_count.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "query/parser.h"

namespace cqcount {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

UnionOptions TestOptions(uint64_t seed) {
  UnionOptions opts;
  opts.approx.seed = seed;
  opts.approx.epsilon = 0.15;
  opts.approx.delta = 0.2;
  opts.max_samples = 2000;
  return opts;
}

TEST(UnionCountTest, ExactBruteForceBaseline) {
  // Out-neighbours of something union in-neighbours of something on a
  // directed path 0->1->2: {0,1} u {1,2} = 3 answers.
  Query out = Parse("ans(x) :- E(x, y).");
  Query in = Parse("ans(x) :- E(y, x).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  ASSERT_TRUE(db.AddFact("E", {0, 1}).ok());
  ASSERT_TRUE(db.AddFact("E", {1, 2}).ok());
  db.Canonicalize();
  EXPECT_EQ(ExactCountUnionBruteForce({out, in}, db), 3u);
}

TEST(UnionCountTest, ApproxMatchesExactOnOverlappingUnion) {
  Query out = Parse("ans(x) :- E(x, y).");
  Query in = Parse("ans(x) :- E(y, x).");
  Database db = GraphToDatabase(CycleGraph(6));
  const double exact =
      static_cast<double>(ExactCountUnionBruteForce({out, in}, db));
  auto result = ApproxCountUnion({out, in}, db, TestOptions(1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->estimate, exact, 0.3 * exact + 0.5);
  EXPECT_EQ(result->per_query.size(), 2u);
}

TEST(UnionCountTest, DisjointUnionAddsUp) {
  Query red = Parse("ans(x) :- R(x).");
  Query blue = Parse("ans(x) :- B(x).");
  Database db(10);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  ASSERT_TRUE(db.DeclareRelation("B", 1).ok());
  for (Value v = 0; v < 4; ++v) ASSERT_TRUE(db.AddFact("R", {v}).ok());
  for (Value v = 6; v < 9; ++v) ASSERT_TRUE(db.AddFact("B", {v}).ok());
  db.Canonicalize();
  auto result = ApproxCountUnion({red, blue}, db, TestOptions(2));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 7.0, 1.5);
}

TEST(UnionCountTest, IdenticalQueriesDoNotDoubleCount) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(8);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  for (Value v = 0; v < 5; ++v) ASSERT_TRUE(db.AddFact("R", {v}).ok());
  db.Canonicalize();
  auto result = ApproxCountUnion({q, q, q}, db, TestOptions(3));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 5.0, 1.5);
}

TEST(UnionCountTest, EmptyUnion) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(4);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  auto result = ApproxCountUnion({q}, db, TestOptions(4));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 0.0);
}

TEST(UnionCountTest, RejectsMixedArities) {
  Query one = Parse("ans(x) :- R(x).");
  Query two = Parse("ans(x, y) :- S(x, y).");
  Database db(4);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  ASSERT_TRUE(db.DeclareRelation("S", 2).ok());
  EXPECT_FALSE(ApproxCountUnion({one, two}, db, TestOptions(5)).ok());
  EXPECT_FALSE(ApproxCountUnion({}, db, TestOptions(6)).ok());
}

TEST(UnionCountTest, DcqUnionWithDisequalities) {
  Query p1 = Parse("ans(x, y) :- E(x, y), x != y.");
  Query p2 = Parse("ans(x, y) :- E(y, x), x != y.");
  Database db = GraphToDatabase(PathGraph(4));
  const double exact =
      static_cast<double>(ExactCountUnionBruteForce({p1, p2}, db));
  auto result = ApproxCountUnion({p1, p2}, db, TestOptions(7));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, exact, 0.3 * exact + 0.5);
}

}  // namespace
}  // namespace cqcount
