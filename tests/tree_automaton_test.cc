#include "automata/tree_automaton.h"

#include <gtest/gtest.h>

#include "automata/ta_exact_count.h"
#include "util/random.h"

namespace cqcount {
namespace {

// An automaton over unary "lists": accepts label-0 chains of odd length.
// State 0 (initial): expects label 0 at an odd-position node.
TreeAutomaton OddChainAutomaton() {
  TreeAutomaton ta(2, 1, 0);
  ta.AddLeafTransition(0, 0);       // Odd chain of length 1.
  ta.AddUnaryTransition(0, 0, 1);   // Odd -> even below.
  ta.AddUnaryTransition(1, 0, 0);   // Even -> odd below.
  return ta;
}

LabeledTree Chain(int n, int label = 0) {
  LabeledTree t;
  t.nodes.resize(n);
  for (int i = 0; i < n; ++i) {
    t.nodes[i].label = label;
    if (i + 1 < n) t.nodes[i].children = {i + 1};
  }
  t.root = 0;
  return t;
}

TEST(LabeledTreeTest, ValidationCatchesMalformedTrees) {
  LabeledTree t = Chain(3);
  EXPECT_TRUE(t.Validate().ok());
  t.nodes[2].children = {0};  // Cycle.
  EXPECT_FALSE(t.Validate().ok());
  LabeledTree three;
  three.nodes.resize(4);
  three.nodes[0].children = {1, 2, 3};
  EXPECT_FALSE(three.Validate().ok());
}

TEST(TreeAutomatonTest, OddChainsAccepted) {
  TreeAutomaton ta = OddChainAutomaton();
  EXPECT_TRUE(ta.Accepts(Chain(1)));
  EXPECT_FALSE(ta.Accepts(Chain(2)));
  EXPECT_TRUE(ta.Accepts(Chain(3)));
  EXPECT_FALSE(ta.Accepts(Chain(4)));
  EXPECT_TRUE(ta.Accepts(Chain(5)));
}

TEST(TreeAutomatonTest, RunStatesExposeAllRoots) {
  TreeAutomaton ta = OddChainAutomaton();
  std::vector<bool> states = ta.RootStates(Chain(2));
  EXPECT_FALSE(states[0]);
  EXPECT_TRUE(states[1]);  // A run rooted at state 1 exists.
}

TEST(TreeAutomatonTest, BinaryTransitionsAreOrdered) {
  // Accepts exactly the two-leaf tree with left label 0, right label 1.
  TreeAutomaton ta(2, 2, 0);
  ta.AddLeafTransition(1, 0);
  ta.AddLeafTransition(0, 1);
  ta.AddBinaryTransition(0, 0, 1, 0);  // (left state 1, right state 0).
  LabeledTree t;
  t.nodes.resize(3);
  t.nodes[0].children = {1, 2};
  t.nodes[0].label = 0;
  t.nodes[1].label = 0;
  t.nodes[2].label = 1;
  EXPECT_TRUE(ta.Accepts(t));
  std::swap(t.nodes[1].label, t.nodes[2].label);
  EXPECT_FALSE(ta.Accepts(t));
}

TEST(TaExactCountTest, OddChainSliceCounts) {
  TreeAutomaton ta = OddChainAutomaton();
  // |L_n| = 1 for odd n (the single chain), 0 for even n.
  auto subsets = CountAcceptedBySubsets(ta, 3);
  ASSERT_TRUE(subsets.ok());
  EXPECT_DOUBLE_EQ(*subsets, 1.0);
  subsets = CountAcceptedBySubsets(ta, 4);
  ASSERT_TRUE(subsets.ok());
  EXPECT_DOUBLE_EQ(*subsets, 0.0);
  EXPECT_DOUBLE_EQ(CountRunsDp(ta, 5), 1.0);
}

TEST(TaExactCountTest, RunsOvercountAmbiguity) {
  // Two distinct runs accept the same single-leaf input.
  TreeAutomaton ta(2, 1, 0);
  ta.AddLeafTransition(1, 0);
  ta.AddUnaryTransition(0, 0, 1);
  // Add a second unary path to the same acceptance.
  ta.AddUnaryTransition(0, 0, 1);
  EXPECT_DOUBLE_EQ(CountRunsDp(ta, 2), 2.0);
  auto distinct = CountAcceptedBySubsets(ta, 2);
  ASSERT_TRUE(distinct.ok());
  EXPECT_DOUBLE_EQ(*distinct, 1.0);
}

TEST(TaExactCountTest, EnumerationMatchesSubsetsOnRandomAutomata) {
  Rng rng(99);
  for (int trial = 0; trial < 15; ++trial) {
    const int states = 2 + static_cast<int>(rng.UniformInt(2));
    const int labels = 1 + static_cast<int>(rng.UniformInt(2));
    TreeAutomaton ta(states, labels, 0);
    for (int q = 0; q < states; ++q) {
      for (int a = 0; a < labels; ++a) {
        if (rng.Bernoulli(0.4)) ta.AddLeafTransition(q, a);
        if (rng.Bernoulli(0.4)) {
          ta.AddUnaryTransition(q, a,
                                static_cast<int>(rng.UniformInt(states)));
        }
        if (rng.Bernoulli(0.3)) {
          ta.AddBinaryTransition(q, a,
                                 static_cast<int>(rng.UniformInt(states)),
                                 static_cast<int>(rng.UniformInt(states)));
        }
      }
    }
    for (int n = 1; n <= 5; ++n) {
      auto by_subsets = CountAcceptedBySubsets(ta, n);
      auto by_enum = CountAcceptedByEnumeration(ta, n);
      ASSERT_TRUE(by_subsets.ok());
      ASSERT_TRUE(by_enum.ok());
      EXPECT_DOUBLE_EQ(*by_subsets, static_cast<double>(*by_enum))
          << "trial " << trial << " n " << n;
    }
  }
}

TEST(TaExactCountTest, SubsetDpRefusesHugeAutomata) {
  TreeAutomaton ta(31, 1, 0);
  EXPECT_FALSE(CountAcceptedBySubsets(ta, 3).ok());
}

}  // namespace
}  // namespace cqcount
