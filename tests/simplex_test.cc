#include "lp/simplex.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(SimplexTest, SimpleMaximisation) {
  // max x + y  s.t.  x <= 2, y <= 3, x + y <= 4.
  LpResult r = SolveLpMax({1, 1}, {{1, 0}, {0, 1}, {1, 1}}, {2, 3, 4});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-9);
}

TEST(SimplexTest, UnboundedProblem) {
  // max x with no constraints binding x from above.
  LpResult r = SolveLpMax({1, 0}, {{0, 1}}, {5});
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, InfeasibleProblem) {
  // x <= -1 with x >= 0 is infeasible.
  LpResult r = SolveLpMax({1}, {{1}}, {-1});
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, NegativeRhsFeasible) {
  // max x  s.t.  -x <= -2 (i.e. x >= 2), x <= 5.
  LpResult r = SolveLpMax({1}, {{-1}, {1}}, {-2, 5});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-9);
}

TEST(SimplexTest, DegenerateVertices) {
  // Multiple constraints through the optimum; Bland's rule must not cycle.
  LpResult r = SolveLpMax({1, 1}, {{1, 0}, {1, 0}, {0, 1}, {1, 1}},
                          {1, 1, 1, 2});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(SimplexTest, SolutionVectorIsReturned) {
  LpResult r = SolveLpMax({3, 2}, {{1, 0}, {0, 1}}, {4, 7});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  ASSERT_EQ(r.x.size(), 2u);
  EXPECT_NEAR(r.x[0], 4.0, 1e-9);
  EXPECT_NEAR(r.x[1], 7.0, 1e-9);
}

TEST(CoveringTest, TriangleFractionalCover) {
  // Vertices {0,1,2}, edges {0,1}, {1,2}, {0,2}; the optimal fractional
  // edge cover puts 1/2 on each edge: value 3/2.
  std::vector<std::vector<double>> a = {
      {1, 0, 1},  // vertex 0 covered by edges 0 and 2
      {1, 1, 0},  // vertex 1
      {0, 1, 1},  // vertex 2
  };
  LpResult r = SolveCoveringLpMin({1, 1, 1}, a, {1, 1, 1});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.5, 1e-9);
}

TEST(CoveringTest, SingleEdgeCoversAll) {
  // One edge containing both vertices: cover number 1.
  LpResult r = SolveCoveringLpMin({1}, {{1}, {1}}, {1, 1});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(CoveringTest, WeightedCover) {
  // min 2x + y  s.t.  x + y >= 1, x >= 0.25.
  LpResult r = SolveCoveringLpMin({2, 1}, {{1, 1}, {1, 0}}, {1, 0.25});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2 * 0.25 + 0.75, 1e-9);
}

// Property sweep: covering LPs on k-cliques have value k/2 for the edge
// set of all pairs (perfect fractional matching duality).
class CliqueCoverTest : public ::testing::TestWithParam<int> {};

TEST_P(CliqueCoverTest, CliqueFractionalEdgeCover) {
  const int k = GetParam();
  std::vector<std::vector<double>> a(k);
  std::vector<double> c;
  int e = 0;
  for (int i = 0; i < k; ++i) a[i] = {};
  std::vector<std::vector<double>> rows(k);
  // Build incidence: edges are all pairs.
  const int num_edges = k * (k - 1) / 2;
  for (int i = 0; i < k; ++i) rows[i].assign(num_edges, 0.0);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      rows[i][e] = 1.0;
      rows[j][e] = 1.0;
      ++e;
    }
  }
  c.assign(num_edges, 1.0);
  LpResult r = SolveCoveringLpMin(c, rows, std::vector<double>(k, 1.0));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, k / 2.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Cliques, CliqueCoverTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cqcount
