#include "hom/decomposition_solver.h"

#include <gtest/gtest.h>

#include "decomposition/elimination_order.h"
#include "hom/backtracking.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

DecompositionSolver MakeSolver(const Query& q, const Database& db) {
  Hypergraph h = q.BuildHypergraph();
  return DecompositionSolver(q, db, DecompositionFromOrder(h, MinFillOrder(h)));
}

TEST(DecompositionSolverTest, DecidesPathQuery) {
  Query q = Parse("ans() :- E(x, y), E(y, z).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  ASSERT_TRUE(db.AddFact("E", {0, 1}).ok());
  ASSERT_TRUE(db.AddFact("E", {1, 2}).ok());
  db.Canonicalize();
  DecompositionSolver solver = MakeSolver(q, db);
  EXPECT_TRUE(solver.Decide(nullptr));
}

TEST(DecompositionSolverTest, DetectsUnsatisfiable) {
  Query q = Parse("ans() :- E(x, y), E(y, x).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  ASSERT_TRUE(db.AddFact("E", {0, 1}).ok());  // No back edge.
  db.Canonicalize();
  DecompositionSolver solver = MakeSolver(q, db);
  EXPECT_FALSE(solver.Decide(nullptr));
}

TEST(DecompositionSolverTest, CountsPathSolutions) {
  // Solutions of E(x,y) over a directed 3-cycle: 3.
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  ASSERT_TRUE(db.AddFact("E", {0, 1}).ok());
  ASSERT_TRUE(db.AddFact("E", {1, 2}).ok());
  ASSERT_TRUE(db.AddFact("E", {2, 0}).ok());
  db.Canonicalize();
  DecompositionSolver solver = MakeSolver(q, db);
  EXPECT_DOUBLE_EQ(solver.CountSolutions(nullptr), 3.0);
}

TEST(DecompositionSolverTest, DomainsRestrictDecision) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  ASSERT_TRUE(db.AddFact("R", {1}).ok());
  db.Canonicalize();
  DecompositionSolver solver = MakeSolver(q, db);
  VarDomains domains;
  domains.allowed.resize(1);
  domains.allowed[0] = testing_util::MaskOf({true, false, false});
  EXPECT_FALSE(solver.Decide(&domains));
  domains.allowed[0] = testing_util::MaskOf({false, true, false});
  EXPECT_TRUE(solver.Decide(&domains));
}

TEST(DecompositionSolverTest, NegatedAtomsHonoured) {
  Query q = Parse("ans() :- R(x, y), !S(x, y).");
  Database db(2);
  ASSERT_TRUE(db.DeclareRelation("R", 2).ok());
  ASSERT_TRUE(db.DeclareRelation("S", 2).ok());
  ASSERT_TRUE(db.AddFact("R", {0, 1}).ok());
  ASSERT_TRUE(db.AddFact("S", {0, 1}).ok());
  db.Canonicalize();
  DecompositionSolver solver = MakeSolver(q, db);
  EXPECT_FALSE(solver.Decide(nullptr));
  ASSERT_TRUE(db.AddFact("R", {1, 1}).ok());
  db.Canonicalize();
  DecompositionSolver solver2 = MakeSolver(q, db);
  EXPECT_TRUE(solver2.Decide(nullptr));
}

// Properties: decision and counting agree with brute force on random
// queries (negations allowed; no disequalities for the counting DP).
class SolverDecisionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverDecisionPropertyTest, DecisionMatchesBruteForce) {
  Rng rng(GetParam() * 31 + 7);
  RandomQueryOptions qopts;
  qopts.negated_probability = 0.3;
  Query q = RandomQuery(rng, qopts);
  Database db = RandomDatabaseFor(q, 4, 0.4, rng);
  DecompositionSolver solver = MakeSolver(q, db);
  EXPECT_EQ(solver.Decide(nullptr), DecideSolutionBrute(q, db))
      << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverDecisionPropertyTest,
                         ::testing::Range(0, 50));

class SolverCountPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverCountPropertyTest, CountMatchesBruteForce) {
  Rng rng(GetParam() * 131 + 9);
  RandomQueryOptions qopts;
  qopts.negated_probability = 0.25;
  Query q = RandomQuery(rng, qopts);
  Database db = RandomDatabaseFor(q, 4, 0.45, rng);
  DecompositionSolver solver = MakeSolver(q, db);
  EXPECT_DOUBLE_EQ(solver.CountSolutions(nullptr),
                   static_cast<double>(CountSolutionsBrute(q, db)))
      << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverCountPropertyTest,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace cqcount
