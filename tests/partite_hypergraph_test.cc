#include "counting/partite_hypergraph.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::MaskOf;

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

PartiteSubset FullParts(int l, uint32_t n) {
  PartiteSubset s;
  s.parts.assign(l, Bitset(n, true));
  return s;
}

TEST(BruteForceOracleTest, Observation25Bijection) {
  // The hyperedges of H(phi, D) are exactly the answers.
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db = GraphToDatabase(PathGraph(3));
  BruteForceEdgeFreeOracle oracle(q, db);
  EXPECT_EQ(oracle.answers().size(), 4u);
  EXPECT_FALSE(oracle.IsEdgeFree(FullParts(2, 3)));
}

TEST(BruteForceOracleTest, RestrictedPartsDetectEmptiness) {
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db = GraphToDatabase(PathGraph(3));  // Edges 0-1, 1-2.
  BruteForceEdgeFreeOracle oracle(q, db);
  PartiteSubset s = FullParts(2, 3);
  // V_0 = {0}, V_1 = {2}: no edge from 0 to 2.
  s.parts[0] = MaskOf({true, false, false});
  s.parts[1] = MaskOf({false, false, true});
  EXPECT_TRUE(oracle.IsEdgeFree(s));
  // V_0 = {0}, V_1 = {1}: edge exists.
  s.parts[1] = MaskOf({false, true, false});
  EXPECT_FALSE(oracle.IsEdgeFree(s));
  EXPECT_EQ(oracle.num_calls(), 2u);
}

TEST(BruteForceOracleTest, EmptyPartIsEdgeFree) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(2);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  ASSERT_TRUE(db.AddFact("R", {0}).ok());
  db.Canonicalize();
  BruteForceEdgeFreeOracle oracle(q, db);
  PartiteSubset s;
  s.parts = {Bitset(2, false)};
  EXPECT_TRUE(oracle.IsEdgeFree(s));
}

TEST(GeneralAdapterTest, PermutationReductionMatchesDirect) {
  // Lemma 22's l!-permutation trick: unaligned parts resolve correctly.
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db = GraphToDatabase(PathGraph(3));
  BruteForceEdgeFreeOracle aligned(q, db);
  GeneralEdgeFreeAdapter adapter(&aligned, 2, 3);

  // W_1 = {(value 0, position 0), (value 1, position 1)},
  // W_2 = {(value 1, position 0), (value 2, position 1)}.
  // Under the identity permutation: V_0 = {0}, V_1 = {2} (no edge);
  // under the swap: V_0 = {1}, V_1 = {1} -- but (1,1) is not an edge
  // either (no loop). However W_1 x W_2 also admits 0->1 via identity?
  // V_0 from W_1 = {0}, V_1 from W_2 = {2}: no. Swap: V_0 from W_2 =
  // {1}, V_1 from W_1 = {1}: no loop. Hence edge-free.
  GeneralPartiteSubset w;
  w.parts = {{0 * 3 + 0, 1 * 3 + 1}, {0 * 3 + 1, 1 * 3 + 2}};
  EXPECT_TRUE(adapter.IsEdgeFree(w));

  // Now include (value 1, position 1) in W_2: identity gives V_0 = {0},
  // V_1 = {1}: the edge 0-1 appears.
  w.parts[1].push_back(1 * 3 + 1);
  EXPECT_FALSE(adapter.IsEdgeFree(w));
}

TEST(GeneralAdapterTest, AgreesWithAlignedOnAlignedInputs) {
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db = GraphToDatabase(CycleGraph(4));
  BruteForceEdgeFreeOracle aligned(q, db);
  GeneralEdgeFreeAdapter adapter(&aligned, 2, 4);
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    PartiteSubset s = FullParts(2, 4);
    s.parts[0] = rng.RandomMask(4, 0.5);
    s.parts[1] = rng.RandomMask(4, 0.5);
    GeneralPartiteSubset w;
    w.parts.resize(2);
    for (int i = 0; i < 2; ++i) {
      for (uint32_t v = 0; v < 4; ++v) {
        if (s.parts[i].Test(v)) {
          w.parts[i].push_back(static_cast<uint64_t>(i) * 4 + v);
        }
      }
    }
    BruteForceEdgeFreeOracle fresh(q, db);
    EXPECT_EQ(adapter.IsEdgeFree(w), fresh.IsEdgeFree(s));
  }
}

}  // namespace
}  // namespace cqcount
