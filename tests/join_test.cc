#include "hom/join.h"

#include <gtest/gtest.h>

#include <functional>

#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

// Reference implementation of the BagJoiner semantics: enumerate all
// assignments of `vars` and check every constraint directly.
std::vector<Tuple> NaiveBagSolutions(const Query& q, const Database& db,
                                     const std::vector<int>& vars,
                                     const VarDomains* domains,
                                     BagJoiner::Options opts) {
  std::vector<Tuple> result;
  const uint32_t n = db.universe_size();
  std::vector<int> level_of(q.num_vars(), -1);
  for (size_t d = 0; d < vars.size(); ++d) level_of[vars[d]] = int(d);
  Tuple assignment(vars.size(), 0);
  std::function<void(size_t)> rec = [&](size_t d) {
    if (d == vars.size()) {
      // Positive atoms: some fact must be consistent with the partial
      // assignment (Definition 47).
      for (const Atom& atom : q.atoms()) {
        const Relation& rel = db.relation(atom.relation);
        if (!atom.negated) {
          bool supported = false;
          for (TupleView t : rel) {
            bool consistent = true;
            for (size_t p = 0; p < atom.vars.size() && consistent; ++p) {
              // Repeated positions must agree.
              for (size_t p2 = p + 1; p2 < atom.vars.size(); ++p2) {
                if (atom.vars[p] == atom.vars[p2] && t[p] != t[p2]) {
                  consistent = false;
                  break;
                }
              }
              const int lvl = level_of[atom.vars[p]];
              if (consistent && lvl >= 0 && t[p] != assignment[lvl]) {
                consistent = false;
              }
            }
            if (consistent) {
              supported = true;
              break;
            }
          }
          if (!supported) return;
        } else if (opts.enforce_negated) {
          bool all_in = true;
          for (int v : atom.vars) all_in = all_in && level_of[v] >= 0;
          if (!all_in) continue;
          Tuple t;
          for (int v : atom.vars) t.push_back(assignment[level_of[v]]);
          if (rel.Contains(t)) return;
        }
      }
      if (opts.enforce_disequalities) {
        for (const Disequality& dq : q.disequalities()) {
          if (level_of[dq.lhs] >= 0 && level_of[dq.rhs] >= 0 &&
              assignment[level_of[dq.lhs]] ==
                  assignment[level_of[dq.rhs]]) {
            return;
          }
        }
      }
      result.push_back(assignment);
      return;
    }
    for (Value w = 0; w < n; ++w) {
      if (domains && !domains->Allows(vars[d], w)) continue;
      assignment[d] = w;
      rec(d + 1);
    }
  };
  rec(0);
  return result;
}

TEST(BagJoinerTest, SimpleTwoAtomJoin) {
  Query q = Parse("ans(x, y, z) :- R(x, y), S(y, z).");
  Database db(4);
  ASSERT_TRUE(db.DeclareRelation("R", 2).ok());
  ASSERT_TRUE(db.DeclareRelation("S", 2).ok());
  ASSERT_TRUE(db.AddFact("R", {0, 1}).ok());
  ASSERT_TRUE(db.AddFact("R", {2, 1}).ok());
  ASSERT_TRUE(db.AddFact("S", {1, 3}).ok());
  db.Canonicalize();
  BagJoiner joiner(q, db, {0, 1, 2}, {});
  Relation out = joiner.Materialise(nullptr);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains({0, 1, 3}));
  EXPECT_TRUE(out.Contains({2, 1, 3}));
}

TEST(BagJoinerTest, EmptyPositiveRelationMeansInfeasible) {
  Query q = Parse("ans(x) :- R(x), S(x).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  ASSERT_TRUE(db.DeclareRelation("S", 1).ok());
  ASSERT_TRUE(db.AddFact("R", {0}).ok());
  db.Canonicalize();
  BagJoiner joiner(q, db, {0}, {});
  EXPECT_TRUE(joiner.infeasible());
  EXPECT_TRUE(joiner.Materialise(nullptr).empty());
}

TEST(BagJoinerTest, EmptyBagYieldsEmptyTupleWhenFeasible) {
  Query q = Parse("ans() :- R(x).");
  Database db(2);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  ASSERT_TRUE(db.AddFact("R", {1}).ok());
  db.Canonicalize();
  BagJoiner joiner(q, db, {}, {});
  Relation out = joiner.Materialise(nullptr);
  EXPECT_EQ(out.size(), 1u);  // The empty assignment.
}

TEST(BagJoinerTest, RepeatedVariableInAtom) {
  Query q = Parse("ans(x) :- E(x, x).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  ASSERT_TRUE(db.AddFact("E", {0, 1}).ok());
  ASSERT_TRUE(db.AddFact("E", {2, 2}).ok());
  db.Canonicalize();
  BagJoiner joiner(q, db, {0}, {});
  Relation out = joiner.Materialise(nullptr);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({2}));
}

TEST(BagJoinerTest, NegatedAtomFiltersInsideBag) {
  Query q = Parse("ans(x, y) :- R(x, y), !S(x, y).");
  Database db(2);
  ASSERT_TRUE(db.DeclareRelation("R", 2).ok());
  ASSERT_TRUE(db.DeclareRelation("S", 2).ok());
  ASSERT_TRUE(db.AddFact("R", {0, 0}).ok());
  ASSERT_TRUE(db.AddFact("R", {0, 1}).ok());
  ASSERT_TRUE(db.AddFact("S", {0, 1}).ok());
  db.Canonicalize();
  BagJoiner joiner(q, db, {0, 1}, {});
  Relation out = joiner.Materialise(nullptr);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({0, 0}));
}

TEST(BagJoinerTest, DisequalitiesEnforcedWhenRequested) {
  Query q = Parse("ans(x, y) :- R(x, y), x != y.");
  Database db(2);
  ASSERT_TRUE(db.DeclareRelation("R", 2).ok());
  ASSERT_TRUE(db.AddFact("R", {0, 0}).ok());
  ASSERT_TRUE(db.AddFact("R", {0, 1}).ok());
  db.Canonicalize();
  BagJoiner::Options opts;
  opts.enforce_disequalities = true;
  BagJoiner joiner(q, db, {0, 1}, opts);
  Relation out = joiner.Materialise(nullptr);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({0, 1}));
}

TEST(BagJoinerTest, DomainsRestrictValues) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(4);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  for (Value v = 0; v < 4; ++v) ASSERT_TRUE(db.AddFact("R", {v}).ok());
  db.Canonicalize();
  VarDomains domains;
  domains.allowed.resize(1);
  domains.allowed[0] = testing_util::MaskOf({false, true, false, true});
  BagJoiner joiner(q, db, {0}, {});
  Relation out = joiner.Materialise(&domains);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains({1}));
  EXPECT_TRUE(out.Contains({3}));
}

TEST(BagJoinerTest, EarlyStopViaCallback) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(5);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  for (Value v = 0; v < 5; ++v) ASSERT_TRUE(db.AddFact("R", {v}).ok());
  db.Canonicalize();
  BagJoiner joiner(q, db, {0}, {});
  int seen = 0;
  const bool completed = joiner.Enumerate(nullptr, [&seen](const Tuple&) {
    return ++seen < 2;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 2);
}

// Property: BagJoiner agrees with the naive reference on random queries,
// databases, bags and domains.
class BagJoinerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BagJoinerPropertyTest, MatchesNaiveSemantics) {
  Rng rng(GetParam() * 997 + 13);
  RandomQueryOptions qopts;
  qopts.negated_probability = 0.3;
  qopts.disequality_probability = 0.2;
  Query q = RandomQuery(rng, qopts);
  Database db = RandomDatabaseFor(q, 4, 0.45, rng);

  // Random bag: each variable with probability 1/2.
  std::vector<int> bag;
  for (int v = 0; v < q.num_vars(); ++v) {
    if (rng.Bernoulli(0.5)) bag.push_back(v);
  }
  // Random domains half the time.
  VarDomains domains;
  const bool use_domains = rng.Bernoulli(0.5);
  if (use_domains) {
    domains.allowed.resize(q.num_vars());
    for (int v = 0; v < q.num_vars(); ++v) {
      if (rng.Bernoulli(0.5)) domains.allowed[v] = rng.RandomMask(4, 0.7);
    }
  }
  BagJoiner::Options opts;
  opts.enforce_negated = true;
  opts.enforce_disequalities = rng.Bernoulli(0.5);

  BagJoiner joiner(q, db, bag, opts);
  Relation fast = joiner.Materialise(use_domains ? &domains : nullptr);
  std::vector<Tuple> slow = NaiveBagSolutions(
      q, db, bag, use_domains ? &domains : nullptr, opts);
  std::sort(slow.begin(), slow.end());
  ASSERT_EQ(fast.size(), slow.size()) << q.ToString();
  for (size_t i = 0; i < slow.size(); ++i) {
    EXPECT_EQ(fast[i], AsView(slow[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BagJoinerPropertyTest,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace cqcount
