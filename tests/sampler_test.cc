#include "counting/sampler.h"

#include <gtest/gtest.h>

#include <map>

#include "app/graph_gen.h"
#include "counting/partite_hypergraph.h"
#include "query/parser.h"

namespace cqcount {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

SamplerOptions TestOptions(uint64_t seed) {
  SamplerOptions opts;
  opts.approx.seed = seed;
  opts.approx.epsilon = 0.2;
  opts.approx.delta = 0.2;
  return opts;
}

TEST(SamplerTest, SamplesAreAnswers) {
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db = GraphToDatabase(CycleGraph(5));
  auto sampler = AnswerSampler::Create(q, db, TestOptions(1));
  ASSERT_TRUE(sampler.ok());
  BruteForceEdgeFreeOracle truth(q, db);
  std::set<Tuple> answers;
  for (TupleView t : truth.answers()) answers.insert(MaterializeTuple(t));
  auto samples = (*sampler)->Sample(20);
  ASSERT_TRUE(samples.ok());
  for (const Tuple& t : *samples) {
    EXPECT_TRUE(answers.count(t) > 0);
  }
}

TEST(SamplerTest, EmptyAnswerSetReported) {
  Query q = Parse("ans(x) :- R(x).");
  Database db(4);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  auto sampler = AnswerSampler::Create(q, db, TestOptions(2));
  ASSERT_TRUE(sampler.ok());
  auto sample = (*sampler)->SampleOne();
  EXPECT_FALSE(sample.ok());
  EXPECT_EQ(sample.status().code(), StatusCode::kNotFound);
}

TEST(SamplerTest, RequiresFreeVariables) {
  Query q = Parse("ans() :- R(x).");
  Database db(2);
  ASSERT_TRUE(db.DeclareRelation("R", 1).ok());
  EXPECT_FALSE(AnswerSampler::Create(q, db, TestOptions(3)).ok());
}

TEST(SamplerTest, RoughUniformityOverSmallAnswerSet) {
  // 6 answers (directed edges of a triangle); 300 samples should hit each
  // answer a healthy number of times.
  Query q = Parse("ans(x, y) :- E(x, y).");
  Database db = GraphToDatabase(CliqueGraph(3));
  auto sampler = AnswerSampler::Create(q, db, TestOptions(4));
  ASSERT_TRUE(sampler.ok());
  std::map<Tuple, int> counts;
  const int total = 300;
  for (int i = 0; i < total; ++i) {
    auto s = (*sampler)->SampleOne();
    ASSERT_TRUE(s.ok());
    counts[*s]++;
  }
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [tuple, count] : counts) {
    // Expected 50 each; allow generous slack.
    EXPECT_GT(count, 20);
    EXPECT_LT(count, 100);
  }
}

TEST(SamplerTest, MembershipAgreesWithGroundTruth) {
  Query q = Parse("ans(x) :- E(x, y), E(x, z), y != z.");
  Database db = GraphToDatabase(PathGraph(4));
  auto sampler = AnswerSampler::Create(q, db, TestOptions(5));
  ASSERT_TRUE(sampler.ok());
  // Interior vertices 1, 2 have two distinct neighbours; 0 and 3 do not.
  EXPECT_TRUE((*sampler)->Member({1}, 1e-6));
  EXPECT_TRUE((*sampler)->Member({2}, 1e-6));
  EXPECT_FALSE((*sampler)->Member({0}, 1e-6));
  EXPECT_FALSE((*sampler)->Member({3}, 1e-6));
}

TEST(SamplerTest, DisequalityQuerySamplesRespectConstraints) {
  Query q = Parse("ans(x, y) :- E(x, y), E(y, x), x != y.");
  Database db = GraphToDatabase(CliqueGraph(4));
  auto sampler = AnswerSampler::Create(q, db, TestOptions(6));
  ASSERT_TRUE(sampler.ok());
  auto samples = (*sampler)->Sample(10);
  ASSERT_TRUE(samples.ok());
  for (const Tuple& t : *samples) {
    EXPECT_NE(t[0], t[1]);
  }
}

}  // namespace
}  // namespace cqcount
