#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace cqcount {
namespace failpoint {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  // Arming is process-global: never let a failing test leak a site.
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedSitesAreNoOps) {
  EXPECT_TRUE(Check("fp.unarmed").ok());
  EXPECT_FALSE(ShouldFail("fp.unarmed"));
  EXPECT_EQ(FireCount("fp.unarmed"), 0u);
}

TEST_F(FailpointTest, InjectsTheConfiguredError) {
  Config config;
  config.inject_error = true;
  config.error_code = StatusCode::kFailedPrecondition;
  config.error_message = "injected outage";
  Arm("fp.err", config);
  Status status = Check("fp.err");
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("injected outage"), std::string::npos);
  EXPECT_EQ(FireCount("fp.err"), 1u);
}

TEST_F(FailpointTest, SkipCountsDownBeforeFiring) {
  Config config;
  config.skip = 2;
  config.inject_error = true;
  Arm("fp.skip", config);
  EXPECT_TRUE(Check("fp.skip").ok());
  EXPECT_TRUE(Check("fp.skip").ok());
  EXPECT_FALSE(Check("fp.skip").ok());
  EXPECT_EQ(FireCount("fp.skip"), 1u);
}

TEST_F(FailpointTest, MaxFiresDisarmsTheSite) {
  Config config;
  config.max_fires = 2;
  config.inject_error = true;
  Arm("fp.twice", config);
  EXPECT_FALSE(Check("fp.twice").ok());
  EXPECT_FALSE(Check("fp.twice").ok());
  EXPECT_TRUE(Check("fp.twice").ok());  // Exhausted: back to a no-op.
  EXPECT_EQ(FireCount("fp.twice"), 2u);
}

TEST_F(FailpointTest, CallbackFiresWithoutInjectingAnError) {
  int fired = 0;
  Config config;
  config.on_fire = [&fired] { ++fired; };
  Arm("fp.cb", config);
  // No inject_error: the site observes the fire (callback) but the caller
  // proceeds — the shape the mid-run cancellation tests rely on.
  EXPECT_TRUE(Check("fp.cb").ok());
  EXPECT_EQ(fired, 1);
}

TEST_F(FailpointTest, ShouldFailForcesSlowPathBranches) {
  Arm("fp.slow", {});
  EXPECT_TRUE(ShouldFail("fp.slow"));
  Disarm("fp.slow");
  EXPECT_FALSE(ShouldFail("fp.slow"));
}

TEST_F(FailpointTest, RearmingResetsHitCounting) {
  Config config;
  config.skip = 1;
  config.inject_error = true;
  Arm("fp.rearm", config);
  EXPECT_TRUE(Check("fp.rearm").ok());
  Arm("fp.rearm", config);  // Hit counter resets: the skip applies again.
  EXPECT_TRUE(Check("fp.rearm").ok());
  EXPECT_FALSE(Check("fp.rearm").ok());
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnDestruction) {
  {
    Config config;
    config.inject_error = true;
    ScopedFailpoint scoped("fp.scoped", config);
    EXPECT_FALSE(Check("fp.scoped").ok());
  }
  EXPECT_TRUE(Check("fp.scoped").ok());
}

TEST_F(FailpointTest, CountdownIsExactUnderConcurrentHits) {
  Config config;
  config.skip = 100;
  config.max_fires = 5;
  Arm("fp.mt", config);
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fires] {
      for (int i = 0; i < 50; ++i) {
        if (ShouldFail("fp.mt")) fires.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // 200 hits against skip=100, max_fires=5: exactly 5 fire, whichever
  // threads' hits land 101st..105th.
  EXPECT_EQ(fires.load(), 5);
  EXPECT_EQ(FireCount("fp.mt"), 5u);
}

}  // namespace
}  // namespace failpoint
}  // namespace cqcount
