// Cross-thread determinism of the intra-query parallel estimation stack.
//
// The contract under test: a fixed-seed estimate is a pure function of the
// request — bit-identical whether the DLM sampling runs inline, on 2
// lanes, or on 4, and regardless of how many batch workers share the
// pool. Covers the fptras-tw, fptras-fhw and sampler paths at the module
// level, the raw DLM estimator against a forked brute-force oracle, and
// the engine end to end over a 1/2/4-intra x 1/2/4-batch grid.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "counting/dlm_counter.h"
#include "counting/fptras.h"
#include "counting/sampler.h"
#include "engine/engine.h"
#include "test_util.h"
#include "util/executor.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

constexpr uint32_t kUniverse = 6;

Query RandomEstimationQuery(Rng& rng, int num_diseq) {
  RandomQueryOptions qopts;
  qopts.min_vars = 2;
  qopts.max_vars = 4;
  qopts.negated_probability = 0.15;
  qopts.forced_num_free = 2;
  Query q = RandomQuery(rng, qopts);
  for (int attempt = 0, added = 0; attempt < 20 && added < num_diseq;
       ++attempt) {
    const int u = static_cast<int>(rng.UniformInt(q.num_vars()));
    const int w = static_cast<int>(rng.UniformInt(q.num_vars()));
    if (u == w) continue;
    q.AddDisequality(std::min(u, w), std::max(u, w));
    ++added;
  }
  return q;
}

// ~50 random queries (the suite-level property): each estimator path must
// report the same estimate/exact/converged/oracle_calls triple at 1, 2
// and 4 intra-query lanes.
class IntraQueryDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(IntraQueryDeterminismTest, FptrasTwAndFhwAndSamplerPaths) {
  const int seed = GetParam();
  Rng rng(seed * 271 + 13);
  Query q = RandomEstimationQuery(rng, seed % 3);
  Database db = RandomDatabaseFor(q, kUniverse, 0.5, rng);

  struct Observed {
    double estimate;
    bool exact;
    bool converged;
    uint64_t oracle_calls;
    std::vector<Tuple> samples;
  };
  auto run_all = [&](Executor* pool, int lanes) -> Observed {
    Observed obs{};
    ApproxOptions opts;
    opts.epsilon = 0.3;
    opts.delta = 0.2;
    opts.seed = static_cast<uint64_t>(seed) * 7919 + 1;
    // A small exact budget forces the sampling phases on non-trivial
    // instances (the interesting path for determinism).
    opts.dlm.exact_enumeration_budget = 8;
    opts.pool = pool;
    opts.intra_threads = lanes;

    auto tw = ApproxCountAnswers(q, db, opts);
    EXPECT_TRUE(tw.ok()) << tw.status().ToString();
    obs.estimate = tw->estimate;
    obs.exact = tw->exact;
    obs.converged = tw->converged;
    obs.oracle_calls = tw->edgefree_calls;

    opts.objective = WidthObjective::kFractionalHypertreewidth;
    auto fhw = ApproxCountAnswers(q, db, opts);
    EXPECT_TRUE(fhw.ok()) << fhw.status().ToString();
    obs.estimate += fhw->estimate;
    obs.exact = obs.exact && fhw->exact;

    // Sampler path: the drawn answers exercise the parallel descent
    // sub-counts and must be identical tuples at every lane count.
    SamplerOptions sopts;
    sopts.approx = opts;
    sopts.approx.objective = WidthObjective::kTreewidth;
    auto sampler = AnswerSampler::Create(q, db, sopts);
    if (sampler.ok()) {
      auto samples = (*sampler)->Sample(3);
      if (samples.ok()) obs.samples = *samples;
    }
    return obs;
  };

  std::optional<Observed> reference;
  for (int lanes : {1, 2, 4}) {
    std::unique_ptr<Executor> pool;
    if (lanes > 1) pool = std::make_unique<Executor>(lanes);
    Observed obs = run_all(pool.get(), lanes);
    if (!reference.has_value()) {
      reference = obs;
      continue;
    }
    EXPECT_EQ(obs.estimate, reference->estimate)
        << q.ToString() << " lanes=" << lanes;
    EXPECT_EQ(obs.exact, reference->exact) << q.ToString();
    EXPECT_EQ(obs.converged, reference->converged) << q.ToString();
    EXPECT_EQ(obs.oracle_calls, reference->oracle_calls)
        << q.ToString() << " lanes=" << lanes
        << " (oracle-call accounting must be deterministic)";
    EXPECT_EQ(obs.samples, reference->samples) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntraQueryDeterminismTest,
                         ::testing::Range(0, 50));

// Raw DLM over a forked brute-force oracle: the partitioned estimator's
// result (and its deterministic call accounting) must not depend on the
// lane count even without the colour-coding stack in between.
TEST(DlmParallelTest, PartitionedEstimateIndependentOfLanes) {
  for (int instance = 0; instance < 8; ++instance) {
    Rng rng(instance * 97 + 5);
    RandomQueryOptions qopts;
    qopts.forced_num_free = 2;
    Query q = RandomQuery(rng, qopts);
    Database db = RandomDatabaseFor(q, kUniverse, 0.55, rng);
    BruteForceEdgeFreeOracle oracle(q, db);

    DlmOptions opts;
    opts.epsilon = 0.25;
    opts.delta = 0.1;  // Several median runs.
    opts.exact_enumeration_budget = 4;
    opts.seed = instance * 31 + 7;
    std::vector<uint32_t> part_sizes(q.num_free(), kUniverse);

    auto reference = DlmCountEdges(part_sizes, oracle, opts);
    ASSERT_TRUE(reference.ok());
    for (int lanes : {2, 4}) {
      Executor pool(lanes);
      DlmOptions popts = opts;
      popts.pool = &pool;
      popts.intra_threads = lanes;
      auto parallel = DlmCountEdges(part_sizes, oracle, popts);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(parallel->estimate, reference->estimate)
          << q.ToString() << " lanes=" << lanes;
      EXPECT_EQ(parallel->exact, reference->exact);
      EXPECT_EQ(parallel->converged, reference->converged);
      EXPECT_EQ(parallel->oracle_calls, reference->oracle_calls);
      if (!reference->exact) {
        EXPECT_EQ(parallel->parallel.lanes, lanes);
      }
    }
  }
}

// Engine end to end: estimates pinned over the full intra-query x batch
// thread grid (batch items and their intra-query tasks share one pool —
// the saturation case the help-draining executor exists for).
TEST(EngineIntraQueryTest, EstimatesPinnedAcrossIntraAndBatchThreads) {
  Rng rng(4242);
  RandomQueryOptions qopts;
  qopts.forced_num_free = 2;
  std::vector<std::string> queries = {
      "ans(x, y) :- E(x, y), E(y, z), x != z.",
      "ans(x, y) :- E(x, y), E(x, z), y != z.",
      "ans(x, z) :- E(x, y), E(y, z).",
      "ans(x, y) :- E(x, y), !E(y, x).",
  };
  Database db(8);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  for (Value u = 0; u < 8; ++u) {
    for (Value v = 0; v < 8; ++v) {
      if ((u * 5 + v * 11 + 3) % 3 != 0) continue;
      ASSERT_TRUE(db.AddFact("E", {u, v}).ok());
    }
  }
  db.Canonicalize();

  std::vector<CountRequest> batch;
  for (const std::string& text : queries) {
    CountRequest request;
    request.query = text;
    request.database = "g";
    batch.push_back(request);
  }

  std::optional<std::vector<double>> reference;
  for (int intra : {1, 2, 4}) {
    for (int batch_threads : {1, 2, 4}) {
      EngineOptions opts;
      opts.epsilon = 0.3;
      opts.delta = 0.3;
      opts.num_threads = 4;
      opts.intra_query_threads = intra;
      opts.intra_query_min_cost = 0.0;  // Grant lanes regardless of cost.
      CountingEngine engine(opts);
      ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());
      auto results = engine.CountBatch(batch, batch_threads);
      std::vector<double> estimates;
      for (const auto& r : results) {
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        estimates.push_back(r->estimate);
      }
      if (!reference.has_value()) {
        reference = estimates;
      } else {
        EXPECT_EQ(estimates, *reference)
            << "intra=" << intra << " batch=" << batch_threads;
      }
    }
  }
}

// The cost model: exact components never get lanes; estimated components
// get them only past the cost threshold.
TEST(EngineIntraQueryTest, CostModelKeepsCheapComponentsInline) {
  EngineOptions opts;
  opts.intra_query_threads = 4;
  opts.intra_query_min_cost = 1e300;  // Nothing clears the bar.
  CountingEngine engine(opts);
  Database db(6);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  for (Value u = 0; u < 6; ++u) {
    ASSERT_TRUE(db.AddFact("E", {u, (u + 1) % 6}).ok());
  }
  db.Canonicalize();
  ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());
  auto result = engine.Count("ans(x, y) :- E(x, y), x != y.", "g");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->parallel.lanes, 1);
  EXPECT_EQ(result->parallel.tasks, 0u);
}

}  // namespace
}  // namespace cqcount
