#include "util/cancel.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cqcount {
namespace {

TEST(CancelTokenTest, DefaultTokenIsValidAndNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, CopiesShareOneFlag) {
  CancelToken token;
  CancelToken copy = token;
  copy.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
}

TEST(CancelTokenTest, CancelIsStickyAndIdempotent) {
  CancelToken token;
  token.Cancel();
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, CancelFromAnotherThreadIsObserved) {
  CancelToken token;
  std::thread other([copy = token] { copy.Cancel(); });
  other.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(ManualClockTest, AutoStepReturnsOldValueThenAdvances) {
  ManualClock clock(100, 10);
  EXPECT_EQ(clock.NowMillis(), 100u);
  EXPECT_EQ(clock.NowMillis(), 110u);
  EXPECT_EQ(clock.Peek(), 120u);
}

TEST(ManualClockTest, AdvanceAndPeekWithoutAutoStep) {
  ManualClock clock(5);
  EXPECT_EQ(clock.NowMillis(), 5u);
  clock.Advance(7);
  EXPECT_EQ(clock.Peek(), 12u);
  EXPECT_EQ(clock.NowMillis(), 12u);
}

TEST(ResourceGovernorTest, DefaultConstructedIsInactive) {
  ResourceGovernor governor;
  EXPECT_FALSE(governor.active());
  EXPECT_EQ(governor.Check(), GovernanceState::kRunning);
  EXPECT_FALSE(governor.fired());
  EXPECT_TRUE(governor.ToStatus("work").ok());
}

TEST(ResourceGovernorTest, QuiescentGovernorStaysRunning) {
  CancelToken token;
  ManualClock clock(0);
  // No budget: only the token can fire it, and it never does.
  ResourceGovernor governor(token, 0, &clock);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(governor.Check(), GovernanceState::kRunning);
  }
  EXPECT_FALSE(governor.fired());
}

TEST(ResourceGovernorTest, CancellationLatchesAtTheNextCheckpoint) {
  CancelToken token;
  ResourceGovernor governor(token, 0);
  EXPECT_EQ(governor.Check(), GovernanceState::kRunning);
  token.Cancel();
  // state() reads the latch only; the cause is observed by Check().
  EXPECT_EQ(governor.state(), GovernanceState::kRunning);
  EXPECT_EQ(governor.Check(), GovernanceState::kCancelled);
  EXPECT_TRUE(governor.fired());
  Status status = governor.ToStatus("sampling");
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.message().find("sampling"), std::string::npos);
}

TEST(ResourceGovernorTest, DeadlineExpiryIsDeterministicUnderManualClock) {
  CancelToken token;
  ManualClock clock(1000);
  ResourceGovernor governor(token, 50, &clock);
  EXPECT_EQ(governor.Check(), GovernanceState::kRunning);
  clock.Advance(49);
  EXPECT_EQ(governor.Check(), GovernanceState::kRunning);
  clock.Advance(1);  // Now == deadline: expired.
  EXPECT_EQ(governor.Check(), GovernanceState::kDeadlineExpired);
  EXPECT_EQ(governor.ToStatus("run").code(), StatusCode::kDeadlineExceeded);
}

TEST(ResourceGovernorTest, AutoSteppingClockExpiresOnTheKthCheckpoint) {
  CancelToken token;
  ManualClock clock(0, 10);  // Every read advances 10ms.
  // Ctor consumes one read (deadline = 0 + 35); checkpoints then read 10,
  // 20, 30, 40: the 4th checkpoint crosses the deadline.
  ResourceGovernor governor(token, 35, &clock);
  EXPECT_EQ(governor.Check(), GovernanceState::kRunning);
  EXPECT_EQ(governor.Check(), GovernanceState::kRunning);
  EXPECT_EQ(governor.Check(), GovernanceState::kRunning);
  EXPECT_EQ(governor.Check(), GovernanceState::kDeadlineExpired);
}

TEST(ResourceGovernorTest, FirstCauseWinsAndIsSticky) {
  CancelToken token;
  ManualClock clock(0);
  ResourceGovernor governor(token, 10, &clock);
  token.Cancel();
  EXPECT_EQ(governor.Check(), GovernanceState::kCancelled);
  // Expiring the deadline afterwards must not rewrite the latched cause.
  clock.Advance(100);
  EXPECT_EQ(governor.Check(), GovernanceState::kCancelled);
  EXPECT_EQ(governor.state(), GovernanceState::kCancelled);
}

TEST(ResourceGovernorTest, ConcurrentCheckpointsAgreeOnOneCause) {
  CancelToken token;
  ResourceGovernor governor(token, 0);
  token.Cancel();
  std::vector<std::thread> threads;
  std::vector<GovernanceState> seen(8, GovernanceState::kRunning);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&governor, &seen, i] { seen[i] = governor.Check(); });
  }
  for (std::thread& t : threads) t.join();
  for (GovernanceState state : seen) {
    EXPECT_EQ(state, GovernanceState::kCancelled);
  }
}

TEST(GovernanceStateNameTest, NamesMatchPartialReasonContract) {
  EXPECT_STREQ(GovernanceStateName(GovernanceState::kRunning), "");
  EXPECT_STREQ(GovernanceStateName(GovernanceState::kCancelled), "cancelled");
  EXPECT_STREQ(GovernanceStateName(GovernanceState::kDeadlineExpired),
               "deadline_exceeded");
}

}  // namespace
}  // namespace cqcount
