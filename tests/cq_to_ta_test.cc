#include "automata/cq_to_ta.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "automata/ta_exact_count.h"
#include "counting/exact_count.h"
#include "decomposition/elimination_order.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

NiceTreeDecomposition MakeNice(const Query& q) {
  Hypergraph h = q.BuildHypergraph();
  TreeDecomposition td = DecompositionFromOrder(h, MinFillOrder(h));
  return NiceTreeDecomposition::FromTreeDecomposition(h, td);
}

// The Lemma 52 parsimony test: |L_N(A)| (by the exact subset DP) must
// equal |Ans(phi, D)| (by brute force).
void CheckParsimony(const Query& q, const Database& db) {
  NiceTreeDecomposition nice = MakeNice(q);
  ASSERT_TRUE(nice.Validate(q.BuildHypergraph()).ok());
  auto built = BuildCountingAutomaton(q, db, nice);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const uint64_t expected = ExactCountAnswersBruteForce(q, db);
  if (built->trivially_zero) {
    EXPECT_EQ(expected, 0u);
    return;
  }
  auto slice = CountAcceptedBySubsets(built->automaton, built->n,
                                      /*max_states=*/24);
  if (!slice.ok()) return;  // Automaton too large for the exact DP.
  EXPECT_DOUBLE_EQ(*slice, static_cast<double>(expected)) << q.ToString();
}

TEST(CqToTaTest, SingleAtomQuery) {
  Query q = Parse("ans(x) :- E(x, y).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  ASSERT_TRUE(db.AddFact("E", {0, 1}).ok());
  ASSERT_TRUE(db.AddFact("E", {2, 1}).ok());
  db.Canonicalize();
  CheckParsimony(q, db);
}

TEST(CqToTaTest, PathQueryWithExistential) {
  Query q = Parse("ans(x, z) :- E(x, y), E(y, z).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  ASSERT_TRUE(db.AddFact("E", {0, 1}).ok());
  ASSERT_TRUE(db.AddFact("E", {1, 2}).ok());
  ASSERT_TRUE(db.AddFact("E", {1, 0}).ok());
  db.Canonicalize();
  CheckParsimony(q, db);
}

TEST(CqToTaTest, EmptyDatabaseIsTriviallyZero) {
  Query q = Parse("ans(x) :- E(x, y).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  NiceTreeDecomposition nice = MakeNice(q);
  auto built = BuildCountingAutomaton(q, db, nice);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->trivially_zero);
}

TEST(CqToTaTest, RejectsNonCqQueries) {
  Query q = Parse("ans(x) :- E(x, y), x != y.");
  Database db = GraphToDatabase(PathGraph(3));
  NiceTreeDecomposition nice = MakeNice(q);
  EXPECT_FALSE(BuildCountingAutomaton(q, db, nice).ok());
}

TEST(CqToTaTest, TreeShapeMatchesDecomposition) {
  Query q = Parse("ans(x) :- E(x, y).");
  Database db = GraphToDatabase(PathGraph(3));
  NiceTreeDecomposition nice = MakeNice(q);
  auto built = BuildCountingAutomaton(q, db, nice);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->n, nice.num_nodes());
  EXPECT_TRUE(built->tree_shape.Validate().ok());
  // Only trees of the decomposition's shape are accepted: the automaton
  // rejects a bare single-node tree unless the decomposition is one node.
  if (nice.num_nodes() > 1) {
    LabeledTree tiny;
    tiny.nodes.resize(1);
    EXPECT_FALSE(built->automaton.Accepts(tiny));
  }
}

// Property: parsimony on random small CQs.
class ParsimonyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ParsimonyPropertyTest, SliceCountEqualsAnswerCount) {
  Rng rng(GetParam() * 211 + 3);
  RandomQueryOptions qopts;
  qopts.min_vars = 2;
  qopts.max_vars = 3;
  qopts.max_atoms = 2;
  qopts.max_arity = 2;
  Query q = RandomQuery(rng, qopts);
  Database db = RandomDatabaseFor(q, 2, 0.6, rng);
  CheckParsimony(q, db);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParsimonyPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace cqcount
