#include "counting/exact_count.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "hom/backtracking.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(ExactCountTest, ExtensionMatchesBruteForceOnCq) {
  Query q = Parse("ans(x) :- E(x, y), E(y, z).");
  Database db = GraphToDatabase(PathGraph(4));
  auto ext = ExactCountAnswersExtension(q, db);
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(*ext, ExactCountAnswersBruteForce(q, db));
}

TEST(ExactCountTest, ExtensionRejectsDisequalities) {
  Query q = Parse("ans(x) :- E(x, y), x != y.");
  Database db = GraphToDatabase(PathGraph(3));
  EXPECT_FALSE(ExactCountAnswersExtension(q, db).ok());
}

TEST(ExactCountTest, ExtensionHandlesBooleanQueries) {
  Query q = Parse("ans() :- E(x, y).");
  Database db = GraphToDatabase(PathGraph(2));
  auto count = ExactCountAnswersExtension(q, db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  Database empty(3);
  ASSERT_TRUE(empty.DeclareRelation("E", 2).ok());
  auto zero = ExactCountAnswersExtension(q, empty);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(*zero, 0u);
}

TEST(ExactCountTest, SolutionsDpMatchesBruteForce) {
  Query q = Parse("ans(x, y) :- E(x, y), E(y, z).");
  Database db = GraphToDatabase(CycleGraph(5));
  auto dp = ExactCountSolutionsDp(q, db);
  ASSERT_TRUE(dp.ok());
  EXPECT_DOUBLE_EQ(*dp, static_cast<double>(CountSolutionsBrute(q, db)));
}

TEST(ExactCountTest, SolutionsDpRejectsDisequalities) {
  Query q = Parse("ans(x, y) :- E(x, y), x != y.");
  Database db = GraphToDatabase(PathGraph(3));
  EXPECT_FALSE(ExactCountSolutionsDp(q, db).ok());
}

// Property: the extension counter equals brute force on random CQs with
// negations (still no disequalities).
class ExtensionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExtensionPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam() * 61 + 11);
  RandomQueryOptions qopts;
  qopts.negated_probability = 0.25;
  Query q = RandomQuery(rng, qopts);
  Database db = RandomDatabaseFor(q, 5, 0.45, rng);
  auto ext = ExactCountAnswersExtension(q, db);
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(*ext, ExactCountAnswersBruteForce(q, db)) << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionPropertyTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace cqcount
