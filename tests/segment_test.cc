// Segment file robustness tests (relational/segment.h): roundtrip
// property (random databases pack -> mmap -> bitwise-equal scans),
// typed-Status rejection of corrupt files (truncation, bad magic, bad
// version, checksum mismatch, arity-0), and many concurrent readers over
// one SegmentView.
#include "relational/segment.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "relational/database_io.h"
#include "relational/relation.h"
#include "relational/structure.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "util/status.h"

namespace cqcount {
namespace {

class SegmentTest : public ::testing::Test {
 protected:
  // A fresh path per test under the build tree's temp dir; removed on
  // teardown so reruns start clean.
  std::string TempPath(const std::string& tag) {
    std::string path = ::testing::TempDir() + "cqseg_" + tag + "_" +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                       ".seg";
    paths_.push_back(path);
    return path;
  }
  void TearDown() override {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }
  std::vector<std::string> paths_;
};

Database SmallDatabase() {
  Database db(50);
  (void)db.DeclareRelation("E", 2);
  (void)db.DeclareRelation("L", 1);
  for (Value a = 0; a < 20; ++a) {
    (void)db.AddFact("E", {a, (a * 7 + 3) % 50});
    (void)db.AddFact("E", {a, (a * 13 + 1) % 50});
  }
  for (Value v = 0; v < 50; v += 3) (void)db.AddFact("L", {v});
  db.Canonicalize();
  return db;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(SegmentTest, RoundTripPreservesEveryRelationBitwise) {
  const std::string path = TempPath("roundtrip");
  Database db = SmallDatabase();
  ASSERT_TRUE(WriteSegmentDatabase(db, path).ok());

  auto mapped = OpenSegmentDatabase(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->universe_size(), db.universe_size());
  ASSERT_EQ(mapped->RelationNames(), db.RelationNames());
  for (const std::string& name : db.RelationNames()) {
    const Relation& want = db.relation(name);
    const Relation& got = mapped->relation(name);
    EXPECT_TRUE(got.is_mapped());
    EXPECT_EQ(got.arity(), want.arity());
    ASSERT_EQ(got.size(), want.size());
    // Bitwise scan equality via the flat span, plus accessor agreement.
    EXPECT_TRUE(got.flat() == want.flat());
    EXPECT_EQ(got, want);
  }
}

TEST_F(SegmentTest, RoundTripPropertyOnRandomDatabases) {
  Rng rng(20260808);
  for (int trial = 0; trial < 12; ++trial) {
    const std::string path = TempPath("prop" + std::to_string(trial));
    Query q = testing_util::RandomQuery(rng);
    const uint32_t universe = 4 + static_cast<uint32_t>(rng.UniformInt(20));
    Database db =
        testing_util::RandomDatabaseFor(q, universe, 0.3, rng);
    ASSERT_TRUE(WriteSegmentDatabase(db, path).ok());

    auto mapped = OpenSegmentDatabase(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    ASSERT_EQ(mapped->RelationNames(), db.RelationNames());
    for (const std::string& name : db.RelationNames()) {
      const Relation& want = db.relation(name);
      const Relation& got = mapped->relation(name);
      ASSERT_EQ(got.size(), want.size()) << name;
      EXPECT_EQ(got, want) << name;
      // Random point probes agree between backends.
      for (int probe = 0; probe < 16 && want.size() > 0; ++probe) {
        Tuple t(want.arity());
        if (rng.Bernoulli(0.5)) {
          const size_t row = rng.UniformInt(want.size());
          for (int c = 0; c < want.arity(); ++c) t[c] = want[row][c];
        } else {
          for (int c = 0; c < want.arity(); ++c) {
            t[c] = static_cast<Value>(rng.UniformInt(universe));
          }
        }
        EXPECT_EQ(got.Contains(t), want.Contains(t)) << name;
      }
    }
  }
}

TEST_F(SegmentTest, FullChecksumVerificationPassesOnCleanFile) {
  const std::string path = TempPath("audit");
  ASSERT_TRUE(WriteSegmentDatabase(SmallDatabase(), path).ok());
  SegmentOpenOptions audit;
  audit.verify_data_checksum = true;
  EXPECT_TRUE(OpenSegmentDatabase(path, audit).ok());
}

TEST_F(SegmentTest, RejectsMissingFile) {
  auto view = SegmentView::Open(TempPath("missing"));
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kNotFound);
}

TEST_F(SegmentTest, RejectsTruncatedFile) {
  const std::string path = TempPath("trunc");
  ASSERT_TRUE(WriteSegmentDatabase(SmallDatabase(), path).ok());
  std::vector<char> bytes = ReadAll(path);
  // Chop at several depths: inside the trailer, inside the directory,
  // inside the header.
  for (size_t keep : {bytes.size() - 8, bytes.size() / 2, size_t{48},
                      size_t{10}, size_t{0}}) {
    std::vector<char> cut(bytes.begin(), bytes.begin() + keep);
    WriteAll(path, cut);
    auto view = SegmentView::Open(path);
    ASSERT_FALSE(view.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(view.status().code(), StatusCode::kInvalidArgument)
        << "kept " << keep << " bytes";
  }
}

TEST_F(SegmentTest, RejectsBadMagic) {
  const std::string path = TempPath("magic");
  ASSERT_TRUE(WriteSegmentDatabase(SmallDatabase(), path).ok());
  std::vector<char> bytes = ReadAll(path);
  bytes[0] = 'X';
  WriteAll(path, bytes);
  auto view = SegmentView::Open(path);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kInvalidArgument);
  // The auto-loader then treats it as text and fails in the parser, but
  // never crashes.
  EXPECT_FALSE(LooksLikeSegmentFile(path));
  EXPECT_FALSE(LoadDatabaseAuto(path).ok());
}

TEST_F(SegmentTest, RejectsBadVersion) {
  const std::string path = TempPath("version");
  ASSERT_TRUE(WriteSegmentDatabase(SmallDatabase(), path).ok());
  std::vector<char> bytes = ReadAll(path);
  bytes[8] = 99;  // version field follows the 8-byte magic.
  WriteAll(path, bytes);
  auto view = SegmentView::Open(path);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SegmentTest, RejectsDirectoryCorruption) {
  const std::string path = TempPath("dircorrupt");
  ASSERT_TRUE(WriteSegmentDatabase(SmallDatabase(), path).ok());
  std::vector<char> bytes = ReadAll(path);
  // Flip one byte of the first directory entry's name; the directory
  // checksum must catch it even though open never reads the data blocks.
  const size_t dir_guess = bytes.size() - 32 - 2 * 64;
  bytes[dir_guess] ^= 0x5A;
  WriteAll(path, bytes);
  auto view = SegmentView::Open(path);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SegmentTest, ZoneCorruptionRejectedAtPlainOpen) {
  // The O(1) open certifies every value against the universe from the
  // zone maxima alone, so zone blocks must be covered by an
  // always-verified checksum: a corrupt zone that understates the data
  // (here: zeroed, so any out-of-universe value would "pass") has to be
  // rejected WITHOUT the opt-in full data audit.
  const std::string path = TempPath("zonecorrupt");
  ASSERT_TRUE(WriteSegmentDatabase(SmallDatabase(), path).ok());
  std::vector<char> bytes = ReadAll(path);
  // Locate the first relation's zone block via its directory entry
  // (directory = 2 entries of 64 B just before the 32 B trailer;
  // zone_offset is the u64 at byte 56 of an entry).
  const size_t dir = bytes.size() - 32 - 2 * 64;
  uint64_t zone_offset = 0;
  std::memcpy(&zone_offset, bytes.data() + dir + 56, sizeof(zone_offset));
  ASSERT_LT(zone_offset + 8, bytes.size());
  // Zero the first column's MAX (bytes 4..7 of the zone block; its min
  // at bytes 0..3 is already 0) — the certification-relevant bound.
  for (int b = 4; b < 8; ++b) bytes[zone_offset + b] = 0;
  WriteAll(path, bytes);
  auto view = SegmentView::Open(path);  // Plain open, no data audit.
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SegmentTest, DataCorruptionCaughtOnlyByFullAudit) {
  const std::string path = TempPath("datacorrupt");
  ASSERT_TRUE(WriteSegmentDatabase(SmallDatabase(), path).ok());
  std::vector<char> bytes = ReadAll(path);
  // Flip a value byte inside the first (page-aligned) data block without
  // breaking the relation's sort order: bump the low byte of a value.
  bytes[4096 + 1] ^= 0x01;
  WriteAll(path, bytes);
  // O(1) open does not read data blocks, so it succeeds...
  EXPECT_TRUE(SegmentView::Open(path).ok());
  // ...but the opt-in full audit flags the mismatch.
  SegmentOpenOptions audit;
  audit.verify_data_checksum = true;
  auto audited = SegmentView::Open(path, audit);
  ASSERT_FALSE(audited.ok());
  EXPECT_EQ(audited.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SegmentTest, RejectsArityZeroRelations) {
  const std::string path = TempPath("arity0");
  auto writer = SegmentWriter::Create(path, 10);
  ASSERT_TRUE(writer.ok());
  Status s = (*writer)->BeginRelation("G", 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  // A database holding a nullary guard relation is therefore unpackable.
  Database db(10);
  (void)db.DeclareRelation("guard", 0);
  (void)db.AddFact("guard", {});
  db.Canonicalize();
  Status packed = WriteSegmentDatabase(db, path);
  ASSERT_FALSE(packed.ok());
  EXPECT_EQ(packed.code(), StatusCode::kInvalidArgument);
}

TEST_F(SegmentTest, WriterEnforcesNameAndOrderInvariants) {
  const std::string path = TempPath("invariants");
  auto writer = SegmentWriter::Create(path, 100);
  ASSERT_TRUE(writer.ok());
  // Over-long names are rejected.
  EXPECT_EQ((*writer)
                ->BeginRelation(std::string(kSegmentMaxNameLen + 1, 'n'), 1)
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE((*writer)->BeginRelation("R", 2).ok());
  const Value row1[] = {3, 4};
  ASSERT_TRUE((*writer)->AppendRow(row1).ok());
  // Out-of-order and duplicate rows are rejected.
  const Value row_dup[] = {3, 4};
  EXPECT_EQ((*writer)->AppendRow(row_dup).code(),
            StatusCode::kInvalidArgument);
  const Value row_less[] = {2, 9};
  EXPECT_EQ((*writer)->AppendRow(row_less).code(),
            StatusCode::kInvalidArgument);
  // Values at/above the universe are rejected.
  const Value row_big[] = {3, 100};
  EXPECT_EQ((*writer)->AppendRow(row_big).code(),
            StatusCode::kInvalidArgument);
  // Duplicate relation names are rejected.
  ASSERT_TRUE((*writer)->EndRelation().ok());
  EXPECT_EQ((*writer)->BeginRelation("R", 1).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SegmentTest, ManyConcurrentReadersOverOneView) {
  const std::string path = TempPath("concurrent");
  Database db = SmallDatabase();
  ASSERT_TRUE(WriteSegmentDatabase(db, path).ok());
  auto mapped = OpenSegmentDatabase(path);
  ASSERT_TRUE(mapped.ok());
  const Relation& shared = mapped->relation("E");
  const Relation& truth = db.relation("E");

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int iter = 0; iter < 2000; ++iter) {
        const Value key = static_cast<Value>(rng.UniformInt(50));
        const auto got = shared.NarrowRange(0, shared.size(), 0, key);
        const auto want = truth.NarrowRange(0, truth.size(), 0, key);
        if (got != want) mismatches.fetch_add(1);
        Tuple probe = {key, static_cast<Value>(rng.UniformInt(50))};
        if (shared.Contains(probe) != truth.Contains(probe)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(SegmentTest, ViewReportsMappingDiagnostics) {
  const std::string path = TempPath("diag");
  ASSERT_TRUE(WriteSegmentDatabase(SmallDatabase(), path).ok());
  auto view = SegmentView::Open(path);
  ASSERT_TRUE(view.ok());
  EXPECT_GT((*view)->mapped_bytes(), 0u);
  auto resident = (*view)->ResidentPages();
  ASSERT_TRUE(resident.ok()) << resident.status().ToString();
  // The header/directory/trailer walk at open touches at least one page.
  EXPECT_GE(*resident, 1u);
}

}  // namespace
}  // namespace cqcount
