#include "decomposition/tree_decomposition.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "decomposition/elimination_order.h"
#include "util/random.h"

namespace cqcount {
namespace {

Hypergraph Triangle() {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  return h;
}

TEST(TreeDecompositionTest, TrivialDecompositionIsValid) {
  Hypergraph h = Triangle();
  TreeDecomposition td = TreeDecomposition::Trivial(h);
  EXPECT_TRUE(td.Validate(h).ok());
  EXPECT_EQ(td.Width(), 2);
}

TEST(TreeDecompositionTest, RejectsUncoveredEdge) {
  Hypergraph h = Triangle();
  TreeDecomposition td;
  td.bags = {{0, 1}, {1, 2}};
  td.parent = {-1, 0};
  td.root = 0;
  // Edge {0,2} is in no bag.
  EXPECT_FALSE(td.Validate(h).ok());
}

TEST(TreeDecompositionTest, RejectsDisconnectedOccurrences) {
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  TreeDecomposition td;
  // Vertex 0 appears in bags 0 and 2 but not in the middle bag.
  td.bags = {{0, 1}, {1, 2}, {0, 2}};
  td.parent = {-1, 0, 1};
  td.root = 0;
  EXPECT_FALSE(td.Validate(h).ok());
}

TEST(TreeDecompositionTest, RejectsMalformedTree) {
  Hypergraph h(2);
  h.AddEdge({0, 1});
  TreeDecomposition td;
  td.bags = {{0, 1}, {0, 1}};
  td.parent = {1, 0};  // Cycle.
  td.root = 0;
  EXPECT_FALSE(td.Validate(h).ok());
}

TEST(TreeDecompositionTest, ChildrenDerivedFromParents) {
  TreeDecomposition td;
  td.bags = {{0}, {0}, {0}};
  td.parent = {-1, 0, 0};
  td.root = 0;
  auto children = td.Children();
  EXPECT_EQ(children[0], (std::vector<int>{1, 2}));
  EXPECT_TRUE(children[1].empty());
}

TEST(EliminationOrderTest, PathDecompositionHasWidthOne) {
  SimpleGraph path = PathGraph(6);
  Hypergraph h = GraphToHypergraph(path);
  TreeDecomposition td = DecompositionFromOrder(h, MinFillOrder(h));
  EXPECT_TRUE(td.Validate(h).ok());
  EXPECT_EQ(td.Width(), 1);
}

TEST(EliminationOrderTest, CliqueDecompositionHasFullWidth) {
  Hypergraph h = GraphToHypergraph(CliqueGraph(5));
  TreeDecomposition td = DecompositionFromOrder(h, MinFillOrder(h));
  EXPECT_TRUE(td.Validate(h).ok());
  EXPECT_EQ(td.Width(), 4);
}

TEST(EliminationOrderTest, HandlesDisconnectedHypergraphs) {
  Hypergraph h(5);
  h.AddEdge({0, 1});
  h.AddEdge({3, 4});  // Vertex 2 isolated.
  TreeDecomposition td = DecompositionFromOrder(h, MinDegreeOrder(h));
  EXPECT_TRUE(td.Validate(h).ok());
}

TEST(EliminationOrderTest, DegeneracyOfKnownGraphs) {
  EXPECT_EQ(Degeneracy(GraphToHypergraph(PathGraph(5))), 1);
  EXPECT_EQ(Degeneracy(GraphToHypergraph(CycleGraph(5))), 2);
  EXPECT_EQ(Degeneracy(GraphToHypergraph(CliqueGraph(4))), 3);
  EXPECT_EQ(Degeneracy(GraphToHypergraph(StarGraph(6))), 1);
}

// Property: decompositions from both heuristics validate on random
// hypergraphs.
class RandomDecompositionTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDecompositionTest, HeuristicDecompositionsAreValid) {
  Rng rng(GetParam());
  Hypergraph h(8);
  const int edges = 3 + static_cast<int>(rng.UniformInt(6));
  for (int e = 0; e < edges; ++e) {
    std::vector<Vertex> edge;
    const int size = 1 + static_cast<int>(rng.UniformInt(3));
    for (int i = 0; i < size; ++i) {
      edge.push_back(static_cast<Vertex>(rng.UniformInt(8)));
    }
    h.AddEdge(std::move(edge));
  }
  TreeDecomposition fill = DecompositionFromOrder(h, MinFillOrder(h));
  TreeDecomposition degree = DecompositionFromOrder(h, MinDegreeOrder(h));
  EXPECT_TRUE(fill.Validate(h).ok()) << h.ToString();
  EXPECT_TRUE(degree.Validate(h).ok()) << h.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDecompositionTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace cqcount
