#include "decomposition/hypertree_decomposition.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "decomposition/elimination_order.h"
#include "decomposition/width_measures.h"
#include "util/random.h"

namespace cqcount {
namespace {

HypertreeDecomposition Build(const Hypergraph& h) {
  TreeDecomposition td = DecompositionFromOrder(h, MinFillOrder(h));
  auto htd = BuildHypertreeDecomposition(h, td);
  EXPECT_TRUE(htd.ok()) << htd.status().ToString();
  return *htd;
}

TEST(HypertreeTest, SingleWideEdgeHasWidthOne) {
  Hypergraph h(4);
  h.AddEdge({0, 1, 2, 3});
  HypertreeDecomposition htd = Build(h);
  EXPECT_TRUE(htd.Validate(h).ok());
  EXPECT_EQ(htd.Width(), 1);
}

TEST(HypertreeTest, PathHasWidthAtMostTwo) {
  Hypergraph h = GraphToHypergraph(PathGraph(6));
  HypertreeDecomposition htd = Build(h);
  EXPECT_TRUE(htd.Validate(h).ok());
  // hw(path) = 1, greedy may use 2; either way bounded.
  EXPECT_LE(htd.Width(), 2);
  EXPECT_GE(htd.Width(), 1);
}

TEST(HypertreeTest, GuardsCoverBags) {
  Hypergraph h = GraphToHypergraph(CycleGraph(5));
  HypertreeDecomposition htd = Build(h);
  ASSERT_TRUE(htd.Validate(h).ok());
  for (int t = 0; t < htd.base.num_nodes(); ++t) {
    std::set<Vertex> guarded;
    for (int e : htd.guards[t]) {
      guarded.insert(h.edge(e).begin(), h.edge(e).end());
    }
    for (Vertex v : htd.base.bags[t]) {
      EXPECT_TRUE(guarded.count(v) > 0);
    }
  }
}

TEST(HypertreeTest, ValidateRejectsBadGuards) {
  Hypergraph h = GraphToHypergraph(PathGraph(3));
  HypertreeDecomposition htd = Build(h);
  ASSERT_TRUE(htd.Validate(h).ok());
  // Remove all guards from a node with a non-empty bag.
  for (int t = 0; t < htd.base.num_nodes(); ++t) {
    if (!htd.base.bags[t].empty()) {
      htd.guards[t].clear();
      break;
    }
  }
  EXPECT_FALSE(htd.Validate(h).ok());
}

TEST(HypertreeTest, UncoverableVertexReported) {
  Hypergraph h(2);
  h.AddEdge({0});  // Vertex 1 in no edge.
  TreeDecomposition td = TreeDecomposition::Trivial(h);
  EXPECT_FALSE(BuildHypertreeDecomposition(h, td).ok());
}

TEST(HypertreeTest, WidthDominatesFractionalCover) {
  // hw >= fhw on the same structure (integral vs fractional covers).
  for (auto graph : {CycleGraph(6), CliqueGraph(4), GridGraph(2, 3)}) {
    Hypergraph h = GraphToHypergraph(graph);
    HypertreeDecomposition htd = Build(h);
    ASSERT_TRUE(htd.Validate(h).ok());
    const double fhw = FhwOfDecomposition(h, htd.base);
    EXPECT_GE(static_cast<double>(htd.Width()), fhw - 1e-9);
  }
}

TEST(HypertreeTest, GreedyBoundIsPositive) {
  auto bound = HypertreewidthGreedyBound(GraphToHypergraph(CycleGraph(7)));
  ASSERT_TRUE(bound.ok());
  EXPECT_GE(*bound, 1);
  EXPECT_LE(*bound, 4);
}

// Property: construction validates on random hypergraphs with mixed
// arities (the regime where guards differ from bags).
class HypertreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HypertreePropertyTest, ConstructionValidates) {
  Rng rng(GetParam() * 733 + 19);
  Hypergraph h(8);
  const int edges = 3 + static_cast<int>(rng.UniformInt(5));
  for (int e = 0; e < edges; ++e) {
    std::vector<Vertex> edge;
    const int size = 1 + static_cast<int>(rng.UniformInt(4));
    for (int i = 0; i < size; ++i) {
      edge.push_back(static_cast<Vertex>(rng.UniformInt(8)));
    }
    h.AddEdge(std::move(edge));
  }
  // Cover isolated vertices so guards exist.
  for (Vertex v = 0; v < 8; ++v) {
    if (h.incident_edges(v).empty()) h.AddEdge({v});
  }
  HypertreeDecomposition htd = Build(h);
  EXPECT_TRUE(htd.Validate(h).ok());
  EXPECT_GE(htd.Width(), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypertreePropertyTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace cqcount
