// QueryProfile on EngineResult and the plan cache's per-shape observed
// history (ShapeProfile): the profiling substrate `count --json`,
// `explain` and the future adaptive scheduler read.
#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"
#include "obs/profile.h"

namespace cqcount {
namespace {

Database SixCycleDatabase() {
  Database db(6);
  EXPECT_TRUE(db.DeclareRelation("E", 2).ok());
  for (Value u = 0; u < 6; ++u) {
    EXPECT_TRUE(db.AddFact("E", {u, (u + 1) % 6}).ok());
  }
  db.Canonicalize();
  return db;
}

TEST(QueryProfileTest, CountPopulatesPhasesAndComponents) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", SixCycleDatabase()).ok());
  auto result = engine.Count("ans(x, y) :- E(x, y), x != y.", "g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const obs::QueryProfile& profile = result->profile;
  EXPECT_GE(profile.parse_millis, 0.0);
  EXPECT_GE(profile.compile_millis, 0.0);
  EXPECT_GE(profile.plan_millis, 0.0);
  EXPECT_GE(profile.execute_millis, 0.0);
  ASSERT_EQ(profile.components.size(), 1u);
  const obs::ComponentProfile& cp = profile.components[0];
  EXPECT_FALSE(cp.shape_key.empty());
  EXPECT_FALSE(cp.strategy.empty());
  EXPECT_TRUE(cp.executed);
  EXPECT_GE(cp.exec_millis, 0.0);
  // A fresh engine: the single component's plan was built, not cached.
  EXPECT_EQ(profile.plan_cache_hits, 0);
  EXPECT_EQ(profile.plan_cache_misses, 1);
  EXPECT_EQ(profile.oracle_calls, result->oracle_calls);

  // The same shape again: now a cache hit, recorded in the profile.
  auto again = engine.Count("ans(a, b) :- E(a, b), a != b.", "g");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->profile.plan_cache_hits, 1);
  EXPECT_EQ(again->profile.plan_cache_misses, 0);
}

TEST(QueryProfileTest, ProfileJsonIsWellFormed) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", SixCycleDatabase()).ok());
  auto result = engine.Count("ans(x, y) :- E(x, y), x != y.", "g");
  ASSERT_TRUE(result.ok());
  const std::string json = result->profile.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key : {"\"phases\"", "\"parse_ms\"", "\"compile_ms\"",
                          "\"plan_ms\"", "\"execute_ms\"", "\"components\"",
                          "\"plan_cache_hits\"", "\"oracle_calls\"",
                          "\"shape_key\"", "\"strategy\"", "\"lanes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(QueryProfileTest, ExplainExposesObservedShapeHistory) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", SixCycleDatabase()).ok());
  const std::string query = "ans(x, y) :- E(x, y), x != y.";

  // Before any Count, Explain sees a plan but no observed history.
  auto cold = engine.Explain(query, "g");
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->components.size(), 1u);
  EXPECT_FALSE(cold->components[0].observed.has_value());

  const int kRuns = 3;
  uint64_t total_oracle_calls = 0;
  double last_estimate = 0.0;
  for (int i = 0; i < kRuns; ++i) {
    auto result = engine.Count(query, "g");
    ASSERT_TRUE(result.ok());
    total_oracle_calls += result->oracle_calls;
    last_estimate = result->estimate;
  }

  auto warm = engine.Explain(query, "g");
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->components.size(), 1u);
  ASSERT_TRUE(warm->components[0].observed.has_value());
  const obs::ShapeProfile& observed = *warm->components[0].observed;
  EXPECT_EQ(observed.runs, static_cast<uint64_t>(kRuns));
  EXPECT_EQ(observed.total_oracle_calls, total_oracle_calls);
  EXPECT_EQ(observed.last_estimate, last_estimate);
  EXPECT_GE(observed.max_exec_millis, observed.min_exec_millis);
  EXPECT_GE(observed.MeanExecMillis(), 0.0);
  EXPECT_GE(observed.VarianceExecMillis(), 0.0);
  EXPECT_LE(observed.converged_runs, observed.runs);
}

TEST(QueryProfileTest, ShapeProfileAccumulatesObservations) {
  obs::ShapeProfile profile;
  profile.Observe(2.0, 10, 8, 42.0, true);
  profile.Observe(4.0, 20, 12, 43.0, false);
  EXPECT_EQ(profile.runs, 2u);
  EXPECT_DOUBLE_EQ(profile.MeanExecMillis(), 3.0);
  EXPECT_DOUBLE_EQ(profile.VarianceExecMillis(), 1.0);
  EXPECT_EQ(profile.min_exec_millis, 2.0);
  EXPECT_EQ(profile.max_exec_millis, 4.0);
  EXPECT_EQ(profile.total_oracle_calls, 30u);
  EXPECT_EQ(profile.total_estimator_calls, 20u);
  EXPECT_DOUBLE_EQ(profile.MeanEstimatorCalls(), 10.0);
  EXPECT_EQ(profile.converged_runs, 1u);
  EXPECT_EQ(profile.last_estimate, 43.0);
  const std::string json = profile.ToJson();
  for (const char* key :
       {"\"runs\"", "\"mean_exec_ms\"", "\"total_oracle_calls\"",
        "\"total_estimator_calls\"", "\"converged_runs\"",
        "\"last_estimate\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

}  // namespace
}  // namespace cqcount
