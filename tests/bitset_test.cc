#include "util/bitset.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace cqcount {
namespace {

TEST(BitsetTest, EmptyIsUnrestrictedSentinel) {
  Bitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.Any());
  EXPECT_FALSE(b.Test(0));
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.FindNext(0), 0u);
}

TEST(BitsetTest, SetTestResetRoundTrip) {
  Bitset b(100, false);
  EXPECT_EQ(b.size(), 100u);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_FALSE(b.Test(1));
  EXPECT_FALSE(b.Test(100));  // Out of range: never a member.
  EXPECT_EQ(b.Count(), 4u);
  b.Set(63, false);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

// Non-multiple-of-64 universes: the tail-word invariant is what every
// word-parallel operation relies on.
class BitsetTailTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitsetTailTest, TailBitsStayClear) {
  const size_t n = GetParam();
  Bitset all(n, true);
  EXPECT_EQ(all.Count(), n);
  EXPECT_TRUE(all.All());
  EXPECT_EQ(all.Any(), n > 0);

  Bitset flipped(n, false);
  flipped.FlipAll();
  EXPECT_EQ(flipped, all);
  flipped.FlipAll();
  EXPECT_EQ(flipped.Count(), 0u);
  EXPECT_FALSE(flipped.Any());

  // FindNext never reports a phantom tail bit.
  EXPECT_EQ(flipped.FindNext(0), n);
  if (n > 0) {
    flipped.Set(n - 1);
    EXPECT_EQ(flipped.FindNext(0), n - 1);
    EXPECT_EQ(flipped.FindNext(n - 1), n - 1);
    EXPECT_EQ(flipped.FindNext(n), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Universes, BitsetTailTest,
                         ::testing::Values(0, 1, 3, 63, 64, 65, 100, 127,
                                           128, 130, 1000));

TEST(BitsetTest, IntersectWith) {
  Bitset a(130, true);
  Bitset b(130, false);
  b.Set(5);
  b.Set(64);
  b.Set(129);
  a.IntersectWith(b);
  EXPECT_EQ(a, b);
  // Intersecting with a SHORTER mask clears everything past its universe.
  Bitset c(70, true);
  a = Bitset(130, true);
  a.IntersectWith(c);
  EXPECT_EQ(a.Count(), 70u);
  EXPECT_TRUE(a.Test(69));
  EXPECT_FALSE(a.Test(70));
  EXPECT_FALSE(a.Test(129));
}

TEST(BitsetTest, IntersectWithComplement) {
  Bitset a(130, true);
  Bitset red(130, false);
  red.Set(0);
  red.Set(64);
  a.IntersectWithComplement(red);
  EXPECT_EQ(a.Count(), 128u);
  EXPECT_FALSE(a.Test(0));
  EXPECT_FALSE(a.Test(64));
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(129));
}

TEST(BitsetTest, ComplementViaFlipMatchesPerBit) {
  Rng rng(404);
  for (int round = 0; round < 10; ++round) {
    const size_t n = 1 + rng.UniformInt(200);
    Bitset mask = rng.RandomMask(n, 0.5);
    Bitset flipped = mask;
    flipped.FlipAll();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(flipped.Test(i), !mask.Test(i));
    }
    EXPECT_EQ(mask.Count() + flipped.Count(), n);
  }
}

TEST(BitsetTest, SetRangeMatchesPerBit) {
  Rng rng(505);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 1 + rng.UniformInt(300);
    const size_t lo = rng.UniformInt(n + 1);
    const size_t hi = lo + rng.UniformInt(n + 1 - lo);
    Bitset fast(n, false);
    fast.SetRange(lo, hi);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(fast.Test(i), i >= lo && i < hi) << "n=" << n << " i=" << i;
    }
    EXPECT_EQ(fast.Count(), hi - lo);
  }
}

TEST(BitsetTest, ResizeGrowsAndShrinks) {
  Bitset b(10, true);
  b.Resize(70, false);
  EXPECT_EQ(b.size(), 70u);
  EXPECT_EQ(b.Count(), 10u);
  b.Resize(130, true);
  EXPECT_EQ(b.Count(), 10u + 60u);
  EXPECT_TRUE(b.Test(70));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(10));
  b.Resize(5);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.Count(), 5u);
  // Shrink then re-grow: formerly-set bits past the boundary are gone.
  b.Resize(130, false);
  EXPECT_EQ(b.Count(), 5u);
}

TEST(BitsetTest, FindNextIteratesExactlySetBits) {
  Bitset b(200, false);
  const std::vector<size_t> set = {0, 1, 63, 64, 65, 127, 128, 199};
  for (size_t i : set) b.Set(i);
  std::vector<size_t> seen;
  for (size_t i = b.FindNext(0); i < b.size(); i = b.FindNext(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, set);
}

TEST(BitsetTest, EqualityIncludesUniverseSize) {
  Bitset a(64, false);
  Bitset b(65, false);
  EXPECT_NE(a, b);
  b.Resize(64);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cqcount
