#include "automata/acjr_estimator.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "counting/exact_count.h"
#include "decomposition/elimination_order.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

NiceTreeDecomposition MakeNice(const Query& q) {
  Hypergraph h = q.BuildHypergraph();
  TreeDecomposition td = DecompositionFromOrder(h, MinFillOrder(h));
  return NiceTreeDecomposition::FromTreeDecomposition(h, td);
}

TEST(AcjrTest, QuantifierFreeQueriesAreExact) {
  Query q = Parse("ans(x, y, z) :- E(x, y), E(y, z).");
  Database db = GraphToDatabase(CycleGraph(5));
  auto result = AcjrCountAnswers(q, db, MakeNice(q), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact);
  EXPECT_DOUBLE_EQ(result->estimate,
                   static_cast<double>(ExactCountAnswersBruteForce(q, db)));
}

TEST(AcjrTest, ExistentialProjectionCounted) {
  // ans(x) over E(x,y): distinct first components.
  Query q = Parse("ans(x) :- E(x, y).");
  Database db(4);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  ASSERT_TRUE(db.AddFact("E", {0, 1}).ok());
  ASSERT_TRUE(db.AddFact("E", {0, 2}).ok());
  ASSERT_TRUE(db.AddFact("E", {3, 1}).ok());
  db.Canonicalize();
  auto result = AcjrCountAnswers(q, db, MakeNice(q), {});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 2.0, 0.3);
}

TEST(AcjrTest, EmptyAnswerSet) {
  Query q = Parse("ans(x) :- E(x, y).");
  Database db(3);
  ASSERT_TRUE(db.DeclareRelation("E", 2).ok());
  auto result = AcjrCountAnswers(q, db, MakeNice(q), {});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 0.0);
  EXPECT_TRUE(result->exact);
}

TEST(AcjrTest, RejectsExtendedQueries) {
  Query q = Parse("ans(x) :- E(x, y), x != y.");
  Database db = GraphToDatabase(PathGraph(3));
  EXPECT_FALSE(AcjrCountAnswers(q, db, MakeNice(q), {}).ok());
}

TEST(AcjrTest, BooleanQuery) {
  Query q = Parse("ans() :- E(x, y).");
  Database db = GraphToDatabase(PathGraph(2));
  auto result = AcjrCountAnswers(q, db, MakeNice(q), {});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 1.0, 0.1);
}

TEST(AcjrTest, UnionEstimatesReported) {
  Query q = Parse("ans(x) :- E(x, y).");
  Database db = GraphToDatabase(CycleGraph(5));
  auto result = AcjrCountAnswers(q, db, MakeNice(q), {});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->union_estimates, 0u);
  EXPECT_GT(result->membership_tests, 0u);
  EXPECT_NEAR(result->estimate, 5.0, 1.0);
}

// Accuracy sweep on random CQs with existential variables.
class AcjrAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(AcjrAccuracyTest, EstimateWithinTolerance) {
  Rng rng(GetParam() * 173 + 7);
  RandomQueryOptions qopts;
  qopts.min_vars = 2;
  qopts.max_vars = 4;
  qopts.max_atoms = 3;
  Query q = RandomQuery(rng, qopts);
  Database db = RandomDatabaseFor(q, 5, 0.5, rng);
  const double exact =
      static_cast<double>(ExactCountAnswersBruteForce(q, db));
  AcjrOptions opts;
  opts.epsilon = 0.15;
  opts.sketch_size = 128;
  opts.seed = GetParam();
  auto result = AcjrCountAnswers(q, db, MakeNice(q), opts);
  ASSERT_TRUE(result.ok()) << q.ToString();
  if (exact == 0.0) {
    EXPECT_DOUBLE_EQ(result->estimate, 0.0) << q.ToString();
  } else {
    EXPECT_NEAR(result->estimate, exact, 0.3 * exact + 1e-9)
        << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcjrAccuracyTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace cqcount
