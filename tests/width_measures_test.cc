#include "decomposition/width_measures.h"

#include <gtest/gtest.h>

#include <cmath>

#include "app/graph_gen.h"
#include "decomposition/elimination_order.h"
#include "decomposition/exact_treewidth.h"
#include "util/random.h"

namespace cqcount {
namespace {

TEST(FcnTest, TriangleIsThreeHalves) {
  Hypergraph h = GraphToHypergraph(CliqueGraph(3));
  EXPECT_NEAR(FractionalCoverNumber(h), 1.5, 1e-8);
}

TEST(FcnTest, SingleCoveringEdge) {
  Hypergraph h(4);
  h.AddEdge({0, 1, 2, 3});
  EXPECT_NEAR(FractionalCoverNumber(h), 1.0, 1e-8);
}

TEST(FcnTest, IsolatedVertexGivesInfinity) {
  Hypergraph h(2);
  h.AddEdge({0});
  EXPECT_TRUE(std::isinf(FractionalCoverNumber(h)));
}

TEST(FcnTest, SubsetMonotonicity) {
  // Observation 40: fcn(H[B]) <= fcn(H[B']) for B subseteq B'.
  Hypergraph h = GraphToHypergraph(CycleGraph(6));
  const double small = FractionalCoverNumberOfSubset(h, {0, 1, 2});
  const double large = FractionalCoverNumberOfSubset(h, {0, 1, 2, 3, 4});
  EXPECT_LE(small, large + 1e-9);
}

TEST(FcnTest, EmptyBagIsZero) {
  Hypergraph h = GraphToHypergraph(PathGraph(3));
  EXPECT_DOUBLE_EQ(FractionalCoverNumberOfSubset(h, {}), 0.0);
}

TEST(FractionalIndependentSetTest, DualityWithFcn) {
  // LP duality: max fractional independent set = min fractional edge
  // cover (no isolated vertices).
  for (auto graph : {CycleGraph(5), CliqueGraph(4), PathGraph(6)}) {
    Hypergraph h = GraphToHypergraph(graph);
    std::vector<double> mu;
    const double independent = MaxFractionalIndependentSet(h, &mu);
    EXPECT_NEAR(independent, FractionalCoverNumber(h), 1e-7);
    // mu is a valid fractional independent set.
    for (const auto& e : h.edges()) {
      double total = 0.0;
      for (Vertex v : e) total += mu[v];
      EXPECT_LE(total, 1.0 + 1e-8);
    }
  }
}

TEST(FhwTest, PathHasFhwOne) {
  Hypergraph h = GraphToHypergraph(PathGraph(5));
  auto result = ExactFhw(h);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->width, 1.0, 1e-8);
}

TEST(FhwTest, TriangleHypergraphWithBigEdgeHasFhwOne) {
  // Adding a covering hyperedge drops fhw to 1 even though tw is 2.
  Hypergraph h(3);
  h.AddEdge({0, 1});
  h.AddEdge({1, 2});
  h.AddEdge({0, 2});
  h.AddEdge({0, 1, 2});
  auto fhw = ExactFhw(h);
  ASSERT_TRUE(fhw.ok());
  EXPECT_NEAR(fhw->width, 1.0, 1e-8);
  auto tw = ExactTreewidth(h);
  ASSERT_TRUE(tw.ok());
  EXPECT_DOUBLE_EQ(tw->width, 2.0);
}

TEST(FhwTest, CliqueFhwIsHalfSize) {
  // fhw(K_n as 2-uniform) = n/2 (single bag, fractional matching).
  Hypergraph h = GraphToHypergraph(CliqueGraph(6));
  auto result = ExactFhw(h, /*max_vertices=*/8);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->width, 3.0, 1e-7);
}

TEST(MuWidthTest, UniformMuRecoversObservation34) {
  // With mu = 1/arity, the exact mu-width equals (tw+1)/arity, which is
  // exactly the witness behind Observation 34: tw <= a * aw - 1.
  for (auto graph : {PathGraph(5), CycleGraph(5), CliqueGraph(4)}) {
    Hypergraph h = GraphToHypergraph(graph);
    const int a = h.Arity();
    std::vector<double> mu(h.num_vertices(), 1.0 / a);
    auto mu_width = ExactMuWidth(h, mu);
    ASSERT_TRUE(mu_width.ok());
    auto tw = ExactTreewidth(h);
    ASSERT_TRUE(tw.ok());
    EXPECT_NEAR(mu_width->width, (tw->width + 1.0) / a, 1e-8);
  }
}

TEST(AdaptiveWidthTest, BoundsAreOrdered) {
  for (auto graph : {PathGraph(6), CycleGraph(6), CliqueGraph(4),
                     GridGraph(2, 3)}) {
    Hypergraph h = GraphToHypergraph(graph);
    auto lower = AdaptiveWidthLowerBound(h);
    auto upper = AdaptiveWidthUpperBound(h);
    ASSERT_TRUE(lower.ok());
    ASSERT_TRUE(upper.ok());
    EXPECT_LE(*lower, *upper + 1e-7);
  }
}

TEST(HypertreewidthTest, GuardBoundsAreSane) {
  // hw upper bound >= fhw of the same decomposition (integral vs
  // fractional covers).
  Hypergraph h = GraphToHypergraph(CycleGraph(7));
  TreeDecomposition td = DecompositionFromOrder(h, MinFillOrder(h));
  const int hw = HypertreewidthUpperBound(h, td);
  const double fhw = FhwOfDecomposition(h, td);
  EXPECT_GE(static_cast<double>(hw), fhw - 1e-9);
  EXPECT_GE(hw, 1);
}

TEST(ComputeDecompositionTest, FallsBackToHeuristic) {
  Hypergraph h = GraphToHypergraph(CycleGraph(20));
  FWidthResult r =
      ComputeDecomposition(h, WidthObjective::kTreewidth, /*exact_limit=*/8);
  EXPECT_TRUE(r.decomposition.Validate(h).ok());
  EXPECT_GE(r.width, 2.0);
}

TEST(ComputeDecompositionTest, ExactWhenSmall) {
  Hypergraph h = GraphToHypergraph(CycleGraph(6));
  FWidthResult r = ComputeDecomposition(h, WidthObjective::kTreewidth);
  EXPECT_DOUBLE_EQ(r.width, 2.0);
}

// Lemma 12 sandwich on random graphs: fhw <= tw + 1 and aw-lower <= fhw.
class WidthRelationsTest : public ::testing::TestWithParam<int> {};

TEST_P(WidthRelationsTest, RelationsHold) {
  Rng rng(1000 + GetParam());
  SimpleGraph g = ErdosRenyi(8, 0.3, rng);
  // Ensure no isolated vertices (fcn finite) by linking stragglers.
  for (int v = 1; v < g.num_vertices; ++v) g.AddEdge(v - 1, v);
  Hypergraph h = GraphToHypergraph(g);
  auto tw = ExactTreewidth(h);
  auto fhw = ExactFhw(h, 10);
  auto aw_low = AdaptiveWidthLowerBound(h, 10);
  ASSERT_TRUE(tw.ok() && fhw.ok() && aw_low.ok());
  EXPECT_LE(fhw->width, tw->width + 1.0 + 1e-7);
  EXPECT_LE(*aw_low, fhw->width + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WidthRelationsTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace cqcount
