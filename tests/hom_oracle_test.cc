#include "hom/hom_oracle.h"

#include <gtest/gtest.h>

#include "app/graph_gen.h"
#include "decomposition/elimination_order.h"
#include "query/parser.h"
#include "query/query_structures.h"
#include "test_util.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(StructureHomTest, GraphColouringIntuition) {
  // Hom(C5 -> K3) exists (5-cycle is 3-colourable); Hom(K3 -> P2-path
  // structure) does not.
  Structure c5 = GraphToDatabase(CycleGraph(5));
  Structure k3 = GraphToDatabase(CliqueGraph(3));
  Structure p2 = GraphToDatabase(PathGraph(2));
  EXPECT_TRUE(DecideStructureHom(c5, k3));
  EXPECT_FALSE(DecideStructureHom(k3, p2));
  // Anything maps into itself.
  EXPECT_TRUE(DecideStructureHom(k3, k3));
}

TEST(StructureHomTest, OddCycleIntoBipartiteFails) {
  Structure c5 = GraphToDatabase(CycleGraph(5));
  Structure c4 = GraphToDatabase(CycleGraph(4));
  EXPECT_FALSE(DecideStructureHom(c5, c4));
  EXPECT_TRUE(DecideStructureHom(c4, c4));
}

TEST(StructureHomTest, MissingSignatureSymbolIsNo) {
  Structure a(1);
  ASSERT_TRUE(a.DeclareRelation("R", 1).ok());
  ASSERT_TRUE(a.AddFact("R", {0}).ok());
  a.Canonicalize();
  Structure b(1);
  EXPECT_FALSE(DecideStructureHom(a, b));
}

TEST(HomOracleTest, DecompositionMatchesBacktrackingOnRandomInstances) {
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(seed * 41 + 3);
    RandomQueryOptions qopts;
    qopts.negated_probability = 0.3;
    Query q = RandomQuery(rng, qopts);
    Database db = RandomDatabaseFor(q, 4, 0.4, rng);
    Hypergraph h = q.BuildHypergraph();
    DecompositionHomOracle fast(q, db,
                                DecompositionFromOrder(h, MinFillOrder(h)));
    BacktrackingHomOracle slow(q, db);
    VarDomains domains;
    domains.allowed.resize(q.num_vars());
    for (int v = 0; v < q.num_vars(); ++v) {
      if (rng.Bernoulli(0.6)) domains.allowed[v] = rng.RandomMask(4, 0.7);
    }
    EXPECT_EQ(fast.Decide(domains), slow.Decide(domains)) << q.ToString();
    EXPECT_EQ(fast.num_calls(), 1u);
  }
}

// Lemma 30 cross-validation: the virtual colour-coded instance (domain
// restrictions) is equivalent to the materialised Hom(A-hat, B-hat).
TEST(HomOracleTest, VirtualMatchesMaterialisedAHatBHat) {
  Query q = Parse("ans(x) :- F(x, y), F(x, z), y != z.");
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(seed + 100);
    Database db = RandomDatabaseFor(q, 4, 0.5, rng);
    // Random V_0 and random colouring of the single disequality.
    PartiteParts parts = {rng.RandomMask(4, 0.6)};
    ColouringFamily colouring = {rng.RandomMask(4, 0.5)};

    // Materialised path.
    Structure a_hat = BuildStructureAHat(q);
    auto b_hat = BuildStructureBHat(q, db, parts, colouring);
    ASSERT_TRUE(b_hat.ok());
    const bool materialised = DecideStructureHom(a_hat, *b_hat);

    // Virtual path: domains encode P_i, V_i and the colour classes.
    VarDomains domains;
    domains.allowed.resize(q.num_vars());
    domains.allowed[0] = parts[0];
    // y (index 1) must be red, z (index 2) must be blue.
    domains.allowed[1] = colouring[0];
    domains.allowed[2] = colouring[0];
    domains.allowed[2].FlipAll();
    Hypergraph h = q.BuildHypergraph();
    DecompositionHomOracle oracle(q, db,
                                  DecompositionFromOrder(h, MinFillOrder(h)));
    EXPECT_EQ(oracle.Decide(domains), materialised) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cqcount
