#include "util/math_util.h"

#include <gtest/gtest.h>

namespace cqcount {
namespace {

TEST(Log2Test, CeilValues) {
  EXPECT_EQ(Log2Ceil(0), 0);
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(2), 1);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(4), 2);
  EXPECT_EQ(Log2Ceil(5), 3);
  EXPECT_EQ(Log2Ceil(1024), 10);
  EXPECT_EQ(Log2Ceil(1025), 11);
}

TEST(Log2Test, FloorValues) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(4), 2);
  EXPECT_EQ(Log2Floor(1023), 9);
  EXPECT_EQ(Log2Floor(1024), 10);
}

TEST(MedianTest, OddAndEven) {
  std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Median(odd), 3.0);
  std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Median(even), 2.5);
  std::vector<double> single = {7.0};
  EXPECT_DOUBLE_EQ(Median(single), 7.0);
}

TEST(MeanVarTest, ConstantSequenceHasZeroVariance) {
  MeanVarAccumulator acc;
  for (int i = 0; i < 10; ++i) acc.Add(4.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.count(), 10);
}

TEST(MeanVarTest, KnownVariance) {
  MeanVarAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of the classic example is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.mean_variance(), 32.0 / 56.0, 1e-12);
}

TEST(MeanVarTest, EmptyAccumulator) {
  MeanVarAccumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean_variance(), 0.0);
}

TEST(BinomialTest, SmallValues) {
  EXPECT_DOUBLE_EQ(BinomialDouble(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialDouble(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialDouble(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialDouble(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(BinomialDouble(10, 5), 252.0);
}

}  // namespace
}  // namespace cqcount
