// CLT early termination of the DLM median-of-runs schedule
// (DlmOptions::early_stop, opt-in; the engine arms it via
// EngineOptions::adaptive).
//
// Properties:
//   - opt-in: with the flag off nothing changes (the default path stays
//     bit-identical, runs the full schedule and reports kFullSchedule);
//   - early stop only ever skips TRAILING runs: the completed prefix is
//     the same runs, in the same order, with the same per-run seeds, so
//     the stopped estimate is a pure function of deterministic state and
//     is lane-count invariant;
//   - it never does more work than the full schedule;
//   - accuracy survives: over >= 50 random instances the early-stopped
//     estimate stays within the requested epsilon of the exact count at
//     roughly the requested failure rate.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "counting/dlm_counter.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "counting/partite_hypergraph.h"
#include "test_util.h"
#include "util/executor.h"

namespace cqcount {
namespace {

using testing_util::RandomDatabaseFor;
using testing_util::RandomQuery;
using testing_util::RandomQueryOptions;

constexpr uint32_t kUniverse = 6;

DlmOptions SamplingOptions(uint64_t seed) {
  DlmOptions opts;
  opts.epsilon = 0.25;
  opts.delta = 0.1;  // 13-run median schedule: room to stop early.
  opts.exact_enumeration_budget = 4;  // Forces the sampling phase...
  opts.max_frontier = 32;             // ...and keeps the frontier coarse.
  opts.seed = seed;
  return opts;
}

TEST(DlmEarlyStopTest, NeverMoreWorkAndTypedReason) {
  int stopped_early = 0;
  for (int instance = 0; instance < 12; ++instance) {
    Rng rng(instance * 131 + 17);
    RandomQueryOptions qopts;
    qopts.forced_num_free = 2;
    Query q = RandomQuery(rng, qopts);
    Database db = RandomDatabaseFor(q, kUniverse, 0.55, rng);
    BruteForceEdgeFreeOracle oracle(q, db);
    std::vector<uint32_t> part_sizes(q.num_free(), kUniverse);

    DlmOptions opts = SamplingOptions(instance * 31 + 7);
    auto full = DlmCountEdges(part_sizes, oracle, opts);
    ASSERT_TRUE(full.ok());

    DlmOptions adaptive_opts = opts;
    adaptive_opts.early_stop = true;
    auto adaptive = DlmCountEdges(part_sizes, oracle, adaptive_opts);
    ASSERT_TRUE(adaptive.ok());

    EXPECT_LE(adaptive->oracle_calls, full->oracle_calls) << q.ToString();
    EXPECT_LE(adaptive->completed_runs, adaptive->total_runs);
    EXPECT_EQ(adaptive->total_runs, full->total_runs)
        << "early stop must trim execution, not the schedule";
    if (adaptive->exact) {
      // The exact phase finished: no run structure, nothing to stop.
      EXPECT_EQ(adaptive->estimate, full->estimate);
      continue;
    }
    if (adaptive->completed_runs < adaptive->total_runs) {
      ++stopped_early;
      EXPECT_TRUE(adaptive->stop_reason == StopReason::kConfidence ||
                  adaptive->stop_reason == StopReason::kHardBounds)
          << StopReasonName(adaptive->stop_reason);
      EXPECT_GE(adaptive->completed_runs, 3)
          << "stopped before min_early_stop_runs";
      EXPECT_LT(adaptive->oracle_calls, full->oracle_calls)
          << "skipped runs must skip their oracle work";
    } else {
      EXPECT_EQ(adaptive->estimate, full->estimate)
          << "a full adaptive schedule is the fixed schedule";
      EXPECT_TRUE(adaptive->stop_reason == StopReason::kFullSchedule ||
                  adaptive->stop_reason == StopReason::kBudgetExhausted);
    }
  }
  // The knob must actually fire somewhere on a 12-instance spread (the
  // estimates here concentrate well below the 13-run worst case).
  EXPECT_GT(stopped_early, 0);
}

TEST(DlmEarlyStopTest, OptOutIsTheDefaultFixedSchedule) {
  Rng rng(99);
  RandomQueryOptions qopts;
  qopts.forced_num_free = 2;
  Query q = RandomQuery(rng, qopts);
  Database db = RandomDatabaseFor(q, kUniverse, 0.5, rng);
  BruteForceEdgeFreeOracle oracle(q, db);
  std::vector<uint32_t> part_sizes(q.num_free(), kUniverse);

  DlmOptions opts = SamplingOptions(515);
  auto a = DlmCountEdges(part_sizes, oracle, opts);
  auto b = DlmCountEdges(part_sizes, oracle, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->estimate, b->estimate);
  EXPECT_EQ(a->oracle_calls, b->oracle_calls);
  EXPECT_EQ(a->completed_runs, a->total_runs);
  if (!a->exact) {
    EXPECT_TRUE(a->stop_reason == StopReason::kFullSchedule ||
                a->stop_reason == StopReason::kBudgetExhausted);
  }
}

// The determinism contract for adaptive runs: the stop decision reads
// only merged per-run estimates at run boundaries, so lane count is a
// pure scheduling knob even with early stop armed.
TEST(DlmEarlyStopTest, EarlyStoppedEstimateInvariantAcrossLanes) {
  for (int instance = 0; instance < 6; ++instance) {
    Rng rng(instance * 211 + 3);
    RandomQueryOptions qopts;
    qopts.forced_num_free = 2;
    Query q = RandomQuery(rng, qopts);
    Database db = RandomDatabaseFor(q, kUniverse, 0.55, rng);
    BruteForceEdgeFreeOracle oracle(q, db);
    std::vector<uint32_t> part_sizes(q.num_free(), kUniverse);

    DlmOptions opts = SamplingOptions(instance * 77 + 11);
    opts.early_stop = true;
    auto reference = DlmCountEdges(part_sizes, oracle, opts);
    ASSERT_TRUE(reference.ok());
    for (int lanes : {2, 4}) {
      Executor pool(lanes);
      DlmOptions popts = opts;
      popts.pool = &pool;
      popts.intra_threads = lanes;
      auto parallel = DlmCountEdges(part_sizes, oracle, popts);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(parallel->estimate, reference->estimate)
          << q.ToString() << " lanes=" << lanes;
      EXPECT_EQ(parallel->oracle_calls, reference->oracle_calls);
      EXPECT_EQ(parallel->completed_runs, reference->completed_runs);
      EXPECT_EQ(parallel->stop_reason, reference->stop_reason);
    }
  }
}

// Accuracy coverage: early termination keeps the (epsilon, delta)
// promise empirically. With delta = 0.2 the expected failure count over
// N instances is at most 0.2 N; asserting <= 2 * delta * N keeps the
// test deterministic-seed-stable while still catching a broken stop rule
// (which sends the failure rate toward 50%+).
TEST(EarlyStopCoverageTest, FiftyInstancesWithinEpsilon) {
  constexpr int kInstances = 50;
  constexpr double kEpsilon = 0.3;
  constexpr double kDelta = 0.2;
  int failures = 0;
  int early_stops = 0;
  for (int instance = 0; instance < kInstances; ++instance) {
    Rng rng(instance * 419 + 29);
    RandomQueryOptions qopts;
    qopts.min_vars = 2;
    qopts.max_vars = 4;
    qopts.forced_num_free = 2;
    qopts.disequality_probability = 0.3;
    Query q = RandomQuery(rng, qopts);
    Database db = RandomDatabaseFor(q, kUniverse, 0.5, rng);

    ApproxOptions opts;
    opts.epsilon = kEpsilon;
    opts.delta = kDelta;
    opts.seed = static_cast<uint64_t>(instance) * 6011 + 101;
    opts.dlm.exact_enumeration_budget = 4;
    opts.dlm.max_frontier = 32;
    opts.dlm.early_stop = true;
    auto approx = ApproxCountAnswers(q, db, opts);
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();
    if (approx->stop_reason == StopReason::kConfidence ||
        approx->stop_reason == StopReason::kHardBounds) {
      ++early_stops;
    }

    const double exact = static_cast<double>(ExactCountAnswersBruteForce(q, db));
    const double error = exact == 0.0 ? (approx->estimate == 0.0 ? 0.0 : 1.0)
                                      : std::abs(approx->estimate - exact) /
                                            exact;
    if (error > kEpsilon) ++failures;
  }
  EXPECT_LE(failures, static_cast<int>(2 * kDelta * kInstances))
      << failures << "/" << kInstances
      << " instances outside epsilon with early stop armed";
  // The property is vacuous if the stop rule never fired.
  EXPECT_GT(early_stops, 0);
}

}  // namespace
}  // namespace cqcount
