// Cross-level equivalence tests for the SIMD kernels (relational/simd.h).
//
// Every kernel has scalar / SSE2 / AVX2 implementations that must compute
// EXACTLY the same answer — the engine's bit-identical-estimates contract
// rests on this. These tests pit each supported level against the scalar
// reference on randomized inputs, plus directed edge cases (v == 0 and
// v == UINT32_MAX probe the unsigned-compare sign-bias trick; short tails
// probe the vector/scalar boundary).
#include "relational/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace cqcount {
namespace simd {
namespace {

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels = {Level::kScalar};
  if (MaxSupportedLevel() >= Level::kSse2) levels.push_back(Level::kSse2);
  if (MaxSupportedLevel() >= Level::kAvx2) levels.push_back(Level::kAvx2);
  return levels;
}

// Scalar reference, written independently of the library's own scalar
// kernel so a bug there can't self-validate.
size_t RefLowerBound(const std::vector<Value>& keys, size_t stride,
                     size_t n, Value v) {
  for (size_t i = 0; i < n; ++i) {
    if (keys[i * stride] >= v) return i;
  }
  return n;
}

size_t RefUpperBound(const std::vector<Value>& keys, size_t stride,
                     size_t n, Value v) {
  for (size_t i = 0; i < n; ++i) {
    if (keys[i * stride] > v) return i;
  }
  return n;
}

std::vector<Value> SortedStridedKeys(Rng& rng, size_t n, size_t stride,
                                     uint32_t universe) {
  std::vector<Value> column(n);
  for (size_t i = 0; i < n; ++i) {
    column[i] = static_cast<Value>(rng.UniformInt(universe));
  }
  std::sort(column.begin(), column.end());
  std::vector<Value> keys(n * stride, 0);
  for (size_t i = 0; i < n; ++i) {
    keys[i * stride] = column[i];
    // Non-key lanes hold garbage the kernels must ignore.
    for (size_t k = 1; k < stride; ++k) {
      keys[i * stride + k] = static_cast<Value>(rng.UniformInt(1u << 31));
    }
  }
  return keys;
}

TEST(SimdTest, LevelNamesAndDetection) {
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(Level::kSse2), "sse2");
  EXPECT_STREQ(LevelName(Level::kAvx2), "avx2");
  EXPECT_GE(MaxSupportedLevel(), Level::kScalar);
  EXPECT_LE(ActiveLevel(), MaxSupportedLevel());
}

TEST(SimdTest, SetLevelForTestingClampsToSupported) {
  const Level before = ActiveLevel();
  SetLevelForTesting(Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  SetLevelForTesting(Level::kAvx2);
  EXPECT_LE(ActiveLevel(), MaxSupportedLevel());
  SetLevelForTesting(before);
}

TEST(SimdTest, LinearBoundsMatchReferenceAcrossLevels) {
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t stride = 1 + rng.UniformInt(4);
    const size_t n = rng.UniformInt(300);
    const uint32_t universe = 1 + static_cast<uint32_t>(rng.UniformInt(64));
    const std::vector<Value> keys =
        SortedStridedKeys(rng, n, stride, universe);
    for (int probe = 0; probe < 8; ++probe) {
      const Value v = static_cast<Value>(rng.UniformInt(universe + 2));
      const size_t want_lo = RefLowerBound(keys, stride, n, v);
      const size_t want_hi = RefUpperBound(keys, stride, n, v);
      for (Level level : SupportedLevels()) {
        EXPECT_EQ(LinearLowerBoundStridedAt(level, keys.data(), stride, n, v),
                  want_lo)
            << "level=" << LevelName(level) << " n=" << n
            << " stride=" << stride << " v=" << v;
        EXPECT_EQ(LinearUpperBoundStridedAt(level, keys.data(), stride, n, v),
                  want_hi)
            << "level=" << LevelName(level) << " n=" << n
            << " stride=" << stride << " v=" << v;
      }
    }
  }
}

TEST(SimdTest, BoundsHandleExtremeValues) {
  // v == 0 and v == UINT32_MAX exercise the sign-bias (XOR 0x80000000)
  // unsigned-compare formulation at both ends of the value space.
  Rng rng(7);
  for (Level level : SupportedLevels()) {
    for (size_t stride : {size_t{1}, size_t{3}}) {
      std::vector<Value> keys(64 * stride, 0);
      for (size_t i = 0; i < 64; ++i) {
        keys[i * stride] = i < 20   ? 0u
                           : i < 44 ? 1000u + static_cast<Value>(i)
                                    : UINT32_MAX;
      }
      EXPECT_EQ(LinearLowerBoundStridedAt(level, keys.data(), stride, 64, 0u),
                0u);
      EXPECT_EQ(LinearUpperBoundStridedAt(level, keys.data(), stride, 64, 0u),
                20u);
      EXPECT_EQ(LinearLowerBoundStridedAt(level, keys.data(), stride, 64,
                                          UINT32_MAX),
                44u);
      EXPECT_EQ(LinearUpperBoundStridedAt(level, keys.data(), stride, 64,
                                          UINT32_MAX),
                64u);
      EXPECT_EQ(LinearLowerBoundStridedAt(level, keys.data(), stride, 0, 5u),
                0u);
    }
  }
}

TEST(SimdTest, HybridBoundsMatchStdAlgorithms) {
  Rng rng(99);
  const Level before = ActiveLevel();
  for (Level level : SupportedLevels()) {
    SetLevelForTesting(level);
    for (int trial = 0; trial < 40; ++trial) {
      const size_t stride = 1 + rng.UniformInt(3);
      const size_t n = rng.UniformInt(5000);
      const uint32_t universe = 1 + static_cast<uint32_t>(rng.UniformInt(500));
      const std::vector<Value> keys =
          SortedStridedKeys(rng, n, stride, universe);
      for (int probe = 0; probe < 6; ++probe) {
        const Value v = static_cast<Value>(rng.UniformInt(universe + 2));
        EXPECT_EQ(LowerBoundStrided(keys.data(), stride, n, v),
                  RefLowerBound(keys, stride, n, v))
            << "level=" << LevelName(level);
        EXPECT_EQ(UpperBoundStrided(keys.data(), stride, n, v),
                  RefUpperBound(keys, stride, n, v))
            << "level=" << LevelName(level);
      }
    }
  }
  SetLevelForTesting(before);
}

TEST(SimdTest, Stride2SecondColumnScanToBufferEndStaysInBounds) {
  // Regression: the AVX2 stride-2 deinterleaving load reads one Value
  // past a group's last key, so scanning COLUMN 1 of an arity-2
  // relation (base = data + 1, stride 2) with a window reaching the
  // last row used to read 4 bytes past the heap buffer (caught by ASAN;
  // a segfault when the allocation ended at a page boundary). The
  // buffers here are exact-size heap allocations so sanitizers see any
  // recurrence; probe values force full scans to the final key.
  Rng rng(123);
  for (size_t n : {size_t{8}, size_t{9}, size_t{16}, size_t{24}, size_t{64},
                   size_t{96}, size_t{100}}) {
    std::vector<Value> rows(2 * n);  // n rows, arity 2, nothing after.
    for (size_t i = 0; i < n; ++i) {
      rows[i * 2] = static_cast<Value>(rng.UniformInt(1u << 30));  // Garbage.
      rows[i * 2 + 1] = static_cast<Value>(2 * i);  // Sorted key column.
    }
    const Value* base = rows.data() + 1;
    // Probes past every key (forces the scan to run off the end), at the
    // last key, and inside the range.
    for (Value v : {static_cast<Value>(2 * n), static_cast<Value>(2 * n - 2),
                    static_cast<Value>(n)}) {
      size_t want_lo = n, want_hi = n;
      for (size_t i = 0; i < n; ++i) {
        if (base[i * 2] >= v) { want_lo = i; break; }
      }
      for (size_t i = 0; i < n; ++i) {
        if (base[i * 2] > v) { want_hi = i; break; }
      }
      for (Level level : SupportedLevels()) {
        EXPECT_EQ(LinearLowerBoundStridedAt(level, base, 2, n, v), want_lo)
            << "level=" << LevelName(level) << " n=" << n << " v=" << v;
        EXPECT_EQ(LinearUpperBoundStridedAt(level, base, 2, n, v), want_hi)
            << "level=" << LevelName(level) << " n=" << n << " v=" << v;
      }
    }
  }
}

TEST(SimdTest, MinMaxMatchesReferenceAcrossLevels) {
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t stride = 1 + rng.UniformInt(4);
    const size_t n = 1 + rng.UniformInt(400);
    std::vector<Value> keys(n * stride);
    for (Value& v : keys) {
      // Spread across the full 32-bit range, including sign-bit values.
      v = static_cast<Value>(rng.UniformInt(1u << 30)) * 4u +
          static_cast<Value>(rng.UniformInt(4));
    }
    Value want_min = keys[0], want_max = keys[0];
    for (size_t i = 0; i < n; ++i) {
      want_min = std::min(want_min, keys[i * stride]);
      want_max = std::max(want_max, keys[i * stride]);
    }
    for (Level level : SupportedLevels()) {
      Value mn = 0, mx = 0;
      MinMaxStridedAt(level, keys.data(), stride, n, &mn, &mx);
      EXPECT_EQ(mn, want_min) << "level=" << LevelName(level) << " n=" << n;
      EXPECT_EQ(mx, want_max) << "level=" << LevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdTest, ProbeStampsBlockMatchesScalarAcrossLevels) {
  Rng rng(31337);
  for (int trial = 0; trial < 120; ++trial) {
    const size_t width = 1 + rng.UniformInt(4);
    const size_t ncols = 1 + rng.UniformInt(width);
    const size_t n = 1 + rng.UniformInt(64);
    const uint32_t domain = 1 + static_cast<uint32_t>(rng.UniformInt(8));

    std::vector<int> cols(ncols);
    std::vector<uint32_t> radix(ncols);
    uint32_t space = 1;
    for (size_t k = 0; k < ncols; ++k) {
      cols[k] = static_cast<int>(rng.UniformInt(width));
      radix[k] = space;
      space *= domain;
    }
    const uint32_t epoch = 5;
    std::vector<uint32_t> stamps(space);
    for (uint32_t& s : stamps) {
      s = rng.Bernoulli(0.4) ? epoch : epoch - 1;
    }
    std::vector<Value> rows(n * width);
    for (Value& v : rows) v = static_cast<Value>(rng.UniformInt(domain));

    uint64_t want = 0;
    for (size_t r = 0; r < n; ++r) {
      uint32_t code = 0;
      for (size_t k = 0; k < ncols; ++k) {
        code += radix[k] * rows[r * width + cols[k]];
      }
      if (stamps[code] == epoch) want |= uint64_t{1} << r;
    }
    for (Level level : SupportedLevels()) {
      EXPECT_EQ(ProbeStampsBlockAt(level, stamps.data(), stamps.size(), epoch,
                                   rows.data(), width, cols.data(),
                                   radix.data(), ncols, n),
                want)
          << "level=" << LevelName(level) << " n=" << n << " width=" << width
          << " ncols=" << ncols;
    }
  }
}

TEST(SimdTest, ProbeStampsBlockTreatsOutOfRangeCodesAsMisses) {
  // Row values that escaped universe certification (corrupt storage)
  // can form codes at/past the stamp table end; every level must treat
  // those as misses — identically — instead of indexing out of bounds.
  constexpr Value space = 16;
  std::vector<uint32_t> stamps(space, 7u);  // Every in-range probe hits.
  const int cols[1] = {0};
  const uint32_t radix[1] = {1};
  std::vector<Value> rows = {3,          15,         16,  // First OOR code.
                             UINT32_MAX, 0,          1000,
                             8,          space,      4};
  uint64_t want = 0;
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r] < space) want |= uint64_t{1} << r;
  }
  for (Level level : SupportedLevels()) {
    EXPECT_EQ(ProbeStampsBlockAt(level, stamps.data(), space, 7u, rows.data(),
                                 1, cols, radix, 1, rows.size()),
              want)
        << "level=" << LevelName(level);
  }
}

}  // namespace
}  // namespace simd
}  // namespace cqcount
