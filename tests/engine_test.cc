#include "engine/engine.h"

#include <gtest/gtest.h>

#include <string>

#include "app/graph_gen.h"
#include "app/workload.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "query/parser.h"

namespace cqcount {
namespace {

Database Social(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  return SocialNetworkDb(n, 5.0, 0.5, rng);
}

TEST(EngineTest, UnknownDatabaseIsNotFound) {
  CountingEngine engine;
  auto result = engine.Count("ans(x) :- F(x, y).", "nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, ParseErrorsPropagate) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(20, 1)).ok());
  auto result = engine.Count("ans(x) :- F(x,", "g");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, ExactStrategyMatchesBruteForce) {
  CountingEngine engine;
  Database db = Social(30, 2);
  ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());

  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  auto result = engine.CountExact(query, "g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->exact);
  EXPECT_EQ(result->strategy, Strategy::kExact);

  auto parsed = ParseQuery(query);
  ASSERT_TRUE(parsed.ok());
  const uint64_t exact = ExactCountAnswersBruteForce(*parsed, db);
  EXPECT_DOUBLE_EQ(result->estimate, static_cast<double>(exact));
}

TEST(EngineTest, SmallInstancePlansChooseExact) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(30, 3)).ok());
  auto result = engine.Count("ans(x) :- F(x, y), F(x, z), y != z.", "g");
  ASSERT_TRUE(result.ok());
  // 30^3 assignments is far below the exact-cost limit: planner picks the
  // brute-force strategy and the answer is exact.
  EXPECT_EQ(result->strategy, Strategy::kExact);
  EXPECT_TRUE(result->exact);
}

TEST(EngineTest, ApproxPathMatchesDirectPipelineBitwise) {
  // Universe large enough that the planner rejects brute force.
  Database db = Social(300, 4);
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());

  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  CountRequest request;
  request.query = query;
  request.database = "g";
  request.seed = 0xFEEDULL;
  auto via_engine = engine.Count(request);
  ASSERT_TRUE(via_engine.ok()) << via_engine.status().ToString();
  EXPECT_EQ(via_engine->strategy, Strategy::kFptrasTreewidth);

  auto parsed = ParseQuery(query);
  ASSERT_TRUE(parsed.ok());
  ApproxOptions direct;
  direct.epsilon = engine.options().epsilon;
  direct.delta = engine.options().delta;
  direct.seed = 0xFEEDULL;
  direct.objective = WidthObjective::kTreewidth;
  direct.exact_decomposition_limit =
      engine.options().plan.exact_decomposition_limit;
  auto via_pipeline = ApproxCountAnswers(*parsed, db, direct);
  ASSERT_TRUE(via_pipeline.ok()) << via_pipeline.status().ToString();

  // Same seed, same decomposition, same estimator: bitwise identical.
  EXPECT_EQ(via_engine->estimate, via_pipeline->estimate);
  EXPECT_EQ(via_engine->exact, via_pipeline->exact);
}

TEST(EngineTest, WarmCacheSkipsDecompositionRecomputation) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(40, 5)).ok());

  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  auto cold = engine.Count(query, "g");
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->plan_cache_hit);
  PlanCacheStats after_cold = engine.CacheStats();
  EXPECT_EQ(after_cold.hits, 0u);
  EXPECT_EQ(after_cold.misses, 1u);
  EXPECT_EQ(after_cold.insertions, 1u);

  auto warm = engine.Count(query, "g");
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  PlanCacheStats after_warm = engine.CacheStats();
  // The hit is exactly the decomposition-recomputation skip: no new plan
  // was inserted, so ComputeDecomposition ran only once.
  EXPECT_EQ(after_warm.hits, 1u);
  EXPECT_EQ(after_warm.insertions, 1u);
  EXPECT_EQ(warm->estimate, cold->estimate);
}

TEST(EngineTest, IsomorphicQueriesShareOnePlan) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(40, 6)).ok());

  auto first = engine.Count("ans(x) :- F(x, y), F(x, z), y != z.", "g");
  ASSERT_TRUE(first.ok());
  auto renamed = engine.Count("ans(a) :- F(a, b), F(a, c), b != c.", "g");
  ASSERT_TRUE(renamed.ok());

  EXPECT_TRUE(renamed->plan_cache_hit);
  EXPECT_EQ(first->shape_key, renamed->shape_key);
  EXPECT_EQ(engine.CacheStats().insertions, 1u);
  // Same database and strategy: the counts must agree exactly.
  EXPECT_EQ(first->estimate, renamed->estimate);
}

TEST(EngineTest, DatabasesScopePlansIndependently) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("small", Social(30, 7)).ok());
  ASSERT_TRUE(engine.RegisterDatabase("large", Social(300, 8)).ok());

  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  auto small = engine.Count(query, "small");
  auto large = engine.Count(query, "large");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  // Same shape, different databases: plans are scoped per database and
  // may select different strategies.
  EXPECT_EQ(engine.CacheStats().insertions, 2u);
  EXPECT_EQ(small->strategy, Strategy::kExact);
  EXPECT_EQ(large->strategy, Strategy::kFptrasTreewidth);
}

TEST(EngineTest, ExplainReportsVerdictAndPlan) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(40, 9)).ok());

  auto explanation =
      engine.Explain("ans(x, y) :- F(x, y), !Adult(x), x != y.", "g");
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  EXPECT_EQ(explanation->plan.classification.kind, QueryKind::kEcq);
  EXPECT_TRUE(explanation->plan.classification.fptras_bounded_arity);
  EXPECT_NE(explanation->text.find("Theorem 5"), std::string::npos);
  EXPECT_NE(explanation->text.find("strategy:"), std::string::npos);

  // Explain shares the plan cache with Count.
  auto again = engine.Explain("ans(x, y) :- F(x, y), !Adult(x), x != y.", "g");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->plan_cache_hit);
}

TEST(EngineTest, FprasStrategyRunsForPureCqs) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(30, 10)).ok());
  auto result = engine.Count("ans(x, y) :- F(x, y).", "g");
  ASSERT_TRUE(result.ok());
  // Tiny instance: exact; the classification must still note the FPRAS.
  EXPECT_NE(result->verdict.find("FPRAS"), std::string::npos);
}

TEST(EngineTest, ReregistrationInvalidatesCachedPlans) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(30, 12)).ok());
  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  auto small = engine.Count(query, "g");
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->strategy, Strategy::kExact);

  // Replace the contents under the same name with a database the planner
  // must treat differently: the stale exact plan must not be reused.
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(300, 13)).ok());
  auto large = engine.Count(query, "g");
  ASSERT_TRUE(large.ok());
  EXPECT_FALSE(large->plan_cache_hit);
  EXPECT_EQ(large->strategy, Strategy::kFptrasTreewidth);

  // And the new plan is cached under the new generation.
  auto warm = engine.Count(query, "g");
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
}

TEST(EngineTest, CacheEvictionKeepsCountsCorrect) {
  EngineOptions opts;
  opts.plan_cache_capacity = 2;
  opts.plan_cache_shards = 1;
  CountingEngine engine(opts);
  Database db = Social(25, 11);
  ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());

  const std::vector<std::string> queries = {
      "ans(x) :- F(x, y).",
      "ans(x) :- F(x, y), F(y, z).",
      "ans(x) :- F(x, y), F(x, z), y != z.",
  };
  std::vector<double> first_pass;
  for (const auto& q : queries) {
    auto r = engine.Count(q, "g");
    ASSERT_TRUE(r.ok());
    first_pass.push_back(r->estimate);
  }
  EXPECT_GE(engine.CacheStats().evictions, 1u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = engine.Count(queries[i], "g");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->estimate, first_pass[i]) << queries[i];
  }
}

}  // namespace
}  // namespace cqcount
