#include "engine/engine.h"

#include <gtest/gtest.h>

#include <string>

#include "app/graph_gen.h"
#include "app/workload.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "query/parser.h"

namespace cqcount {
namespace {

Database Social(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  return SocialNetworkDb(n, 5.0, 0.5, rng);
}

TEST(EngineTest, UnknownDatabaseIsNotFound) {
  CountingEngine engine;
  auto result = engine.Count("ans(x) :- F(x, y).", "nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, ParseErrorsPropagate) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(20, 1)).ok());
  auto result = engine.Count("ans(x) :- F(x,", "g");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, ExactStrategyMatchesBruteForce) {
  CountingEngine engine;
  Database db = Social(30, 2);
  ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());

  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  auto result = engine.CountExact(query, "g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->exact);
  EXPECT_EQ(result->strategy, Strategy::kExact);

  auto parsed = ParseQuery(query);
  ASSERT_TRUE(parsed.ok());
  const uint64_t exact = ExactCountAnswersBruteForce(*parsed, db);
  EXPECT_DOUBLE_EQ(result->estimate, static_cast<double>(exact));
}

TEST(EngineTest, SmallInstancePlansChooseExact) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(30, 3)).ok());
  auto result = engine.Count("ans(x) :- F(x, y), F(x, z), y != z.", "g");
  ASSERT_TRUE(result.ok());
  // 30^3 assignments is far below the exact-cost limit: planner picks the
  // brute-force strategy and the answer is exact.
  EXPECT_EQ(result->strategy, Strategy::kExact);
  EXPECT_TRUE(result->exact);
}

TEST(EngineTest, ApproxPathMatchesDirectPipelineBitwise) {
  // Universe large enough that the planner rejects brute force.
  Database db = Social(300, 4);
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());

  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  CountRequest request;
  request.query = query;
  request.database = "g";
  request.seed = 0xFEEDULL;
  auto via_engine = engine.Count(request);
  ASSERT_TRUE(via_engine.ok()) << via_engine.status().ToString();
  EXPECT_EQ(via_engine->strategy, Strategy::kFptrasTreewidth);

  auto parsed = ParseQuery(query);
  ASSERT_TRUE(parsed.ok());
  ApproxOptions direct;
  direct.epsilon = engine.options().epsilon;
  direct.delta = engine.options().delta;
  direct.seed = 0xFEEDULL;
  direct.objective = WidthObjective::kTreewidth;
  direct.exact_decomposition_limit =
      engine.options().plan.exact_decomposition_limit;
  auto via_pipeline = ApproxCountAnswers(*parsed, db, direct);
  ASSERT_TRUE(via_pipeline.ok()) << via_pipeline.status().ToString();

  // Same seed, same decomposition, same estimator: bitwise identical.
  EXPECT_EQ(via_engine->estimate, via_pipeline->estimate);
  EXPECT_EQ(via_engine->exact, via_pipeline->exact);
}

TEST(EngineTest, WarmCacheSkipsDecompositionRecomputation) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(40, 5)).ok());

  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  auto cold = engine.Count(query, "g");
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->plan_cache_hit);
  PlanCacheStats after_cold = engine.CacheStats();
  EXPECT_EQ(after_cold.hits, 0u);
  EXPECT_EQ(after_cold.misses, 1u);
  EXPECT_EQ(after_cold.insertions, 1u);

  auto warm = engine.Count(query, "g");
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  PlanCacheStats after_warm = engine.CacheStats();
  // The hit is exactly the decomposition-recomputation skip: no new plan
  // was inserted, so ComputeDecomposition ran only once.
  EXPECT_EQ(after_warm.hits, 1u);
  EXPECT_EQ(after_warm.insertions, 1u);
  EXPECT_EQ(warm->estimate, cold->estimate);
}

TEST(EngineTest, IsomorphicQueriesShareOnePlan) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(40, 6)).ok());

  auto first = engine.Count("ans(x) :- F(x, y), F(x, z), y != z.", "g");
  ASSERT_TRUE(first.ok());
  auto renamed = engine.Count("ans(a) :- F(a, b), F(a, c), b != c.", "g");
  ASSERT_TRUE(renamed.ok());

  EXPECT_TRUE(renamed->plan_cache_hit);
  EXPECT_EQ(first->shape_key, renamed->shape_key);
  EXPECT_EQ(engine.CacheStats().insertions, 1u);
  // Same database and strategy: the counts must agree exactly.
  EXPECT_EQ(first->estimate, renamed->estimate);
}

TEST(EngineTest, DatabasesScopePlansIndependently) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("small", Social(30, 7)).ok());
  ASSERT_TRUE(engine.RegisterDatabase("large", Social(300, 8)).ok());

  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  auto small = engine.Count(query, "small");
  auto large = engine.Count(query, "large");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  // Same shape, different databases: plans are scoped per database and
  // may select different strategies.
  EXPECT_EQ(engine.CacheStats().insertions, 2u);
  EXPECT_EQ(small->strategy, Strategy::kExact);
  EXPECT_EQ(large->strategy, Strategy::kFptrasTreewidth);
}

TEST(EngineTest, ExplainReportsVerdictAndPlan) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(40, 9)).ok());

  auto explanation =
      engine.Explain("ans(x, y) :- F(x, y), !Adult(x), x != y.", "g");
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  EXPECT_EQ(explanation->plan.classification.kind, QueryKind::kEcq);
  EXPECT_TRUE(explanation->plan.classification.fptras_bounded_arity);
  EXPECT_NE(explanation->text.find("Theorem 5"), std::string::npos);
  EXPECT_NE(explanation->text.find("strategy:"), std::string::npos);

  // Explain shares the plan cache with Count.
  auto again = engine.Explain("ans(x, y) :- F(x, y), !Adult(x), x != y.", "g");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->plan_cache_hit);
}

TEST(EngineTest, FprasStrategyRunsForPureCqs) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(30, 10)).ok());
  auto result = engine.Count("ans(x, y) :- F(x, y).", "g");
  ASSERT_TRUE(result.ok());
  // Tiny instance: exact; the classification must still note the FPRAS.
  EXPECT_NE(result->verdict.find("FPRAS"), std::string::npos);
}

TEST(EngineTest, ReregistrationInvalidatesCachedPlans) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(30, 12)).ok());
  const std::string query = "ans(x) :- F(x, y), F(x, z), y != z.";
  auto small = engine.Count(query, "g");
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->strategy, Strategy::kExact);

  // Replace the contents under the same name with a database the planner
  // must treat differently: the stale exact plan must not be reused.
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(300, 13)).ok());
  auto large = engine.Count(query, "g");
  ASSERT_TRUE(large.ok());
  EXPECT_FALSE(large->plan_cache_hit);
  EXPECT_EQ(large->strategy, Strategy::kFptrasTreewidth);

  // And the new plan is cached under the new generation.
  auto warm = engine.Count(query, "g");
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
}

TEST(EngineTest, DisconnectedQueryFactorsIntoComponents) {
  CountingEngine engine;
  Database db = Social(30, 20);
  ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());

  // Two Gaifman components {x, a} and {y, b}: planned as two sub-plans
  // whose counts multiply.
  const std::string query = "ans(x, y) :- F(x, a), F(y, b).";
  auto result = engine.Count(query, "g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_components, 2);
  ASSERT_EQ(result->components.size(), 2u);
  EXPECT_TRUE(result->exact);

  auto parsed = ParseQuery(query);
  ASSERT_TRUE(parsed.ok());
  const double exact =
      static_cast<double>(ExactCountAnswersBruteForce(*parsed, db));
  EXPECT_DOUBLE_EQ(result->estimate, exact);
  EXPECT_DOUBLE_EQ(result->components[0].estimate *
                       result->components[1].estimate,
                   exact);

  // The two components are isomorphic: the second one hits the plan the
  // first one just built, within a single cold Count.
  EXPECT_EQ(result->components[0].shape_key, result->components[1].shape_key);
  EXPECT_FALSE(result->components[0].plan_cache_hit);
  EXPECT_TRUE(result->components[1].plan_cache_hit);
  EXPECT_EQ(engine.CacheStats().insertions, 1u);
}

TEST(EngineTest, FactoringLowersPlannedCost) {
  // 120^4 assignments monolithically (far beyond brute force) vs two
  // 120^2 components: factoring turns an estimation workload back into
  // two cheap exact counts.
  Database db = Social(120, 21);
  CountingEngine factored;
  ASSERT_TRUE(factored.RegisterDatabase("g", db).ok());
  EngineOptions monolithic_opts;
  monolithic_opts.compile.factor_components = false;
  CountingEngine monolithic(monolithic_opts);
  ASSERT_TRUE(monolithic.RegisterDatabase("g", db).ok());

  const std::string query = "ans(x, y) :- F(x, a), F(y, b).";
  auto factored_result = factored.Count(query, "g");
  ASSERT_TRUE(factored_result.ok());
  EXPECT_EQ(factored_result->num_components, 2);
  EXPECT_EQ(factored_result->strategy, Strategy::kExact);
  EXPECT_TRUE(factored_result->exact);

  auto monolithic_result = monolithic.Count(query, "g");
  ASSERT_TRUE(monolithic_result.ok());
  EXPECT_EQ(monolithic_result->num_components, 1);
  EXPECT_NE(monolithic_result->strategy, Strategy::kExact);

  // The approximate monolithic estimate must agree with the factored
  // exact product within its accuracy target (generous slack for delta).
  EXPECT_NEAR(monolithic_result->estimate, factored_result->estimate,
              0.5 * factored_result->estimate + 1.0);
}

TEST(EngineTest, ExistentialComponentCollapsesToBooleanFactor) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(30, 22)).ok());

  auto with_existential =
      engine.Count("ans(x) :- F(x, y), F(u, v), u != v.", "g");
  ASSERT_TRUE(with_existential.ok()) << with_existential.status().ToString();
  ASSERT_EQ(with_existential->num_components, 2);
  EXPECT_FALSE(with_existential->components[0].existential);
  EXPECT_TRUE(with_existential->components[1].existential);

  // The satisfiable existential factor contributes exactly 1: the count
  // equals the plain single-component query's.
  auto plain = engine.Count("ans(x) :- F(x, y).", "g");
  ASSERT_TRUE(plain.ok());
  EXPECT_DOUBLE_EQ(with_existential->estimate, plain->estimate);
}

TEST(EngineTest, ComponentBudgetSplitIsRecorded) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(120, 23)).ok());

  // Two estimated counting components (120^3 per component is past the
  // exact-cost limit): epsilon/(2k) each, delta/k each.
  CountRequest request;
  request.query = "ans(x, y) :- F(x, a), F(a, b), F(y, c), F(c, d).";
  request.database = "g";
  request.epsilon = 0.4;
  request.delta = 0.2;
  auto result = engine.Count(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->components.size(), 2u);
  ASSERT_NE(result->components[0].strategy, Strategy::kExact);
  EXPECT_DOUBLE_EQ(result->components[0].epsilon, 0.1);
  EXPECT_DOUBLE_EQ(result->components[1].epsilon, 0.1);
  EXPECT_DOUBLE_EQ(result->components[0].delta, 0.1);

  // Mixed exact + estimated: the exact factor consumes no budget (zero
  // share) and the estimated one keeps the FULL epsilon.
  CountRequest mixed;
  mixed.query = "ans(x, y) :- F(x, a), F(a, b), F(y, c).";
  mixed.database = "g";
  mixed.epsilon = 0.4;
  mixed.delta = 0.2;
  auto mixed_result = engine.Count(mixed);
  ASSERT_TRUE(mixed_result.ok()) << mixed_result.status().ToString();
  ASSERT_EQ(mixed_result->components.size(), 2u);
  ASSERT_NE(mixed_result->components[0].strategy, Strategy::kExact);
  ASSERT_EQ(mixed_result->components[1].strategy, Strategy::kExact);
  EXPECT_DOUBLE_EQ(mixed_result->components[0].epsilon, 0.4);
  EXPECT_DOUBLE_EQ(mixed_result->components[0].delta, 0.2);
  EXPECT_DOUBLE_EQ(mixed_result->components[1].epsilon, 0.0);
  EXPECT_DOUBLE_EQ(mixed_result->components[1].delta, 0.0);
}

TEST(EngineTest, FactoredBatchesStayDeterministicAcrossThreadCounts) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(120, 24)).ok());
  std::vector<CountRequest> requests;
  for (const char* text : {
           "ans(x, y) :- F(x, a), F(y, b).",
           "ans(x) :- F(x, y), F(u, v), u != v.",
           "ans(x) :- F(x, y), F(x, z), y != z.",
           "ans(p, q) :- F(p, a), F(q, b).",
       }) {
    CountRequest request;
    request.query = text;
    request.database = "g";
    requests.push_back(request);
  }
  std::vector<double> reference;
  for (int threads : {1, 2, 4}) {
    auto results = engine.CountBatch(requests, threads);
    std::vector<double> estimates;
    for (const auto& r : results) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      estimates.push_back(r->estimate);
    }
    if (reference.empty()) {
      reference = estimates;
    } else {
      EXPECT_EQ(estimates, reference) << "threads=" << threads;
    }
  }
}

TEST(EngineTest, ExplainShowsPerComponentBreakdown) {
  CountingEngine engine;
  ASSERT_TRUE(engine.RegisterDatabase("g", Social(40, 25)).ok());
  auto explanation =
      engine.Explain("ans(x, y) :- F(x, a), F(y, b).", "g");
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  ASSERT_EQ(explanation->components.size(), 2u);
  EXPECT_NE(explanation->text.find("components: 2"), std::string::npos);
  EXPECT_NE(explanation->text.find("component 0"), std::string::npos);
  EXPECT_NE(explanation->text.find("component 1"), std::string::npos);
  EXPECT_NE(explanation->text.find("strategy:"), std::string::npos);
  EXPECT_NE(explanation->text.find("budget:"), std::string::npos);
}

TEST(EngineTest, CacheEvictionKeepsCountsCorrect) {
  EngineOptions opts;
  opts.plan_cache_capacity = 2;
  opts.plan_cache_shards = 1;
  CountingEngine engine(opts);
  Database db = Social(25, 11);
  ASSERT_TRUE(engine.RegisterDatabase("g", db).ok());

  const std::vector<std::string> queries = {
      "ans(x) :- F(x, y).",
      "ans(x) :- F(x, y), F(y, z).",
      "ans(x) :- F(x, y), F(x, z), y != z.",
  };
  std::vector<double> first_pass;
  for (const auto& q : queries) {
    auto r = engine.Count(q, "g");
    ASSERT_TRUE(r.ok());
    first_pass.push_back(r->estimate);
  }
  EXPECT_GE(engine.CacheStats().evictions, 1u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = engine.Count(queries[i], "g");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->estimate, first_pass[i]) << queries[i];
  }
}

}  // namespace
}  // namespace cqcount
