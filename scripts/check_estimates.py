#!/usr/bin/env python3
"""Validates bench/telemetry JSON emitted by the cqcount binaries.

Usage:
  check_estimates.py <fresh.json> <baseline.json>   baseline estimate check
  check_estimates.py stats <stats.json>             `cli stats` schema check
  check_estimates.py trace <trace.json>             Chrome-trace schema check
  check_estimates.py count-json <result.json>       `cli count --json` check

Baseline mode: perf PRs are free to change timings, but the `estimates`
section of BENCH_fptras.json is produced at FIXED sizes and seeds in
every mode (including CQCOUNT_BENCH_SMOKE), so any drift there means the
refactor changed answers, not just speed. CI fails the build in that
case.

The telemetry modes validate the observability surface added with the
obs/ subsystem: the metric registry dump, the Chrome trace_event export,
and the machine-readable count result with its embedded QueryProfile.
"""
import json
import sys

# Metric families every `stats` dump must contain (eagerly registered at
# load, so they appear even on code paths the process never executed).
REQUIRED_METRICS = (
    "engine.counts",
    "plan_cache.hits",
    "plan_cache.misses",
    "plan_cache.evictions",
    "executor.tasks_submitted",
    "executor.queue_depth",
    "dlm.estimates",
    "dlm.oracle_calls",
    "dlm.abandoned_waves",
    "dp.prepared_decides",
    "cc.hom_queries",
    "acjr.membership_tests",
    "sampler.samples",
)

# Span names a traced non-trivial count must produce. dlm.run/dlm.round
# only appear when the instance reaches the sampling phase, so the CI
# smoke database is deliberately dense enough to get there.
REQUIRED_SPANS = (
    "engine.count",
    "engine.parse",
    "engine.compile",
    "compile.normalize",
    "pass.dedup_and_guards",
    "engine.plan",
    "engine.execute",
    "component.execute",
    "fptras.dlm",
    "dlm.run",
    "dlm.round",
)

VALID_KINDS = ("counter", "gauge", "histogram")


def load_estimates(path):
    with open(path) as f:
        data = json.load(f)
    estimates = data.get("estimates")
    if not estimates:
        raise SystemExit(f"{path}: no 'estimates' section")
    return {e["name"]: e for e in estimates}


def check_baseline(fresh_path, baseline_path):
    fresh = load_estimates(fresh_path)
    baseline = load_estimates(baseline_path)
    failures = []
    for name, base in sorted(baseline.items()):
        got = fresh.get(name)
        if got is None:
            failures.append(f"{name}: missing from fresh output")
            continue
        for key in ("universe", "seed", "epsilon", "delta"):
            if got.get(key) != base.get(key):
                failures.append(
                    f"{name}: config drift on {key!r}: "
                    f"{got.get(key)} != {base.get(key)}")
        if got.get("estimate") != base.get("estimate"):
            failures.append(
                f"{name}: estimate {got.get('estimate')} != baseline "
                f"{base.get('estimate')} (fixed seed: must be bit-identical)")
        # The determinism contract: the multi-threaded (4 intra-query
        # lanes) rerun of each workload must match the single-threaded
        # baseline bit for bit.
        if "estimate_mt" in got and got["estimate_mt"] != base.get("estimate"):
            failures.append(
                f"{name}: multi-threaded estimate {got['estimate_mt']} != "
                f"single-threaded baseline {base.get('estimate')} "
                f"(intra-query parallelism must be bit-identical)")
        if got.get("exact") != base.get("exact"):
            failures.append(
                f"{name}: exact flag {got.get('exact')} != "
                f"{base.get('exact')}")
    if failures:
        print("estimate baseline check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"estimate baseline check OK ({len(baseline)} workloads)")
    return 0


def check_stats(path):
    with open(path) as f:
        data = json.load(f)
    failures = []
    metrics = data.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        raise SystemExit(f"{path}: no 'metrics' array")
    names = []
    for m in metrics:
        name = m.get("name")
        if not name:
            failures.append(f"metric without a name: {m}")
            continue
        names.append(name)
        kind = m.get("kind")
        if kind not in VALID_KINDS:
            failures.append(f"{name}: bad kind {kind!r}")
        if not m.get("description"):
            failures.append(f"{name}: missing description")
        if kind == "histogram":
            if "count" not in m or "sum" not in m:
                failures.append(f"{name}: histogram without count/sum")
            for bucket in m.get("buckets", []):
                if "le" not in bucket or "count" not in bucket:
                    failures.append(f"{name}: malformed bucket {bucket}")
        elif "value" not in m:
            failures.append(f"{name}: {kind} without a value")
    if names != sorted(names):
        failures.append("metrics are not sorted by name")
    for required in REQUIRED_METRICS:
        if required not in names:
            failures.append(f"required metric missing: {required}")
    if failures:
        print("stats schema check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"stats schema check OK ({len(names)} metrics)")
    return 0


def check_trace(path):
    with open(path) as f:
        data = json.load(f)
    failures = []
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise SystemExit(f"{path}: no 'traceEvents' array")
    seen = set()
    for e in events:
        name = e.get("name")
        if not name:
            failures.append(f"event without a name: {e}")
            continue
        seen.add(name)
        if e.get("ph") != "X":
            failures.append(f"{name}: phase {e.get('ph')!r} != 'X'")
        for key in ("ts", "dur", "pid", "tid"):
            if not isinstance(e.get(key), (int, float)):
                failures.append(f"{name}: missing/non-numeric {key!r}")
        args = e.get("args", {})
        if "id" not in args or "parent" not in args:
            failures.append(f"{name}: args without span id/parent")
    for required in REQUIRED_SPANS:
        if required not in seen:
            failures.append(
                f"required span missing: {required} (traced count too "
                f"trivial? the smoke DB must be dense enough to reach the "
                f"DLM sampling phase)")
    if data.get("droppedEvents", 0) != 0:
        failures.append(
            f"trace dropped {data['droppedEvents']} events (buffer too "
            f"small for the smoke workload)")
    if failures:
        print("trace schema check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"trace schema check OK ({len(events)} events, "
          f"{len(seen)} distinct spans)")
    return 0


def check_count_json(path):
    with open(path) as f:
        data = json.load(f)
    failures = []
    for key in ("estimate", "exact", "converged", "partial", "lower_bound",
                "upper_bound", "partial_reason", "strategy", "kind",
                "verdict", "oracle_calls", "num_components", "components",
                "profile"):
        if key not in data:
            failures.append(f"missing top-level key {key!r}")
    # The anytime contract: non-partial results have a degenerate interval
    # [estimate, estimate]; partial results need a non-empty reason and an
    # interval actually containing the estimate.
    if data.get("partial"):
        if not data.get("partial_reason"):
            failures.append("partial result without a partial_reason")
        lo, hi = data.get("lower_bound"), data.get("upper_bound")
        est = data.get("estimate")
        if not (isinstance(lo, (int, float)) and isinstance(hi, (int, float))
                and lo <= est <= hi):
            failures.append(
                f"partial bounds [{lo}, {hi}] do not contain the estimate "
                f"{est}")
    components = data.get("components", [])
    if not components:
        failures.append("empty 'components' array")
    for i, c in enumerate(components):
        for key in ("estimate", "exact", "strategy", "shape_key", "verdict",
                    "partial", "lower_bound", "upper_bound",
                    "completed_runs", "total_runs",
                    "plan_cache_hit", "oracle_calls", "exec_ms"):
            if key not in c:
                failures.append(f"component {i}: missing {key!r}")
    profile = data.get("profile", {})
    phases = profile.get("phases", {})
    for key in ("parse_ms", "compile_ms", "plan_ms", "execute_ms"):
        if key not in phases:
            failures.append(f"profile.phases: missing {key!r}")
    for key in ("plan_cache_hits", "plan_cache_misses", "oracle_calls",
                "lanes", "components"):
        if key not in profile:
            failures.append(f"profile: missing {key!r}")
    if failures:
        print("count --json schema check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"count --json schema check OK ({len(components)} components)")
    return 0


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "stats":
        return check_stats(sys.argv[2])
    if len(sys.argv) == 3 and sys.argv[1] == "trace":
        return check_trace(sys.argv[2])
    if len(sys.argv) == 3 and sys.argv[1] == "count-json":
        return check_count_json(sys.argv[2])
    if len(sys.argv) == 3:
        return check_baseline(sys.argv[1], sys.argv[2])
    raise SystemExit(__doc__)


if __name__ == "__main__":
    sys.exit(main())
