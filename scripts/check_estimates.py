#!/usr/bin/env python3
"""Asserts that bench-emitted estimates match the checked-in baselines.

Usage: check_estimates.py <fresh.json> <baseline.json>

Perf PRs are free to change timings, but the `estimates` section of
BENCH_fptras.json is produced at FIXED sizes and seeds in every mode
(including CQCOUNT_BENCH_SMOKE), so any drift there means the refactor
changed answers, not just speed. CI fails the build in that case.
"""
import json
import sys


def load_estimates(path):
    with open(path) as f:
        data = json.load(f)
    estimates = data.get("estimates")
    if not estimates:
        raise SystemExit(f"{path}: no 'estimates' section")
    return {e["name"]: e for e in estimates}


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    fresh = load_estimates(sys.argv[1])
    baseline = load_estimates(sys.argv[2])
    failures = []
    for name, base in sorted(baseline.items()):
        got = fresh.get(name)
        if got is None:
            failures.append(f"{name}: missing from fresh output")
            continue
        for key in ("universe", "seed", "epsilon", "delta"):
            if got.get(key) != base.get(key):
                failures.append(
                    f"{name}: config drift on {key!r}: "
                    f"{got.get(key)} != {base.get(key)}")
        if got.get("estimate") != base.get("estimate"):
            failures.append(
                f"{name}: estimate {got.get('estimate')} != baseline "
                f"{base.get('estimate')} (fixed seed: must be bit-identical)")
        # The determinism contract: the multi-threaded (4 intra-query
        # lanes) rerun of each workload must match the single-threaded
        # baseline bit for bit.
        if "estimate_mt" in got and got["estimate_mt"] != base.get("estimate"):
            failures.append(
                f"{name}: multi-threaded estimate {got['estimate_mt']} != "
                f"single-threaded baseline {base.get('estimate')} "
                f"(intra-query parallelism must be bit-identical)")
        if got.get("exact") != base.get("exact"):
            failures.append(
                f"{name}: exact flag {got.get('exact')} != "
                f"{base.get('exact')}")
    if failures:
        print("estimate baseline check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"estimate baseline check OK ({len(baseline)} workloads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
