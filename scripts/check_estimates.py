#!/usr/bin/env python3
"""Validates bench/telemetry JSON emitted by the cqcount binaries.

Usage:
  check_estimates.py <fresh.json> <baseline.json>   baseline estimate check
  check_estimates.py stats <stats.json> [other.json]
                                                    `cli stats` schema check;
                                                    with a second dump, a
                                                    determinism comparison
                                                    (nondet-prefixed metrics
                                                    excluded)
  check_estimates.py trace <trace.json>             Chrome-trace schema check
  check_estimates.py count-json <result.json>       `cli count --json` check
  check_estimates.py scheduler <BENCH_scheduler.json>
                                                    adaptive-scheduler bench
                                                    schema + reduction check
  check_estimates.py storage <BENCH_storage.json>   segment-storage bench
                                                    schema check + backend/
                                                    kernel estimate parity

Baseline mode: perf PRs are free to change timings, but the `estimates`
section of BENCH_fptras.json is produced at FIXED sizes and seeds in
every mode (including CQCOUNT_BENCH_SMOKE), so any drift there means the
refactor changed answers, not just speed. CI fails the build in that
case.

The telemetry modes validate the observability surface added with the
obs/ subsystem: the metric registry dump, the Chrome trace_event export,
and the machine-readable count result with its embedded QueryProfile.
"""
import json
import sys

# Metric families every `stats` dump must contain (eagerly registered at
# load, so they appear even on code paths the process never executed).
REQUIRED_METRICS = (
    "engine.counts",
    "plan_cache.hits",
    "plan_cache.misses",
    "plan_cache.evictions",
    "executor.tasks_submitted",
    "executor.queue_depth",
    "dlm.estimates",
    "dlm.oracle_calls",
    "dlm.abandoned_waves",
    "dlm.early_stops",
    "dp.prepared_decides",
    "cc.nondet.hom_queries",
    "acjr.membership_tests",
    "sampler.samples",
    "scheduler.profile_predictions",
    "scheduler.plan_predictions",
    "scheduler.budget_splits",
    "scheduler.early_stops",
    "scheduler.runs_saved",
    "storage.segment_opens",
    "storage.zone_probes",
    "storage.zone_prunes",
)

# Metrics with this name segment are documented scheduling-dependent WORK
# counters (e.g. cc.nondet.hom_queries: parallel trial loops exit early).
# Determinism-sensitive assertions must skip them.
NONDET_SEGMENT = ".nondet."

# Typed stop reasons an estimator execution may report (util/
# estimate_outcome.h StopReasonName). "none" covers exact strategies with
# no run structure.
STOP_REASONS = (
    "none",
    "full_schedule",
    "confidence",
    "hard_bounds",
    "budget_exhausted",
    "cancelled",
    "deadline_expired",
)

# Span names a traced non-trivial count must produce. dlm.run/dlm.round
# only appear when the instance reaches the sampling phase, so the CI
# smoke database is deliberately dense enough to get there.
REQUIRED_SPANS = (
    "engine.count",
    "engine.parse",
    "engine.compile",
    "compile.normalize",
    "pass.dedup_and_guards",
    "engine.plan",
    "engine.execute",
    "component.execute",
    "fptras.dlm",
    "dlm.run",
    "dlm.round",
)

VALID_KINDS = ("counter", "gauge", "histogram")


def load_estimates(path):
    with open(path) as f:
        data = json.load(f)
    estimates = data.get("estimates")
    if not estimates:
        raise SystemExit(f"{path}: no 'estimates' section")
    return {e["name"]: e for e in estimates}


def check_baseline(fresh_path, baseline_path):
    fresh = load_estimates(fresh_path)
    baseline = load_estimates(baseline_path)
    failures = []
    for name, base in sorted(baseline.items()):
        got = fresh.get(name)
        if got is None:
            failures.append(f"{name}: missing from fresh output")
            continue
        for key in ("universe", "seed", "epsilon", "delta"):
            if got.get(key) != base.get(key):
                failures.append(
                    f"{name}: config drift on {key!r}: "
                    f"{got.get(key)} != {base.get(key)}")
        if got.get("estimate") != base.get("estimate"):
            failures.append(
                f"{name}: estimate {got.get('estimate')} != baseline "
                f"{base.get('estimate')} (fixed seed: must be bit-identical)")
        # The determinism contract: the multi-threaded (4 intra-query
        # lanes) rerun of each workload must match the single-threaded
        # baseline bit for bit.
        if "estimate_mt" in got and got["estimate_mt"] != base.get("estimate"):
            failures.append(
                f"{name}: multi-threaded estimate {got['estimate_mt']} != "
                f"single-threaded baseline {base.get('estimate')} "
                f"(intra-query parallelism must be bit-identical)")
        if got.get("exact") != base.get("exact"):
            failures.append(
                f"{name}: exact flag {got.get('exact')} != "
                f"{base.get('exact')}")
    if failures:
        print("estimate baseline check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"estimate baseline check OK ({len(baseline)} workloads)")
    return 0


def load_stats(path):
    with open(path) as f:
        data = json.load(f)
    metrics = data.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        raise SystemExit(f"{path}: no 'metrics' array")
    return metrics


def check_stats(path, other_path=None):
    metrics = load_stats(path)
    failures = []
    names = []
    for m in metrics:
        name = m.get("name")
        if not name:
            failures.append(f"metric without a name: {m}")
            continue
        names.append(name)
        kind = m.get("kind")
        if kind not in VALID_KINDS:
            failures.append(f"{name}: bad kind {kind!r}")
        if not m.get("description"):
            failures.append(f"{name}: missing description")
        if kind == "histogram":
            if "count" not in m or "sum" not in m:
                failures.append(f"{name}: histogram without count/sum")
            for bucket in m.get("buckets", []):
                if "le" not in bucket or "count" not in bucket:
                    failures.append(f"{name}: malformed bucket {bucket}")
        elif "value" not in m:
            failures.append(f"{name}: {kind} without a value")
    if names != sorted(names):
        failures.append("metrics are not sorted by name")
    for required in REQUIRED_METRICS:
        if required not in names:
            failures.append(f"required metric missing: {required}")
    if other_path is not None:
        # Determinism comparison: two dumps from identically-configured
        # fixed-seed runs must agree on every WORK counter — except the
        # `.nondet.`-marked families, whose totals legitimately vary with
        # thread scheduling (e.g. parallel colour-coding trial loops race
        # to the success threshold). Timing-valued metrics (histograms,
        # gauges) are excluded wholesale: they measure clocks and queue
        # depths, not work.
        other = {m.get("name"): m for m in load_stats(other_path)}
        for m in metrics:
            name = m.get("name")
            if not name or m.get("kind") != "counter":
                continue
            if NONDET_SEGMENT in name:
                continue
            peer = other.get(name)
            if peer is None:
                failures.append(f"{name}: missing from {other_path}")
            elif m.get("value") != peer.get("value"):
                failures.append(
                    f"{name}: counter value {m.get('value')} != "
                    f"{peer.get('value')} across fixed-seed runs (only "
                    f"'{NONDET_SEGMENT}'-marked metrics may differ)")
    if failures:
        print("stats schema check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    suffix = " + determinism vs peer dump" if other_path else ""
    print(f"stats schema check OK ({len(names)} metrics{suffix})")
    return 0


def check_trace(path):
    with open(path) as f:
        data = json.load(f)
    failures = []
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise SystemExit(f"{path}: no 'traceEvents' array")
    seen = set()
    for e in events:
        name = e.get("name")
        if not name:
            failures.append(f"event without a name: {e}")
            continue
        seen.add(name)
        if e.get("ph") != "X":
            failures.append(f"{name}: phase {e.get('ph')!r} != 'X'")
        for key in ("ts", "dur", "pid", "tid"):
            if not isinstance(e.get(key), (int, float)):
                failures.append(f"{name}: missing/non-numeric {key!r}")
        args = e.get("args", {})
        if "id" not in args or "parent" not in args:
            failures.append(f"{name}: args without span id/parent")
    for required in REQUIRED_SPANS:
        if required not in seen:
            failures.append(
                f"required span missing: {required} (traced count too "
                f"trivial? the smoke DB must be dense enough to reach the "
                f"DLM sampling phase)")
    if data.get("droppedEvents", 0) != 0:
        failures.append(
            f"trace dropped {data['droppedEvents']} events (buffer too "
            f"small for the smoke workload)")
    if failures:
        print("trace schema check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"trace schema check OK ({len(events)} events, "
          f"{len(seen)} distinct spans)")
    return 0


def check_count_json(path):
    with open(path) as f:
        data = json.load(f)
    failures = []
    for key in ("estimate", "exact", "converged", "partial", "lower_bound",
                "upper_bound", "partial_reason", "adaptive", "strategy",
                "kind", "verdict", "oracle_calls", "num_components",
                "components", "profile"):
        if key not in data:
            failures.append(f"missing top-level key {key!r}")
    # The anytime contract: non-partial results have a degenerate interval
    # [estimate, estimate]; partial results need a non-empty reason and an
    # interval actually containing the estimate.
    if data.get("partial"):
        if not data.get("partial_reason"):
            failures.append("partial result without a partial_reason")
        lo, hi = data.get("lower_bound"), data.get("upper_bound")
        est = data.get("estimate")
        if not (isinstance(lo, (int, float)) and isinstance(hi, (int, float))
                and lo <= est <= hi):
            failures.append(
                f"partial bounds [{lo}, {hi}] do not contain the estimate "
                f"{est}")
    components = data.get("components", [])
    if not components:
        failures.append("empty 'components' array")
    for i, c in enumerate(components):
        for key in ("estimate", "exact", "strategy", "shape_key", "verdict",
                    "partial", "lower_bound", "upper_bound", "stop_reason",
                    "rounds_executed", "completed_runs", "total_runs",
                    "plan_cache_hit", "oracle_calls", "estimator_calls",
                    "exec_ms"):
            if key not in c:
                failures.append(f"component {i}: missing {key!r}")
        if "stop_reason" in c and c["stop_reason"] not in STOP_REASONS:
            failures.append(
                f"component {i}: stop_reason {c['stop_reason']!r} not in "
                f"{STOP_REASONS}")
    profile = data.get("profile", {})
    phases = profile.get("phases", {})
    for key in ("parse_ms", "compile_ms", "plan_ms", "execute_ms"):
        if key not in phases:
            failures.append(f"profile.phases: missing {key!r}")
    for key in ("plan_cache_hits", "plan_cache_misses", "oracle_calls",
                "lanes", "components"):
        if key not in profile:
            failures.append(f"profile: missing {key!r}")
    if failures:
        print("count --json schema check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"count --json schema check OK ({len(components)} components)")
    return 0


def check_scheduler(path):
    """Validates BENCH_scheduler.json: the adaptive-scheduler A/B bench.

    Each workload entry carries an adaptive-off arm (the PR 7 baseline
    behaviour: full run schedule, even eps split) and an adaptive-on arm
    (cost-model budgets + CLT early stop). The schema check asserts the
    typed stop reasons and that adaptivity never *increases* oracle work
    on these workloads; the accuracy side is covered by the `estimates`
    section, which feeds the ordinary baseline mode.
    """
    with open(path) as f:
        data = json.load(f)
    failures = []
    if not data.get("estimates"):
        failures.append("no 'estimates' section (baseline mode needs the "
                        "adaptive-off estimates to pin against PR 7)")
    workloads = data.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise SystemExit(f"{path}: no 'workloads' array")
    arm_keys = ("estimate", "oracle_calls", "estimator_calls", "millis",
                "stop_reason", "completed_runs", "total_runs")
    for w in workloads:
        name = w.get("name", "<unnamed>")
        for key in ("name", "universe", "seed", "epsilon", "delta",
                    "adaptive_off", "adaptive_on", "oracle_call_reduction"):
            if key not in w:
                failures.append(f"{name}: missing {key!r}")
        for arm_name in ("adaptive_off", "adaptive_on"):
            arm = w.get(arm_name, {})
            for key in arm_keys:
                if key not in arm:
                    failures.append(f"{name}.{arm_name}: missing {key!r}")
            reason = arm.get("stop_reason")
            if reason is not None and reason not in STOP_REASONS:
                failures.append(
                    f"{name}.{arm_name}: stop_reason {reason!r} not in "
                    f"{STOP_REASONS}")
        off_reason = w.get("adaptive_off", {}).get("stop_reason")
        if off_reason in ("confidence", "hard_bounds"):
            failures.append(
                f"{name}: adaptive_off arm reports early-stop reason "
                f"{off_reason!r} — early termination must be opt-in")
        reduction = w.get("oracle_call_reduction")
        if isinstance(reduction, (int, float)):
            if reduction < 1.0:
                failures.append(
                    f"{name}: oracle_call_reduction {reduction} < 1.0 "
                    f"(adaptive scheduling made the workload MORE "
                    f"expensive)")
        elif reduction is not None:
            failures.append(
                f"{name}: non-numeric oracle_call_reduction {reduction!r}")
    if failures:
        print("scheduler bench schema check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    reductions = [w["oracle_call_reduction"] for w in workloads]
    print(f"scheduler bench schema check OK ({len(workloads)} workloads, "
          f"oracle-call reduction "
          f"{min(reductions):.2f}x..{max(reductions):.2f}x)")
    return 0


def check_storage(path):
    """Validates BENCH_storage.json: the out-of-core segment bench.

    Schema checks always run. The parity invariant — fixed-seed estimates
    bitwise-equal across the in-memory backend, the mmap'd segment
    backend, and the scalar kernel fallback — always runs too, in every
    mode. The perf floors (10^8-tuple sweep entry, sub-millisecond O(1)
    open, >= 2x SIMD speedup on the contiguous scan and the semijoin
    probe at 200k+ rows) apply only to non-smoke recordings: smoke sizes
    are too small to measure and are flagged in the JSON.
    """
    with open(path) as f:
        data = json.load(f)
    failures = []
    if not isinstance(data.get("hardware_threads"), int):
        failures.append("missing/non-integer 'hardware_threads'")
    smoke = data.get("smoke")
    if not isinstance(smoke, bool):
        failures.append("missing/non-boolean 'smoke'")
        smoke = True
    sweep = data.get("open_sweep")
    if not isinstance(sweep, list) or not sweep:
        raise SystemExit(f"{path}: no 'open_sweep' array")
    for e in sweep:
        for key in ("rows", "file_bytes", "pack_ms", "open_us",
                    "inmemory_register_ms"):
            if not isinstance(e.get(key), (int, float)):
                failures.append(f"open_sweep: missing/non-numeric {key!r}")
    if not smoke:
        largest = max(sweep, key=lambda e: e.get("rows", 0))
        if largest.get("rows", 0) < 10**8:
            failures.append(
                f"open_sweep tops out at {largest.get('rows')} rows "
                f"(the recorded artifact must include a 10^8-tuple "
                f"database)")
        if largest.get("open_us", 0) >= 1000.0:
            failures.append(
                f"largest open_us {largest.get('open_us')} >= 1000 "
                f"(segment open must stay O(1): sub-millisecond even at "
                f"10^8 tuples)")
    kernels = data.get("kernels")
    if not isinstance(kernels, list) or not kernels:
        raise SystemExit(f"{path}: no 'kernels' array")
    floored = ("linear_lower_bound_stride1", "linear_lower_bound_stride2",
               "probe_stamps_block")
    for e in kernels:
        for key in ("kernel", "rows", "scalar_ms", "simd_ms", "speedup"):
            if key not in e:
                failures.append(f"kernels: missing {key!r} in {e}")
        if (not smoke and e.get("kernel") in floored
                and e.get("rows", 0) >= 200000
                and isinstance(e.get("speedup"), (int, float))
                and e["speedup"] < 2.0):
            failures.append(
                f"kernel {e['kernel']} at {e['rows']} rows: speedup "
                f"{e['speedup']} < 2.0x (SIMD acceptance floor)")
    estimates = data.get("estimates")
    if not isinstance(estimates, list) or not estimates:
        raise SystemExit(f"{path}: no 'estimates' array")
    for e in estimates:
        name = e.get("name", "<unnamed>")
        for key in ("name", "universe", "seed", "epsilon", "delta",
                    "estimate", "estimate_segment", "estimate_scalar",
                    "exact", "oracle_calls"):
            if key not in e:
                failures.append(f"{name}: missing {key!r}")
        if e.get("estimate_segment") != e.get("estimate"):
            failures.append(
                f"{name}: segment estimate {e.get('estimate_segment')} != "
                f"in-memory {e.get('estimate')} (backends must be "
                f"bit-identical)")
        if e.get("estimate_scalar") != e.get("estimate"):
            failures.append(
                f"{name}: scalar-kernel estimate "
                f"{e.get('estimate_scalar')} != SIMD {e.get('estimate')} "
                f"(kernel levels must be bit-identical)")
    if failures:
        print("storage bench schema check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"storage bench schema check OK ({len(sweep)} sweep sizes, "
          f"{len(kernels)} kernel rows, {len(estimates)} parity "
          f"workloads{', smoke' if smoke else ''})")
    return 0


def main():
    if len(sys.argv) in (3, 4) and sys.argv[1] == "stats":
        return check_stats(sys.argv[2],
                           sys.argv[3] if len(sys.argv) == 4 else None)
    if len(sys.argv) == 3 and sys.argv[1] == "trace":
        return check_trace(sys.argv[2])
    if len(sys.argv) == 3 and sys.argv[1] == "count-json":
        return check_count_json(sys.argv[2])
    if len(sys.argv) == 3 and sys.argv[1] == "scheduler":
        return check_scheduler(sys.argv[2])
    if len(sys.argv) == 3 and sys.argv[1] == "storage":
        return check_storage(sys.argv[2])
    if len(sys.argv) == 3:
        return check_baseline(sys.argv[1], sys.argv[2])
    raise SystemExit(__doc__)


if __name__ == "__main__":
    sys.exit(main())
