#include "query/parser.h"

#include <cctype>
#include <map>
#include <numeric>
#include <sstream>
#include <vector>

namespace cqcount {
namespace {

struct Token {
  enum Kind { kIdent, kLParen, kRParen, kComma, kBang, kNeq, kEq, kTurnstile,
              kPeriod, kEnd } kind;
  std::string text;
  /// Byte offset of the token's first character in the query text.
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenise() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_' || text_[j] == '\'')) {
          ++j;
        }
        tokens.push_back({Token::kIdent, text_.substr(i, j - i), i});
        i = j;
        continue;
      }
      switch (c) {
        case '(':
          tokens.push_back({Token::kLParen, "(", i});
          ++i;
          break;
        case ')':
          tokens.push_back({Token::kRParen, ")", i});
          ++i;
          break;
        case ',':
          tokens.push_back({Token::kComma, ",", i});
          ++i;
          break;
        case '.':
          tokens.push_back({Token::kPeriod, ".", i});
          ++i;
          break;
        case '!':
          if (i + 1 < text_.size() && text_[i + 1] == '=') {
            tokens.push_back({Token::kNeq, "!=", i});
            i += 2;
          } else {
            tokens.push_back({Token::kBang, "!", i});
            ++i;
          }
          break;
        case '=':
          tokens.push_back({Token::kEq, "=", i});
          ++i;
          break;
        case ':':
          if (i + 1 < text_.size() && text_[i + 1] == '-') {
            tokens.push_back({Token::kTurnstile, ":-", i});
            i += 2;
          } else {
            std::ostringstream msg;
            msg << "expected ':-' at offset " << i;
            return Status::InvalidArgument(msg.str());
          }
          break;
        default: {
          std::ostringstream msg;
          msg << "unexpected character '" << c << "' at offset " << i;
          return Status::InvalidArgument(msg.str());
        }
      }
    }
    tokens.push_back({Token::kEnd, "", text_.size()});
    return tokens;
  }

 private:
  const std::string& text_;
};

// Raw parse results before equality elimination.
struct RawAtom {
  std::string relation;
  std::vector<std::string> vars;
  bool negated = false;
};
struct RawPair {
  std::string lhs, rhs;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Status Run() {
    // Head.
    if (!ConsumeIdent(&head_name_)) return Error("expected head predicate");
    if (!Consume(Token::kLParen)) return Error("expected '(' after head");
    if (!Check(Token::kRParen)) {
      for (;;) {
        std::string var;
        if (!ConsumeIdent(&var)) return Error("expected head variable");
        head_vars_.push_back(var);
        if (Consume(Token::kComma)) continue;
        break;
      }
    }
    if (!Consume(Token::kRParen)) return Error("expected ')' after head");
    if (!Consume(Token::kTurnstile)) return Error("expected ':-'");

    // Body: comma-separated atoms.
    for (;;) {
      Status s = ParseBodyAtom();
      if (!s.ok()) return s;
      if (Consume(Token::kComma)) continue;
      break;
    }
    Consume(Token::kPeriod);  // Optional trailing period.
    if (!Check(Token::kEnd)) return Error("trailing input after query");
    return Status::Ok();
  }

  const std::vector<std::string>& head_vars() const { return head_vars_; }
  const std::vector<RawAtom>& atoms() const { return atoms_; }
  const std::vector<RawPair>& disequalities() const { return disequalities_; }
  const std::vector<RawPair>& equalities() const { return equalities_; }

 private:
  Status ParseBodyAtom() {
    bool negated = Consume(Token::kBang);
    std::string first;
    if (!ConsumeIdent(&first)) return Error("expected atom");
    if (Check(Token::kLParen)) {
      // Predicate.
      Consume(Token::kLParen);
      RawAtom atom;
      atom.relation = first;
      atom.negated = negated;
      // R() is a nullary atom: a boolean guard over the database.
      if (!Check(Token::kRParen)) {
        for (;;) {
          std::string var;
          if (!ConsumeIdent(&var)) return Error("expected predicate argument");
          atom.vars.push_back(var);
          if (Consume(Token::kComma)) continue;
          break;
        }
      }
      if (!Consume(Token::kRParen)) return Error("expected ')'");
      atoms_.push_back(std::move(atom));
      return Status::Ok();
    }
    if (negated) return Error("'!' must precede a predicate");
    if (Consume(Token::kNeq)) {
      std::string rhs;
      if (!ConsumeIdent(&rhs)) return Error("expected variable after '!='");
      disequalities_.push_back({first, rhs});
      return Status::Ok();
    }
    if (Consume(Token::kEq)) {
      std::string rhs;
      if (!ConsumeIdent(&rhs)) return Error("expected variable after '='");
      equalities_.push_back({first, rhs});
      return Status::Ok();
    }
    return Error("expected '(', '!=' or '=' after identifier");
  }

  bool Check(Token::Kind kind) const { return tokens_[pos_].kind == kind; }
  bool Consume(Token::Kind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }
  bool ConsumeIdent(std::string* out) {
    if (!Check(Token::kIdent)) return false;
    *out = tokens_[pos_].text;
    ++pos_;
    return true;
  }
  Status Error(const std::string& message) const {
    const Token& at = tokens_[pos_];
    std::ostringstream msg;
    msg << message << " at offset " << at.offset;
    if (at.kind == Token::kEnd) {
      msg << " (at end of input)";
    } else {
      msg << " (near '" << at.text << "')";
    }
    return Status::InvalidArgument(msg.str());
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::string head_name_;
  std::vector<std::string> head_vars_;
  std::vector<RawAtom> atoms_;
  std::vector<RawPair> disequalities_;
  std::vector<RawPair> equalities_;
};

// Union-find for equality elimination.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

StatusOr<Query> ParseQuery(const std::string& text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenise();
  if (!tokens.ok()) return tokens.status();
  Parser parser(*std::move(tokens));
  Status s = parser.Run();
  if (!s.ok()) return s;

  // Collect variable names: head variables first (they are free), then
  // body-only variables in order of appearance.
  std::map<std::string, int> index;
  std::vector<std::string> names;
  auto intern = [&](const std::string& name) {
    auto [it, inserted] = index.emplace(name, names.size());
    if (inserted) names.push_back(name);
    return it->second;
  };
  for (const std::string& v : parser.head_vars()) {
    if (index.count(v) > 0) {
      return Status::InvalidArgument("duplicate head variable: " + v);
    }
    intern(v);
  }
  const int raw_num_free = static_cast<int>(names.size());
  for (const RawAtom& atom : parser.atoms()) {
    for (const std::string& v : atom.vars) intern(v);
  }
  for (const RawPair& d : parser.disequalities()) {
    intern(d.lhs);
    intern(d.rhs);
  }
  for (const RawPair& e : parser.equalities()) {
    intern(e.lhs);
    intern(e.rhs);
  }
  const int raw_n = static_cast<int>(names.size());

  // Equality elimination: merge variables; a class containing any free
  // variable is represented by its smallest free member, otherwise by its
  // smallest member.
  UnionFind uf(raw_n);
  for (const RawPair& e : parser.equalities()) {
    uf.Union(index[e.lhs], index[e.rhs]);
  }
  std::vector<int> representative(raw_n, -1);
  for (int v = 0; v < raw_n; ++v) {
    const int root = uf.Find(v);
    if (representative[root] == -1 || v < representative[root]) {
      // Variables are numbered free-first, so the smallest member of a
      // class is free whenever the class contains a free variable.
      representative[root] = std::min(
          representative[root] == -1 ? v : representative[root], v);
    }
  }
  // Dense renumbering of representatives, free first.
  std::vector<int> dense(raw_n, -1);
  Query query;
  for (int v = 0; v < raw_n; ++v) {
    const int rep = representative[uf.Find(v)];
    if (rep == v) dense[v] = query.AddVariable(names[v]);
  }
  int num_free = 0;
  for (int v = 0; v < raw_num_free; ++v) {
    if (representative[uf.Find(v)] == v) ++num_free;
  }
  // Representatives were added in increasing raw order and free raw
  // variables come first, so free representatives occupy a prefix.
  query.SetNumFree(num_free);
  auto mapped = [&](const std::string& name) {
    return dense[representative[uf.Find(index[name])]];
  };

  for (const RawAtom& raw : parser.atoms()) {
    Atom atom;
    atom.relation = raw.relation;
    atom.negated = raw.negated;
    for (const std::string& v : raw.vars) atom.vars.push_back(mapped(v));
    query.AddAtom(std::move(atom));
  }
  for (const RawPair& d : parser.disequalities()) {
    const int a = mapped(d.lhs);
    const int b = mapped(d.rhs);
    if (a == b) {
      return Status::InvalidArgument(
          "contradictory query: x != x after equality elimination");
    }
    query.AddDisequality(a, b);
  }

  Status valid = query.Validate();
  if (!valid.ok()) return valid;
  return query;
}

}  // namespace cqcount
