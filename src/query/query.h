// Extended conjunctive queries (Section 1.1).
//
// An ECQ phi(x_1..x_l) = exists x_{l+1}.. : psi where psi is a conjunction
// of predicates R(y..), negated predicates !R(y..) and disequalities
// y_i != y_j. Variables are dense indices; the free (output) variables are
// exactly the indices [0, num_free). Equalities are assumed to have been
// eliminated by variable merging (the parser does this).
#ifndef CQCOUNT_QUERY_QUERY_H_
#define CQCOUNT_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "relational/structure.h"
#include "util/status.h"

namespace cqcount {

/// A (possibly negated) predicate atom R(y_1, .., y_j). Arity 0 is
/// allowed: a nullary atom R() is a boolean guard over the database (the
/// compile pipeline lifts these out before execution).
struct Atom {
  std::string relation;
  /// Variable indices, in predicate-argument order (repeats allowed; may
  /// be empty for nullary atoms).
  std::vector<int> vars;
  bool negated = false;
};

/// A disequality atom x_lhs != x_rhs with lhs < rhs.
struct Disequality {
  int lhs = 0;
  int rhs = 0;

  bool operator==(const Disequality&) const = default;
};

/// Syntactic class of a query (Section 1.1).
enum class QueryKind {
  kCq,   ///< Conjunctive query: predicates only.
  kDcq,  ///< CQ plus disequalities.
  kEcq,  ///< CQ plus disequalities and negated predicates.
};

/// An extended conjunctive query over named variables.
class Query {
 public:
  /// Adds a variable and returns its index. Free variables must be added
  /// first (indices [0, num_free)); call SetNumFree afterwards.
  int AddVariable(const std::string& name);

  /// Declares that the first `num_free` variables are the free variables.
  void SetNumFree(int num_free) { num_free_ = num_free; }

  /// Adds a (possibly negated) predicate atom.
  void AddAtom(Atom atom) { atoms_.push_back(std::move(atom)); }

  /// Adds the disequality x_a != x_b (order-normalised; duplicates and
  /// trivial a == b pairs are ignored).
  void AddDisequality(int a, int b);

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  int num_free() const { return num_free_; }
  int num_existential() const { return num_vars() - num_free_; }

  const std::string& var_name(int v) const { return var_names_[v]; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<Disequality>& disequalities() const {
    return disequalities_;
  }

  /// Number of negated predicates (the paper's nu).
  int NumNegatedAtoms() const;

  /// The query's syntactic class.
  QueryKind Kind() const;

  /// ||phi||: |vars(phi)| plus the sum of the arities of all atoms
  /// (predicates, negated predicates, and disequalities at arity 2).
  uint64_t PhiSize() const;

  /// The query hypergraph H(phi) of Definition 3: one vertex per variable,
  /// one hyperedge per predicate and per negated predicate. Disequalities
  /// contribute NO hyperedges.
  Hypergraph BuildHypergraph() const;

  /// Signature sanity: every variable occurs in at least one atom
  /// (predicate, negated predicate, or disequality), arities are
  /// consistent across atoms, free count is in range.
  Status Validate() const;

  /// Checks that `db` declares every relation symbol of the query with a
  /// matching arity (sig(phi) subseteq sig(D)).
  Status CheckAgainstDatabase(const Database& db) const;

  /// Renders the query in parser syntax.
  std::string ToString() const;

 private:
  std::vector<std::string> var_names_;
  int num_free_ = 0;
  std::vector<Atom> atoms_;
  std::vector<Disequality> disequalities_;
};

}  // namespace cqcount

#endif  // CQCOUNT_QUERY_QUERY_H_
