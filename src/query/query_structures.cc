#include "query/query_structures.h"

#include <cassert>
#include <cmath>
#include <functional>
#include <set>

namespace cqcount {

std::string NegatedRelationName(const std::string& relation) {
  return "~" + relation;
}

Structure BuildStructureA(const Query& q) {
  Structure a(static_cast<uint32_t>(q.num_vars()));
  for (const Atom& atom : q.atoms()) {
    const std::string name =
        atom.negated ? NegatedRelationName(atom.relation) : atom.relation;
    Status s = a.DeclareRelation(name, static_cast<int>(atom.vars.size()));
    assert(s.ok());
    Tuple t;
    t.reserve(atom.vars.size());
    for (int v : atom.vars) t.push_back(static_cast<Value>(v));
    s = a.AddFact(name, std::move(t));
    assert(s.ok());
    (void)s;
  }
  a.Canonicalize();
  return a;
}

StatusOr<Structure> BuildStructureB(const Query& q, const Database& db,
                                    uint64_t max_complement_tuples) {
  Structure b(db.universe_size());
  const uint64_t n = db.universe_size();
  for (const Atom& atom : q.atoms()) {
    const int arity = static_cast<int>(atom.vars.size());
    if (!atom.negated) {
      Status s = b.DeclareRelation(atom.relation, arity);
      if (!s.ok()) return s;
      if (b.relation(atom.relation).empty()) {
        for (TupleView t : db.relation(atom.relation)) {
          s = b.AddFact(atom.relation, MaterializeTuple(t));
          if (!s.ok()) return s;
        }
      }
      continue;
    }
    // Complement relation ~R = U(D)^arity \ R^D.
    const std::string name = NegatedRelationName(atom.relation);
    if (b.HasRelation(name)) continue;
    uint64_t total = 1;
    for (int i = 0; i < arity; ++i) {
      total *= n;
      if (total > max_complement_tuples) {
        return Status::ResourceExhausted(
            "complement relation too large to materialise: " + name);
      }
    }
    Status s = b.DeclareRelation(name, arity);
    if (!s.ok()) return s;
    const Relation& pos = db.relation(atom.relation);
    Tuple t(arity, 0);
    std::function<Status(int)> enumerate = [&](int pos_idx) -> Status {
      if (pos_idx == arity) {
        if (!pos.Contains(t)) return b.AddFact(name, t);
        return Status::Ok();
      }
      for (Value v = 0; v < n; ++v) {
        t[pos_idx] = v;
        Status st = enumerate(pos_idx + 1);
        if (!st.ok()) return st;
      }
      return Status::Ok();
    };
    s = enumerate(0);
    if (!s.ok()) return s;
  }
  b.Canonicalize();
  return b;
}

Structure BuildStructureAHat(const Query& q) {
  Structure a_hat = BuildStructureA(q);
  for (int v = 0; v < q.num_vars(); ++v) {
    const std::string name = "P_" + std::to_string(v);
    Status s = a_hat.DeclareRelation(name, 1);
    assert(s.ok());
    s = a_hat.AddFact(name, {static_cast<Value>(v)});
    assert(s.ok());
    (void)s;
  }
  for (size_t k = 0; k < q.disequalities().size(); ++k) {
    const Disequality& d = q.disequalities()[k];
    const std::string red = "Rneq_" + std::to_string(k);
    const std::string blue = "Bneq_" + std::to_string(k);
    Status s = a_hat.DeclareRelation(red, 1);
    assert(s.ok());
    s = a_hat.AddFact(red, {static_cast<Value>(d.lhs)});
    assert(s.ok());
    s = a_hat.DeclareRelation(blue, 1);
    assert(s.ok());
    s = a_hat.AddFact(blue, {static_cast<Value>(d.rhs)});
    assert(s.ok());
    (void)s;
  }
  a_hat.Canonicalize();
  return a_hat;
}

StatusOr<Structure> BuildStructureBHat(const Query& q, const Database& db,
                                       const PartiteParts& parts,
                                       const ColouringFamily& colouring,
                                       uint64_t max_tuples) {
  const uint32_t n = db.universe_size();
  const int num_vars = q.num_vars();
  const int num_free = q.num_free();
  assert(static_cast<int>(parts.size()) == num_free);
  assert(colouring.size() == q.disequalities().size());

  // Membership of (value w, position i) in S_i.
  auto in_s = [&](Value w, int i) {
    if (i < num_free) return parts[i].Test(w);
    return true;  // Existential positions use all of U(D).
  };
  auto encode = [&](Value w, int i) {
    return static_cast<Value>(static_cast<uint64_t>(i) * n + w);
  };

  Structure b_hat(static_cast<uint32_t>(static_cast<uint64_t>(num_vars) * n));

  // Base relations, position-annotated (Definition 28, second bullet).
  auto b_or = BuildStructureB(q, db, max_tuples);
  if (!b_or.ok()) return b_or.status();
  const Structure& b = *b_or;
  uint64_t emitted = 0;
  for (const std::string& name : b.RelationNames()) {
    const Relation& rel = b.relation(name);
    const int arity = rel.arity();
    Status s = b_hat.DeclareRelation(name, arity);
    if (!s.ok()) return s;
    // For each base tuple, all annotations (i_1..i_a) with every component
    // in U(B-hat).
    std::vector<int> positions(arity, 0);
    for (TupleView view : rel) {
      const Tuple t = MaterializeTuple(view);
      std::function<Status(int)> annotate = [&](int idx) -> Status {
        if (idx == arity) {
          Tuple annotated(arity);
          for (int j = 0; j < arity; ++j) {
            annotated[j] = encode(t[j], positions[j]);
          }
          if (++emitted > max_tuples) {
            return Status::ResourceExhausted("B-hat too large to materialise");
          }
          return b_hat.AddFact(name, std::move(annotated));
        }
        for (int i = 0; i < num_vars; ++i) {
          if (!in_s(t[idx], i)) continue;
          positions[idx] = i;
          Status st = annotate(idx + 1);
          if (!st.ok()) return st;
        }
        return Status::Ok();
      };
      Status st = annotate(0);
      if (!st.ok()) return st;
    }
  }

  // Unary position relations P_i = S_i.
  for (int i = 0; i < num_vars; ++i) {
    const std::string name = "P_" + std::to_string(i);
    Status s = b_hat.DeclareRelation(name, 1);
    if (!s.ok()) return s;
    for (Value w = 0; w < n; ++w) {
      if (!in_s(w, i)) continue;
      s = b_hat.AddFact(name, {encode(w, i)});
      if (!s.ok()) return s;
    }
  }

  // Colour relations over all of U(B-hat) (Definition 28, last bullet).
  for (size_t k = 0; k < colouring.size(); ++k) {
    const std::string red = "Rneq_" + std::to_string(k);
    const std::string blue = "Bneq_" + std::to_string(k);
    Status s = b_hat.DeclareRelation(red, 1);
    if (!s.ok()) return s;
    s = b_hat.DeclareRelation(blue, 1);
    if (!s.ok()) return s;
    assert(colouring[k].size() == n);
    for (int i = 0; i < num_vars; ++i) {
      for (Value w = 0; w < n; ++w) {
        if (!in_s(w, i)) continue;
        s = b_hat.AddFact(colouring[k].Test(w) ? red : blue, {encode(w, i)});
        if (!s.ok()) return s;
      }
    }
  }
  b_hat.Canonicalize();
  return b_hat;
}

Query CanonicalQuery(const Structure& a) {
  Query q;
  for (uint32_t v = 0; v < a.universe_size(); ++v) {
    q.AddVariable("u" + std::to_string(v));
  }
  q.SetNumFree(static_cast<int>(a.universe_size()));
  for (const std::string& name : a.RelationNames()) {
    for (TupleView t : a.relation(name)) {
      Atom atom;
      atom.relation = name;
      for (Value v : t) atom.vars.push_back(static_cast<int>(v));
      q.AddAtom(std::move(atom));
    }
  }
  return q;
}

}  // namespace cqcount
