// Text parser for extended conjunctive queries.
//
// Syntax (Datalog-ish):
//   ans(x, y) :- R(x, z), S(z, y), !T(x, y), x != y.
// The head lists the free variables; every other variable is existential.
// Equalities ("x = y") are eliminated by merging variables, as the paper
// assumes (Section 1.1).
#ifndef CQCOUNT_QUERY_PARSER_H_
#define CQCOUNT_QUERY_PARSER_H_

#include <string>

#include "query/query.h"
#include "util/status.h"

namespace cqcount {

/// Parses an ECQ; the result is validated (Query::Validate).
StatusOr<Query> ParseQuery(const std::string& text);

}  // namespace cqcount

#endif  // CQCOUNT_QUERY_PARSER_H_
