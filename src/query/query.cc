#include "query/query.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace cqcount {

int Query::AddVariable(const std::string& name) {
  var_names_.push_back(name);
  return static_cast<int>(var_names_.size()) - 1;
}

void Query::AddDisequality(int a, int b) {
  if (a == b) return;
  Disequality d{std::min(a, b), std::max(a, b)};
  if (std::find(disequalities_.begin(), disequalities_.end(), d) ==
      disequalities_.end()) {
    disequalities_.push_back(d);
  }
}

int Query::NumNegatedAtoms() const {
  int count = 0;
  for (const Atom& atom : atoms_) {
    if (atom.negated) ++count;
  }
  return count;
}

QueryKind Query::Kind() const {
  if (NumNegatedAtoms() > 0) return QueryKind::kEcq;
  if (!disequalities_.empty()) return QueryKind::kDcq;
  return QueryKind::kCq;
}

uint64_t Query::PhiSize() const {
  uint64_t size = num_vars();
  for (const Atom& atom : atoms_) size += atom.vars.size();
  size += 2 * disequalities_.size();
  return size;
}

Hypergraph Query::BuildHypergraph() const {
  Hypergraph h(num_vars());
  for (const Atom& atom : atoms_) {
    std::vector<Vertex> edge(atom.vars.begin(), atom.vars.end());
    h.AddEdge(std::move(edge));
  }
  return h;
}

Status Query::Validate() const {
  if (num_free_ < 0 || num_free_ > num_vars()) {
    return Status::InvalidArgument("free variable count out of range");
  }
  std::vector<bool> used(num_vars(), false);
  std::map<std::string, size_t> arities;
  for (const Atom& atom : atoms_) {
    auto [it, inserted] = arities.emplace(atom.relation, atom.vars.size());
    if (!inserted && it->second != atom.vars.size()) {
      return Status::InvalidArgument("inconsistent arity for relation " +
                                     atom.relation);
    }
    for (int v : atom.vars) {
      if (v < 0 || v >= num_vars()) {
        return Status::InvalidArgument("atom variable out of range");
      }
      used[v] = true;
    }
  }
  for (const Disequality& d : disequalities_) {
    if (d.lhs < 0 || d.rhs >= num_vars() || d.lhs >= d.rhs) {
      return Status::InvalidArgument("malformed disequality");
    }
    used[d.lhs] = used[d.rhs] = true;
  }
  for (int v = 0; v < num_vars(); ++v) {
    if (!used[v]) {
      return Status::InvalidArgument("variable not used in any atom: " +
                                     var_names_[v]);
    }
  }
  return Status::Ok();
}

Status Query::CheckAgainstDatabase(const Database& db) const {
  if (!db.IsCanonical()) {
    return Status::InvalidArgument(
        "database has staged facts; call Database::Canonicalize() after the "
        "last AddFact");
  }
  for (const Atom& atom : atoms_) {
    const int arity = db.Arity(atom.relation);
    if (arity < 0) {
      return Status::InvalidArgument("database missing relation " +
                                     atom.relation);
    }
    if (arity != static_cast<int>(atom.vars.size())) {
      return Status::InvalidArgument("database arity mismatch for " +
                                     atom.relation);
    }
  }
  return Status::Ok();
}

std::string Query::ToString() const {
  std::ostringstream out;
  out << "ans(";
  for (int v = 0; v < num_free_; ++v) {
    if (v > 0) out << ", ";
    out << var_names_[v];
  }
  out << ") :- ";
  bool first = true;
  for (const Atom& atom : atoms_) {
    if (!first) out << ", ";
    first = false;
    if (atom.negated) out << "!";
    out << atom.relation << "(";
    for (size_t i = 0; i < atom.vars.size(); ++i) {
      if (i > 0) out << ", ";
      out << var_names_[atom.vars[i]];
    }
    out << ")";
  }
  for (const Disequality& d : disequalities_) {
    if (!first) out << ", ";
    first = false;
    out << var_names_[d.lhs] << " != " << var_names_[d.rhs];
  }
  out << ".";
  return out.str();
}

}  // namespace cqcount
