// The paper's structure constructions:
//  - A(phi)  (Definition 18): the query as a relational structure.
//  - B(phi,D) (Definition 20): the database with complements for negated
//    symbols, so that solutions = disequality-respecting homomorphisms.
//  - A-hat(phi) (Definition 26): A(phi) plus unary position relations P_i
//    and per-disequality colour relations R_eta / B_eta.
//  - B-hat(phi,D,V_1..V_l,f) (Definition 28): the position-annotated,
//    colour-coded database.
//
// These materialised forms are used for cross-validation and small cases;
// the production oracle path evaluates the same instances virtually via
// per-variable domain restrictions (see hom/hom_oracle.h), which is
// observationally equivalent (Lemma 30) and avoids the |vars|^a blow-up.
#ifndef CQCOUNT_QUERY_QUERY_STRUCTURES_H_
#define CQCOUNT_QUERY_QUERY_STRUCTURES_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "relational/structure.h"
#include "util/bitset.h"
#include "util/status.h"

namespace cqcount {

/// Name used for the complement symbol of a negated relation R.
std::string NegatedRelationName(const std::string& relation);

/// A(phi) (Definition 18). Universe = vars(phi); R^A collects the positive
/// predicates, ~R^A the negated ones.
Structure BuildStructureA(const Query& q);

/// B(phi,D) (Definition 20). Universe = U(D); negated symbols map to
/// complements U(D)^ar \ R^D. Fails when a complement would exceed
/// `max_complement_tuples` (the virtual path has no such limit).
StatusOr<Structure> BuildStructureB(const Query& q, const Database& db,
                                    uint64_t max_complement_tuples = 1 << 22);

/// Per-disequality colouring functions f_eta : U(D) -> {r, b}
/// (set bit = red). Indexed parallel to Query::disequalities().
using ColouringFamily = std::vector<Bitset>;

/// Per-free-variable vertex sets V_i (each a subset of U(D), given as a
/// packed membership mask). Indexed by free-variable index.
using PartiteParts = std::vector<Bitset>;

/// A-hat(phi) (Definition 26): adds unary P_i = {x_i} for every variable
/// and unary Rneq_k = {lhs}, Bneq_k = {rhs} for the k-th disequality.
Structure BuildStructureAHat(const Query& q);

/// B-hat(phi, D, V_1..V_l, f) (Definition 28). The universe is
/// vars(phi) x U(D) encoded as i * |U(D)| + w for position i and value w;
/// only elements of some S_i (S_i = V_i for free i, U(D) for existential)
/// belong to relations. Sizes grow as |vars|^arity; intended for tests.
StatusOr<Structure> BuildStructureBHat(const Query& q, const Database& db,
                                       const PartiteParts& parts,
                                       const ColouringFamily& colouring,
                                       uint64_t max_tuples = 1 << 24);

/// The canonical (full, positive) conjunctive query of a structure A:
/// one free variable per universe element, one atom per fact. Homomorphisms
/// A -> B are exactly the solutions of (canonical query, B).
Query CanonicalQuery(const Structure& a);

}  // namespace cqcount

#endif  // CQCOUNT_QUERY_QUERY_STRUCTURES_H_
