// Dense two-phase simplex solver.
//
// This is the substrate for the fractional width measures of the paper:
// fractional edge covers (Definition 39, used by fhw / Lemma 48) and
// fractional independent sets (Definition 33, used by adaptive width).
// Problems are tiny (variables = hyperedges of a query hypergraph), so a
// dense tableau with Bland's anti-cycling rule is appropriate.
#ifndef CQCOUNT_LP_SIMPLEX_H_
#define CQCOUNT_LP_SIMPLEX_H_

#include <vector>

namespace cqcount {

/// Outcome of an LP solve.
enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

/// Solution of a linear program.
struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  /// Objective value at the optimum (only meaningful when kOptimal).
  double objective = 0.0;
  /// Primal solution (only meaningful when kOptimal).
  std::vector<double> x;
};

/// Maximises c.x subject to A x <= b and x >= 0.
///
/// `a` has one row per constraint; all rows must have size c.size().
/// Negative entries of `b` are allowed (phase 1 introduces artificials).
LpResult SolveLpMax(const std::vector<double>& c,
                    const std::vector<std::vector<double>>& a,
                    const std::vector<double>& b);

/// Minimises c.x subject to A x >= b and x >= 0 (covering LP).
LpResult SolveCoveringLpMin(const std::vector<double>& c,
                            const std::vector<std::vector<double>>& a,
                            const std::vector<double>& b);

}  // namespace cqcount

#endif  // CQCOUNT_LP_SIMPLEX_H_
