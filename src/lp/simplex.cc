#include "lp/simplex.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace cqcount {
namespace {

constexpr double kEps = 1e-9;

// Dense simplex tableau over variables [0, num_cols). Row `i` of `rows`
// encodes a constraint in equality form with basic variable basis_[i];
// `rhs` holds the constant column. One objective row is kept separately.
class Tableau {
 public:
  Tableau(int num_rows, int num_cols)
      : num_rows_(num_rows),
        num_cols_(num_cols),
        rows_(num_rows, std::vector<double>(num_cols, 0.0)),
        rhs_(num_rows, 0.0),
        obj_(num_cols, 0.0),
        basis_(num_rows, -1) {}

  std::vector<std::vector<double>>& rows() { return rows_; }
  std::vector<double>& rhs() { return rhs_; }
  std::vector<double>& obj() { return obj_; }
  std::vector<int>& basis() { return basis_; }
  double obj_value() const { return obj_value_; }
  void set_obj_value(double v) { obj_value_ = v; }

  // Runs primal simplex (maximisation; obj row holds reduced costs so that
  // a positive entry means "entering improves"). Returns false on
  // unboundedness. Uses Bland's rule: smallest eligible indices.
  bool Maximise() {
    for (;;) {
      int entering = -1;
      for (int j = 0; j < num_cols_; ++j) {
        if (obj_[j] > kEps) {
          entering = j;
          break;
        }
      }
      if (entering < 0) return true;  // Optimal.

      int leaving = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < num_rows_; ++i) {
        if (rows_[i][entering] > kEps) {
          double ratio = rhs_[i] / rows_[i][entering];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leaving < 0 || basis_[i] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = i;
          }
        }
      }
      if (leaving < 0) return false;  // Unbounded.
      Pivot(leaving, entering);
    }
  }

  void Pivot(int row, int col) {
    const double pivot = rows_[row][col];
    assert(std::fabs(pivot) > kEps);
    for (int j = 0; j < num_cols_; ++j) rows_[row][j] /= pivot;
    rhs_[row] /= pivot;
    rows_[row][col] = 1.0;  // Avoid drift.
    for (int i = 0; i < num_rows_; ++i) {
      if (i == row) continue;
      const double factor = rows_[i][col];
      if (std::fabs(factor) < kEps) continue;
      for (int j = 0; j < num_cols_; ++j) {
        rows_[i][j] -= factor * rows_[row][j];
      }
      rows_[i][col] = 0.0;
      rhs_[i] -= factor * rhs_[row];
    }
    const double ofactor = obj_[col];
    if (std::fabs(ofactor) > kEps) {
      for (int j = 0; j < num_cols_; ++j) obj_[j] -= ofactor * rows_[row][j];
      obj_[col] = 0.0;
      // The entering variable takes value rhs_[row]; the objective gains
      // its reduced cost times that value.
      obj_value_ += ofactor * rhs_[row];
    }
    basis_[row] = col;
  }

 private:
  int num_rows_;
  int num_cols_;
  std::vector<std::vector<double>> rows_;
  std::vector<double> rhs_;
  std::vector<double> obj_;
  std::vector<int> basis_;
  double obj_value_ = 0.0;
};

}  // namespace

LpResult SolveLpMax(const std::vector<double>& c,
                    const std::vector<std::vector<double>>& a,
                    const std::vector<double>& b) {
  const int n = static_cast<int>(c.size());
  const int m = static_cast<int>(a.size());
  assert(b.size() == a.size());

  // Column layout: [structural 0..n) | slack n..n+m) | artificial ...].
  // Row i: a_i . x + s_i = b_i, with the row negated first when b_i < 0
  // (which makes the slack coefficient -1 and requires an artificial).
  std::vector<int> needs_artificial;
  for (int i = 0; i < m; ++i) {
    if (b[i] < -kEps) needs_artificial.push_back(i);
  }
  const int num_art = static_cast<int>(needs_artificial.size());
  const int total_cols = n + m + num_art;

  Tableau tab(m, total_cols);
  {
    int art = 0;
    for (int i = 0; i < m; ++i) {
      assert(static_cast<int>(a[i].size()) == n);
      const bool flip = b[i] < -kEps;
      const double sign = flip ? -1.0 : 1.0;
      for (int j = 0; j < n; ++j) tab.rows()[i][j] = sign * a[i][j];
      tab.rhs()[i] = sign * b[i];
      tab.rows()[i][n + i] = sign;  // Slack.
      if (flip) {
        tab.rows()[i][n + m + art] = 1.0;
        tab.basis()[i] = n + m + art;
        ++art;
      } else {
        tab.basis()[i] = n + i;
      }
    }
  }

  if (num_art > 0) {
    // Phase 1: maximise -(sum of artificials).
    for (int k = 0; k < num_art; ++k) tab.obj()[n + m + k] = -1.0;
    // Price out the artificial basics: the phase-1 objective value at the
    // initial basis is -(sum of artificial values).
    for (int i = 0; i < m; ++i) {
      if (tab.basis()[i] >= n + m) {
        for (int j = 0; j < total_cols; ++j) {
          tab.obj()[j] += tab.rows()[i][j];
        }
        tab.obj()[tab.basis()[i]] = 0.0;
        tab.set_obj_value(tab.obj_value() - tab.rhs()[i]);
      }
    }
    bool bounded = tab.Maximise();
    assert(bounded);
    (void)bounded;
    if (tab.obj_value() < -kEps) {
      return LpResult{LpStatus::kInfeasible, 0.0, {}};
    }
    // Drive any residual artificial basics out of the basis.
    for (int i = 0; i < m; ++i) {
      if (tab.basis()[i] >= n + m) {
        int col = -1;
        for (int j = 0; j < n + m; ++j) {
          if (std::fabs(tab.rows()[i][j]) > kEps) {
            col = j;
            break;
          }
        }
        if (col >= 0) tab.Pivot(i, col);
        // Otherwise the row is redundant (all-zero); leave it.
      }
    }
  }

  // Phase 2 objective: c over structural columns, priced out over the basis.
  std::vector<double> obj(total_cols, 0.0);
  for (int j = 0; j < n; ++j) obj[j] = c[j];
  for (int k = 0; k < num_art; ++k) obj[n + m + k] = -1e30;  // Forbid re-entry.
  tab.obj() = obj;
  tab.set_obj_value(0.0);
  for (int i = 0; i < m; ++i) {
    const int bj = tab.basis()[i];
    const double coeff = tab.obj()[bj];
    if (std::fabs(coeff) > kEps) {
      for (int j = 0; j < total_cols; ++j) {
        tab.obj()[j] -= coeff * tab.rows()[i][j];
      }
      tab.obj()[bj] = 0.0;
      tab.set_obj_value(tab.obj_value() + coeff * tab.rhs()[i]);
    }
  }
  if (!tab.Maximise()) {
    return LpResult{LpStatus::kUnbounded, 0.0, {}};
  }

  LpResult result;
  result.status = LpStatus::kOptimal;
  result.objective = tab.obj_value();
  result.x.assign(n, 0.0);
  for (int i = 0; i < m; ++i) {
    if (tab.basis()[i] < n) result.x[tab.basis()[i]] = tab.rhs()[i];
  }
  return result;
}

LpResult SolveCoveringLpMin(const std::vector<double>& c,
                            const std::vector<std::vector<double>>& a,
                            const std::vector<double>& b) {
  // min c.x s.t. A x >= b, x >= 0  <=>  max (-c).x s.t. (-A) x <= -b.
  std::vector<double> neg_c(c.size());
  for (size_t j = 0; j < c.size(); ++j) neg_c[j] = -c[j];
  std::vector<std::vector<double>> neg_a(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    neg_a[i].resize(a[i].size());
    for (size_t j = 0; j < a[i].size(); ++j) neg_a[i][j] = -a[i][j];
  }
  std::vector<double> neg_b(b.size());
  for (size_t i = 0; i < b.size(); ++i) neg_b[i] = -b[i];

  LpResult r = SolveLpMax(neg_c, neg_a, neg_b);
  if (r.status == LpStatus::kOptimal) r.objective = -r.objective;
  return r;
}

}  // namespace cqcount
