// Query rewrite passes (stage 1 of the compile pipeline).
//
// NormalizeQuery rewrites a parsed query into the form the planner and the
// component splitter assume, without changing its answer set:
//
//   1. duplicate-atom dedup — syntactically identical body atoms (same
//      relation, argument list and polarity) are conjunctions of the same
//      constraint; only the first occurrence is kept. Queries that differ
//      only in duplicated atoms therefore share one canonical shape and
//      one cached plan.
//   2. nullary-guard extraction — arity-0 atoms R() / !R() constrain no
//      variables: their truth is a property of the database alone. They
//      are lifted out as NullaryGuards so the execution strategies (which
//      work per-variable) never see them; the engine evaluates guards
//      directly and multiplies the 0/1 factor into the count.
//   3. unused-variable pruning — an existential variable occurring in no
//      remaining atom and no disequality is unconstrained and
//      existentially quantified away; dropping it leaves the answer set
//      unchanged. (Free variables are never pruned: an unconstrained free
//      variable multiplies the count by |U(D)|, which the component layer
//      accounts for as a trivial factor.)
//
// Passes preserve variable names, the relative order of surviving atoms
// and variables, and the free prefix, so a query that is already normal
// round-trips bit-identically.
#ifndef CQCOUNT_COMPILE_PASSES_H_
#define CQCOUNT_COMPILE_PASSES_H_

#include <string>
#include <vector>

#include "query/query.h"

namespace cqcount {

/// An arity-0 atom lifted out of the body: true on a database D iff the
/// relation is non-empty (contains the empty tuple), negated accordingly.
struct NullaryGuard {
  std::string relation;
  bool negated = false;

  bool operator==(const NullaryGuard&) const = default;
};

/// Evaluates a guard against a database (the relation must be declared).
bool GuardHolds(const NullaryGuard& guard, const Database& db);

/// What the normalization passes changed (provenance for Explain).
struct PassStats {
  int atoms_deduped = 0;
  int guards_extracted = 0;
  int variables_pruned = 0;

  bool Changed() const {
    return atoms_deduped > 0 || guards_extracted > 0 || variables_pruned > 0;
  }
};

/// A query rewritten by the normalization passes.
struct NormalizedQuery {
  Query query;
  std::vector<NullaryGuard> guards;
  /// original variable index -> normalized index (-1 when pruned).
  std::vector<int> var_map;
  PassStats stats;
};

/// Runs the rewrite passes described above. `dedup_atoms` / `prune_variables`
/// gate passes 1 and 3 (guard extraction always runs: downstream layers do
/// not handle arity-0 atoms).
NormalizedQuery NormalizeQuery(const Query& q, bool dedup_atoms = true,
                               bool prune_variables = true);

}  // namespace cqcount

#endif  // CQCOUNT_COMPILE_PASSES_H_
