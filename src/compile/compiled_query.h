// Compiled queries (stage 3 of the compile pipeline).
//
// CompileQuery turns one parsed query into the form the engine executes:
// the normalized query (see passes.h), its nullary guards, and the
// connected components of its Gaifman graph, each extracted as an
// independent sub-query with its own canonical shape. Because components
// share no variable and no constraint,
//
//   |Ans(phi, D)| = prod_guards [guard holds] * prod_i |Ans(phi_i, D)|,
//
// where a purely-existential component contributes the boolean factor
// [phi_i satisfiable] in {0, 1} and a free variable with no constraints
// contributes |U(D)|. The engine plans each component through the plan
// cache independently — so two different queries that share a component
// shape reuse the same cached sub-plan — and multiplies the counts,
// splitting the requested (epsilon, delta) guarantee across the factors
// (see SplitBudget).
#ifndef CQCOUNT_COMPILE_COMPILED_QUERY_H_
#define CQCOUNT_COMPILE_COMPILED_QUERY_H_

#include <cstddef>
#include <vector>

#include "compile/passes.h"
#include "engine/plan.h"
#include "query/query.h"

namespace cqcount {

/// Pipeline gates. All on by default; benches and tests disable factoring
/// to measure the monolithic baseline.
struct CompileOptions {
  bool dedup_atoms = true;
  bool prune_variables = true;
  /// When false, the whole normalized query becomes one component even if
  /// its Gaifman graph is disconnected.
  bool factor_components = true;
};

/// One Gaifman component of the normalized query, as a standalone query.
struct QueryComponent {
  /// The component sub-query in dense local numbering (free-first; local
  /// order follows the normalized order, so a connected query round-trips
  /// to an identical single component).
  Query query;
  /// local variable index -> normalized-query variable index.
  std::vector<int> vars;
  /// No free variables: the component collapses to a 0/1 boolean factor.
  bool existential = false;
  /// Canonical shape of `query` (the plan-cache key material).
  CanonicalShape shape;
};

/// A query compiled for execution.
struct CompiledQuery {
  /// The rewritten query (all components stitched together).
  Query normalized;
  std::vector<NullaryGuard> guards;
  PassStats stats;
  /// Gaifman components ordered by smallest normalized variable; free
  /// variables have the smallest indices, so components with free
  /// variables come first.
  std::vector<QueryComponent> components;

  size_t num_components() const { return components.size(); }
  /// Components contributing a real count (not a boolean factor).
  size_t num_counting_components() const;
};

/// Runs the full pipeline: normalization passes, Gaifman split, canonical
/// shapes. Pure function of (q, opts) — safe to call concurrently.
CompiledQuery CompileQuery(const Query& q, const CompileOptions& opts = {});

/// Per-component share of a requested (epsilon, delta) accuracy target.
///
/// With k = `counting_components` estimated factors, giving each factor a
/// relative-error budget eps_i = eps / (2k) makes the product land within
/// the requested interval: (1 + eps/(2k))^k <= e^{eps/2} <= 1 + eps and
/// (1 - eps/(2k))^k >= 1 - eps/2 for eps in (0, 1]. Failure probability is
/// a union bound over all `total_components` factors: delta_i = delta / n.
/// Purely-existential factors only need their 0/1 value preserved, which
/// any relative-error estimate does, so they run at a fixed loose epsilon
/// and don't consume the epsilon budget. Single-factor queries pass
/// through unchanged (bitwise-compatible with the unfactored engine).
struct BudgetShare {
  double epsilon = 0.0;
  double delta = 0.0;
};
BudgetShare SplitBudget(double epsilon, double delta,
                        size_t counting_components, size_t total_components,
                        bool existential);

}  // namespace cqcount

#endif  // CQCOUNT_COMPILE_COMPILED_QUERY_H_
