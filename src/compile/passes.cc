#include "compile/passes.h"

#include <algorithm>
#include <set>
#include <utility>

#include "obs/trace.h"

namespace cqcount {

bool GuardHolds(const NullaryGuard& guard, const Database& db) {
  const bool non_empty = !db.relation(guard.relation).empty();
  return guard.negated ? !non_empty : non_empty;
}

NormalizedQuery NormalizeQuery(const Query& q, bool dedup_atoms,
                               bool prune_variables) {
  NormalizedQuery out;

  // Pass 1+2 over the atom list: drop duplicates, lift nullary guards.
  std::vector<const Atom*> kept;
  {
    obs::Span span("pass.dedup_and_guards");
    std::set<std::pair<bool, std::pair<std::string, std::vector<int>>>> seen;
    for (const Atom& atom : q.atoms()) {
      if (dedup_atoms &&
          !seen.insert({atom.negated, {atom.relation, atom.vars}}).second) {
        ++out.stats.atoms_deduped;
        continue;
      }
      if (atom.vars.empty()) {
        out.guards.push_back({atom.relation, atom.negated});
        ++out.stats.guards_extracted;
        continue;
      }
      kept.push_back(&atom);
    }
  }

  // Pass 3: an existential variable left with no occurrence is dropped.
  obs::Span span("pass.prune_variables");
  std::vector<bool> used(q.num_vars(), false);
  for (const Atom* atom : kept) {
    for (int v : atom->vars) used[v] = true;
  }
  for (const Disequality& d : q.disequalities()) {
    used[d.lhs] = used[d.rhs] = true;
  }
  out.var_map.assign(q.num_vars(), -1);
  for (int v = 0; v < q.num_vars(); ++v) {
    const bool keep = v < q.num_free() || used[v] || !prune_variables;
    if (keep) {
      out.var_map[v] = out.query.AddVariable(q.var_name(v));
    } else {
      ++out.stats.variables_pruned;
    }
  }
  out.query.SetNumFree(q.num_free());

  for (const Atom* atom : kept) {
    Atom mapped;
    mapped.relation = atom->relation;
    mapped.negated = atom->negated;
    mapped.vars.reserve(atom->vars.size());
    for (int v : atom->vars) mapped.vars.push_back(out.var_map[v]);
    out.query.AddAtom(std::move(mapped));
  }
  for (const Disequality& d : q.disequalities()) {
    out.query.AddDisequality(out.var_map[d.lhs], out.var_map[d.rhs]);
  }
  return out;
}

}  // namespace cqcount
