#include "compile/compiled_query.h"

#include <algorithm>

#include "compile/gaifman.h"
#include "obs/trace.h"

namespace cqcount {

size_t CompiledQuery::num_counting_components() const {
  size_t n = 0;
  for (const QueryComponent& c : components) n += c.existential ? 0 : 1;
  return n;
}

namespace {

// Extracts the sub-query induced by `vars` (sorted normalized indices).
// Every atom/disequality of `q` lies entirely inside one component, so
// membership of the first variable decides membership of the constraint.
QueryComponent ExtractComponent(const Query& q, std::vector<int> vars) {
  QueryComponent component;
  component.vars = std::move(vars);
  std::vector<int> to_local(q.num_vars(), -1);
  int num_free = 0;
  for (size_t i = 0; i < component.vars.size(); ++i) {
    const int v = component.vars[i];
    to_local[v] = static_cast<int>(i);
    if (v < q.num_free()) ++num_free;
  }
  // `vars` is sorted and the normalized query is free-first, so the
  // component's free variables occupy its local prefix.
  for (int v : component.vars) {
    component.query.AddVariable(q.var_name(v));
  }
  component.query.SetNumFree(num_free);
  component.existential = num_free == 0;

  for (const Atom& atom : q.atoms()) {
    if (atom.vars.empty() || to_local[atom.vars[0]] == -1) continue;
    Atom mapped;
    mapped.relation = atom.relation;
    mapped.negated = atom.negated;
    mapped.vars.reserve(atom.vars.size());
    for (int v : atom.vars) mapped.vars.push_back(to_local[v]);
    component.query.AddAtom(std::move(mapped));
  }
  for (const Disequality& d : q.disequalities()) {
    if (to_local[d.lhs] == -1) continue;
    component.query.AddDisequality(to_local[d.lhs], to_local[d.rhs]);
  }
  return component;
}

}  // namespace

CompiledQuery CompileQuery(const Query& q, const CompileOptions& opts) {
  CompiledQuery compiled;
  {
    obs::Span span("compile.normalize");
    NormalizedQuery normalized =
        NormalizeQuery(q, opts.dedup_atoms, opts.prune_variables);
    compiled.normalized = std::move(normalized.query);
    compiled.guards = std::move(normalized.guards);
    compiled.stats = normalized.stats;
  }

  const Query& nq = compiled.normalized;
  if (nq.num_vars() == 0) return compiled;  // Pure-guard query: no factors.

  obs::Span span("compile.factor_components");
  std::vector<std::vector<int>> components;
  if (opts.factor_components) {
    components = GaifmanGraph(nq).Components();
  } else {
    components.emplace_back(nq.num_vars());
    std::vector<int>& all = components.back();
    for (int v = 0; v < nq.num_vars(); ++v) all[v] = v;
  }
  compiled.components.reserve(components.size());
  for (std::vector<int>& vars : components) {
    QueryComponent component = ExtractComponent(nq, std::move(vars));
    component.shape = CanonicalQueryShape(component.query);
    compiled.components.push_back(std::move(component));
  }
  return compiled;
}

BudgetShare SplitBudget(double epsilon, double delta,
                        size_t counting_components, size_t total_components,
                        bool existential) {
  BudgetShare share;
  share.delta =
      total_components > 1 ? delta / static_cast<double>(total_components)
                           : delta;
  if (existential) {
    // A 0/1 factor survives any relative error below 1; don't spend the
    // shared epsilon budget on it.
    share.epsilon = 0.5;
  } else if (counting_components > 1) {
    share.epsilon = epsilon / (2.0 * static_cast<double>(counting_components));
  } else {
    share.epsilon = epsilon;
  }
  return share;
}

}  // namespace cqcount
