// Gaifman graph of an extended conjunctive query (stage 2 of the compile
// pipeline).
//
// Vertices are the query's variables; two variables are adjacent when they
// co-occur in any body constraint. Unlike the query hypergraph H(phi) of
// Definition 3 (which the width machinery uses and which deliberately
// ignores disequalities), the compile pipeline must treat EVERY constraint
// as a coupling: a disequality y != z correlates the two sides exactly
// like a binary predicate would, and a negated atom constrains its
// variables jointly. So edges come from
//   - positive predicate atoms (a clique over the atom's variables),
//   - negated predicate atoms (same), and
//   - disequalities (one edge each).
// The connected components of this graph are variable sets with no
// constraint between them, so the answer count factors into the product of
// the per-component counts (the per-component analyses behind the paper's
// Theorems 5/13/16 lift to general queries through exactly this product).
#ifndef CQCOUNT_COMPILE_GAIFMAN_H_
#define CQCOUNT_COMPILE_GAIFMAN_H_

#include <vector>

#include "query/query.h"

namespace cqcount {

/// The (disequality- and negation-aware) Gaifman graph of a query.
class GaifmanGraph {
 public:
  explicit GaifmanGraph(const Query& q);

  int num_vars() const { return static_cast<int>(adj_.size()); }
  /// Number of (undirected) edges.
  int num_edges() const;

  /// Sorted, duplicate-free neighbour list of `v`.
  const std::vector<int>& neighbours(int v) const { return adj_[v]; }
  bool Adjacent(int u, int v) const;

  /// True when every variable is reachable from every other (vacuously
  /// true for <= 1 variable).
  bool IsConnected() const;

  /// Connected components as sorted variable lists, ordered by smallest
  /// member. Isolated variables form singleton components.
  std::vector<std::vector<int>> Components() const;

 private:
  std::vector<std::vector<int>> adj_;
};

}  // namespace cqcount

#endif  // CQCOUNT_COMPILE_GAIFMAN_H_
