#include "compile/gaifman.h"

#include <algorithm>

namespace cqcount {

GaifmanGraph::GaifmanGraph(const Query& q) : adj_(q.num_vars()) {
  auto connect = [&](int u, int v) {
    if (u == v) return;
    adj_[u].push_back(v);
    adj_[v].push_back(u);
  };
  for (const Atom& atom : q.atoms()) {
    for (size_t i = 0; i < atom.vars.size(); ++i) {
      for (size_t j = i + 1; j < atom.vars.size(); ++j) {
        connect(atom.vars[i], atom.vars[j]);
      }
    }
  }
  for (const Disequality& d : q.disequalities()) connect(d.lhs, d.rhs);
  for (auto& neighbours : adj_) {
    std::sort(neighbours.begin(), neighbours.end());
    neighbours.erase(std::unique(neighbours.begin(), neighbours.end()),
                     neighbours.end());
  }
}

int GaifmanGraph::num_edges() const {
  size_t degree_sum = 0;
  for (const auto& neighbours : adj_) degree_sum += neighbours.size();
  return static_cast<int>(degree_sum / 2);
}

bool GaifmanGraph::Adjacent(int u, int v) const {
  return std::binary_search(adj_[u].begin(), adj_[u].end(), v);
}

std::vector<std::vector<int>> GaifmanGraph::Components() const {
  const int n = num_vars();
  std::vector<int> component_of(n, -1);
  std::vector<std::vector<int>> components;
  std::vector<int> stack;
  // Scanning vertices in increasing order yields components ordered by
  // smallest member, each collected sorted; determinism matters because
  // the engine derives per-component seeds from the component index.
  for (int root = 0; root < n; ++root) {
    if (component_of[root] != -1) continue;
    const int id = static_cast<int>(components.size());
    components.emplace_back();
    component_of[root] = id;
    stack.push_back(root);
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      components[id].push_back(v);
      for (int u : adj_[v]) {
        if (component_of[u] == -1) {
          component_of[u] = id;
          stack.push_back(u);
        }
      }
    }
    std::sort(components[id].begin(), components[id].end());
  }
  return components;
}

bool GaifmanGraph::IsConnected() const {
  return num_vars() <= 1 || Components().size() == 1;
}

}  // namespace cqcount
