#include "relational/structure.h"

#include <cassert>

namespace cqcount {

Status Structure::DeclareRelation(const std::string& name, int arity) {
  if (arity < 0) {
    return Status::InvalidArgument("relation arity must be non-negative: " +
                                   name);
  }
  auto it = relations_.find(name);
  if (it != relations_.end()) {
    if (it->second.arity() != arity) {
      return Status::InvalidArgument("relation redeclared with new arity: " +
                                     name);
    }
    return Status::Ok();
  }
  relations_.emplace(name, Relation(arity));
  return Status::Ok();
}

bool Structure::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

int Structure::Arity(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? -1 : it->second.arity();
}

Status Structure::AddFact(const std::string& name, Tuple t) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation not declared: " + name);
  }
  if (static_cast<int>(t.size()) != it->second.arity()) {
    return Status::InvalidArgument("fact arity mismatch for " + name);
  }
  for (Value v : t) {
    if (v >= universe_size_) {
      return Status::InvalidArgument("fact value outside universe in " + name);
    }
  }
  it->second.Add(std::move(t));
  return Status::Ok();
}

Status Structure::AdoptRelation(const std::string& name, Relation relation) {
  if (!relation.canonical()) {
    return Status::FailedPrecondition("adopting a non-canonical relation: " +
                                      name);
  }
  auto it = relations_.find(name);
  if (it != relations_.end() && it->second.arity() != relation.arity()) {
    return Status::InvalidArgument("relation redeclared with new arity: " +
                                   name);
  }
  relations_.insert_or_assign(name, std::move(relation));
  return Status::Ok();
}

void Structure::BuildZoneMaps() {
  for (auto& [name, rel] : relations_) {
    if (rel.canonical()) rel.BuildZoneMaps();
  }
}

void Structure::Canonicalize() {
  for (auto& [name, rel] : relations_) rel.Canonicalize();
}

bool Structure::IsCanonical() const {
  for (const auto& [name, rel] : relations_) {
    if (!rel.canonical()) return false;
  }
  return true;
}

const Relation& Structure::relation(const std::string& name) const {
  auto it = relations_.find(name);
  assert(it != relations_.end() && "relation not declared");
  return it->second;
}

Relation* Structure::mutable_relation(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

std::vector<std::string> Structure::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

uint64_t Structure::Size() const {
  uint64_t size = relations_.size() + universe_size_;
  for (const auto& [name, rel] : relations_) {
    size += rel.size() * static_cast<uint64_t>(rel.arity());
  }
  return size;
}

uint64_t Structure::NumFacts() const {
  uint64_t facts = 0;
  for (const auto& [name, rel] : relations_) facts += rel.size();
  return facts;
}

}  // namespace cqcount
