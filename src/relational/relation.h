// Relations: sets of tuples over a universe of dense 32-bit values.
//
// Storage is a sorted, duplicate-free tuple vector, which doubles as a
// lexicographic trie for the join algorithms (prefix ranges are contiguous).
#ifndef CQCOUNT_RELATIONAL_RELATION_H_
#define CQCOUNT_RELATIONAL_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cqcount {

/// A universe element. Universes are dense: {0, .., N-1}.
using Value = uint32_t;

/// A tuple of universe elements.
using Tuple = std::vector<Value>;

/// A finite relation of fixed arity.
class Relation {
 public:
  Relation() = default;
  /// Creates an empty relation of the given arity (arity >= 1).
  explicit Relation(int arity) : arity_(arity) {}

  int arity() const { return arity_; }
  /// Number of distinct tuples (canonicalises lazily added duplicates).
  size_t size() const {
    EnsureSorted();
    return tuples_.size();
  }
  bool empty() const { return tuples_.empty(); }

  /// Adds a tuple (must have the relation's arity). Duplicates are removed
  /// lazily on the next Contains/sorted access.
  void Add(Tuple t);

  /// True if `t` is a member.
  bool Contains(const Tuple& t) const;

  /// The tuples in lexicographic order, duplicate-free.
  const std::vector<Tuple>& tuples() const;

  /// The half-open index range [lo, hi) of tuples whose first
  /// prefix.size() entries equal `prefix` within [from, to). Used by the
  /// trie-style join. Requires the relation to be sorted (tuples() call).
  std::pair<size_t, size_t> PrefixRange(const Tuple& prefix, size_t from,
                                        size_t to) const;

  /// Projects onto the given column positions (in the given order),
  /// deduplicating the result.
  Relation Project(const std::vector<int>& positions) const;

  /// Returns the same tuple set with columns permuted: column i of the
  /// result is column `order[i]` of this relation.
  Relation Reorder(const std::vector<int>& order) const;

  bool operator==(const Relation& other) const;

 private:
  void EnsureSorted() const;  // Sorts and deduplicates (lazily, const).

  int arity_ = 0;
  // Mutable: sorting is a lazily applied canonicalisation.
  mutable std::vector<Tuple> tuples_;
  mutable bool sorted_ = true;
};

}  // namespace cqcount

#endif  // CQCOUNT_RELATIONAL_RELATION_H_
