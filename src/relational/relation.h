// Relations: sets of tuples over a universe of dense 32-bit values.
//
// Storage layer
// -------------
// A Relation stores its tuples in ONE contiguous, arity-strided buffer:
// tuple i occupies values [i*arity, (i+1)*arity). There is no per-tuple
// heap allocation and no pointer chase; a scan is a linear walk and a
// prefix range is a strided binary search, both cache-friendly. Sorted,
// duplicate-free order is a *construction-time* invariant: writers stage
// rows with Add()/AppendRow() and then call Canonicalize() exactly once,
// after which every accessor is genuinely read-only (no mutable members,
// no lazy const mutation), so a canonical Relation is safe to share
// across threads without synchronisation.
//
// Tuples are exposed as TupleView — a (pointer, length) span into the
// flat buffer. Views are invalidated by Add/AppendRow/Canonicalize, like
// vector iterators; materialise with MaterializeTuple when a view must
// outlive its relation's next mutation.
//
// Storage backends
// ----------------
// A canonical Relation reads through one base pointer that resolves to
// either its owned vector or a borrowed memory-mapped span (a segment
// file's data block, kept alive by a shared handle). Every accessor —
// flat(), operator[], NarrowRange, IndexOf, .. — goes through base(), so
// the two backends are observationally identical and engine estimates
// stay bit-for-bit the same whichever one backs the data. Mapped
// relations are born canonical and immutable; the mutating stagers
// (Add/AppendRow) are owned-storage only.
#ifndef CQCOUNT_RELATIONAL_RELATION_H_
#define CQCOUNT_RELATIONAL_RELATION_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "relational/zone_maps.h"

namespace cqcount {

/// A universe element. Universes are dense: {0, .., N-1}.
using Value = uint32_t;

/// An owned tuple of universe elements (boxed; used at API boundaries and
/// for staging — the storage layer itself is flat).
using Tuple = std::vector<Value>;

/// Lexicographic three-way compare of two equal-length value spans.
inline int CompareValues(const Value* a, const Value* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// A borrowed, non-owning view of one tuple inside a flat buffer.
/// Invalidated by any mutation of the owning container.
class TupleView {
 public:
  using value_type = Value;

  TupleView() = default;
  TupleView(const Value* data, size_t size) : data_(data), size_(size) {}

  const Value* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Value operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }

  friend bool operator==(TupleView a, TupleView b) {
    return a.size_ == b.size_ && CompareValues(a.data_, b.data_, a.size_) == 0;
  }
  friend bool operator!=(TupleView a, TupleView b) { return !(a == b); }
  friend bool operator<(TupleView a, TupleView b) {
    const size_t n = a.size_ < b.size_ ? a.size_ : b.size_;
    const int c = CompareValues(a.data_, b.data_, n);
    if (c != 0) return c < 0;
    return a.size_ < b.size_;
  }

 private:
  const Value* data_ = nullptr;
  size_t size_ = 0;
};

/// A borrowed, non-owning view of a whole flat value buffer (the
/// storage-backend-neutral return type of Relation::flat(): owned vectors
/// and mmap'd spans read identically through it).
class ValueSpan {
 public:
  using value_type = Value;

  ValueSpan() = default;
  ValueSpan(const Value* data, size_t size) : data_(data), size_(size) {}

  const Value* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Value operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }

  friend bool operator==(ValueSpan a, ValueSpan b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(ValueSpan a, ValueSpan b) { return !(a == b); }
  friend bool operator==(ValueSpan a, const std::vector<Value>& b) {
    return a == ValueSpan(b.data(), b.size());
  }
  friend bool operator==(const std::vector<Value>& a, ValueSpan b) {
    return b == a;
  }

 private:
  const Value* data_ = nullptr;
  size_t size_ = 0;
};

/// Borrows a whole owned tuple as a view.
inline TupleView AsView(const Tuple& t) { return TupleView(t.data(), t.size()); }

/// Copies a view out into an owned Tuple (compatibility shim for callers
/// that need ownership, e.g. across a mutation of the source relation).
inline Tuple MaterializeTuple(TupleView v) {
  return Tuple(v.begin(), v.end());
}

inline bool operator==(TupleView a, const Tuple& b) { return a == AsView(b); }
inline bool operator==(const Tuple& a, TupleView b) { return AsView(a) == b; }

/// Projects `t` onto `positions` into the reusable `scratch` buffer
/// (cleared first). The allocation-free sibling of Relation::Project for
/// one-tuple-at-a-time hot paths.
inline void ProjectInto(TupleView t, const std::vector<int>& positions,
                        Tuple& scratch) {
  scratch.clear();
  for (int p : positions) scratch.push_back(t[static_cast<size_t>(p)]);
}

/// A dynamic array of fixed-width tuples in one flat buffer. The minimal
/// mutable sibling of Relation: no ordering invariant, just allocation-free
/// row storage (used for DP tables, sketches, scratch projections).
/// Width 0 is supported (rows carry no payload; only the count matters).
class FlatTuples {
 public:
  FlatTuples() = default;
  explicit FlatTuples(int width) : width_(width) { assert(width >= 0); }

  int width() const { return width_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    size_ = 0;
    data_.clear();
  }
  /// clear() plus a (possibly different) width, keeping the allocation —
  /// the reuse idiom of per-trial DP scratch tables.
  void Reset(int width) {
    assert(width >= 0);
    width_ = width;
    size_ = 0;
    data_.clear();
  }
  void reserve(size_t rows) { data_.reserve(rows * width_); }

  TupleView operator[](size_t i) const {
    assert(i < size_);
    return TupleView(data_.data() + i * width_, width_);
  }
  TupleView back() const { return (*this)[size_ - 1]; }

  /// Appends one row and returns a pointer to its `width()` slots.
  Value* AppendRow() {
    data_.resize(data_.size() + width_);
    ++size_;
    return data_.data() + data_.size() - width_;
  }
  void PushBack(TupleView v) {
    assert(static_cast<int>(v.size()) == width_);
    data_.insert(data_.end(), v.begin(), v.end());
    ++size_;
  }

  /// Index of the first row >= key (a `width()`-long span) in a
  /// lexicographically sorted FlatTuples.
  size_t LowerBound(const Value* key) const {
    size_t lo = 0, hi = size_;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (CompareValues(data_.data() + mid * width_, key, width_) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  const std::vector<Value>& data() const { return data_; }

 private:
  int width_ = 0;
  size_t size_ = 0;  // Explicit: width 0 stores no payload per row.
  std::vector<Value> data_;
};

/// A finite relation of fixed arity with flat, arity-strided storage.
///
/// Lifecycle: stage rows via Add()/AppendRow(), then call Canonicalize()
/// once to establish the sorted duplicate-free invariant. All read
/// accessors except size()/empty()/arity() require a canonical relation
/// (enforced by assert in debug builds) and never mutate, so canonical
/// relations are safe for concurrent readers.
class Relation {
 public:
  Relation() = default;
  /// Creates an empty relation of the given arity (arity >= 0; arity 0
  /// holds at most the empty tuple, as bag solutions of an empty bag).
  explicit Relation(int arity) : arity_(arity) { assert(arity >= 0); }
  /// Adopts `rows.size() / arity` staged rows and canonicalises them.
  Relation(int arity, std::vector<Value> rows);

  /// Adopts a borrowed, already-canonical (sorted, duplicate-free,
  /// row-major) buffer of `rows` tuples — the mmap'd segment backend.
  /// `keepalive` pins the mapping (all relations of one segment share
  /// it); `zones` carries the segment's precomputed zone maps. The
  /// relation is born canonical and immutable: mutating stagers assert.
  static Relation FromMappedSpan(int arity, size_t rows, const Value* data,
                                 ZoneMaps zones,
                                 std::shared_ptr<const void> keepalive);

  /// True when reads resolve to a borrowed mmap'd span rather than the
  /// owned vector.
  bool is_mapped() const { return mapped_ != nullptr; }

  /// The storage base pointer: the owned buffer or the mapped span.
  /// Requires canonical (owned buffers may reallocate while staging).
  const Value* base() const {
    assert(!dirty_ && "read access to a non-canonical Relation");
    return mapped_ != nullptr ? mapped_ : data_.data();
  }

  /// Zone maps over this relation's rows, or nullptr when none were
  /// built/loaded. Present on mapped relations (segments store them) and
  /// on in-memory relations after BuildZoneMaps().
  const ZoneMaps* zone_maps() const {
    return zones_.empty() ? nullptr : &zones_;
  }

  /// Builds zone maps in place for an in-memory canonical relation (no-op
  /// when already present, mapped, or empty). Not thread-safe against
  /// concurrent readers; call once at registration time.
  void BuildZoneMaps();

  int arity() const { return arity_; }
  /// Number of tuples. Before Canonicalize() this counts staged rows,
  /// duplicates included.
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }
  /// True once the sorted/dedup invariant holds (no staged rows pending).
  bool canonical() const { return !dirty_; }

  /// Stages a tuple (must have the relation's arity). Invalidates views.
  /// Owned storage only: mapped relations are immutable.
  void Add(const Tuple& t) {
    assert(t.size() == static_cast<size_t>(arity_));
    AppendSpan(t.data());
  }
  void Add(TupleView t) {
    assert(t.size() == static_cast<size_t>(arity_));
    AppendSpan(t.data());
  }
  void Add(std::initializer_list<Value> values) {
    assert(values.size() == static_cast<size_t>(arity_));
    assert(mapped_ == nullptr && "mutating a mapped Relation");
    data_.insert(data_.end(), values.begin(), values.end());
    ++num_rows_;
    dirty_ = true;
  }
  /// Stages one uninitialised row; write exactly arity() values through
  /// the returned pointer. Invalidates views. Owned storage only.
  Value* AppendRow() {
    assert(mapped_ == nullptr && "mutating a mapped Relation");
    data_.resize(data_.size() + arity_);
    ++num_rows_;
    dirty_ = true;
    return data_.data() + data_.size() - arity_;
  }

  /// Sorts lexicographically and removes duplicates. Idempotent; no-op on
  /// an already-canonical relation. Skips the sort when staged rows are
  /// already in order (the common case for enumeration outputs).
  void Canonicalize();

  /// True if `t` is a member; a tuple of the wrong arity is never a
  /// member. Requires canonical.
  bool Contains(const Tuple& t) const {
    if (t.size() != static_cast<size_t>(arity_)) return false;
    return IndexOf(t.data()) >= 0;
  }
  /// Pointer-span variant under a distinct name: an overload would make
  /// `Contains({0})` bind the literal 0 to the pointer (null-pointer
  /// constant) instead of building a one-element Tuple.
  bool ContainsRow(const Value* t) const { return IndexOf(t) >= 0; }

  /// Index of the tuple equal to the arity()-long span `t`, or -1.
  /// Requires canonical. (Replaces hash-map side indexes: canonical order
  /// makes the relation its own index.)
  ptrdiff_t IndexOf(const Value* t) const;
  ptrdiff_t IndexOf(TupleView t) const {
    assert(t.size() == static_cast<size_t>(arity_));
    return IndexOf(t.data());
  }

  /// The i-th tuple in lexicographic order. Requires canonical.
  TupleView operator[](size_t i) const {
    assert(i < num_rows_);
    return TupleView(base() + i * arity_, arity_);
  }

  /// Value at (row, column) without forming a view. Requires canonical.
  Value At(size_t row, size_t col) const {
    assert(row < num_rows_ && col < static_cast<size_t>(arity_));
    return base()[row * arity_ + col];
  }

  /// The raw flat buffer (size() * arity() values, row-major, sorted) as
  /// a backend-neutral span: owned vector or mmap'd segment data.
  ValueSpan flat() const {
    return ValueSpan(base(), num_rows_ * static_cast<size_t>(arity_));
  }

  /// Iteration over tuples as views.
  class ViewIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = TupleView;
    using difference_type = ptrdiff_t;
    using pointer = const TupleView*;
    using reference = TupleView;

    ViewIterator(const Relation* rel, size_t index)
        : rel_(rel), index_(index) {}
    TupleView operator*() const { return (*rel_)[index_]; }
    ViewIterator& operator++() {
      ++index_;
      return *this;
    }
    bool operator==(const ViewIterator& o) const { return index_ == o.index_; }
    bool operator!=(const ViewIterator& o) const { return index_ != o.index_; }

   private:
    const Relation* rel_;
    size_t index_;
  };
  ViewIterator begin() const {
    assert(!dirty_ && "read access to a non-canonical Relation");
    return ViewIterator(this, 0);
  }
  ViewIterator end() const { return ViewIterator(this, num_rows_); }

  /// The half-open index range [lo, hi) of tuples whose first `len`
  /// entries equal `prefix` within [from, to). Requires canonical.
  std::pair<size_t, size_t> PrefixRange(const Value* prefix, size_t len,
                                        size_t from, size_t to) const;
  std::pair<size_t, size_t> PrefixRange(const Tuple& prefix, size_t from,
                                        size_t to) const {
    return PrefixRange(prefix.data(), prefix.size(), from, to);
  }

  /// Narrows [from, to) — whose rows share a common prefix of length
  /// `col` — to the subrange whose column `col` equals `v`. The trie-join
  /// descent step. Requires canonical.
  std::pair<size_t, size_t> NarrowRange(size_t from, size_t to, size_t col,
                                        Value v) const;

  /// End of the run of rows sharing column `col`'s value with row `from`
  /// within [from, to); the pivot-side half of NarrowRange when the lower
  /// bound is already known. Requires canonical.
  size_t GroupEnd(size_t from, size_t to, size_t col) const;

  /// Projects onto the given column positions (in the given order),
  /// deduplicating the result. Requires canonical.
  Relation Project(const std::vector<int>& positions) const;

  /// Returns the same tuple set with columns permuted: column i of the
  /// result is column `order[i]` of this relation. Requires canonical.
  Relation Reorder(const std::vector<int>& order) const;

  bool operator==(const Relation& other) const;

 private:
  void AppendSpan(const Value* values) {
    assert(mapped_ == nullptr && "mutating a mapped Relation");
    data_.insert(data_.end(), values, values + arity_);
    ++num_rows_;
    dirty_ = true;
  }

  int arity_ = 0;
  size_t num_rows_ = 0;
  bool dirty_ = false;
  std::vector<Value> data_;  // Owned backend: rows*arity values, row-major.
  // Mapped backend: borrowed canonical span + the handle pinning it (one
  // segment mapping shared by all its relations). Null for owned storage.
  const Value* mapped_ = nullptr;
  std::shared_ptr<const void> keepalive_;
  ZoneMaps zones_;  // Empty unless built (owned) or loaded (segment).
};

}  // namespace cqcount

#endif  // CQCOUNT_RELATIONAL_RELATION_H_
