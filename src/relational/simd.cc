#include "relational/simd.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#define CQCOUNT_SIMD_X86 1
#include <immintrin.h>
#else
#define CQCOUNT_SIMD_X86 0
#endif

namespace cqcount {
namespace simd {
namespace {

// Values are unsigned but the compare instructions are signed; XORing the
// sign bit maps unsigned order onto signed order.
constexpr Value kSignBias = 0x80000000u;

inline Level MinLevel(Level a, Level b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

// ---------------------------------------------------------------------------
// Scalar kernels (the reference implementation every level must match).
// ---------------------------------------------------------------------------

size_t ScalarLinearLowerBound(const Value* base, size_t stride, size_t n,
                              Value v) {
  size_t i = 0;
  while (i < n && base[i * stride] < v) ++i;
  return i;
}

size_t ScalarLinearUpperBound(const Value* base, size_t stride, size_t n,
                              Value v) {
  size_t i = 0;
  while (i < n && base[i * stride] <= v) ++i;
  return i;
}

void ScalarMinMax(const Value* base, size_t stride, size_t n, Value* min_out,
                  Value* max_out) {
  Value mn = base[0], mx = base[0];
  for (size_t i = 1; i < n; ++i) {
    const Value v = base[i * stride];
    if (v < mn) mn = v;
    if (v > mx) mx = v;
  }
  *min_out = mn;
  *max_out = mx;
}

uint64_t ScalarProbeStampsBlock(const uint32_t* stamps, size_t space,
                                uint32_t epoch, const Value* rows,
                                size_t width, const int* cols,
                                const uint32_t* radix, size_t ncols,
                                size_t n) {
  uint64_t hits = 0;
  for (size_t r = 0; r < n; ++r) {
    const Value* row = rows + r * width;
    uint32_t code = 0;
    for (size_t k = 0; k < ncols; ++k) {
      code += radix[k] * row[cols[k]];
    }
    // Codes at/past the table end (possible only for values that escaped
    // universe certification, i.e. corrupt storage) are misses, never
    // out-of-bounds reads.
    if (code < space && stamps[code] == epoch) hits |= uint64_t{1} << r;
  }
  return hits;
}

#if CQCOUNT_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 kernels. SSE2 is baseline on x86-64; the contiguous (stride 1) scans
// vectorise, strided scans fall back to scalar (no gather before AVX2).
// ---------------------------------------------------------------------------

__attribute__((target("sse2"))) size_t Sse2LinearLowerBound(
    const Value* base, size_t stride, size_t n, Value v) {
  if (stride != 1) return ScalarLinearLowerBound(base, stride, n, v);
  const __m128i bias = _mm_set1_epi32(static_cast<int>(kSignBias));
  const __m128i vv = _mm_xor_si128(_mm_set1_epi32(static_cast<int>(v)), bias);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i keys = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + i)), bias);
    // Lane bit set while key < v; the first clear lane is the bound.
    const int lt = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(keys, vv)));
    if (lt != 0xF) return i + static_cast<size_t>(__builtin_ctz(~lt & 0xF));
  }
  for (; i < n; ++i) {
    if (base[i] >= v) return i;
  }
  return n;
}

__attribute__((target("sse2"))) size_t Sse2LinearUpperBound(
    const Value* base, size_t stride, size_t n, Value v) {
  if (stride != 1) return ScalarLinearUpperBound(base, stride, n, v);
  const __m128i bias = _mm_set1_epi32(static_cast<int>(kSignBias));
  const __m128i vv = _mm_xor_si128(_mm_set1_epi32(static_cast<int>(v)), bias);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i keys = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + i)), bias);
    // Lane bit set where key > v; the first set lane is the bound.
    const int gt = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(keys, vv)));
    if (gt != 0) return i + static_cast<size_t>(__builtin_ctz(gt));
  }
  for (; i < n; ++i) {
    if (base[i] > v) return i;
  }
  return n;
}

// ---------------------------------------------------------------------------
// AVX2 kernels: 8-lane scans; strided access and the stamp probe use
// vpgatherdd. Compiled per-function via target("avx2") so the binary stays
// runnable on pre-AVX2 hardware.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i Avx2StrideIndices(
    size_t stride) {
  const int s = static_cast<int>(stride);
  return _mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s, 7 * s);
}

// Stride-2 keys (arity-2 relations, the dominant case: binary edge
// relations) deinterleave with two full-bandwidth loads and three
// shuffles instead of a latency-bound vpgatherdd: pull the even lanes of
// each 256-bit half into its low 128 bits, then splice the halves.
// Reads p[0..15], i.e. one Value PAST the 8th key p[14] — when the base
// is column 1 of the last 8 rows of a buffer that byte is out of bounds,
// so callers must stop a full group before the end (i + 8 < n) and let
// the scalar tail finish.
__attribute__((target("avx2"))) inline __m256i Avx2LoadStride2Keys(
    const Value* p) {
  const __m256i evens = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  const __m256i a =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i b =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8));
  const __m256i pa = _mm256_permutevar8x32_epi32(a, evens);
  const __m256i pb = _mm256_permutevar8x32_epi32(b, evens);
  return _mm256_permute2x128_si256(pa, pb, 0x20);
}

__attribute__((target("avx2"))) size_t Avx2LinearLowerBound(
    const Value* base, size_t stride, size_t n, Value v) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(kSignBias));
  const __m256i vv =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(v)), bias);
  size_t i = 0;
  if (stride == 1) {
    for (; i + 8 <= n; i += 8) {
      const __m256i keys = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i)),
          bias);
      const int lt =
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vv, keys)));
      if (lt != 0xFF) return i + static_cast<size_t>(__builtin_ctz(~lt & 0xFF));
    }
  } else if (stride == 2) {
    // i + 8 < n (strict): the deinterleaving load reads one Value past
    // the group's last key, so the final 8-key group goes to the scalar
    // tail instead of overrunning a buffer that ends at that key.
    for (; i + 8 < n; i += 8) {
      const __m256i keys =
          _mm256_xor_si256(Avx2LoadStride2Keys(base + i * 2), bias);
      const int lt =
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vv, keys)));
      if (lt != 0xFF) return i + static_cast<size_t>(__builtin_ctz(~lt & 0xFF));
    }
  } else {
    const __m256i idx = Avx2StrideIndices(stride);
    for (; i + 8 <= n; i += 8) {
      const __m256i keys = _mm256_xor_si256(
          _mm256_i32gather_epi32(
              reinterpret_cast<const int*>(base + i * stride), idx, 4),
          bias);
      const int lt =
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vv, keys)));
      if (lt != 0xFF) return i + static_cast<size_t>(__builtin_ctz(~lt & 0xFF));
    }
  }
  for (; i < n; ++i) {
    if (base[i * stride] >= v) return i;
  }
  return n;
}

__attribute__((target("avx2"))) size_t Avx2LinearUpperBound(
    const Value* base, size_t stride, size_t n, Value v) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(kSignBias));
  const __m256i vv =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(v)), bias);
  size_t i = 0;
  if (stride == 1) {
    for (; i + 8 <= n; i += 8) {
      const __m256i keys = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i)),
          bias);
      const int gt =
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(keys, vv)));
      if (gt != 0) return i + static_cast<size_t>(__builtin_ctz(gt));
    }
  } else if (stride == 2) {
    // Strict bound for the same reason as the lower-bound scan: the
    // deinterleaving load reads one Value past the group's last key.
    for (; i + 8 < n; i += 8) {
      const __m256i keys =
          _mm256_xor_si256(Avx2LoadStride2Keys(base + i * 2), bias);
      const int gt =
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(keys, vv)));
      if (gt != 0) return i + static_cast<size_t>(__builtin_ctz(gt));
    }
  } else {
    const __m256i idx = Avx2StrideIndices(stride);
    for (; i + 8 <= n; i += 8) {
      const __m256i keys = _mm256_xor_si256(
          _mm256_i32gather_epi32(
              reinterpret_cast<const int*>(base + i * stride), idx, 4),
          bias);
      const int gt =
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(keys, vv)));
      if (gt != 0) return i + static_cast<size_t>(__builtin_ctz(gt));
    }
  }
  for (; i < n; ++i) {
    if (base[i * stride] > v) return i;
  }
  return n;
}

__attribute__((target("avx2"))) void Avx2MinMax(const Value* base,
                                                size_t stride, size_t n,
                                                Value* min_out,
                                                Value* max_out) {
  if (n < 16) {
    ScalarMinMax(base, stride, n, min_out, max_out);
    return;
  }
  __m256i mn = _mm256_set1_epi32(-1);  // All ones: unsigned max.
  __m256i mx = _mm256_setzero_si256();
  size_t i = 0;
  if (stride == 1) {
    for (; i + 8 <= n; i += 8) {
      const __m256i keys =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i));
      mn = _mm256_min_epu32(mn, keys);
      mx = _mm256_max_epu32(mx, keys);
    }
  } else {
    const __m256i idx = Avx2StrideIndices(stride);
    for (; i + 8 <= n; i += 8) {
      const __m256i keys = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(base + i * stride), idx, 4);
      mn = _mm256_min_epu32(mn, keys);
      mx = _mm256_max_epu32(mx, keys);
    }
  }
  alignas(32) Value lanes_mn[8], lanes_mx[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes_mn), mn);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes_mx), mx);
  Value best_mn = lanes_mn[0], best_mx = lanes_mx[0];
  for (int l = 1; l < 8; ++l) {
    if (lanes_mn[l] < best_mn) best_mn = lanes_mn[l];
    if (lanes_mx[l] > best_mx) best_mx = lanes_mx[l];
  }
  for (; i < n; ++i) {
    const Value v = base[i * stride];
    if (v < best_mn) best_mn = v;
    if (v > best_mx) best_mx = v;
  }
  *min_out = best_mn;
  *max_out = best_mx;
}

__attribute__((target("avx2"))) uint64_t Avx2ProbeStampsBlock(
    const uint32_t* stamps, size_t space, uint32_t epoch, const Value* rows,
    size_t width, const int* cols, const uint32_t* radix, size_t ncols,
    size_t n) {
  if (space == 0) return 0;  // Empty table: every probe misses.
  uint64_t hits = 0;
  const __m256i epoch_v = _mm256_set1_epi32(static_cast<int>(epoch));
  // Out-of-range codes (corrupt storage only) clamp to the last slot for
  // the gather — keeping every lane's address in bounds — and their
  // lanes are masked off afterwards, matching the scalar miss semantics.
  const __m256i last = _mm256_set1_epi32(static_cast<int>(space - 1));
  const int w = static_cast<int>(width);
  const __m256i row_base = _mm256_setr_epi32(0, w, 2 * w, 3 * w, 4 * w, 5 * w,
                                             6 * w, 7 * w);
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    __m256i codes = _mm256_setzero_si256();
    const Value* block = rows + r * width;
    for (size_t k = 0; k < ncols; ++k) {
      const __m256i keys = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(block + cols[k]), row_base, 4);
      codes = _mm256_add_epi32(
          codes, _mm256_mullo_epi32(
                     keys, _mm256_set1_epi32(static_cast<int>(radix[k]))));
    }
    const __m256i clamped = _mm256_min_epu32(codes, last);
    const __m256i valid = _mm256_cmpeq_epi32(clamped, codes);
    const __m256i marks = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(stamps), clamped, 4);
    const int eq = _mm256_movemask_ps(_mm256_castsi256_ps(
        _mm256_and_si256(_mm256_cmpeq_epi32(marks, epoch_v), valid)));
    hits |= static_cast<uint64_t>(eq & 0xFF) << r;
  }
  if (r < n) {
    hits |= ScalarProbeStampsBlock(stamps, space, epoch, rows + r * width,
                                   width, cols, radix, ncols, n - r)
            << r;
  }
  return hits;
}

#endif  // CQCOUNT_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

Level DetectMaxLevel() {
#if CQCOUNT_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

Level LevelFromEnv(Level max_level) {
  const char* env = std::getenv("CQCOUNT_SIMD");
  if (env == nullptr || *env == '\0') return max_level;
  std::string s(env);
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  if (s == "scalar" || s == "off" || s == "0" || s == "none") {
    return Level::kScalar;
  }
  if (s == "sse2") return MinLevel(Level::kSse2, max_level);
  if (s == "avx2") return MinLevel(Level::kAvx2, max_level);
  return max_level;  // Unknown value: ignore rather than crash.
}

// -1 = unresolved; otherwise the Level as an int. Relaxed atomics are
// enough — resolution is idempotent and any racing writer stores the same
// value.
std::atomic<int> g_active_level{-1};

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Level MaxSupportedLevel() { return DetectMaxLevel(); }

Level ActiveLevel() {
  const int cached = g_active_level.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<Level>(cached);
  const Level level = LevelFromEnv(DetectMaxLevel());
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return level;
}

void SetLevelForTesting(Level level) {
  g_active_level.store(static_cast<int>(MinLevel(level, DetectMaxLevel())),
                       std::memory_order_relaxed);
}

size_t LinearLowerBoundStridedAt(Level level, const Value* base,
                                 size_t stride, size_t n, Value v) {
#if CQCOUNT_SIMD_X86
  if (level == Level::kAvx2) return Avx2LinearLowerBound(base, stride, n, v);
  if (level == Level::kSse2) return Sse2LinearLowerBound(base, stride, n, v);
#else
  (void)level;
#endif
  return ScalarLinearLowerBound(base, stride, n, v);
}

size_t LinearUpperBoundStridedAt(Level level, const Value* base,
                                 size_t stride, size_t n, Value v) {
#if CQCOUNT_SIMD_X86
  if (level == Level::kAvx2) return Avx2LinearUpperBound(base, stride, n, v);
  if (level == Level::kSse2) return Sse2LinearUpperBound(base, stride, n, v);
#else
  (void)level;
#endif
  return ScalarLinearUpperBound(base, stride, n, v);
}

namespace {

// Window below which the hybrid searches switch from bisection to a
// vectorised linear scan: wide enough that the vector loop has real work,
// narrow enough that the scan stays in a few cache lines per column.
constexpr size_t kVectorWindow = 96;

}  // namespace

size_t LowerBoundStrided(const Value* base, size_t stride, size_t n,
                         Value v) {
  size_t lo = 0, hi = n;
  while (hi - lo > kVectorWindow) {
    const size_t mid = lo + (hi - lo) / 2;
    if (base[mid * stride] < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + LinearLowerBoundStridedAt(ActiveLevel(), base + lo * stride,
                                        stride, hi - lo, v);
}

size_t UpperBoundStrided(const Value* base, size_t stride, size_t n,
                         Value v) {
  size_t lo = 0, hi = n;
  while (hi - lo > kVectorWindow) {
    const size_t mid = lo + (hi - lo) / 2;
    if (base[mid * stride] <= v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + LinearUpperBoundStridedAt(ActiveLevel(), base + lo * stride,
                                        stride, hi - lo, v);
}

void MinMaxStridedAt(Level level, const Value* base, size_t stride, size_t n,
                     Value* min_out, Value* max_out) {
#if CQCOUNT_SIMD_X86
  if (level == Level::kAvx2) {
    Avx2MinMax(base, stride, n, min_out, max_out);
    return;
  }
#else
  (void)level;
#endif
  ScalarMinMax(base, stride, n, min_out, max_out);
}

void MinMaxStrided(const Value* base, size_t stride, size_t n, Value* min_out,
                   Value* max_out) {
  MinMaxStridedAt(ActiveLevel(), base, stride, n, min_out, max_out);
}

uint64_t ProbeStampsBlockAt(Level level, const uint32_t* stamps,
                            size_t space, uint32_t epoch, const Value* rows,
                            size_t width, const int* cols,
                            const uint32_t* radix, size_t ncols, size_t n) {
#if CQCOUNT_SIMD_X86
  if (level == Level::kAvx2) {
    return Avx2ProbeStampsBlock(stamps, space, epoch, rows, width, cols,
                                radix, ncols, n);
  }
#else
  (void)level;
#endif
  return ScalarProbeStampsBlock(stamps, space, epoch, rows, width, cols,
                                radix, ncols, n);
}

uint64_t ProbeStampsBlock(const uint32_t* stamps, size_t space,
                          uint32_t epoch, const Value* rows, size_t width,
                          const int* cols, const uint32_t* radix,
                          size_t ncols, size_t n) {
  return ProbeStampsBlockAt(ActiveLevel(), stamps, space, epoch, rows, width,
                            cols, radix, ncols, n);
}

}  // namespace simd
}  // namespace cqcount
