#include "relational/relation.h"

#include <algorithm>
#include <cassert>

namespace cqcount {

void Relation::Add(Tuple t) {
  assert(static_cast<int>(t.size()) == arity_);
  tuples_.push_back(std::move(t));
  sorted_ = false;
}

void Relation::EnsureSorted() const {
  if (sorted_) return;
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
  sorted_ = true;
}

bool Relation::Contains(const Tuple& t) const {
  EnsureSorted();
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

const std::vector<Tuple>& Relation::tuples() const {
  EnsureSorted();
  return tuples_;
}

std::pair<size_t, size_t> Relation::PrefixRange(const Tuple& prefix,
                                                size_t from, size_t to) const {
  EnsureSorted();
  auto begin = tuples_.begin() + from;
  auto end = tuples_.begin() + to;
  auto cmp_lo = [&](const Tuple& t, const Tuple& p) {
    return std::lexicographical_compare(t.begin(),
                                        t.begin() + std::min(t.size(),
                                                             p.size()),
                                        p.begin(), p.end());
  };
  auto lo = std::lower_bound(begin, end, prefix, cmp_lo);
  auto cmp_hi = [&](const Tuple& p, const Tuple& t) {
    return std::lexicographical_compare(p.begin(), p.end(), t.begin(),
                                        t.begin() + std::min(t.size(),
                                                             p.size()));
  };
  auto hi = std::upper_bound(lo, end, prefix, cmp_hi);
  return {static_cast<size_t>(lo - tuples_.begin()),
          static_cast<size_t>(hi - tuples_.begin())};
}

Relation Relation::Project(const std::vector<int>& positions) const {
  Relation out(static_cast<int>(positions.size()));
  for (const Tuple& t : tuples()) {
    Tuple p;
    p.reserve(positions.size());
    for (int pos : positions) {
      assert(pos >= 0 && pos < arity_);
      p.push_back(t[pos]);
    }
    out.Add(std::move(p));
  }
  out.EnsureSorted();
  return out;
}

Relation Relation::Reorder(const std::vector<int>& order) const {
  assert(static_cast<int>(order.size()) == arity_);
  return Project(order);
}

bool Relation::operator==(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  return tuples() == other.tuples();
}

}  // namespace cqcount
