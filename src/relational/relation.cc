#include "relational/relation.h"

#include <algorithm>
#include <numeric>

#include "relational/simd.h"

namespace cqcount {
namespace {

// True when the staged rows are already sorted and duplicate-free — the
// common case for trie-join enumeration output, which is emitted in
// lexicographic order. Checking costs one linear pass and saves the sort.
bool IsCanonicalOrder(const std::vector<Value>& data, size_t rows,
                      size_t arity) {
  for (size_t i = 1; i < rows; ++i) {
    if (CompareValues(data.data() + (i - 1) * arity,
                      data.data() + i * arity, arity) >= 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

Relation Relation::FromMappedSpan(int arity, size_t rows, const Value* data,
                                  ZoneMaps zones,
                                  std::shared_ptr<const void> keepalive) {
  assert(arity >= 1);
  Relation r(arity);
  r.num_rows_ = rows;
  r.mapped_ = data;
  r.keepalive_ = std::move(keepalive);
  r.zones_ = std::move(zones);
  r.dirty_ = false;  // Canonical order is a segment-format invariant.
  return r;
}

void Relation::BuildZoneMaps() {
  assert(!dirty_ && "BuildZoneMaps on a non-canonical Relation");
  if (!zones_.empty() || mapped_ != nullptr || num_rows_ == 0 || arity_ == 0) {
    return;
  }
  zones_ = ZoneMaps::Build(base(), arity_, num_rows_);
}

Relation::Relation(int arity, std::vector<Value> rows) : arity_(arity) {
  assert(arity >= 0);
  if (arity == 0) {
    // Arity 0 carries no payload; adopting a non-empty buffer would be a
    // caller bug, and dividing by zero below must never happen.
    assert(rows.empty());
    return;
  }
  assert(rows.size() % static_cast<size_t>(arity) == 0);
  num_rows_ = rows.size() / static_cast<size_t>(arity);
  data_ = std::move(rows);
  dirty_ = num_rows_ > 0;
  Canonicalize();
}

void Relation::Canonicalize() {
  if (!dirty_) return;
  dirty_ = false;
  const size_t arity = static_cast<size_t>(arity_);
  if (arity_ == 0) {
    // Only the empty tuple exists; dedup to at most one row.
    num_rows_ = num_rows_ > 0 ? 1 : 0;
    return;
  }
  if (IsCanonicalOrder(data_, num_rows_, arity)) return;
  if (arity_ == 1) {
    std::sort(data_.begin(), data_.end());
    data_.erase(std::unique(data_.begin(), data_.end()), data_.end());
    num_rows_ = data_.size();
    return;
  }
  if (arity_ == 2) {
    // Pack each row into one uint64 so the sort runs on plain integers.
    std::vector<uint64_t> packed(num_rows_);
    for (size_t i = 0; i < num_rows_; ++i) {
      packed[i] = (static_cast<uint64_t>(data_[2 * i]) << 32) | data_[2 * i + 1];
    }
    std::sort(packed.begin(), packed.end());
    packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
    num_rows_ = packed.size();
    data_.resize(num_rows_ * 2);
    for (size_t i = 0; i < num_rows_; ++i) {
      data_[2 * i] = static_cast<Value>(packed[i] >> 32);
      data_[2 * i + 1] = static_cast<Value>(packed[i]);
    }
    return;
  }
  // General arity: argsort row indices, then gather unique rows.
  std::vector<uint32_t> index(num_rows_);
  std::iota(index.begin(), index.end(), 0u);
  const Value* base = data_.data();
  std::sort(index.begin(), index.end(), [&](uint32_t a, uint32_t b) {
    return CompareValues(base + a * arity, base + b * arity, arity) < 0;
  });
  std::vector<Value> sorted;
  sorted.reserve(data_.size());
  size_t out_rows = 0;
  for (size_t i = 0; i < num_rows_; ++i) {
    const Value* row = base + index[i] * arity;
    if (out_rows > 0 &&
        CompareValues(sorted.data() + (out_rows - 1) * arity, row, arity) ==
            0) {
      continue;
    }
    sorted.insert(sorted.end(), row, row + arity);
    ++out_rows;
  }
  data_ = std::move(sorted);
  num_rows_ = out_rows;
}

ptrdiff_t Relation::IndexOf(const Value* t) const {
  assert(!dirty_ && "read access to a non-canonical Relation");
  if (arity_ == 0) return num_rows_ > 0 ? 0 : -1;
  const size_t arity = static_cast<size_t>(arity_);
  size_t lo = 0, hi = num_rows_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const int c = CompareValues(base() + mid * arity, t, arity);
    if (c < 0) {
      lo = mid + 1;
    } else if (c > 0) {
      hi = mid;
    } else {
      return static_cast<ptrdiff_t>(mid);
    }
  }
  return -1;
}

std::pair<size_t, size_t> Relation::PrefixRange(const Value* prefix,
                                                size_t len, size_t from,
                                                size_t to) const {
  assert(!dirty_ && "read access to a non-canonical Relation");
  const size_t arity = static_cast<size_t>(arity_);
  if (len > arity) {
    // No tuple has a prefix longer than its arity: the range is empty,
    // positioned after the rows ordered before the (truncated) prefix.
    size_t lo = from, hi = to;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (CompareValues(base() + mid * arity, prefix, arity) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return {lo, lo};
  }
  const size_t k = len;
  size_t lo = from, hi = to;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (CompareValues(base() + mid * arity, prefix, k) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const size_t lower = lo;
  hi = to;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (CompareValues(base() + mid * arity, prefix, k) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lower, lo};
}

std::pair<size_t, size_t> Relation::NarrowRange(size_t from, size_t to,
                                                size_t col, Value v) const {
  assert(!dirty_ && "read access to a non-canonical Relation");
  assert(col < static_cast<size_t>(arity_));
  const size_t arity = static_cast<size_t>(arity_);
  const Value* keys = base() + col;
  // Live join ranges shrink fast; a short linear scan beats any search's
  // branch misses on small ranges.
  constexpr size_t kLinearThreshold = 12;
  size_t lo = from;
  if (to - from <= kLinearThreshold) {
    while (lo < to && keys[lo * arity] < v) ++lo;
    size_t end = lo;
    while (end < to && keys[end * arity] == v) ++end;
    return {lo, end};
  }
  // Hybrid galloping search: bisect to a window, vector-scan the rest
  // (see simd.h). Identical results at every SIMD level.
  lo = from + simd::LowerBoundStrided(keys + from * arity, arity, to - from, v);
  if (lo == to || keys[lo * arity] != v) return {lo, lo};
  const size_t hi =
      lo + simd::UpperBoundStrided(keys + lo * arity, arity, to - lo, v);
  return {lo, hi};
}

size_t Relation::GroupEnd(size_t from, size_t to, size_t col) const {
  assert(!dirty_ && "read access to a non-canonical Relation");
  assert(from < to && col < static_cast<size_t>(arity_));
  const size_t arity = static_cast<size_t>(arity_);
  const Value* keys = base() + col;
  const Value v = keys[from * arity];
  // Gallop: value runs are short in practice, so probe forward before
  // falling back to a vectorised upper bound over the remainder.
  size_t end = from + 1;
  size_t step = 1;
  while (end < to && keys[end * arity] == v) {
    end += step;
    step *= 2;
  }
  const size_t lo = end - step / 2;  // Last known-equal position + 1.
  const size_t hi = end < to ? end : to;
  return lo + simd::UpperBoundStrided(keys + lo * arity, arity, hi - lo, v);
}

Relation Relation::Project(const std::vector<int>& positions) const {
  assert(!dirty_ && "read access to a non-canonical Relation");
  Relation out(static_cast<int>(positions.size()));
  out.data_.reserve(num_rows_ * positions.size());
  const size_t arity = static_cast<size_t>(arity_);
  for (size_t i = 0; i < num_rows_; ++i) {
    const Value* row = base() + i * arity;
    Value* dst = out.AppendRow();
    for (size_t j = 0; j < positions.size(); ++j) {
      assert(positions[j] >= 0 && positions[j] < arity_);
      dst[j] = row[positions[j]];
    }
  }
  out.Canonicalize();
  return out;
}

Relation Relation::Reorder(const std::vector<int>& order) const {
  assert(static_cast<int>(order.size()) == arity_);
  return Project(order);
}

bool Relation::operator==(const Relation& other) const {
  assert(!dirty_ && !other.dirty_ &&
         "comparing non-canonical Relations");
  return arity_ == other.arity_ && num_rows_ == other.num_rows_ &&
         flat() == other.flat();
}

}  // namespace cqcount
