#include "relational/zone_maps.h"

#include "relational/simd.h"

namespace cqcount {

ZoneMaps ZoneMaps::Build(const Value* base, int arity, size_t rows) {
  ZoneMaps z;
  if (arity <= 0 || rows == 0) return z;
  z.arity_ = arity;
  z.num_rows_ = rows;
  z.num_blocks_ = NumBlocks(rows);
  z.owned_.resize(z.entry_count());
  const size_t stride = static_cast<size_t>(arity);
  for (size_t b = 0; b < z.num_blocks_; ++b) {
    const size_t first = b * kBlockRows;
    const size_t count =
        first + kBlockRows <= rows ? kBlockRows : rows - first;
    for (size_t c = 0; c < stride; ++c) {
      Value mn = 0, mx = 0;
      simd::MinMaxStrided(base + first * stride + c, stride, count, &mn, &mx);
      const size_t at = (b * stride + c) * 2;
      z.owned_[at] = mn;
      z.owned_[at + 1] = mx;
    }
  }
  return z;
}

ZoneMaps ZoneMaps::Borrow(const Value* min_max, int arity, size_t rows) {
  ZoneMaps z;
  if (arity <= 0 || rows == 0) return z;
  z.arity_ = arity;
  z.num_rows_ = rows;
  z.num_blocks_ = NumBlocks(rows);
  z.borrowed_ = min_max;
  return z;
}

bool ZoneMaps::MaybeHasValueInRange(int col, Value lo, Value hi) const {
  if (lo >= hi) return false;
  if (num_blocks_ == 0) return true;  // No metadata: cannot prove absence.
  assert(col >= 0 && col < arity_);
  const Value* e = entries();
  const size_t stride = static_cast<size_t>(arity_) * 2;
  const size_t at0 = static_cast<size_t>(col) * 2;
  for (size_t b = 0; b < num_blocks_; ++b) {
    const Value mn = e[b * stride + at0];
    const Value mx = e[b * stride + at0 + 1];
    // Block range [mn, mx] intersects [lo, hi-1]?
    if (mn <= hi - 1 && mx >= lo) return true;
  }
  return false;
}

}  // namespace cqcount
