#include "relational/zone_maps.h"

#include "relational/simd.h"

namespace cqcount {

ZoneMaps ZoneMaps::Build(const Value* base, int arity, size_t rows) {
  ZoneMaps z;
  if (arity <= 0 || rows == 0) return z;
  z.arity_ = arity;
  z.num_rows_ = rows;
  z.num_blocks_ = NumBlocks(rows);
  z.owned_.resize(z.entry_count());
  const size_t stride = static_cast<size_t>(arity);
  for (size_t b = 0; b < z.num_blocks_; ++b) {
    const size_t first = b * kBlockRows;
    const size_t count =
        first + kBlockRows <= rows ? kBlockRows : rows - first;
    for (size_t c = 0; c < stride; ++c) {
      Value mn = 0, mx = 0;
      simd::MinMaxStrided(base + first * stride + c, stride, count, &mn, &mx);
      const size_t at = (b * stride + c) * 2;
      z.owned_[at] = mn;
      z.owned_[at + 1] = mx;
    }
  }
  z.ComputeColumnBounds();
  return z;
}

ZoneMaps ZoneMaps::Borrow(const Value* min_max, int arity, size_t rows) {
  ZoneMaps z;
  if (arity <= 0 || rows == 0) return z;
  z.arity_ = arity;
  z.num_rows_ = rows;
  z.num_blocks_ = NumBlocks(rows);
  z.borrowed_ = min_max;
  z.ComputeColumnBounds();
  return z;
}

void ZoneMaps::ComputeColumnBounds() {
  const size_t arity = static_cast<size_t>(arity_);
  col_min_.assign(arity, 0);
  col_max_.assign(arity, 0);
  const Value* e = entries();
  for (size_t c = 0; c < arity; ++c) {
    Value mn = e[c * 2], mx = e[c * 2 + 1];
    for (size_t b = 1; b < num_blocks_; ++b) {
      const size_t at = (b * arity + c) * 2;
      if (e[at] < mn) mn = e[at];
      if (e[at + 1] > mx) mx = e[at + 1];
    }
    col_min_[c] = mn;
    col_max_[c] = mx;
  }
}

bool ZoneMaps::MaybeHasValueInRange(int col, Value lo, Value hi) const {
  if (lo >= hi) return false;
  if (num_blocks_ == 0) return true;  // No metadata: cannot prove absence.
  assert(col >= 0 && col < arity_);
  const size_t c = static_cast<size_t>(col);
  const Value last = hi - 1;  // Inclusive upper end of the probe range.
  // Whole-relation bounds decide most probes in O(1): outside the span
  // is a proof of absence, and the column's min/max are actual row
  // values, so either endpoint inside [lo, last] is a witness.
  if (col_min_[c] > last || col_max_[c] < lo) return false;
  if (col_min_[c] >= lo || col_max_[c] <= last) return true;
  // Remaining case: the range lies strictly inside the column's span
  // (col_min < lo <= last < col_max) — only per-block bounds can decide.
  const Value* e = entries();
  const size_t stride = static_cast<size_t>(arity_) * 2;
  const size_t at0 = c * 2;
  if (col == 0) {
    // Canonical (lexicographic) row order sorts column 0, so per-block
    // [min, max] intervals are non-decreasing: binary-search the first
    // block whose max reaches lo; the range intersects some block iff it
    // intersects that one.
    size_t b_lo = 0, b_hi = num_blocks_;
    while (b_lo < b_hi) {
      const size_t mid = b_lo + (b_hi - b_lo) / 2;
      if (e[mid * stride + at0 + 1] < lo) {
        b_lo = mid + 1;
      } else {
        b_hi = mid;
      }
    }
    return b_lo < num_blocks_ && e[b_lo * stride + at0] <= last;
  }
  // Other columns are unsorted: linear walk, capped so one probe never
  // costs more than the sub-count it tries to skip.
  const size_t scan =
      num_blocks_ < kMaxProbeBlocks ? num_blocks_ : kMaxProbeBlocks;
  for (size_t b = 0; b < scan; ++b) {
    const Value mn = e[b * stride + at0];
    const Value mx = e[b * stride + at0 + 1];
    // Block range [mn, mx] intersects [lo, last]?
    if (mn <= last && mx >= lo) return true;
  }
  // Either proved empty (all blocks checked) or gave up at the cap;
  // giving up must claim a possible witness to stay sound.
  return scan < num_blocks_;
}

}  // namespace cqcount
