// Zone maps: per-block, per-column min/max summaries of a canonical
// relation, the pruning metadata of the columnar storage layer.
//
// A relation's rows are cut into fixed-size blocks of kBlockRows tuples
// (the last block may be short). For block b and column c the zone map
// records the minimum and maximum value of that column within the block.
// Because the summary is exact, "no block's [min, max] intersects
// [lo, hi)" is a sound emptiness proof: the relation has no row whose
// column c value lies in [lo, hi), so a box-restricted count whose box
// pins a variable of that column to [lo, hi) is exactly zero and the
// sampler can skip the whole sub-count.
//
// Layout is a flat array so it serialises into segment files unchanged:
// entry (b, c) occupies min_max[(b*arity + c)*2] (min) and
// min_max[(b*arity + c)*2 + 1] (max). Zone maps are immutable once built
// and can either own their buffer (built from an in-memory relation) or
// borrow it (mmap'd from a segment; the owner keeps the mapping alive).
#ifndef CQCOUNT_RELATIONAL_ZONE_MAPS_H_
#define CQCOUNT_RELATIONAL_ZONE_MAPS_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cqcount {

class ZoneMaps {
 public:
  using Value = uint32_t;

  /// Rows per zone block. Fixed for the on-disk format (segment headers
  /// record it so future readers can detect a change).
  static constexpr size_t kBlockRows = 1024;

  /// Cap on blocks a single MaybeHasValueInRange probe will walk for a
  /// non-sorted column before giving up (returning true is always
  /// sound). Bounds the per-probe cost on huge relations — the sampler
  /// fires probes twice per descent level, so an O(blocks) walk on a
  /// 10^8-row relation (~10^5 blocks) would cost more than the
  /// sub-counts it tries to skip. Column 0 is exempt: canonical order
  /// makes it binary-searchable.
  static constexpr size_t kMaxProbeBlocks = 4096;

  /// Number of blocks covering `rows` rows.
  static size_t NumBlocks(size_t rows) {
    return (rows + kBlockRows - 1) / kBlockRows;
  }
  /// Flat entry count (Values) for a relation of this shape.
  static size_t EntryCount(int arity, size_t rows) {
    return NumBlocks(rows) * static_cast<size_t>(arity) * 2;
  }

  ZoneMaps() = default;

  /// Builds zone maps by scanning an arity-strided row buffer.
  static ZoneMaps Build(const Value* base, int arity, size_t rows);

  /// Adopts precomputed entries (EntryCount(arity, rows) Values laid out
  /// as documented above) without copying; the caller guarantees the
  /// buffer outlives the ZoneMaps (segment readers hold the mapping).
  static ZoneMaps Borrow(const Value* min_max, int arity, size_t rows);

  bool empty() const { return num_blocks_ == 0; }
  int arity() const { return arity_; }
  size_t num_blocks() const { return num_blocks_; }
  size_t num_rows() const { return num_rows_; }
  /// The flat entry buffer (recomputed per call so copies/moves of an
  /// owning ZoneMaps never dangle).
  const Value* entries() const {
    return borrowed_ != nullptr ? borrowed_ : owned_.data();
  }
  size_t entry_count() const {
    return num_blocks_ * static_cast<size_t>(arity_) * 2;
  }

  /// Min/max of column `col` within block `b`.
  std::pair<Value, Value> BlockMinMax(size_t b, int col) const {
    assert(b < num_blocks_ && col >= 0 && col < arity_);
    const size_t at = (b * static_cast<size_t>(arity_) +
                       static_cast<size_t>(col)) *
                      2;
    return {entries()[at], entries()[at + 1]};
  }

  /// True unless the zone maps PROVE no row has column `col` in the
  /// half-open range [lo, hi). False positives are allowed (a block may
  /// straddle the range without containing a value in it); false
  /// negatives are not. An empty range never has a witness.
  ///
  /// Cost: O(1) when the whole-relation column bounds decide (the common
  /// case — the range misses the relation's span entirely or contains
  /// one of its endpoints), O(log blocks) for column 0 (canonical order
  /// sorts it, so block intervals binary-search), and a walk capped at
  /// kMaxProbeBlocks for other columns.
  bool MaybeHasValueInRange(int col, Value lo, Value hi) const;

 private:
  /// Folds per-block entries into whole-relation per-column min/max
  /// (col_min_/col_max_), the O(1) early-out of every probe. O(blocks),
  /// run once at Build/Borrow.
  void ComputeColumnBounds();

  int arity_ = 0;
  size_t num_rows_ = 0;
  size_t num_blocks_ = 0;
  const Value* borrowed_ = nullptr;  // Set iff adopting an external buffer.
  std::vector<Value> owned_;
  std::vector<Value> col_min_;  // Whole-relation bounds, arity_ entries
  std::vector<Value> col_max_;  // each (empty iff no blocks).
};

}  // namespace cqcount

#endif  // CQCOUNT_RELATIONAL_ZONE_MAPS_H_
