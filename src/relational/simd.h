// SIMD kernels for the columnar storage hot paths.
//
// Dispatch model
// --------------
// Every kernel exists at three levels — scalar, SSE2, AVX2 — and all
// levels compute EXACTLY the same result (these are exact integer
// algorithms, not approximations), so the level is purely a speed knob
// and estimates stay bit-identical whichever path runs. The active level
// is resolved once per process from CPU capability (via
// __builtin_cpu_supports) clamped by the CQCOUNT_SIMD environment
// variable ("scalar"/"off", "sse2", "avx2"); tests and benches can pin a
// level explicitly with SetLevelForTesting or call the *At entry points.
//
// The binary stays portable: AVX2 code is compiled per-function with
// __attribute__((target("avx2"))) instead of a global -mavx2, so nothing
// above baseline ISA executes unless dispatch selects it at runtime.
//
// Kernels
// -------
// The columnar layout stores tuple i's column c at base[i*stride + c],
// so every scan here is a strided walk over 32-bit unsigned values:
//   - LowerBoundStrided / UpperBoundStrided: hybrid gallop — binary
//     search down to one block, then a vectorised linear scan (the
//     trie-join NarrowRange / GroupEnd step).
//   - LinearLowerBoundStridedAt / LinearUpperBoundStridedAt: the raw
//     linear-scan building blocks, exposed so tests and benches can
//     compare levels at full scan bandwidth.
//   - MinMaxStrided: one column's min/max (zone-map construction).
//   - ProbeStampsBlock: up to 64 mixed-radix epoch-stamp existence
//     probes at once, returning a survivor bitmask (the semijoin
//     word-parallel probe in the decomposition solver).
#ifndef CQCOUNT_RELATIONAL_SIMD_H_
#define CQCOUNT_RELATIONAL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace cqcount {
namespace simd {

using Value = uint32_t;

enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Human-readable level name ("scalar", "sse2", "avx2").
const char* LevelName(Level level);

/// Highest level this CPU supports (compile-target and cpuid gated).
Level MaxSupportedLevel();

/// The level dispatch uses: MaxSupportedLevel() clamped by CQCOUNT_SIMD
/// ("scalar"/"off"/"0" -> scalar, "sse2", "avx2") and by
/// SetLevelForTesting. Resolved once, then constant-time.
Level ActiveLevel();

/// Pins the active level (clamped to MaxSupportedLevel) for tests and
/// benches. Not thread-safe against concurrent kernel calls; call it
/// from single-threaded setup code only.
void SetLevelForTesting(Level level);

/// First index i in [0, n) with base[i*stride] >= v, else n. The keys
/// base[0], base[stride], .. must be sorted ascending. Hybrid: binary
/// search to a small window, then a vectorised scan at ActiveLevel().
size_t LowerBoundStrided(const Value* base, size_t stride, size_t n,
                         Value v);
/// First index i in [0, n) with base[i*stride] > v, else n.
size_t UpperBoundStrided(const Value* base, size_t stride, size_t n,
                         Value v);

/// Pure linear-scan variants pinned to an explicit level; the hybrid
/// entry points bound these to one window. Exposed so tests can assert
/// cross-level equality and benches can measure scan bandwidth.
size_t LinearLowerBoundStridedAt(Level level, const Value* base,
                                 size_t stride, size_t n, Value v);
size_t LinearUpperBoundStridedAt(Level level, const Value* base,
                                 size_t stride, size_t n, Value v);

/// Min and max of base[i*stride] over i in [0, n); n must be > 0.
void MinMaxStrided(const Value* base, size_t stride, size_t n,
                   Value* min_out, Value* max_out);
void MinMaxStridedAt(Level level, const Value* base, size_t stride,
                     size_t n, Value* min_out, Value* max_out);

/// Word-parallel existence probe over an epoch-stamped table of `space`
/// slots: for each row r in [0, n) (n <= 64) computes the mixed-radix
/// code
///   code_r = sum_k radix[k] * rows[r*width + cols[k]]
/// and sets bit r of the result iff code_r < space and
/// stamps[code_r] == epoch. Codes at/past `space` — only possible when
/// row values escaped universe certification, i.e. corrupt storage —
/// are misses at every level, never out-of-bounds accesses.
uint64_t ProbeStampsBlock(const uint32_t* stamps, size_t space,
                          uint32_t epoch, const Value* rows, size_t width,
                          const int* cols, const uint32_t* radix,
                          size_t ncols, size_t n);
uint64_t ProbeStampsBlockAt(Level level, const uint32_t* stamps,
                            size_t space, uint32_t epoch, const Value* rows,
                            size_t width, const int* cols,
                            const uint32_t* radix, size_t ncols, size_t n);

}  // namespace simd
}  // namespace cqcount

#endif  // CQCOUNT_RELATIONAL_SIMD_H_
