// Memory-mapped columnar segment files: the out-of-core storage backend.
//
// One segment file packs one whole database — universe size plus every
// relation — into a page-aligned, mmap-able layout:
//
//   offset 0                FileHeader (64 B): magic "CQSEGDB1", version,
//                           zone-block rows, universe size, relation
//                           count, directory offset, total file bytes
//   per relation            data block   (page-aligned): rows*arity
//                           uint32 values, row-major, canonical sort
//                           order (sorted, duplicate-free — the Relation
//                           invariant, preserved on disk)
//                           zone block   (64 B-aligned): per-block
//                           per-column min/max (ZoneMaps layout)
//   directory_offset        relation_count * DirEntry (64 B each):
//                           name, arity, rows, data/zone offsets
//   tail                    Trailer (32 B): data checksum, directory
//                           checksum, end magic "CQSEGEND", zone checksum
//
// Checksums are FNV-1a 64. Opening verifies the header, directory,
// trailer AND the zone checksum (all O(blocks) bytes) but NOT the data
// checksum — that keeps open O(1) in file size (microseconds for
// 10^8-tuple files; the OS pages data in on demand). Zone blocks must be
// integrity-checked at every open because the O(1) universe
// certification trusts zone maxima in place of the data pages; the data
// checksum covers only the O(rows) data pages and is opt-in via
// verify_data_checksum. All integers are little-endian host format; the
// format is an operational cache, not an archival interchange format.
//
// A SegmentView owns the mapping; OpenSegmentDatabase wraps each
// relation in a Relation::FromMappedSpan that shares the view, so the
// Database reads identically to an in-memory one (same canonical order,
// same zone maps => bit-identical estimates) while costing no load time
// and no resident memory beyond what queries actually touch.
#ifndef CQCOUNT_RELATIONAL_SEGMENT_H_
#define CQCOUNT_RELATIONAL_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "relational/structure.h"
#include "util/status.h"

namespace cqcount {

/// Maximum relation-name length storable in a directory entry.
constexpr size_t kSegmentMaxNameLen = 31;

/// Streams a database into a segment file: Create, then for each
/// relation either AddRelation (from an in-memory Relation) or
/// BeginRelation/AppendRow/EndRelation (rows must arrive in strictly
/// ascending canonical order — lets writers emit 10^8-tuple relations
/// without materialising them), then Finish. Abandoning a writer without
/// Finish leaves an unreadable file (the header stays unpatched).
class SegmentWriter {
 public:
  static StatusOr<std::unique_ptr<SegmentWriter>> Create(
      const std::string& path, uint64_t universe_size);
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Starts a relation. Names are limited to kSegmentMaxNameLen bytes and
  /// must be unique; arity must be >= 1 (arity-0 relations carry no
  /// columnar payload and are not representable in a segment).
  Status BeginRelation(const std::string& name, int arity);
  /// Appends one row (arity values, each < universe size, strictly
  /// greater than the previous row in lexicographic order).
  Status AppendRow(const Value* row);
  /// Closes the open relation and writes its zone block.
  Status EndRelation();

  /// BeginRelation + AppendRow* + EndRelation over a canonical Relation.
  Status AddRelation(const std::string& name, const Relation& relation);

  /// Writes directory + trailer, patches the header, flushes and closes.
  Status Finish();

 private:
  SegmentWriter() = default;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct SegmentOpenOptions {
  /// Also verify the full data checksum (reads every byte: O(file), only
  /// for integrity audits; the default keeps open O(1)).
  bool verify_data_checksum = false;
};

/// A read-only mapping of one segment file. Immutable and internally
/// synchronisation-free after Open, so any number of threads may read
/// through one view concurrently. Held by shared_ptr; Relations created
/// over it keep it alive.
class SegmentView {
 public:
  struct RelationEntry {
    std::string name;
    int arity = 0;
    uint64_t rows = 0;
    const Value* data = nullptr;   // rows*arity values, canonical order.
    const Value* zones = nullptr;  // ZoneMaps::EntryCount(arity, rows).
  };

  static StatusOr<std::shared_ptr<const SegmentView>> Open(
      const std::string& path, const SegmentOpenOptions& options = {});
  ~SegmentView();

  SegmentView(const SegmentView&) = delete;
  SegmentView& operator=(const SegmentView&) = delete;

  uint64_t universe_size() const { return universe_size_; }
  const std::vector<RelationEntry>& relations() const { return relations_; }
  /// Total bytes mapped (the file size).
  size_t mapped_bytes() const { return map_len_; }
  /// Pages of the mapping currently resident in memory (mincore walk:
  /// O(pages), diagnostics only). Updates the storage.pages_resident
  /// gauge as a side effect.
  StatusOr<size_t> ResidentPages() const;

 private:
  SegmentView() = default;
  void* map_ = nullptr;
  size_t map_len_ = 0;
  uint64_t universe_size_ = 0;
  std::vector<RelationEntry> relations_;
};

/// True when `path` exists and starts with the segment magic (the
/// format sniff used by LoadDatabaseAuto).
bool LooksLikeSegmentFile(const std::string& path);

/// Packs a canonical database into a segment file.
Status WriteSegmentDatabase(const Database& db, const std::string& path);

/// Opens a segment file as a Database of mmap-backed relations sharing
/// one SegmentView. O(1) in data size; counted in storage.* metrics.
StatusOr<Database> OpenSegmentDatabase(const std::string& path,
                                       const SegmentOpenOptions& options = {});

/// Loads a database from either format: segment files are detected by
/// magic and mmap'd, anything else parses as the text format.
StatusOr<Database> LoadDatabaseAuto(const std::string& path);

}  // namespace cqcount

#endif  // CQCOUNT_RELATIONAL_SEGMENT_H_
