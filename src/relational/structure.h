// Relational structures / databases (Section 2.2).
//
// A structure A has a finite universe U(A) = {0, .., N-1} and, for every
// relation symbol of its signature, a relation of the declared arity.
// Databases are structures (the paper uses them interchangeably).
#ifndef CQCOUNT_RELATIONAL_STRUCTURE_H_
#define CQCOUNT_RELATIONAL_STRUCTURE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/status.h"

namespace cqcount {

/// A relational structure with named relations over a dense universe.
class Structure {
 public:
  Structure() = default;
  /// Creates a structure with universe {0, .., universe_size-1}.
  explicit Structure(uint32_t universe_size)
      : universe_size_(universe_size) {}

  uint32_t universe_size() const { return universe_size_; }
  void set_universe_size(uint32_t n) { universe_size_ = n; }

  /// Declares a relation symbol with the given arity (idempotent when the
  /// arity matches). Fails if redeclared with a different arity.
  Status DeclareRelation(const std::string& name, int arity);

  /// True if `name` is declared.
  bool HasRelation(const std::string& name) const;

  /// Arity of `name`; -1 when undeclared.
  int Arity(const std::string& name) const;

  /// Adds a fact. The relation must be declared, the tuple must have the
  /// right arity and its values must lie in the universe.
  Status AddFact(const std::string& name, Tuple t);

  /// Installs a fully-built relation under `name` (declaring it if
  /// needed), replacing any existing rows — the wholesale path used by
  /// the segment reader to adopt mmap-backed relations and by bulk
  /// loaders. The relation must be canonical; arity conflicts with a
  /// prior declaration fail.
  Status AdoptRelation(const std::string& name, Relation relation);

  /// Builds zone maps on every canonical in-memory relation (mapped
  /// relations already carry theirs). Idempotent; called by the engine at
  /// registration so both storage backends prune identically.
  void BuildZoneMaps();

  /// Canonicalises every relation (sort + dedup). Must be called after
  /// the last AddFact and before the structure is read by the query
  /// layers; afterwards all access is read-only and the structure can be
  /// shared across threads. Idempotent.
  void Canonicalize();

  /// True when every relation is canonical (no staged facts pending).
  bool IsCanonical() const;

  /// The relation for `name` (must be declared).
  const Relation& relation(const std::string& name) const;
  Relation* mutable_relation(const std::string& name);

  /// Declared relation names in sorted order.
  std::vector<std::string> RelationNames() const;

  /// ||A|| = |sig(A)| + |U(A)| + sum_R |R^A| * ar(R) (Section 2.2).
  uint64_t Size() const;

  /// Number of facts across all relations.
  uint64_t NumFacts() const;

 private:
  uint32_t universe_size_ = 0;
  std::map<std::string, Relation> relations_;
};

/// Databases are structures.
using Database = Structure;

}  // namespace cqcount

#endif  // CQCOUNT_RELATIONAL_STRUCTURE_H_
