// Plain-text database serialisation.
//
// Format (whitespace separated, '#' starts a comment line):
//   universe 100
//   relation R 2
//   0 1
//   2 3
//   end
//   relation S 1
//   5
//   end
#ifndef CQCOUNT_RELATIONAL_DATABASE_IO_H_
#define CQCOUNT_RELATIONAL_DATABASE_IO_H_

#include <iosfwd>
#include <string>

#include "relational/structure.h"
#include "util/status.h"

namespace cqcount {

/// Parses a database from text.
StatusOr<Database> ParseDatabase(const std::string& text);

/// Reads a database from a file.
StatusOr<Database> ReadDatabaseFile(const std::string& path);

/// Serialises `db` in the text format.
std::string FormatDatabase(const Database& db);

/// Writes `db` to a file.
Status WriteDatabaseFile(const Database& db, const std::string& path);

}  // namespace cqcount

#endif  // CQCOUNT_RELATIONAL_DATABASE_IO_H_
