#include "relational/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>

#include "obs/metrics.h"
#include "relational/database_io.h"
#include "relational/zone_maps.h"

namespace cqcount {
namespace {

constexpr char kMagic[8] = {'C', 'Q', 'S', 'E', 'G', 'D', 'B', '1'};
constexpr char kEndMagic[8] = {'C', 'Q', 'S', 'E', 'G', 'E', 'N', 'D'};
constexpr uint32_t kVersion = 1;
constexpr uint64_t kDataAlign = 4096;  // Page-align relation data blocks.
constexpr uint64_t kMinorAlign = 64;   // Zone blocks and the directory.

// On-disk structs. Fields are naturally aligned and the format is
// host-endian (an operational cache, not an interchange format).
struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t zone_block_rows;
  uint64_t universe_size;
  uint32_t relation_count;
  uint32_t pad0;
  uint64_t directory_offset;
  uint64_t file_bytes;
  uint64_t reserved[2];
};
static_assert(sizeof(FileHeader) == 64, "segment header must be 64 bytes");

struct DirEntry {
  char name[kSegmentMaxNameLen + 1];  // NUL-terminated.
  uint32_t arity;
  uint32_t pad0;
  uint64_t rows;
  uint64_t data_offset;
  uint64_t zone_offset;
};
static_assert(sizeof(DirEntry) == 64, "directory entry must be 64 bytes");

struct Trailer {
  uint64_t data_checksum;
  uint64_t dir_checksum;
  char end_magic[8];
  // Zone blocks get their own ALWAYS-verified checksum (O(blocks) bytes,
  // so open stays O(1) in data size): the O(1) open certifies every
  // value against the universe from zone maxima alone, so the zones must
  // be integrity-checked even when the O(rows) data audit is skipped —
  // otherwise corrupt zones that understate the data would let
  // out-of-universe values through to index-by-value sites.
  uint64_t zone_checksum;
};
static_assert(sizeof(Trailer) == 32, "segment trailer must be 32 bytes");

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvUpdate(uint64_t h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// storage.* metrics, registered eagerly so a `stats` dump lists the full
// name set before the first segment is touched.
struct StorageMetrics {
  obs::Counter& segment_opens = obs::MetricRegistry::Global().GetCounter(
      "storage.segment_opens", "segment databases opened (mmap)");
  obs::Histogram& segment_open_us = obs::MetricRegistry::Global().GetHistogram(
      "storage.segment_open_us",
      "segment open latency, microseconds (O(1) in data size)");
  obs::Gauge& mapped_bytes = obs::MetricRegistry::Global().GetGauge(
      "storage.mapped_bytes", "bytes of live segment mappings");
  obs::Gauge& pages_resident = obs::MetricRegistry::Global().GetGauge(
      "storage.pages_resident",
      "resident pages of the last-audited segment mapping (mincore)");
  obs::Counter& zone_probes = obs::MetricRegistry::Global().GetCounter(
      "storage.zone_probes", "zone-map emptiness probes before sub-counts");
  obs::Counter& zone_prunes = obs::MetricRegistry::Global().GetCounter(
      "storage.zone_prunes",
      "sub-box counts skipped because zone maps proved them empty");

  static StorageMetrics& Get() {
    static StorageMetrics* metrics = new StorageMetrics();
    return *metrics;
  }
};

[[maybe_unused]] const StorageMetrics& kStorageMetricsInit =
    StorageMetrics::Get();

Status Invalid(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("segment file " + path + ": " + what);
}

}  // namespace

// ---------------------------------------------------------------------------
// SegmentWriter
// ---------------------------------------------------------------------------

struct SegmentWriter::Impl {
  std::string path;
  std::FILE* file = nullptr;
  uint64_t offset = 0;
  uint64_t universe_size = 0;
  uint64_t data_checksum = kFnvOffset;  // Data pages only (opt-in audit).
  uint64_t zone_checksum = kFnvOffset;  // Zone blocks (always verified).
  std::vector<DirEntry> directory;
  std::set<std::string> names;
  bool finished = false;

  // Open-relation state.
  bool in_relation = false;
  std::string rel_name;
  int arity = 0;
  uint64_t rows = 0;
  uint64_t data_offset = 0;
  Tuple prev_row;
  std::vector<Value> zone_entries;
  std::vector<Value> buffer;  // Staged rows, flushed in large writes.

  static constexpr size_t kBufferValues = 1 << 16;

  Status WriteRaw(const void* p, size_t n, bool checksum) {
    if (std::fwrite(p, 1, n, file) != n) {
      return Status::Internal("segment write failed: " + path);
    }
    if (checksum) data_checksum = FnvUpdate(data_checksum, p, n);
    offset += n;
    return Status::Ok();
  }

  Status PadTo(uint64_t align) {
    static const char zeros[kDataAlign] = {};
    const uint64_t rem = offset % align;
    if (rem == 0) return Status::Ok();
    return WriteRaw(zeros, static_cast<size_t>(align - rem), false);
  }

  Status FlushBuffer() {
    if (buffer.empty()) return Status::Ok();
    Status s = WriteRaw(buffer.data(), buffer.size() * sizeof(Value), true);
    buffer.clear();
    return s;
  }
};

SegmentWriter::~SegmentWriter() {
  if (impl_ != nullptr && impl_->file != nullptr) std::fclose(impl_->file);
}

StatusOr<std::unique_ptr<SegmentWriter>> SegmentWriter::Create(
    const std::string& path, uint64_t universe_size) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot create segment file: " + path);
  }
  auto writer = std::unique_ptr<SegmentWriter>(new SegmentWriter());
  writer->impl_ = std::make_unique<Impl>();
  writer->impl_->path = path;
  writer->impl_->file = file;
  writer->impl_->universe_size = universe_size;
  // Header placeholder; Finish() seeks back and writes the real one.
  const char zeros[sizeof(FileHeader)] = {};
  Status s = writer->impl_->WriteRaw(zeros, sizeof(FileHeader), false);
  if (!s.ok()) return s;
  return writer;
}

Status SegmentWriter::BeginRelation(const std::string& name, int arity) {
  Impl& im = *impl_;
  if (im.finished) return Status::FailedPrecondition("writer already finished");
  if (im.in_relation) {
    return Status::FailedPrecondition("BeginRelation while a relation is open");
  }
  if (arity < 1) {
    return Status::InvalidArgument(
        "segment relations must have arity >= 1: " + name);
  }
  if (name.empty() || name.size() > kSegmentMaxNameLen) {
    return Status::InvalidArgument("segment relation name too long: " + name);
  }
  if (!im.names.insert(name).second) {
    return Status::InvalidArgument("duplicate relation in segment: " + name);
  }
  Status s = im.PadTo(kDataAlign);
  if (!s.ok()) return s;
  im.in_relation = true;
  im.rel_name = name;
  im.arity = arity;
  im.rows = 0;
  im.data_offset = im.offset;
  im.prev_row.clear();
  im.zone_entries.clear();
  im.buffer.clear();
  im.buffer.reserve(Impl::kBufferValues);
  return Status::Ok();
}

Status SegmentWriter::AppendRow(const Value* row) {
  Impl& im = *impl_;
  if (!im.in_relation) {
    return Status::FailedPrecondition("AppendRow without BeginRelation");
  }
  const size_t arity = static_cast<size_t>(im.arity);
  for (size_t c = 0; c < arity; ++c) {
    if (row[c] >= im.universe_size) {
      return Status::InvalidArgument("row value outside universe in " +
                                     im.rel_name);
    }
  }
  if (im.rows > 0 &&
      CompareValues(im.prev_row.data(), row, arity) >= 0) {
    return Status::InvalidArgument(
        "rows must be strictly ascending (canonical order) in " +
        im.rel_name);
  }
  // Zone accumulation: extend on block boundary, else fold min/max.
  const size_t block = static_cast<size_t>(im.rows / ZoneMaps::kBlockRows);
  if (block * arity * 2 >= im.zone_entries.size()) {
    for (size_t c = 0; c < arity; ++c) {
      im.zone_entries.push_back(row[c]);
      im.zone_entries.push_back(row[c]);
    }
  } else {
    Value* entry = im.zone_entries.data() + block * arity * 2;
    for (size_t c = 0; c < arity; ++c) {
      if (row[c] < entry[c * 2]) entry[c * 2] = row[c];
      if (row[c] > entry[c * 2 + 1]) entry[c * 2 + 1] = row[c];
    }
  }
  im.prev_row.assign(row, row + arity);
  im.buffer.insert(im.buffer.end(), row, row + arity);
  ++im.rows;
  if (im.buffer.size() + arity > Impl::kBufferValues) return im.FlushBuffer();
  return Status::Ok();
}

Status SegmentWriter::EndRelation() {
  Impl& im = *impl_;
  if (!im.in_relation) {
    return Status::FailedPrecondition("EndRelation without BeginRelation");
  }
  Status s = im.FlushBuffer();
  if (!s.ok()) return s;
  s = im.PadTo(kMinorAlign);
  if (!s.ok()) return s;
  const uint64_t zone_offset = im.offset;
  if (!im.zone_entries.empty()) {
    const size_t zone_bytes = im.zone_entries.size() * sizeof(Value);
    s = im.WriteRaw(im.zone_entries.data(), zone_bytes, false);
    if (!s.ok()) return s;
    im.zone_checksum =
        FnvUpdate(im.zone_checksum, im.zone_entries.data(), zone_bytes);
  }
  DirEntry entry{};
  std::memcpy(entry.name, im.rel_name.data(), im.rel_name.size());
  entry.arity = static_cast<uint32_t>(im.arity);
  entry.rows = im.rows;
  entry.data_offset = im.data_offset;
  entry.zone_offset = zone_offset;
  im.directory.push_back(entry);
  im.in_relation = false;
  return Status::Ok();
}

Status SegmentWriter::AddRelation(const std::string& name,
                                  const Relation& relation) {
  if (!relation.canonical()) {
    return Status::FailedPrecondition("packing a non-canonical relation: " +
                                      name);
  }
  Status s = BeginRelation(name, relation.arity());
  if (!s.ok()) return s;
  const Value* base = relation.base();
  const size_t arity = static_cast<size_t>(relation.arity());
  for (size_t i = 0; i < relation.size(); ++i) {
    s = AppendRow(base + i * arity);
    if (!s.ok()) return s;
  }
  return EndRelation();
}

Status SegmentWriter::Finish() {
  Impl& im = *impl_;
  if (im.finished) return Status::FailedPrecondition("writer already finished");
  if (im.in_relation) {
    return Status::FailedPrecondition("Finish with a relation still open");
  }
  Status s = im.PadTo(kMinorAlign);
  if (!s.ok()) return s;
  const uint64_t directory_offset = im.offset;
  if (!im.directory.empty()) {
    s = im.WriteRaw(im.directory.data(),
                    im.directory.size() * sizeof(DirEntry), false);
    if (!s.ok()) return s;
  }

  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.zone_block_rows = static_cast<uint32_t>(ZoneMaps::kBlockRows);
  header.universe_size = im.universe_size;
  header.relation_count = static_cast<uint32_t>(im.directory.size());
  header.directory_offset = directory_offset;
  header.file_bytes = im.offset + sizeof(Trailer);

  Trailer trailer{};
  trailer.data_checksum = im.data_checksum;
  trailer.zone_checksum = im.zone_checksum;
  uint64_t dir_checksum = FnvUpdate(kFnvOffset, &header, sizeof(header));
  dir_checksum = FnvUpdate(dir_checksum, im.directory.data(),
                           im.directory.size() * sizeof(DirEntry));
  trailer.dir_checksum = dir_checksum;
  std::memcpy(trailer.end_magic, kEndMagic, sizeof(kEndMagic));
  s = im.WriteRaw(&trailer, sizeof(trailer), false);
  if (!s.ok()) return s;

  if (std::fseek(im.file, 0, SEEK_SET) != 0 ||
      std::fwrite(&header, 1, sizeof(header), im.file) != sizeof(header) ||
      std::fflush(im.file) != 0) {
    return Status::Internal("segment header write failed: " + im.path);
  }
  std::fclose(im.file);
  im.file = nullptr;
  im.finished = true;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// SegmentView
// ---------------------------------------------------------------------------

SegmentView::~SegmentView() {
  if (map_ != nullptr) {
    StorageMetrics::Get().mapped_bytes.Add(-static_cast<int64_t>(map_len_));
    ::munmap(map_, map_len_);
  }
}

StatusOr<std::shared_ptr<const SegmentView>> SegmentView::Open(
    const std::string& path, const SegmentOpenOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open segment file: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal("cannot stat segment file: " + path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len < sizeof(FileHeader) + sizeof(Trailer)) {
    ::close(fd);
    return Invalid(path, "truncated (smaller than header + trailer)");
  }
  void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps its own reference.
  if (map == MAP_FAILED) {
    return Status::Internal("mmap failed for segment file: " + path);
  }
  auto view = std::shared_ptr<SegmentView>(new SegmentView());
  view->map_ = map;
  view->map_len_ = len;
  StorageMetrics::Get().mapped_bytes.Add(static_cast<int64_t>(len));

  const unsigned char* bytes = static_cast<const unsigned char*>(map);
  FileHeader header{};
  std::memcpy(&header, bytes, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Invalid(path, "bad magic (not a segment file)");
  }
  if (header.version != kVersion) {
    return Invalid(path,
                   "unsupported version " + std::to_string(header.version));
  }
  if (header.zone_block_rows != ZoneMaps::kBlockRows) {
    return Invalid(path, "zone block size mismatch");
  }
  if (header.file_bytes != len) {
    return Invalid(path, "truncated (header records " +
                             std::to_string(header.file_bytes) +
                             " bytes, file has " + std::to_string(len) + ")");
  }
  const uint64_t dir_bytes =
      static_cast<uint64_t>(header.relation_count) * sizeof(DirEntry);
  if (header.directory_offset < sizeof(FileHeader) ||
      header.directory_offset % kMinorAlign != 0 ||
      header.directory_offset + dir_bytes + sizeof(Trailer) != len) {
    return Invalid(path, "corrupt directory bounds");
  }
  Trailer trailer{};
  std::memcpy(&trailer, bytes + len - sizeof(Trailer), sizeof(trailer));
  if (std::memcmp(trailer.end_magic, kEndMagic, sizeof(kEndMagic)) != 0) {
    return Invalid(path, "missing end magic (incomplete write?)");
  }
  uint64_t dir_checksum = FnvUpdate(kFnvOffset, &header, sizeof(header));
  dir_checksum = FnvUpdate(dir_checksum, bytes + header.directory_offset,
                           static_cast<size_t>(dir_bytes));
  if (dir_checksum != trailer.dir_checksum) {
    return Invalid(path, "directory checksum mismatch");
  }

  view->universe_size_ = header.universe_size;
  view->relations_.reserve(header.relation_count);
  uint64_t data_checksum = kFnvOffset;
  uint64_t zone_checksum = kFnvOffset;
  std::set<std::string> seen;
  for (uint32_t i = 0; i < header.relation_count; ++i) {
    DirEntry entry{};
    std::memcpy(&entry, bytes + header.directory_offset + i * sizeof(DirEntry),
                sizeof(entry));
    if (entry.name[0] == '\0' ||
        std::memchr(entry.name, '\0', sizeof(entry.name)) == nullptr) {
      return Invalid(path, "corrupt relation name in directory");
    }
    RelationEntry rel;
    rel.name = entry.name;
    if (!seen.insert(rel.name).second) {
      return Invalid(path, "duplicate relation: " + rel.name);
    }
    if (entry.arity == 0) {
      return Invalid(path, "arity-0 relation not representable: " + rel.name);
    }
    if (entry.arity > (uint64_t{1} << 20)) {
      return Invalid(path, "implausible arity for " + rel.name);
    }
    rel.arity = static_cast<int>(entry.arity);
    rel.rows = entry.rows;
    // Bound rows before forming byte sizes so the arithmetic below
    // cannot overflow (all blocks live strictly before the directory).
    if (entry.rows > header.directory_offset / sizeof(Value) / entry.arity) {
      return Invalid(path, "row count exceeds file capacity for " + rel.name);
    }
    const uint64_t data_bytes = entry.rows * entry.arity * sizeof(Value);
    const uint64_t zone_values =
        ZoneMaps::EntryCount(rel.arity, static_cast<size_t>(entry.rows));
    const uint64_t zone_bytes = zone_values * sizeof(Value);
    if (entry.data_offset % sizeof(Value) != 0 ||
        entry.data_offset < sizeof(FileHeader) ||
        entry.data_offset + data_bytes > header.directory_offset ||
        entry.zone_offset % sizeof(Value) != 0 ||
        entry.zone_offset < sizeof(FileHeader) ||
        entry.zone_offset + zone_bytes > header.directory_offset) {
      return Invalid(path, "corrupt block bounds for " + rel.name);
    }
    rel.data = reinterpret_cast<const Value*>(bytes + entry.data_offset);
    rel.zones = zone_values > 0 ? reinterpret_cast<const Value*>(
                                      bytes + entry.zone_offset)
                                : nullptr;
    zone_checksum = FnvUpdate(zone_checksum, bytes + entry.zone_offset,
                              static_cast<size_t>(zone_bytes));
    if (options.verify_data_checksum) {
      data_checksum = FnvUpdate(data_checksum, rel.data,
                                static_cast<size_t>(data_bytes));
    }
    view->relations_.push_back(std::move(rel));
  }
  // Zone blocks are always verified (O(blocks) — open stays O(1) in data
  // size) BEFORE they are trusted below: the universe certification
  // reads zone maxima in place of the O(rows) data pages, so corrupt
  // zones that understate the data must not pass.
  if (zone_checksum != trailer.zone_checksum) {
    return Invalid(path, "zone checksum mismatch");
  }
  for (const RelationEntry& rel : view->relations_) {
    const uint64_t zone_values =
        ZoneMaps::EntryCount(rel.arity, static_cast<size_t>(rel.rows));
    // Zone maps are exact per-block bounds, so this O(blocks) walk
    // certifies every value is inside the universe without touching the
    // O(rows) data pages.
    for (uint64_t z = 1; z < zone_values; z += 2) {
      if (rel.zones[z] >= header.universe_size) {
        return Invalid(path, "value outside universe in " + rel.name);
      }
    }
  }
  if (options.verify_data_checksum &&
      data_checksum != trailer.data_checksum) {
    return Invalid(path, "data checksum mismatch");
  }
  return std::shared_ptr<const SegmentView>(std::move(view));
}

StatusOr<size_t> SegmentView::ResidentPages() const {
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return Status::Internal("sysconf(_SC_PAGESIZE) failed");
  const size_t pages = (map_len_ + static_cast<size_t>(page) - 1) /
                       static_cast<size_t>(page);
  std::vector<unsigned char> vec(pages);
  if (::mincore(map_, map_len_, vec.data()) != 0) {
    return Status::Internal("mincore failed");
  }
  size_t resident = 0;
  for (unsigned char v : vec) resident += v & 1u;
  StorageMetrics::Get().pages_resident.Set(static_cast<int64_t>(resident));
  return resident;
}

// ---------------------------------------------------------------------------
// Database-level helpers
// ---------------------------------------------------------------------------

bool LooksLikeSegmentFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[8] = {};
  const size_t got = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  return got == sizeof(magic) &&
         std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

Status WriteSegmentDatabase(const Database& db, const std::string& path) {
  if (!db.IsCanonical()) {
    return Status::FailedPrecondition(
        "packing a non-canonical database (call Canonicalize first)");
  }
  auto writer = SegmentWriter::Create(path, db.universe_size());
  if (!writer.ok()) return writer.status();
  for (const std::string& name : db.RelationNames()) {
    Status s = (*writer)->AddRelation(name, db.relation(name));
    if (!s.ok()) return s;
  }
  return (*writer)->Finish();
}

StatusOr<Database> OpenSegmentDatabase(const std::string& path,
                                       const SegmentOpenOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto view_or = SegmentView::Open(path, options);
  if (!view_or.ok()) return view_or.status();
  std::shared_ptr<const SegmentView> view = *view_or;
  if (view->universe_size() > UINT32_MAX) {
    return Invalid(path, "universe too large for 32-bit values");
  }
  Database db(static_cast<uint32_t>(view->universe_size()));
  for (const SegmentView::RelationEntry& rel : view->relations()) {
    ZoneMaps zones = ZoneMaps::Borrow(rel.zones, rel.arity,
                                      static_cast<size_t>(rel.rows));
    Status s = db.AdoptRelation(
        rel.name,
        Relation::FromMappedSpan(rel.arity, static_cast<size_t>(rel.rows),
                                 rel.data, std::move(zones), view));
    if (!s.ok()) return s;
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  StorageMetrics::Get().segment_opens.Increment();
  StorageMetrics::Get().segment_open_us.Observe(
      static_cast<uint64_t>(micros));
  return db;
}

StatusOr<Database> LoadDatabaseAuto(const std::string& path) {
  if (LooksLikeSegmentFile(path)) return OpenSegmentDatabase(path);
  return ReadDatabaseFile(path);
}

}  // namespace cqcount
