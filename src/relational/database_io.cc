#include "relational/database_io.h"

#include <fstream>
#include <sstream>

namespace cqcount {

StatusOr<Database> ParseDatabase(const std::string& text) {
  Database db;
  std::istringstream in(text);
  std::string line;
  std::string current_relation;
  int current_arity = 0;
  bool saw_universe = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;  // Blank line.

    auto fail = [&](const std::string& message) {
      std::ostringstream msg;
      msg << "line " << line_no << ": " << message;
      return Status::InvalidArgument(msg.str());
    };

    if (first == "universe") {
      uint64_t n = 0;
      if (!(tokens >> n)) return fail("expected universe size");
      db.set_universe_size(static_cast<uint32_t>(n));
      saw_universe = true;
    } else if (first == "relation") {
      if (!current_relation.empty()) {
        return fail("nested relation block (missing 'end'?)");
      }
      std::string name;
      int arity = 0;
      if (!(tokens >> name >> arity)) return fail("expected name and arity");
      if (!saw_universe) return fail("'universe' must precede relations");
      Status s = db.DeclareRelation(name, arity);
      if (!s.ok()) return fail(s.message());
      current_relation = name;
      current_arity = arity;
    } else if (first == "end") {
      if (current_relation.empty()) return fail("'end' outside relation");
      current_relation.clear();
    } else {
      if (current_relation.empty()) {
        return fail("unexpected token: " + first);
      }
      Tuple t;
      t.reserve(current_arity);
      // "()" denotes the empty tuple of an arity-0 relation (a blank line
      // would be skipped as whitespace).
      if (first != "()") {
        std::istringstream row(line);
        uint64_t v = 0;
        while (row >> v) t.push_back(static_cast<Value>(v));
      }
      if (static_cast<int>(t.size()) != current_arity) {
        return fail("tuple arity mismatch");
      }
      Status s = db.AddFact(current_relation, std::move(t));
      if (!s.ok()) return fail(s.message());
    }
  }
  if (!current_relation.empty()) {
    return Status::InvalidArgument("unterminated relation block: " +
                                   current_relation);
  }
  db.Canonicalize();
  return db;
}

StatusOr<Database> ReadDatabaseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDatabase(buffer.str());
}

std::string FormatDatabase(const Database& db) {
  std::ostringstream out;
  out << "universe " << db.universe_size() << "\n";
  for (const std::string& name : db.RelationNames()) {
    const Relation& rel = db.relation(name);
    out << "relation " << name << " " << rel.arity() << "\n";
    for (TupleView t : rel) {
      if (t.size() == 0) {
        out << "()\n";
        continue;
      }
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out << " ";
        out << t[i];
      }
      out << "\n";
    }
    out << "end\n";
  }
  return out.str();
}

Status WriteDatabaseFile(const Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write file: " + path);
  out << FormatDatabase(db);
  return Status::Ok();
}

}  // namespace cqcount
