// Query plans for the counting engine.
//
// A QueryPlan captures everything about a query that is independent of the
// concrete variable names and can therefore be shared between isomorphic
// queries: the paper's Figure-1 classification verdict, the counting
// strategy selected from it, the (canonically numbered) tree decomposition
// the strategy runs on, and a coarse cost estimate. Plans are produced by
// BuildQueryPlan and cached by PlanCache under the canonical shape key, so
// a warm engine never recomputes a decomposition for a query shape it has
// seen before.
#ifndef CQCOUNT_ENGINE_PLAN_H_
#define CQCOUNT_ENGINE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "decomposition/width_measures.h"
#include "query/query.h"
#include "relational/structure.h"

namespace cqcount {

/// Counting strategy selected by the planner.
enum class Strategy {
  /// Brute-force exact enumeration (small instances; always correct).
  kExact,
  /// FPTRAS over a treewidth-optimised decomposition (Theorem 5).
  kFptrasTreewidth,
  /// FPTRAS over an fhw-optimised decomposition (Theorem 13 regime).
  kFptrasFhw,
  /// Counting-automaton FPRAS for pure CQs (Theorem 16).
  kAutomataFpras,
  /// JVV-style answer sampling machinery (Section 6).
  kSampler,
};

/// Human-readable strategy name ("exact", "fptras-tw", ...).
const char* StrategyName(Strategy strategy);

/// The Figure-1 classification verdict for a query shape.
struct Classification {
  QueryKind kind = QueryKind::kCq;
  /// Width of the best treewidth-objective decomposition found.
  double treewidth = 0.0;
  /// Fhw of the best fhw-objective decomposition found.
  double fhw = 0.0;
  uint64_t phi_size = 0;
  int num_free = 0;
  int num_vars = 0;
  /// Theorem 5: FPTRAS in the bounded-arity regime (small treewidth).
  bool fptras_bounded_arity = false;
  /// Theorem 13: FPTRAS in the unbounded-arity regime (small fhw, no
  /// negated atoms in the way).
  bool fptras_unbounded_arity = false;
  /// Theorem 16: FPRAS (pure CQ with small fhw).
  bool fpras = false;
  /// One-line human-readable verdict citing the applicable theorems.
  std::string verdict;
};

/// Canonical shape of a query: isomorphic queries (variable renamings and
/// atom reorderings) produce the same key. `to_canonical[v]` maps query
/// variable v to its canonical index; free variables map to free canonical
/// indices.
struct CanonicalShape {
  std::string key;
  std::vector<int> to_canonical;
};

/// Computes the canonical shape. Deterministic; colour-refinement with
/// bounded individualisation, so isomorphic queries share keys in all
/// practical cases and distinct shapes never produce a false match (keys
/// encode the full query structure, not just a hash).
CanonicalShape CanonicalQueryShape(const Query& q);

/// Planner thresholds (Figure-1 boundaries plus cost heuristics).
struct PlanOptions {
  /// Exact-width search is used for hypergraphs up to this many variables.
  int exact_decomposition_limit = 14;
  /// Treewidth at or below this selects the Theorem 5 FPTRAS.
  double treewidth_threshold = 4.0;
  /// Fhw at or below this selects the Theorem 13 / 16 regimes.
  double fhw_threshold = 4.0;
  /// Brute-force exact counting is selected below this estimated cost
  /// (roughly: tuples enumerated).
  double exact_cost_limit = 1e6;
};

/// A cached, database-name-scoped execution plan in canonical variable
/// numbering.
struct QueryPlan {
  /// Canonical shape key the plan was built for.
  std::string shape_key;
  Classification classification;
  Strategy strategy = Strategy::kExact;
  /// Decomposition objective the strategy runs with.
  WidthObjective objective = WidthObjective::kTreewidth;
  /// Decomposition of the canonical hypergraph (bags hold canonical
  /// variable indices). Instantiate per query with InstantiateDecomposition.
  FWidthResult decomposition;
  /// Rough cost estimate of executing the plan (arbitrary units).
  double cost_estimate = 0.0;
  /// Universe size the cost estimate was computed against.
  uint32_t planned_universe = 0;
};

/// Builds a plan for (q, db): classifies the shape per Figure 1, selects a
/// strategy, and computes the decomposition the strategy needs. `shape` must
/// be CanonicalQueryShape(q). Both width searches always run — even when
/// the planner ends up choosing brute force — because the classification
/// verdict is part of every plan's provenance (Explain contract); the cost
/// is bounded by exact_decomposition_limit and amortised by the cache.
QueryPlan BuildQueryPlan(const Query& q, const CanonicalShape& shape,
                         const Database& db, const PlanOptions& opts);

/// Maps a canonical-space decomposition back onto the variables of a query
/// with the given canonical mapping (inverse of `to_canonical`).
TreeDecomposition InstantiateDecomposition(const TreeDecomposition& canonical,
                                           const std::vector<int>& to_canonical);

}  // namespace cqcount

#endif  // CQCOUNT_ENGINE_PLAN_H_
