#include "engine/executor.h"

#include <algorithm>

namespace cqcount {

uint64_t DeriveSeed(uint64_t base_seed, uint64_t index) {
  uint64_t z = base_seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Executor::Executor(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Executor::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void Executor::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void Executor::ParallelFor(size_t num_tasks,
                           const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;
  // Per-call completion state: concurrent ParallelFor calls sharing this
  // pool must not block on each other's tasks (Wait() would).
  struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto completion = std::make_shared<Completion>();
  completion->remaining = num_tasks;
  for (size_t i = 0; i < num_tasks; ++i) {
    Submit([completion, &task, i] {
      task(i);
      std::lock_guard<std::mutex> lock(completion->mu);
      if (--completion->remaining == 0) completion->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(completion->mu);
  completion->cv.wait(lock, [&] { return completion->remaining == 0; });
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace cqcount
