// Sharded, thread-safe LRU cache of query plans.
//
// Keys are full canonical shape strings (optionally scoped by database
// name), so two distinct query shapes can never be confused even when
// their hashes collide: the hash only selects a shard / bucket, the key
// comparison is exact. Each shard has its own mutex and LRU list, so
// concurrent batch execution does not serialise on one lock.
#ifndef CQCOUNT_ENGINE_PLAN_CACHE_H_
#define CQCOUNT_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/plan.h"
#include "obs/profile.h"

namespace cqcount {

/// Aggregated cache counters (summed over shards).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
};

/// Thread-safe LRU cache mapping shape keys to immutable shared plans.
class PlanCache {
 public:
  /// `capacity` is the total entry budget, split evenly over `num_shards`
  /// independently locked shards (each shard holds at least one entry).
  explicit PlanCache(size_t capacity = 256, size_t num_shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `key` (touching its LRU position), or
  /// nullptr on miss.
  std::shared_ptr<const QueryPlan> Lookup(const std::string& key);

  /// Inserts (or replaces) the plan for `key`, evicting the least recently
  /// used entry of the shard when it is full.
  void Insert(const std::string& key, std::shared_ptr<const QueryPlan> plan);

  /// Drops every entry (counters are kept).
  void Clear();

  /// Folds one execution of `key`'s shape into its observed profile (the
  /// cost/variance record the adaptive scheduler reads). No-op when the
  /// plan is no longer cached: the profile lives and dies with the entry.
  void RecordObservation(const std::string& key, double exec_millis,
                         uint64_t oracle_calls, uint64_t estimator_calls,
                         double estimate, bool converged);

  /// The accumulated profile for `key`, when the plan is cached and has
  /// at least one recorded execution. Does not touch LRU order.
  std::optional<obs::ShapeProfile> Profile(const std::string& key) const;

  PlanCacheStats Stats() const;

  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const QueryPlan> plan;
    /// Observed executions of this shape (evicted with the entry).
    obs::ShapeProfile profile;
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cqcount

#endif  // CQCOUNT_ENGINE_PLAN_CACHE_H_
