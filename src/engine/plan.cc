#include "engine/plan.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace cqcount {
namespace {

// SplitMix64-style mixing for colour refinement.
uint64_t Mix(uint64_t h, uint64_t v) {
  uint64_t z = h + 0x9e3779b97f4a7c15ULL + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) h = Mix(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
  return h;
}

// Canonical labelling by colour refinement with individualisation.
// Colours are isomorphism-invariant hashes; the search branches over
// members of the first ambiguous colour cell and keeps the minimal full
// encoding, so variable renamings and atom reorderings converge to one key.
class Canonicaliser {
 public:
  explicit Canonicaliser(const Query& q) : q_(q), n_(q.num_vars()) {
    occurrences_.resize(n_);
    const auto& atoms = q.atoms();
    for (size_t a = 0; a < atoms.size(); ++a) {
      for (size_t p = 0; p < atoms[a].vars.size(); ++p) {
        occurrences_[atoms[a].vars[p]].push_back(
            {static_cast<int>(a), static_cast<int>(p)});
      }
    }
    diseq_adj_.resize(n_);
    for (const Disequality& d : q.disequalities()) {
      diseq_adj_[d.lhs].push_back(d.rhs);
      diseq_adj_[d.rhs].push_back(d.lhs);
    }
  }

  CanonicalShape Run() {
    CanonicalShape shape;
    if (n_ == 0) {
      shape.key = Encode({});
      return shape;
    }
    best_key_.clear();
    int leaves_left = kMaxLeaves;
    Search(RefineToFixpoint(InitialColours()), &leaves_left);
    shape.key = best_key_;
    shape.to_canonical = best_perm_;
    return shape;
  }

 private:
  struct Occurrence {
    int atom;
    int pos;
  };

  static constexpr int kMaxLeaves = 512;

  std::vector<uint64_t> InitialColours() const {
    std::vector<uint64_t> colours(n_);
    const auto& atoms = q_.atoms();
    for (int v = 0; v < n_; ++v) {
      std::vector<uint64_t> sig;
      for (const Occurrence& o : occurrences_[v]) {
        const Atom& atom = atoms[o.atom];
        uint64_t s = HashString(atom.relation);
        s = Mix(s, atom.negated ? 2 : 1);
        s = Mix(s, static_cast<uint64_t>(atom.vars.size()));
        s = Mix(s, static_cast<uint64_t>(o.pos));
        sig.push_back(s);
      }
      std::sort(sig.begin(), sig.end());
      uint64_t c = v < q_.num_free() ? 0xF1EEULL : 0xE715ULL;
      c = Mix(c, static_cast<uint64_t>(diseq_adj_[v].size()));
      for (uint64_t s : sig) c = Mix(c, s);
      colours[v] = c;
    }
    return colours;
  }

  std::vector<uint64_t> RefineOnce(const std::vector<uint64_t>& colours) const {
    const auto& atoms = q_.atoms();
    std::vector<uint64_t> next(n_);
    for (int v = 0; v < n_; ++v) {
      std::vector<uint64_t> sig;
      for (const Occurrence& o : occurrences_[v]) {
        const Atom& atom = atoms[o.atom];
        uint64_t s = HashString(atom.relation);
        s = Mix(s, atom.negated ? 2 : 1);
        s = Mix(s, static_cast<uint64_t>(o.pos));
        for (size_t p = 0; p < atom.vars.size(); ++p) {
          s = Mix(s, Mix(static_cast<uint64_t>(p), colours[atom.vars[p]]));
        }
        sig.push_back(s);
      }
      std::sort(sig.begin(), sig.end());
      std::vector<uint64_t> dsig;
      for (int u : diseq_adj_[v]) dsig.push_back(colours[u]);
      std::sort(dsig.begin(), dsig.end());
      uint64_t c = Mix(0xC01ULL, colours[v]);
      for (uint64_t s : sig) c = Mix(c, s);
      for (uint64_t s : dsig) c = Mix(c, Mix(0xD15EULL, s));
      next[v] = c;
    }
    return next;
  }

  static size_t NumDistinct(const std::vector<uint64_t>& colours) {
    std::vector<uint64_t> sorted = colours;
    std::sort(sorted.begin(), sorted.end());
    return std::unique(sorted.begin(), sorted.end()) - sorted.begin();
  }

  std::vector<uint64_t> RefineToFixpoint(std::vector<uint64_t> colours) const {
    size_t distinct = NumDistinct(colours);
    for (int round = 0; round < n_; ++round) {
      std::vector<uint64_t> next = RefineOnce(colours);
      const size_t next_distinct = NumDistinct(next);
      colours = std::move(next);
      if (next_distinct == distinct) break;
      distinct = next_distinct;
    }
    return colours;
  }

  // Cells group variables with equal (free?, colour); free cells come
  // first so free variables always receive free canonical indices.
  std::vector<std::vector<int>> Cells(const std::vector<uint64_t>& colours) const {
    std::map<std::pair<int, uint64_t>, std::vector<int>> cells;
    for (int v = 0; v < n_; ++v) {
      cells[{v < q_.num_free() ? 0 : 1, colours[v]}].push_back(v);
    }
    std::vector<std::vector<int>> out;
    for (auto& [key, members] : cells) out.push_back(std::move(members));
    return out;
  }

  void Search(const std::vector<uint64_t>& colours, int* leaves_left) {
    if (*leaves_left <= 0) return;
    const std::vector<std::vector<int>> cells = Cells(colours);
    const std::vector<int>* ambiguous = nullptr;
    for (const auto& cell : cells) {
      if (cell.size() > 1) {
        ambiguous = &cell;
        break;
      }
    }
    if (ambiguous == nullptr) {
      --*leaves_left;
      std::vector<int> perm(n_);
      int next_id = 0;
      for (const auto& cell : cells) perm[cell[0]] = next_id++;
      std::string key = Encode(perm);
      if (best_key_.empty() || key < best_key_) {
        best_key_ = std::move(key);
        best_perm_ = std::move(perm);
      }
      return;
    }
    for (int v : *ambiguous) {
      if (*leaves_left <= 0) return;
      std::vector<uint64_t> child = colours;
      child[v] = Mix(0x1D1ULL, child[v]);
      Search(RefineToFixpoint(std::move(child)), leaves_left);
    }
  }

  std::string Encode(const std::vector<int>& perm) const {
    std::ostringstream out;
    out << "v" << n_ << "f" << q_.num_free() << "|";
    std::vector<std::string> atom_strs;
    for (const Atom& atom : q_.atoms()) {
      std::ostringstream a;
      if (atom.negated) a << "!";
      a << atom.relation << "(";
      for (size_t i = 0; i < atom.vars.size(); ++i) {
        if (i > 0) a << ",";
        a << perm[atom.vars[i]];
      }
      a << ")";
      atom_strs.push_back(a.str());
    }
    std::sort(atom_strs.begin(), atom_strs.end());
    for (const std::string& s : atom_strs) out << s << ";";
    std::vector<std::pair<int, int>> diseqs;
    for (const Disequality& d : q_.disequalities()) {
      diseqs.push_back(std::minmax(perm[d.lhs], perm[d.rhs]));
    }
    std::sort(diseqs.begin(), diseqs.end());
    for (const auto& [a, b] : diseqs) out << a << "!=" << b << ";";
    return out.str();
  }

  const Query& q_;
  const int n_;
  std::vector<std::vector<Occurrence>> occurrences_;
  std::vector<std::vector<int>> diseq_adj_;
  std::string best_key_;
  std::vector<int> best_perm_;
};

// H(phi) remapped into canonical numbering, with edges inserted in
// canonical (sorted) order. The decomposition search runs on this graph so
// the resulting plan is a pure function of the canonical shape — two
// isomorphic presentations racing on a cold cache must build identical
// plans, or batch results would depend on thread timing.
Hypergraph CanonicalHypergraph(const Query& q,
                               const std::vector<int>& to_canonical) {
  Hypergraph h = q.BuildHypergraph();
  Hypergraph canonical(h.num_vertices());
  std::vector<std::vector<Vertex>> edges;
  edges.reserve(h.edges().size());
  for (const auto& e : h.edges()) {
    std::vector<Vertex> mapped;
    mapped.reserve(e.size());
    for (Vertex v : e) mapped.push_back(to_canonical[v]);
    std::sort(mapped.begin(), mapped.end());
    edges.push_back(std::move(mapped));
  }
  std::sort(edges.begin(), edges.end());
  for (auto& e : edges) canonical.AddEdge(std::move(e));
  return canonical;
}

}  // namespace

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kExact:
      return "exact";
    case Strategy::kFptrasTreewidth:
      return "fptras-tw";
    case Strategy::kFptrasFhw:
      return "fptras-fhw";
    case Strategy::kAutomataFpras:
      return "automata-fpras";
    case Strategy::kSampler:
      return "sampler";
  }
  return "unknown";
}

CanonicalShape CanonicalQueryShape(const Query& q) {
  return Canonicaliser(q).Run();
}

TreeDecomposition InstantiateDecomposition(
    const TreeDecomposition& canonical, const std::vector<int>& to_canonical) {
  std::vector<Vertex> from_canonical(to_canonical.size());
  for (size_t v = 0; v < to_canonical.size(); ++v) {
    from_canonical[to_canonical[v]] = static_cast<Vertex>(v);
  }
  TreeDecomposition out = canonical;
  for (auto& bag : out.bags) {
    for (Vertex& v : bag) v = from_canonical[v];
    std::sort(bag.begin(), bag.end());
  }
  return out;
}

QueryPlan BuildQueryPlan(const Query& q, const CanonicalShape& shape,
                         const Database& db, const PlanOptions& opts) {
  QueryPlan plan;
  plan.shape_key = shape.key;
  plan.planned_universe = db.universe_size();

  Hypergraph h = CanonicalHypergraph(q, shape.to_canonical);
  FWidthResult tw = ComputeDecomposition(h, WidthObjective::kTreewidth,
                                         opts.exact_decomposition_limit);
  FWidthResult fhw =
      ComputeDecomposition(h, WidthObjective::kFractionalHypertreewidth,
                           opts.exact_decomposition_limit);

  Classification& cls = plan.classification;
  cls.kind = q.Kind();
  cls.treewidth = tw.width;
  cls.fhw = fhw.width;
  cls.phi_size = q.PhiSize();
  cls.num_free = q.num_free();
  cls.num_vars = q.num_vars();
  cls.fptras_bounded_arity = tw.width <= opts.treewidth_threshold;
  cls.fptras_unbounded_arity =
      fhw.width <= opts.fhw_threshold && cls.kind != QueryKind::kEcq;
  cls.fpras = cls.kind == QueryKind::kCq && fhw.width <= opts.fhw_threshold;

  std::ostringstream verdict;
  if (cls.fptras_bounded_arity) {
    verdict << "Theorem 5 FPTRAS applies (tw " << tw.width << ")";
    verdict << (cls.fpras ? "; Theorem 16 FPRAS applies"
                          : "; no FPRAS unless NP=RP (Obs 10)");
  } else if (cls.fptras_unbounded_arity) {
    verdict << "Theorem 13 FPTRAS applies (fhw " << fhw.width
            << ", unbounded-arity regime)";
  } else if (cls.fpras) {
    verdict << "Theorem 16 FPRAS applies (fhw " << fhw.width << ")";
  } else {
    verdict << "widths look unbounded: Observations 9/15 wall";
  }
  cls.verdict = verdict.str();

  // Cost model (coarse): brute force enumerates ~n^vars assignments;
  // the decomposition pipelines cost ~n^(width+1) per oracle call times a
  // polylogarithmic number of calls.
  const double n = std::max<double>(1.0, db.universe_size());
  const double exact_cost =
      std::pow(n, std::min<double>(q.num_vars(), 12.0)) *
      std::max<uint64_t>(1, q.atoms().size());
  const double tw_cost = std::pow(n, std::min(tw.width + 1.0, 12.0)) * 64.0;
  const double fhw_cost = std::pow(n, std::min(fhw.width + 1.0, 12.0)) * 64.0;

  if (exact_cost <= opts.exact_cost_limit) {
    plan.strategy = Strategy::kExact;
    plan.objective = WidthObjective::kTreewidth;
    plan.decomposition = tw;
    plan.cost_estimate = exact_cost;
  } else if (cls.fpras && tw.width > opts.treewidth_threshold) {
    // Pure CQ beyond the bounded-arity regime: the counting-automaton
    // FPRAS is the only tractable route (Theorem 16).
    plan.strategy = Strategy::kAutomataFpras;
    plan.objective = WidthObjective::kFractionalHypertreewidth;
    plan.decomposition = fhw;
    plan.cost_estimate = fhw_cost;
  } else if (cls.fptras_bounded_arity) {
    plan.strategy = Strategy::kFptrasTreewidth;
    plan.objective = WidthObjective::kTreewidth;
    plan.decomposition = tw;
    plan.cost_estimate = tw_cost;
  } else if (cls.fptras_unbounded_arity && fhw.width < tw.width) {
    plan.strategy = Strategy::kFptrasFhw;
    plan.objective = WidthObjective::kFractionalHypertreewidth;
    plan.decomposition = fhw;
    plan.cost_estimate = fhw_cost;
  } else {
    // Outside every tractable regime: the FPTRAS is still correct, only
    // its running-time guarantee degrades (Section 1.2).
    plan.strategy = Strategy::kFptrasTreewidth;
    plan.objective = WidthObjective::kTreewidth;
    plan.decomposition = tw;
    plan.cost_estimate = tw_cost;
  }

  // The search ran on the canonical hypergraph, so the decomposition is
  // already in canonical numbering.
  return plan;
}

}  // namespace cqcount
