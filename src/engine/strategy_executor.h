// The uniform strategy-execution layer of the engine.
//
// Historically CountingEngine dispatched to the five estimator modules
// through a hand-rolled switch, re-deriving each module's Options struct
// (and its own epsilon/delta/seed plumbing) inline. This header replaces
// that with one adapter boundary: every counting strategy implements
// StrategyExecutor over a shared AccuracyBudget/ExecContext, and the
// engine resolves strategies through an ExecutorRegistry. Adding a
// strategy means adding one executor class and one Register call — the
// engine, the compile pipeline and the provenance plumbing stay untouched.
#ifndef CQCOUNT_ENGINE_STRATEGY_EXECUTOR_H_
#define CQCOUNT_ENGINE_STRATEGY_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "engine/plan.h"
#include "query/query.h"
#include "relational/structure.h"
#include "util/cancel.h"
#include "util/estimate_outcome.h"
#include "util/executor.h"
#include "util/status.h"

namespace cqcount {

/// The accuracy / randomness contract for one strategy execution. Adapted
/// once from the request (and split per Gaifman component); executors map
/// it onto their module's own option struct.
struct AccuracyBudget {
  /// Target relative error of the (epsilon, delta) guarantee.
  double epsilon = 0.1;
  /// Target failure probability.
  double delta = 0.1;
  /// Seed controlling all randomness of the execution.
  uint64_t seed = 0xC0FFEEULL;
};

/// Everything a strategy needs to execute one (sub-)query.
struct ExecContext {
  /// The query, in its own variable numbering.
  const Query* query = nullptr;
  const Database* db = nullptr;
  /// The cached plan for the query's canonical shape.
  const QueryPlan* plan = nullptr;
  /// Canonical mapping of `query` (plan decompositions live in canonical
  /// numbering; executors instantiate them through shape->to_canonical).
  const CanonicalShape* shape = nullptr;
  AccuracyBudget budget;
  /// Planner threshold forwarded to strategies that may recompute a
  /// decomposition themselves.
  int exact_decomposition_limit = 14;
  /// Intra-query parallelism: worker pool (not owned; null = inline) and
  /// the lane count this execution may fan out across. The engine sets
  /// these from EngineOptions::intra_query_threads and its cost model;
  /// estimates are bit-identical for every configuration.
  Executor* pool = nullptr;
  int intra_threads = 1;
  /// Cooperative governance for this execution (not owned; null =
  /// ungoverned). Executors thread it into their module options; on
  /// expiry/cancellation they return either an anytime partial outcome or
  /// the governor's typed status.
  const ResourceGovernor* governor = nullptr;
  /// Request-level cap on estimator oracle calls (0 = module default).
  /// Tightens (never widens) the module's own safety valve.
  uint64_t max_oracle_calls = 0;
  /// The adaptive scheduler's per-execution hints (all inert at their
  /// defaults, so non-adaptive requests execute bit-identically to the
  /// pre-scheduler engine).
  struct AdaptiveHints {
    /// Arms the estimator's run-boundary CLT/hard-bounds early stop.
    bool early_stop = false;
    /// Completed runs before the early-stop rule is consulted.
    int min_early_stop_runs = 3;
    /// Colour-coding per-call failure budget predicted from profile
    /// history (0 = keep the module's worst-case union bound).
    double per_call_failure = 0.0;
  };
  AdaptiveHints adaptive;
};

/// What every strategy reports back (estimate/exact/converged from the
/// shared EstimateOutcome contract).
struct ExecOutcome : EstimateOutcome {
  /// Oracle work: hom-oracle calls plus estimator membership tests.
  uint64_t oracle_calls = 0;
  /// Deterministic estimator probes only (DLM edge-free calls, automata
  /// membership tests) — excludes the scheduling-dependent hom-query
  /// tally. The adaptive scheduler's cost model reads ONLY this counter,
  /// keeping its accuracy decisions lane-count-independent.
  uint64_t estimator_calls = 0;
  /// Prepared-DP reuse across the DLM oracle calls of this execution
  /// (fptras strategies): trial decisions answered by the trial-reuse DP
  /// and the size of the per-plan bag-join cache they shared. Zero for
  /// strategies without a decomposition DP.
  uint64_t dp_prepared_decides = 0;
  uint64_t dp_cached_bag_rows = 0;
  /// False when the bag-join cache cap forced the monolithic per-call DP.
  bool dp_prepared_path = true;
  /// Colouring trials the EdgeFree simulation runs per oracle call
  /// (fptras strategies; 0 otherwise).
  uint64_t colouring_trials_per_call = 0;
  /// Outer-median runs completed / scheduled by the estimator (differ
  /// only on partial outcomes; 0/0 for strategies without run structure).
  int completed_runs = 0;
  int total_runs = 0;
  /// Intra-query parallelism observability (lanes used, tasks spawned,
  /// tasks executed by pool workers).
  ParallelStats parallel;
};

/// One counting strategy, executable over the shared context.
class StrategyExecutor {
 public:
  virtual ~StrategyExecutor() = default;

  /// The Strategy enum value this executor implements.
  virtual Strategy strategy() const = 0;

  /// Executes the strategy. `ctx.query/db/plan/shape` must be non-null;
  /// implementations must be const (one executor instance serves
  /// concurrent batch workers).
  virtual StatusOr<ExecOutcome> Execute(const ExecContext& ctx) const = 0;
};

/// Immutable-after-setup mapping Strategy -> executor.
class ExecutorRegistry {
 public:
  ExecutorRegistry() = default;
  ExecutorRegistry(const ExecutorRegistry&) = delete;
  ExecutorRegistry& operator=(const ExecutorRegistry&) = delete;

  /// Registers `executor` under its own strategy(), replacing any
  /// previous registration. Not thread-safe; do all registration before
  /// sharing the registry.
  void Register(std::unique_ptr<StrategyExecutor> executor);

  /// The executor for `strategy`, or nullptr when none is registered.
  const StrategyExecutor* Find(Strategy strategy) const;

  /// Registered strategies, in enum order.
  std::vector<Strategy> RegisteredStrategies() const;

  /// The process-wide registry holding all five built-in strategies
  /// (exact, fptras-tw, fptras-fhw, automata-fpras, sampler). Built once,
  /// read-only afterwards: safe to share across threads.
  static const ExecutorRegistry& Default();

 private:
  std::map<Strategy, std::unique_ptr<StrategyExecutor>> executors_;
};

}  // namespace cqcount

#endif  // CQCOUNT_ENGINE_STRATEGY_EXECUTOR_H_
