// CountingEngine: the reusable front door to the whole pipeline.
//
// The seed entry points (CLI, benches) hand-wired parse -> decompose ->
// strategy -> execute for every single call. The engine performs that
// wiring once per query *shape*, through a real compile pipeline:
//
//   parse -> normalize (rewrite passes: atom dedup, nullary-guard
//   extraction, unused-variable pruning) -> split into the connected
//   components of the Gaifman graph (disequalities and negated atoms
//   count as edges) -> plan each component independently (Figure-1
//   classification, cached in a sharded LRU keyed by the component's
//   canonical shape, so two different queries sharing a component shape
//   reuse one sub-plan) -> execute each component through the
//   StrategyExecutor registry -> multiply the per-component counts,
//   splitting the requested (epsilon, delta) across the factors so the
//   product still meets the guarantee (see compile/compiled_query.h).
//
// Batches of independent queries run concurrently on a worker pool with
// per-item seeds derived deterministically from (base seed, index), so
// results are bitwise identical regardless of thread count.
#ifndef CQCOUNT_ENGINE_ENGINE_H_
#define CQCOUNT_ENGINE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "compile/compiled_query.h"
#include "engine/plan.h"
#include "engine/plan_cache.h"
#include "engine/scheduler.h"
#include "engine/strategy_executor.h"
#include "obs/profile.h"
#include "query/query.h"
#include "relational/structure.h"
#include "util/cancel.h"
#include "util/status.h"

namespace cqcount {

/// Engine-wide defaults and sizing.
struct EngineOptions {
  /// Default accuracy targets for approximate counts.
  double epsilon = 0.1;
  double delta = 0.1;
  /// Base seed; batch items derive their own via DeriveSeed(seed, index).
  uint64_t seed = 0xC0FFEEULL;
  /// Plan cache sizing.
  size_t plan_cache_capacity = 256;
  size_t plan_cache_shards = 8;
  /// Worker pool size for CountBatch (0 = hardware concurrency).
  int num_threads = 4;
  /// Intra-query parallelism: lanes ONE estimated count may fan out
  /// across on the engine's pool (sampling runs, exact-phase sub-boxes,
  /// colouring trials — see README "Parallel estimation & determinism
  /// model"). 0 = automatic (pool size); 1 = off; N = fixed lane count.
  /// Regardless of the setting, only components whose planned cost
  /// clears `intra_query_min_cost` get workers — cheap and exact
  /// components always run inline. Estimates are bit-identical at every
  /// setting (counter-derived per-task seeds).
  int intra_query_threads = 0;
  /// Cost-model gate for intra-query workers: a component fans out only
  /// when its plan's cost estimate reaches this threshold (the same
  /// coarse units as PlanOptions::exact_cost_limit). Sized so fan-out
  /// setup (per-lane oracle forks + solver contexts, ~sub-ms) is paid
  /// only on counts that run long enough to amortise it; millisecond
  /// estimates stay inline.
  double intra_query_min_cost = 1e8;
  /// Opt-in adaptive accuracy scheduling (see engine/scheduler.h): cost
  /// predictions from the plan cache's ShapeProfile history drive a
  /// marginal-cost (epsilon, delta) split across components, dynamic lane
  /// grants, profile-sized colour-coding trial budgets, and run-boundary
  /// CLT early termination in the estimators. Off (the default) leaves
  /// every estimate bit-identical to the non-adaptive engine; on, fixed-
  /// seed results are reproducible at any lane count (the scheduler's
  /// accuracy decisions read only deterministic inputs).
  bool adaptive = false;
  /// Tuning for the adaptive scheduler (ignored unless `adaptive`).
  SchedulerOptions scheduler;
  /// Planner thresholds.
  PlanOptions plan;
  /// Compile-pipeline gates (normalization passes, component factoring).
  CompileOptions compile;
  /// Input-validation guard rails: requests whose query text or variable
  /// count exceeds these are rejected with INVALID_ARGUMENT before any
  /// parsing/planning work (a malformed megabyte query must not reach the
  /// planner's recursive passes).
  size_t max_query_bytes = 1 << 20;
  int max_query_vars = 256;
};

/// One query of a batch (and the argument of Count).
struct CountRequest {
  /// Datalog-style query text, e.g. "ans(x) :- F(x, y), F(x, z), y != z.".
  std::string query;
  /// Name of a registered database.
  std::string database;
  /// Per-request accuracy overrides (0 = engine default).
  double epsilon = 0.0;
  double delta = 0.0;
  /// Per-request seed override (0 = derived from the engine seed).
  uint64_t seed = 0;
  /// Forces the brute-force exact strategy regardless of the plan.
  bool force_exact = false;
  /// Wall-clock budget for this request in milliseconds (0 = unlimited).
  /// On expiry the engine returns an anytime partial answer assembled
  /// from completed work units (EngineResult::partial + interval), or a
  /// typed DEADLINE_EXCEEDED status when nothing completed.
  uint64_t time_budget_ms = 0;
  /// Cap on estimator oracle calls (0 = module default). Tightens the
  /// per-strategy safety valve; exhausting it before any sampling yields
  /// a typed RESOURCE_EXHAUSTED status.
  uint64_t max_oracle_calls = 0;
  /// Cooperative cancellation: keep a copy of this token and Cancel() it
  /// from any thread; the engine polls it at deterministic checkpoints.
  /// The default token is valid and simply never fires.
  CancelToken cancel_token;
  /// Deadline clock override for deterministic tests (not owned; must
  /// outlive the call; null = the process steady clock).
  const DeadlineClock* clock = nullptr;
};

/// Execution provenance of one Gaifman component of a query.
struct ComponentResult {
  /// This component's factor of the product. Purely-existential
  /// components report their raw strategy estimate here; the boolean
  /// collapse (non-zero -> 1) happens in the product.
  double estimate = 0.0;
  bool exact = false;
  bool converged = true;
  /// True when a deadline/cancellation interrupted this component and its
  /// estimate is an anytime answer over the completed work units;
  /// [lower_bound, upper_bound] then brackets the uninterrupted same-seed
  /// result. Complete components carry [estimate, estimate].
  bool partial = false;
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  /// Why the estimator stopped sampling (kFullSchedule for an ordinary
  /// complete schedule, kConfidence/kHardBounds for adaptive early stops,
  /// kCancelled/kDeadlineExpired on partial components, kNone for exact
  /// strategies without run structure).
  StopReason stop_reason = StopReason::kNone;
  /// Adaptive refinement rounds executed across the estimator's runs.
  int rounds_executed = 0;
  /// Estimator outer-median runs completed / scheduled (differ only on
  /// partial components; 0/0 for strategies without run structure).
  int completed_runs = 0;
  int total_runs = 0;
  Strategy strategy = Strategy::kExact;
  /// Width of the decomposition the component ran on.
  double width = 0.0;
  int num_vars = 0;
  int num_free = 0;
  /// No free variables: contributes a 0/1 boolean factor.
  bool existential = false;
  bool plan_cache_hit = false;
  /// False when execution was skipped (a false nullary guard makes the
  /// product a certain zero): estimate/exact/oracle_calls are then
  /// placeholders, only the planning provenance is meaningful.
  bool executed = false;
  uint64_t oracle_calls = 0;
  /// Deterministic estimator probes only (excludes the scheduling-
  /// dependent hom-query tally); the cost model's observation input.
  uint64_t estimator_calls = 0;
  /// Trial decisions served by the prepare/evaluate DP split and the
  /// size of the bag-join cache they shared (fptras strategies).
  uint64_t dp_prepared_decides = 0;
  uint64_t dp_cached_bag_rows = 0;
  /// False when the bag-join cache cap forced the monolithic per-call DP.
  bool dp_prepared_path = true;
  /// Canonical shape key of the component sub-query.
  std::string shape_key;
  /// Figure-1 verdict for the component's shape.
  std::string verdict;
  /// (epsilon, delta) share this component ran with. Zero for exact
  /// factors: they consume none of the accuracy budget.
  double epsilon = 0.0;
  double delta = 0.0;
  /// Intra-query parallelism this component ran with (lanes granted by
  /// the cost model, tasks spawned, tasks run by pool workers).
  ParallelStats parallel;
  /// Colouring trials the EdgeFree simulation runs per oracle call
  /// (fptras strategies; 0 otherwise).
  uint64_t colouring_trials_per_call = 0;
  /// Wall-clock execution time of this component alone.
  double exec_millis = 0.0;
  /// Adaptive-scheduler provenance: the cost prediction this component
  /// was scheduled with ("plan_estimate" / "observed_profile"; empty when
  /// the scheduler was off).
  std::string cost_source;
  double predicted_millis = 0.0;
  double predicted_oracle_calls = 0.0;
};

/// A count with execution provenance.
struct EngineResult {
  double estimate = 0.0;
  /// True when every factor (guards and components) is exact.
  bool exact = false;
  /// False when a sampling cap was hit before the target interval.
  bool converged = true;
  /// True when the request's deadline or cancellation interrupted
  /// execution and `estimate` is an ANYTIME answer from the completed
  /// work (the (epsilon, delta) guarantee does not apply). The interval
  /// brackets what the uninterrupted same-seed execution would return:
  /// hard order-statistic bounds per interrupted component, [0,
  /// |U|^num_free] for components never started. Complete results carry
  /// [estimate, estimate].
  bool partial = false;
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  /// Why the result is partial: "" / "cancelled" / "deadline_exceeded".
  std::string partial_reason;
  /// True when the adaptive scheduler drove this execution.
  bool adaptive = false;
  /// Strategy of the dominant (highest planned cost) component.
  Strategy strategy = Strategy::kExact;
  QueryKind kind = QueryKind::kCq;
  /// Largest decomposition width across components.
  double width = 0.0;
  /// Oracle work: hom-oracle calls plus estimator membership tests.
  uint64_t oracle_calls = 0;
  /// True when every component plan came from the cache.
  bool plan_cache_hit = false;
  double plan_millis = 0.0;
  double exec_millis = 0.0;
  /// Canonical shape keys of all components, sorted, joined by " * ".
  std::string shape_key;
  /// Figure-1 verdict of the dominant component.
  std::string verdict;
  /// Per-component provenance (ordered by smallest variable; factors of
  /// the product). Empty for pure-guard queries.
  std::vector<ComponentResult> components;
  int num_components = 0;
  /// Aggregated intra-query parallelism across components.
  ParallelStats parallel;
  /// What the rewrite passes changed.
  int atoms_deduped = 0;
  int variables_pruned = 0;
  /// Nullary guards evaluated (each a 0/1 factor of the product).
  int guards_evaluated = 0;
  /// Telemetry: phase durations, cache outcomes, oracle work and lane
  /// utilization of this execution (also folded into the plan cache's
  /// per-shape ShapeProfile).
  obs::QueryProfile profile;
};

/// Per-component planning provenance in Explain() output.
struct ComponentExplanation {
  QueryPlan plan;
  bool plan_cache_hit = false;
  bool existential = false;
  /// The component's variables, by original name.
  std::vector<std::string> variables;
  /// (epsilon, delta) share the component would execute with (zero for
  /// exact factors, which consume no budget).
  double epsilon = 0.0;
  double delta = 0.0;
  /// Lanes the engine's cost model would grant this component (1 =
  /// inline; see EngineOptions::intra_query_threads).
  int planned_lanes = 1;
  /// Observed execution history of this component's shape, when the plan
  /// cache has recorded runs (Explain after Count on a warm cache).
  std::optional<obs::ShapeProfile> observed;
  /// Adaptive-scheduler provenance (empty cost_source when the scheduler
  /// is off): where the cost prediction came from and what it predicts.
  std::string cost_source;
  double predicted_millis = 0.0;
  double predicted_oracle_calls = 0.0;
};

/// Explain() output: the compiled plan, without execution.
struct Explanation {
  /// Plan of the dominant (highest planned cost) component.
  QueryPlan plan;
  /// All component plans, ordered by smallest variable.
  std::vector<ComponentExplanation> components;
  /// Nullary guards lifted out of the body.
  std::vector<NullaryGuard> guards;
  /// What the rewrite passes changed.
  PassStats pass_stats;
  /// True when every component plan came from the cache.
  bool plan_cache_hit = false;
  double plan_millis = 0.0;
  /// Multi-line human-readable rendering (includes the per-component
  /// breakdown).
  std::string text;
};

/// Thread-safe counting engine with a named-database registry, a shared
/// plan cache and a worker pool. All public methods may be called
/// concurrently.
class CountingEngine {
 public:
  explicit CountingEngine(EngineOptions opts = {});
  ~CountingEngine();

  /// Registers `db` under `name` (replacing any previous database of that
  /// name; plans cached for the old contents are invalidated). Relations
  /// are canonicalised eagerly so the shared snapshot is safe to read from
  /// concurrent workers. Queries refer to databases by name.
  Status RegisterDatabase(const std::string& name, Database db);

  /// Reads a database file (relational/database_io format) and registers it.
  Status RegisterDatabaseFile(const std::string& name, const std::string& path);

  /// Registered database names, sorted.
  std::vector<std::string> DatabaseNames() const;

  /// Compiles (cached per component shape) and executes one counting
  /// request.
  StatusOr<EngineResult> Count(const CountRequest& request);
  StatusOr<EngineResult> Count(const std::string& query,
                               const std::string& database);

  /// Exact count via the brute-force strategy (plans for provenance only).
  StatusOr<EngineResult> CountExact(const std::string& query,
                                    const std::string& database);

  /// Compiles and plans without executing: rewrite-pass effects, the
  /// per-component Figure-1 verdicts, chosen strategies, decomposition
  /// shapes and cost estimates.
  StatusOr<Explanation> Explain(const std::string& query,
                                const std::string& database);

  /// Executes independent requests concurrently. `num_threads` <= 0 uses
  /// the engine's own pool; otherwise a dedicated pool of that size is
  /// used. Results are positionally aligned with `requests` and are
  /// bitwise identical for every thread count (per-item derived seeds).
  std::vector<StatusOr<EngineResult>> CountBatch(
      const std::vector<CountRequest>& requests, int num_threads = 0);

  /// Plan-cache counters (hits mean the decomposition was not recomputed).
  PlanCacheStats CacheStats() const { return cache_.Stats(); }

  /// Drops all cached plans (e.g. after re-registering a database).
  void InvalidatePlans() { cache_.Clear(); }

  const EngineOptions& options() const { return opts_; }

 private:
  struct RegisteredDatabase {
    std::shared_ptr<const Database> db;
    /// Bumped on re-registration; part of the plan-cache key, so stale
    /// plans become unreachable and age out of the LRU.
    uint64_t generation = 0;
  };

  /// A compiled query with every component planned through the cache.
  struct PlannedQuery {
    CompiledQuery compiled;
    std::vector<std::shared_ptr<const QueryPlan>> plans;
    std::vector<bool> cache_hits;
    /// Full plan-cache key per component (observation recording and
    /// Explain's observed-profile lookups reuse it).
    std::vector<std::string> keys;
    /// Index of the dominant (highest planned cost) component; -1 when
    /// there are no components.
    int dominant = -1;
    /// Phase split of the compile-and-plan stage.
    double compile_millis = 0.0;
    double plan_millis = 0.0;
  };

  RegisteredDatabase FindDatabase(const std::string& name) const;

  /// Plans one component query through the cache under the precomputed
  /// `key` ((database name, generation, component canonical shape), so
  /// any two queries sharing a component shape share the cached
  /// sub-plan).
  std::shared_ptr<const QueryPlan> GetOrBuildPlan(const Query& q,
                                                  const CanonicalShape& shape,
                                                  const std::string& key,
                                                  const Database& db,
                                                  bool* cache_hit);

  /// Compiles `q` and plans every component.
  PlannedQuery CompileAndPlan(const Query& q, const std::string& db_name,
                              uint64_t db_generation, const Database& db);

  /// Lanes the cost model grants a component: 1 for exact strategies and
  /// plans under `intra_query_min_cost`, the configured (or pool-sized)
  /// lane count otherwise.
  int IntraQueryLanes(Strategy strategy, double cost_estimate) const;

  /// Per-component budget shares (shared by Count and Explain). Exact
  /// factors consume no budget and get a zero share; the (epsilon,
  /// delta) target is split across the estimated factors only.
  std::vector<BudgetShare> ComponentBudgets(const PlannedQuery& planned,
                                            double epsilon, double delta,
                                            bool force_exact) const;

  /// Request-shape validation shared by Count and CountBatch: accuracy
  /// overrides must be finite and in (0, 1), the database name non-empty,
  /// the query text within the engine's size guard rails.
  Status ValidateRequest(const CountRequest& request) const;

  StatusOr<EngineResult> ExecutePlanned(const PlannedQuery& planned,
                                        const Database& db,
                                        const CountRequest& request,
                                        const ResourceGovernor* governor);

  EngineOptions opts_;
  // Stateless decision logic for the opt-in adaptive path (constructed
  // from opts_.scheduler; safe to share across batch workers).
  AdaptiveScheduler scheduler_;
  // Reader-writer lock: every Count in a batch resolves its database here,
  // so lookups must not serialise behind each other (registration is rare
  // and takes the exclusive side).
  mutable std::shared_mutex db_mu_;
  std::map<std::string, RegisteredDatabase> databases_;
  PlanCache cache_;
  std::unique_ptr<Executor> pool_;
};

}  // namespace cqcount

#endif  // CQCOUNT_ENGINE_ENGINE_H_
