// CountingEngine: the reusable front door to the whole pipeline.
//
// The seed entry points (CLI, benches) hand-wired parse -> decompose ->
// strategy -> execute for every single call. The engine performs that
// wiring once per query *shape*: plans are classified per the paper's
// Figure 1, cached in a sharded LRU keyed by canonical shape (isomorphic
// queries share plans), and executed with full provenance. Batches of
// independent queries run concurrently on a worker pool with per-item
// seeds derived deterministically from (base seed, index), so results are
// bitwise identical regardless of thread count.
#ifndef CQCOUNT_ENGINE_ENGINE_H_
#define CQCOUNT_ENGINE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/plan.h"
#include "engine/plan_cache.h"
#include "query/query.h"
#include "relational/structure.h"
#include "util/status.h"

namespace cqcount {

/// Engine-wide defaults and sizing.
struct EngineOptions {
  /// Default accuracy targets for approximate counts.
  double epsilon = 0.1;
  double delta = 0.1;
  /// Base seed; batch items derive their own via DeriveSeed(seed, index).
  uint64_t seed = 0xC0FFEEULL;
  /// Plan cache sizing.
  size_t plan_cache_capacity = 256;
  size_t plan_cache_shards = 8;
  /// Worker pool size for CountBatch (0 = hardware concurrency).
  int num_threads = 4;
  /// Planner thresholds.
  PlanOptions plan;
};

/// One query of a batch (and the argument of Count).
struct CountRequest {
  /// Datalog-style query text, e.g. "ans(x) :- F(x, y), F(x, z), y != z.".
  std::string query;
  /// Name of a registered database.
  std::string database;
  /// Per-request accuracy overrides (0 = engine default).
  double epsilon = 0.0;
  double delta = 0.0;
  /// Per-request seed override (0 = derived from the engine seed).
  uint64_t seed = 0;
  /// Forces the brute-force exact strategy regardless of the plan.
  bool force_exact = false;
};

/// A count with execution provenance.
struct EngineResult {
  double estimate = 0.0;
  /// True when the strategy produced an exact answer.
  bool exact = false;
  /// False when a sampling cap was hit before the target interval.
  bool converged = true;
  /// Strategy that actually ran.
  Strategy strategy = Strategy::kExact;
  QueryKind kind = QueryKind::kCq;
  /// Width of the decomposition the execution ran on.
  double width = 0.0;
  /// Oracle work: hom-oracle calls plus estimator membership tests.
  uint64_t oracle_calls = 0;
  /// True when the plan came from the cache (decomposition not recomputed).
  bool plan_cache_hit = false;
  double plan_millis = 0.0;
  double exec_millis = 0.0;
  /// Canonical shape key (cache key sans database scope).
  std::string shape_key;
  /// Figure-1 verdict for the query's shape.
  std::string verdict;
};

/// Explain() output: the plan, without execution.
struct Explanation {
  QueryPlan plan;
  bool plan_cache_hit = false;
  double plan_millis = 0.0;
  /// Multi-line human-readable rendering.
  std::string text;
};

/// Thread-safe counting engine with a named-database registry, a shared
/// plan cache and a worker pool. All public methods may be called
/// concurrently.
class CountingEngine {
 public:
  explicit CountingEngine(EngineOptions opts = {});
  ~CountingEngine();

  /// Registers `db` under `name` (replacing any previous database of that
  /// name; plans cached for the old contents are invalidated). Relations
  /// are canonicalised eagerly so the shared snapshot is safe to read from
  /// concurrent workers. Queries refer to databases by name.
  Status RegisterDatabase(const std::string& name, Database db);

  /// Reads a database file (relational/database_io format) and registers it.
  Status RegisterDatabaseFile(const std::string& name, const std::string& path);

  /// Registered database names, sorted.
  std::vector<std::string> DatabaseNames() const;

  /// Plans (cached) and executes one counting request.
  StatusOr<EngineResult> Count(const CountRequest& request);
  StatusOr<EngineResult> Count(const std::string& query,
                               const std::string& database);

  /// Exact count via the brute-force strategy (plans for provenance only).
  StatusOr<EngineResult> CountExact(const std::string& query,
                                    const std::string& database);

  /// Plans without executing: the Figure-1 verdict, chosen strategy,
  /// decomposition shape and cost estimate.
  StatusOr<Explanation> Explain(const std::string& query,
                                const std::string& database);

  /// Executes independent requests concurrently. `num_threads` <= 0 uses
  /// the engine's own pool; otherwise a dedicated pool of that size is
  /// used. Results are positionally aligned with `requests` and are
  /// bitwise identical for every thread count (per-item derived seeds).
  std::vector<StatusOr<EngineResult>> CountBatch(
      const std::vector<CountRequest>& requests, int num_threads = 0);

  /// Plan-cache counters (hits mean the decomposition was not recomputed).
  PlanCacheStats CacheStats() const { return cache_.Stats(); }

  /// Drops all cached plans (e.g. after re-registering a database).
  void InvalidatePlans() { cache_.Clear(); }

  const EngineOptions& options() const { return opts_; }

 private:
  struct RegisteredDatabase {
    std::shared_ptr<const Database> db;
    /// Bumped on re-registration; part of the plan-cache key, so stale
    /// plans become unreachable and age out of the LRU.
    uint64_t generation = 0;
  };

  RegisteredDatabase FindDatabase(const std::string& name) const;

  /// Plans for (q, db) through the cache. Returns the shared plan and the
  /// query's canonical shape; sets `*cache_hit`.
  std::shared_ptr<const QueryPlan> GetOrBuildPlan(const Query& q,
                                                  const std::string& db_name,
                                                  uint64_t db_generation,
                                                  const Database& db,
                                                  CanonicalShape* shape,
                                                  bool* cache_hit);

  StatusOr<EngineResult> ExecutePlan(const Query& q, const Database& db,
                                     const QueryPlan& plan,
                                     const CanonicalShape& shape,
                                     const CountRequest& request);

  EngineOptions opts_;
  // Reader-writer lock: every Count in a batch resolves its database here,
  // so lookups must not serialise behind each other (registration is rare
  // and takes the exclusive side).
  mutable std::shared_mutex db_mu_;
  std::map<std::string, RegisteredDatabase> databases_;
  PlanCache cache_;
  std::unique_ptr<Executor> pool_;
};

}  // namespace cqcount

#endif  // CQCOUNT_ENGINE_ENGINE_H_
