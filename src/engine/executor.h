// Compatibility shim: the worker pool moved to util/ (PR 5) so the
// counting and automata layers can fan intra-query estimation out on it
// without depending on the engine. DeriveSeed lives in util/random.h.
#ifndef CQCOUNT_ENGINE_EXECUTOR_H_
#define CQCOUNT_ENGINE_EXECUTOR_H_

#include "util/executor.h"  // IWYU pragma: export

#endif  // CQCOUNT_ENGINE_EXECUTOR_H_
