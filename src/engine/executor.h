// Worker thread pool for concurrent query execution.
//
// The executor is deliberately dumb: a fixed set of worker threads draining
// a FIFO of closures. Determinism of batch results is achieved one level
// up — every batch item derives its own seed from (base seed, item index)
// via DeriveSeed, so the estimate a query produces is a pure function of
// the request, never of scheduling order or thread count.
#ifndef CQCOUNT_ENGINE_EXECUTOR_H_
#define CQCOUNT_ENGINE_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cqcount {

/// Derives the seed for batch item `index` from `base_seed` (SplitMix64
/// step). Deterministic and index-sensitive, so items never share RNG
/// streams regardless of execution order.
uint64_t DeriveSeed(uint64_t base_seed, uint64_t index);

/// A fixed-size worker pool executing submitted closures FIFO.
class Executor {
 public:
  explicit Executor(int num_threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted to the pool (by anyone) has
  /// finished. For waiting on just your own tasks, use ParallelFor.
  void Wait();

  /// Runs tasks 0..num_tasks-1 through `task(i)` on the pool and waits for
  /// exactly those tasks. Safe to call from several threads sharing one
  /// pool: each call tracks its own completion.
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& task);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cqcount

#endif  // CQCOUNT_ENGINE_EXECUTOR_H_
