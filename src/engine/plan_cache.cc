#include "engine/plan_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "obs/metrics.h"

namespace cqcount {
namespace {

// Registry mirrors of the per-shard counters (summed across every
// PlanCache in the process). The per-shard fields stay authoritative for
// CacheStats(); the metrics feed `stats` JSON and dashboards.
struct PlanCacheMetrics {
  obs::Counter& hits = obs::MetricRegistry::Global().GetCounter(
      "plan_cache.hits", "Plan-cache lookups served from the cache");
  obs::Counter& misses = obs::MetricRegistry::Global().GetCounter(
      "plan_cache.misses", "Plan-cache lookups that required a plan build");
  obs::Counter& insertions = obs::MetricRegistry::Global().GetCounter(
      "plan_cache.insertions", "Plans inserted into the cache");
  obs::Counter& evictions = obs::MetricRegistry::Global().GetCounter(
      "plan_cache.evictions", "Plans (and their shape profiles) LRU-evicted");

  static PlanCacheMetrics& Get() {
    static PlanCacheMetrics* metrics = new PlanCacheMetrics();
    return *metrics;
  }
};

// Eager registration at load: every metric name appears in `stats` JSON
// (schema validation) even on code paths that never touch it.
[[maybe_unused]] const PlanCacheMetrics& kPlanCacheMetricsInit = PlanCacheMetrics::Get();

}  // namespace

PlanCache::PlanCache(size_t capacity, size_t num_shards) {
  num_shards = std::max<size_t>(1, num_shards);
  per_shard_capacity_ = std::max<size_t>(1, (capacity + num_shards - 1) / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  const size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const QueryPlan> PlanCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    PlanCacheMetrics::Get().misses.Increment();
    return nullptr;
  }
  ++shard.hits;
  PlanCacheMetrics::Get().hits.Increment();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const QueryPlan> plan) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->plan = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
    PlanCacheMetrics::Get().evictions.Increment();
  }
  shard.lru.push_front(Entry{key, std::move(plan), {}});
  shard.index[key] = shard.lru.begin();
  ++shard.insertions;
  PlanCacheMetrics::Get().insertions.Increment();
}

void PlanCache::RecordObservation(const std::string& key, double exec_millis,
                                  uint64_t oracle_calls,
                                  uint64_t estimator_calls, double estimate,
                                  bool converged) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;  // Evicted since execution began.
  it->second->profile.Observe(exec_millis, oracle_calls, estimator_calls,
                              estimate, converged);
}

std::optional<obs::ShapeProfile> PlanCache::Profile(
    const std::string& key) const {
  // Profile reads are provenance (Explain), not execution: bypass LRU
  // touching. const_cast only for ShardFor's non-const signature.
  Shard& shard = const_cast<PlanCache*>(this)->ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end() || it->second->profile.runs == 0) {
    return std::nullopt;
  }
  return it->second->profile;
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

PlanCacheStats PlanCache::Stats() const {
  PlanCacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace cqcount
