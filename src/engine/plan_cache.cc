#include "engine/plan_cache.h"

#include <algorithm>
#include <functional>

namespace cqcount {

PlanCache::PlanCache(size_t capacity, size_t num_shards) {
  num_shards = std::max<size_t>(1, num_shards);
  per_shard_capacity_ = std::max<size_t>(1, (capacity + num_shards - 1) / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  const size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const QueryPlan> PlanCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const QueryPlan> plan) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.emplace_front(key, std::move(plan));
  shard.index[key] = shard.lru.begin();
  ++shard.insertions;
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

PlanCacheStats PlanCache::Stats() const {
  PlanCacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace cqcount
