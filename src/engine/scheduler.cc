#include "engine/scheduler.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cqcount {
namespace {

// Scheduler decision metrics, fed once per adaptive count / component —
// never inside sampling loops.
struct SchedulerMetrics {
  obs::Counter& profile_predictions = obs::MetricRegistry::Global().GetCounter(
      "scheduler.profile_predictions",
      "Cost predictions served from observed ShapeProfile history");
  obs::Counter& plan_predictions = obs::MetricRegistry::Global().GetCounter(
      "scheduler.plan_predictions",
      "Cost predictions that fell back to the planner's static estimate "
      "(cold shape)");
  obs::Counter& budget_splits = obs::MetricRegistry::Global().GetCounter(
      "scheduler.budget_splits",
      "Marginal-cost (epsilon, delta) allocations computed");
  obs::Counter& early_stops = obs::MetricRegistry::Global().GetCounter(
      "scheduler.early_stops",
      "Component executions terminated early by the CLT/hard-bounds rule");
  obs::Counter& runs_saved = obs::MetricRegistry::Global().GetCounter(
      "scheduler.runs_saved",
      "Outer-median runs scheduled but skipped by early termination");

  static SchedulerMetrics& Get() {
    static SchedulerMetrics* metrics = new SchedulerMetrics();
    return *metrics;
  }
};

// Eager registration at load: every metric name appears in `stats` JSON
// (schema validation) even on code paths that never touch it.
[[maybe_unused]] const SchedulerMetrics& kSchedulerMetricsInit =
    SchedulerMetrics::Get();

}  // namespace

CostPrediction AdaptiveScheduler::Predict(
    const QueryPlan& plan,
    const std::optional<obs::ShapeProfile>& observed) const {
  CostPrediction prediction;
  if (observed.has_value() && observed->runs >= opts_.min_profile_runs) {
    // Accuracy-relevant cost units come from the deterministic
    // estimator-call counter; the oracle-call mean (also lane-invariant)
    // sizes trials budgets and reporting; millis only ever drives lane
    // grants (scheduling-only), so timing noise cannot leak into the
    // arithmetic.
    prediction.oracle_calls = observed->MeanOracleCalls();
    prediction.cost_units = std::max(observed->MeanEstimatorCalls(), 1.0);
    prediction.millis = observed->MeanExecMillis();
    prediction.variance_millis = observed->VarianceExecMillis();
    prediction.source = CostSource::kObservedProfile;
    SchedulerMetrics::Get().profile_predictions.Increment();
  } else {
    prediction.cost_units = std::max(plan.cost_estimate, 1.0);
    prediction.source = CostSource::kPlanEstimate;
    SchedulerMetrics::Get().plan_predictions.Increment();
  }
  return prediction;
}

std::vector<BudgetShare> AdaptiveScheduler::SplitBudgets(
    double epsilon, double delta,
    const std::vector<SchedulerComponent>& components) const {
  obs::Span span("scheduler.budget_split");
  SchedulerMetrics::Get().budget_splits.Increment();
  size_t estimated_total = 0;
  size_t counting = 0;
  double weight_sum = 0.0;
  for (const SchedulerComponent& c : components) {
    if (!c.estimated) continue;
    ++estimated_total;
    if (c.existential) continue;
    ++counting;
    weight_sum += std::cbrt(std::max(c.cost.cost_units, 1.0));
  }
  std::vector<BudgetShare> shares(components.size());
  // Same delta/n union bound as SplitBudget; only the epsilon weighting
  // differs.
  const double delta_share =
      estimated_total > 1 ? delta / static_cast<double>(estimated_total)
                          : delta;
  // Total counting epsilon mass: eps/2 for k > 1 (the product-guarantee
  // budget), the full eps for a single counting component (bitwise parity
  // with the unfactored path).
  const double mass = counting > 1 ? epsilon / 2.0 : epsilon;
  const double floor =
      counting > 1
          ? opts_.eps_floor_fraction * mass / static_cast<double>(counting)
          : 0.0;
  const double distributable =
      mass - floor * static_cast<double>(counting);
  for (size_t i = 0; i < components.size(); ++i) {
    const SchedulerComponent& c = components[i];
    if (!c.estimated) continue;  // Zero share for exact factors.
    shares[i].delta = delta_share;
    if (c.existential) {
      // A 0/1 factor survives any relative error below 1 (see
      // SplitBudget): fixed loose epsilon, no shared budget consumed.
      shares[i].epsilon = 0.5;
    } else if (counting <= 1) {
      shares[i].epsilon = mass;
    } else {
      const double weight = std::cbrt(std::max(c.cost.cost_units, 1.0));
      shares[i].epsilon = floor + distributable * weight / weight_sum;
    }
  }
  return shares;
}

int AdaptiveScheduler::PlanLanes(Strategy strategy, const CostPrediction& cost,
                                 int configured_lanes, int pool_lanes,
                                 double static_min_cost) const {
  // Exact strategies are decision-free scans: nothing to partition.
  if (strategy == Strategy::kExact) return 1;
  int lanes = configured_lanes != 0 ? configured_lanes : pool_lanes;
  lanes = std::max(1, lanes);
  if (cost.source == CostSource::kObservedProfile) {
    // Observed wall time replaces the static cost-unit constant: grant
    // lanes only when the estimate has been seen to run long enough to
    // amortise fan-out setup.
    return cost.millis >= opts_.min_fanout_millis ? lanes : 1;
  }
  return cost.cost_units >= static_min_cost ? lanes : 1;
}

double AdaptiveScheduler::PerCallFailure(double delta,
                                         const CostPrediction& cost) const {
  if (cost.source != CostSource::kObservedProfile || cost.oracle_calls <= 0.0) {
    return 0.0;  // Cold shape: keep the module's worst-case union bound.
  }
  const double predicted =
      std::max(cost.oracle_calls, 1.0) * opts_.trials_safety_factor;
  return std::min(delta / (2.0 * predicted), opts_.max_per_call_failure);
}

void RecordAdaptiveOutcome(StopReason stop_reason, int completed_runs,
                           int total_runs) {
  SchedulerMetrics& metrics = SchedulerMetrics::Get();
  if (stop_reason == StopReason::kConfidence ||
      stop_reason == StopReason::kHardBounds) {
    metrics.early_stops.Increment();
    if (total_runs > completed_runs) {
      metrics.runs_saved.Add(static_cast<uint64_t>(total_runs - completed_runs));
    }
  }
}

}  // namespace cqcount
