#include "engine/engine.h"

#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "automata/fpras.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "query/parser.h"
#include "relational/database_io.h"
#include "util/timer.h"

namespace cqcount {

CountingEngine::CountingEngine(EngineOptions opts)
    : opts_(opts),
      cache_(opts.plan_cache_capacity, opts.plan_cache_shards) {
  int threads = opts_.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  opts_.num_threads = threads;
  pool_ = std::make_unique<Executor>(threads);
}

CountingEngine::~CountingEngine() = default;

Status CountingEngine::RegisterDatabase(const std::string& name, Database db) {
  if (name.empty()) {
    return Status::InvalidArgument("database name must be non-empty");
  }
  // Canonicalise now, while the database is still exclusively owned:
  // afterwards every const access is genuinely read-only (the flat
  // storage has no lazy-sort mutation), so the shared snapshot is safe
  // for concurrent batch workers.
  db.Canonicalize();
  auto shared = std::make_shared<const Database>(std::move(db));
  std::unique_lock<std::shared_mutex> lock(db_mu_);
  RegisteredDatabase& entry = databases_[name];
  // Bump the generation on replacement: cached plans for the old contents
  // become unreachable (their keys embed the generation) and age out.
  if (entry.db != nullptr) ++entry.generation;
  entry.db = std::move(shared);
  return Status::Ok();
}

Status CountingEngine::RegisterDatabaseFile(const std::string& name,
                                            const std::string& path) {
  auto db = ReadDatabaseFile(path);
  if (!db.ok()) return db.status();
  return RegisterDatabase(name, *std::move(db));
}

std::vector<std::string> CountingEngine::DatabaseNames() const {
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  std::vector<std::string> names;
  names.reserve(databases_.size());
  for (const auto& [name, db] : databases_) names.push_back(name);
  return names;
}

CountingEngine::RegisteredDatabase CountingEngine::FindDatabase(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  auto it = databases_.find(name);
  return it == databases_.end() ? RegisteredDatabase{} : it->second;
}

std::shared_ptr<const QueryPlan> CountingEngine::GetOrBuildPlan(
    const Query& q, const std::string& db_name, uint64_t db_generation,
    const Database& db, CanonicalShape* shape, bool* cache_hit) {
  *shape = CanonicalQueryShape(q);
  // Scope by database name and generation: the same shape may warrant
  // different strategies on differently sized databases, and re-registered
  // contents must never reuse plans costed against the old database.
  const std::string key = db_name + "\x1f" + std::to_string(db_generation) +
                          "\x1f" + shape->key;
  if (auto cached = cache_.Lookup(key)) {
    *cache_hit = true;
    return cached;
  }
  *cache_hit = false;
  auto plan = std::make_shared<const QueryPlan>(
      BuildQueryPlan(q, *shape, db, opts_.plan));
  cache_.Insert(key, plan);
  return plan;
}

StatusOr<EngineResult> CountingEngine::ExecutePlan(
    const Query& q, const Database& db, const QueryPlan& plan,
    const CanonicalShape& shape, const CountRequest& request) {
  EngineResult result;
  result.strategy = request.force_exact ? Strategy::kExact : plan.strategy;
  result.kind = plan.classification.kind;
  result.width = plan.decomposition.width;
  result.shape_key = plan.shape_key;
  result.verdict = plan.classification.verdict;

  const double epsilon = request.epsilon > 0 ? request.epsilon : opts_.epsilon;
  const double delta = request.delta > 0 ? request.delta : opts_.delta;
  const uint64_t seed =
      request.seed != 0 ? request.seed : DeriveSeed(opts_.seed, 0);

  // The cached decomposition lives in canonical numbering; the strategies
  // that run on it map it onto this query's variables (the exact path
  // never touches it, so it is built lazily).
  FWidthResult local;
  auto instantiate = [&]() -> const FWidthResult* {
    local = plan.decomposition;
    local.decomposition = InstantiateDecomposition(
        plan.decomposition.decomposition, shape.to_canonical);
    local.order.clear();  // The elimination order is unused by execution.
    return &local;
  };

  WallTimer timer;
  switch (result.strategy) {
    case Strategy::kExact: {
      result.estimate =
          static_cast<double>(ExactCountAnswersBruteForce(q, db));
      result.exact = true;
      break;
    }
    case Strategy::kFptrasTreewidth:
    case Strategy::kFptrasFhw: {
      ApproxOptions opts;
      opts.epsilon = epsilon;
      opts.delta = delta;
      opts.seed = seed;
      opts.objective = plan.objective;
      opts.exact_decomposition_limit = opts_.plan.exact_decomposition_limit;
      opts.precomputed_decomposition = instantiate();
      auto approx = ApproxCountAnswers(q, db, opts);
      if (!approx.ok()) return approx.status();
      result.estimate = approx->estimate;
      result.exact = approx->exact;
      result.converged = approx->converged;
      result.oracle_calls = approx->hom_queries + approx->edgefree_calls;
      break;
    }
    case Strategy::kAutomataFpras: {
      FprasOptions opts;
      opts.acjr.epsilon = epsilon;
      opts.acjr.delta = delta;
      opts.acjr.seed = seed;
      opts.objective = plan.objective;
      opts.exact_decomposition_limit = opts_.plan.exact_decomposition_limit;
      opts.precomputed_decomposition = instantiate();
      auto fpras = FprasCountCq(q, db, opts);
      if (!fpras.ok()) return fpras.status();
      result.estimate = fpras->estimate;
      result.exact = fpras->exact;
      result.converged = fpras->converged;
      result.oracle_calls = fpras->membership_tests;
      break;
    }
    case Strategy::kSampler: {
      return Status::InvalidArgument(
          "sampler strategy is not a counting strategy");
    }
  }
  result.exec_millis = timer.Millis();
  return result;
}

StatusOr<EngineResult> CountingEngine::Count(const CountRequest& request) {
  RegisteredDatabase db = FindDatabase(request.database);
  if (db.db == nullptr) {
    return Status::NotFound("no database registered as '" + request.database +
                            "'");
  }
  auto query = ParseQuery(request.query);
  if (!query.ok()) return query.status();
  Status compatible = query->CheckAgainstDatabase(*db.db);
  if (!compatible.ok()) return compatible;

  WallTimer plan_timer;
  CanonicalShape shape;
  bool cache_hit = false;
  auto plan = GetOrBuildPlan(*query, request.database, db.generation, *db.db,
                             &shape, &cache_hit);
  const double plan_millis = plan_timer.Millis();

  auto result = ExecutePlan(*query, *db.db, *plan, shape, request);
  if (!result.ok()) return result;
  result->plan_cache_hit = cache_hit;
  result->plan_millis = plan_millis;
  return result;
}

StatusOr<EngineResult> CountingEngine::Count(const std::string& query,
                                             const std::string& database) {
  CountRequest request;
  request.query = query;
  request.database = database;
  return Count(request);
}

StatusOr<EngineResult> CountingEngine::CountExact(const std::string& query,
                                                  const std::string& database) {
  CountRequest request;
  request.query = query;
  request.database = database;
  request.force_exact = true;
  return Count(request);
}

StatusOr<Explanation> CountingEngine::Explain(const std::string& query,
                                              const std::string& database) {
  RegisteredDatabase db = FindDatabase(database);
  if (db.db == nullptr) {
    return Status::NotFound("no database registered as '" + database + "'");
  }
  auto q = ParseQuery(query);
  if (!q.ok()) return q.status();
  Status compatible = q->CheckAgainstDatabase(*db.db);
  if (!compatible.ok()) return compatible;

  WallTimer timer;
  CanonicalShape shape;
  Explanation out;
  auto plan = GetOrBuildPlan(*q, database, db.generation, *db.db, &shape,
                             &out.plan_cache_hit);
  out.plan_millis = timer.Millis();
  out.plan = *plan;

  const Classification& cls = plan->classification;
  std::ostringstream text;
  text << "query: " << q->ToString() << "\n"
       << "kind: "
       << (cls.kind == QueryKind::kCq    ? "CQ"
           : cls.kind == QueryKind::kDcq ? "DCQ"
                                         : "ECQ")
       << "  vars: " << cls.num_vars << " (" << cls.num_free << " free)"
       << "  ||phi||: " << cls.phi_size << "\n"
       << "widths: tw<=" << cls.treewidth << "  fhw<=" << cls.fhw << "\n"
       << "verdict: " << cls.verdict << "\n"
       << "strategy: " << StrategyName(plan->strategy)
       << "  (decomposition: " << plan->decomposition.decomposition.num_nodes()
       << " bags, width " << plan->decomposition.width << ")\n"
       << "cost estimate: " << plan->cost_estimate
       << "  plan cache: " << (out.plan_cache_hit ? "hit" : "miss") << "\n";
  out.text = text.str();
  return out;
}

std::vector<StatusOr<EngineResult>> CountingEngine::CountBatch(
    const std::vector<CountRequest>& requests, int num_threads) {
  std::vector<StatusOr<EngineResult>> results(
      requests.size(), StatusOr<EngineResult>(Status::Internal("not executed")));
  auto run_item = [&](size_t i) {
    CountRequest request = requests[i];
    if (request.seed == 0) {
      request.seed = DeriveSeed(opts_.seed, static_cast<uint64_t>(i));
    }
    results[i] = Count(request);
  };
  if (num_threads == 1) {
    for (size_t i = 0; i < requests.size(); ++i) run_item(i);
  } else if (num_threads <= 0 || num_threads == pool_->num_threads()) {
    pool_->ParallelFor(requests.size(), run_item);
  } else {
    Executor dedicated(num_threads);
    dedicated.ParallelFor(requests.size(), run_item);
  }
  return results;
}

}  // namespace cqcount
