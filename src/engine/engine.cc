#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "relational/database_io.h"
#include "relational/segment.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace cqcount {
namespace {

bool AllCacheHits(const std::vector<bool>& hits) {
  return !hits.empty() &&
         std::all_of(hits.begin(), hits.end(), [](bool hit) { return hit; });
}

// Engine-level metrics, fed once per Count/Explain/batch item — far off
// any sampling hot path, so the registry adds cost nothing measurable.
struct EngineMetrics {
  obs::Counter& counts = obs::MetricRegistry::Global().GetCounter(
      "engine.counts", "Count() executions (including batch items)");
  obs::Counter& count_errors = obs::MetricRegistry::Global().GetCounter(
      "engine.count_errors", "Count() executions that returned an error");
  obs::Counter& batch_items = obs::MetricRegistry::Global().GetCounter(
      "engine.batch_items", "Requests executed through CountBatch()");
  obs::Counter& guard_blocked = obs::MetricRegistry::Global().GetCounter(
      "engine.guard_blocked",
      "Counts short-circuited to zero by a false nullary guard");
  obs::Counter& components = obs::MetricRegistry::Global().GetCounter(
      "engine.components_executed",
      "Gaifman components executed across all counts");
  obs::Counter& cancelled = obs::MetricRegistry::Global().GetCounter(
      "engine.cancelled",
      "Counts interrupted by request cancellation (partial or typed error)");
  obs::Counter& deadline_exceeded = obs::MetricRegistry::Global().GetCounter(
      "engine.deadline_exceeded",
      "Counts whose time budget expired (partial or typed error)");
  obs::Counter& partial_results = obs::MetricRegistry::Global().GetCounter(
      "engine.partial_results",
      "Counts that returned an anytime partial answer with hard bounds");
  obs::Histogram& plan_us = obs::MetricRegistry::Global().GetHistogram(
      "engine.plan_us", "Compile+plan wall time per count, microseconds");
  obs::Histogram& exec_us = obs::MetricRegistry::Global().GetHistogram(
      "engine.exec_us", "Execution wall time per count, microseconds");

  static EngineMetrics& Get() {
    static EngineMetrics* metrics = new EngineMetrics();
    return *metrics;
  }
};

// Eager registration at load: every metric name appears in `stats` JSON
// (schema validation) even on code paths that never touch it.
[[maybe_unused]] const EngineMetrics& kEngineMetricsInit = EngineMetrics::Get();

// Hard cap on one never-started component's factor: |U|^num_free answer
// tuples at most (existential components contribute a 0/1 factor).
// Clamped so partial intervals always have finite endpoints.
double ComponentFactorCap(uint32_t universe, int num_free, bool existential) {
  if (existential) return 1.0;
  const double cap =
      std::pow(static_cast<double>(universe), static_cast<double>(num_free));
  return std::isfinite(cap) ? cap : std::numeric_limits<double>::max();
}

}  // namespace

CountingEngine::CountingEngine(EngineOptions opts)
    : opts_(opts),
      scheduler_(opts.scheduler),
      cache_(opts.plan_cache_capacity, opts.plan_cache_shards) {
  int threads = opts_.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  opts_.num_threads = threads;
  pool_ = std::make_unique<Executor>(threads);
}

CountingEngine::~CountingEngine() = default;

Status CountingEngine::RegisterDatabase(const std::string& name, Database db) {
  if (name.empty()) {
    return Status::InvalidArgument("database name must be non-empty");
  }
  // Fault-injection site: lets tests exercise registration failure paths
  // (and callers' handling of them) without an unwritable disk.
  Status fp = failpoint::Check("engine.register_database");
  if (!fp.ok()) return fp;
  // Canonicalise now, while the database is still exclusively owned:
  // afterwards every const access is genuinely read-only (the flat
  // storage has no lazy-sort mutation), so the shared snapshot is safe
  // for concurrent batch workers. Zone maps are built here too (a no-op
  // for mmap'd segment relations, which carry theirs from the file), so
  // both storage backends prune identically and estimates stay
  // bit-identical between them.
  db.Canonicalize();
  db.BuildZoneMaps();
  auto shared = std::make_shared<const Database>(std::move(db));
  std::unique_lock<std::shared_mutex> lock(db_mu_);
  RegisteredDatabase& entry = databases_[name];
  // Bump the generation on replacement: cached plans for the old contents
  // become unreachable (their keys embed the generation) and age out.
  if (entry.db != nullptr) ++entry.generation;
  entry.db = std::move(shared);
  return Status::Ok();
}

Status CountingEngine::RegisterDatabaseFile(const std::string& name,
                                            const std::string& path) {
  // Segment files mmap in O(1) (no copy, no sort — canonical order and
  // zone maps are format invariants); text files parse and canonicalise.
  // Cold-open cost is recorded either way so `stats` shows what
  // registration paid per backend.
  static obs::Counter& cold_opens = obs::MetricRegistry::Global().GetCounter(
      "engine.db_cold_opens", "databases registered from files");
  static obs::Histogram& cold_open_us =
      obs::MetricRegistry::Global().GetHistogram(
          "engine.db_cold_open_us",
          "file-to-registered latency, microseconds");
  WallTimer timer;
  auto db = LoadDatabaseAuto(path);
  if (!db.ok()) return db.status();
  Status s = RegisterDatabase(name, *std::move(db));
  if (s.ok()) {  // Count registrations, not failed attempts.
    cold_opens.Increment();
    cold_open_us.Observe(static_cast<uint64_t>(timer.Millis() * 1000.0));
  }
  return s;
}

std::vector<std::string> CountingEngine::DatabaseNames() const {
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  std::vector<std::string> names;
  names.reserve(databases_.size());
  for (const auto& [name, db] : databases_) names.push_back(name);
  return names;
}

CountingEngine::RegisteredDatabase CountingEngine::FindDatabase(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  auto it = databases_.find(name);
  return it == databases_.end() ? RegisteredDatabase{} : it->second;
}

std::shared_ptr<const QueryPlan> CountingEngine::GetOrBuildPlan(
    const Query& q, const CanonicalShape& shape, const std::string& key,
    const Database& db, bool* cache_hit) {
  if (auto cached = cache_.Lookup(key)) {
    *cache_hit = true;
    return cached;
  }
  *cache_hit = false;
  obs::Span span("plan.build");
  auto plan = std::make_shared<const QueryPlan>(
      BuildQueryPlan(q, shape, db, opts_.plan));
  cache_.Insert(key, plan);
  return plan;
}

CountingEngine::PlannedQuery CountingEngine::CompileAndPlan(
    const Query& q, const std::string& db_name, uint64_t db_generation,
    const Database& db) {
  PlannedQuery planned;
  {
    obs::Span span("engine.compile");
    WallTimer timer;
    planned.compiled = CompileQuery(q, opts_.compile);
    planned.compile_millis = timer.Millis();
  }
  obs::Span span("engine.plan");
  WallTimer timer;
  planned.plans.reserve(planned.compiled.components.size());
  planned.cache_hits.reserve(planned.compiled.components.size());
  planned.keys.reserve(planned.compiled.components.size());
  double dominant_cost = -1.0;
  for (size_t i = 0; i < planned.compiled.components.size(); ++i) {
    const QueryComponent& component = planned.compiled.components[i];
    // Scope by database name and generation: the same shape may warrant
    // different strategies on differently sized databases, and
    // re-registered contents must never reuse plans costed against the
    // old database.
    planned.keys.push_back(db_name + "\x1f" + std::to_string(db_generation) +
                           "\x1f" + component.shape.key);
    bool cache_hit = false;
    planned.plans.push_back(GetOrBuildPlan(component.query, component.shape,
                                           planned.keys.back(), db,
                                           &cache_hit));
    planned.cache_hits.push_back(cache_hit);
    if (planned.plans.back()->cost_estimate > dominant_cost) {
      dominant_cost = planned.plans.back()->cost_estimate;
      planned.dominant = static_cast<int>(i);
    }
  }
  planned.plan_millis = timer.Millis();
  return planned;
}

int CountingEngine::IntraQueryLanes(Strategy strategy,
                                    double cost_estimate) const {
  // Cost model: exact strategies are decision-free table scans (no DLM
  // loop to partition) and cheap estimates finish before fan-out pays
  // for itself; only wide estimated components get workers.
  if (strategy == Strategy::kExact) return 1;
  if (cost_estimate < opts_.intra_query_min_cost) return 1;
  int lanes = opts_.intra_query_threads;
  if (lanes == 0) lanes = pool_->num_threads();
  return std::max(1, lanes);
}

std::vector<BudgetShare> CountingEngine::ComponentBudgets(
    const PlannedQuery& planned, double epsilon, double delta,
    bool force_exact) const {
  const auto& components = planned.compiled.components;
  // Exact factors are free: only components whose effective strategy
  // estimates split the budget — epsilon over the estimated counting
  // factors, delta over every estimated factor (union bound).
  auto estimates = [&](size_t i) {
    return !force_exact &&
           planned.plans[i]->strategy != Strategy::kExact;
  };
  size_t estimated_total = 0;
  size_t estimated_counting = 0;
  for (size_t i = 0; i < components.size(); ++i) {
    if (!estimates(i)) continue;
    ++estimated_total;
    if (!components[i].existential) ++estimated_counting;
  }
  std::vector<BudgetShare> shares(components.size());
  for (size_t i = 0; i < components.size(); ++i) {
    if (!estimates(i)) continue;  // Zero share for exact factors.
    shares[i] = SplitBudget(epsilon, delta, estimated_counting,
                            estimated_total, components[i].existential);
  }
  return shares;
}

Status CountingEngine::ValidateRequest(const CountRequest& request) const {
  if (request.database.empty()) {
    return Status::InvalidArgument("database name must be non-empty");
  }
  // Accuracy overrides: 0 means "engine default"; anything else must be a
  // finite value strictly inside (0, 1). NaN fails every comparison, so
  // it cannot slip through as "unset" (the historical `epsilon > 0` test
  // silently swallowed NaN).
  auto valid_accuracy = [](double v) {
    return v == 0.0 || (std::isfinite(v) && v > 0.0 && v < 1.0);
  };
  if (!valid_accuracy(request.epsilon)) {
    return Status::InvalidArgument(
        "epsilon override must be a finite value in (0, 1), or 0 for the "
        "engine default");
  }
  if (!valid_accuracy(request.delta)) {
    return Status::InvalidArgument(
        "delta override must be a finite value in (0, 1), or 0 for the "
        "engine default");
  }
  if (request.query.size() > opts_.max_query_bytes) {
    return Status::InvalidArgument(
        "query text of " + std::to_string(request.query.size()) +
        " bytes exceeds the engine's max_query_bytes (" +
        std::to_string(opts_.max_query_bytes) + ")");
  }
  return Status::Ok();
}

StatusOr<EngineResult> CountingEngine::ExecutePlanned(
    const PlannedQuery& planned, const Database& db,
    const CountRequest& request, const ResourceGovernor* governor) {
  obs::Span exec_span("engine.execute");
  const CompiledQuery& compiled = planned.compiled;
  EngineResult result;
  result.kind = compiled.normalized.Kind();
  result.num_components = static_cast<int>(compiled.num_components());
  result.atoms_deduped = compiled.stats.atoms_deduped;
  result.variables_pruned = compiled.stats.variables_pruned;
  result.guards_evaluated = static_cast<int>(compiled.guards.size());
  result.plan_cache_hit = AllCacheHits(planned.cache_hits);
  {
    std::vector<std::string> keys;
    keys.reserve(compiled.components.size());
    for (const QueryComponent& c : compiled.components)
      keys.push_back(c.shape.key);
    std::sort(keys.begin(), keys.end());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i > 0) result.shape_key += " * ";
      result.shape_key += keys[i];
    }
  }
  if (planned.dominant >= 0) {
    const QueryPlan& dominant = *planned.plans[planned.dominant];
    result.strategy =
        request.force_exact ? Strategy::kExact : dominant.strategy;
    result.verdict = dominant.classification.verdict;
  }

  const double epsilon = request.epsilon > 0 ? request.epsilon : opts_.epsilon;
  const double delta = request.delta > 0 ? request.delta : opts_.delta;
  const uint64_t base_seed =
      request.seed != 0 ? request.seed : DeriveSeed(opts_.seed, 0);

  WallTimer timer;
  // A false guard makes the whole product a certain zero: components are
  // still reported (plan provenance) but not executed.
  bool guards_hold = true;
  for (const NullaryGuard& guard : compiled.guards) {
    if (!GuardHolds(guard, db)) {
      guards_hold = false;
      break;
    }
  }

  const size_t k_total = compiled.num_components();
  // Adaptive scheduling (opt-in): predict per-component cost from the
  // shape's observed history and replace the even budget split with the
  // marginal-cost allocation. force_exact bypasses it — there is no
  // accuracy budget to allocate.
  const bool adaptive = opts_.adaptive && !request.force_exact;
  result.adaptive = adaptive;
  std::vector<CostPrediction> predictions;
  std::vector<BudgetShare> budgets;
  if (adaptive) {
    obs::Span schedule_span("engine.schedule");
    predictions.resize(k_total);
    std::vector<SchedulerComponent> sched(k_total);
    for (size_t i = 0; i < k_total; ++i) {
      predictions[i] =
          scheduler_.Predict(*planned.plans[i], cache_.Profile(planned.keys[i]));
      sched[i].estimated = planned.plans[i]->strategy != Strategy::kExact;
      sched[i].existential = compiled.components[i].existential;
      sched[i].cost = predictions[i];
    }
    budgets = scheduler_.SplitBudgets(epsilon, delta, sched);
  } else {
    budgets = ComponentBudgets(planned, epsilon, delta, request.force_exact);
  }
  const ExecutorRegistry& registry = ExecutorRegistry::Default();

  double product = 1.0;
  bool all_exact = true;
  bool all_converged = true;
  // Latched once the governor fires (directly, via a partial component
  // outcome, or via a typed governance status): later components are not
  // started — their factors enter the interval as [0, cap].
  bool interrupted = false;
  result.components.reserve(k_total);
  for (size_t i = 0; i < k_total; ++i) {
    const QueryComponent& component = compiled.components[i];
    const QueryPlan& plan = *planned.plans[i];
    obs::Span component_span("component.execute");
    WallTimer component_timer;
    // Component-boundary checkpoint.
    if (!interrupted && governor != nullptr &&
        governor->Check() != GovernanceState::kRunning) {
      interrupted = true;
    }
    ComponentResult cr;
    cr.strategy = request.force_exact ? Strategy::kExact : plan.strategy;
    cr.width = plan.decomposition.width;
    cr.num_vars = component.query.num_vars();
    cr.num_free = component.query.num_free();
    cr.existential = component.existential;
    cr.plan_cache_hit = planned.cache_hits[i];
    cr.shape_key = plan.shape_key;
    cr.verdict = plan.classification.verdict;
    const BudgetShare& share = budgets[i];
    cr.epsilon = share.epsilon;
    cr.delta = share.delta;
    if (adaptive) {
      cr.cost_source = CostSourceName(predictions[i].source);
      cr.predicted_millis = predictions[i].millis;
      cr.predicted_oracle_calls = predictions[i].oracle_calls;
    }
    result.width = std::max(result.width, cr.width);

    if (guards_hold && !interrupted) {
      const StrategyExecutor* executor = registry.Find(cr.strategy);
      if (executor == nullptr) {
        return Status::Internal(std::string("no executor registered for ") +
                                StrategyName(cr.strategy));
      }
      ExecContext ctx;
      ctx.query = &component.query;
      ctx.db = &db;
      ctx.plan = &plan;
      ctx.shape = &component.shape;
      // Single-component queries keep the request seed verbatim, so the
      // engine path is bitwise identical to the direct pipeline; factored
      // queries give every component its own derived stream.
      ctx.budget.epsilon = share.epsilon;
      ctx.budget.delta = share.delta;
      ctx.budget.seed =
          k_total == 1 ? base_seed : DeriveSeed(base_seed, static_cast<uint64_t>(i));
      ctx.exact_decomposition_limit = opts_.plan.exact_decomposition_limit;
      // Intra-query fan-out (scheduling only: the estimate is the same
      // at every lane count, so the cost model needs no second-guessing).
      // The adaptive path gates lanes on observed wall time once the
      // shape has history.
      const int lanes =
          adaptive ? scheduler_.PlanLanes(cr.strategy, predictions[i],
                                          opts_.intra_query_threads,
                                          pool_->num_threads(),
                                          opts_.intra_query_min_cost)
                   : IntraQueryLanes(cr.strategy, plan.cost_estimate);
      ctx.pool = lanes > 1 ? pool_.get() : nullptr;
      ctx.intra_threads = lanes;
      ctx.governor = governor;
      ctx.max_oracle_calls = request.max_oracle_calls;
      if (adaptive) {
        ctx.adaptive.early_stop = true;
        ctx.adaptive.min_early_stop_runs =
            scheduler_.options().min_early_stop_runs;
        ctx.adaptive.per_call_failure =
            scheduler_.PerCallFailure(share.delta, predictions[i]);
      }
      auto outcome = executor->Execute(ctx);
      if (!outcome.ok()) {
        // A typed governance status means the checkpoint fired before any
        // unit of this component completed: the component stays
        // unexecuted and the remaining loop records planning provenance
        // only. Anything else is a real failure.
        const StatusCode code = outcome.status().code();
        const bool governance_stop =
            governor != nullptr && governor->fired() &&
            (code == StatusCode::kCancelled ||
             code == StatusCode::kDeadlineExceeded);
        if (!governance_stop) return outcome.status();
        interrupted = true;
      } else {
        cr.executed = true;
        cr.estimate = outcome->estimate;
        cr.exact = outcome->exact;
        cr.converged = outcome->converged;
        cr.partial = outcome->partial;
        cr.lower_bound = outcome->lower_bound;
        cr.upper_bound = outcome->upper_bound;
        cr.stop_reason = outcome->stop_reason;
        cr.rounds_executed = outcome->rounds_executed;
        cr.completed_runs = outcome->completed_runs;
        cr.total_runs = outcome->total_runs;
        if (cr.partial) interrupted = true;
        cr.oracle_calls = outcome->oracle_calls;
        cr.estimator_calls = outcome->estimator_calls;
        cr.dp_prepared_decides = outcome->dp_prepared_decides;
        cr.dp_cached_bag_rows = outcome->dp_cached_bag_rows;
        cr.dp_prepared_path = outcome->dp_prepared_path;
        cr.colouring_trials_per_call = outcome->colouring_trials_per_call;
        cr.parallel = outcome->parallel;
        result.parallel.Merge(outcome->parallel);
        all_exact = all_exact && cr.exact;
        all_converged = all_converged && cr.converged;
        result.oracle_calls += cr.oracle_calls;
        // Purely-existential components collapse to a boolean factor: any
        // relative-error estimate preserves zero vs non-zero.
        product *= component.existential ? (cr.estimate > 0.0 ? 1.0 : 0.0)
                                         : cr.estimate;
        cr.exec_millis = component_timer.Millis();
        // Fold this execution into the shape's observed history (lives
        // with the cached plan) — the cost/variance substrate future
        // adaptive scheduling reads. Partial executions are excluded:
        // their truncated cost/estimate would skew the profile.
        if (!cr.partial) {
          cache_.RecordObservation(planned.keys[i], cr.exec_millis,
                                   cr.oracle_calls, cr.estimator_calls,
                                   cr.estimate, cr.converged);
        }
        if (adaptive) {
          RecordAdaptiveOutcome(cr.stop_reason, cr.completed_runs,
                                cr.total_runs);
        }
        EngineMetrics::Get().components.Increment();
      }
    }
    obs::ComponentProfile cp;
    cp.shape_key = cr.shape_key;
    cp.strategy = StrategyName(cr.strategy);
    cp.exec_millis = cr.exec_millis;
    cp.plan_cache_hit = cr.plan_cache_hit;
    cp.executed = cr.executed;
    cp.oracle_calls = cr.oracle_calls;
    cp.dp_prepared_decides = cr.dp_prepared_decides;
    cp.colouring_trials_per_call = cr.colouring_trials_per_call;
    cp.lanes = cr.parallel.lanes;
    cp.tasks = cr.parallel.tasks;
    cp.worker_tasks = cr.parallel.worker_tasks;
    result.profile.components.push_back(std::move(cp));
    result.components.push_back(std::move(cr));
  }

  if (!guards_hold) {
    result.estimate = 0.0;
    result.exact = true;
    result.converged = true;
    EngineMetrics::Get().guard_blocked.Increment();
  } else if (interrupted) {
    // Anytime assembly: the estimate is the product of the factors that
    // did run (including interrupted components' own anytime estimates);
    // the interval multiplies per-component hard bounds, with a
    // never-started factor pinned to [0, |U|^num_free] (existential: [0,
    // 1]). No component executed at all -> nothing to report, surface the
    // typed cause.
    bool any_executed = false;
    double lower = 1.0;
    double upper = 1.0;
    for (const ComponentResult& cr : result.components) {
      if (cr.executed) {
        any_executed = true;
        if (cr.existential) {
          lower *= cr.lower_bound > 0.0 ? 1.0 : 0.0;
          upper *= cr.upper_bound > 0.0 ? 1.0 : 0.0;
        } else {
          lower *= cr.lower_bound;
          upper *= cr.upper_bound;
        }
      } else {
        lower *= 0.0;
        upper *= ComponentFactorCap(db.universe_size(), cr.num_free,
                                    cr.existential);
      }
    }
    if (!any_executed) {
      return governor->ToStatus("count");
    }
    result.estimate = product;
    result.exact = false;
    result.converged = false;
    result.partial = true;
    result.lower_bound = lower;
    result.upper_bound =
        std::isfinite(upper) ? upper : std::numeric_limits<double>::max();
    result.partial_reason = GovernanceStateName(governor->state());
  } else {
    result.estimate = product;
    result.exact = all_exact;
    result.converged = all_converged;
    result.lower_bound = result.upper_bound = result.estimate;
  }
  result.exec_millis = timer.Millis();

  obs::QueryProfile& profile = result.profile;
  profile.compile_millis = planned.compile_millis;
  profile.plan_millis = planned.plan_millis;
  profile.execute_millis = result.exec_millis;
  profile.guards_evaluated = result.guards_evaluated;
  profile.oracle_calls = result.oracle_calls;
  profile.lanes = result.parallel.lanes;
  profile.tasks = result.parallel.tasks;
  profile.worker_tasks = result.parallel.worker_tasks;
  for (size_t i = 0; i < planned.cache_hits.size(); ++i) {
    if (planned.cache_hits[i]) {
      ++profile.plan_cache_hits;
    } else {
      ++profile.plan_cache_misses;
    }
  }
  for (const ComponentResult& cr : result.components) {
    profile.dp_prepared_decides += cr.dp_prepared_decides;
  }

  EngineMetrics& metrics = EngineMetrics::Get();
  metrics.counts.Increment();
  metrics.plan_us.Observe(static_cast<uint64_t>(
      (planned.compile_millis + planned.plan_millis) * 1000.0));
  metrics.exec_us.Observe(static_cast<uint64_t>(result.exec_millis * 1000.0));
  return result;
}

StatusOr<EngineResult> CountingEngine::Count(const CountRequest& request) {
  obs::Span count_span("engine.count");
  EngineMetrics& metrics = EngineMetrics::Get();
  // Fault-injection site: fires before any work, letting tests exercise
  // request failure paths (and, via on_fire callbacks, cancel a batch
  // token at a precise item index).
  Status fp = failpoint::Check("engine.count");
  if (!fp.ok()) {
    metrics.count_errors.Increment();
    return fp;
  }
  Status valid = ValidateRequest(request);
  if (!valid.ok()) {
    metrics.count_errors.Increment();
    return valid;
  }
  RegisteredDatabase db = FindDatabase(request.database);
  if (db.db == nullptr) {
    metrics.count_errors.Increment();
    return Status::NotFound("no database registered as '" + request.database +
                            "'");
  }
  WallTimer parse_timer;
  auto query = [&] {
    obs::Span span("engine.parse");
    return ParseQuery(request.query);
  }();
  const double parse_millis = parse_timer.Millis();
  if (!query.ok()) {
    metrics.count_errors.Increment();
    return query.status();
  }
  if (query->num_vars() > opts_.max_query_vars) {
    metrics.count_errors.Increment();
    return Status::InvalidArgument(
        "query has " + std::to_string(query->num_vars()) +
        " variables, exceeding the engine's max_query_vars (" +
        std::to_string(opts_.max_query_vars) + ")");
  }
  Status compatible = query->CheckAgainstDatabase(*db.db);
  if (!compatible.ok()) {
    metrics.count_errors.Increment();
    return compatible;
  }

  WallTimer plan_timer;
  PlannedQuery planned =
      CompileAndPlan(*query, request.database, db.generation, *db.db);
  const double plan_millis = plan_timer.Millis();

  // Always-active governor: with no budget and an uncancelled token it can
  // never fire, so checkpoints see kRunning everywhere and the execution
  // is bitwise identical to the ungoverned baseline.
  ResourceGovernor governor(request.cancel_token, request.time_budget_ms,
                            request.clock);
  auto result = ExecutePlanned(planned, *db.db, request, &governor);
  if (governor.fired()) {
    // Both outcomes of a fired governor — anytime partial and typed
    // status — count toward the cause metric and tag the query span.
    count_span.SetAttribute("governance",
                            GovernanceStateName(governor.state()));
    if (governor.state() == GovernanceState::kCancelled) {
      metrics.cancelled.Increment();
    } else {
      metrics.deadline_exceeded.Increment();
    }
  }
  if (!result.ok()) {
    metrics.count_errors.Increment();
    return result;
  }
  if (result->partial) metrics.partial_results.Increment();
  result->plan_millis = plan_millis;
  result->profile.parse_millis = parse_millis;
  return result;
}

StatusOr<EngineResult> CountingEngine::Count(const std::string& query,
                                             const std::string& database) {
  CountRequest request;
  request.query = query;
  request.database = database;
  return Count(request);
}

StatusOr<EngineResult> CountingEngine::CountExact(const std::string& query,
                                                  const std::string& database) {
  CountRequest request;
  request.query = query;
  request.database = database;
  request.force_exact = true;
  return Count(request);
}

StatusOr<Explanation> CountingEngine::Explain(const std::string& query,
                                              const std::string& database) {
  RegisteredDatabase db = FindDatabase(database);
  if (db.db == nullptr) {
    return Status::NotFound("no database registered as '" + database + "'");
  }
  auto q = ParseQuery(query);
  if (!q.ok()) return q.status();
  Status compatible = q->CheckAgainstDatabase(*db.db);
  if (!compatible.ok()) return compatible;

  WallTimer timer;
  PlannedQuery planned = CompileAndPlan(*q, database, db.generation, *db.db);
  Explanation out;
  out.plan_millis = timer.Millis();

  const CompiledQuery& compiled = planned.compiled;
  out.guards = compiled.guards;
  out.pass_stats = compiled.stats;
  out.plan_cache_hit = AllCacheHits(planned.cache_hits);
  if (planned.dominant >= 0) out.plan = *planned.plans[planned.dominant];

  const size_t k_total = compiled.num_components();
  const size_t k_counting = compiled.num_counting_components();
  // Mirror ExecutePlanned's budget policy so Explain reports the shares a
  // Count would actually run with (adaptive: marginal-cost allocation
  // from the same predictions).
  std::vector<CostPrediction> predictions;
  std::vector<BudgetShare> budgets;
  if (opts_.adaptive) {
    predictions.resize(k_total);
    std::vector<SchedulerComponent> sched(k_total);
    for (size_t i = 0; i < k_total; ++i) {
      predictions[i] =
          scheduler_.Predict(*planned.plans[i], cache_.Profile(planned.keys[i]));
      sched[i].estimated = planned.plans[i]->strategy != Strategy::kExact;
      sched[i].existential = compiled.components[i].existential;
      sched[i].cost = predictions[i];
    }
    budgets = scheduler_.SplitBudgets(opts_.epsilon, opts_.delta, sched);
  } else {
    budgets = ComponentBudgets(planned, opts_.epsilon, opts_.delta, false);
  }

  const Query& nq = compiled.normalized;
  std::ostringstream text;
  text << "query: " << q->ToString() << "\n"
       << "kind: "
       << (nq.Kind() == QueryKind::kCq    ? "CQ"
           : nq.Kind() == QueryKind::kDcq ? "DCQ"
                                          : "ECQ")
       << "  vars: " << nq.num_vars() << " (" << nq.num_free() << " free)"
       << "  ||phi||: " << nq.PhiSize() << "\n";
  if (compiled.stats.Changed()) {
    text << "passes: atoms deduped " << compiled.stats.atoms_deduped
         << ", nullary guards " << compiled.stats.guards_extracted
         << ", variables pruned " << compiled.stats.variables_pruned << "\n";
  }
  for (const NullaryGuard& guard : compiled.guards) {
    text << "guard: " << (guard.negated ? "!" : "") << guard.relation
         << "()  [0/1 factor]\n";
  }
  text << "components: " << k_total;
  if (k_total > k_counting) {
    text << " (" << k_counting << " counting, " << (k_total - k_counting)
         << " existential)";
  }
  text << "\n";

  for (size_t i = 0; i < k_total; ++i) {
    const QueryComponent& component = compiled.components[i];
    const QueryPlan& plan = *planned.plans[i];
    ComponentExplanation ce;
    ce.plan = plan;
    ce.plan_cache_hit = planned.cache_hits[i];
    ce.existential = component.existential;
    for (int local = 0; local < component.query.num_vars(); ++local) {
      ce.variables.push_back(component.query.var_name(local));
    }
    const BudgetShare& share = budgets[i];
    ce.epsilon = share.epsilon;
    ce.delta = share.delta;
    ce.observed = cache_.Profile(planned.keys[i]);
    if (opts_.adaptive) {
      ce.cost_source = CostSourceName(predictions[i].source);
      ce.predicted_millis = predictions[i].millis;
      ce.predicted_oracle_calls = predictions[i].oracle_calls;
      ce.planned_lanes = scheduler_.PlanLanes(
          plan.strategy, predictions[i], opts_.intra_query_threads,
          pool_->num_threads(), opts_.intra_query_min_cost);
    } else {
      ce.planned_lanes = IntraQueryLanes(plan.strategy, plan.cost_estimate);
    }

    const Classification& cls = plan.classification;
    text << "component " << i << " (";
    if (component.existential) text << "existential, ";
    text << cls.num_vars << " vars, " << cls.num_free << " free): {";
    for (size_t v = 0; v < ce.variables.size(); ++v) {
      if (v > 0) text << ", ";
      text << ce.variables[v];
    }
    text << "}\n"
         << "  widths: tw<=" << cls.treewidth << "  fhw<=" << cls.fhw << "\n"
         << "  verdict: " << cls.verdict << "\n"
         << "  strategy: " << StrategyName(plan.strategy)
         << "  (decomposition: " << plan.decomposition.decomposition.num_nodes()
         << " bags, width " << plan.decomposition.width << ")\n"
         << "  budget: ";
    if (share.epsilon > 0.0) {
      text << "epsilon " << share.epsilon << "  delta " << share.delta;
    } else {
      text << "none (exact factor)";
    }
    text << "\n"
         << "  cost estimate: " << plan.cost_estimate
         << "  plan cache: " << (ce.plan_cache_hit ? "hit" : "miss")
         << "  intra-query lanes: " << ce.planned_lanes << "\n";
    if (!ce.cost_source.empty()) {
      text << "  scheduled: cost source " << ce.cost_source
           << "  predicted " << ce.predicted_millis << " ms, "
           << ce.predicted_oracle_calls << " estimator calls\n";
    }
    if (ce.observed.has_value()) {
      const obs::ShapeProfile& sp = *ce.observed;
      text << "  observed: runs " << sp.runs << "  mean " << sp.MeanExecMillis()
           << " ms  [" << sp.min_exec_millis << ", " << sp.max_exec_millis
           << "] ms  oracle calls " << sp.total_oracle_calls
           << "  estimator calls " << sp.total_estimator_calls
           << "  converged " << sp.converged_runs << "/" << sp.runs << "\n";
    }
    out.components.push_back(std::move(ce));
  }
  out.text = text.str();
  return out;
}

std::vector<StatusOr<EngineResult>> CountingEngine::CountBatch(
    const std::vector<CountRequest>& requests, int num_threads) {
  std::vector<StatusOr<EngineResult>> results(
      requests.size(), StatusOr<EngineResult>(Status::Internal("not executed")));
  auto run_item = [&](size_t i) {
    CountRequest request = requests[i];
    EngineMetrics::Get().batch_items.Increment();
    // An already-cancelled token stops not-yet-started items before any
    // work; items already inside Count() stop at their own checkpoints.
    // Either way each item gets its own status — one cancelled request
    // never poisons its siblings' results.
    if (request.cancel_token.cancelled()) {
      results[i] = Status::Cancelled("batch item skipped: cancelled before start");
      return;
    }
    if (request.seed == 0) {
      request.seed = DeriveSeed(opts_.seed, static_cast<uint64_t>(i));
    }
    results[i] = Count(request);
  };
  // Exactly `num_threads` concurrent evaluations: the calling thread is
  // lane 0, so an N-lane batch uses the caller plus N-1 pool workers
  // (ParallelFor's "caller + all workers" shape would run N+1).
  auto run_lanes = [&](Executor& pool, int lanes) {
    pool.ParallelForLanes(requests.size(), lanes,
                          [&](int, size_t i) { run_item(i); });
  };
  if (num_threads == 1) {
    for (size_t i = 0; i < requests.size(); ++i) run_item(i);
  } else if (num_threads <= 0 || num_threads == pool_->num_threads()) {
    run_lanes(*pool_, pool_->num_threads());
  } else {
    Executor dedicated(num_threads - 1);
    run_lanes(dedicated, num_threads);
  }
  return results;
}

}  // namespace cqcount
