// The adaptive accuracy scheduler (opt-in via EngineOptions::adaptive).
//
// Three levers, all driven by one learned cost model over the plan
// cache's per-shape ShapeProfile history:
//
//  1. Cost prediction. A shape with recorded executions predicts its
//     cost from the observed mean (deterministic estimator probes for
//     accuracy decisions, wall-clock millis for scheduling decisions);
//     a cold shape falls back to the planner's static cost estimate.
//  2. Marginal-cost budget splitting. The even eps/(2k) split of
//     SplitBudget is the equal-weight special case of: allocate
//     eps_i = floor_i + (eps/2 - sum floors) * w_i / sum_j w_j with
//     w_i = cbrt(predicted cost_i). Minimising total sampling work
//     sum c_i / eps_i^2 subject to sum eps_i = eps/2 gives exactly
//     eps_i proportional to c_i^{1/3} (Lagrange), i.e. expensive
//     components get a LOOSER target and cheap ones a tighter one. Any
//     allocation with sum eps_i = eps/2 preserves the product-error
//     guarantee — prod(1+eps_i) <= e^{eps/2} <= 1+eps and
//     prod(1-eps_i) >= 1 - eps/2 >= 1-eps for eps in (0, 1] — so the
//     reweighting is free. The delta/n union bound is unchanged.
//  3. Work gating. Lane grants use observed wall time instead of the
//     static intra_query_min_cost constant once a shape has history, and
//     the colour-coding trial budget is sized against the PREDICTED
//     oracle-call count (times a safety factor) rather than the 20M-call
//     worst-case cap, shrinking the log(1/per-call-failure) trial
//     factor.
//
// Determinism contract: every accuracy-relevant output (budget shares,
// trial budgets, early-stop arming) is a pure function of deterministic,
// lane-count-independent inputs (plan cost estimates and the profile's
// estimator-call counter). Wall-clock readings only ever influence lane
// counts, which are scheduling-only. Fixed-seed adaptive runs are
// therefore reproducible at any lane count; they do depend on the plan
// cache's observation history (a warm shape schedules less work than a
// cold one), which is itself deterministic for a fixed request sequence.
#ifndef CQCOUNT_ENGINE_SCHEDULER_H_
#define CQCOUNT_ENGINE_SCHEDULER_H_

#include <optional>
#include <vector>

#include "compile/compiled_query.h"
#include "engine/plan.h"
#include "obs/profile.h"
#include "util/estimate_outcome.h"

namespace cqcount {

/// Tuning for the adaptive scheduler (EngineOptions::scheduler).
struct SchedulerOptions {
  /// Observed executions a shape needs before predictions switch from
  /// the planner's static estimate to the profile history.
  uint64_t min_profile_runs = 2;
  /// The colour-coding per-call failure budget is delta / (2 * factor *
  /// predicted calls): the union bound stays intact as long as the
  /// execution issues at most `factor` times the predicted call count.
  double trials_safety_factor = 8.0;
  /// Floor on the adaptive per-call failure probability's inverse: the
  /// per-call failure is capped at this value so trial counts never
  /// collapse entirely (ceil(ln 1/1e-3) ~ 7 trials minimum).
  double max_per_call_failure = 1e-3;
  /// Observed mean execution time that justifies intra-query lanes
  /// (replaces the static intra_query_min_cost gate on warm shapes):
  /// fan-out setup costs ~sub-ms, so only estimates observed to run at
  /// least this long get workers.
  double min_fanout_millis = 5.0;
  /// Every counting component keeps at least this fraction of its even
  /// share: eps_i >= floor_fraction * (eps/2)/k. Guards against one
  /// hugely expensive component starving the rest to useless targets.
  double eps_floor_fraction = 0.25;
  /// Completed runs the CLT early stop needs before it consults the
  /// empirical interval (a 2-run sample variance is noise).
  int min_early_stop_runs = 3;
};

/// Where a cost prediction came from.
enum class CostSource : uint8_t { kPlanEstimate, kObservedProfile };

inline const char* CostSourceName(CostSource source) {
  switch (source) {
    case CostSource::kPlanEstimate: return "plan_estimate";
    case CostSource::kObservedProfile: return "observed_profile";
  }
  return "plan_estimate";
}

/// Predicted cost of executing one component once.
struct CostPrediction {
  /// Deterministic work scale: observed mean estimator probes per
  /// execution, or the planner's cost estimate for cold shapes. Drives
  /// the accuracy-relevant decisions (budget weights).
  double cost_units = 0.0;
  /// Predicted estimator oracle calls per execution (0 = unknown; only
  /// observed profiles provide it). Drives trial budgeting.
  double oracle_calls = 0.0;
  /// Predicted wall-clock cost (0 = unknown). Scheduling-only: drives
  /// lane grants, never accuracy.
  double millis = 0.0;
  /// Observed variance of the wall-clock cost (informational).
  double variance_millis = 0.0;
  CostSource source = CostSource::kPlanEstimate;
};

/// One component's scheduling input (parallel to the compiled
/// components).
struct SchedulerComponent {
  /// False for exact factors: they consume no accuracy budget.
  bool estimated = false;
  bool existential = false;
  CostPrediction cost;
};

/// Cost-model-driven scheduling decisions. Stateless apart from options:
/// safe to share across concurrent batch workers.
class AdaptiveScheduler {
 public:
  explicit AdaptiveScheduler(SchedulerOptions opts = {}) : opts_(opts) {}

  const SchedulerOptions& options() const { return opts_; }

  /// Predicts the per-execution cost of `plan`'s component from the
  /// shape's observed history (when it has at least min_profile_runs
  /// recorded executions) or the planner's static estimate.
  CostPrediction Predict(const QueryPlan& plan,
                         const std::optional<obs::ShapeProfile>& observed) const;

  /// Marginal-cost (epsilon, delta) allocation across components:
  /// replaces the even eps/(2k) split with weights cbrt(cost_units),
  /// preserving the product guarantee (sum of counting shares = eps/2,
  /// see the header comment). Exact factors get a zero share,
  /// existential estimated factors the fixed loose epsilon, delta is the
  /// delta/n union bound — identical structure to SplitBudget, only the
  /// epsilon weighting differs. Single counting components pass epsilon
  /// through unchanged.
  std::vector<BudgetShare> SplitBudgets(
      double epsilon, double delta,
      const std::vector<SchedulerComponent>& components) const;

  /// Lanes to grant one component: 1 for exact strategies; for observed
  /// shapes, the configured lane count when the predicted wall time
  /// clears min_fanout_millis (the dynamic replacement for the static
  /// cost gate); cold shapes fall back to the static
  /// `cost >= static_min_cost` gate.
  int PlanLanes(Strategy strategy, const CostPrediction& cost,
                int configured_lanes, int pool_lanes,
                double static_min_cost) const;

  /// Adaptive colour-coding per-call failure budget: delta / (2 *
  /// safety * predicted calls), capped at max_per_call_failure. Returns
  /// 0 (keep the module's worst-case default) when the prediction has no
  /// observed call count.
  double PerCallFailure(double delta, const CostPrediction& cost) const;

 private:
  SchedulerOptions opts_;
};

/// Feeds the scheduler.* outcome metrics after one adaptive component
/// execution (early stops, runs saved). Called by the engine, once per
/// executed component; cheap enough to sit off the hot path.
void RecordAdaptiveOutcome(StopReason stop_reason, int completed_runs,
                           int total_runs);

}  // namespace cqcount

#endif  // CQCOUNT_ENGINE_SCHEDULER_H_
