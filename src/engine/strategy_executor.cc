#include "engine/strategy_executor.h"

#include <algorithm>
#include <utility>

#include "automata/fpras.h"
#include "counting/exact_count.h"
#include "counting/fptras.h"
#include "counting/sampler.h"

namespace cqcount {
namespace {

// The cached decomposition lives in canonical numbering; strategies that
// run on it map it onto the query's own variables first. The elimination
// order is planner-internal and unused by execution.
FWidthResult InstantiatePlanDecomposition(const ExecContext& ctx) {
  FWidthResult local = ctx.plan->decomposition;
  local.decomposition = InstantiateDecomposition(ctx.plan->decomposition.decomposition,
                                                 ctx.shape->to_canonical);
  local.order.clear();
  return local;
}

class ExactExecutor : public StrategyExecutor {
 public:
  Strategy strategy() const override { return Strategy::kExact; }

  StatusOr<ExecOutcome> Execute(const ExecContext& ctx) const override {
    // Brute force has no internal checkpoints (the planner only picks it
    // for tiny instances); honour an already-fired governor up front.
    if (ctx.governor != nullptr &&
        ctx.governor->Check() != GovernanceState::kRunning) {
      return ctx.governor->ToStatus("exact count");
    }
    ExecOutcome outcome;
    outcome.estimate =
        static_cast<double>(ExactCountAnswersBruteForce(*ctx.query, *ctx.db));
    outcome.exact = true;
    outcome.lower_bound = outcome.upper_bound = outcome.estimate;
    return outcome;
  }
};

// Theorem 5 (treewidth objective) and the Theorem 13 regime (fhw
// objective) share the FPTRAS pipeline; the plan's decomposition already
// embodies the objective, so one executor class serves both strategies.
class FptrasExecutor : public StrategyExecutor {
 public:
  explicit FptrasExecutor(Strategy strategy) : strategy_(strategy) {}

  Strategy strategy() const override { return strategy_; }

  StatusOr<ExecOutcome> Execute(const ExecContext& ctx) const override {
    ApproxOptions opts;
    opts.epsilon = ctx.budget.epsilon;
    opts.delta = ctx.budget.delta;
    opts.seed = ctx.budget.seed;
    opts.objective = ctx.plan->objective;
    opts.exact_decomposition_limit = ctx.exact_decomposition_limit;
    opts.pool = ctx.pool;
    opts.intra_threads = ctx.intra_threads;
    opts.governor = ctx.governor;
    if (ctx.max_oracle_calls > 0) {
      opts.dlm.max_oracle_calls =
          std::min(opts.dlm.max_oracle_calls, ctx.max_oracle_calls);
    }
    opts.dlm.early_stop = ctx.adaptive.early_stop;
    opts.dlm.min_early_stop_runs = ctx.adaptive.min_early_stop_runs;
    if (ctx.adaptive.per_call_failure > 0.0) {
      opts.per_call_failure_override = ctx.adaptive.per_call_failure;
    }
    const FWidthResult decomposition = InstantiatePlanDecomposition(ctx);
    opts.precomputed_decomposition = &decomposition;
    auto approx = ApproxCountAnswers(*ctx.query, *ctx.db, opts);
    if (!approx.ok()) return approx.status();
    ExecOutcome outcome;
    outcome.estimate = approx->estimate;
    outcome.exact = approx->exact;
    outcome.converged = approx->converged;
    outcome.partial = approx->partial;
    outcome.lower_bound = approx->lower_bound;
    outcome.upper_bound = approx->upper_bound;
    outcome.stop_reason = approx->stop_reason;
    outcome.rounds_executed = approx->rounds_executed;
    outcome.completed_runs = approx->completed_runs;
    outcome.total_runs = approx->total_runs;
    outcome.oracle_calls = approx->hom_queries + approx->edgefree_calls;
    outcome.estimator_calls = approx->edgefree_calls;
    // Surface the prepare/evaluate DP reuse: one bag-join cache serves
    // every DLM oracle call issued against this plan's decomposition.
    outcome.dp_prepared_decides = approx->dp_prepared_decides;
    outcome.dp_cached_bag_rows = approx->dp_cached_bag_rows;
    outcome.dp_prepared_path = approx->dp_prepared_path;
    outcome.colouring_trials_per_call = approx->colouring_trials_per_call;
    outcome.parallel = approx->parallel;
    return outcome;
  }

 private:
  const Strategy strategy_;
};

class AutomataFprasExecutor : public StrategyExecutor {
 public:
  Strategy strategy() const override { return Strategy::kAutomataFpras; }

  StatusOr<ExecOutcome> Execute(const ExecContext& ctx) const override {
    FprasOptions opts;
    opts.acjr.epsilon = ctx.budget.epsilon;
    opts.acjr.delta = ctx.budget.delta;
    opts.acjr.seed = ctx.budget.seed;
    opts.acjr.pool = ctx.pool;
    opts.acjr.intra_threads = ctx.intra_threads;
    opts.acjr.governor = ctx.governor;
    opts.objective = ctx.plan->objective;
    opts.exact_decomposition_limit = ctx.exact_decomposition_limit;
    const FWidthResult decomposition = InstantiatePlanDecomposition(ctx);
    opts.precomputed_decomposition = &decomposition;
    auto fpras = FprasCountCq(*ctx.query, *ctx.db, opts);
    if (!fpras.ok()) return fpras.status();
    ExecOutcome outcome;
    outcome.estimate = fpras->estimate;
    outcome.exact = fpras->exact;
    outcome.converged = fpras->converged;
    outcome.partial = fpras->partial;
    outcome.lower_bound = fpras->lower_bound;
    outcome.upper_bound = fpras->upper_bound;
    outcome.oracle_calls = fpras->membership_tests;
    outcome.estimator_calls = fpras->membership_tests;
    outcome.parallel = fpras->parallel;
    return outcome;
  }
};

// Counting through the Section 6 sampling machinery: build the sampler's
// oracle stack for (phi, D) and run its FPTRAS entry point. Requires at
// least one free variable (the JVV descent has nothing to split on
// otherwise).
class SamplerExecutor : public StrategyExecutor {
 public:
  Strategy strategy() const override { return Strategy::kSampler; }

  StatusOr<ExecOutcome> Execute(const ExecContext& ctx) const override {
    SamplerOptions opts;
    opts.approx.epsilon = ctx.budget.epsilon;
    opts.approx.delta = ctx.budget.delta;
    opts.approx.seed = ctx.budget.seed;
    opts.approx.objective = ctx.plan->objective;
    opts.approx.exact_decomposition_limit = ctx.exact_decomposition_limit;
    opts.approx.pool = ctx.pool;
    opts.approx.intra_threads = ctx.intra_threads;
    opts.approx.governor = ctx.governor;
    if (ctx.max_oracle_calls > 0) {
      opts.approx.dlm.max_oracle_calls =
          std::min(opts.approx.dlm.max_oracle_calls, ctx.max_oracle_calls);
    }
    opts.approx.dlm.early_stop = ctx.adaptive.early_stop;
    opts.approx.dlm.min_early_stop_runs = ctx.adaptive.min_early_stop_runs;
    if (ctx.adaptive.per_call_failure > 0.0) {
      opts.approx.per_call_failure_override = ctx.adaptive.per_call_failure;
    }
    const FWidthResult decomposition = InstantiatePlanDecomposition(ctx);
    opts.approx.precomputed_decomposition = &decomposition;
    auto sampler = AnswerSampler::Create(*ctx.query, *ctx.db, opts);
    if (!sampler.ok()) return sampler.status();
    auto approx =
        (*sampler)->EstimateCount(ctx.budget.epsilon, ctx.budget.delta);
    if (!approx.ok()) return approx.status();
    ExecOutcome outcome;
    outcome.estimate = approx->estimate;
    outcome.exact = approx->exact;
    outcome.converged = approx->converged;
    outcome.partial = approx->partial;
    outcome.lower_bound = approx->lower_bound;
    outcome.upper_bound = approx->upper_bound;
    outcome.stop_reason = approx->stop_reason;
    outcome.rounds_executed = approx->rounds_executed;
    outcome.completed_runs = approx->completed_runs;
    outcome.total_runs = approx->total_runs;
    outcome.oracle_calls = approx->hom_queries + approx->edgefree_calls;
    outcome.estimator_calls = approx->edgefree_calls;
    outcome.colouring_trials_per_call = approx->colouring_trials_per_call;
    outcome.parallel = approx->parallel;
    return outcome;
  }
};

}  // namespace

void ExecutorRegistry::Register(std::unique_ptr<StrategyExecutor> executor) {
  const Strategy strategy = executor->strategy();
  executors_[strategy] = std::move(executor);
}

const StrategyExecutor* ExecutorRegistry::Find(Strategy strategy) const {
  auto it = executors_.find(strategy);
  return it == executors_.end() ? nullptr : it->second.get();
}

std::vector<Strategy> ExecutorRegistry::RegisteredStrategies() const {
  std::vector<Strategy> strategies;
  strategies.reserve(executors_.size());
  for (const auto& [strategy, executor] : executors_) {
    strategies.push_back(strategy);
  }
  return strategies;
}

const ExecutorRegistry& ExecutorRegistry::Default() {
  static const ExecutorRegistry* registry = [] {
    auto* r = new ExecutorRegistry();
    r->Register(std::make_unique<ExactExecutor>());
    r->Register(std::make_unique<FptrasExecutor>(Strategy::kFptrasTreewidth));
    r->Register(std::make_unique<FptrasExecutor>(Strategy::kFptrasFhw));
    r->Register(std::make_unique<AutomataFprasExecutor>());
    r->Register(std::make_unique<SamplerExecutor>());
    return r;
  }();
  return *registry;
}

}  // namespace cqcount
