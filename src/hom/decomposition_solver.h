// Tree-decomposition-based homomorphism solving (the engine behind
// Theorem 31 / Theorem 36 oracle calls).
//
// Given a query, a database and a tree decomposition of H(phi), the solver
// decides solution existence (and counts full solutions exactly) by the
// classic bag-relation + semijoin dynamic program. Negated atoms are
// enforced inside the bag that contains them (every negated atom's
// variable set is a hyperedge of H(phi), Definition 3, hence inside some
// bag). Disequalities are NOT handled here: the paper's colour-coding
// layer (Lemma 30) turns them into the per-variable domain restrictions
// this solver accepts.
#ifndef CQCOUNT_HOM_DECOMPOSITION_SOLVER_H_
#define CQCOUNT_HOM_DECOMPOSITION_SOLVER_H_

#include <vector>

#include "decomposition/tree_decomposition.h"
#include "hom/join.h"
#include "query/query.h"
#include "relational/structure.h"

namespace cqcount {

/// Decision / exact-counting DP over a tree decomposition.
class DecompositionSolver {
 public:
  /// `td` must be a valid decomposition of H(q); the query and database
  /// must outlive the solver.
  DecompositionSolver(const Query& q, const Database& db,
                      TreeDecomposition td);

  /// True iff (phi, D) has a solution (ignoring disequalities) whose values
  /// respect `domains` (may be null).
  bool Decide(const VarDomains* domains) const;

  /// Exact number of solutions (ignoring disequalities) respecting
  /// `domains`. Returned as double: counts can exceed 2^64 for large
  /// databases; all tests use exactly-representable ranges.
  double CountSolutions(const VarDomains* domains) const;

  const TreeDecomposition& decomposition() const { return td_; }

 private:
  // Shared bottom-up pass. If `weights` is null, performs the decision
  // variant with early exit; otherwise computes per-tuple extension counts.
  bool RunDp(const VarDomains* domains, double* total) const;

  const Query& query_;
  const Database& db_;
  TreeDecomposition td_;
  std::vector<std::vector<int>> children_;
  std::vector<int> post_order_;
  // Pre-projected per-bag joiners: Decide is called once per colouring
  // trial, so the (domain-independent) projection work is hoisted here.
  std::vector<BagJoiner> joiners_;
};

}  // namespace cqcount

#endif  // CQCOUNT_HOM_DECOMPOSITION_SOLVER_H_
