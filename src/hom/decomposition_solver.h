// Tree-decomposition-based homomorphism solving (the engine behind
// Theorem 31 / Theorem 36 oracle calls).
//
// Given a query, a database and a tree decomposition of H(phi), the solver
// decides solution existence (and counts full solutions exactly) by the
// classic bag-relation + semijoin dynamic program. Negated atoms are
// enforced inside the bag that contains them (every negated atom's
// variable set is a hyperedge of H(phi), Definition 3, hence inside some
// bag). Disequalities are NOT handled here: the paper's colour-coding
// layer (Lemma 30) turns them into the per-variable domain restrictions
// this solver accepts.
//
// Hot path: the colour-coding FPTRAS issues MANY decisions against one
// solver — thousands of EdgeFree calls per count, each up to
// ceil(ln 1/delta')·4^|Delta| colouring trials (Lemma 22). Re-running the
// monolithic DP (re-materialising every bag join) per trial is the
// dominant cost, so decisions run through a prepare/evaluate split:
//   1. per solver: each bag's UNRESTRICTED join is materialised once and
//      cached (the query-shape work, shared by every oracle call);
//   2. per EdgeFree call (Prepare): cached rows are filtered by the V_i
//      part restrictions — fixed across trials — and the trial-invariant
//      part of the DP (bags whose subtree touches no disequality
//      endpoint) runs once, caching surviving rows and child tables;
//   3. per trial (PreparedDp::Decide): only bags whose subtree contains a
//      disequality endpoint re-filter by the trial's colour bitmask and
//      re-aggregate, with existence-only semijoins and first-witness
//      early exit at the root.
// A query with no disequalities degenerates to step 2 entirely: a trial
// is a cached-verdict lookup.
//
// Concurrency model (the intra-query parallel estimation path): the
// solver's state is layered by mutability.
//   - Construction state (decomposition topology, per-bag joiners) and
//     the step-1 bag-row cache with its column indexes are IMMUTABLE once
//     built; the cache build itself is mutex-guarded and idempotent, so
//     any number of workers may share one solver.
//   - Everything per-call and per-trial lives in a SolverEvalContext.
//     Each worker lane owns one context; Prepare/Decide chains on
//     distinct contexts never touch shared mutable state and may run
//     fully concurrently.
//   - Within one prepared call, the call state (base-filtered rows,
//     static tables) is read-only during trials, so trials of a single
//     PreparedDp may ALSO fan out: each lane passes its own context to
//     Decide and uses only that context's trial scratch.
// The legacy single-threaded API (Prepare/Decide without a context) runs
// on a solver-owned default context.
#ifndef CQCOUNT_HOM_DECOMPOSITION_SOLVER_H_
#define CQCOUNT_HOM_DECOMPOSITION_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "decomposition/tree_decomposition.h"
#include "hom/join.h"
#include "query/query.h"
#include "relational/structure.h"

namespace cqcount {

class DecompositionSolver;

/// Per-worker evaluation state: the scratch of one Prepare (call state,
/// rebuilt per EdgeFree call) plus the per-trial scratch (epoch-stamped
/// semijoin tables, overlay buffers). One context must never be used from
/// two threads at once; distinct contexts are fully independent. Obtained
/// from DecompositionSolver::CreateEvalContext; must not outlive the
/// solver.
class SolverEvalContext {
 public:
  ~SolverEvalContext();
  SolverEvalContext(SolverEvalContext&&) noexcept;
  SolverEvalContext& operator=(SolverEvalContext&&) noexcept;

 private:
  friend class DecompositionSolver;
  friend class PreparedDp;
  SolverEvalContext();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A decision instance with the base domains baked in; Decide() evaluates
/// one overlay (colouring trial) against it. Obtained from
/// DecompositionSolver::Prepare; a lightweight handle onto context-owned
/// state — it must not outlive the solver or its context, and a new
/// Prepare on the same context invalidates it (asserted in debug builds).
class PreparedDp {
 public:
  /// True iff a solution exists under base domains intersected with
  /// `extra`. Every `extra.var` must be among the overlay vars declared
  /// at Prepare time. Reuses trial-invariant DP state across calls. Runs
  /// on the context the instance was prepared on (single-threaded use).
  bool Decide(const std::vector<DomainRestriction>& extra);

  /// Lane-concurrent variant: evaluates the trial with `lane`'s trial
  /// scratch against this instance's (read-only) call state. Decisions on
  /// distinct lane contexts may run concurrently.
  bool Decide(const std::vector<DomainRestriction>& extra,
              SolverEvalContext& lane);

 private:
  friend class DecompositionSolver;
  PreparedDp(DecompositionSolver* solver, SolverEvalContext::Impl* ctx,
             uint64_t generation)
      : solver_(solver), ctx_(ctx), generation_(generation) {}

  DecompositionSolver* solver_;
  SolverEvalContext::Impl* ctx_;
  uint64_t generation_;
};

/// Decision / exact-counting DP over a tree decomposition.
///
/// Thread-compatible: the construction state and the bag-row cache are
/// shared and immutable (the cache build is internally synchronised);
/// concurrent callers must each use their own SolverEvalContext (the
/// context-free API serialises on the solver's default context).
class DecompositionSolver {
 public:
  /// Observability of the prepare/evaluate split (plumbed up into engine
  /// provenance so perf work shows up in Explain output).
  struct DpStats {
    /// Prepared (per-EdgeFree-call) instances built.
    uint64_t prepare_calls = 0;
    /// Trial decisions answered through prepared instances.
    uint64_t prepared_decides = 0;
    /// Total rows in the per-solver unrestricted bag-join cache.
    uint64_t cached_bag_rows = 0;
    /// False when the cache cap was hit and decisions fell back to the
    /// monolithic per-call DP.
    bool prepared_path = true;
  };

  struct Options {
    /// Cap (total rows across bags) on the unrestricted bag-join cache;
    /// past it Prepare falls back to the monolithic DP per decision.
    uint64_t max_cached_bag_rows = uint64_t{1} << 22;
  };

  /// `td` must be a valid decomposition of H(q); the query and database
  /// must outlive the solver.
  DecompositionSolver(const Query& q, const Database& db,
                      TreeDecomposition td);
  DecompositionSolver(const Query& q, const Database& db,
                      TreeDecomposition td, Options opts);
  ~DecompositionSolver();

  /// True iff (phi, D) has a solution (ignoring disequalities) whose values
  /// respect `domains` (may be null). Monolithic evaluation (one-shot
  /// callers and the property-test reference for the prepared path).
  /// Const and thread-safe: uses only local scratch.
  bool Decide(const VarDomains* domains) const;

  /// Exact number of solutions (ignoring disequalities) respecting
  /// `domains`. Returned as double: counts can exceed 2^64 for large
  /// databases; all tests use exactly-representable ranges.
  double CountSolutions(const VarDomains* domains) const;

  /// Mints an independent per-worker evaluation context. Safe to call
  /// concurrently.
  std::unique_ptr<SolverEvalContext> CreateEvalContext();

  /// Builds a prepared decision instance on the solver's default context:
  /// `base` (the V_i restrictions of one EdgeFree call) is fixed; each
  /// PreparedDp::Decide overlays masks on `overlay_vars` only (the
  /// disequality endpoints). `base` is only read during this call. At
  /// most one live PreparedDp per context.
  PreparedDp Prepare(const VarDomains& base,
                     const std::vector<int>& overlay_vars);

  /// Context-scoped Prepare: chains on distinct contexts may run
  /// concurrently (the bag-row cache is shared and immutable).
  PreparedDp Prepare(const VarDomains& base,
                     const std::vector<int>& overlay_vars,
                     SolverEvalContext& ctx);

  const TreeDecomposition& decomposition() const { return td_; }
  /// Snapshot of the prepare/evaluate counters (aggregated over all
  /// contexts).
  DpStats dp_stats() const;

 private:
  friend class PreparedDp;

  // Shared bottom-up pass. If `total` is null, performs the decision
  // variant; otherwise computes per-tuple extension counts.
  bool RunDp(const VarDomains* domains, double* total) const;

  // Materialises and caches every bag's unrestricted join (idempotent,
  // mutex-guarded; the cache is immutable once state_ is published).
  // Returns false when the row cap was exceeded (cache disabled).
  bool EnsureBagRowCache();

  PreparedDp PrepareOn(SolverEvalContext::Impl& ctx, const VarDomains& base,
                       const std::vector<int>& overlay_vars);

  // One prepared trial decision: call state from `ctx`, trial scratch
  // from `trial` (== &ctx for the single-threaded path).
  bool DecidePrepared(SolverEvalContext::Impl& ctx,
                      SolverEvalContext::Impl& trial, uint64_t generation,
                      const std::vector<DomainRestriction>& extra);

  SolverEvalContext::Impl& DefaultContext();

  const Query& query_;
  const Database& db_;
  TreeDecomposition td_;
  std::vector<std::vector<int>> children_;
  std::vector<int> parent_;
  std::vector<int> post_order_;
  // Positions of the parent-shared variables, within the child bag and
  // within the parent bag (indexed by child node).
  std::vector<std::vector<int>> shared_in_child_;
  std::vector<std::vector<int>> shared_in_parent_;
  // Pre-projected per-bag joiners: the (domain-independent) projection
  // work is hoisted here.
  std::vector<BagJoiner> joiners_;
  // Per-solver cache of unrestricted bag joins (step 1 of the split),
  // shared and immutable after the build completes.
  // 0 = not built, 1 = built, 2 = over cap (prepared path disabled).
  std::mutex cache_mu_;
  std::atomic<int> bag_row_cache_state_{0};
  std::vector<FlatTuples> bag_rows_;
  // Per (bag, column) value index over the cached rows: `perm` lists row
  // indices ordered by the column's value, `starts[v]..starts[v+1]` is
  // the run with value v. Lets Prepare stream only the rows matching the
  // most selective V_i restriction instead of scanning the whole cache
  // (cross-product bags from fill edges make that scan quadratic).
  struct ColIndex {
    std::vector<uint32_t> perm;
    std::vector<uint32_t> starts;  // universe_size + 1 offsets.
  };
  std::vector<std::vector<ColIndex>> bag_col_index_;
  // Default evaluation context backing the context-free API.
  std::unique_ptr<SolverEvalContext> default_ctx_;
  std::mutex default_ctx_mu_;  // Guards lazy creation only.
  std::atomic<uint64_t> prepare_generation_{0};
  Options opts_;
  // Aggregated DpStats counters (atomic: contexts update concurrently).
  std::atomic<uint64_t> stat_prepare_calls_{0};
  std::atomic<uint64_t> stat_prepared_decides_{0};
  std::atomic<uint64_t> stat_cached_bag_rows_{0};
  std::atomic<bool> stat_prepared_path_{true};
};

}  // namespace cqcount

#endif  // CQCOUNT_HOM_DECOMPOSITION_SOLVER_H_
