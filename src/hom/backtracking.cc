#include "hom/backtracking.h"

#include <numeric>

#include "decomposition/elimination_order.h"
#include "hom/join.h"

namespace cqcount {
namespace {

// A good static order: min-fill over H(phi), which keeps the join's
// constraint propagation tight.
std::vector<int> SearchOrder(const Query& q) {
  return MinFillOrder(q.BuildHypergraph());
}

}  // namespace

bool EnumerateSolutions(const Query& q, const Database& db,
                        const std::function<bool(const Tuple&)>& callback) {
  const std::vector<int> order = SearchOrder(q);
  BagJoiner::Options opts;
  opts.enforce_negated = true;
  opts.enforce_disequalities = true;
  BagJoiner joiner(q, db, order, opts);
  // Re-index from search order back to variable ids.
  Tuple by_var(q.num_vars(), 0);
  return joiner.Enumerate(nullptr, [&](const Tuple& t) {
    for (size_t d = 0; d < order.size(); ++d) by_var[order[d]] = t[d];
    return callback(by_var);
  });
}

uint64_t CountSolutionsBrute(const Query& q, const Database& db) {
  uint64_t count = 0;
  EnumerateSolutions(q, db, [&count](const Tuple&) {
    ++count;
    return true;
  });
  return count;
}

uint64_t CountAnswersBrute(const Query& q, const Database& db) {
  const int num_free = q.num_free();
  // Collect free-variable prefixes flat, dedup once at the end.
  Relation answers(num_free);
  EnumerateSolutions(q, db, [&](const Tuple& solution) {
    Value* dst = answers.AppendRow();
    for (int i = 0; i < num_free; ++i) dst[i] = solution[i];
    return true;
  });
  answers.Canonicalize();
  return answers.size();
}

bool DecideSolutionBrute(const Query& q, const Database& db) {
  bool found = false;
  EnumerateSolutions(q, db, [&found](const Tuple&) {
    found = true;
    return false;  // Stop at the first solution.
  });
  return found;
}

}  // namespace cqcount
