// Sol(phi, D, B) — bag solutions (Definition 47, Lemma 48).
//
// A solution of (phi, D, B) is an assignment alpha : B -> U(D) such that
// every atom of phi can be satisfied by some extension of alpha (per atom
// independently). For bags of bounded fcn(H[B]) the result has at most
// ||D||^fcn(H[B]) tuples and is computed in polynomial time (Grohe-Marx),
// which is what the generic join in BagJoiner delivers.
#ifndef CQCOUNT_HOM_BAG_SOLUTIONS_H_
#define CQCOUNT_HOM_BAG_SOLUTIONS_H_

#include <vector>

#include "hom/join.h"
#include "query/query.h"
#include "relational/relation.h"
#include "relational/structure.h"

namespace cqcount {

/// Computes Sol(phi, D, B) as a relation whose columns follow the (sorted)
/// `bag` order. Negated atoms fully contained in the bag are enforced;
/// `domains` (optional) restricts per-variable values.
Relation ComputeBagSolutions(const Query& q, const Database& db,
                             const std::vector<int>& bag,
                             const VarDomains* domains);

}  // namespace cqcount

#endif  // CQCOUNT_HOM_BAG_SOLUTIONS_H_
