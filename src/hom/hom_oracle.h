// Hom decision oracles (the black box of Lemma 22).
//
// The FPTRAS only interacts with the homomorphism problem through this
// interface. Colour-coded instances Hom(A-hat, B-hat) are passed virtually
// as per-variable domain restrictions — observationally equivalent to the
// materialised structures of Definitions 26/28 (every added relation is
// unary), which tests cross-validate via DecideStructureHom.
//
// Two calling conventions:
//   - Decide(domains): one-shot decision, full domain set.
//   - Prepare(base, overlay_vars) -> PreparedHom: the trial-reuse path.
//     The colour-coding loop fixes the V_i part restrictions once per
//     EdgeFree call and then varies only the <= 2|Delta| disequality
//     endpoint domains per trial; PreparedHom lets the oracle hoist all
//     base-dependent work out of the trial loop. The decomposition oracle
//     backs it with the solver's prepare/evaluate DP split; any other
//     oracle gets a correct default that copies/restores just the
//     endpoint domains around a plain Decide.
//
// Concurrency: oracles that SupportsConcurrentDecides() hand out opaque
// HomContexts. A Prepare/Decide chain bound to one context never touches
// another context's mutable state, so worker lanes holding distinct
// contexts may prepare and decide concurrently against one oracle (the
// decomposition oracle maps contexts onto SolverEvalContexts; the shared
// bag-join row cache is immutable). Within a single prepared call, trials
// may also fan out: Decide(extra, lane) evaluates with the lane context's
// trial scratch against the prepared (read-only) call state.
#ifndef CQCOUNT_HOM_HOM_ORACLE_H_
#define CQCOUNT_HOM_HOM_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "decomposition/tree_decomposition.h"
#include "hom/decomposition_solver.h"
#include "hom/join.h"
#include "query/query.h"
#include "relational/structure.h"

namespace cqcount {

/// Opaque per-worker state for concurrent oracle use. Obtained from
/// HomOracle::CreateContext; one context must never be used by two
/// threads at once.
class HomContext {
 public:
  virtual ~HomContext() = default;
};

/// A Hom instance with base domains fixed; each Decide overlays a small
/// set of per-variable masks (one colouring trial). Obtained from
/// HomOracle::Prepare; must not outlive the oracle (or the context it was
/// prepared on).
class PreparedHom {
 public:
  virtual ~PreparedHom() = default;

  /// True iff a solution exists under base + `extra` (vars limited to the
  /// overlay vars declared at Prepare time). Single-threaded: runs on the
  /// context the instance was prepared on.
  virtual bool Decide(const std::vector<DomainRestriction>& extra) = 0;

  /// Lane-concurrent variant: evaluates the trial with `lane`'s scratch.
  /// Distinct lanes may call concurrently when the owning oracle
  /// SupportsConcurrentDecides(); the default forwards to Decide (only
  /// correct sequentially).
  virtual bool Decide(const std::vector<DomainRestriction>& extra,
                      HomContext& lane) {
    (void)lane;
    return Decide(extra);
  }
};

/// Decides colour-coded homomorphism instances for a fixed (phi, D).
class HomOracle {
 public:
  virtual ~HomOracle() = default;

  /// True iff a solution (ignoring disequalities) exists under `domains`.
  virtual bool Decide(const VarDomains& domains) = 0;

  /// Prepares repeated decisions over fixed `base` domains with per-trial
  /// overlays on `overlay_vars`. The default implementation copies and
  /// restores only the overlaid domains around Decide; oracles with a
  /// cheaper incremental path override this.
  virtual std::unique_ptr<PreparedHom> Prepare(const VarDomains& base,
                                               std::vector<int> overlay_vars);

  /// Context-scoped Prepare: chains on distinct contexts may run
  /// concurrently when SupportsConcurrentDecides(). The default ignores
  /// the context (sequential oracles).
  virtual std::unique_ptr<PreparedHom> Prepare(const VarDomains& base,
                                               std::vector<int> overlay_vars,
                                               HomContext* ctx) {
    (void)ctx;
    return Prepare(base, std::move(overlay_vars));
  }

  /// Mints per-worker state for concurrent use; null when the oracle has
  /// no concurrent path (callers must then serialise).
  virtual std::unique_ptr<HomContext> CreateContext() { return nullptr; }

  /// True when Prepare/Decide chains on distinct contexts are safe to run
  /// concurrently.
  virtual bool SupportsConcurrentDecides() const { return false; }

  /// Number of decisions served so far (plain and prepared).
  uint64_t num_calls() const {
    return num_calls_.load(std::memory_order_relaxed);
  }

  /// Internal: lets PreparedHom implementations attribute their decisions
  /// to the owning oracle's call counter.
  void RecordPreparedDecide() {
    num_calls_.fetch_add(1, std::memory_order_relaxed);
  }

 protected:
  void RecordDecide() { num_calls_.fetch_add(1, std::memory_order_relaxed); }

  std::atomic<uint64_t> num_calls_{0};
};

/// Polynomial-time oracle via tree-decomposition DP (Theorem 31 engine; the
/// same engine serves the unbounded-arity case over an fhw-optimised
/// decomposition, standing in for Theorem 36 — see DESIGN.md section 4.2).
class DecompositionHomOracle : public HomOracle {
 public:
  DecompositionHomOracle(const Query& q, const Database& db,
                         TreeDecomposition td)
      : solver_(q, db, std::move(td)) {}

  bool Decide(const VarDomains& domains) override {
    RecordDecide();
    return solver_.Decide(&domains);
  }

  /// Prepared decisions run on the solver's trial-reuse DP.
  std::unique_ptr<PreparedHom> Prepare(
      const VarDomains& base, std::vector<int> overlay_vars) override;
  std::unique_ptr<PreparedHom> Prepare(const VarDomains& base,
                                       std::vector<int> overlay_vars,
                                       HomContext* ctx) override;

  /// Contexts wrap independent SolverEvalContexts; the solver's bag-join
  /// cache is shared and immutable, so concurrent chains are safe.
  std::unique_ptr<HomContext> CreateContext() override;
  bool SupportsConcurrentDecides() const override { return true; }

  /// Prepare/evaluate observability for engine provenance.
  DecompositionSolver::DpStats dp_stats() const { return solver_.dp_stats(); }

 private:
  DecompositionSolver solver_;
};

/// Exponential-time oracle via plain backtracking (cross-validation). The
/// joiner (and its identity variable order) is built once at construction
/// and reused by every Decide call.
class BacktrackingHomOracle : public HomOracle {
 public:
  BacktrackingHomOracle(const Query& q, const Database& db);

  bool Decide(const VarDomains& domains) override;

 private:
  BagJoiner joiner_;
};

/// Decides whether a homomorphism from structure `a` to structure `b`
/// exists (sig(a) must be contained in sig(b)); used to cross-validate the
/// virtual oracle against materialised A-hat / B-hat instances.
bool DecideStructureHom(const Structure& a, const Structure& b);

}  // namespace cqcount

#endif  // CQCOUNT_HOM_HOM_ORACLE_H_
