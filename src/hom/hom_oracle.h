// Hom decision oracles (the black box of Lemma 22).
//
// The FPTRAS only interacts with the homomorphism problem through this
// interface. Colour-coded instances Hom(A-hat, B-hat) are passed virtually
// as per-variable domain restrictions — observationally equivalent to the
// materialised structures of Definitions 26/28 (every added relation is
// unary), which tests cross-validate via DecideStructureHom.
#ifndef CQCOUNT_HOM_HOM_ORACLE_H_
#define CQCOUNT_HOM_HOM_ORACLE_H_

#include <cstdint>
#include <memory>

#include "decomposition/tree_decomposition.h"
#include "hom/decomposition_solver.h"
#include "hom/join.h"
#include "query/query.h"
#include "relational/structure.h"

namespace cqcount {

/// Decides colour-coded homomorphism instances for a fixed (phi, D).
class HomOracle {
 public:
  virtual ~HomOracle() = default;

  /// True iff a solution (ignoring disequalities) exists under `domains`.
  virtual bool Decide(const VarDomains& domains) = 0;

  /// Number of Decide calls served so far.
  uint64_t num_calls() const { return num_calls_; }

 protected:
  uint64_t num_calls_ = 0;
};

/// Polynomial-time oracle via tree-decomposition DP (Theorem 31 engine; the
/// same engine serves the unbounded-arity case over an fhw-optimised
/// decomposition, standing in for Theorem 36 — see DESIGN.md section 4.2).
class DecompositionHomOracle : public HomOracle {
 public:
  DecompositionHomOracle(const Query& q, const Database& db,
                         TreeDecomposition td)
      : solver_(q, db, std::move(td)) {}

  bool Decide(const VarDomains& domains) override {
    ++num_calls_;
    return solver_.Decide(&domains);
  }

 private:
  DecompositionSolver solver_;
};

/// Exponential-time oracle via plain backtracking (cross-validation).
class BacktrackingHomOracle : public HomOracle {
 public:
  BacktrackingHomOracle(const Query& q, const Database& db)
      : query_(q), db_(db) {}

  bool Decide(const VarDomains& domains) override;

 private:
  const Query& query_;
  const Database& db_;
};

/// Decides whether a homomorphism from structure `a` to structure `b`
/// exists (sig(a) must be contained in sig(b)); used to cross-validate the
/// virtual oracle against materialised A-hat / B-hat instances.
bool DecideStructureHom(const Structure& a, const Structure& b);

}  // namespace cqcount

#endif  // CQCOUNT_HOM_HOM_ORACLE_H_
