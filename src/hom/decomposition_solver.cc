#include "hom/decomposition_solver.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "hom/bag_solutions.h"
#include "util/hash.h"

namespace cqcount {
namespace {

// Positions (indices into `bag`) of the elements also present in `other`;
// both inputs sorted.
std::vector<int> SharedPositions(const std::vector<int>& bag,
                                 const std::vector<int>& other) {
  std::vector<int> positions;
  size_t j = 0;
  for (size_t i = 0; i < bag.size(); ++i) {
    while (j < other.size() && other[j] < bag[i]) ++j;
    if (j < other.size() && other[j] == bag[i]) {
      positions.push_back(static_cast<int>(i));
    }
  }
  return positions;
}

Tuple ProjectTuple(const Tuple& t, const std::vector<int>& positions) {
  Tuple out;
  out.reserve(positions.size());
  for (int p : positions) out.push_back(t[p]);
  return out;
}

}  // namespace

DecompositionSolver::DecompositionSolver(const Query& q, const Database& db,
                                         TreeDecomposition td)
    : query_(q), db_(db), td_(std::move(td)) {
  children_ = td_.Children();
  // Post-order via iterative DFS.
  std::vector<int> stack = {td_.root};
  std::vector<int> order;
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (int c : children_[node]) stack.push_back(c);
  }
  post_order_.assign(order.rbegin(), order.rend());

  BagJoiner::Options opts;
  opts.enforce_negated = true;
  opts.enforce_disequalities = false;
  joiners_.reserve(td_.num_nodes());
  for (int t = 0; t < td_.num_nodes(); ++t) {
    joiners_.emplace_back(query_, db_, td_.bags[t], opts);
  }
}

bool DecompositionSolver::RunDp(const VarDomains* domains,
                                double* total) const {
  const int num_nodes = td_.num_nodes();
  // Surviving bag tuples and (optionally) their extension weights.
  std::vector<std::vector<Tuple>> surviving(num_nodes);
  std::vector<std::vector<double>> weights(num_nodes);

  for (int t : post_order_) {
    const std::vector<int>& bag = td_.bags[t];
    Relation sols = joiners_[t].Materialise(domains);
    // Per-child lookup tables: projection onto shared vars -> sum of child
    // weights (or mere existence for the decision variant).
    struct ChildTable {
      std::vector<int> parent_positions;
      std::unordered_map<Tuple, double, VectorHash<Value>> sums;
    };
    std::vector<ChildTable> tables;
    tables.reserve(children_[t].size());
    for (int c : children_[t]) {
      ChildTable table;
      table.parent_positions = SharedPositions(bag, td_.bags[c]);
      const std::vector<int> child_positions =
          SharedPositions(td_.bags[c], bag);
      for (size_t i = 0; i < surviving[c].size(); ++i) {
        Tuple key = ProjectTuple(surviving[c][i], child_positions);
        const double w = total ? weights[c][i] : 1.0;
        auto [it, inserted] = table.sums.emplace(std::move(key), w);
        if (!inserted) {
          if (total) {
            it->second += w;
          }
          // Decision variant: existence only, keep 1.0.
        }
      }
      tables.push_back(std::move(table));
    }

    for (const Tuple& alpha : sols.tuples()) {
      double w = 1.0;
      bool alive = true;
      for (const ChildTable& table : tables) {
        Tuple key = ProjectTuple(alpha, table.parent_positions);
        auto it = table.sums.find(key);
        if (it == table.sums.end()) {
          alive = false;
          break;
        }
        if (total) w *= it->second;
      }
      if (!alive) continue;
      surviving[t].push_back(alpha);
      if (total) weights[t].push_back(w);
    }
    if (surviving[t].empty()) {
      if (total) *total = 0.0;
      return false;
    }
    // Free memory of fully-consumed children.
    for (int c : children_[t]) {
      surviving[c].clear();
      surviving[c].shrink_to_fit();
      weights[c].clear();
      weights[c].shrink_to_fit();
    }
  }

  if (total) {
    double sum = 0.0;
    for (double w : weights[td_.root]) sum += w;
    *total = sum;
    return sum > 0.0;
  }
  return true;
}

bool DecompositionSolver::Decide(const VarDomains* domains) const {
  return RunDp(domains, nullptr);
}

double DecompositionSolver::CountSolutions(const VarDomains* domains) const {
  assert(query_.disequalities().empty() &&
         "CountSolutions does not support disequalities");
  double total = 0.0;
  RunDp(domains, &total);
  return total;
}

}  // namespace cqcount
