#include "hom/decomposition_solver.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "hom/bag_solutions.h"

namespace cqcount {
namespace {

// Positions (indices into `bag`) of the elements also present in `other`;
// both inputs sorted.
std::vector<int> SharedPositions(const std::vector<int>& bag,
                                 const std::vector<int>& other) {
  std::vector<int> positions;
  size_t j = 0;
  for (size_t i = 0; i < bag.size(); ++i) {
    while (j < other.size() && other[j] < bag[i]) ++j;
    if (j < other.size() && other[j] == bag[i]) {
      positions.push_back(static_cast<int>(i));
    }
  }
  return positions;
}

// Per-child lookup table: projection onto the shared variables -> sum of
// child weights (or mere existence for the decision variant). Built by
// sort-based aggregation over a flat key buffer — no per-key heap nodes,
// lookups are strided binary searches.
struct ChildTable {
  std::vector<int> parent_positions;  // Shared columns within the parent bag.
  FlatTuples keys;                    // Unique projected keys, sorted.
  std::vector<double> sums;           // Aggregated weight per key.

  // Aggregates (projection of rows[i], weight_of(i)) pairs.
  template <typename WeightFn>
  void Build(const FlatTuples& rows, const std::vector<int>& child_positions,
             WeightFn weight_of, bool sum_weights) {
    const int kw = static_cast<int>(child_positions.size());
    FlatTuples raw(kw);
    raw.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      TupleView row = rows[i];
      Value* dst = raw.AppendRow();
      for (int k = 0; k < kw; ++k) dst[k] = row[child_positions[k]];
    }
    std::vector<uint32_t> order(raw.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return raw[a] < raw[b];
    });
    keys = FlatTuples(kw);
    sums.clear();
    for (uint32_t i : order) {
      if (!keys.empty() && keys.back() == raw[i]) {
        if (sum_weights) sums.back() += weight_of(i);
        // Decision variant: existence only, keep 1.0.
      } else {
        keys.PushBack(raw[i]);
        sums.push_back(weight_of(i));
      }
    }
  }

  // The aggregated weight for `key` (kw values), or -1 when absent.
  double Lookup(const Value* key) const {
    const size_t at = keys.LowerBound(key);
    if (at == keys.size() ||
        CompareValues(keys[at].data(), key, keys.width()) != 0) {
      return -1.0;
    }
    return sums[at];
  }
};

}  // namespace

DecompositionSolver::DecompositionSolver(const Query& q, const Database& db,
                                         TreeDecomposition td)
    : query_(q), db_(db), td_(std::move(td)) {
  children_ = td_.Children();
  // Post-order via iterative DFS.
  std::vector<int> stack = {td_.root};
  std::vector<int> order;
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (int c : children_[node]) stack.push_back(c);
  }
  post_order_.assign(order.rbegin(), order.rend());

  BagJoiner::Options opts;
  opts.enforce_negated = true;
  opts.enforce_disequalities = false;
  joiners_.reserve(td_.num_nodes());
  for (int t = 0; t < td_.num_nodes(); ++t) {
    joiners_.emplace_back(query_, db_, td_.bags[t], opts);
  }
}

bool DecompositionSolver::RunDp(const VarDomains* domains,
                                double* total) const {
  const int num_nodes = td_.num_nodes();
  // Surviving bag tuples (flat, bag-arity rows) and their extension
  // weights (counting variant only).
  std::vector<FlatTuples> surviving(num_nodes);
  std::vector<std::vector<double>> weights(num_nodes);
  Tuple key_scratch;

  for (int t : post_order_) {
    const std::vector<int>& bag = td_.bags[t];
    Relation sols = joiners_[t].Materialise(domains);
    std::vector<ChildTable> tables;
    tables.reserve(children_[t].size());
    for (int c : children_[t]) {
      ChildTable table;
      table.parent_positions = SharedPositions(bag, td_.bags[c]);
      const std::vector<int> child_positions =
          SharedPositions(td_.bags[c], bag);
      const std::vector<double>& wc = weights[c];
      table.Build(
          surviving[c], child_positions,
          [&](uint32_t i) { return total ? wc[i] : 1.0; },
          /*sum_weights=*/total != nullptr);
      tables.push_back(std::move(table));
    }

    surviving[t] = FlatTuples(static_cast<int>(bag.size()));
    for (TupleView alpha : sols) {
      double w = 1.0;
      bool alive = true;
      for (const ChildTable& table : tables) {
        key_scratch.clear();
        for (int p : table.parent_positions) key_scratch.push_back(alpha[p]);
        const double sum = table.Lookup(key_scratch.data());
        if (sum < 0.0) {
          alive = false;
          break;
        }
        if (total) w *= sum;
      }
      if (!alive) continue;
      surviving[t].PushBack(alpha);
      if (total) weights[t].push_back(w);
    }
    if (surviving[t].empty()) {
      if (total) *total = 0.0;
      return false;
    }
    // Free memory of fully-consumed children.
    for (int c : children_[t]) {
      surviving[c] = FlatTuples();
      weights[c].clear();
      weights[c].shrink_to_fit();
    }
  }

  if (total) {
    double sum = 0.0;
    for (double w : weights[td_.root]) sum += w;
    *total = sum;
    return sum > 0.0;
  }
  return true;
}

bool DecompositionSolver::Decide(const VarDomains* domains) const {
  return RunDp(domains, nullptr);
}

double DecompositionSolver::CountSolutions(const VarDomains* domains) const {
  assert(query_.disequalities().empty() &&
         "CountSolutions does not support disequalities");
  double total = 0.0;
  RunDp(domains, &total);
  return total;
}

}  // namespace cqcount
