#include "hom/decomposition_solver.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "hom/bag_solutions.h"
#include "relational/simd.h"
#include "util/failpoint.h"

namespace cqcount {
namespace {

// Positions (indices into `bag`) of the elements also present in `other`;
// both inputs sorted.
std::vector<int> SharedPositions(const std::vector<int>& bag,
                                 const std::vector<int>& other) {
  std::vector<int> positions;
  size_t j = 0;
  for (size_t i = 0; i < bag.size(); ++i) {
    while (j < other.size() && other[j] < bag[i]) ++j;
    if (j < other.size() && other[j] == bag[i]) {
      positions.push_back(static_cast<int>(i));
    }
  }
  return positions;
}

// Per-child lookup table: projection onto the shared variables -> sum of
// child weights (or mere existence). Built by sort-based aggregation over
// a flat key buffer — no per-key heap nodes, lookups are strided binary
// searches. Scratch buffers are members so a table slot can be rebuilt
// repeatedly without reallocating.
struct ChildTable {
  std::vector<int> parent_positions;  // Shared columns within the parent bag.
  FlatTuples keys;                    // Unique projected keys, sorted.
  std::vector<double> sums;           // Aggregated weight per key (counting).

  FlatTuples raw_;                    // Projection scratch, reused.
  std::vector<uint32_t> order_;       // Sort permutation scratch, reused.

  // Aggregates (projection of rows[i], weight_of(i)) pairs. `rows` is any
  // row container exposing size()/operator[](size_t)->TupleView.
  template <typename Rows, typename WeightFn>
  void Build(const Rows& rows, const std::vector<int>& child_positions,
             WeightFn weight_of, bool sum_weights) {
    const int kw = static_cast<int>(child_positions.size());
    raw_.Reset(kw);
    raw_.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      TupleView row = rows[i];
      Value* dst = raw_.AppendRow();
      for (int k = 0; k < kw; ++k) dst[k] = row[child_positions[k]];
    }
    // Shared columns often lead the (lexicographically ordered) bag
    // tuple, in which case the projection is already sorted and the
    // permutation sort can be skipped.
    bool sorted = true;
    for (size_t i = 1; i < raw_.size() && sorted; ++i) {
      sorted = !(raw_[i] < raw_[i - 1]);
    }
    order_.resize(raw_.size());
    std::iota(order_.begin(), order_.end(), 0u);
    if (!sorted) {
      std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
        return raw_[a] < raw_[b];
      });
    }
    keys.Reset(kw);
    sums.clear();
    for (uint32_t i : order_) {
      if (!keys.empty() && keys.back() == raw_[i]) {
        if (sum_weights) sums.back() += weight_of(i);
        // Decision variant: existence only.
      } else {
        keys.PushBack(raw_[i]);
        if (sum_weights) sums.push_back(weight_of(i));
      }
    }
  }

  // Index of `key` (kw values) among the unique keys, or -1 when absent.
  ptrdiff_t Find(const Value* key) const {
    const size_t at = keys.LowerBound(key);
    if (at == keys.size() ||
        CompareValues(keys[at].data(), key, keys.width()) != 0) {
      return -1;
    }
    return static_cast<ptrdiff_t>(at);
  }

  bool Contains(const Value* key) const { return Find(key) >= 0; }

  // The aggregated weight for `key`, or -1 when absent (counting builds).
  double Lookup(const Value* key) const {
    const ptrdiff_t at = Find(key);
    return at < 0 ? -1.0 : sums[static_cast<size_t>(at)];
  }
};

// Existence-only semijoin table for the prepared decision path: the
// child's shared-variable projection keyed by mixed-radix encoding into
// an epoch-stamped array. O(1) insert and probe, and "clearing" between
// trials is an epoch bump — no sorting and no memset in the trial loop.
// Key spaces past the cap fall back to the sort-based ChildTable.
struct ExistTable {
  std::vector<int> parent_positions;  // Parent-bag columns to probe with.
  std::vector<int> child_positions;   // Child-bag columns projected.
  std::vector<uint64_t> radix;        // Stride per shared column.
  std::vector<uint32_t> radix32;      // Same strides; key space < 2^21
                                      // guarantees they fit u32 (SIMD probe).
  std::vector<uint32_t> stamps;
  uint32_t epoch = 0;
  bool oversize = false;
  ChildTable fallback;

  // Bounds per-table memory (u32 stamps => 8 MiB per table at the cap);
  // larger shared-key spaces use the sort-based fallback.
  static constexpr uint64_t kMaxKeySpace = uint64_t{1} << 21;

  // Fixes the shared-column layout (per solver, not per call). The k-th
  // shared variable occupies parent_positions[k] / child_positions[k] in
  // the respective bags (both SharedPositions lists are ordered by
  // variable id, so they align).
  void Configure(uint64_t universe, std::vector<int> parent_pos,
                 std::vector<int> child_pos) {
    parent_positions = std::move(parent_pos);
    child_positions = std::move(child_pos);
    uint64_t space = 1;
    radix.clear();
    for (size_t k = 0; k < child_positions.size(); ++k) {
      radix.push_back(space);
      if (universe == 0 || space > kMaxKeySpace / std::max<uint64_t>(
                                                      universe, 1)) {
        oversize = true;
      }
      space *= std::max<uint64_t>(universe, 1);
      if (space > kMaxKeySpace) oversize = true;
    }
    if (oversize) {
      fallback.parent_positions = parent_positions;
      return;
    }
    radix32.assign(radix.begin(), radix.end());
    stamps.assign(static_cast<size_t>(space), 0);
    epoch = 0;
  }

  template <typename Rows>
  void Build(const Rows& rows) {
    if (oversize) {
      fallback.Build(
          rows, child_positions, [](uint32_t) { return 1.0; },
          /*sum_weights=*/false);
      return;
    }
    if (++epoch == 0) {  // uint32 wrap: flush and restart.
      std::fill(stamps.begin(), stamps.end(), 0u);
      epoch = 1;
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      TupleView row = rows[i];
      uint64_t code = 0;
      for (size_t k = 0; k < child_positions.size(); ++k) {
        code += radix[k] * row[static_cast<size_t>(child_positions[k])];
      }
      // Values are certified < universe at load, which bounds the code
      // below the table size; if corrupt storage slipped a larger value
      // through anyway, drop the row rather than write out of bounds.
      if (code < stamps.size()) stamps[static_cast<size_t>(code)] = epoch;
    }
  }

  // Probes with the projection of a PARENT bag row (no key scratch).
  bool ContainsParentRow(TupleView parent_row, Tuple& key_scratch) const {
    if (oversize) {
      ProjectInto(parent_row, fallback.parent_positions, key_scratch);
      return fallback.Contains(key_scratch.data());
    }
    uint64_t code = 0;
    for (size_t k = 0; k < parent_positions.size(); ++k) {
      code += radix[k] * parent_row[static_cast<size_t>(parent_positions[k])];
    }
    // Out-of-range codes (corrupt storage only) are misses, matching
    // Build's drop of such rows and ProbeStampsBlock's mask.
    return code < stamps.size() &&
           stamps[static_cast<size_t>(code)] == epoch;
  }

  // Word-parallel probe of `n` (<= 64) consecutive parent rows laid out
  // arity-strided at `rows`: bit b of the result is set iff row b's
  // projection is present. Requires !oversize. Bit order matches row
  // order, so survivors enumerate identically to the scalar loop.
  uint64_t ProbeBlock(const Value* rows, size_t width, size_t n) const {
    return simd::ProbeStampsBlock(stamps.data(), stamps.size(), epoch, rows,
                                  width, parent_positions.data(),
                                  radix32.data(), parent_positions.size(), n);
  }
};

// True when `row` passes every (column, mask) filter. Values outside a
// mask's universe are disallowed, matching VarDomains::Allows.
bool PassesFilters(TupleView row,
                   const std::vector<std::pair<int, const Bitset*>>& filters) {
  for (const auto& [col, mask] : filters) {
    if (!mask->Test(row[static_cast<size_t>(col)])) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Per-worker evaluation state.
//
// The fields divide into CALL state — written by Prepare on this context
// and read-only while its PreparedDp is live — and TRIAL scratch, used by
// whichever context evaluates a trial. A lane context that only serves as
// trial scratch for another context's prepared call never touches its own
// call-state arrays.

struct SolverEvalContext::Impl {
  // --- Call state (owned by the preparing context) -------------------------
  bool call_configured = false;

  // Cache-cap fallback: evaluate each decision monolithically over a
  // mutable copy of the base domains (overlay applied and restored).
  bool fallback = false;
  VarDomains fallback_base;  // Pristine sized copy; lanes clone from it.

  // A trial-invariant bag died under the base domains: every trial is
  // "no solution".
  bool always_false = false;

  // Per bag: input rows for the trial loop (into filtered_storage or the
  // solver row cache), overlay columns, per-call base filters, and the
  // dynamic flag (subtree touches an overlay var).
  std::vector<const FlatTuples*> call_rows;
  std::vector<FlatTuples> filtered_storage;
  std::vector<std::vector<std::pair<int, int>>> overlay_cols;  // (col, var)
  std::vector<std::vector<std::pair<int, const Bitset*>>> base_filters;
  std::vector<char> dynamic_bag;
  std::vector<char> is_overlay;

  // Trial-invariant DP state, rebuilt each Prepare.
  std::vector<FlatTuples> static_survivors;
  std::vector<ExistTable> static_tables;  // Indexed by child node.

  // Demand-driven (top-down) decision state for the overlay-free case:
  // per node, a memo over the shared-key space (same mixed-radix codes
  // as ExistTable) recording whether the subtree admits a surviving row
  // for that key. Epoch-stamped: one bump per Prepare, no clearing.
  struct DemandMemo {
    std::vector<uint32_t> stamp;
    std::vector<uint8_t> result;
    uint32_t epoch = 0;
  };
  std::vector<DemandMemo> demand_memo;
  std::vector<std::vector<Value>> demand_keys;  // Per-node key scratch.
  bool demand_ok = false;  // All shared-key spaces within the cap.

  // Generation of the Prepare this call state belongs to (stale-handle
  // assertion and lane fallback sync).
  uint64_t generation = 0;

  // --- Trial scratch (owned by the evaluating lane) ------------------------
  bool trial_configured = false;
  std::vector<FlatTuples> trial_survivors;
  std::vector<ExistTable> trial_tables;
  std::vector<std::pair<int, const Bitset*>> filter_scratch;
  Tuple key_scratch;
  // Lane-local mutable copy of a fallback call's base domains, synced
  // from the preparing context by generation stamp.
  VarDomains fallback_work;
  SavedDomains fallback_saved;
  uint64_t fallback_sync_generation = 0;
};

SolverEvalContext::SolverEvalContext() : impl_(std::make_unique<Impl>()) {}
SolverEvalContext::~SolverEvalContext() = default;
SolverEvalContext::SolverEvalContext(SolverEvalContext&&) noexcept = default;
SolverEvalContext& SolverEvalContext::operator=(SolverEvalContext&&) noexcept =
    default;

bool PreparedDp::Decide(const std::vector<DomainRestriction>& extra) {
  return solver_->DecidePrepared(*ctx_, *ctx_, generation_, extra);
}

bool PreparedDp::Decide(const std::vector<DomainRestriction>& extra,
                        SolverEvalContext& lane) {
  return solver_->DecidePrepared(*ctx_, *lane.impl_, generation_, extra);
}

// ---------------------------------------------------------------------------
// DecompositionSolver

DecompositionSolver::DecompositionSolver(const Query& q, const Database& db,
                                         TreeDecomposition td)
    : DecompositionSolver(q, db, std::move(td), Options()) {}

DecompositionSolver::DecompositionSolver(const Query& q, const Database& db,
                                         TreeDecomposition td, Options opts)
    : query_(q), db_(db), td_(std::move(td)), opts_(opts) {
  children_ = td_.Children();
  const int num_nodes = td_.num_nodes();
  parent_.assign(num_nodes, -1);
  for (int t = 0; t < num_nodes; ++t) {
    for (int c : children_[t]) parent_[c] = t;
  }
  // Post-order via iterative DFS.
  std::vector<int> stack = {td_.root};
  std::vector<int> order;
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (int c : children_[node]) stack.push_back(c);
  }
  post_order_.assign(order.rbegin(), order.rend());

  shared_in_child_.resize(num_nodes);
  shared_in_parent_.resize(num_nodes);
  for (int c = 0; c < num_nodes; ++c) {
    if (parent_[c] < 0) continue;
    shared_in_child_[c] = SharedPositions(td_.bags[c], td_.bags[parent_[c]]);
    shared_in_parent_[c] = SharedPositions(td_.bags[parent_[c]], td_.bags[c]);
  }

  BagJoiner::Options jopts;
  jopts.enforce_negated = true;
  jopts.enforce_disequalities = false;
  joiners_.reserve(num_nodes);
  for (int t = 0; t < num_nodes; ++t) {
    joiners_.emplace_back(query_, db_, td_.bags[t], jopts);
  }
}

DecompositionSolver::~DecompositionSolver() = default;

bool DecompositionSolver::RunDp(const VarDomains* domains,
                                double* total) const {
  const int num_nodes = td_.num_nodes();
  // Surviving bag tuples (flat, bag-arity rows) and their extension
  // weights (counting variant only).
  std::vector<FlatTuples> surviving(num_nodes);
  std::vector<std::vector<double>> weights(num_nodes);
  Tuple key_scratch;

  for (int t : post_order_) {
    const std::vector<int>& bag = td_.bags[t];
    Relation sols = joiners_[t].Materialise(domains);
    std::vector<ChildTable> tables;
    tables.reserve(children_[t].size());
    for (int c : children_[t]) {
      ChildTable table;
      table.parent_positions = shared_in_parent_[c];
      const std::vector<double>& wc = weights[c];
      table.Build(
          surviving[c], shared_in_child_[c],
          [&](uint32_t i) { return total ? wc[i] : 1.0; },
          /*sum_weights=*/total != nullptr);
      tables.push_back(std::move(table));
    }

    surviving[t] = FlatTuples(static_cast<int>(bag.size()));
    for (TupleView alpha : sols) {
      double w = 1.0;
      bool alive = true;
      for (const ChildTable& table : tables) {
        ProjectInto(alpha, table.parent_positions, key_scratch);
        if (total) {
          const double sum = table.Lookup(key_scratch.data());
          if (sum < 0.0) {
            alive = false;
            break;
          }
          w *= sum;
        } else if (!table.Contains(key_scratch.data())) {
          alive = false;
          break;
        }
      }
      if (!alive) continue;
      surviving[t].PushBack(alpha);
      if (total) weights[t].push_back(w);
    }
    if (surviving[t].empty()) {
      if (total) *total = 0.0;
      return false;
    }
    // Free memory of fully-consumed children.
    for (int c : children_[t]) {
      surviving[c] = FlatTuples();
      weights[c].clear();
      weights[c].shrink_to_fit();
    }
  }

  if (total) {
    double sum = 0.0;
    for (double w : weights[td_.root]) sum += w;
    *total = sum;
    return sum > 0.0;
  }
  return true;
}

bool DecompositionSolver::Decide(const VarDomains* domains) const {
  return RunDp(domains, nullptr);
}

double DecompositionSolver::CountSolutions(const VarDomains* domains) const {
  assert(query_.disequalities().empty() &&
         "CountSolutions does not support disequalities");
  double total = 0.0;
  RunDp(domains, &total);
  return total;
}

bool DecompositionSolver::EnsureBagRowCache() {
  // Fast path: the state flag is published with release semantics after
  // the cache contents are fully built, so readers seeing 1/2 may use the
  // cache (or its absence) without taking the mutex.
  int state = bag_row_cache_state_.load(std::memory_order_acquire);
  if (state == 1) return true;
  if (state == 2) return false;

  std::lock_guard<std::mutex> lock(cache_mu_);
  state = bag_row_cache_state_.load(std::memory_order_relaxed);
  if (state == 1) return true;
  if (state == 2) return false;

  // Fault-injection site: forces the monolithic-DP fallback (the same
  // transition the cache cap takes) without a pathological database.
  if (failpoint::ShouldFail("dp.bag_cache_build")) {
    stat_prepared_path_.store(false, std::memory_order_relaxed);
    bag_row_cache_state_.store(2, std::memory_order_release);
    return false;
  }

  const int num_nodes = td_.num_nodes();
  bag_rows_.assign(num_nodes, FlatTuples());
  uint64_t total = 0;
  for (int t = 0; t < num_nodes; ++t) {
    FlatTuples rows(static_cast<int>(td_.bags[t].size()));
    bool within_cap = true;
    joiners_[t].Enumerate(nullptr, [&](const Tuple& tup) {
      if (total >= opts_.max_cached_bag_rows) {
        within_cap = false;
        return false;
      }
      rows.PushBack(AsView(tup));
      ++total;
      return true;
    });
    if (!within_cap) {
      bag_rows_.clear();
      stat_prepared_path_.store(false, std::memory_order_relaxed);
      bag_row_cache_state_.store(2, std::memory_order_release);
      return false;
    }
    bag_rows_[t] = std::move(rows);
  }

  // Column value indexes (counting sort per column: values are dense).
  // Each column's index allocates universe+1 offsets, so the total
  // footprint is O(sum of bag widths * universe); cap it like the row
  // cache and fall back to the monolithic DP past it (a huge sparse
  // universe is also the regime where per-call O(universe) masks are
  // the real cost anyway).
  const size_t universe = db_.universe_size();
  uint64_t index_entries = 0;
  for (int t = 0; t < num_nodes; ++t) {
    index_entries += static_cast<uint64_t>(bag_rows_[t].width()) *
                     (static_cast<uint64_t>(universe) + 1);
  }
  if (index_entries > (uint64_t{1} << 24)) {
    bag_rows_.clear();
    stat_prepared_path_.store(false, std::memory_order_relaxed);
    bag_row_cache_state_.store(2, std::memory_order_release);
    return false;
  }
  bag_col_index_.assign(num_nodes, {});
  for (int t = 0; t < num_nodes; ++t) {
    const FlatTuples& rows = bag_rows_[t];
    const int width = rows.width();
    bag_col_index_[t].resize(width);
    for (int col = 0; col < width; ++col) {
      ColIndex& ix = bag_col_index_[t][col];
      ix.starts.assign(universe + 1, 0);
      for (size_t i = 0; i < rows.size(); ++i) {
        ++ix.starts[rows[i][static_cast<size_t>(col)] + 1];
      }
      for (size_t v = 1; v <= universe; ++v) ix.starts[v] += ix.starts[v - 1];
      ix.perm.resize(rows.size());
      std::vector<uint32_t> cursor(ix.starts.begin(), ix.starts.end() - 1);
      for (size_t i = 0; i < rows.size(); ++i) {
        ix.perm[cursor[rows[i][static_cast<size_t>(col)]]++] =
            static_cast<uint32_t>(i);
      }
    }
  }

  stat_cached_bag_rows_.store(total, std::memory_order_relaxed);
  bag_row_cache_state_.store(1, std::memory_order_release);
  return true;
}

std::unique_ptr<SolverEvalContext> DecompositionSolver::CreateEvalContext() {
  return std::unique_ptr<SolverEvalContext>(new SolverEvalContext());
}

SolverEvalContext::Impl& DecompositionSolver::DefaultContext() {
  std::lock_guard<std::mutex> lock(default_ctx_mu_);
  if (default_ctx_ == nullptr) {
    default_ctx_ = std::unique_ptr<SolverEvalContext>(new SolverEvalContext());
  }
  return *default_ctx_->impl_;
}

DecompositionSolver::DpStats DecompositionSolver::dp_stats() const {
  DpStats stats;
  stats.prepare_calls = stat_prepare_calls_.load(std::memory_order_relaxed);
  stats.prepared_decides =
      stat_prepared_decides_.load(std::memory_order_relaxed);
  stats.cached_bag_rows = stat_cached_bag_rows_.load(std::memory_order_relaxed);
  stats.prepared_path = stat_prepared_path_.load(std::memory_order_relaxed);
  return stats;
}

PreparedDp DecompositionSolver::Prepare(const VarDomains& base,
                                        const std::vector<int>& overlay_vars) {
  return PrepareOn(DefaultContext(), base, overlay_vars);
}

PreparedDp DecompositionSolver::Prepare(const VarDomains& base,
                                        const std::vector<int>& overlay_vars,
                                        SolverEvalContext& ctx) {
  return PrepareOn(*ctx.impl_, base, overlay_vars);
}

PreparedDp DecompositionSolver::PrepareOn(
    SolverEvalContext::Impl& sc, const VarDomains& base,
    const std::vector<int>& overlay_vars) {
  sc.generation =
      prepare_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  PreparedDp prepared(this, &sc, sc.generation);

  if (!EnsureBagRowCache()) {
    sc.fallback = true;
    sc.fallback_base = base;
    // Cover every overlaid variable even when the caller passed a
    // shorter (but non-empty) domain vector.
    if (sc.fallback_base.allowed.size() <
        static_cast<size_t>(query_.num_vars())) {
      sc.fallback_base.allowed.resize(static_cast<size_t>(query_.num_vars()));
    }
    return prepared;
  }
  stat_prepare_calls_.fetch_add(1, std::memory_order_relaxed);
  sc.fallback = false;

  const int num_nodes = td_.num_nodes();
  if (!sc.call_configured) {
    sc.call_rows.resize(num_nodes);
    sc.filtered_storage.resize(num_nodes);
    sc.overlay_cols.resize(num_nodes);
    sc.base_filters.resize(num_nodes);
    sc.dynamic_bag.resize(num_nodes);
    sc.is_overlay.resize(static_cast<size_t>(query_.num_vars()));
    sc.static_survivors.resize(num_nodes);
    sc.static_tables.resize(num_nodes);
    sc.demand_memo.resize(num_nodes);
    sc.demand_keys.resize(num_nodes);
    sc.demand_ok = true;
    for (int c = 0; c < num_nodes; ++c) {
      if (parent_[c] < 0) continue;
      sc.static_tables[c].Configure(db_.universe_size(), shared_in_parent_[c],
                                    shared_in_child_[c]);
      if (sc.static_tables[c].oversize) {
        sc.demand_ok = false;
      } else {
        sc.demand_memo[c].stamp.assign(sc.static_tables[c].stamps.size(), 0);
        sc.demand_memo[c].result.assign(sc.static_tables[c].stamps.size(), 0);
        sc.demand_keys[c].resize(shared_in_child_[c].size());
      }
    }
    sc.call_configured = true;
  }
  sc.always_false = false;

  std::fill(sc.is_overlay.begin(), sc.is_overlay.end(), 0);
  for (int v : overlay_vars) sc.is_overlay[static_cast<size_t>(v)] = 1;

  // Streams the cached rows of bag `t` that pass `filters`, driving the
  // iteration from the most selective restricted column's value index
  // (a singleton V_i then touches only that value's run instead of the
  // whole cache — cross-product bags from fill edges make the difference
  // quadratic). `fn` returns false to stop early.
  auto stream_filtered =
      [&](int t, const std::vector<std::pair<int, const Bitset*>>& filters,
          auto&& fn) {
        const FlatTuples& full = bag_rows_[t];
        size_t best_cost = full.size();
        int best = -1;
        for (size_t k = 0; k < filters.size(); ++k) {
          const auto& [col, mask] = filters[k];
          const ColIndex& ix = bag_col_index_[t][static_cast<size_t>(col)];
          const size_t vmax = std::min(mask->size(), ix.starts.size() - 1);
          size_t cost = 0;
          for (size_t v = mask->FindNext(0); v < vmax && cost < best_cost;
               v = mask->FindNext(v + 1)) {
            cost += ix.starts[v + 1] - ix.starts[v];
          }
          if (cost < best_cost) {
            best_cost = cost;
            best = static_cast<int>(k);
          }
        }
        if (best < 0) {
          // No restricted column narrows below a full scan.
          for (size_t i = 0; i < full.size(); ++i) {
            if (!PassesFilters(full[i], filters)) continue;
            if (!fn(full[i])) return;
          }
          return;
        }
        const auto& [best_col, best_mask] = filters[static_cast<size_t>(best)];
        const ColIndex& ix = bag_col_index_[t][static_cast<size_t>(best_col)];
        const size_t vmax = std::min(best_mask->size(), ix.starts.size() - 1);
        for (size_t v = best_mask->FindNext(0); v < vmax;
             v = best_mask->FindNext(v + 1)) {
          for (uint32_t at = ix.starts[v]; at < ix.starts[v + 1]; ++at) {
            TupleView row = full[ix.perm[at]];
            bool pass = true;
            for (size_t k = 0; k < filters.size() && pass; ++k) {
              if (static_cast<int>(k) == best) continue;
              pass = filters[k].second->Test(
                  row[static_cast<size_t>(filters[k].first)]);
            }
            if (!pass) continue;
            if (!fn(row)) return;
          }
        }
      };

  // Per-bag overlay columns, base filters, and the dynamic flag (a bag
  // is per-trial dynamic iff its subtree contains an overlay var).
  for (int t = 0; t < num_nodes; ++t) {
    const std::vector<int>& bag = td_.bags[t];
    sc.overlay_cols[t].clear();
    sc.base_filters[t].clear();
    for (size_t c = 0; c < bag.size(); ++c) {
      if (sc.is_overlay[static_cast<size_t>(bag[c])]) {
        sc.overlay_cols[t].push_back({static_cast<int>(c), bag[c]});
      }
      // Entries missing from a short domain vector are unrestricted
      // (the Prepare contract).
      if (static_cast<size_t>(bag[c]) < base.allowed.size()) {
        const Bitset& mask = base.allowed[static_cast<size_t>(bag[c])];
        if (!mask.empty()) {
          sc.base_filters[t].push_back({static_cast<int>(c), &mask});
        }
      }
    }
  }
  for (int t : post_order_) {
    bool dyn = !sc.overlay_cols[t].empty();
    for (int c : children_[t]) dyn = dyn || sc.dynamic_bag[c] != 0;
    sc.dynamic_bag[t] = dyn ? 1 : 0;
  }

  // Overlay-free decision (every trial shares one verdict): demand-driven
  // top-down search instead of the bottom-up table pass. exists(c, key)
  // is memoised per shared-key code, and the candidate rows for one key
  // are a (disjoint) slice of the child's rows, so total work is bounded
  // by the bottom-up pass — but only DEMANDED keys are ever evaluated,
  // and a witness short-circuits the whole tree. On edge-present boxes
  // (the common DLM case) this touches a vanishing fraction of the rows.
  if (!sc.dynamic_bag[td_.root] && sc.demand_ok) {
    for (int c = 0; c < num_nodes; ++c) {
      SolverEvalContext::Impl::DemandMemo& memo = sc.demand_memo[c];
      if (memo.stamp.empty()) continue;
      if (++memo.epoch == 0) {  // uint32 wrap: flush and restart.
        std::fill(memo.stamp.begin(), memo.stamp.end(), 0u);
        memo.epoch = 1;
      }
    }
    auto exists = [&](auto&& self, int c, TupleView parent_row) -> bool {
      const ExistTable& et = sc.static_tables[c];
      SolverEvalContext::Impl::DemandMemo& memo = sc.demand_memo[c];
      uint64_t code = 0;
      for (size_t k = 0; k < et.parent_positions.size(); ++k) {
        code +=
            et.radix[k] * parent_row[static_cast<size_t>(et.parent_positions[k])];
      }
      if (memo.stamp[static_cast<size_t>(code)] == memo.epoch) {
        return memo.result[static_cast<size_t>(code)] != 0;
      }
      std::vector<Value>& key = sc.demand_keys[c];
      for (size_t k = 0; k < et.parent_positions.size(); ++k) {
        key[k] = parent_row[static_cast<size_t>(et.parent_positions[k])];
      }
      // Drive the candidate scan from the smallest equality-column run.
      const FlatTuples& full = bag_rows_[c];
      size_t best_run = full.size() + 1;
      int best_k = -1;
      for (size_t k = 0; k < et.child_positions.size(); ++k) {
        const ColIndex& ix =
            bag_col_index_[c][static_cast<size_t>(et.child_positions[k])];
        const size_t run = ix.starts[key[k] + 1] - ix.starts[key[k]];
        if (run < best_run) {
          best_run = run;
          best_k = static_cast<int>(k);
        }
      }
      bool found = false;
      auto consider = [&](TupleView row) {
        for (size_t k = 0; k < et.child_positions.size(); ++k) {
          if (static_cast<int>(k) == best_k) continue;
          if (row[static_cast<size_t>(et.child_positions[k])] != key[k]) {
            return true;
          }
        }
        if (!PassesFilters(row, sc.base_filters[c])) return true;
        for (int gc : children_[c]) {
          if (!self(self, gc, row)) return true;
        }
        found = true;
        return false;  // Witness: stop the scan.
      };
      if (best_k >= 0) {
        const ColIndex& ix =
            bag_col_index_[c]
                          [static_cast<size_t>(et.child_positions[best_k])];
        const Value v = key[static_cast<size_t>(best_k)];
        for (uint32_t at = ix.starts[v]; at < ix.starts[v + 1]; ++at) {
          if (!consider(full[ix.perm[at]])) break;
        }
      } else {
        // No shared columns: any surviving row of the subtree will do.
        stream_filtered(c, sc.base_filters[c], consider);
      }
      memo.stamp[static_cast<size_t>(code)] = memo.epoch;
      memo.result[static_cast<size_t>(code)] = found ? 1 : 0;
      return found;
    };
    bool found = false;
    stream_filtered(td_.root, sc.base_filters[td_.root], [&](TupleView row) {
      for (int c : children_[td_.root]) {
        if (!exists(exists, c, row)) return true;  // Next root row.
      }
      found = true;
      return false;
    });
    sc.always_false = !found;
    return prepared;
  }

  // Step 2a: per-trial-dynamic bags get their base-filtered rows
  // materialised (the trial loop re-scans them with colour masks).
  for (int t = 0; t < num_nodes; ++t) {
    if (!sc.dynamic_bag[t]) continue;
    if (sc.base_filters[t].empty()) {
      sc.call_rows[t] = &bag_rows_[t];
      continue;
    }
    FlatTuples& out = sc.filtered_storage[t];
    out.Reset(bag_rows_[t].width());
    stream_filtered(t, sc.base_filters[t], [&out](TupleView row) {
      out.PushBack(row);
      return true;
    });
    sc.call_rows[t] = &out;
  }

  // Step 2b: trial-invariant part of the DP, fused with the base filter
  // (rows stream straight into the existence semijoin). Children of a
  // static bag are static by construction, so their tables are already
  // built when the parent is processed.
  Tuple prepare_key_scratch;
  for (int t : post_order_) {
    if (sc.dynamic_bag[t]) continue;
    const bool is_root = t == td_.root;  // Possible only with no overlay.
    FlatTuples& out = sc.static_survivors[t];
    out.Reset(bag_rows_[t].width());
    bool found = false;
    stream_filtered(t, sc.base_filters[t], [&](TupleView row) {
      for (int c : children_[t]) {
        if (!sc.static_tables[c].ContainsParentRow(row, prepare_key_scratch)) {
          return true;
        }
      }
      if (is_root) {
        // Existence-only decision: the first surviving root row settles
        // every (overlay-free) trial.
        found = true;
        return false;
      }
      out.PushBack(row);
      return true;
    });
    if (is_root) {
      sc.always_false = !found;
      break;  // Root is last in post-order anyway.
    }
    if (out.empty()) {
      sc.always_false = true;
      break;
    }
    sc.static_tables[t].Build(out);
  }
  return prepared;
}

bool DecompositionSolver::DecidePrepared(
    SolverEvalContext::Impl& sc, SolverEvalContext::Impl& trial,
    uint64_t generation, const std::vector<DomainRestriction>& extra) {
  assert(generation == sc.generation &&
         "stale PreparedDp: a newer Prepare call took this context");
  (void)generation;

  if (sc.fallback) {
    // Lane-local mutable copy of the base (synced once per Prepare), then
    // copy only the <= 2|Delta| endpoint domains, decide, restore.
    if (trial.fallback_sync_generation != sc.generation) {
      trial.fallback_work = sc.fallback_base;
      trial.fallback_sync_generation = sc.generation;
    }
    ApplyOverlay(trial.fallback_work, extra, trial.fallback_saved);
    const bool verdict = RunDp(&trial.fallback_work, nullptr);
    RestoreOverlay(trial.fallback_work, trial.fallback_saved);
    return verdict;
  }

  stat_prepared_decides_.fetch_add(1, std::memory_order_relaxed);
  if (sc.always_false) return false;
  const int root = td_.root;
  // No overlay anywhere: the Prepare-time pass already established the
  // verdict (root survivors were non-empty).
  if (!sc.dynamic_bag[root]) return true;

  // Trial scratch: sized lazily so a lane context serving another
  // context's prepared call configures itself on first use.
  if (!trial.trial_configured) {
    const int num_nodes = td_.num_nodes();
    trial.trial_survivors.resize(num_nodes);
    trial.trial_tables.resize(num_nodes);
    for (int c = 0; c < num_nodes; ++c) {
      if (parent_[c] < 0) continue;
      trial.trial_tables[c].Configure(db_.universe_size(),
                                      shared_in_parent_[c],
                                      shared_in_child_[c]);
    }
    trial.trial_configured = true;
  }

  for (int t : post_order_) {
    if (!sc.dynamic_bag[t]) continue;
    const FlatTuples& in = *sc.call_rows[t];
    const bool is_root = t == root;

    trial.filter_scratch.clear();
    for (const auto& [col, var] : sc.overlay_cols[t]) {
      for (const DomainRestriction& r : extra) {
        if (r.var == var) trial.filter_scratch.push_back({col, r.mask});
      }
    }

    FlatTuples& out = trial.trial_survivors[t];
    out.Reset(in.width());
    const std::vector<int>& kids = children_[t];
    // Word-parallel semijoin: rows are filtered in 64-row blocks, one
    // alive-bit per row, each child table ANDing its probe mask in (the
    // SIMD stamp-probe kernel does 8 rows per step). Bit order preserves
    // row order, so survivors and the verdict match the row-at-a-time
    // loop exactly; a block merely probes up to 63 rows past the first
    // witness before noticing it.
    const size_t width = static_cast<size_t>(in.width());
    for (size_t i = 0; i < in.size(); i += 64) {
      const size_t block = std::min<size_t>(64, in.size() - i);
      uint64_t alive =
          block == 64 ? ~uint64_t{0} : (uint64_t{1} << block) - 1;
      if (!trial.filter_scratch.empty()) {
        for (size_t b = 0; b < block; ++b) {
          if (!PassesFilters(in[i + b], trial.filter_scratch)) {
            alive &= ~(uint64_t{1} << b);
          }
        }
      }
      const Value* rows = in[i].data();
      for (int c : kids) {
        if (alive == 0) break;
        const ExistTable& table =
            sc.dynamic_bag[c] ? trial.trial_tables[c] : sc.static_tables[c];
        if (table.oversize) {
          for (size_t b = 0; b < block; ++b) {
            if ((alive >> b & 1) != 0 &&
                !table.ContainsParentRow(in[i + b], trial.key_scratch)) {
              alive &= ~(uint64_t{1} << b);
            }
          }
        } else {
          alive &= table.ProbeBlock(rows, width, block);
        }
      }
      if (alive == 0) continue;
      // Existence-only: any surviving root row is a witness.
      if (is_root) return true;
      for (size_t b = 0; b < block; ++b) {
        if ((alive >> b & 1) != 0) out.PushBack(in[i + b]);
      }
    }
    if (is_root || out.empty()) return false;

    trial.trial_tables[t].Build(out);
  }
  // The root is an ancestor of every bag, so a non-empty overlay always
  // returns from inside the loop; this covers the degenerate case of an
  // overlay on variables outside every bag.
  return true;
}

}  // namespace cqcount
