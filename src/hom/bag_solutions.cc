#include "hom/bag_solutions.h"

namespace cqcount {

Relation ComputeBagSolutions(const Query& q, const Database& db,
                             const std::vector<int>& bag,
                             const VarDomains* domains) {
  BagJoiner::Options opts;
  opts.enforce_negated = true;
  opts.enforce_disequalities = false;
  BagJoiner joiner(q, db, bag, opts);
  return joiner.Materialise(domains);
}

}  // namespace cqcount
