#include "hom/join.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace cqcount {

void ApplyOverlay(VarDomains& domains,
                  const std::vector<DomainRestriction>& extra,
                  SavedDomains& saved) {
  saved.clear();
  saved.reserve(extra.size());
  for (const DomainRestriction& r : extra) {
    assert(static_cast<size_t>(r.var) < domains.allowed.size());
    Bitset& domain = domains.allowed[static_cast<size_t>(r.var)];
    saved.emplace_back(r.var, std::move(domain));
    if (saved.back().second.empty()) {
      domain = *r.mask;
    } else {
      domain = saved.back().second;
      domain.IntersectWith(*r.mask);
    }
  }
}

void RestoreOverlay(VarDomains& domains, SavedDomains& saved) {
  for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
    domains.allowed[static_cast<size_t>(it->first)] = std::move(it->second);
  }
  saved.clear();
}

BagJoiner::BagJoiner(const Query& q, const Database& db,
                     std::vector<int> vars, Options opts)
    : query_(q), db_(db), vars_(std::move(vars)), opts_(opts) {
  const int depth = static_cast<int>(vars_.size());
  std::vector<int> level_of(q.num_vars(), -1);
  for (int d = 0; d < depth; ++d) {
    assert(level_of[vars_[d]] == -1 && "duplicate variable in join order");
    level_of[vars_[d]] = d;
  }
  active_.resize(depth);
  negated_at_.resize(depth);
  diseq_at_.resize(depth);

  for (const Atom& atom : q.atoms()) {
    const Relation& rel = db.relation(atom.relation);
    if (!atom.negated) {
      if (rel.empty()) {
        infeasible_ = true;
        continue;
      }
      // Distinct involved variables, ordered by level.
      std::map<int, int> level_to_var;  // level -> variable id.
      for (int v : atom.vars) {
        if (level_of[v] >= 0) level_to_var[level_of[v]] = v;
      }
      if (level_to_var.empty()) continue;
      // First predicate-position of each involved variable.
      std::vector<int> first_pos;
      std::vector<int> levels;
      for (const auto& [level, var] : level_to_var) {
        int pos = -1;
        for (size_t p = 0; p < atom.vars.size(); ++p) {
          if (atom.vars[p] == var) {
            pos = static_cast<int>(p);
            break;
          }
        }
        first_pos.push_back(pos);
        levels.push_back(level);
      }
      // Repeated-variable position pairs that must agree within a fact.
      std::vector<std::pair<int, int>> equal_pairs;
      for (size_t p = 0; p < atom.vars.size(); ++p) {
        for (size_t p2 = p + 1; p2 < atom.vars.size(); ++p2) {
          if (atom.vars[p] == atom.vars[p2]) {
            equal_pairs.push_back({static_cast<int>(p), static_cast<int>(p2)});
          }
        }
      }
      // Project into flat storage, filtering inconsistent facts.
      Relation projection(static_cast<int>(levels.size()));
      for (TupleView t : rel) {
        bool consistent = true;
        for (const auto& [p, p2] : equal_pairs) {
          if (t[p] != t[p2]) {
            consistent = false;
            break;
          }
        }
        if (!consistent) continue;
        Value* dst = projection.AppendRow();
        for (size_t k = 0; k < first_pos.size(); ++k) dst[k] = t[first_pos[k]];
      }
      projection.Canonicalize();
      if (projection.empty()) {
        infeasible_ = true;
        continue;
      }
      const int ci = static_cast<int>(constraints_.size());
      for (size_t k = 0; k < levels.size(); ++k) {
        active_[levels[k]].push_back({ci, static_cast<int>(k)});
      }
      constraints_.push_back({std::move(projection), std::move(levels)});
    } else if (opts_.enforce_negated) {
      // A negated nullary atom is a pure guard: satisfiable iff the
      // relation is empty (there is no level to trigger a check at).
      if (atom.vars.empty()) {
        if (!rel.empty()) infeasible_ = true;
        continue;
      }
      // Enforce only when all variables of the atom are assigned here.
      int trigger = -1;
      bool all_in = true;
      for (int v : atom.vars) {
        if (level_of[v] < 0) {
          all_in = false;
          break;
        }
        trigger = std::max(trigger, level_of[v]);
      }
      if (!all_in) continue;
      negated_at_[trigger].push_back(
          NegatedCheck{&rel, atom.vars, trigger});
    }
  }

  if (opts_.enforce_disequalities) {
    for (const Disequality& d : q.disequalities()) {
      if (level_of[d.lhs] < 0 || level_of[d.rhs] < 0) continue;
      const int a = level_of[d.lhs];
      const int b = level_of[d.rhs];
      diseq_at_[std::max(a, b)].push_back(
          DisequalityCheck{std::min(a, b), std::max(a, b)});
    }
  }
}

bool BagJoiner::Enumerate(
    const VarDomains* domains,
    const std::function<bool(const Tuple&)>& callback) const {
  if (infeasible_) return true;
  const int depth = static_cast<int>(vars_.size());
  const Value n = static_cast<Value>(db_.universe_size());

  // Per-constraint range stacks; ranges[c].back() is the live range.
  std::vector<std::vector<std::pair<size_t, size_t>>> ranges(
      constraints_.size());
  for (size_t c = 0; c < constraints_.size(); ++c) {
    ranges[c].reserve(depth + 1);
    ranges[c].push_back({0, constraints_[c].projection.size()});
  }
  Tuple assignment(depth, 0);
  // assignment_by_var lets negated-atom checks read values by variable id.
  std::vector<Value> value_of(query_.num_vars(), 0);
  Tuple negated_scratch;  // Reused per negated-atom membership probe.

  // Recursive lambda (self-passing, avoiding std::function dispatch in
  // the descent). Returns false if the callback requested a stop.
  auto descend = [&](auto&& self, int d) -> bool {
    if (d == depth) return callback(assignment);

    // Checks triggered once vars_[d] is assigned.
    auto passes_checks = [&](Value w) {
      value_of[vars_[d]] = w;
      for (const NegatedCheck& check : negated_at_[d]) {
        negated_scratch.clear();
        for (int v : check.atom_vars) negated_scratch.push_back(value_of[v]);
        if (check.relation->ContainsRow(negated_scratch.data())) return false;
      }
      for (const DisequalityCheck& check : diseq_at_[d]) {
        if (assignment[check.lhs_level] == w) return false;
      }
      return true;
    };

    const auto& active = active_[d];
    if (active.empty()) {
      // Unconstrained level: scan the whole (domain-restricted) universe.
      for (Value w = 0; w < n; ++w) {
        if (domains && !domains->Allows(vars_[d], w)) continue;
        if (!passes_checks(w)) continue;
        assignment[d] = w;
        if (!self(self, d + 1)) return false;
      }
      return true;
    }

    // Pivot: the active constraint with the smallest live range.
    int pivot = -1;
    int pivot_col = -1;
    size_t pivot_width = SIZE_MAX;
    for (const auto& [c, k] : active) {
      const auto [lo, hi] = ranges[c].back();
      if (hi - lo < pivot_width) {
        pivot_width = hi - lo;
        pivot = c;
        pivot_col = k;
      }
    }
    const Relation& pivot_rel = constraints_[pivot].projection;
    auto [plo, phi] = ranges[pivot].back();

    size_t pos = plo;
    while (pos < phi) {
      const Value w = pivot_rel.At(pos, pivot_col);
      // The pivot scans groups in order: the group starts at `pos`, so
      // only its end needs searching.
      const size_t wlo = pos;
      const size_t whi =
          pivot_rel.GroupEnd(pos, phi, static_cast<size_t>(pivot_col));
      pos = whi;
      if (domains && !domains->Allows(vars_[d], w)) continue;
      // Narrow every active constraint; all must stay non-empty.
      bool ok = true;
      size_t pushed = 0;
      for (const auto& [c, k] : active) {
        const auto [lo, hi] = ranges[c].back();
        const auto narrowed =
            c == pivot ? std::make_pair(wlo, whi)
                       : constraints_[c].projection.NarrowRange(
                             lo, hi, static_cast<size_t>(k), w);
        if (narrowed.first == narrowed.second) {
          ok = false;
          break;
        }
        ranges[c].push_back(narrowed);
        ++pushed;
      }
      if (ok && passes_checks(w)) {
        assignment[d] = w;
        if (!self(self, d + 1)) {
          for (size_t i = 0; i < pushed; ++i) ranges[active[i].first].pop_back();
          return false;
        }
      }
      for (size_t i = 0; i < pushed; ++i) ranges[active[i].first].pop_back();
    }
    return true;
  };

  return descend(descend, 0);
}

Relation BagJoiner::Materialise(const VarDomains* domains) const {
  Relation out(static_cast<int>(vars_.size()));
  Enumerate(domains, [&out](const Tuple& t) {
    out.Add(t);
    return true;
  });
  // Enumeration emits in lexicographic order, so this is a linear
  // verification pass, not a sort.
  out.Canonicalize();
  return out;
}

}  // namespace cqcount
