// Brute-force baselines over full variable sets.
//
// These enumerate Sol(phi, D) directly (all atoms, negated atoms AND
// disequalities enforced) and are exponential in the query size. They are
// the ground truth that the approximation schemes are validated against.
#ifndef CQCOUNT_HOM_BACKTRACKING_H_
#define CQCOUNT_HOM_BACKTRACKING_H_

#include <cstdint>
#include <functional>

#include "query/query.h"
#include "relational/structure.h"

namespace cqcount {

/// Enumerates full solutions alpha in Sol(phi, D) (Definition 1); the
/// callback receives values indexed by variable id and returns false to
/// stop. Returns false iff stopped early.
bool EnumerateSolutions(const Query& q, const Database& db,
                        const std::function<bool(const Tuple&)>& callback);

/// |Sol(phi, D)| by enumeration.
uint64_t CountSolutionsBrute(const Query& q, const Database& db);

/// |Ans(phi, D)| (Definition 2) by enumerating solutions and collecting
/// distinct projections onto the free variables.
uint64_t CountAnswersBrute(const Query& q, const Database& db);

/// True iff Sol(phi, D) is non-empty.
bool DecideSolutionBrute(const Query& q, const Database& db);

}  // namespace cqcount

#endif  // CQCOUNT_HOM_BACKTRACKING_H_
