#include "hom/hom_oracle.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "decomposition/width_measures.h"
#include "query/query_structures.h"

namespace cqcount {
namespace {

// Default trial-reuse adapter: keeps a private copy of the base domains
// and, per trial, swaps in only the <= 2|Delta| overlaid endpoint domains
// (intersected with the base) around a plain Decide — no full VarDomains
// copy per trial.
class OverlayPreparedHom : public PreparedHom {
 public:
  OverlayPreparedHom(HomOracle* oracle, const VarDomains& base,
                     int num_vars)
      : oracle_(oracle), base_(base) {
    // Cover every overlaid variable even when the caller passed a
    // shorter (but non-empty) domain vector.
    if (base_.allowed.size() < static_cast<size_t>(num_vars)) {
      base_.allowed.resize(static_cast<size_t>(num_vars));
    }
  }

  bool Decide(const std::vector<DomainRestriction>& extra) override {
    ApplyOverlay(base_, extra, saved_);
    const bool verdict = oracle_->Decide(base_);
    RestoreOverlay(base_, saved_);
    return verdict;
  }

 private:
  HomOracle* oracle_;
  VarDomains base_;
  SavedDomains saved_;
};

// HomContext for the decomposition oracle: an independent solver
// evaluation context (prepare + trial scratch).
class DecompositionHomContext : public HomContext {
 public:
  explicit DecompositionHomContext(std::unique_ptr<SolverEvalContext> ctx)
      : ctx_(std::move(ctx)) {}

  SolverEvalContext& ctx() { return *ctx_; }

 private:
  std::unique_ptr<SolverEvalContext> ctx_;
};

// Prepared decisions delegated to the solver's trial-reuse DP.
class DecompositionPreparedHom : public PreparedHom {
 public:
  DecompositionPreparedHom(HomOracle* owner, PreparedDp prepared)
      : owner_(owner), prepared_(std::move(prepared)) {}

  bool Decide(const std::vector<DomainRestriction>& extra) override {
    owner_->RecordPreparedDecide();
    return prepared_.Decide(extra);
  }

  bool Decide(const std::vector<DomainRestriction>& extra,
              HomContext& lane) override {
    owner_->RecordPreparedDecide();
    return prepared_.Decide(extra,
                            static_cast<DecompositionHomContext&>(lane).ctx());
  }

 private:
  HomOracle* owner_;
  PreparedDp prepared_;
};

// Identity variable order over all query variables.
std::vector<int> IdentityOrder(const Query& q) {
  std::vector<int> order(static_cast<size_t>(q.num_vars()));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

BagJoiner::Options FullJoinOptions() {
  BagJoiner::Options opts;
  opts.enforce_negated = true;
  opts.enforce_disequalities = false;
  return opts;
}

}  // namespace

std::unique_ptr<PreparedHom> HomOracle::Prepare(
    const VarDomains& base, std::vector<int> overlay_vars) {
  // num_vars is unknown at this level; size the domain vector to cover
  // the largest overlaid variable. Variables beyond the vector are
  // unrestricted by VarDomains::Allows' contract.
  int max_var = -1;
  for (int v : overlay_vars) max_var = std::max(max_var, v);
  const int num_vars =
      std::max(static_cast<int>(base.allowed.size()), max_var + 1);
  return std::make_unique<OverlayPreparedHom>(this, base, num_vars);
}

std::unique_ptr<PreparedHom> DecompositionHomOracle::Prepare(
    const VarDomains& base, std::vector<int> overlay_vars) {
  return std::make_unique<DecompositionPreparedHom>(
      this, solver_.Prepare(base, overlay_vars));
}

std::unique_ptr<PreparedHom> DecompositionHomOracle::Prepare(
    const VarDomains& base, std::vector<int> overlay_vars, HomContext* ctx) {
  if (ctx == nullptr) return Prepare(base, std::move(overlay_vars));
  auto& dctx = static_cast<DecompositionHomContext&>(*ctx);
  return std::make_unique<DecompositionPreparedHom>(
      this, solver_.Prepare(base, overlay_vars, dctx.ctx()));
}

std::unique_ptr<HomContext> DecompositionHomOracle::CreateContext() {
  return std::make_unique<DecompositionHomContext>(solver_.CreateEvalContext());
}

BacktrackingHomOracle::BacktrackingHomOracle(const Query& q,
                                             const Database& db)
    : joiner_(q, db, IdentityOrder(q), FullJoinOptions()) {}

bool BacktrackingHomOracle::Decide(const VarDomains& domains) {
  RecordDecide();
  bool found = false;
  joiner_.Enumerate(&domains, [&found](const Tuple&) {
    found = true;
    return false;
  });
  return found;
}

bool DecideStructureHom(const Structure& a, const Structure& b) {
  // sig(a) must be contained in sig(b); a missing or smaller-arity symbol
  // makes a homomorphism impossible only through ill-formed input, so we
  // treat it as "no".
  for (const std::string& name : a.RelationNames()) {
    if (b.Arity(name) != a.relation(name).arity()) return false;
  }
  Query canonical = CanonicalQuery(a);
  if (canonical.num_vars() == 0) return true;  // Empty universe: trivial.
  Hypergraph h = canonical.BuildHypergraph();
  FWidthResult decomposition =
      ComputeDecomposition(h, WidthObjective::kTreewidth);
  DecompositionSolver solver(canonical, b,
                             std::move(decomposition.decomposition));
  return solver.Decide(nullptr);
}

}  // namespace cqcount
