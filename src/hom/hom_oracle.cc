#include "hom/hom_oracle.h"

#include <numeric>

#include "decomposition/width_measures.h"
#include "query/query_structures.h"

namespace cqcount {

bool BacktrackingHomOracle::Decide(const VarDomains& domains) {
  ++num_calls_;
  BagJoiner::Options opts;
  opts.enforce_negated = true;
  opts.enforce_disequalities = false;
  std::vector<int> order(query_.num_vars());
  std::iota(order.begin(), order.end(), 0);
  BagJoiner joiner(query_, db_, order, opts);
  bool found = false;
  joiner.Enumerate(&domains, [&found](const Tuple&) {
    found = true;
    return false;
  });
  return found;
}

bool DecideStructureHom(const Structure& a, const Structure& b) {
  // sig(a) must be contained in sig(b); a missing or smaller-arity symbol
  // makes a homomorphism impossible only through ill-formed input, so we
  // treat it as "no".
  for (const std::string& name : a.RelationNames()) {
    if (b.Arity(name) != a.relation(name).arity()) return false;
  }
  Query canonical = CanonicalQuery(a);
  if (canonical.num_vars() == 0) return true;  // Empty universe: trivial.
  Hypergraph h = canonical.BuildHypergraph();
  FWidthResult decomposition =
      ComputeDecomposition(h, WidthObjective::kTreewidth);
  DecompositionSolver solver(canonical, b,
                             std::move(decomposition.decomposition));
  return solver.Decide(nullptr);
}

}  // namespace cqcount
