// Generic multiway join over sorted-relation tries.
//
// BagJoiner enumerates the assignments alpha : vars -> U(D) such that
//  - for every positive atom, alpha is consistent with some fact
//    (the projection semantics of Definition 47), and
//  - every negated atom whose variables all lie in `vars` is violated by
//    no fact, and (optionally)
//  - every disequality whose endpoints both lie in `vars` holds.
//
// With `vars` = a decomposition bag this computes Sol(phi, D, B) (Lemma 48);
// the leapfrog-style pivot intersection keeps the work close to the output
// size, which is bounded by ||D||^fcn(H[B]) (Grohe-Marx / AGM). With
// `vars` = vars(phi) it enumerates full solutions (brute-force baseline).
#ifndef CQCOUNT_HOM_JOIN_H_
#define CQCOUNT_HOM_JOIN_H_

#include <functional>
#include <vector>

#include "query/query.h"
#include "relational/relation.h"
#include "relational/structure.h"
#include "util/bitset.h"

namespace cqcount {

/// Per-variable domain restrictions. An empty `allowed` vector (or an empty
/// mask for a variable) means "unrestricted". The colour-coding oracle
/// (Lemma 30) expresses all of B-hat's unary relations through this type.
struct VarDomains {
  std::vector<Bitset> allowed;

  /// Variables beyond the vector's length (including the empty vector)
  /// are unrestricted, so a caller may pass a short vector covering only
  /// the restricted variables.
  bool Allows(int var, Value w) const {
    if (static_cast<size_t>(var) >= allowed.size()) return true;
    const Bitset& mask = allowed[static_cast<size_t>(var)];
    return mask.empty() || mask.Test(w);
  }
};

/// One additional restriction overlaid on top of a prepared base: the
/// domain of `var` is intersected with `*mask` (an empty base domain means
/// the intersection IS the mask). The colour-coding trial loop passes at
/// most 2·|Delta| of these per trial instead of copying whole VarDomains.
struct DomainRestriction {
  int var = 0;
  const Bitset* mask = nullptr;
};

/// Saved domains for RestoreOverlay, in application order.
using SavedDomains = std::vector<std::pair<int, Bitset>>;

/// Applies `extra` to `domains` in place (each mask intersected into its
/// variable's domain; an empty domain adopts the mask), recording the
/// previous domains in `saved` (cleared first). `domains.allowed` must
/// cover every overlaid variable.
void ApplyOverlay(VarDomains& domains,
                  const std::vector<DomainRestriction>& extra,
                  SavedDomains& saved);

/// Undoes ApplyOverlay. Restores in reverse order so that with a variable
/// overlaid twice the FIRST save (its original domain) wins.
void RestoreOverlay(VarDomains& domains, SavedDomains& saved);

/// Joint enumeration of satisfying assignments over an ordered variable set.
class BagJoiner {
 public:
  struct Options {
    /// Enforce negated atoms fully contained in `vars`.
    bool enforce_negated = true;
    /// Enforce disequalities with both endpoints in `vars`.
    bool enforce_disequalities = false;
  };

  /// `vars`: the (ordered, duplicate-free) variables to assign. The query
  /// and database must outlive the joiner. Construction projects and
  /// sorts the constraint relations once; per-variable domains (which
  /// change per colour-coding trial) are passed to Enumerate.
  BagJoiner(const Query& q, const Database& db, std::vector<int> vars,
            Options opts);

  /// Invokes `callback` once per satisfying assignment under `domains`
  /// (may be null), in lexicographic order of the tuple (values aligned
  /// with the `vars` order). The callback returns false to stop;
  /// Enumerate then returns false.
  bool Enumerate(const VarDomains* domains,
                 const std::function<bool(const Tuple&)>& callback) const;

  /// Materialises all satisfying assignments as a Relation over `vars`.
  Relation Materialise(const VarDomains* domains) const;

  /// True when some positive atom has an empty relation (no assignment can
  /// satisfy the query anywhere, Definition 47).
  bool infeasible() const { return infeasible_; }

  const std::vector<int>& vars() const { return vars_; }

 private:
  struct Constraint {
    Relation projection;           // Columns ordered by level.
    std::vector<int> levels;       // Ascending depths the columns bind.
  };
  struct NegatedCheck {
    const Relation* relation;      // Database relation of the negated atom.
    std::vector<int> atom_vars;    // Variable ids in predicate order.
    int trigger_level;             // Deepest level among atom_vars.
  };
  struct DisequalityCheck {
    int lhs_level;
    int rhs_level;                 // trigger level (the deeper one).
  };

  const Query& query_;
  const Database& db_;
  std::vector<int> vars_;
  Options opts_;
  bool infeasible_ = false;

  std::vector<Constraint> constraints_;
  // active_[d] = list of (constraint index, column index) binding level d.
  std::vector<std::vector<std::pair<int, int>>> active_;
  std::vector<std::vector<NegatedCheck>> negated_at_;
  std::vector<std::vector<DisequalityCheck>> diseq_at_;
};

}  // namespace cqcount

#endif  // CQCOUNT_HOM_JOIN_H_
