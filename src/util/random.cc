#include "util/random.h"

#include <cmath>

namespace cqcount {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t DeriveSeed(uint64_t base_seed, uint64_t index) {
  uint64_t z = base_seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t DeriveSeed(uint64_t base_seed, std::initializer_list<uint64_t> path) {
  uint64_t seed = base_seed;
  for (uint64_t step : path) seed = DeriveSeed(seed, step);
  return seed;
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Bitset Rng::RandomMask(size_t n, double p) {
  Bitset mask;
  RandomMaskInto(mask, n, p);
  return mask;
}

void Rng::RandomMaskInto(Bitset& out, size_t n, double p) {
  if (p <= 0.0) {
    out.Assign(n, false);
    return;
  }
  if (p >= 1.0) {
    out.Assign(n, true);
    return;
  }
  out.Assign(n, false);
  if (p == 0.5) {
    // Fair masks (the colour-coding case) draw 64 bits per RNG step; the
    // LSB of each draw lands on the lowest element, matching the bit
    // order of the historical one-bit-at-a-time consumption.
    for (size_t w = 0; w < out.num_words(); ++w) out.SetWord(w, Next());
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (Bernoulli(p)) out.Set(i);
  }
}

uint64_t Rng::SplitSeed() { return Next() ^ 0xd1b54a32d192ed03ULL; }

Rng Rng::Split() { return Rng(SplitSeed()); }

}  // namespace cqcount
