#include "util/random.h"

#include <cmath>

namespace cqcount {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<bool> Rng::RandomMask(size_t n, double p) {
  std::vector<bool> mask(n);
  if (p <= 0.0) return mask;
  if (p >= 1.0) {
    mask.assign(n, true);
    return mask;
  }
  if (p == 0.5) {
    // Fair masks (the colour-coding case) draw 64 bits per RNG step
    // instead of one Next() per element.
    uint64_t bits = 0;
    int available = 0;
    for (size_t i = 0; i < n; ++i) {
      if (available == 0) {
        bits = Next();
        available = 64;
      }
      mask[i] = (bits & 1) != 0;
      bits >>= 1;
      --available;
    }
    return mask;
  }
  for (size_t i = 0; i < n; ++i) mask[i] = Bernoulli(p);
  return mask;
}

Rng Rng::Split() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace cqcount
