// Cooperative resource governance: cancellation tokens, injectable
// deadline clocks, and the per-request ResourceGovernor the engine
// threads through every estimator.
//
// Model: governance is COOPERATIVE. Estimators poll the governor only at
// their existing deterministic boundaries (DLM wave/round/run boundaries,
// colour-coding trial batches, ACJR node loops, sampler descent steps),
// never inside a probe loop. Two consequences:
//   - With no deadline and no cancellation, a governed execution performs
//     the exact same arithmetic as an ungoverned one (a checkpoint is one
//     relaxed atomic load), so fixed-seed estimates stay bit-identical.
//   - The governor is STICKY: the first checkpoint that observes expiry or
//     cancellation latches the cause, and every later checkpoint reports
//     it. A deterministic unit of work (a run, a wave, a node) either
//     completes untouched or is discarded wholesale at its enclosing
//     boundary — partial answers are assembled only from completed units.
//
// Determinism of interruption itself: wall-clock expiry is inherently
// racy, so tests inject a ManualClock (optionally auto-stepping per
// NowMillis read) to make "the budget expires at checkpoint k" an exact,
// replayable event.
#ifndef CQCOUNT_UTIL_CANCEL_H_
#define CQCOUNT_UTIL_CANCEL_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace cqcount {

/// Shareable cancellation flag. Copies observe one underlying flag, so a
/// caller can hold a copy and Cancel() from another thread while the
/// engine polls its own copy at checkpoints.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  /// Requests cancellation (sticky; safe from any thread).
  void Cancel() const {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
  };
  std::shared_ptr<State> state_;
};

/// Millisecond clock the governor evaluates deadlines on. Virtual so
/// tests can substitute a manual clock and make expiry deterministic.
class DeadlineClock {
 public:
  virtual ~DeadlineClock() = default;
  /// Monotonic milliseconds (absolute value is meaningless; only
  /// differences matter).
  virtual uint64_t NowMillis() const = 0;

  /// The process steady clock (the production default).
  static const DeadlineClock& Steady();
};

/// Deterministic test clock: an atomic millisecond counter advanced
/// explicitly (Advance) and/or automatically by `auto_step_ms` on every
/// NowMillis read, so "the deadline expires on the k-th checkpoint" is an
/// exact, replayable event.
class ManualClock : public DeadlineClock {
 public:
  explicit ManualClock(uint64_t start_ms = 0, uint64_t auto_step_ms = 0)
      : now_ms_(start_ms), auto_step_ms_(auto_step_ms) {}

  uint64_t NowMillis() const override {
    return now_ms_.fetch_add(auto_step_ms_, std::memory_order_relaxed);
  }
  void Advance(uint64_t delta_ms) {
    now_ms_.fetch_add(delta_ms, std::memory_order_relaxed);
  }
  /// Current reading without the auto-step side effect.
  uint64_t Peek() const { return now_ms_.load(std::memory_order_relaxed); }

 private:
  mutable std::atomic<uint64_t> now_ms_;
  const uint64_t auto_step_ms_;
};

/// What a checkpoint observed. Once a governor leaves kRunning it never
/// returns to it (sticky latch).
enum class GovernanceState : uint8_t {
  kRunning = 0,
  kCancelled = 1,
  kDeadlineExpired = 2,
};

/// Human-readable cause, also the `partial_reason` rendered in results:
/// "" / "cancelled" / "deadline_exceeded".
const char* GovernanceStateName(GovernanceState state);

/// One request's governance: a cancellation token plus an optional
/// absolute deadline, polled cooperatively. A default-constructed
/// governor is INACTIVE: Check() is a single branch and always reports
/// kRunning, so ungoverned executions pay nothing.
class ResourceGovernor {
 public:
  ResourceGovernor() = default;

  /// Active governor. `time_budget_ms` == 0 means no deadline (token
  /// cancellation only); `clock` null uses DeadlineClock::Steady(). The
  /// clock is not owned and must outlive the governor.
  ResourceGovernor(CancelToken token, uint64_t time_budget_ms,
                   const DeadlineClock* clock = nullptr);

  // The governor latches state in a shared atomic; checkpoints hold it by
  // pointer. Copying mid-flight would fork the latch, so forbid it.
  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  bool active() const { return active_; }

  /// Checkpoint: probes the token (one relaxed load) and, while still
  /// running, the deadline clock. Sticky: the first non-running
  /// observation wins and is returned by every later Check()/state().
  GovernanceState Check() const;

  /// Last latched state, without probing token or clock.
  GovernanceState state() const {
    return static_cast<GovernanceState>(fired_.load(std::memory_order_relaxed));
  }
  bool fired() const { return state() != GovernanceState::kRunning; }

  /// Typed status for the latched cause: CANCELLED or DEADLINE_EXCEEDED,
  /// mentioning `what` (e.g. "DLM exact phase"). OK while running.
  Status ToStatus(const char* what) const;

 private:
  bool active_ = false;
  bool has_deadline_ = false;
  uint64_t deadline_ms_ = 0;
  const DeadlineClock* clock_ = nullptr;
  CancelToken token_;
  mutable std::atomic<uint8_t> fired_{0};
};

}  // namespace cqcount

#endif  // CQCOUNT_UTIL_CANCEL_H_
