// Hashing helpers for composite keys (tuples, assignments).
#ifndef CQCOUNT_UTIL_HASH_H_
#define CQCOUNT_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace cqcount {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
}

/// Hashes a sequence of integral values.
template <typename Container>
size_t HashRange(const Container& values) {
  size_t seed = 0x2545f4914f6cdd1dULL;
  for (const auto& v : values) {
    HashCombine(seed, std::hash<typename Container::value_type>{}(v));
  }
  return seed;
}

/// std::hash adaptor for std::vector of integral values.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const { return HashRange(v); }
};

}  // namespace cqcount

#endif  // CQCOUNT_UTIL_HASH_H_
