// Small numeric helpers shared by the estimators and width computations.
#ifndef CQCOUNT_UTIL_MATH_UTIL_H_
#define CQCOUNT_UTIL_MATH_UTIL_H_

#include <cstdint>
#include <vector>

namespace cqcount {

/// ceil(log2(x)) for x >= 1; 0 for x in {0, 1}.
int Log2Ceil(uint64_t x);

/// floor(log2(x)) for x >= 1. Requires x >= 1.
int Log2Floor(uint64_t x);

/// Returns the median of `values` (averaging the middle pair for even sizes).
/// Requires non-empty input; `values` is reordered.
double Median(std::vector<double>& values);

/// Streaming mean / variance (Welford). Used by the adaptive estimators.
class MeanVarAccumulator {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;
  /// Variance of the sample mean (variance / count); 0 if count == 0.
  double mean_variance() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// n choose k as double (safe for the small parameters used here).
double BinomialDouble(int n, int k);

}  // namespace cqcount

#endif  // CQCOUNT_UTIL_MATH_UTIL_H_
