// Packed fixed-universe bitset for domain masks and colour classes.
//
// The colour-coding / DP hot path manipulates subsets of the (dense)
// universe {0, .., n-1}: per-variable domain restrictions, partite-subset
// membership masks, and random colourings. std::vector<bool> makes every
// one of those a per-bit loop; Bitset packs 64 elements per word so that
// intersect / complement / emptiness-scan run word-parallel, and exposes
// the word granularity directly so Rng can fill a fair colouring with one
// 64-bit draw per word (the exact bit order the per-bit sampler produced,
// keeping fixed-seed estimates stable).
//
// An EMPTY bitset (size() == 0) is the conventional "unrestricted"
// sentinel throughout the domain plumbing, mirroring the empty
// vector<bool> it replaces; Test() out of range is false, matching the
// "values beyond the mask are disallowed" reading used by VarDomains.
#ifndef CQCOUNT_UTIL_BITSET_H_
#define CQCOUNT_UTIL_BITSET_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cqcount {

/// Packed membership mask over the universe {0, .., size()-1}.
class Bitset {
 public:
  static constexpr size_t kWordBits = 64;

  Bitset() = default;
  explicit Bitset(size_t n, bool value = false) { Assign(n, value); }

  /// Number of universe elements (bits), not set bits.
  size_t size() const { return num_bits_; }
  /// True for the zero-universe ("unrestricted") sentinel.
  bool empty() const { return num_bits_ == 0; }
  size_t num_words() const { return words_.size(); }

  /// Membership of `i`; out-of-range indices are not members.
  bool Test(size_t i) const {
    if (i >= num_bits_) return false;
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void Set(size_t i, bool value = true) {
    assert(i < num_bits_);
    const uint64_t bit = uint64_t{1} << (i % kWordBits);
    if (value) {
      words_[i / kWordBits] |= bit;
    } else {
      words_[i / kWordBits] &= ~bit;
    }
  }

  /// Re-dimensions to `n` bits, all set to `value`.
  void Assign(size_t n, bool value);

  /// Grows or shrinks to `n` bits; new bits get `value`.
  void Resize(size_t n, bool value = false);

  /// Sets every bit in [lo, hi) (word-filled interior).
  void SetRange(size_t lo, size_t hi);

  /// True iff at least one bit is set (word-parallel scan).
  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool None() const { return !Any(); }

  /// Number of set bits.
  size_t Count() const;

  /// True when every bit of the universe is set.
  bool All() const { return Count() == num_bits_; }

  /// Complements within the universe (tail bits stay clear).
  void FlipAll();

  /// this &= other. Bits beyond other's universe are treated as absent
  /// (cleared), so the result is the intersection of the two membership
  /// sets restricted to this universe.
  void IntersectWith(const Bitset& other);

  /// this &= ~other. Bits beyond other's universe are treated as absent
  /// from `other` (kept here).
  void IntersectWithComplement(const Bitset& other);

  /// Index of the first set bit at position >= `from`, or size() if none.
  size_t FindNext(size_t from) const;

  uint64_t word(size_t w) const {
    assert(w < words_.size());
    return words_[w];
  }
  /// Overwrites word `w`; bits beyond the universe are masked off.
  void SetWord(size_t w, uint64_t bits) {
    assert(w < words_.size());
    words_[w] = bits;
    if (w + 1 == words_.size()) ClearTail();
  }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const Bitset& a, const Bitset& b) {
    return !(a == b);
  }

 private:
  // Zeroes the bits of the last word beyond num_bits_ (the class
  // invariant every word-parallel reader relies on).
  void ClearTail() {
    const size_t tail = num_bits_ % kWordBits;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cqcount

#endif  // CQCOUNT_UTIL_BITSET_H_
