// Wall-clock timing helper for benches and adaptive algorithms.
#ifndef CQCOUNT_UTIL_TIMER_H_
#define CQCOUNT_UTIL_TIMER_H_

#include <chrono>

namespace cqcount {

/// Measures elapsed wall-clock time since construction or Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since start.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since start.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cqcount

#endif  // CQCOUNT_UTIL_TIMER_H_
