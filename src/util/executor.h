// Worker thread pool shared by batch execution and intra-query estimation.
//
// The executor stays deliberately dumb — a fixed set of worker threads
// draining a FIFO of closures — but its waiting primitives are structured
// so that tasks may themselves fan out on the same pool:
//
//  - ParallelFor/ParallelForLanes are SELF-DRIVING: the calling thread
//    is lane 0 of the claim loop, so the caller alone completes the
//    whole index space when the pool is saturated. A full pool of tasks
//    that each fan out sub-tasks therefore cannot deadlock (the classic
//    nested-submit hang: every worker blocked in a wait while the
//    sub-tasks sit in the queue). Wait() additionally HELP-DRAINS,
//    running queued tasks while it blocks.
//  - ParallelForLanes() partitions an index space across a bounded number
//    of "lanes". Lane l is a single claim-loop (one thread at a time), so
//    per-lane scratch state (RNG-free oracle contexts, epoch-stamped
//    tables) needs no locking. Indices are claimed dynamically, which is
//    safe for determinism as long as the work done for index i depends
//    only on i (counter-derived seeds), never on the claiming lane.
//
// Determinism of results is achieved one level up: every unit of work
// derives its own RNG stream from a counter path via DeriveSeed (see
// util/random.h), so estimates are a pure function of the request — never
// of scheduling order or thread count.
#ifndef CQCOUNT_UTIL_EXECUTOR_H_
#define CQCOUNT_UTIL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/random.h"

namespace cqcount {

/// A fixed-size worker pool executing submitted closures FIFO.
class Executor {
 public:
  explicit Executor(int num_threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted to the pool (by anyone) has
  /// finished, helping to drain the queue while waiting. For waiting on
  /// just your own tasks — and for ANY wait from inside a pool task (a
  /// running task counts as in-flight, so a global Wait from within one
  /// can never return) — use ParallelFor/ParallelForLanes instead.
  void Wait();

  /// Runs tasks 0..num_tasks-1 through `task(i)` on the pool (the calling
  /// thread participates) and waits for exactly those tasks. Safe to call
  /// from several threads sharing one pool, and from inside pool tasks:
  /// each call tracks its own completion, and the caller's claim loop
  /// keeps it live on a saturated pool.
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& task);

  /// How a lane-partitioned loop's indices were executed (informational;
  /// the split depends on scheduling, the results must not).
  struct LaneStats {
    /// Indices run by the calling thread (lane 0).
    uint64_t caller_ran = 0;
    /// Indices run by pool workers (lanes >= 1).
    uint64_t worker_ran = 0;
  };

  /// Runs `task(lane, i)` for i in [0, num_tasks) across at most
  /// `num_lanes` lanes. Each lane is a serialized claim-loop — at most one
  /// task of lane l runs at any time, and lane 0 is always the calling
  /// thread — so a task may freely use per-lane mutable scratch. Indices
  /// are claimed dynamically: the work for index i must depend only on i,
  /// not on the lane, for deterministic results. Waits for all indices,
  /// help-draining the pool queue (nesting-safe).
  LaneStats ParallelForLanes(size_t num_tasks, int num_lanes,
                             const std::function<void(int, size_t)>& task);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Monotonic counters over the pool's lifetime (informational).
  struct StatsSnapshot {
    uint64_t submitted = 0;
    /// Tasks executed by pool workers.
    uint64_t executed = 0;
    /// Tasks executed by threads help-draining inside Wait/ParallelFor*.
    uint64_t help_runs = 0;
  };
  StatsSnapshot stats() const;

 private:
  void WorkerLoop();
  /// Runs one queued task on the calling thread (help-draining). Returns
  /// false when the queue was empty.
  bool RunOneQueuedTask();
  void FinishTask();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> help_runs_{0};
};

}  // namespace cqcount

#endif  // CQCOUNT_UTIL_EXECUTOR_H_
