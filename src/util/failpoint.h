// Deterministic fault-injection harness.
//
// A failpoint is a named site compiled into production code (oracle
// prepare, bag-cache build, executor task spawn, database registration,
// DLM run boundaries). Unarmed — the only state the library ships in —
// every site costs one relaxed atomic load of a global arm counter.
// Tests arm sites by name to:
//   - inject a typed error Status (spurious failures),
//   - run a callback at the k-th hit (e.g. cancel a CancelToken or
//     advance a ManualClock mid-run, making "cancellation arrives at
//     checkpoint k" an exact, replayable event),
//   - force slow paths (sites like the bag-join cache build consult
//     ShouldFail to take their fallback branch).
//
// Arming is process-global and test-scoped: use ScopedFailpoint so a
// failing test cannot leak an armed site into its siblings. Hit counting
// and fire decisions are serialized per site, so countdown ("skip the
// first N hits, then fire M times") is deterministic under single-lane
// execution; under multi-lane execution the k-th hit is whichever
// checkpoint gets there k-th, which is exactly the randomness the
// random-cancel-point property tests want.
#ifndef CQCOUNT_UTIL_FAILPOINT_H_
#define CQCOUNT_UTIL_FAILPOINT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/status.h"

namespace cqcount {
namespace failpoint {

/// How an armed site behaves when it fires.
struct Config {
  /// Hits to let through before the site starts firing.
  uint64_t skip = 0;
  /// Fires before the site disarms itself; 0 = fire forever.
  uint64_t max_fires = 0;
  /// When true, Check() returns Status(error_code, error_message) on
  /// fire; sites that cannot return a Status ignore these two fields.
  bool inject_error = false;
  StatusCode error_code = StatusCode::kInternal;
  std::string error_message;
  /// Invoked on every fire, outside the registry lock (it may arm or
  /// disarm other sites, cancel tokens, advance clocks).
  std::function<void()> on_fire;
};

/// Arms `name` with `config`, replacing any previous arming (hit counts
/// reset). Thread-safe.
void Arm(const std::string& name, Config config);

/// Disarms `name` (no-op when unarmed). Thread-safe.
void Disarm(const std::string& name);

/// Disarms every site (test teardown safety net).
void DisarmAll();

/// Times `name` fired since it was last armed.
uint64_t FireCount(const std::string& name);

/// Evaluates the site. Unarmed: returns OK after one relaxed load. Armed
/// and firing: runs `on_fire`, then returns the configured error when
/// `inject_error` is set, OK otherwise.
Status Check(const char* name);

/// Check() for sites with no Status to return (spawn paths, run
/// boundaries). True when the site fired — callers forcing a slow path
/// branch on it; pure-callback sites may ignore the result.
bool ShouldFail(const char* name);

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, Config config) : name_(std::move(name)) {
    Arm(name_, std::move(config));
  }
  ~ScopedFailpoint() { Disarm(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace failpoint
}  // namespace cqcount

#endif  // CQCOUNT_UTIL_FAILPOINT_H_
