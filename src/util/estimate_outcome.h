// The convergence/cap contract shared by every estimator in the stack.
//
// DlmResult, ApproxCountResult, FprasResult, AcjrResult and the engine's
// ExecOutcome historically each re-declared the same estimate/exact/
// converged triple; they now all derive from EstimateOutcome so the
// strategy-executor layer (and the engine provenance plumbing) can treat
// any estimator result uniformly. ParallelStats rides along: every layer
// that fans work out on the executor reports the same three numbers.
#ifndef CQCOUNT_UTIL_ESTIMATE_OUTCOME_H_
#define CQCOUNT_UTIL_ESTIMATE_OUTCOME_H_

#include <cstdint>

namespace cqcount {

/// Why an estimator stopped scheduling work. kNone covers computations
/// without a run/round schedule (exact results, trivial instances); every
/// sampling result carries a typed reason, so callers (and `count --json`
/// consumers) can distinguish "ran the full worst-case schedule" from the
/// adaptive scheduler's early termination and from resource stops.
enum class StopReason : uint8_t {
  kNone = 0,
  /// Every scheduled run executed (the non-adaptive default).
  kFullSchedule,
  /// CLT early stop: the empirical confidence interval over completed
  /// counter-seeded runs met the requested (epsilon, delta) target.
  kConfidence,
  /// Order-statistic early stop: the hard median bounds over completed
  /// runs pinched within epsilon, so the remaining runs cannot move the
  /// answer outside the target interval.
  kHardBounds,
  /// The oracle-call cap fired before the target interval (converged is
  /// false).
  kBudgetExhausted,
  /// Cooperative cancellation interrupted the schedule (partial result).
  kCancelled,
  /// The wall-clock deadline expired mid-schedule (partial result).
  kDeadlineExpired,
};

/// Stable lowercase name, the `stop_reason` enum of the JSON surfaces.
inline const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kFullSchedule: return "full_schedule";
    case StopReason::kConfidence: return "confidence";
    case StopReason::kHardBounds: return "hard_bounds";
    case StopReason::kBudgetExhausted: return "budget_exhausted";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadlineExpired: return "deadline_expired";
  }
  return "none";
}

/// What every estimate reports: the value and how it was reached.
struct EstimateOutcome {
  /// The (epsilon, delta)-estimate (exact value when `exact`).
  double estimate = 0.0;
  /// True when the computation involved no sampling error (exact phase
  /// completed, or the instance was trivially resolved).
  bool exact = false;
  /// False when a sampling cap was hit before the target interval.
  bool converged = true;
  /// True when a deadline/cancellation interrupted the computation and
  /// the estimate is an ANYTIME answer assembled from the work units
  /// completed before the checkpoint fired. The (epsilon, delta)
  /// guarantee does not apply; [lower_bound, upper_bound] brackets what
  /// the uninterrupted computation would have returned for the same seed
  /// (order-statistic bounds on the outer median, see dlm_counter.cc).
  bool partial = false;
  /// Anytime-answer interval. Meaningful only when `partial`; complete
  /// results carry [estimate, estimate].
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  /// Why the estimator stopped scheduling work (kNone for computations
  /// without a run schedule).
  StopReason stop_reason = StopReason::kNone;
  /// Adaptive refinement rounds executed, summed over the runs that fed
  /// the result (0 for exact resolutions).
  int rounds_executed = 0;
};

/// Intra-query parallelism observability (informational: the numbers
/// describe scheduling, never the estimate).
struct ParallelStats {
  /// Lanes the estimate was partitioned across (1 = inline execution).
  int lanes = 1;
  /// Parallel task units spawned (index-space partitions).
  uint64_t tasks = 0;
  /// Task units executed by pool workers (the rest ran on the calling
  /// thread, including help-drained nested work).
  uint64_t worker_tasks = 0;

  void Merge(const ParallelStats& other) {
    if (other.lanes > lanes) lanes = other.lanes;
    tasks += other.tasks;
    worker_tasks += other.worker_tasks;
  }
};

}  // namespace cqcount

#endif  // CQCOUNT_UTIL_ESTIMATE_OUTCOME_H_
