// Deterministic, seedable pseudo-random number generation.
//
// All randomised algorithms in cqcount take an explicit Rng so experiments
// and tests are reproducible. The generator is xoshiro256**, seeded through
// SplitMix64 (the recommended seeding procedure).
#ifndef CQCOUNT_UTIL_RANDOM_H_
#define CQCOUNT_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

#include "util/bitset.h"

namespace cqcount {

/// Derives an independent seed from `base_seed` and a counter (SplitMix64
/// step). Deterministic and index-sensitive, so derived streams never
/// collide regardless of execution order. Used for batch items, intra-query
/// tasks, and every other unit of parallel randomised work.
uint64_t DeriveSeed(uint64_t base_seed, uint64_t index);

/// Folds a whole counter path into one seed:
/// DeriveSeed(s, {a, b, c}) == DeriveSeed(DeriveSeed(DeriveSeed(s,a),b),c).
/// The estimation stack keys every sampling task by its position in the
/// derivation tree — (component, run, box/stratum, round, sample) — so the
/// stream a task consumes is a pure function of the task's identity, never
/// of scheduling order or thread count.
uint64_t DeriveSeed(uint64_t base_seed, std::initializer_list<uint64_t> path);

/// xoshiro256** pseudo-random generator with convenience samplers.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a uniformly random subset of {0,..,n-1} as a packed mask,
  /// keeping each element independently with probability p.
  Bitset RandomMask(size_t n, double p);

  /// Allocation-free sibling of RandomMask for hot loops: re-dimensions
  /// `out` to n bits (reusing its buffer) and fills it. Fair masks
  /// (p == 0.5, the colour-coding case) consume one Next() per 64 bits,
  /// bit i of the mask being bit i%64 of draw i/64 — the same stream the
  /// historical per-bit sampler consumed, so fixed seeds reproduce.
  void RandomMaskInto(Bitset& out, size_t n, double p);

  /// Shuffles `items` uniformly (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// The seed a Split() child is constructed from (consumes one Next()
  /// draw). Exposed so callers that precompute child seeds up front (the
  /// DLM estimator's run-seed walk) share one definition with Split().
  uint64_t SplitSeed();

  /// Spawns an independent child generator (for parallel or nested use).
  Rng Split();

 private:
  uint64_t state_[4];
};

}  // namespace cqcount

#endif  // CQCOUNT_UTIL_RANDOM_H_
