#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace cqcount {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

// The writer is swapped rarely (process setup, per-test capture) but read
// on every emitted statement; a mutex keeps swap-during-log safe and
// serialises writers that are not internally synchronised.
std::mutex g_writer_mu;
LogWriter g_writer;  // Empty = stderr default.

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

LogWriter SetLogWriter(LogWriter writer) {
  std::lock_guard<std::mutex> lock(g_writer_mu);
  LogWriter previous = std::move(g_writer);
  g_writer = std::move(writer);
  return previous;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(g_writer_mu);
  if (g_writer) {
    g_writer(level_, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace internal
}  // namespace cqcount
