#include "util/cancel.h"

#include <chrono>
#include <string>

namespace cqcount {
namespace {

class SteadyClock : public DeadlineClock {
 public:
  uint64_t NowMillis() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

const DeadlineClock& DeadlineClock::Steady() {
  static const SteadyClock* clock = new SteadyClock();
  return *clock;
}

const char* GovernanceStateName(GovernanceState state) {
  switch (state) {
    case GovernanceState::kRunning:
      return "";
    case GovernanceState::kCancelled:
      return "cancelled";
    case GovernanceState::kDeadlineExpired:
      return "deadline_exceeded";
  }
  return "";
}

ResourceGovernor::ResourceGovernor(CancelToken token, uint64_t time_budget_ms,
                                   const DeadlineClock* clock)
    : active_(true),
      has_deadline_(time_budget_ms > 0),
      clock_(clock != nullptr ? clock : &DeadlineClock::Steady()),
      token_(std::move(token)) {
  if (has_deadline_) deadline_ms_ = clock_->NowMillis() + time_budget_ms;
}

GovernanceState ResourceGovernor::Check() const {
  if (!active_) return GovernanceState::kRunning;
  uint8_t latched = fired_.load(std::memory_order_relaxed);
  if (latched != 0) return static_cast<GovernanceState>(latched);
  uint8_t observed = 0;
  if (token_.cancelled()) {
    observed = static_cast<uint8_t>(GovernanceState::kCancelled);
  } else if (has_deadline_ && clock_->NowMillis() >= deadline_ms_) {
    observed = static_cast<uint8_t>(GovernanceState::kDeadlineExpired);
  }
  if (observed != 0) {
    // First writer wins: concurrent checkpoints racing between the two
    // causes latch exactly one, and every later poll reports it.
    uint8_t expected = 0;
    fired_.compare_exchange_strong(expected, observed,
                                   std::memory_order_relaxed);
  }
  return state();
}

Status ResourceGovernor::ToStatus(const char* what) const {
  switch (state()) {
    case GovernanceState::kRunning:
      return Status::Ok();
    case GovernanceState::kCancelled:
      return Status::Cancelled(std::string(what) +
                               " cancelled at a governance checkpoint");
    case GovernanceState::kDeadlineExpired:
      return Status::DeadlineExceeded(std::string(what) +
                                      " exceeded its time budget");
  }
  return Status::Ok();
}

}  // namespace cqcount
