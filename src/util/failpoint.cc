#include "util/failpoint.h"

#include <atomic>
#include <map>
#include <mutex>
#include <utility>

namespace cqcount {
namespace failpoint {
namespace {

struct Site {
  Config config;
  uint64_t hits = 0;
  uint64_t fires = 0;
  bool disarmed = false;  // Exhausted max_fires; kept for FireCount.
};

struct Registry {
  // Fast path: sites pay one relaxed load while nothing is armed. The
  // counter tracks LIVE armings (exhausted sites do not re-arm it).
  std::atomic<int> armed{0};
  std::mutex mu;
  std::map<std::string, Site> sites;

  static Registry& Get() {
    static Registry* registry = new Registry();
    return *registry;
  }
};

// Fire decision, serialized per registry. Returns the callback to run
// (outside the lock) and fills *error when the site injects one.
bool Evaluate(const char* name, std::function<void()>* on_fire,
              Status* error) {
  Registry& registry = Registry::Get();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(name);
  if (it == registry.sites.end() || it->second.disarmed) return false;
  Site& site = it->second;
  ++site.hits;
  if (site.hits <= site.config.skip) return false;
  ++site.fires;
  if (site.config.max_fires > 0 && site.fires >= site.config.max_fires) {
    site.disarmed = true;
    registry.armed.fetch_sub(1, std::memory_order_relaxed);
  }
  *on_fire = site.config.on_fire;
  if (error != nullptr && site.config.inject_error) {
    *error = Status(site.config.error_code, site.config.error_message);
  }
  return true;
}

}  // namespace

void Arm(const std::string& name, Config config) {
  Registry& registry = Registry::Get();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.sites.try_emplace(name);
  if (!inserted && !it->second.disarmed) {
    // Replacing a live arming: the counter already accounts for it.
  } else {
    registry.armed.fetch_add(1, std::memory_order_relaxed);
  }
  it->second = Site{std::move(config), 0, 0, false};
}

void Disarm(const std::string& name) {
  Registry& registry = Registry::Get();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(name);
  if (it == registry.sites.end()) return;
  if (!it->second.disarmed) {
    registry.armed.fetch_sub(1, std::memory_order_relaxed);
  }
  registry.sites.erase(it);
}

void DisarmAll() {
  Registry& registry = Registry::Get();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& [name, site] : registry.sites) {
    if (!site.disarmed) registry.armed.fetch_sub(1, std::memory_order_relaxed);
  }
  registry.sites.clear();
}

uint64_t FireCount(const std::string& name) {
  Registry& registry = Registry::Get();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(name);
  return it == registry.sites.end() ? 0 : it->second.fires;
}

Status Check(const char* name) {
  Registry& registry = Registry::Get();
  if (registry.armed.load(std::memory_order_relaxed) == 0) {
    return Status::Ok();
  }
  std::function<void()> on_fire;
  Status error;
  if (!Evaluate(name, &on_fire, &error)) return Status::Ok();
  if (on_fire) on_fire();
  return error;
}

bool ShouldFail(const char* name) {
  Registry& registry = Registry::Get();
  if (registry.armed.load(std::memory_order_relaxed) == 0) return false;
  std::function<void()> on_fire;
  if (!Evaluate(name, &on_fire, nullptr)) return false;
  if (on_fire) on_fire();
  return true;
}

}  // namespace failpoint
}  // namespace cqcount
