// Lightweight Status / StatusOr result types.
//
// cqcount does not throw exceptions across public API boundaries; fallible
// operations (parsing, I/O, validation) return Status or StatusOr<T>.
#ifndef CQCOUNT_UTIL_STATUS_H_
#define CQCOUNT_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cqcount {

/// Error categories used throughout the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  /// Cooperative cancellation (CancelToken) observed at a checkpoint
  /// before any usable progress was made.
  kCancelled,
  /// A per-request time budget expired before any usable progress was
  /// made (with partial progress, executions return an anytime answer
  /// instead of this).
  kDeadlineExceeded,
};

/// Result of a fallible operation: either OK or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the OK status.
  static Status Ok() { return Status(); }
  /// Returns an kInvalidArgument status with `message`.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns a kNotFound status with `message`.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns a kFailedPrecondition status with `message`.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Returns a kResourceExhausted status with `message`.
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  /// Returns a kInternal status with `message`.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Returns a kCancelled status with `message`.
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  /// Returns a kDeadlineExceeded status with `message`.
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for diagnostics.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cqcount

#endif  // CQCOUNT_UTIL_STATUS_H_
